#include <gtest/gtest.h>

#include "core/implication.h"
#include "core/inference.h"
#include "core/parser.h"
#include "test_helpers.h"

namespace diffc {
namespace {

// ------------------------------------------------------- rule validators

TEST(RuleTest, Triviality) {
  Universe u = Universe::Letters(3);
  EXPECT_TRUE(IsValidTriviality(*ParseConstraint(u, "AB -> {A}")));
  EXPECT_TRUE(IsValidTriviality(*ParseConstraint(u, "A -> {0, B}")));
  EXPECT_FALSE(IsValidTriviality(*ParseConstraint(u, "A -> {B}")));
  EXPECT_FALSE(IsValidTriviality(*ParseConstraint(u, "A -> {}")));
}

TEST(RuleTest, Augmentation) {
  Universe u = Universe::Letters(3);
  DifferentialConstraint p = *ParseConstraint(u, "A -> {B}");
  EXPECT_TRUE(IsValidAugmentation(p, *ParseConstraint(u, "AC -> {B}")));
  EXPECT_TRUE(IsValidAugmentation(p, p));  // Z = ∅ is a legal augmentation.
  EXPECT_FALSE(IsValidAugmentation(p, *ParseConstraint(u, "C -> {B}")));
  EXPECT_FALSE(IsValidAugmentation(p, *ParseConstraint(u, "AC -> {C}")));
}

TEST(RuleTest, Addition) {
  Universe u = Universe::Letters(3);
  DifferentialConstraint p = *ParseConstraint(u, "A -> {B}");
  EXPECT_TRUE(IsValidAddition(p, *ParseConstraint(u, "A -> {B, C}")));
  EXPECT_TRUE(IsValidAddition(p, p));  // Adding an existing member.
  EXPECT_FALSE(IsValidAddition(p, *ParseConstraint(u, "A -> {C}")));  // Dropped B.
  EXPECT_FALSE(IsValidAddition(p, *ParseConstraint(u, "AB -> {B, C}")));  // Lhs changed.
  EXPECT_FALSE(IsValidAddition(*ParseConstraint(u, "A -> {}"),
                               *ParseConstraint(u, "A -> {B, C}")));  // Two members.
}

TEST(RuleTest, Elimination) {
  Universe u = Universe::Letters(3);
  // X -> Y∪{Z}, X∪Z -> Y ⊢ X -> Y with X=A, Y={B}, Z=C.
  DifferentialConstraint p1 = *ParseConstraint(u, "A -> {B, C}");
  DifferentialConstraint p2 = *ParseConstraint(u, "AC -> {B}");
  DifferentialConstraint conclusion = *ParseConstraint(u, "A -> {B}");
  EXPECT_TRUE(IsValidElimination(p1, p2, conclusion));
  EXPECT_FALSE(IsValidElimination(p2, p1, conclusion));  // Premises swapped.
  EXPECT_FALSE(IsValidElimination(p1, p2, *ParseConstraint(u, "A -> {C}")));
  EXPECT_FALSE(
      IsValidElimination(p1, *ParseConstraint(u, "AB -> {B}"), conclusion));
}

TEST(RuleTest, EliminationWithMemberAlreadyPresent) {
  // Z already a member of Y: p1 = X -> Y, still a valid instance.
  Universe u = Universe::Letters(3);
  DifferentialConstraint p1 = *ParseConstraint(u, "A -> {B, C}");
  DifferentialConstraint p2 = *ParseConstraint(u, "AC -> {B, C}");
  DifferentialConstraint conclusion = *ParseConstraint(u, "A -> {B, C}");
  EXPECT_TRUE(IsValidElimination(p1, p2, conclusion));
}

// Figure 1 soundness, rule by rule, on random instances: if f satisfies
// the premises it satisfies the conclusion (via the lattice containment of
// Proposition 4.2, checked with the SAT decision procedure).
class RuleSoundness : public ::testing::TestWithParam<int> {};

TEST_P(RuleSoundness, AugmentationSound) {
  Rng rng(GetParam() * 7);
  const int n = 5;
  for (int i = 0; i < 20; ++i) {
    DifferentialConstraint p = testing::RandomConstraint(rng, n);
    DifferentialConstraint c(p.lhs().Union(ItemSet(rng.RandomMask(n, 0.3))), p.rhs());
    ASSERT_TRUE(IsValidAugmentation(p, c));
    EXPECT_TRUE(CheckImplicationSat(n, {p}, c)->implied);
  }
}

TEST_P(RuleSoundness, AdditionSound) {
  Rng rng(GetParam() * 7 + 1);
  const int n = 5;
  for (int i = 0; i < 20; ++i) {
    DifferentialConstraint p = testing::RandomConstraint(rng, n);
    DifferentialConstraint c(p.lhs(),
                             p.rhs().WithMember(ItemSet(rng.RandomMask(n, 0.3))));
    ASSERT_TRUE(IsValidAddition(p, c));
    EXPECT_TRUE(CheckImplicationSat(n, {p}, c)->implied);
  }
}

TEST_P(RuleSoundness, EliminationSound) {
  Rng rng(GetParam() * 7 + 2);
  const int n = 5;
  for (int i = 0; i < 20; ++i) {
    DifferentialConstraint conclusion = testing::RandomConstraint(rng, n);
    ItemSet z(rng.RandomMask(n, 0.3));
    DifferentialConstraint p1(conclusion.lhs(), conclusion.rhs().WithMember(z));
    DifferentialConstraint p2(conclusion.lhs().Union(z), conclusion.rhs());
    ASSERT_TRUE(IsValidElimination(p1, p2, conclusion));
    EXPECT_TRUE(CheckImplicationSat(n, {p1, p2}, conclusion)->implied);
  }
}

TEST_P(RuleSoundness, TrivialitySound) {
  Rng rng(GetParam() * 7 + 3);
  const int n = 5;
  for (int i = 0; i < 20; ++i) {
    ItemSet lhs(rng.RandomMask(n, 0.5));
    if (lhs.empty()) lhs = ItemSet{0};
    SetFamily fam({ItemSet(rng.RandomNonemptySubsetOf(lhs.bits()))});
    DifferentialConstraint c(lhs, fam);
    ASSERT_TRUE(IsValidTriviality(c));
    EXPECT_TRUE(CheckImplicationSat(n, {}, c)->implied);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleSoundness, ::testing::Range(1, 9));

// ------------------------------------------------------------- derivations

TEST(DerivationTest, ValidateAcceptsHandProof) {
  // Example 3.4 by hand: A->{B}, B->{C} ⊢ A->{C}.
  Universe u = Universe::Letters(3);
  ConstraintSet givens = *ParseConstraintSet(u, "A -> {B}; B -> {C}");
  Derivation d;
  d.AddStep({InferenceRule::kGiven, {}, 0, *ParseConstraint(u, "A -> {B}")});
  d.AddStep({InferenceRule::kGiven, {}, 1, *ParseConstraint(u, "B -> {C}")});
  d.AddStep({InferenceRule::kAddition, {0}, -1, *ParseConstraint(u, "A -> {B, C}")});
  d.AddStep({InferenceRule::kAugmentation, {1}, -1, *ParseConstraint(u, "AB -> {C}")});
  d.AddStep({InferenceRule::kElimination, {2, 3}, -1, *ParseConstraint(u, "A -> {C}")});
  EXPECT_TRUE(ValidateDerivation(3, givens, d).ok());
  EXPECT_EQ(d.conclusion(), *ParseConstraint(u, "A -> {C}"));
}

TEST(DerivationTest, ValidateRejectsWrongGiven) {
  Universe u = Universe::Letters(3);
  ConstraintSet givens = *ParseConstraintSet(u, "A -> {B}");
  Derivation d;
  d.AddStep({InferenceRule::kGiven, {}, 0, *ParseConstraint(u, "A -> {C}")});
  EXPECT_FALSE(ValidateDerivation(3, givens, d).ok());
}

TEST(DerivationTest, ValidateRejectsForwardReference) {
  Universe u = Universe::Letters(3);
  ConstraintSet givens = *ParseConstraintSet(u, "A -> {B}");
  Derivation d;
  d.AddStep({InferenceRule::kAugmentation, {0}, -1, *ParseConstraint(u, "AC -> {B}")});
  EXPECT_FALSE(ValidateDerivation(3, givens, d).ok());  // Premise 0 is itself.
}

TEST(DerivationTest, ValidateRejectsOutOfUniverse) {
  Universe u = Universe::Letters(2);
  Derivation d;
  d.AddStep({InferenceRule::kTriviality, {}, -1,
             DifferentialConstraint(ItemSet{5}, SetFamily({ItemSet{5}}))});
  EXPECT_FALSE(ValidateDerivation(2, {}, d).ok());
}

TEST(DerivationTest, ValidateRejectsEmpty) {
  EXPECT_FALSE(ValidateDerivation(3, {}, Derivation()).ok());
}

TEST(DerivationTest, ToStringMentionsRules) {
  Universe u = Universe::Letters(3);
  Derivation d;
  d.AddStep({InferenceRule::kGiven, {}, 0, *ParseConstraint(u, "A -> {B}")});
  d.AddStep({InferenceRule::kAugmentation, {0}, -1, *ParseConstraint(u, "AC -> {B}")});
  std::string text = d.ToString(u);
  EXPECT_NE(text.find("given"), std::string::npos);
  EXPECT_NE(text.find("augmentation"), std::string::npos);
  EXPECT_NE(text.find("AC -> {B}"), std::string::npos);
}

// ---------------------------------------------------------- proof generator

TEST(DeriveTest, PaperExample43) {
  Universe u = Universe::Letters(4);
  ConstraintSet givens = *ParseConstraintSet(u, "A -> {BC, CD}; C -> {D}");
  DifferentialConstraint goal = *ParseConstraint(u, "AB -> {D}");
  Result<Derivation> d = DeriveImplied(4, givens, goal);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(ValidateDerivation(4, givens, *d).ok());
  EXPECT_EQ(d->conclusion(), goal);
}

TEST(DeriveTest, TrivialGoalIsOneStep) {
  Universe u = Universe::Letters(3);
  DifferentialConstraint goal = *ParseConstraint(u, "AB -> {B}");
  Result<Derivation> d = DeriveImplied(3, {}, goal);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 1);
  EXPECT_EQ(d->steps()[0].rule, InferenceRule::kTriviality);
}

TEST(DeriveTest, NotImpliedReturnsNotFound) {
  Universe u = Universe::Letters(3);
  ConstraintSet givens = *ParseConstraintSet(u, "A -> {B}");
  Result<Derivation> d = DeriveImplied(3, givens, *ParseConstraint(u, "B -> {A}"));
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST(DeriveTest, GoalEqualToGiven) {
  Universe u = Universe::Letters(3);
  ConstraintSet givens = *ParseConstraintSet(u, "A -> {BC}");
  DifferentialConstraint goal = *ParseConstraint(u, "A -> {BC}");
  Result<Derivation> d = DeriveImplied(3, givens, goal);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(ValidateDerivation(3, givens, *d).ok());
  EXPECT_EQ(d->conclusion(), goal);
}

TEST(DeriveTest, EmptyFamilyGoal) {
  Universe u = Universe::Letters(2);
  ConstraintSet givens = *ParseConstraintSet(u, "A -> {}");
  DifferentialConstraint goal = *ParseConstraint(u, "AB -> {}");
  Result<Derivation> d = DeriveImplied(2, givens, goal);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(ValidateDerivation(2, givens, *d).ok());
  EXPECT_EQ(d->conclusion(), goal);
}

TEST(DeriveTest, TautologyReductionGoal) {
  // ∅ -> {} from the excluded-middle constraint set.
  prop::DnfFormula f;
  f.num_vars = 2;
  f.conjuncts = {{0b01, 0}, {0, 0b01}};  // A ∨ ¬A over two variables.
  ConstraintSet givens = DnfTautologyReduction(f);
  Result<Derivation> d = DeriveImplied(2, givens, TautologyGoal());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(ValidateDerivation(2, givens, *d).ok());
}

// Completeness (Theorem 4.8): whenever C |= goal, DeriveImplied produces a
// valid base-rule derivation concluding the goal. Soundness
// (Proposition 4.2): it refuses exactly when not implied.
class DeriveCompleteness : public ::testing::TestWithParam<int> {};

TEST_P(DeriveCompleteness, DerivesIffImplied) {
  Rng rng(GetParam() * 53 + 29);
  const int n = 5;
  int derived_count = 0;
  for (int iter = 0; iter < 15; ++iter) {
    ConstraintSet givens =
        testing::RandomConstraintSet(rng, n, static_cast<int>(rng.UniformInt(1, 3)));
    DifferentialConstraint goal = testing::RandomConstraint(
        rng, n, 0.35, static_cast<int>(rng.UniformInt(1, 2)), 0.4);
    bool implied = CheckImplicationSat(n, givens, goal)->implied;
    Result<Derivation> d = DeriveImplied(n, givens, goal);
    if (implied) {
      ASSERT_TRUE(d.ok()) << d.status().ToString();
      EXPECT_TRUE(ValidateDerivation(n, givens, *d).ok());
      EXPECT_EQ(d->conclusion(), goal);
      ++derived_count;
    } else {
      EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
    }
  }
  (void)derived_count;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeriveCompleteness, ::testing::Range(1, 11));

// ------------------------------------------------------------ pruning

TEST(PruneTest, RemovesDeadStepsAndStaysValid) {
  Universe u = Universe::Letters(4);
  ConstraintSet givens = *ParseConstraintSet(u, "A -> {BC, CD}; C -> {D}");
  DifferentialConstraint goal = *ParseConstraint(u, "AB -> {D}");
  Result<Derivation> d = DeriveImplied(4, givens, goal);
  ASSERT_TRUE(d.ok());
  Derivation pruned = PruneDerivation(*d);
  EXPECT_LE(pruned.size(), d->size());
  EXPECT_TRUE(ValidateDerivation(4, givens, pruned).ok());
  EXPECT_EQ(pruned.conclusion(), goal);
}

TEST(PruneTest, KeepsMinimalProofIntact) {
  // A hand-written proof with no dead steps is unchanged.
  Universe u = Universe::Letters(3);
  ConstraintSet givens = *ParseConstraintSet(u, "A -> {B}; B -> {C}");
  Derivation d;
  d.AddStep({InferenceRule::kGiven, {}, 0, *ParseConstraint(u, "A -> {B}")});
  d.AddStep({InferenceRule::kGiven, {}, 1, *ParseConstraint(u, "B -> {C}")});
  d.AddStep({InferenceRule::kAddition, {0}, -1, *ParseConstraint(u, "A -> {B, C}")});
  d.AddStep({InferenceRule::kAugmentation, {1}, -1, *ParseConstraint(u, "AB -> {C}")});
  d.AddStep({InferenceRule::kElimination, {2, 3}, -1, *ParseConstraint(u, "A -> {C}")});
  Derivation pruned = PruneDerivation(d);
  EXPECT_EQ(pruned.size(), d.size());
  EXPECT_TRUE(ValidateDerivation(3, givens, pruned).ok());
}

TEST(PruneTest, DropsUnreachableStep) {
  Universe u = Universe::Letters(3);
  ConstraintSet givens = *ParseConstraintSet(u, "A -> {B}");
  Derivation d;
  d.AddStep({InferenceRule::kGiven, {}, 0, *ParseConstraint(u, "A -> {B}")});
  d.AddStep({InferenceRule::kTriviality, {}, -1, *ParseConstraint(u, "AB -> {B}")});  // Dead.
  d.AddStep({InferenceRule::kAugmentation, {0}, -1, *ParseConstraint(u, "AC -> {B}")});
  Derivation pruned = PruneDerivation(d);
  EXPECT_EQ(pruned.size(), 2);
  EXPECT_TRUE(ValidateDerivation(3, givens, pruned).ok());
  EXPECT_EQ(pruned.conclusion(), *ParseConstraint(u, "AC -> {B}"));
}

// Every validated machine proof is semantically sound: each step's
// conclusion is implied by the givens.
TEST(DeriveTest, EveryStepImplied) {
  Universe u = Universe::Letters(4);
  ConstraintSet givens = *ParseConstraintSet(u, "A -> {BC, CD}; C -> {D}");
  Result<Derivation> d = DeriveImplied(4, givens, *ParseConstraint(u, "AB -> {D}"));
  ASSERT_TRUE(d.ok());
  for (const ProofStep& step : d->steps()) {
    EXPECT_TRUE(CheckImplicationSat(4, givens, step.conclusion)->implied)
        << step.conclusion.ToString(u);
  }
}

// ------------------------------------------ Figure 2: derived rules

// Each Figure 2 rule is validated by machine-deriving a random instance of
// its conclusion from its premises using only the base rules.
class Fig2Derivable : public ::testing::TestWithParam<int> {};

TEST_P(Fig2Derivable, ProjectionDerivable) {
  // X -> Y∪{Y∪Z} ⊢ X -> Y∪{Y}.
  Rng rng(GetParam() * 3 + 100);
  const int n = 5;
  ItemSet x(rng.RandomMask(n, 0.25));
  ItemSet y(rng.RandomNonemptySubsetOf(FullMask(n)));
  ItemSet z(rng.RandomMask(n, 0.3));
  SetFamily rest = SetFamily::FromMasks(rng.RandomFamily(n, 1, 0.3));
  DifferentialConstraint premise(x, rest.WithMember(y.Union(z)));
  DifferentialConstraint conclusion(x, rest.WithMember(y));
  Result<Derivation> d = DeriveImplied(n, {premise}, conclusion);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(ValidateDerivation(n, {premise}, *d).ok());
}

TEST_P(Fig2Derivable, SeparationDerivable) {
  // X -> Y∪{Y∪Z} ⊢ X -> Y∪{Y}∪{Z}.
  Rng rng(GetParam() * 3 + 200);
  const int n = 5;
  ItemSet x(rng.RandomMask(n, 0.25));
  ItemSet y(rng.RandomNonemptySubsetOf(FullMask(n)));
  ItemSet z(rng.RandomNonemptySubsetOf(FullMask(n)));
  SetFamily rest = SetFamily::FromMasks(rng.RandomFamily(n, 1, 0.3));
  DifferentialConstraint premise(x, rest.WithMember(y.Union(z)));
  DifferentialConstraint conclusion(x, rest.WithMember(y).WithMember(z));
  Result<Derivation> d = DeriveImplied(n, {premise}, conclusion);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(ValidateDerivation(n, {premise}, *d).ok());
}

TEST_P(Fig2Derivable, UnionDerivable) {
  // X -> Y∪{Y}, X -> Y∪{Z} ⊢ X -> Y∪{Y∪Z}.
  Rng rng(GetParam() * 3 + 300);
  const int n = 5;
  ItemSet x(rng.RandomMask(n, 0.25));
  ItemSet y(rng.RandomNonemptySubsetOf(FullMask(n)));
  ItemSet z(rng.RandomNonemptySubsetOf(FullMask(n)));
  SetFamily rest = SetFamily::FromMasks(rng.RandomFamily(n, 1, 0.3));
  DifferentialConstraint p1(x, rest.WithMember(y));
  DifferentialConstraint p2(x, rest.WithMember(z));
  DifferentialConstraint conclusion(x, rest.WithMember(y.Union(z)));
  Result<Derivation> d = DeriveImplied(n, {p1, p2}, conclusion);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(ValidateDerivation(n, {p1, p2}, *d).ok());
}

TEST_P(Fig2Derivable, TransitivityDerivable) {
  // X -> Y∪{Y}, Y -> Y∪{Z} ⊢ X -> Y∪{Z}.
  Rng rng(GetParam() * 3 + 400);
  const int n = 5;
  ItemSet x(rng.RandomMask(n, 0.25));
  ItemSet y(rng.RandomNonemptySubsetOf(FullMask(n)));
  ItemSet z(rng.RandomNonemptySubsetOf(FullMask(n)));
  SetFamily rest = SetFamily::FromMasks(rng.RandomFamily(n, 1, 0.25));
  DifferentialConstraint p1(x, rest.WithMember(y));
  DifferentialConstraint p2(y, rest.WithMember(z));
  DifferentialConstraint conclusion(x, rest.WithMember(z));
  Result<Derivation> d = DeriveImplied(n, {p1, p2}, conclusion);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(ValidateDerivation(n, {p1, p2}, *d).ok());
}

TEST_P(Fig2Derivable, ChainDerivable) {
  // X -> Y∪{Y}, X∪Y -> Y∪{Z} ⊢ X -> Y∪{Y∪Z}.
  Rng rng(GetParam() * 3 + 500);
  const int n = 5;
  ItemSet x(rng.RandomMask(n, 0.25));
  ItemSet y(rng.RandomNonemptySubsetOf(FullMask(n)));
  ItemSet z(rng.RandomNonemptySubsetOf(FullMask(n)));
  SetFamily rest = SetFamily::FromMasks(rng.RandomFamily(n, 1, 0.25));
  DifferentialConstraint p1(x, rest.WithMember(y));
  DifferentialConstraint p2(x.Union(y), rest.WithMember(z));
  DifferentialConstraint conclusion(x, rest.WithMember(y.Union(z)));
  Result<Derivation> d = DeriveImplied(n, {p1, p2}, conclusion);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(ValidateDerivation(n, {p1, p2}, *d).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig2Derivable, ::testing::Range(1, 13));

}  // namespace
}  // namespace diffc
