// Differential suite: the QueryPlanner dispatch must be verdict- and
// status-identical to the legacy inline ladder it replaced, across a large
// randomized instance pool (including budget-exhaustion paths), and the
// prepared CheckBatch overload must agree with the unprepared one. This is
// the compatibility pin for the prepare/plan/execute refactor; it runs
// under ASan and TSan in CI.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "core/implication.h"
#include "engine/implication_engine.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc {
namespace {

struct Instance {
  int n = 0;
  ConstraintSet premises;
  DifferentialConstraint goal = DifferentialConstraint(ItemSet(), SetFamily());
};

// A pool of >= 500 instances mixing every dispatch shape: FD-subclass sets,
// general sets, trivial goals, repeated right-hand families, and empty
// premise sets.
std::vector<Instance> MakeInstances(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> out;
  for (int round = 0; round < 130; ++round) {
    const int n = 6 + round % 7;  // 6..12 attributes.
    Instance base;
    base.n = n;
    switch (round % 4) {
      case 0:  // General random premises.
        base.premises = testing::RandomConstraintSet(rng, n, 2 + round % 5);
        break;
      case 1: {  // FD-shaped premises: singleton right-hand sides.
        for (int i = 0; i < 4; ++i) {
          base.premises.push_back(DifferentialConstraint(
              ItemSet::Singleton(i % n), SetFamily({ItemSet::Singleton((i + 1) % n)})));
        }
        break;
      }
      case 2:  // Empty premises.
        break;
      default:  // Dense random premises with wider families.
        base.premises = testing::RandomConstraintSet(rng, n, 3, 0.4, 3, 0.4);
        break;
    }
    for (int q = 0; q < 4; ++q) {
      Instance inst = base;
      switch (q) {
        case 0:  // Random goal.
          inst.goal = testing::RandomConstraint(rng, n);
          break;
        case 1:  // Trivial goal.
          inst.goal = DifferentialConstraint(ItemSet{0, 1}, SetFamily({ItemSet{1}}));
          break;
        case 2:  // Singleton-RHS goal (FD-shaped when premises allow).
          inst.goal = DifferentialConstraint(
              ItemSet::Singleton(q % n), SetFamily({ItemSet::Singleton((q + 3) % n)}));
          break;
        default:  // Augmented premise (implied when premises are nonempty).
          if (!base.premises.empty()) {
            const DifferentialConstraint& p = base.premises[round % base.premises.size()];
            inst.goal = DifferentialConstraint(
                p.lhs().Union(ItemSet::Singleton(round % n)), p.rhs());
          } else {
            inst.goal = testing::RandomConstraint(rng, n);
          }
          break;
      }
      out.push_back(std::move(inst));
    }
  }
  return out;
}

void ExpectIdenticalResults(const EngineQueryResult& planner, const EngineQueryResult& ladder,
                            std::size_t i) {
  EXPECT_EQ(planner.status.code(), ladder.status.code())
      << "instance " << i << ": planner=" << planner.status.ToString()
      << " ladder=" << ladder.status.ToString();
  if (planner.status.ok() && ladder.status.ok()) {
    EXPECT_EQ(planner.outcome.verdict, ladder.outcome.verdict) << "instance " << i;
    EXPECT_EQ(planner.outcome.implied, ladder.outcome.implied) << "instance " << i;
    EXPECT_EQ(planner.outcome.counterexample, ladder.outcome.counterexample)
        << "instance " << i;
    EXPECT_EQ(planner.stats.procedure, ladder.stats.procedure) << "instance " << i;
  } else {
    EXPECT_EQ(planner.stats.stopped_in, ladder.stats.stopped_in) << "instance " << i;
  }
}

TEST(PlannerDifferentialTest, PlannerMatchesLadderOn500PlusInstances) {
  std::vector<Instance> instances = MakeInstances(20260806);
  ASSERT_GE(instances.size(), 500u);

  EngineOptions planner_opts;  // Defaults: planner on.
  EngineOptions ladder_opts;
  ladder_opts.use_planner = false;
  ImplicationEngine planner_engine(planner_opts);
  ImplicationEngine ladder_engine(ladder_opts);

  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Instance& inst = instances[i];
    EngineQueryResult p = planner_engine.CheckOne(inst.n, inst.premises, inst.goal);
    EngineQueryResult l = ladder_engine.CheckOne(inst.n, inst.premises, inst.goal);
    ExpectIdenticalResults(p, l, i);
    // Both must also agree with the sequential front door.
    if (p.status.ok()) {
      Result<ImplicationOutcome> seq = CheckImplication(inst.n, inst.premises, inst.goal);
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ(p.outcome.implied, seq->implied) << "instance " << i;
    }
  }
}

TEST(PlannerDifferentialTest, PlannerMatchesLadderUnderTinySolverBudget) {
  // A 1-decision SAT budget with the interval-cover fast path off and a
  // 2-bit exhaustive gate forces ResourceExhausted on every instance unit
  // propagation can't settle: the planner's pending-failure/fallback
  // machinery must surface exactly the ladder's status and stopped_in.
  std::vector<Instance> instances = MakeInstances(99);
  EngineOptions planner_opts;
  planner_opts.max_solver_decisions = 1;
  planner_opts.use_interval_cover_fast_path = false;
  planner_opts.exhaustive_max_free_bits = 2;
  EngineOptions ladder_opts = planner_opts;
  ladder_opts.use_planner = false;
  ImplicationEngine planner_engine(planner_opts);
  ImplicationEngine ladder_engine(ladder_opts);

  std::size_t exhausted = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Instance& inst = instances[i];
    EngineQueryResult p = planner_engine.CheckOne(inst.n, inst.premises, inst.goal);
    EngineQueryResult l = ladder_engine.CheckOne(inst.n, inst.premises, inst.goal);
    ExpectIdenticalResults(p, l, i);
    if (!p.status.ok()) ++exhausted;
  }
  // The budget must actually bind on some instances or this test is vacuous.
  EXPECT_GT(exhausted, 0u);
}

TEST(PlannerDifferentialTest, SimplifiedMatchesRawOn500PlusInstances) {
  // The rewrite canonicalizer (DESIGN.md §14) must be invisible to callers:
  // running every instance with the full rule set (simplify level 2) and
  // with the legacy inline path (level 0) must produce bit-for-bit equal
  // verdicts, across both the planner and the ladder dispatch. Statuses
  // must match too; counterexamples may legitimately differ (both engines
  // pick a subset of L(goal) ∖ L(C), and the search order depends on the
  // canonical form), so they are not compared here — their validity is
  // pinned by the engine's own counterexample checks.
  std::vector<Instance> instances = MakeInstances(20260809);
  ASSERT_GE(instances.size(), 500u);

  EngineOptions simplified_opts;  // Defaults: planner on, simplify level 2.
  EngineOptions raw_opts;
  raw_opts.simplify_level = 0;
  EngineOptions ladder_simplified_opts = simplified_opts;
  ladder_simplified_opts.use_planner = false;
  EngineOptions ladder_raw_opts = raw_opts;
  ladder_raw_opts.use_planner = false;
  ImplicationEngine simplified_engine(simplified_opts);
  ImplicationEngine raw_engine(raw_opts);
  ImplicationEngine ladder_simplified_engine(ladder_simplified_opts);
  ImplicationEngine ladder_raw_engine(ladder_raw_opts);

  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Instance& inst = instances[i];
    EngineQueryResult s = simplified_engine.CheckOne(inst.n, inst.premises, inst.goal);
    EngineQueryResult r = raw_engine.CheckOne(inst.n, inst.premises, inst.goal);
    EngineQueryResult ls = ladder_simplified_engine.CheckOne(inst.n, inst.premises, inst.goal);
    EngineQueryResult lr = ladder_raw_engine.CheckOne(inst.n, inst.premises, inst.goal);
    ASSERT_TRUE(s.status.ok()) << "instance " << i << ": " << s.status.ToString();
    ASSERT_TRUE(r.status.ok()) << "instance " << i << ": " << r.status.ToString();
    ASSERT_TRUE(ls.status.ok()) << "instance " << i << ": " << ls.status.ToString();
    ASSERT_TRUE(lr.status.ok()) << "instance " << i << ": " << lr.status.ToString();
    EXPECT_EQ(s.outcome.verdict, r.outcome.verdict) << "instance " << i;
    EXPECT_EQ(s.outcome.implied, r.outcome.implied) << "instance " << i;
    EXPECT_EQ(ls.outcome.verdict, lr.outcome.verdict) << "ladder instance " << i;
    EXPECT_EQ(ls.outcome.implied, lr.outcome.implied) << "ladder instance " << i;
    EXPECT_EQ(s.outcome.verdict, ls.outcome.verdict) << "cross instance " << i;
  }
}

TEST(PlannerDifferentialTest, PreparedBatchesMatchUnpreparedBatches) {
  Rng rng(7);
  ImplicationEngine engine;
  for (int round = 0; round < 10; ++round) {
    const int n = 8 + round % 5;
    ConstraintSet premises = testing::RandomConstraintSet(rng, n, 4);
    std::vector<DifferentialConstraint> goals;
    for (int q = 0; q < 12; ++q) goals.push_back(testing::RandomConstraint(rng, n));

    Result<std::shared_ptr<const PreparedPremises>> prepared = engine.Prepare(n, premises);
    ASSERT_TRUE(prepared.ok());
    Result<BatchOutcome> via_prepared = engine.CheckBatch(*prepared, goals);
    Result<BatchOutcome> via_raw = engine.CheckBatch(n, premises, goals);
    ASSERT_TRUE(via_prepared.ok());
    ASSERT_TRUE(via_raw.ok());
    for (std::size_t i = 0; i < goals.size(); ++i) {
      ExpectIdenticalResults(via_prepared->results[i], via_raw->results[i], i);
    }
  }
}

}  // namespace
}  // namespace diffc
