#include <gtest/gtest.h>

#include "core/closure.h"
#include "core/counterexample.h"
#include "core/function_ops.h"
#include "core/implication.h"
#include "core/parser.h"
#include "prop/tautology.h"
#include "test_helpers.h"

namespace diffc {
namespace {

// ------------------------------------------------------------- basic cases

TEST(ImplicationTest, PaperExample34) {
  // {A->{B}, B->{C}} |= A->{C} over S={A,B,C}.
  Universe u = Universe::Letters(3);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {B}; B -> {C}");
  DifferentialConstraint goal = *ParseConstraint(u, "A -> {C}");
  EXPECT_TRUE(CheckImplicationExhaustive(3, c, goal)->implied);
  EXPECT_TRUE(CheckImplicationSat(3, c, goal)->implied);
  EXPECT_TRUE(CheckImplication(3, c, goal)->implied);
}

TEST(ImplicationTest, NonImpliedWithValidCounterexample) {
  Universe u = Universe::Letters(3);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {B}; B -> {C}");
  DifferentialConstraint goal = *ParseConstraint(u, "C -> {A}");
  Result<ImplicationOutcome> r = CheckImplicationSat(3, c, goal);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->implied);
  ASSERT_TRUE(r->counterexample.has_value());
  EXPECT_TRUE(IsValidCounterexample(3, c, goal, *r->counterexample));
}

TEST(ImplicationTest, TrivialGoalAlwaysImplied) {
  Universe u = Universe::Letters(3);
  DifferentialConstraint goal = *ParseConstraint(u, "AB -> {A}");
  EXPECT_TRUE(CheckImplication(3, {}, goal)->implied);
  EXPECT_TRUE(CheckImplicationSat(3, {}, goal)->implied);
  EXPECT_TRUE(CheckImplicationExhaustive(3, {}, goal)->implied);
}

TEST(ImplicationTest, EmptyPremisesImplyOnlyTrivial) {
  Universe u = Universe::Letters(3);
  DifferentialConstraint goal = *ParseConstraint(u, "A -> {B}");
  EXPECT_FALSE(CheckImplicationSat(3, {}, goal)->implied);
}

TEST(ImplicationTest, SelfImplication) {
  Rng rng(61);
  for (int i = 0; i < 20; ++i) {
    DifferentialConstraint c = testing::RandomConstraint(rng, 5);
    EXPECT_TRUE(CheckImplicationSat(5, {c}, c)->implied);
  }
}

TEST(ImplicationTest, PaperExample43Consequence) {
  // {A->{BC,CD}, C->{D}} |= AB->{D} (Example 4.3 derives it; Theorem 4.8
  // says derivable = implied).
  Universe u = Universe::Letters(4);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {BC, CD}; C -> {D}");
  DifferentialConstraint goal = *ParseConstraint(u, "AB -> {D}");
  EXPECT_TRUE(CheckImplicationSat(4, c, goal)->implied);
  EXPECT_TRUE(CheckImplicationExhaustive(4, c, goal)->implied);
}

TEST(ImplicationTest, EmptyFamilyGoal) {
  // X -> {} demands density zero on the whole up-set of X; implied only by
  // premises covering all of [X, S].
  Universe u = Universe::Letters(2);
  DifferentialConstraint goal = *ParseConstraint(u, "A -> {}");
  EXPECT_FALSE(CheckImplicationSat(2, {}, goal)->implied);
  ConstraintSet covering = *ParseConstraintSet(u, "A -> {}");
  EXPECT_TRUE(CheckImplicationSat(2, covering, goal)->implied);
}

TEST(ImplicationTest, AugmentedPremiseIsWeaker) {
  // A->{B} implies AC->{B} but not vice versa.
  Universe u = Universe::Letters(3);
  DifferentialConstraint strong = *ParseConstraint(u, "A -> {B}");
  DifferentialConstraint weak = *ParseConstraint(u, "AC -> {B}");
  EXPECT_TRUE(CheckImplicationSat(3, {strong}, weak)->implied);
  EXPECT_FALSE(CheckImplicationSat(3, {weak}, strong)->implied);
}

// --------------------------------------------- SAT vs exhaustive (property)

class SatVsExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(SatVsExhaustive, Agree) {
  Rng rng(GetParam() * 91 + 3);
  const int n = 6;
  for (int iter = 0; iter < 20; ++iter) {
    ConstraintSet premises =
        testing::RandomConstraintSet(rng, n, static_cast<int>(rng.UniformInt(0, 4)));
    DifferentialConstraint goal = testing::RandomConstraint(
        rng, n, 0.3, static_cast<int>(rng.UniformInt(0, 3)), 0.3);
    Result<ImplicationOutcome> ex = CheckImplicationExhaustive(n, premises, goal);
    Result<ImplicationOutcome> sat = CheckImplicationSat(n, premises, goal);
    ASSERT_TRUE(ex.ok());
    ASSERT_TRUE(sat.ok());
    EXPECT_EQ(ex->implied, sat->implied);
    if (!sat->implied) {
      EXPECT_TRUE(IsValidCounterexample(n, premises, goal, *sat->counterexample));
      EXPECT_TRUE(IsValidCounterexample(n, premises, goal, *ex->counterexample));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatVsExhaustive, ::testing::Range(1, 13));

// --------------------------------------------------- semantic ground truth

// Theorem 3.5 both ways: implied iff every function built from a density
// vanishing on L(C) satisfies the goal; and the counterexample function
// from a SAT model satisfies C but not the goal.
class SemanticGroundTruth : public ::testing::TestWithParam<int> {};

TEST_P(SemanticGroundTruth, CounterexampleFunctionBehaves) {
  Rng rng(GetParam() * 17 + 11);
  const int n = 5;
  for (int iter = 0; iter < 15; ++iter) {
    ConstraintSet premises = testing::RandomConstraintSet(rng, n, 3);
    DifferentialConstraint goal = testing::RandomConstraint(rng, n);
    Result<ImplicationOutcome> r = CheckImplicationSat(n, premises, goal);
    ASSERT_TRUE(r.ok());
    if (r->implied) continue;
    SetFunction<std::int64_t> f = *CounterexampleFunction(n, *r->counterexample);
    for (const DifferentialConstraint& p : premises) {
      EXPECT_TRUE(Satisfies(f, p)) << p.ToString(Universe::Letters(n));
    }
    EXPECT_FALSE(Satisfies(f, goal));
    EXPECT_TRUE(IsFrequencyFunction(f));  // f_U is a support function.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticGroundTruth, ::testing::Range(1, 9));

// ------------------------------------------------------------- FD subclass

TEST(FdSubclassTest, Applicability) {
  Universe u = Universe::Letters(4);
  ConstraintSet fds = *ParseConstraintSet(u, "A -> {B}; B -> {CD}");
  DifferentialConstraint fd_goal = *ParseConstraint(u, "A -> {D}");
  DifferentialConstraint non_fd_goal = *ParseConstraint(u, "A -> {B, C}");
  EXPECT_TRUE(FdSubclassApplicable(fds, fd_goal));
  EXPECT_FALSE(FdSubclassApplicable(fds, non_fd_goal));
  EXPECT_FALSE(FdSubclassApplicable({non_fd_goal}, fd_goal));
}

TEST(FdSubclassTest, TransitiveClosure) {
  Universe u = Universe::Letters(4);
  ConstraintSet fds = *ParseConstraintSet(u, "A -> {B}; B -> {CD}");
  EXPECT_TRUE(CheckImplicationFd(4, fds, *ParseConstraint(u, "A -> {D}"))->implied);
  EXPECT_FALSE(CheckImplicationFd(4, fds, *ParseConstraint(u, "C -> {A}"))->implied);
}

TEST(FdSubclassTest, RequiresApplicability) {
  Universe u = Universe::Letters(3);
  DifferentialConstraint non_fd = *ParseConstraint(u, "A -> {B, C}");
  EXPECT_EQ(CheckImplicationFd(3, {non_fd}, non_fd).status().code(),
            StatusCode::kFailedPrecondition);
}

// §8: the FD subclass agrees with the general decision procedures.
class FdSubclassProperty : public ::testing::TestWithParam<int> {};

TEST_P(FdSubclassProperty, MatchesSatChecker) {
  Rng rng(GetParam() * 13);
  const int n = 6;
  for (int iter = 0; iter < 25; ++iter) {
    ConstraintSet premises;
    int count = static_cast<int>(rng.UniformInt(0, 5));
    for (int i = 0; i < count; ++i) {
      premises.push_back(testing::RandomConstraint(rng, n, 0.3, 1, 0.3));
    }
    DifferentialConstraint goal = testing::RandomConstraint(rng, n, 0.3, 1, 0.3);
    ASSERT_TRUE(FdSubclassApplicable(premises, goal));
    Result<ImplicationOutcome> fd = CheckImplicationFd(n, premises, goal);
    Result<ImplicationOutcome> sat = CheckImplicationSat(n, premises, goal);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(sat.ok());
    EXPECT_EQ(fd->implied, sat->implied);
    if (!fd->implied) {
      // The closure is itself a valid counterexample set.
      EXPECT_TRUE(IsValidCounterexample(n, premises, goal, *fd->counterexample));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdSubclassProperty, ::testing::Range(1, 13));

// --------------------------------------------------------- coNP reduction

TEST(ConpReductionTest, TautologyGoalShape) {
  DifferentialConstraint goal = TautologyGoal();
  EXPECT_TRUE(goal.lhs().empty());
  EXPECT_TRUE(goal.rhs().empty());
}

TEST(ConpReductionTest, ExcludedMiddleMapsToImplied) {
  prop::DnfFormula f;
  f.num_vars = 1;
  f.conjuncts = {{0b1, 0}, {0, 0b1}};  // A ∨ ¬A.
  ConstraintSet c = DnfTautologyReduction(f);
  EXPECT_TRUE(CheckImplicationSat(1, c, TautologyGoal())->implied);
}

TEST(ConpReductionTest, NonTautologyMapsToNonImplied) {
  prop::DnfFormula f;
  f.num_vars = 2;
  f.conjuncts = {{0b01, 0}};  // Just A.
  ConstraintSet c = DnfTautologyReduction(f);
  EXPECT_FALSE(CheckImplicationSat(2, c, TautologyGoal())->implied);
}

// Proposition 5.5: φ tautology ⟺ C_φ |= ∅ -> {} on random DNFs.
class Prop55Property : public ::testing::TestWithParam<int> {};

TEST_P(Prop55Property, ReductionIsCorrect) {
  const int seed = GetParam();
  for (int i = 0; i < 10; ++i) {
    prop::DnfFormula f = prop::RandomDnf(5, 6 + i, 2, seed * 100 + i);
    bool tautology = *prop::IsDnfTautologyExhaustive(f);
    ConstraintSet c = DnfTautologyReduction(f);
    Result<ImplicationOutcome> r = CheckImplicationSat(f.num_vars, c, TautologyGoal());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->implied, tautology) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop55Property, ::testing::Range(1, 9));

// ------------------------------------------------------------------ closure

TEST(ClosureTest, MembershipAndEnumeration) {
  Universe u = Universe::Letters(3);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {B}; B -> {C}");
  // L(C) = L(A,{B}) ∪ L(B,{C}) = {A, AC} ∪ {B, AB}.
  Result<std::vector<ItemSet>> lattice = ClosureLattice(3, c);
  ASSERT_TRUE(lattice.ok());
  EXPECT_EQ(*lattice, (std::vector<ItemSet>{ItemSet(0b001), ItemSet(0b010),
                                            ItemSet(0b011), ItemSet(0b101)}));
  EXPECT_TRUE(InClosureLattice(c, ItemSet(0b101)));
  EXPECT_FALSE(InClosureLattice(c, ItemSet(0b100)));
}

TEST(ClosureTest, Equivalence) {
  Universe u = Universe::Letters(3);
  ConstraintSet a = *ParseConstraintSet(u, "A -> {B}; B -> {C}; A -> {C}");
  ConstraintSet b = *ParseConstraintSet(u, "A -> {B}; B -> {C}");
  EXPECT_TRUE(*AreEquivalent(3, a, b));
  ConstraintSet c = *ParseConstraintSet(u, "A -> {B}");
  EXPECT_FALSE(*AreEquivalent(3, a, c));
}

TEST(ClosureTest, RedundantConstraints) {
  Universe u = Universe::Letters(3);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {B}; B -> {C}; A -> {C}");
  Result<std::vector<int>> redundant = RedundantConstraints(3, c);
  ASSERT_TRUE(redundant.ok());
  EXPECT_EQ(*redundant, std::vector<int>{2});
}

TEST(ClosureTest, MinimalCoverIsEquivalentAndIrredundant) {
  Universe u = Universe::Letters(4);
  ConstraintSet c =
      *ParseConstraintSet(u, "A -> {B}; B -> {C}; A -> {C}; AB -> {C}; C -> {D}");
  Result<ConstraintSet> cover = MinimalCover(4, c);
  ASSERT_TRUE(cover.ok());
  EXPECT_LT(cover->size(), c.size());
  EXPECT_TRUE(*AreEquivalent(4, c, *cover));
  EXPECT_TRUE(RedundantConstraints(4, *cover)->empty());
}

TEST(ClosureTest, TrivialConstraintsAreAlwaysRedundant) {
  Universe u = Universe::Letters(3);
  ConstraintSet c = *ParseConstraintSet(u, "AB -> {A}; A -> {B}");
  Result<std::vector<int>> redundant = RedundantConstraints(3, c);
  ASSERT_TRUE(redundant.ok());
  EXPECT_EQ(*redundant, std::vector<int>{0});
}

}  // namespace
}  // namespace diffc
