#ifndef DIFFC_TESTS_TEST_HELPERS_H_
#define DIFFC_TESTS_TEST_HELPERS_H_

#include <vector>

#include "core/constraint.h"
#include "util/random.h"

namespace diffc::testing {

/// A random differential constraint over `n` attributes: left-hand side
/// with the given density, `members` right-hand members of the given
/// density. Constraints may be trivial; callers that need nontrivial ones
/// should filter.
inline DifferentialConstraint RandomConstraint(Rng& rng, int n, double lhs_density = 0.25,
                                               int members = 2,
                                               double member_density = 0.3) {
  ItemSet lhs(rng.RandomMask(n, lhs_density));
  std::vector<ItemSet> family;
  family.reserve(members);
  for (int i = 0; i < members; ++i) {
    Mask m = rng.RandomMask(n, member_density);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);  // Avoid trivial-by-∅.
    family.push_back(ItemSet(m));
  }
  return DifferentialConstraint(lhs, SetFamily(std::move(family)));
}

/// A random constraint set of `count` constraints.
inline ConstraintSet RandomConstraintSet(Rng& rng, int n, int count,
                                         double lhs_density = 0.25, int members = 2,
                                         double member_density = 0.3) {
  ConstraintSet out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    out.push_back(RandomConstraint(rng, n, lhs_density, members, member_density));
  }
  return out;
}

}  // namespace diffc::testing

#endif  // DIFFC_TESTS_TEST_HELPERS_H_
