#include <gtest/gtest.h>

#include <set>

#include "relational/normalization.h"
#include "util/random.h"

namespace diffc {
namespace {

// Textbook schema: R(A, B, C, D) with A -> B, B -> C.
std::vector<Fd> ChainFds() {
  return {{ItemSet{0}, ItemSet{1}}, {ItemSet{1}, ItemSet{2}}};
}

TEST(CandidateKeysTest, ChainSchema) {
  // Keys of ABCD under {A->B, B->C}: AD (A gives B, C; D needed).
  Result<std::vector<ItemSet>> keys = CandidateKeys(ItemSet{0, 1, 2, 3}, ChainFds());
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, (std::vector<ItemSet>{ItemSet{0, 3}}));
}

TEST(CandidateKeysTest, MultipleKeys) {
  // R(A,B,C) with A -> BC and BC -> A: keys A and BC.
  std::vector<Fd> fds{{ItemSet{0}, ItemSet{1, 2}}, {ItemSet{1, 2}, ItemSet{0}}};
  Result<std::vector<ItemSet>> keys = CandidateKeys(ItemSet{0, 1, 2}, fds);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, (std::vector<ItemSet>{ItemSet{0}, ItemSet{1, 2}}));
}

TEST(CandidateKeysTest, NoFdsWholeSchemaIsKey) {
  Result<std::vector<ItemSet>> keys = CandidateKeys(ItemSet{0, 1}, {});
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, std::vector<ItemSet>{(ItemSet{0, 1})});
}

TEST(CandidateKeysTest, KeysAreMinimalAndDetermineAll) {
  Rng rng(41);
  const int n = 6;
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<Fd> fds;
    for (int i = 0; i < 4; ++i) {
      Mask lhs = rng.RandomMask(n, 0.3);
      Mask rhs = rng.RandomMask(n, 0.3);
      if (rhs == 0) rhs = Mask{1} << rng.UniformInt(0, n - 1);
      fds.push_back({ItemSet(lhs), ItemSet(rhs)});
    }
    ItemSet attrs(FullMask(n));
    Result<std::vector<ItemSet>> keys = CandidateKeys(attrs, fds);
    ASSERT_TRUE(keys.ok());
    ASSERT_FALSE(keys->empty());
    for (const ItemSet& key : *keys) {
      EXPECT_TRUE(attrs.IsSubsetOf(FdClosure(key, fds)));
      // Minimality: removing any attribute breaks it.
      ForEachBit(key.bits(), [&](int a) {
        EXPECT_FALSE(
            attrs.IsSubsetOf(FdClosure(key.Minus(ItemSet::Singleton(a)), fds)));
      });
    }
  }
}

TEST(BcnfTest, ViolationDetection) {
  // ABCD with A->B, B->C: B->C violates BCNF (B not a superkey).
  ItemSet attrs{0, 1, 2, 3};
  Result<std::optional<BcnfViolation>> v = FindBcnfViolation(attrs, ChainFds());
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_FALSE(*IsBcnf(attrs, ChainFds()));
}

TEST(BcnfTest, KeyOnlySchemasAreBcnf) {
  // R(A,B) with A -> B: A is a key; BCNF.
  std::vector<Fd> fds{{ItemSet{0}, ItemSet{1}}};
  EXPECT_TRUE(*IsBcnf(ItemSet{0, 1}, fds));
  // No FDs at all: BCNF trivially.
  EXPECT_TRUE(*IsBcnf(ItemSet{0, 1, 2}, {}));
}

TEST(BcnfTest, ProjectedViolationsAreFound) {
  // Schema AC under {A->B, B->C}: projected dependency A->C violates
  // nothing (A is a key of AC)... but schema BC has B->C with B a key of
  // BC. Use ACD under {A->B, B->C}: A->C is implied; A is not a superkey
  // of ACD? closure(A) = ABC, misses D -> violation (A -> C).
  Result<std::optional<BcnfViolation>> v =
      FindBcnfViolation(ItemSet{0, 2, 3}, ChainFds());
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ((*v)->lhs, ItemSet{0});
  EXPECT_EQ((*v)->rhs, ItemSet{2});
}

TEST(BcnfTest, DecomposeChainSchema) {
  ItemSet attrs{0, 1, 2, 3};
  Result<std::vector<ItemSet>> parts = BcnfDecompose(attrs, ChainFds());
  ASSERT_TRUE(parts.ok());
  // Every part is in BCNF and the parts cover the schema.
  Mask covered = 0;
  for (const ItemSet& part : *parts) {
    EXPECT_TRUE(*IsBcnf(part, ChainFds())) << part.bits();
    covered |= part.bits();
  }
  EXPECT_EQ(covered, attrs.bits());
  EXPECT_GE(parts->size(), 2u);
}

TEST(BcnfTest, DecomposeRandomSchemasAllPartsBcnf) {
  Rng rng(42);
  const int n = 6;
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<Fd> fds;
    for (int i = 0; i < 3; ++i) {
      Mask lhs = rng.RandomMask(n, 0.3);
      Mask rhs = rng.RandomMask(n, 0.2);
      if (rhs == 0) rhs = Mask{1} << rng.UniformInt(0, n - 1);
      fds.push_back({ItemSet(lhs), ItemSet(rhs)});
    }
    ItemSet attrs(FullMask(n));
    Result<std::vector<ItemSet>> parts = BcnfDecompose(attrs, fds);
    ASSERT_TRUE(parts.ok());
    Mask covered = 0;
    for (const ItemSet& part : *parts) {
      EXPECT_TRUE(*IsBcnf(part, fds));
      covered |= part.bits();
    }
    EXPECT_EQ(covered, attrs.bits());
  }
}

TEST(LosslessTest, BinarySplit) {
  // ABCD -> (AB, ACD) under A->B: common = A, A->AB holds: lossless.
  EXPECT_TRUE(IsLosslessBinarySplit(ItemSet{0, 1}, ItemSet{0, 2, 3},
                                    {{ItemSet{0}, ItemSet{1}}}));
  // (AB, CD) with no FDs: common = ∅: lossy.
  EXPECT_FALSE(IsLosslessBinarySplit(ItemSet{0, 1}, ItemSet{2, 3}, {}));
}

TEST(Synthesize3NfTest, ChainSchema) {
  ItemSet attrs{0, 1, 2, 3};
  Result<std::vector<ItemSet>> parts = Synthesize3Nf(attrs, ChainFds());
  ASSERT_TRUE(parts.ok());
  std::set<Mask> schemas;
  for (const ItemSet& part : *parts) schemas.insert(part.bits());
  // AB (from A->B), BC (from B->C), and a key schema containing AD.
  EXPECT_TRUE(schemas.count(0b0011));
  EXPECT_TRUE(schemas.count(0b0110));
  bool has_key = false;
  for (Mask s : schemas) {
    if (IsSubset(0b1001, s)) has_key = true;
  }
  EXPECT_TRUE(has_key);
}

TEST(Synthesize3NfTest, PreservesDependencies) {
  // Each cover FD must be contained in some schema.
  Rng rng(43);
  const int n = 5;
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<Fd> fds;
    for (int i = 0; i < 3; ++i) {
      Mask lhs = rng.RandomMask(n, 0.3);
      Mask rhs = Mask{1} << rng.UniformInt(0, n - 1);
      fds.push_back({ItemSet(lhs), ItemSet(rhs)});
    }
    ItemSet attrs(FullMask(n));
    Result<std::vector<ItemSet>> parts = Synthesize3Nf(attrs, fds);
    ASSERT_TRUE(parts.ok());
    for (const Fd& fd : FdMinimalCover(fds)) {
      bool housed = false;
      for (const ItemSet& part : *parts) {
        if (fd.lhs.Union(fd.rhs).IsSubsetOf(part)) housed = true;
      }
      EXPECT_TRUE(housed) << fd.lhs.bits() << "->" << fd.rhs.bits();
    }
  }
}

TEST(GuardTest, LargeSchemasRejected) {
  std::vector<Fd> none;
  EXPECT_EQ(CandidateKeys(ItemSet(FullMask(30)), none, 24).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FindBcnfViolation(ItemSet(FullMask(30)), none, 20).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace diffc
