#include <gtest/gtest.h>

#include "core/function_ops.h"
#include "fis/generator.h"
#include "fis/ndi.h"
#include "fis/support.h"

namespace diffc {
namespace {

BasketList TestData(std::uint64_t seed, int items = 9, int baskets = 250) {
  BasketGenConfig config;
  config.num_items = items;
  config.num_baskets = baskets;
  config.num_patterns = 3;
  config.pattern_size = 3;
  config.pattern_prob = 0.4;
  config.noise_density = 0.15;
  config.seed = seed;
  return *GenerateBaskets(config);
}

TEST(NdiBoundsTest, EmptySetIsPinnedToBasketCount) {
  Result<SupportBounds> bounds = NdiBounds(0, 42, [](Mask) { return 0; });
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->lower, 42);
  EXPECT_EQ(bounds->upper, 42);
  EXPECT_TRUE(bounds->Derivable());
}

TEST(NdiBoundsTest, SingletonBoundedByEmptySetSupport) {
  // For |X| = 1 the only deduction is 0 <= s(X) <= s(∅).
  Result<SupportBounds> bounds = NdiBounds(0b1, 100, [](Mask m) {
    EXPECT_EQ(m, 0u);
    return 100;
  });
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->lower, 0);
  EXPECT_EQ(bounds->upper, 100);
}

TEST(NdiBoundsTest, PairBounds) {
  // s(AB) >= s(A) + s(B) - s(∅) (from Y=∅) and <= min(s(A), s(B)).
  auto support = [](Mask m) -> std::int64_t {
    switch (m) {
      case 0b00: return 10;
      case 0b01: return 7;
      case 0b10: return 6;
      default: return 0;
    }
  };
  Result<SupportBounds> bounds = NdiBounds(0b11, 10, support);
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->lower, 3);  // 7 + 6 - 10.
  EXPECT_EQ(bounds->upper, 6);
}

TEST(NdiBoundsTest, GuardOnLargeSets) {
  EXPECT_EQ(NdiBounds(FullMask(21), 1, [](Mask) { return 0; }).status().code(),
            StatusCode::kResourceExhausted);
}

// The bounds are valid for every itemset of every basket list — this is
// exactly "support functions are frequency functions" (Section 6) read as
// deduction rules.
class NdiBoundsProperty : public ::testing::TestWithParam<int> {};

TEST_P(NdiBoundsProperty, TrueSupportAlwaysWithinBounds) {
  BasketList b = TestData(GetParam(), /*items=*/7, /*baskets=*/60);
  SetFunction<std::int64_t> support = *SupportFunction(b);
  for (Mask x = 1; x < (Mask{1} << b.num_items()); ++x) {
    Result<SupportBounds> bounds =
        NdiBounds(x, b.size(), [&](Mask m) { return support.at(m); });
    ASSERT_TRUE(bounds.ok());
    EXPECT_LE(bounds->lower, support.at(x)) << x;
    EXPECT_GE(bounds->upper, support.at(x)) << x;
    if (bounds->Derivable()) {
      EXPECT_EQ(bounds->lower, support.at(x)) << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NdiBoundsProperty, ::testing::Range(1, 9));

TEST(NdiRepresentationTest, BuildValidates) {
  EXPECT_FALSE(NdiRepresentation::Build(TestData(1), 0).ok());
}

TEST(NdiRepresentationTest, StoredSetsAreNonDerivableFrequent) {
  BasketList b = TestData(2);
  const std::int64_t kappa = 15;
  NdiRepresentation rep = *NdiRepresentation::Build(b, kappa);
  SetFunction<std::int64_t> support = *SupportFunction(b);
  for (const CountedItemset& s : rep.ndi()) {
    EXPECT_GE(s.support, kappa);
    EXPECT_EQ(s.support, support.at(s.items));
    Result<SupportBounds> bounds =
        NdiBounds(s.items, b.size(), [&](Mask m) { return support.at(m); });
    ASSERT_TRUE(bounds.ok());
    EXPECT_FALSE(bounds->Derivable()) << s.items;
  }
}

// Headline property: statuses of all itemsets and exact supports of all
// frequent itemsets are recoverable from the NDI representation alone.
class NdiCorrectness : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(NdiCorrectness, DerivesEverything) {
  auto [seed, kappa] = GetParam();
  BasketList b = TestData(seed);
  SetFunction<std::int64_t> support = *SupportFunction(b);
  NdiRepresentation rep = *NdiRepresentation::Build(b, kappa);
  for (Mask m = 0; m < (Mask{1} << b.num_items()); ++m) {
    SCOPED_TRACE(m);
    DerivedSupport d = rep.Derive(ItemSet(m));
    const std::int64_t truth = support.at(m);
    EXPECT_EQ(d.frequent, truth >= kappa);
    if (truth >= kappa) {
      ASSERT_TRUE(d.support.has_value());
      EXPECT_EQ(*d.support, truth);
    } else if (d.support.has_value()) {
      EXPECT_EQ(*d.support, truth);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, NdiCorrectness,
                         ::testing::Combine(::testing::Values(3, 4, 5),
                                            ::testing::Values<std::int64_t>(10, 40, 90)));

TEST(NdiRepresentationTest, NeverLargerThanFrequentSets) {
  BasketList b = TestData(6, /*items=*/10, /*baskets=*/500);
  const std::int64_t kappa = 25;
  NdiRepresentation rep = *NdiRepresentation::Build(b, kappa);
  AprioriResult apriori = *Apriori(b, kappa);
  EXPECT_LE(rep.size(), apriori.frequent.size());
  EXPECT_LE(rep.candidates_counted(), apriori.candidates_counted);
}

TEST(NdiRepresentationTest, EmptyWhenThresholdAboveBaskets) {
  BasketList b = TestData(7);
  NdiRepresentation rep = *NdiRepresentation::Build(b, b.size() + 1);
  EXPECT_TRUE(rep.ndi().empty());
  EXPECT_FALSE(rep.Derive(ItemSet{0}).frequent);
  EXPECT_FALSE(rep.Derive(ItemSet()).frequent);
}

}  // namespace
}  // namespace diffc
