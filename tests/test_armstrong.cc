#include <gtest/gtest.h>

#include "core/armstrong.h"
#include "core/closure.h"
#include "core/counterexample.h"
#include "core/function_ops.h"
#include "core/implication.h"
#include "core/parser.h"
#include "fis/support.h"
#include "test_helpers.h"

namespace diffc {
namespace {

TEST(ArmstrongTest, SatisfiesExactlyTheGivenSetOnExample) {
  Universe u = Universe::Letters(3);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {B}; B -> {C}");
  SetFunction<std::int64_t> f = *ArmstrongFunction(3, c);
  // Satisfies every premise and every consequence...
  EXPECT_TRUE(Satisfies(f, *ParseConstraint(u, "A -> {B}")));
  EXPECT_TRUE(Satisfies(f, *ParseConstraint(u, "B -> {C}")));
  EXPECT_TRUE(Satisfies(f, *ParseConstraint(u, "A -> {C}")));
  // ...but nothing that is not implied.
  EXPECT_FALSE(Satisfies(f, *ParseConstraint(u, "C -> {A}")));
  EXPECT_FALSE(Satisfies(f, *ParseConstraint(u, "B -> {A}")));
  EXPECT_FALSE(Satisfies(f, *ParseConstraint(u, "0 -> {A}")));
}

TEST(ArmstrongTest, IsArmstrongFunctionRecognizer) {
  Universe u = Universe::Letters(3);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {B}");
  SetFunction<std::int64_t> f = *ArmstrongFunction(3, c);
  EXPECT_TRUE(IsArmstrongFunction(f, c));
  // A generic counterexample function is not Armstrong for c (its density
  // vanishes on far more than L(c)).
  SetFunction<std::int64_t> g = *CounterexampleFunction(3, ItemSet{2});
  EXPECT_FALSE(IsArmstrongFunction(g, c));
}

TEST(ArmstrongTest, BasketsSupportFunctionIsArmstrongFunction) {
  Universe u = Universe::Letters(4);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {BC, CD}; C -> {D}");
  BasketList b = *ArmstrongBaskets(4, c);
  EXPECT_EQ(*SupportFunction(b), *ArmstrongFunction(4, c));
  EXPECT_TRUE(IsArmstrongFunction(*SupportFunction(b), c));
}

TEST(ArmstrongTest, EmptyConstraintSet) {
  // L(∅-set) = ∅, so the Armstrong function has density 1 everywhere: it
  // violates every nontrivial constraint.
  SetFunction<std::int64_t> f = *ArmstrongFunction(3, {});
  Universe u = Universe::Letters(3);
  EXPECT_FALSE(Satisfies(f, *ParseConstraint(u, "A -> {B}")));
  EXPECT_TRUE(Satisfies(f, *ParseConstraint(u, "AB -> {A}")));  // Trivial.
  EXPECT_TRUE(IsArmstrongFunction(f, {}));
}

TEST(ArmstrongTest, GuardOnLargeUniverse) {
  EXPECT_EQ(ArmstrongBaskets(24, {}, /*max_bits=*/20).status().code(),
            StatusCode::kResourceExhausted);
}

// The defining property, on random constraint sets: the Armstrong
// function satisfies a constraint iff that constraint is implied.
class ArmstrongProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArmstrongProperty, SatisfiesExactlyTheClosure) {
  Rng rng(GetParam() * 271 + 9);
  const int n = 5;
  for (int iter = 0; iter < 10; ++iter) {
    ConstraintSet c =
        testing::RandomConstraintSet(rng, n, static_cast<int>(rng.UniformInt(0, 4)));
    SetFunction<std::int64_t> f = *ArmstrongFunction(n, c);
    ASSERT_TRUE(IsArmstrongFunction(f, c));
    for (int g_iter = 0; g_iter < 20; ++g_iter) {
      DifferentialConstraint goal = testing::RandomConstraint(
          rng, n, 0.3, static_cast<int>(rng.UniformInt(0, 3)), 0.35);
      EXPECT_EQ(Satisfies(f, goal), CheckImplicationSat(n, c, goal)->implied)
          << goal.ToString(Universe::Letters(n));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArmstrongProperty, ::testing::Range(1, 11));

// One Armstrong model answers every implication query for its constraint
// set — including through the support-function (basket) semantics.
TEST(ArmstrongTest, BasketsDecideImplicationQueries) {
  Rng rng(515);
  const int n = 5;
  ConstraintSet c = testing::RandomConstraintSet(rng, n, 3);
  BasketList b = *ArmstrongBaskets(n, c);
  SetFunction<std::int64_t> support = *SupportFunction(b);
  SetFunction<std::int64_t> density = Density(support);
  for (int iter = 0; iter < 30; ++iter) {
    DifferentialConstraint goal = testing::RandomConstraint(rng, n);
    EXPECT_EQ(SatisfiesWithDensity(density, goal),
              CheckImplicationSat(n, c, goal)->implied);
  }
}

}  // namespace
}  // namespace diffc
