#include <gtest/gtest.h>

#include <set>

#include "core/function_ops.h"
#include "core/implication.h"
#include "core/parser.h"
#include "fis/apriori.h"
#include "fis/basket.h"
#include "fis/disjunctive.h"
#include "fis/generator.h"
#include "fis/support.h"
#include "test_helpers.h"

namespace diffc {
namespace {

BasketList SmallMarket() {
  // Items: 0=bread, 1=milk, 2=butter, 3=beer.
  return *BasketList::Make(4, {
                                  0b0011,  // bread, milk
                                  0b0111,  // bread, milk, butter
                                  0b0001,  // bread
                                  0b1000,  // beer
                                  0b1011,  // bread, milk, beer
                              });
}

// ------------------------------------------------------------------ baskets

TEST(BasketTest, MakeValidates) {
  EXPECT_TRUE(BasketList::Make(3, {0b101}).ok());
  EXPECT_FALSE(BasketList::Make(2, {0b100}).ok());
  EXPECT_FALSE(BasketList::Make(65, {}).ok());
}

TEST(BasketTest, SupportCountAndCover) {
  BasketList b = SmallMarket();
  EXPECT_EQ(b.SupportCount(ItemSet()), 5);
  EXPECT_EQ(b.SupportCount(ItemSet{0}), 4);
  EXPECT_EQ(b.SupportCount(ItemSet{0, 1}), 3);
  EXPECT_EQ(b.SupportCount(ItemSet{3}), 2);
  EXPECT_EQ(b.Cover(ItemSet{0, 1}), (std::vector<int>{0, 1, 4}));
}

TEST(BasketTest, DuplicateBasketsCountTwice) {
  BasketList b = *BasketList::Make(2, {0b11, 0b11});
  EXPECT_EQ(b.SupportCount(ItemSet{0, 1}), 2);
}

// ------------------------------------------------------------------ support

TEST(SupportTest, MultiplicityIsDensityOfSupport) {
  // Section 6.1: d_{s_B} = d^B.
  BasketList b = SmallMarket();
  SetFunction<std::int64_t> support = *SupportFunction(b);
  SetFunction<std::int64_t> multiplicity = *BasketMultiplicity(b);
  EXPECT_EQ(Density(support), multiplicity);
}

TEST(SupportTest, MatchesLinearScan) {
  BasketList b = SmallMarket();
  SetFunction<std::int64_t> support = *SupportFunction(b);
  for (Mask m = 0; m < 16; ++m) {
    EXPECT_EQ(support.at(m), b.SupportCount(ItemSet(m))) << m;
  }
}

TEST(SupportTest, SupportFunctionIsFrequencyFunction) {
  // Section 6.1: every support function is a frequency function.
  BasketList b = SmallMarket();
  EXPECT_TRUE(IsFrequencyFunction(*SupportFunction(b)));
}

TEST(SupportTest, EmptyBasketListIsZero) {
  BasketList b = *BasketList::Make(3, {});
  SetFunction<std::int64_t> support = *SupportFunction(b);
  for (Mask m = 0; m < 8; ++m) EXPECT_EQ(support.at(m), 0);
}

// ----------------------------------------------------------------- Apriori

TEST(AprioriTest, SmallMarketFrequentSets) {
  BasketList b = SmallMarket();
  Result<AprioriResult> r = Apriori(b, 3);
  ASSERT_TRUE(r.ok());
  std::set<Mask> frequent;
  for (const CountedItemset& s : r->frequent) frequent.insert(s.items);
  // Support>=3: ∅(5), bread(4), milk(3), bread+milk(3).
  EXPECT_EQ(frequent, (std::set<Mask>{0, 0b0001, 0b0010, 0b0011}));
}

TEST(AprioriTest, NegativeBorderIsMinimalInfrequent) {
  BasketList b = SmallMarket();
  Result<AprioriResult> r = Apriori(b, 3);
  ASSERT_TRUE(r.ok());
  std::set<Mask> border;
  for (const CountedItemset& s : r->negative_border) border.insert(s.items);
  // Minimal infrequent: butter(1), beer(2).
  EXPECT_EQ(border, (std::set<Mask>{0b0100, 0b1000}));
}

TEST(AprioriTest, SupportsAreExact) {
  BasketList b = SmallMarket();
  Result<AprioriResult> r = Apriori(b, 2);
  ASSERT_TRUE(r.ok());
  for (const CountedItemset& s : r->frequent) {
    EXPECT_EQ(s.support, b.SupportCount(ItemSet(s.items)));
  }
  for (const CountedItemset& s : r->negative_border) {
    EXPECT_EQ(s.support, b.SupportCount(ItemSet(s.items)));
  }
}

TEST(AprioriTest, ThresholdAboveSizeGivesEmptyBorder) {
  BasketList b = SmallMarket();
  Result<AprioriResult> r = Apriori(b, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->frequent.empty());
  ASSERT_EQ(r->negative_border.size(), 1u);
  EXPECT_EQ(r->negative_border[0].items, 0u);  // ∅ itself infrequent.
}

TEST(AprioriTest, RejectsNonpositiveThreshold) {
  EXPECT_FALSE(Apriori(SmallMarket(), 0).ok());
}

class AprioriProperty : public ::testing::TestWithParam<int> {};

TEST_P(AprioriProperty, MatchesExhaustive) {
  BasketGenConfig config;
  config.num_items = 9;
  config.num_baskets = 120;
  config.num_patterns = 4;
  config.pattern_size = 3;
  config.seed = GetParam();
  BasketList b = *GenerateBaskets(config);
  for (std::int64_t threshold : {1, 5, 20, 60}) {
    Result<AprioriResult> apriori = Apriori(b, threshold);
    Result<std::vector<CountedItemset>> brute = FrequentItemsetsExhaustive(b, threshold);
    ASSERT_TRUE(apriori.ok());
    ASSERT_TRUE(brute.ok());
    EXPECT_EQ(apriori->frequent, *brute) << "threshold=" << threshold;
    // Border property: infrequent, all proper subsets frequent.
    std::set<Mask> frequent;
    for (const CountedItemset& s : apriori->frequent) frequent.insert(s.items);
    for (const CountedItemset& s : apriori->negative_border) {
      EXPECT_LT(s.support, threshold);
      ForEachBit(s.items, [&](int bit) {
        EXPECT_TRUE(frequent.count(s.items & ~(Mask{1} << bit)));
      });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AprioriProperty, ::testing::Range(1, 9));

// ------------------------------------------------------- disjunctive rules

TEST(DisjunctiveTest, DefinitionOnSmallMarket) {
  BasketList b = SmallMarket();
  Universe u = Universe::Letters(4);  // A=bread, B=milk, C=butter, D=beer.
  // Every basket with milk contains bread: B ⇒disj {A}.
  EXPECT_TRUE(SatisfiesDisjunctive(b, *ParseConstraint(u, "B -> {A}")));
  // Not every basket with bread has milk.
  EXPECT_FALSE(SatisfiesDisjunctive(b, *ParseConstraint(u, "A -> {B}")));
  // Every basket has bread or beer: ∅ ⇒disj {A, D}.
  EXPECT_TRUE(SatisfiesDisjunctive(b, *ParseConstraint(u, "0 -> {A, D}")));
  // Empty family: only satisfied when no basket contains the lhs.
  EXPECT_FALSE(SatisfiesDisjunctive(b, *ParseConstraint(u, "A -> {}")));
  EXPECT_TRUE(SatisfiesDisjunctive(b, *ParseConstraint(u, "CD -> {}")));
}

// Proposition 6.3: B satisfies X ⇒disj Y iff s_B satisfies X -> Y.
class Prop63Property : public ::testing::TestWithParam<int> {};

TEST_P(Prop63Property, DisjunctiveIffSupportSatisfies) {
  BasketGenConfig config;
  config.num_items = 6;
  config.num_baskets = 40;
  config.num_patterns = 3;
  config.pattern_size = 3;
  config.seed = GetParam() * 7 + 2;
  BasketList b = *GenerateBaskets(config);
  SetFunction<std::int64_t> support = *SupportFunction(b);
  SetFunction<std::int64_t> density = Density(support);
  Rng rng(GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    DifferentialConstraint c = testing::RandomConstraint(
        rng, 6, 0.3, static_cast<int>(rng.UniformInt(0, 3)), 0.3);
    EXPECT_EQ(SatisfiesDisjunctive(b, c), SatisfiesWithDensity(density, c))
        << c.ToString(Universe::Letters(6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop63Property, ::testing::Range(1, 11));

TEST(SingletonRuleTest, MatchesGeneralForm) {
  BasketList b = SmallMarket();
  // B ⇒ {A} as a singleton rule.
  EXPECT_TRUE(SatisfiesSingletonRule(b, {0b0010, 0b0001}));
  EXPECT_FALSE(SatisfiesSingletonRule(b, {0b0001, 0b0010}));
  // ∅ ⇒ {A, D}.
  EXPECT_TRUE(SatisfiesSingletonRule(b, {0, 0b1001}));
}

TEST(DisjunctiveItemsetTest, SmallMarket) {
  BasketList b = SmallMarket();
  // {bread, milk} ⊇ {milk}∪{bread} and B ⇒ {A} holds, so AB is disjunctive.
  EXPECT_TRUE(*IsDisjunctiveItemset(b, ItemSet{0, 1}, 2));
  // A single item can only be disjunctive via ∅ ⇒ {a}: bread is not in
  // every basket.
  EXPECT_FALSE(*IsDisjunctiveItemset(b, ItemSet{0}, 2));
  // Supersets of disjunctive sets are disjunctive (augmentation).
  EXPECT_TRUE(*IsDisjunctiveItemset(b, ItemSet{0, 1, 3}, 2));
}

TEST(DisjunctiveItemsetTest, ArityMatters) {
  // Baskets where every basket with item 0 has item 1 or item 2, but no
  // arity-1 rule holds within {0,1,2}.
  BasketList b = *BasketList::Make(3, {0b011, 0b101, 0b111, 0b110, 0b010, 0b100});
  EXPECT_TRUE(*IsDisjunctiveItemset(b, ItemSet{0, 1, 2}, 2));
  EXPECT_FALSE(*IsDisjunctiveItemset(b, ItemSet{0, 1, 2}, 1));
}

TEST(MineSingletonRulesTest, FindsPlantedRule) {
  BasketGenConfig config;
  config.num_items = 6;
  config.num_baskets = 200;
  config.seed = 17;
  PlantedRule rule{0, ItemSet{1, 2}};
  BasketList b = *GenerateBasketsWithRules(config, {rule});
  // The planted rule must hold.
  EXPECT_TRUE(SatisfiesSingletonRule(b, {0b000001, 0b000110}));
  Result<std::vector<SingletonDisjunctiveRule>> mined = MineSingletonRules(b, 1, 2);
  ASSERT_TRUE(mined.ok());
  bool found = false;
  for (const SingletonDisjunctiveRule& r : *mined) {
    if (IsSubset(r.lhs, Mask{1}) && IsSubset(r.rhs_items, Mask{0b110})) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MineSingletonRulesTest, MinedRulesHoldAndAreMinimal) {
  BasketGenConfig config;
  config.num_items = 7;
  config.num_baskets = 60;
  config.seed = 23;
  BasketList b = *GenerateBaskets(config);
  Result<std::vector<SingletonDisjunctiveRule>> mined = MineSingletonRules(b, 2, 2);
  ASSERT_TRUE(mined.ok());
  for (const SingletonDisjunctiveRule& r : *mined) {
    EXPECT_TRUE(SatisfiesSingletonRule(b, r));
    for (const SingletonDisjunctiveRule& other : *mined) {
      if (&other != &r) {
        EXPECT_FALSE(IsSubset(other.lhs, r.lhs) && IsSubset(other.rhs_items, r.rhs_items) &&
                     !(other == r));
      }
    }
  }
}

// ------------------------------------------------ Σ2 disjunctive-for-C

TEST(Sigma2Test, DirectConstraint) {
  Universe u = Universe::Letters(4);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {B, D}");
  // ABD ⊇ A∪B∪D and the constraint is nontrivial and implied.
  EXPECT_TRUE(*IsDisjunctiveForConstraints(4, c, ItemSet{0, 1, 3}));
  // AB does not contain D: the only usable rules must live inside AB.
  EXPECT_FALSE(*IsDisjunctiveForConstraints(4, c, ItemSet{0, 1}));
}

TEST(Sigma2Test, PaperTransitivityExample) {
  // Section 6 discussion: from A -> {B,D} and B -> {C,D}, the set {A,C,D}
  // is disjunctive via the derived constraint A -> {C,D}... expressed over
  // singletons.
  Universe u = Universe::Letters(4);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {B, D}; B -> {C, D}");
  EXPECT_TRUE(*IsDisjunctiveForConstraints(4, c, ItemSet{0, 2, 3}));
}

TEST(Sigma2Test, EmptyConstraintsNothingDisjunctive) {
  EXPECT_FALSE(*IsDisjunctiveForConstraints(4, {}, ItemSet{0, 1, 2, 3}));
}

// ---------------------------------------------------------------- generator

TEST(GeneratorTest, Deterministic) {
  BasketGenConfig config;
  config.seed = 99;
  BasketList a = *GenerateBaskets(config);
  BasketList b = *GenerateBaskets(config);
  EXPECT_EQ(a.baskets(), b.baskets());
}

TEST(GeneratorTest, RespectsUniverse) {
  BasketGenConfig config;
  config.num_items = 5;
  config.num_baskets = 50;
  BasketList b = *GenerateBaskets(config);
  EXPECT_EQ(b.size(), 50);
  for (Mask basket : b.baskets()) EXPECT_TRUE(IsSubset(basket, FullMask(5)));
}

TEST(GeneratorTest, PlantedRulesAllHold) {
  BasketGenConfig config;
  config.num_items = 8;
  config.num_baskets = 300;
  config.seed = 5;
  std::vector<PlantedRule> rules{{0, ItemSet{1, 2}}, {3, ItemSet{4}}};
  BasketList b = *GenerateBasketsWithRules(config, rules);
  EXPECT_TRUE(SatisfiesSingletonRule(b, {0b00000001, 0b00000110}));
  EXPECT_TRUE(SatisfiesSingletonRule(b, {0b00001000, 0b00010000}));
}

TEST(GeneratorTest, RejectsBadConfig) {
  BasketGenConfig config;
  config.num_items = 0;
  EXPECT_FALSE(GenerateBaskets(config).ok());
  config.num_items = 4;
  EXPECT_FALSE(GenerateBasketsWithRules(config, {{7, ItemSet{1}}}).ok());
  EXPECT_FALSE(GenerateBasketsWithRules(config, {{0, ItemSet()}}).ok());
}

}  // namespace
}  // namespace diffc
