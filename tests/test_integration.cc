#include <gtest/gtest.h>

#include <set>

#include "core/closure.h"
#include "core/counterexample.h"
#include "core/function_ops.h"
#include "core/implication.h"
#include "core/inference.h"
#include "core/parser.h"
#include "fis/basket.h"
#include "fis/disjunctive.h"
#include "fis/support.h"
#include "prop/implication_constraint.h"
#include "prop/minterm.h"
#include "relational/boolean_dependency.h"
#include "test_helpers.h"

namespace diffc {
namespace {

// Theorem 8.1 makes nine statements equivalent. This suite cross-checks the
// decidable faces of that equivalence on random instances:
//
//   (1) C |= X -> Y                    (lattice containment, exhaustive)
//   (2) C |=support(S) X -> Y          (support-function counterexamples)
//   (3) Cprop |= X ⇒prop Y             (propositional entailment, minsets)
//   (4) Cdisj |= X ⇒disj Y             (basket-list counterexamples)
//   (5) C ⊢ X -> Y                     (machine-generated derivations)
//   (6) L(C) ⊇ L(X, Y)                 (direct containment)
//   (7) the SAT decision procedure.
class Theorem81 : public ::testing::TestWithParam<int> {
 protected:
  static constexpr int kN = 5;

  // Faces (1)/(6): direct lattice containment.
  static bool LatticeContainment(const ConstraintSet& c, const DifferentialConstraint& g) {
    for (Mask m = 0; m < (Mask{1} << kN); ++m) {
      ItemSet u(m);
      if (InDecomposition(kN, g.lhs(), g.rhs(), u) && !InClosureLattice(c, u)) {
        return false;
      }
    }
    return true;
  }

  // Face (3): propositional entailment of the translated formulas.
  static bool PropositionalEntailment(const ConstraintSet& c,
                                      const DifferentialConstraint& g) {
    std::vector<prop::FormulaPtr> premises;
    for (const DifferentialConstraint& p : c) {
      premises.push_back(prop::ImplicationConstraintFormula(p.lhs(), p.rhs()));
    }
    return *prop::Entails(premises,
                          *prop::ImplicationConstraintFormula(g.lhs(), g.rhs()), kN);
  }

  // Faces (2)/(4): search all one-basket lists (U) for a counterexample —
  // per Proposition 6.4's proof these witness every non-implication.
  static bool SupportImplication(const ConstraintSet& c, const DifferentialConstraint& g) {
    for (Mask u = 0; u < (Mask{1} << kN); ++u) {
      BasketList b = *BasketList::Make(kN, {u});
      bool premises_ok = true;
      for (const DifferentialConstraint& p : c) {
        if (!SatisfiesDisjunctive(b, p)) {
          premises_ok = false;
          break;
        }
      }
      if (premises_ok && !SatisfiesDisjunctive(b, g)) return false;
    }
    return true;
  }
};

TEST_P(Theorem81, AllFacesAgree) {
  Rng rng(GetParam() * 7919 + 13);
  for (int iter = 0; iter < 10; ++iter) {
    ConstraintSet c =
        testing::RandomConstraintSet(rng, kN, static_cast<int>(rng.UniformInt(0, 3)));
    DifferentialConstraint goal = testing::RandomConstraint(
        rng, kN, 0.3, static_cast<int>(rng.UniformInt(0, 2)), 0.35);

    const bool lattice = LatticeContainment(c, goal);
    EXPECT_EQ(CheckImplicationExhaustive(kN, c, goal)->implied, lattice);
    EXPECT_EQ(CheckImplicationSat(kN, c, goal)->implied, lattice);
    EXPECT_EQ(PropositionalEntailment(c, goal), lattice);
    EXPECT_EQ(SupportImplication(c, goal), lattice);
    Result<Derivation> derivation = DeriveImplied(kN, c, goal);
    EXPECT_EQ(derivation.ok(), lattice);
    if (derivation.ok()) {
      EXPECT_TRUE(ValidateDerivation(kN, c, *derivation).ok());
      EXPECT_EQ(derivation->conclusion(), goal);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem81, ::testing::Range(1, 13));

// End-to-end: a full pipeline on the paper's own running example.
TEST(IntegrationTest, PaperRunningExample) {
  Universe u = Universe::Letters(4);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {BC, CD}; C -> {D}");

  // Example 4.3: AB -> {D} is derivable, hence implied, hence every
  // support function satisfying C satisfies it.
  DifferentialConstraint goal = *ParseConstraint(u, "AB -> {D}");
  ASSERT_TRUE(CheckImplication(4, c, goal)->implied);
  Result<Derivation> proof = DeriveImplied(4, c, goal);
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(ValidateDerivation(4, c, *proof).ok());

  // A goal that is not implied, with a counterexample that works at every
  // level: function, basket list, lattice.
  DifferentialConstraint bad = *ParseConstraint(u, "D -> {A}");
  Result<ImplicationOutcome> outcome = CheckImplication(4, c, bad);
  ASSERT_FALSE(outcome->implied);
  ItemSet cex = *outcome->counterexample;
  EXPECT_TRUE(IsValidCounterexample(4, c, bad, cex));

  SetFunction<std::int64_t> f = *CounterexampleFunction(4, cex);
  for (const DifferentialConstraint& p : c) EXPECT_TRUE(Satisfies(f, p));
  EXPECT_FALSE(Satisfies(f, bad));

  BasketList b = *BasketList::Make(4, {cex.bits()});
  for (const DifferentialConstraint& p : c) EXPECT_TRUE(SatisfiesDisjunctive(b, p));
  EXPECT_FALSE(SatisfiesDisjunctive(b, bad));
  // And the support function of that basket list is exactly f.
  EXPECT_EQ(*SupportFunction(b), f);
}

// Boolean-dependency face (Corollary 7.4, soundness direction): relations
// whose boolean dependencies include C also satisfy implied constraints.
TEST(IntegrationTest, BooleanDependencyFaceSound) {
  Rng rng(4242);
  const int n = 4;
  for (int iter = 0; iter < 10; ++iter) {
    ConstraintSet c = testing::RandomConstraintSet(rng, n, 2);
    DifferentialConstraint goal = testing::RandomConstraint(rng, n, 0.3, 2, 0.35);
    if (!CheckImplicationSat(n, c, goal)->implied) continue;
    // Random relations satisfying all of C must satisfy the goal.
    for (int r_iter = 0; r_iter < 20; ++r_iter) {
      int tuples = static_cast<int>(rng.UniformInt(1, 6));
      std::vector<std::vector<int>> rows;
      std::set<std::vector<int>> seen;
      while (static_cast<int>(rows.size()) < tuples) {
        std::vector<int> row(n);
        for (int a = 0; a < n; ++a) row[a] = static_cast<int>(rng.UniformInt(0, 2));
        if (seen.insert(row).second) rows.push_back(row);
      }
      Relation rel = *Relation::Make(n, rows);
      bool sat_all = true;
      for (const DifferentialConstraint& p : c) {
        if (!SatisfiesBooleanDependency(rel, p)) {
          sat_all = false;
          break;
        }
      }
      if (sat_all) {
        EXPECT_TRUE(SatisfiesBooleanDependency(rel, goal));
      }
    }
  }
}

// The Σ2 disjunctive-itemset notion is monotone (supersets of disjunctive
// sets are disjunctive), matching the paper's Section 6 discussion.
TEST(IntegrationTest, DisjunctiveItemsetsUpwardClosed) {
  Universe u = Universe::Letters(5);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {B, C}");
  ASSERT_TRUE(*IsDisjunctiveForConstraints(5, c, ItemSet{0, 1, 2}));
  EXPECT_TRUE(*IsDisjunctiveForConstraints(5, c, ItemSet{0, 1, 2, 3}));
  EXPECT_TRUE(*IsDisjunctiveForConstraints(5, c, ItemSet{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace diffc
