#include <gtest/gtest.h>

#include "core/differential_semantics.h"
#include "core/function_ops.h"
#include "core/counterexample.h"
#include "core/implication.h"
#include "core/parser.h"
#include "math/gauss.h"
#include "test_helpers.h"

namespace diffc {
namespace {

// ----------------------------------------------------------------- gauss

TEST(GaussTest, RowReduceRank) {
  RationalMatrix m{{Rational(1), Rational(2)}, {Rational(2), Rational(4)},
                   {Rational(0), Rational(1)}};
  EXPECT_EQ(RowReduce(m), 2);
}

TEST(GaussTest, InRowSpace) {
  RationalMatrix m{{Rational(1), Rational(0), Rational(1)},
                   {Rational(0), Rational(1), Rational(1)}};
  EXPECT_TRUE(InRowSpace(m, {Rational(1), Rational(1), Rational(2)}));
  EXPECT_FALSE(InRowSpace(m, {Rational(0), Rational(0), Rational(1)}));
  EXPECT_TRUE(InRowSpace(m, {Rational(0), Rational(0), Rational(0)}));
  EXPECT_TRUE(InRowSpace({}, {Rational(0), Rational(0)}));
}

TEST(GaussTest, SolveLinearSystem) {
  // x + y = 3, x - y = 1 -> (2, 1).
  RationalMatrix a{{Rational(1), Rational(1)}, {Rational(1), Rational(-1)}};
  auto x = SolveLinearSystem(a, {Rational(3), Rational(1)});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], Rational(2));
  EXPECT_EQ((*x)[1], Rational(1));
}

TEST(GaussTest, SolveDetectsInconsistency) {
  RationalMatrix a{{Rational(1), Rational(1)}, {Rational(2), Rational(2)}};
  EXPECT_FALSE(SolveLinearSystem(a, {Rational(1), Rational(3)}).has_value());
}

TEST(GaussTest, SolveUnderdetermined) {
  RationalMatrix a{{Rational(1), Rational(1), Rational(1)}};
  auto x = SolveLinearSystem(a, {Rational(5)});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0] + (*x)[1] + (*x)[2], Rational(5));
}

TEST(GaussTest, NullSpaceWitness) {
  // A = [1 1 0]; g = [0 0 1] is independent: witness with A x = 0, g x = 1.
  RationalMatrix a{{Rational(1), Rational(1), Rational(0)}};
  std::vector<Rational> g{Rational(0), Rational(0), Rational(1)};
  auto w = NullSpaceWitness(a, g);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ((*w)[0] + (*w)[1], Rational(0));
  EXPECT_EQ((*w)[2], Rational(1));
  // g in the row space: no witness.
  EXPECT_FALSE(NullSpaceWitness(a, {Rational(2), Rational(2), Rational(0)}).has_value());
}

TEST(GaussTest, RandomSolveVerifies) {
  Rng rng(5);
  for (int iter = 0; iter < 30; ++iter) {
    const int n = static_cast<int>(rng.UniformInt(1, 5));
    const int m = static_cast<int>(rng.UniformInt(1, 5));
    RationalMatrix a(m, std::vector<Rational>(n));
    std::vector<Rational> x_true(n);
    for (int j = 0; j < n; ++j) x_true[j] = Rational(rng.UniformInt(-4, 4));
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) a[i][j] = Rational(rng.UniformInt(-4, 4));
    }
    std::vector<Rational> b(m);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) b[i] += a[i][j] * x_true[j];
    }
    auto x = SolveLinearSystem(a, b);  // Consistent by construction.
    ASSERT_TRUE(x.has_value());
    for (int i = 0; i < m; ++i) {
      Rational lhs;
      for (int j = 0; j < n; ++j) lhs += a[i][j] * (*x)[j];
      EXPECT_EQ(lhs, b[i]);
    }
  }
}

// ------------------------------------------------- differential functional

TEST(DiffFunctionalTest, MatchesDifferentialAt) {
  Rng rng(7);
  const int n = 5;
  for (int iter = 0; iter < 25; ++iter) {
    DifferentialConstraint c = testing::RandomConstraint(rng, n);
    std::vector<Rational> functional = *DifferentialFunctional(n, c);
    SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(n);
    for (Mask m = 0; m < f.size(); ++m) f.at(m) = rng.UniformInt(-10, 10);
    Rational dot;
    for (Mask m = 0; m < f.size(); ++m) dot += functional[m] * Rational(f.at(m));
    EXPECT_EQ(dot, Rational(DifferentialAt(f, c.lhs(), c.rhs())));
  }
}

TEST(DiffFunctionalTest, TrivialConstraintHasZeroFunctional) {
  // With a member inside X the alternating sum telescopes to zero.
  Universe u = Universe::Letters(3);
  std::vector<Rational> functional =
      *DifferentialFunctional(3, *ParseConstraint(u, "AB -> {A, C}"));
  for (const Rational& v : functional) EXPECT_TRUE(v.IsZero());
}

// ------------------------------------------- differential-semantics checker

TEST(DiffSemanticsTest, SelfImplication) {
  Rng rng(9);
  const int n = 4;
  for (int i = 0; i < 10; ++i) {
    DifferentialConstraint c = testing::RandomConstraint(rng, n);
    EXPECT_TRUE(CheckImplicationDifferentialSemantics(n, {c}, c)->implied);
  }
}

TEST(DiffSemanticsTest, TrivialGoalsAlwaysImplied) {
  Universe u = Universe::Letters(3);
  EXPECT_TRUE(
      CheckImplicationDifferentialSemantics(3, {}, *ParseConstraint(u, "AB -> {A}"))
          ->implied);
}

TEST(DiffSemanticsTest, LinearCombinationImplied) {
  // The functional of X -> {Y, Z} equals the sum of carefully chosen
  // simpler functionals; verify a known linear identity:
  // D^{Y}(X) - D^{Y}(X∪Z)... Instead, verify closure under scaling: a
  // premise repeated is redundant.
  Rng rng(11);
  const int n = 4;
  DifferentialConstraint a = testing::RandomConstraint(rng, n);
  DifferentialConstraint b = testing::RandomConstraint(rng, n);
  EXPECT_EQ(CheckImplicationDifferentialSemantics(n, {a, b, a}, b)->implied, true);
}

TEST(DiffSemanticsTest, CounterexampleIsGenuine) {
  Rng rng(13);
  const int n = 4;
  int found = 0;
  for (int iter = 0; iter < 30 && found < 10; ++iter) {
    ConstraintSet premises = testing::RandomConstraintSet(rng, n, 2);
    DifferentialConstraint goal = testing::RandomConstraint(rng, n);
    Result<DifferentialImplicationOutcome> r =
        CheckImplicationDifferentialSemantics(n, premises, goal);
    ASSERT_TRUE(r.ok());
    if (r->implied) continue;
    ++found;
    const SetFunction<Rational>& f = *r->counterexample;
    for (const DifferentialConstraint& p : premises) {
      EXPECT_TRUE(IsZeroValue(DifferentialAt(f, p.lhs(), p.rhs())));
    }
    EXPECT_EQ(DifferentialAt(f, goal.lhs(), goal.rhs()), Rational(1));
  }
  EXPECT_GT(found, 0);
}

// Remark 3.6, operationalized: density-semantics satisfaction implies
// differential-semantics satisfaction pointwise, but neither implication
// problem subsumes the other. We verify the known sound direction and
// record that the two deciders genuinely disagree on some instances.
TEST(DiffSemanticsTest, DecidersDisagreeSomewhere) {
  Rng rng(17);
  const int n = 4;
  int agree = 0, density_only = 0, diff_only = 0;
  for (int iter = 0; iter < 120; ++iter) {
    ConstraintSet premises = testing::RandomConstraintSet(rng, n, 2);
    DifferentialConstraint goal = testing::RandomConstraint(rng, n);
    bool density = CheckImplicationSat(n, premises, goal)->implied;
    bool differential =
        CheckImplicationDifferentialSemantics(n, premises, goal)->implied;
    if (density == differential) {
      ++agree;
    } else if (density) {
      ++density_only;
    } else {
      ++diff_only;
    }
  }
  // The two semantics coincide often but not always; both directions of
  // disagreement are possible in principle — require at least that the
  // deciders ran and disagreement was observed overall (the paper calls
  // the relationship "not yet well-understood").
  EXPECT_GT(agree, 0);
  EXPECT_GT(density_only + diff_only, 0);
}

TEST(DiffSemanticsTest, EquivalentOnFrequencyFunctionWitnesses) {
  // For goals *violated* under the density semantics by a frequency
  // function (the SAT checker's f_U), the differential semantics is also
  // violated (Section 6: the semantics agree on frequency functions).
  Rng rng(19);
  const int n = 4;
  for (int iter = 0; iter < 40; ++iter) {
    ConstraintSet premises = testing::RandomConstraintSet(rng, n, 2);
    DifferentialConstraint goal = testing::RandomConstraint(rng, n);
    Result<ImplicationOutcome> r = CheckImplicationSat(n, premises, goal);
    if (r->implied) continue;
    SetFunction<std::int64_t> f = *CounterexampleFunction(n, *r->counterexample);
    EXPECT_FALSE(SatisfiesDifferentialSemantics(f, goal));
    for (const DifferentialConstraint& p : premises) {
      EXPECT_TRUE(SatisfiesDifferentialSemantics(f, p));
    }
  }
}

TEST(DiffSemanticsTest, GuardOnLargeUniverse) {
  EXPECT_EQ(CheckImplicationDifferentialSemantics(13, {},
                                                  DifferentialConstraint(
                                                      ItemSet{0}, SetFamily({ItemSet{1}})))
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace diffc
