#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/function_ops.h"
#include "fis/association.h"
#include "fis/disjunctive.h"
#include "fis/generator.h"
#include "fis/io.h"
#include "fis/support.h"

namespace diffc {
namespace {

BasketList SmallMarket() {
  return *BasketList::Make(4, {0b0011, 0b0111, 0b0001, 0b1000, 0b1011});
}

// -------------------------------------------------------- association rules

TEST(AssociationTest, ValidatesConfidence) {
  AprioriResult apriori = *Apriori(SmallMarket(), 1);
  EXPECT_FALSE(GenerateAssociationRules(apriori, 0.0).ok());
  EXPECT_FALSE(GenerateAssociationRules(apriori, 1.5).ok());
}

TEST(AssociationTest, RulesHaveCorrectConfidence) {
  BasketList b = SmallMarket();
  AprioriResult apriori = *Apriori(b, 1);
  Result<std::vector<AssociationRule>> rules = GenerateAssociationRules(apriori, 0.5);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  for (const AssociationRule& r : *rules) {
    EXPECT_NE(r.lhs, 0u);
    EXPECT_NE(r.rhs, 0u);
    EXPECT_EQ(r.lhs & r.rhs, 0u);
    const double expected = static_cast<double>(b.SupportCount(ItemSet(r.lhs | r.rhs))) /
                            static_cast<double>(b.SupportCount(ItemSet(r.lhs)));
    EXPECT_DOUBLE_EQ(r.confidence, expected);
    EXPECT_EQ(r.support, b.SupportCount(ItemSet(r.lhs | r.rhs)));
    EXPECT_GE(r.confidence, 0.5);
  }
}

TEST(AssociationTest, MilkImpliesBread) {
  // Items: 0=bread, 1=milk. Every milk basket has bread: confidence 1.
  BasketList b = SmallMarket();
  Result<std::vector<AssociationRule>> rules =
      GenerateAssociationRules(*Apriori(b, 1), 1.0);
  ASSERT_TRUE(rules.ok());
  bool found = false;
  for (const AssociationRule& r : *rules) {
    if (r.lhs == 0b0010 && r.rhs == 0b0001) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AssociationTest, PureRulesAreDisjunctiveConstraints) {
  // A pure rule lhs => rhs is exactly the satisfied differential
  // constraint lhs -> {rhs} on the support function (Section 6's
  // "pure association rules").
  BasketList b = SmallMarket();
  SetFunction<std::int64_t> density = Density(*SupportFunction(b));
  Result<std::vector<AssociationRule>> pure = GeneratePureRules(*Apriori(b, 1));
  ASSERT_TRUE(pure.ok());
  ASSERT_FALSE(pure->empty());
  for (const AssociationRule& r : *pure) {
    DifferentialConstraint c(ItemSet(r.lhs), SetFamily({ItemSet(r.rhs)}));
    EXPECT_TRUE(SatisfiesWithDensity(density, c)) << c.ToString(Universe::Letters(4));
    EXPECT_TRUE(SatisfiesDisjunctive(b, c));
  }
}

TEST(AssociationTest, NonPureRuleIsNotASatisfiedConstraint) {
  BasketList b = SmallMarket();
  SetFunction<std::int64_t> density = Density(*SupportFunction(b));
  Result<std::vector<AssociationRule>> rules =
      GenerateAssociationRules(*Apriori(b, 1), 0.3);
  ASSERT_TRUE(rules.ok());
  for (const AssociationRule& r : *rules) {
    if (r.IsPure()) continue;
    DifferentialConstraint c(ItemSet(r.lhs), SetFamily({ItemSet(r.rhs)}));
    EXPECT_FALSE(SatisfiesWithDensity(density, c));
  }
}

TEST(AssociationTest, ToStringFormat) {
  AssociationRule r{0b01, 0b10, 3, 0.75};
  Universe u = Universe::Letters(2);
  EXPECT_EQ(r.ToString(u), "A => B  (sup=3, conf=0.750)");
}

// ------------------------------------------------------------------- file IO

TEST(IoTest, TextRoundTrip) {
  BasketList b = SmallMarket();
  Result<BasketList> loaded = BasketsFromText(BasketsToText(b));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_items(), b.num_items());
  EXPECT_EQ(loaded->baskets(), b.baskets());
}

TEST(IoTest, EmptyBasketsRoundTrip) {
  BasketList b = *BasketList::Make(3, {0, 0b101, 0});
  Result<BasketList> loaded = BasketsFromText(BasketsToText(b));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->baskets(), b.baskets());
}

TEST(IoTest, ParsesCommentsAndBlankLines) {
  Result<BasketList> b = BasketsFromText(
      "# header comment\n"
      "items 5\n"
      "\n"
      "0 2 4\n"
      "# interior comment\n"
      "1\n");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_items(), 5);
  ASSERT_EQ(b->size(), 2);
  EXPECT_EQ(b->basket(0), 0b10101u);
  EXPECT_EQ(b->basket(1), 0b00010u);
}

TEST(IoTest, RejectsMalformedInput) {
  EXPECT_FALSE(BasketsFromText("0 1 2\n").ok());            // No header.
  EXPECT_FALSE(BasketsFromText("items x\n").ok());          // Bad header.
  EXPECT_FALSE(BasketsFromText("items 3\n0 7\n").ok());     // Out of range.
  EXPECT_FALSE(BasketsFromText("items 3\n0 q\n").ok());     // Bad token.
  EXPECT_FALSE(BasketsFromText("").ok());                   // Empty.
}

TEST(IoTest, FileRoundTrip) {
  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "diffc_io_test.baskets";
  BasketGenConfig config;
  config.num_items = 10;
  config.num_baskets = 200;
  config.seed = 3;
  BasketList b = *GenerateBaskets(config);
  ASSERT_TRUE(SaveBaskets(b, path.string()).ok());
  Result<BasketList> loaded = LoadBaskets(path.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_items(), b.num_items());
  EXPECT_EQ(loaded->baskets(), b.baskets());
  std::filesystem::remove(path);
}

TEST(IoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadBaskets("/nonexistent/path/x.baskets").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace diffc
