#include <gtest/gtest.h>

#include "core/implication.h"
#include "prop/implication_constraint.h"
#include "prop/minterm.h"
#include "relational/boolean_dependency.h"
#include "relational/positive_bool.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc {
namespace {

using prop::Formula;
using prop::FormulaPtr;

TEST(LiteralNnfTest, Shapes) {
  EXPECT_TRUE(IsLiteralNnf(*Formula::Var(0)));
  EXPECT_TRUE(IsLiteralNnf(*Formula::Not(Formula::Var(0))));
  EXPECT_TRUE(
      IsLiteralNnf(*Formula::Implies(Formula::Var(0), Formula::Var(1))));
  EXPECT_FALSE(IsLiteralNnf(
      *Formula::Not(Formula::And({Formula::Var(0), Formula::Var(1)}))));
}

TEST(PositiveBoolTest, FamilyFragmentMatchesBooleanDependency) {
  // On the paper's fragment (X ⇒ ∨∧Y) the general checker coincides with
  // SatisfiesBooleanDependency.
  Rng rng(11);
  const int n = 4;
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::vector<int>> rows;
    std::set<std::vector<int>> seen;
    int tuples = static_cast<int>(rng.UniformInt(1, 6));
    while (static_cast<int>(rows.size()) < tuples) {
      std::vector<int> row(n);
      for (int a = 0; a < n; ++a) row[a] = static_cast<int>(rng.UniformInt(0, 2));
      if (seen.insert(row).second) rows.push_back(row);
    }
    Relation r = *Relation::Make(n, rows);
    for (int c_iter = 0; c_iter < 20; ++c_iter) {
      DifferentialConstraint c = testing::RandomConstraint(
          rng, n, 0.3, static_cast<int>(rng.UniformInt(0, 3)), 0.35);
      FormulaPtr f = prop::ImplicationConstraintFormula(c.lhs(), c.rhs());
      EXPECT_EQ(SatisfiesPositiveBoolDependency(r, *f), SatisfiesBooleanDependency(r, c))
          << c.ToString(Universe::Letters(n));
    }
  }
}

TEST(PositiveBoolTest, BeyondTheFragment) {
  // (agree on A) ∨ (agree on B): not expressible as one family constraint
  // with a single antecedent... but directly checkable here.
  Relation r = *Relation::Make(2, {{0, 0}, {0, 1}, {1, 1}});
  FormulaPtr either = Formula::Or({Formula::Var(0), Formula::Var(1)});
  // Pairs: (0,1) agree on A; (0,2) agree on nothing -> fails.
  EXPECT_FALSE(SatisfiesPositiveBoolDependency(r, *either));
  Relation r2 = *Relation::Make(2, {{0, 0}, {0, 1}});
  EXPECT_TRUE(SatisfiesPositiveBoolDependency(r2, *either));
}

TEST(TwoTupleRelationTest, RealizesExactlyTheAgreement) {
  const int n = 4;
  for (Mask u = 0; u < FullMask(n); ++u) {
    Relation r = *TwoTupleRelation(n, u);
    ASSERT_EQ(r.size(), 2);
    Mask agreement = 0;
    for (int a = 0; a < n; ++a) {
      if (r.tuple(0)[a] == r.tuple(1)[a]) agreement |= Mask{1} << a;
    }
    EXPECT_EQ(agreement, u);
  }
  // Full agreement degenerates to a single tuple.
  EXPECT_EQ(TwoTupleRelation(n, FullMask(n))->size(), 1);
}

TEST(PositiveBoolImpliesTest, TransitiveChain) {
  const int n = 3;
  std::vector<FormulaPtr> premises{
      Formula::Implies(Formula::Var(0), Formula::Var(1)),
      Formula::Implies(Formula::Var(1), Formula::Var(2)),
  };
  EXPECT_TRUE(*PositiveBoolImplies(n, premises,
                                   *Formula::Implies(Formula::Var(0), Formula::Var(2))));
  Mask cex = 0;
  Result<bool> reversed = PositiveBoolImplies(
      n, premises, *Formula::Implies(Formula::Var(2), Formula::Var(0)), &cex);
  ASSERT_TRUE(reversed.ok());
  EXPECT_FALSE(*reversed);
  // The counterexample's two-tuple relation separates premises from goal.
  Relation model = *TwoTupleRelation(n, cex);
  for (const FormulaPtr& p : premises) {
    EXPECT_TRUE(SatisfiesPositiveBoolDependency(model, *p));
  }
  EXPECT_FALSE(SatisfiesPositiveBoolDependency(
      model, *Formula::Implies(Formula::Var(2), Formula::Var(0))));
}

TEST(PositiveBoolImpliesTest, VacuousWhenPremiseFailsDiagonal) {
  // A premise false at the all-true assignment has no nonempty models, so
  // everything is relation-implied — even goals that fail propositionally.
  const int n = 2;
  std::vector<FormulaPtr> premises{
      Formula::Implies(Formula::Var(0), Formula::Or({}))};  // A ⇒ false.
  FormulaPtr goal = Formula::Var(1);
  EXPECT_TRUE(*PositiveBoolImplies(n, premises, *goal));
  // Propositional entailment disagrees (assignment {}: premise true, goal
  // false), which is exactly the empty-family edge case documented in
  // DESIGN.md.
  EXPECT_FALSE(*prop::Entails(premises, *goal, n));
}

// On diagonal-consistent formulas (all true at the all-agree assignment),
// relation implication coincides with propositional entailment — the SDPF
// equivalence, cross-checked against the differential machinery on the
// family fragment.
class SdpfEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SdpfEquivalence, MatchesPropositionalAndDifferential) {
  Rng rng(GetParam() * 311);
  const int n = 5;
  for (int iter = 0; iter < 15; ++iter) {
    ConstraintSet constraints = testing::RandomConstraintSet(
        rng, n, static_cast<int>(rng.UniformInt(1, 3)), 0.3, 2, 0.35);
    DifferentialConstraint goal = testing::RandomConstraint(rng, n, 0.3, 2, 0.35);
    std::vector<FormulaPtr> premises;
    for (const DifferentialConstraint& c : constraints) {
      premises.push_back(prop::ImplicationConstraintFormula(c.lhs(), c.rhs()));
    }
    FormulaPtr goal_formula = prop::ImplicationConstraintFormula(goal.lhs(), goal.rhs());
    // Nonempty right-hand families are diagonal-consistent.
    Result<bool> relational = PositiveBoolImplies(n, premises, *goal_formula);
    Result<bool> propositional = prop::Entails(premises, *goal_formula, n);
    Result<ImplicationOutcome> differential = CheckImplicationSat(n, constraints, goal);
    ASSERT_TRUE(relational.ok());
    ASSERT_TRUE(propositional.ok());
    ASSERT_TRUE(differential.ok());
    EXPECT_EQ(*relational, *propositional);
    EXPECT_EQ(*relational, differential->implied);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdpfEquivalence, ::testing::Range(1, 9));

}  // namespace
}  // namespace diffc
