#include <gtest/gtest.h>

#include "core/function_ops.h"
#include "core/parser.h"
#include "ds/belief.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc {
namespace {

// A three-hypothesis frame {A, B, C} with mixed evidence.
MassFunction SampleMass() {
  SetFunction<Rational> m = *SetFunction<Rational>::Make(3);
  m.at(Mask{0b001}) = Rational(1, 2);   // {A}
  m.at(Mask{0b011}) = Rational(1, 4);   // {A,B}
  m.at(Mask{0b111}) = Rational(1, 4);   // frame
  return *MassFunction::Make(m);
}

MassFunction RandomMass(Rng& rng, int n) {
  SetFunction<Rational> m = *SetFunction<Rational>::Make(n);
  std::int64_t total = 0;
  std::vector<std::pair<Mask, std::int64_t>> weights;
  int focal = static_cast<int>(rng.UniformInt(1, 4));
  for (int i = 0; i < focal; ++i) {
    Mask set = rng.RandomMask(n, 0.4);
    if (set == 0) set = Mask{1} << rng.UniformInt(0, n - 1);
    std::int64_t w = rng.UniformInt(1, 5);
    weights.emplace_back(set, w);
    total += w;
  }
  for (const auto& [set, w] : weights) m.at(set) += Rational(w, total);
  return *MassFunction::Make(m);
}

TEST(MassFunctionTest, MakeValidates) {
  SetFunction<Rational> m = *SetFunction<Rational>::Make(2);
  m.at(Mask{0b01}) = Rational(1, 2);
  EXPECT_FALSE(MassFunction::Make(m).ok());  // Sums to 1/2.
  m.at(Mask{0b10}) = Rational(1, 2);
  EXPECT_TRUE(MassFunction::Make(m).ok());
  m.at(Mask{0}) = Rational(1, 4);
  EXPECT_FALSE(MassFunction::Make(m).ok());  // m(∅) != 0.
}

TEST(MassFunctionTest, FocalElements) {
  std::vector<ItemSet> focal = SampleMass().FocalElements();
  EXPECT_EQ(focal, (std::vector<ItemSet>{ItemSet(0b001), ItemSet(0b011), ItemSet(0b111)}));
}

TEST(MassFunctionTest, BeliefValues) {
  MassFunction m = SampleMass();
  SetFunction<Rational> bel = m.Belief();
  EXPECT_EQ(bel.at(Mask{0b001}), Rational(1, 2));   // Bel({A}) = m({A}).
  EXPECT_EQ(bel.at(Mask{0b011}), Rational(3, 4));   // + m({A,B}).
  EXPECT_EQ(bel.at(Mask{0b111}), Rational(1));      // Total.
  EXPECT_EQ(bel.at(Mask{0b100}), Rational(0));      // Nothing inside {C}.
}

TEST(MassFunctionTest, PlausibilityDualToBelief) {
  MassFunction m = SampleMass();
  SetFunction<Rational> bel = m.Belief();
  SetFunction<Rational> pl = m.Plausibility();
  for (Mask x = 0; x < 8; ++x) {
    EXPECT_EQ(pl.at(x), Rational(1) - bel.at(0b111 & ~x)) << x;
    // Bel <= Pl pointwise.
    EXPECT_LE(bel.at(x), pl.at(x)) << x;
  }
}

TEST(MassFunctionTest, CommonalityDensityIsMass) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    MassFunction m = RandomMass(rng, 4);
    EXPECT_EQ(Density(m.Commonality()), m.values());
  }
}

TEST(MassFunctionTest, CommonalityIsFrequencyFunction) {
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(IsFrequencyFunction(RandomMass(rng, 4).Commonality()));
  }
}

TEST(MassFunctionTest, VacuousAndBayesian) {
  MassFunction vac = *MassFunction::Vacuous(3);
  EXPECT_EQ(vac.mass(0b111), Rational(1));
  EXPECT_TRUE(vac.IsConsonant());
  EXPECT_FALSE(vac.IsBayesian());

  MassFunction bay = *MassFunction::Bayesian({Rational(1, 2), Rational(1, 3), Rational(1, 6)});
  EXPECT_TRUE(bay.IsBayesian());
  // For Bayesian masses, Bel = Pl = the probability measure.
  SetFunction<Rational> bel = bay.Belief();
  SetFunction<Rational> pl = bay.Plausibility();
  for (Mask x = 0; x < 8; ++x) EXPECT_EQ(bel.at(x), pl.at(x));
}

TEST(MassFunctionTest, ConsonantDetection) {
  SetFunction<Rational> m = *SetFunction<Rational>::Make(3);
  m.at(Mask{0b001}) = Rational(1, 2);
  m.at(Mask{0b011}) = Rational(1, 2);
  EXPECT_TRUE(MassFunction::Make(m)->IsConsonant());
  m.at(Mask{0b011}) = Rational(0);
  m.at(Mask{0b110}) = Rational(1, 2);
  EXPECT_FALSE(MassFunction::Make(m)->IsConsonant());
}

TEST(MassFunctionTest, ConstraintSatisfactionMatchesDensitySemantics) {
  // The commonality function satisfies X -> Y (density semantics) iff no
  // focal element lies in L(X, Y) — the focal-element reading.
  Rng rng(7);
  const int n = 4;
  for (int i = 0; i < 30; ++i) {
    MassFunction m = RandomMass(rng, n);
    SetFunction<Rational> density = Density(m.Commonality());
    DifferentialConstraint c = testing::RandomConstraint(rng, n);
    EXPECT_EQ(m.SatisfiesConstraint(c), SatisfiesWithDensity(density, c));
  }
}

// ------------------------------------------------------------- Dempster

TEST(DempsterTest, CombineWithVacuousIsIdentity) {
  Rng rng(8);
  MassFunction m = RandomMass(rng, 3);
  MassFunction combined = *DempsterCombine(m, *MassFunction::Vacuous(3));
  EXPECT_EQ(combined.values(), m.values());
}

TEST(DempsterTest, Commutative) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    MassFunction a = RandomMass(rng, 3);
    MassFunction b = RandomMass(rng, 3);
    Result<MassFunction> ab = DempsterCombine(a, b);
    Result<MassFunction> ba = DempsterCombine(b, a);
    ASSERT_EQ(ab.ok(), ba.ok());
    if (ab.ok()) {
      EXPECT_EQ(ab->values(), ba->values());
    }
  }
}

TEST(DempsterTest, ZadehParadox) {
  // Zadeh's classic example: two experts, frame {A, B, C}.
  // m1: A=0.99, B=0.01; m2: C=0.99, B=0.01. Combination gives B=1.
  SetFunction<Rational> v1 = *SetFunction<Rational>::Make(3);
  v1.at(Mask{0b001}) = Rational(99, 100);
  v1.at(Mask{0b010}) = Rational(1, 100);
  SetFunction<Rational> v2 = *SetFunction<Rational>::Make(3);
  v2.at(Mask{0b100}) = Rational(99, 100);
  v2.at(Mask{0b010}) = Rational(1, 100);
  MassFunction e1 = *MassFunction::Make(v1);
  MassFunction e2 = *MassFunction::Make(v2);
  EXPECT_EQ(*DempsterConflict(e1, e2), Rational(9999, 10000));
  MassFunction combined = *DempsterCombine(e1, e2);
  EXPECT_EQ(combined.mass(0b010), Rational(1));
}

TEST(DempsterTest, TotalConflictRejected) {
  SetFunction<Rational> v1 = *SetFunction<Rational>::Make(2);
  v1.at(Mask{0b01}) = Rational(1);
  SetFunction<Rational> v2 = *SetFunction<Rational>::Make(2);
  v2.at(Mask{0b10}) = Rational(1);
  Result<MassFunction> r =
      DempsterCombine(*MassFunction::Make(v1), *MassFunction::Make(v2));
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DempsterTest, FrameMismatchRejected) {
  Rng rng(10);
  EXPECT_FALSE(DempsterCombine(RandomMass(rng, 2), RandomMass(rng, 3)).ok());
}

TEST(DempsterTest, CombinationPreservesSatisfiedConstraints) {
  // If both bodies of evidence satisfy X -> Y (all focal elements comply)
  // then so does their combination: intersections of complying focal
  // elements containing X... need not comply in general, but singleton-rhs
  // compliance survives intersection when members are singletons. Check
  // the focal-element closure property empirically for singleton families.
  Rng rng(11);
  const int n = 4;
  int checked = 0;
  for (int i = 0; i < 60 && checked < 20; ++i) {
    MassFunction a = RandomMass(rng, n);
    MassFunction b = RandomMass(rng, n);
    Result<MassFunction> combined = DempsterCombine(a, b);
    if (!combined.ok()) continue;
    // Constraint 0 -> {{y}}: "every focal element contains y".
    for (int y = 0; y < n; ++y) {
      DifferentialConstraint c(ItemSet(), SetFamily({ItemSet::Singleton(y)}));
      if (a.SatisfiesConstraint(c) && b.SatisfiesConstraint(c)) {
        EXPECT_TRUE(combined->SatisfiesConstraint(c));
        ++checked;
      }
    }
  }
}

}  // namespace
}  // namespace diffc
