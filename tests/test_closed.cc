#include <gtest/gtest.h>

#include <set>

#include "fis/closed.h"
#include "fis/generator.h"
#include "fis/support.h"

namespace diffc {
namespace {

BasketList SmallMarket() {
  return *BasketList::Make(4, {0b0011, 0b0111, 0b0001, 0b1000, 0b1011});
}

TEST(ClosureTest, ClosureOfContainedSet) {
  BasketList b = SmallMarket();
  // Baskets containing milk (item 1): {0,1}, {0,1,2}, {0,1,3} -> closure
  // of {milk} is {bread, milk}.
  EXPECT_EQ(BasketClosure(b, ItemSet{1}), (ItemSet{0, 1}));
  // Bread appears alone: closure of {bread} is {bread}.
  EXPECT_EQ(BasketClosure(b, ItemSet{0}), ItemSet{0});
}

TEST(ClosureTest, ClosureOfUncontainedSetIsUniverse) {
  BasketList b = SmallMarket();
  EXPECT_EQ(BasketClosure(b, ItemSet{2, 3}), ItemSet(FullMask(4)));
}

TEST(ClosureTest, ClosureIsExtensiveIdempotentMonotone) {
  BasketGenConfig config;
  config.num_items = 7;
  config.num_baskets = 60;
  config.seed = 13;
  BasketList b = *GenerateBaskets(config);
  for (Mask x = 0; x < (Mask{1} << 7); ++x) {
    ItemSet cx = BasketClosure(b, ItemSet(x));
    EXPECT_TRUE(ItemSet(x).IsSubsetOf(cx));                    // Extensive.
    EXPECT_EQ(BasketClosure(b, cx), cx);                       // Idempotent.
    if (b.SupportCount(ItemSet(x)) > 0) {
      EXPECT_EQ(b.SupportCount(cx), b.SupportCount(ItemSet(x)));  // Same support.
    }
  }
}

TEST(ClosedTest, ClosedSetsAreClosedAndFrequent) {
  BasketList b = SmallMarket();
  Result<std::vector<CountedItemset>> closed = ClosedFrequentItemsets(b, 2);
  ASSERT_TRUE(closed.ok());
  ASSERT_FALSE(closed->empty());
  for (const CountedItemset& c : *closed) {
    EXPECT_GE(c.support, 2);
    EXPECT_EQ(BasketClosure(b, ItemSet(c.items)), ItemSet(c.items));
    EXPECT_EQ(c.support, b.SupportCount(ItemSet(c.items)));
  }
}

TEST(MaximalTest, MaximalAreAntichainCoveringFrequent) {
  BasketList b = SmallMarket();
  const std::int64_t kappa = 2;
  Result<std::vector<CountedItemset>> maximal = MaximalFrequentItemsets(b, kappa);
  Result<AprioriResult> apriori = Apriori(b, kappa);
  ASSERT_TRUE(maximal.ok());
  ASSERT_TRUE(apriori.ok());
  // Antichain.
  for (const CountedItemset& a : *maximal) {
    for (const CountedItemset& c : *maximal) {
      if (a.items != c.items) {
        EXPECT_FALSE(IsSubset(a.items, c.items));
      }
    }
  }
  // Every frequent set sits under some maximal one.
  for (const CountedItemset& f : apriori->frequent) {
    bool covered = false;
    for (const CountedItemset& m : *maximal) {
      if (IsSubset(f.items, m.items)) covered = true;
    }
    EXPECT_TRUE(covered) << f.items;
  }
}

// The closed representation reconstructs every status and every frequent
// support — and is never larger than the frequent family.
class ClosedCorrectness : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(ClosedCorrectness, DerivesEverything) {
  auto [seed, kappa] = GetParam();
  BasketGenConfig config;
  config.num_items = 8;
  config.num_baskets = 150;
  config.num_patterns = 3;
  config.pattern_size = 3;
  config.seed = seed;
  BasketList b = *GenerateBaskets(config);
  SetFunction<std::int64_t> support = *SupportFunction(b);
  Result<std::vector<CountedItemset>> closed = ClosedFrequentItemsets(b, kappa);
  Result<AprioriResult> apriori = Apriori(b, kappa);
  ASSERT_TRUE(closed.ok());
  ASSERT_TRUE(apriori.ok());
  EXPECT_LE(closed->size(), apriori->frequent.size());
  for (Mask x = 0; x < (Mask{1} << 8); ++x) {
    SCOPED_TRACE(x);
    DerivedSupport d = DeriveFromClosed(*closed, kappa, ItemSet(x));
    const std::int64_t truth = support.at(x);
    EXPECT_EQ(d.frequent, truth >= kappa);
    if (truth >= kappa) {
      ASSERT_TRUE(d.support.has_value());
      EXPECT_EQ(*d.support, truth);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ClosedCorrectness,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values<std::int64_t>(5, 20, 60)));

TEST(ClosedTest, MaximalSubsetOfClosed) {
  // Every maximal frequent itemset is closed.
  BasketGenConfig config;
  config.num_items = 8;
  config.num_baskets = 100;
  config.seed = 9;
  BasketList b = *GenerateBaskets(config);
  std::vector<CountedItemset> closed = *ClosedFrequentItemsets(b, 10);
  std::set<Mask> closed_masks;
  for (const CountedItemset& c : closed) closed_masks.insert(c.items);
  std::vector<CountedItemset> maximal = *MaximalFrequentItemsets(b, 10);
  for (const CountedItemset& m : maximal) {
    EXPECT_TRUE(closed_masks.count(m.items)) << m.items;
  }
}

}  // namespace
}  // namespace diffc
