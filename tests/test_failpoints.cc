// Fail-point framework: registry/trigger semantics (compiled in every
// configuration) and, under -DDIFFC_FAILPOINTS=ON, end-to-end fault
// injection through every wired failure path — witness truncation, cache
// insertion, CNF translation, Rational overflow, basket IO, and a query
// task that throws — checking that each failure lands in the right
// per-query Status while unrelated verdicts stay correct.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/implication.h"
#include "engine/caches.h"
#include "engine/implication_engine.h"
#include "fis/io.h"
#include "util/failpoint.h"
#include "util/rational.h"

namespace diffc {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override {
    failpoint::DisarmAll();
    // Injected statuses may have been cached; never leak them into other
    // tests sharing the process-wide caches.
    GlobalWitnessSetCache().Clear();
    GlobalPreparedPremisesCache().Clear();
  }
};

TEST_F(FailpointTest, UnarmedNeverFires) {
  EXPECT_FALSE(failpoint::Evaluate("no/such/point"));
  EXPECT_EQ(failpoint::HitCount("no/such/point"), 0u);
  EXPECT_EQ(failpoint::TripCount("no/such/point"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresEveryEvaluation) {
  failpoint::Arm("t/always", failpoint::Spec::Always());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(failpoint::Evaluate("t/always"));
  EXPECT_EQ(failpoint::HitCount("t/always"), 5u);
  EXPECT_EQ(failpoint::TripCount("t/always"), 5u);
}

TEST_F(FailpointTest, NthHitFiresExactlyOnce) {
  failpoint::Arm("t/nth", failpoint::Spec::NthHit(3));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(failpoint::Evaluate("t/nth"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(failpoint::HitCount("t/nth"), 6u);
  EXPECT_EQ(failpoint::TripCount("t/nth"), 1u);
}

TEST_F(FailpointTest, AfterHitFiresFromNPlusOne) {
  failpoint::Arm("t/after", failpoint::Spec::AfterHit(2));
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(failpoint::Evaluate("t/after"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true}));
  EXPECT_EQ(failpoint::TripCount("t/after"), 3u);
}

TEST_F(FailpointTest, ProbabilityIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    failpoint::Arm("t/prob", failpoint::Spec::Probability(0.5, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(failpoint::Evaluate("t/prob"));
    return fired;
  };
  EXPECT_EQ(run(7), run(7));  // Re-arming resets the rng: identical runs.
  std::vector<bool> fired = run(7);
  int trips = 0;
  for (bool f : fired) trips += f ? 1 : 0;
  EXPECT_GT(trips, 0);
  EXPECT_LT(trips, 64);
}

TEST_F(FailpointTest, ProbabilityBoundsAreTotal) {
  failpoint::Arm("t/p0", failpoint::Spec::Probability(0.0));
  failpoint::Arm("t/p1", failpoint::Spec::Probability(1.1));
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(failpoint::Evaluate("t/p0"));
    EXPECT_TRUE(failpoint::Evaluate("t/p1"));
  }
}

TEST_F(FailpointTest, DisarmStopsFiring) {
  failpoint::Arm("t/disarm", failpoint::Spec::Always());
  EXPECT_TRUE(failpoint::Evaluate("t/disarm"));
  failpoint::Disarm("t/disarm");
  EXPECT_FALSE(failpoint::Evaluate("t/disarm"));
  EXPECT_EQ(failpoint::HitCount("t/disarm"), 0u);  // Counters reset with the arm.
}

TEST_F(FailpointTest, ArmFromStringParsesTheEnvGrammar) {
  ASSERT_TRUE(
      failpoint::ArmFromString("a=always; b = hit(2) ;c=after(1);d=prob(0.25,9)").ok());
  EXPECT_TRUE(failpoint::Evaluate("a"));
  EXPECT_FALSE(failpoint::Evaluate("b"));
  EXPECT_TRUE(failpoint::Evaluate("b"));
  EXPECT_FALSE(failpoint::Evaluate("c"));
  EXPECT_TRUE(failpoint::Evaluate("c"));
  // `off` disarms an armed point.
  ASSERT_TRUE(failpoint::ArmFromString("a=off").ok());
  EXPECT_FALSE(failpoint::Evaluate("a"));
}

TEST_F(FailpointTest, ArmFromStringRejectsBadSpecs) {
  EXPECT_EQ(failpoint::ArmFromString("noequals").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::ArmFromString("=always").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::ArmFromString("a=hit(x)").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::ArmFromString("a=bogus").code(), StatusCode::kInvalidArgument);
}

#if defined(DIFFC_FAILPOINTS)

TEST_F(FailpointTest, SitesAreCompiledIn) { EXPECT_TRUE(failpoint::CompiledIn()); }

// A goal whose right-hand family has two singleton members: not
// FD-subclass-shaped, normally answered by the interval-cover fast path.
DifferentialConstraint TwoMemberGoal() {
  return DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}, ItemSet{2}}));
}

ConstraintSet CoveringPremises() {
  // {0} -> {1} covers every U ∋ 0 with 1 ∉ U, so TwoMemberGoal is implied.
  return ConstraintSet{DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))};
}

TEST_F(FailpointTest, WitnessTruncationFallsBackToSat) {
  const int n = 6;
  ImplicationEngine engine;
  GlobalWitnessSetCache().Clear();

  // Baseline: the fast path answers this query.
  EngineQueryResult baseline = engine.CheckOne(n, CoveringPremises(), TwoMemberGoal());
  ASSERT_TRUE(baseline.status.ok());
  EXPECT_TRUE(baseline.outcome.implied);
  EXPECT_EQ(baseline.stats.procedure, DecisionProcedure::kIntervalCover);

  GlobalWitnessSetCache().Clear();
  failpoint::Arm("witness/truncate", failpoint::Spec::Always());
  EngineQueryResult r = engine.CheckOne(n, CoveringPremises(), TwoMemberGoal());
  EXPECT_GT(failpoint::TripCount("witness/truncate"), 0u);
  // The truncation is not the query's failure: SAT completes the answer.
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.outcome.implied);
  EXPECT_EQ(r.stats.procedure, DecisionProcedure::kSat);
}

TEST_F(FailpointTest, CacheInsertFailuresServeUncachedResults) {
  const int n = 6;
  ImplicationEngine engine;
  GlobalWitnessSetCache().Clear();
  GlobalPreparedPremisesCache().Clear();
  failpoint::Arm("cache/witness-insert", failpoint::Spec::Always());
  failpoint::Arm("cache/premise-insert", failpoint::Spec::Always());

  for (int i = 0; i < 2; ++i) {
    EngineQueryResult r = engine.CheckOne(n, CoveringPremises(), TwoMemberGoal());
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.outcome.implied);
    // Never a cache hit: every insert is dropped, so each query recomputes.
    EXPECT_FALSE(r.stats.witness_cache_hit);
  }
  EXPECT_EQ(GlobalWitnessSetCache().size(), 0u);
  EXPECT_EQ(GlobalPreparedPremisesCache().size(), 0u);
}

TEST_F(FailpointTest, CnfTranslationFailureIsPerQuery) {
  const int n = 6;
  // Disable the fast path so the query must reach the SAT translation.
  EngineOptions opts;
  opts.use_interval_cover_fast_path = false;
  ImplicationEngine engine(opts);
  failpoint::Arm("cnf/translate", failpoint::Spec::Always());

  EngineQueryResult sat_query = engine.CheckOne(n, CoveringPremises(), TwoMemberGoal());
  EXPECT_EQ(sat_query.status.code(), StatusCode::kInternal);

  // Queries that never reach the translation are untouched.
  EngineQueryResult fd_query = engine.CheckOne(
      n, CoveringPremises(), DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}})));
  ASSERT_TRUE(fd_query.status.ok());
  EXPECT_TRUE(fd_query.outcome.implied);
  EXPECT_EQ(fd_query.stats.procedure, DecisionProcedure::kFdSubclass);

  // One batch, mixed outcomes: only the SAT-bound query fails.
  std::vector<DifferentialConstraint> goals{
      TwoMemberGoal(), DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))};
  Result<BatchOutcome> batch = engine.CheckBatch(n, CoveringPremises(), goals);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->results[0].status.code(), StatusCode::kInternal);
  EXPECT_TRUE(batch->results[1].status.ok());
  EXPECT_EQ(batch->stats.failed, 1u);
}

TEST_F(FailpointTest, RationalOverflowInjection) {
  Rational half(1, 2);
  Rational third(1, 3);
  EXPECT_FALSE((half + third).Overflowed());

  failpoint::Arm("rational/overflow", failpoint::Spec::Always());
  EXPECT_TRUE((half + third).Overflowed());
  EXPECT_TRUE((half * third).Overflowed());
  EXPECT_TRUE((-half).Overflowed());

  failpoint::Disarm("rational/overflow");
  EXPECT_EQ(half + third, Rational(5, 6));
}

TEST_F(FailpointTest, BasketIoInjection) {
  const std::string text = "items 3\n0 1\n2\n";
  ASSERT_TRUE(BasketsFromText(text).ok());

  failpoint::Arm("fis/parse-baskets", failpoint::Spec::Always());
  EXPECT_EQ(BasketsFromText(text).status().code(), StatusCode::kInternal);
  failpoint::Disarm("fis/parse-baskets");

  failpoint::Arm("fis/load-baskets", failpoint::Spec::Always());
  EXPECT_EQ(LoadBaskets("/nonexistent/really").status().code(), StatusCode::kNotFound);
}

TEST_F(FailpointTest, ThrowingQueryTaskFailsItsQueryOnly) {
  const int n = 6;
  ImplicationEngine engine;
  // Fire on the second query only: the other two must stay correct.
  failpoint::Arm("engine/throw", failpoint::Spec::NthHit(2));
  std::vector<DifferentialConstraint> goals{TwoMemberGoal(), TwoMemberGoal(),
                                            TwoMemberGoal()};
  Result<BatchOutcome> batch = engine.CheckBatch(n, CoveringPremises(), goals);
  ASSERT_TRUE(batch.ok());
  int internal = 0, ok = 0;
  for (const EngineQueryResult& r : batch->results) {
    if (r.status.code() == StatusCode::kInternal) {
      ++internal;
      EXPECT_NE(r.status.message().find("uncaught exception"), std::string::npos);
    } else {
      ASSERT_TRUE(r.status.ok());
      EXPECT_TRUE(r.outcome.implied);
      ++ok;
    }
  }
  EXPECT_EQ(internal, 1);
  EXPECT_EQ(ok, 2);
}

#endif  // DIFFC_FAILPOINTS

}  // namespace
}  // namespace diffc
