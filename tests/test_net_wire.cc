// Wire-protocol codec and framing tests: round-trips for every message
// type, and the malformed-input matrix the boundary owes us — oversized
// declared lengths, bad version bytes, truncated payloads, out-of-range
// universe sizes and attribute masks, trailing garbage.

#include <gtest/gtest.h>
#include <pthread.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/constraint.h"
#include "lattice/set_family.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/bitops.h"

namespace diffc::net {
namespace {

DifferentialConstraint MakeConstraint(std::initializer_list<int> lhs,
                                      std::vector<ItemSet> members) {
  return DifferentialConstraint(ItemSet(lhs), SetFamily(std::move(members)));
}

// ------------------------------------------------------------- round trips

TEST(WireCodecTest, PingRoundTrip) {
  PingMsg msg;
  msg.nonce = 0xDEADBEEFCAFEF00Dull;
  Result<PingMsg> decoded = DecodePing(EncodePing(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->nonce, msg.nonce);

  Result<PingMsg> pong = DecodePong(EncodePong(msg));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->nonce, msg.nonce);
}

TEST(WireCodecTest, RegisterPremisesRoundTrip) {
  RegisterPremisesMsg msg;
  msg.n = 5;
  msg.premises = {MakeConstraint({0}, {ItemSet{1}, ItemSet{2, 3}}),
                  MakeConstraint({1, 4}, {ItemSet{0}}),
                  MakeConstraint({2}, {})};
  Result<RegisterPremisesMsg> decoded = DecodeRegisterPremises(EncodeRegisterPremises(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->n, 5);
  ASSERT_EQ(decoded->premises.size(), 3u);
  for (std::size_t i = 0; i < msg.premises.size(); ++i) {
    EXPECT_EQ(decoded->premises[i].lhs(), msg.premises[i].lhs());
    EXPECT_EQ(decoded->premises[i].rhs(), msg.premises[i].rhs());
  }
}

TEST(WireCodecTest, CheckBatchRoundTrip) {
  CheckBatchMsg msg;
  msg.handle = 7;
  msg.deadline_ms = 1500;
  msg.n = 6;
  msg.goals = {MakeConstraint({0, 1}, {ItemSet{2}}), MakeConstraint({3}, {ItemSet{4, 5}})};
  Result<CheckBatchMsg> decoded = DecodeCheckBatch(EncodeCheckBatch(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->handle, 7u);
  EXPECT_EQ(decoded->deadline_ms, 1500u);
  EXPECT_EQ(decoded->n, 6);
  ASSERT_EQ(decoded->goals.size(), 2u);
  EXPECT_EQ(decoded->goals[0].lhs(), msg.goals[0].lhs());
  EXPECT_EQ(decoded->goals[1].rhs(), msg.goals[1].rhs());
}

TEST(WireCodecTest, BatchResultRoundTrip) {
  BatchResultMsg msg;
  WireQueryResult implied;
  implied.verdict = 1;
  WireQueryResult refuted;
  refuted.verdict = 0;
  refuted.has_counterexample = true;
  refuted.counterexample = 0b1011;
  WireQueryResult failed;
  failed.status_code = StatusCode::kDeadlineExceeded;
  failed.status_message = "budget spent";
  msg.results = {implied, refuted, failed};
  msg.stats.queries = 3;
  msg.stats.implied = 1;
  msg.stats.not_implied = 1;
  msg.stats.failed = 1;
  msg.stats.timed_out = 1;
  msg.stats.batch_wall_ns = 12345;

  Result<BatchResultMsg> decoded = DecodeBatchResult(EncodeBatchResult(msg));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->results.size(), 3u);
  EXPECT_EQ(decoded->results[0].verdict, 1);
  EXPECT_FALSE(decoded->results[0].has_counterexample);
  EXPECT_TRUE(decoded->results[1].has_counterexample);
  EXPECT_EQ(decoded->results[1].counterexample, 0b1011u);
  EXPECT_EQ(decoded->results[2].status_code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded->results[2].status_message, "budget spent");
  EXPECT_EQ(decoded->stats.queries, 3u);
  EXPECT_EQ(decoded->stats.timed_out, 1u);
  EXPECT_EQ(decoded->stats.batch_wall_ns, 12345u);
}

TEST(WireCodecTest, BatchResultEncodeTruncatesOversizedStatusMessages) {
  // An engine status longer than kMaxErrorMessageBytes must be truncated
  // at encode time — otherwise every conforming decoder would reject the
  // server's own reply as malformed.
  BatchResultMsg msg;
  WireQueryResult failed;
  failed.status_code = StatusCode::kInternal;
  failed.status_message = std::string(kMaxErrorMessageBytes + 500, 'x');
  msg.results = {failed};

  Result<BatchResultMsg> decoded = DecodeBatchResult(EncodeBatchResult(msg));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->results.size(), 1u);
  EXPECT_EQ(decoded->results[0].status_message.size(), std::size_t{kMaxErrorMessageBytes});
  EXPECT_EQ(decoded->results[0].status_code, StatusCode::kInternal);
}

TEST(WireCodecTest, BatchResultEncodeStaysUnderFrameCapWithManyFailures) {
  // Enough failed results that even per-message-capped text would blow
  // kMaxFramePayload: the encoder must shrink the per-message cap so the
  // whole reply still frames and decodes. 1100 x ~4 KiB > 4 MiB.
  const std::size_t count = 1100;
  BatchResultMsg msg;
  msg.results.reserve(count);
  WireQueryResult failed;
  failed.status_code = StatusCode::kDeadlineExceeded;
  failed.status_message = std::string(kMaxErrorMessageBytes, 'y');
  for (std::size_t i = 0; i < count; ++i) msg.results.push_back(failed);
  msg.stats.queries = count;
  msg.stats.failed = count;

  Frame reply = EncodeBatchResult(msg);
  EXPECT_LE(reply.payload.size(), std::size_t{kMaxFramePayload});
  Result<BatchResultMsg> decoded = DecodeBatchResult(reply);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->results.size(), count);
  // Messages shrank uniformly (never grew), and some diagnostic text
  // survived.
  EXPECT_LT(decoded->results[0].status_message.size(), std::size_t{kMaxErrorMessageBytes});
  EXPECT_GT(decoded->results[0].status_message.size(), 0u);
  EXPECT_EQ(decoded->results[0].status_message,
            decoded->results[count - 1].status_message);
  EXPECT_EQ(decoded->stats.failed, count);
}

TEST(WireCodecTest, ReleaseAndErrorRoundTrip) {
  ReleaseMsg rel;
  rel.handle = 99;
  Result<ReleaseMsg> decoded_rel = DecodeRelease(EncodeRelease(rel));
  ASSERT_TRUE(decoded_rel.ok());
  EXPECT_EQ(decoded_rel->handle, 99u);

  Status original = Status::ResourceExhausted("server at capacity");
  Result<ErrorMsg> err = DecodeError(EncodeError(ErrorMsg::FromStatus(original)));
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->ToStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(err->ToStatus().message(), "server at capacity");
}

TEST(WireCodecTest, FullUniverseMasksRoundTripAtN64) {
  // The n = 64 boundary: FullMask(64) masks must survive the wire intact.
  RegisterPremisesMsg msg;
  msg.n = 64;
  msg.premises = {DifferentialConstraint(ItemSet(FullMask(64)),
                                         SetFamily({ItemSet(Mask{1} << 63)}))};
  Result<RegisterPremisesMsg> decoded = DecodeRegisterPremises(EncodeRegisterPremises(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->premises[0].lhs().bits(), ~Mask{0});
  EXPECT_EQ(decoded->premises[0].rhs().members()[0].bits(), Mask{1} << 63);
}

// ------------------------------------------------ trace context (wire v3)

TEST(WireCodecTest, TraceContextRoundTripsAtV3) {
  TraceContext tc;
  tc.trace_id_hi = 0xA1A2A3A4A5A6A7A8ull;
  tc.trace_id_lo = 0xB1B2B3B4B5B6B7B8ull;
  tc.parent_span_id = 0xC1C2C3C4C5C6C7C8ull;
  tc.sampled = true;
  ASSERT_TRUE(tc.valid());
  EXPECT_EQ(tc.IdHex(), "a1a2a3a4a5a6a7a8b1b2b3b4b5b6b7b8");

  CheckBatchMsg msg;
  msg.handle = 7;
  msg.n = 4;
  msg.goals = {MakeConstraint({0}, {ItemSet{1}})};
  msg.trace = tc;
  Frame f = EncodeCheckBatch(msg);
  EXPECT_EQ(f.version, kWireVersion);
  Result<CheckBatchMsg> decoded = DecodeCheckBatch(f);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->trace.trace_id_hi, tc.trace_id_hi);
  EXPECT_EQ(decoded->trace.trace_id_lo, tc.trace_id_lo);
  EXPECT_EQ(decoded->trace.parent_span_id, tc.parent_span_id);
  EXPECT_TRUE(decoded->trace.sampled);

  RegisterPremisesMsg reg;
  reg.n = 4;
  reg.trace = tc;
  Result<RegisterPremisesMsg> reg_decoded = DecodeRegisterPremises(EncodeRegisterPremises(reg));
  ASSERT_TRUE(reg_decoded.ok());
  EXPECT_EQ(reg_decoded->trace.trace_id_lo, tc.trace_id_lo);

  RegisterOkMsg ok;
  ok.handle = 3;
  ok.trace = tc;
  Result<RegisterOkMsg> ok_decoded = DecodeRegisterOk(EncodeRegisterOk(ok));
  ASSERT_TRUE(ok_decoded.ok());
  EXPECT_EQ(ok_decoded->trace.parent_span_id, tc.parent_span_id);

  BatchResultMsg res;
  res.trace = tc;
  Result<BatchResultMsg> res_decoded = DecodeBatchResult(EncodeBatchResult(res));
  ASSERT_TRUE(res_decoded.ok());
  EXPECT_EQ(res_decoded->trace.trace_id_hi, tc.trace_id_hi);
}

TEST(WireCodecTest, V2FramesAreBitForBitFreeOfTraceBytes) {
  // Compat contract: a trace-carrying message encoded at v2 must be byte
  // identical to the same message with no trace at all — the context may
  // only ever ride on v3 frames.
  CheckBatchMsg with_trace;
  with_trace.handle = 9;
  with_trace.n = 4;
  with_trace.goals = {MakeConstraint({0}, {ItemSet{1}})};
  with_trace.trace.trace_id_hi = 1;
  with_trace.trace.trace_id_lo = 2;
  with_trace.trace.parent_span_id = 3;
  with_trace.trace.sampled = true;
  CheckBatchMsg without = with_trace;
  without.trace = TraceContext{};

  Frame v2_traced = EncodeCheckBatch(with_trace, kMinWireVersion);
  Frame v2_plain = EncodeCheckBatch(without, kMinWireVersion);
  EXPECT_EQ(v2_traced.version, kMinWireVersion);
  EXPECT_EQ(v2_traced.payload, v2_plain.payload);
  // And shorter than v3 by exactly the 25 trace-context bytes.
  EXPECT_EQ(EncodeCheckBatch(with_trace).payload.size(), v2_traced.payload.size() + 25);

  // A v2 frame decodes with an empty (invalid) context...
  Result<CheckBatchMsg> decoded = DecodeCheckBatch(v2_traced);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->trace.valid());
  // ...and a v2 frame with trailing trace bytes is malformed, not lenient.
  Frame mislabeled = EncodeCheckBatch(with_trace, kWireVersion);
  mislabeled.version = kMinWireVersion;
  EXPECT_FALSE(DecodeCheckBatch(mislabeled).ok());
}

TEST(WireCodecTest, CorruptSampledByteRejected) {
  CheckBatchMsg msg;
  msg.handle = 1;
  msg.n = 4;
  msg.goals = {MakeConstraint({0}, {ItemSet{1}})};
  msg.trace.trace_id_hi = 1;
  msg.trace.trace_id_lo = 2;
  Frame f = EncodeCheckBatch(msg);
  // The sampled flag is the final payload byte; anything but 0/1 is
  // malformed.
  f.payload.back() = 2;
  Result<CheckBatchMsg> decoded = DecodeCheckBatch(f);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------- malformed input

Frame TamperedPing() { return EncodePing(PingMsg{42}); }

TEST(WireCodecTest, WrongFrameTypeRejected) {
  Frame ping = TamperedPing();
  EXPECT_FALSE(DecodeRelease(ping).ok());
  EXPECT_FALSE(DecodeCheckBatch(ping).ok());
  EXPECT_EQ(DecodeRelease(ping).status().code(), StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, TrailingGarbageRejected) {
  Frame ping = TamperedPing();
  ping.payload.push_back(0xFF);
  Result<PingMsg> decoded = DecodePing(ping);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, TruncatedPayloadRejected) {
  Frame ping = TamperedPing();
  ping.payload.pop_back();
  EXPECT_FALSE(DecodePing(ping).ok());

  CheckBatchMsg batch;
  batch.handle = 1;
  batch.n = 4;
  batch.goals = {MakeConstraint({0}, {ItemSet{1}})};
  Frame f = EncodeCheckBatch(batch);
  f.payload.resize(f.payload.size() / 2);
  EXPECT_FALSE(DecodeCheckBatch(f).ok());
}

TEST(WireCodecTest, UniverseSizeOver64Rejected) {
  // Wire-side of the Universe::Letters truncation fix: n = 65 is refused
  // outright, never clamped.
  RegisterPremisesMsg msg;
  msg.n = 65;
  Frame f = EncodeRegisterPremises(msg);
  Result<RegisterPremisesMsg> decoded = DecodeRegisterPremises(f);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("64"), std::string::npos);
}

TEST(WireCodecTest, OutOfUniverseMaskRejected) {
  // A goal whose mask has bits past the declared n: rejected before any
  // ItemSet reaches the engine (the ItemSet boundary contract).
  CheckBatchMsg msg;
  msg.handle = 1;
  msg.n = 4;
  msg.goals = {MakeConstraint({0}, {ItemSet{1}})};
  Frame f = EncodeCheckBatch(msg);
  // The lhs mask u64 sits after handle (8) + deadline (8) + nonce (8) +
  // n (1) + count (4) = 29 bytes; set a bit far outside n = 4.
  ASSERT_GT(f.payload.size(), 36u);
  f.payload[29 + 7] = 0x80;  // bit 63 of the little-endian lhs mask
  Result<CheckBatchMsg> decoded = DecodeCheckBatch(f);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("outside"), std::string::npos);
}

TEST(WireCodecTest, AbsurdFamilyCountRejected) {
  // A family-member count past the cap must fail fast on the declared
  // count, not by walking off the truncated payload.
  WireWriter w;
  w.U8(4);                        // n
  w.U32(1);                       // one constraint
  w.U64(0b1);                     // lhs
  w.U32(kMaxFamilyMembers + 1);   // family count over the cap
  Frame f{static_cast<std::uint8_t>(WireRequest::kRegisterPremises), kWireVersion,
          std::move(w).Take()};
  Result<RegisterPremisesMsg> decoded = DecodeRegisterPremises(f);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("cap"), std::string::npos);
}

// -------------------------------------------- cap symmetry at the boundary
//
// The caps are a two-party contract: whatever the encoder lets through,
// every conforming decoder must accept, and one byte past the cap must be
// truncated (encoder) or rejected (decoder) — on both the client and the
// server side of each message.

TEST(CapSymmetryTest, ErrorMessageAtExactCapRoundTripsUntruncated) {
  ErrorMsg msg;
  msg.code = StatusCode::kInternal;
  msg.message = std::string(kMaxErrorMessageBytes, 'e');
  Result<ErrorMsg> decoded = DecodeError(EncodeError(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->message.size(), std::size_t{kMaxErrorMessageBytes});
  EXPECT_EQ(decoded->message, msg.message);
}

TEST(CapSymmetryTest, ErrorMessageOneOverCapIsTruncatedByEncoder) {
  ErrorMsg msg;
  msg.code = StatusCode::kUnavailable;
  msg.message = std::string(kMaxErrorMessageBytes + 1, 'e');
  Result<ErrorMsg> decoded = DecodeError(EncodeError(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->message.size(), std::size_t{kMaxErrorMessageBytes});
}

TEST(CapSymmetryTest, ErrorDecoderRejectsDeclaredLengthOneOverCap) {
  // A non-conforming encoder that declares kMaxErrorMessageBytes + 1 must
  // be refused on the declared length, before the body is consumed.
  WireWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kInternal));
  w.String(std::string(kMaxErrorMessageBytes + 1, 'x'));
  Frame f{static_cast<std::uint8_t>(WireResponse::kError), kWireVersion,
          std::move(w).Take()};
  Result<ErrorMsg> decoded = DecodeError(f);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("cap"), std::string::npos);
}

TEST(CapSymmetryTest, BatchResultStatusMessageAtExactCapAcceptedOneOverRejected) {
  // Same boundary on the reply path the client decodes: a result whose
  // status_message is exactly at the cap is legal; a declared length one
  // past it is malformed.
  BatchResultMsg msg;
  WireQueryResult failed;
  failed.status_code = StatusCode::kInternal;
  failed.status_message = std::string(kMaxErrorMessageBytes, 'm');
  msg.results = {failed};
  Result<BatchResultMsg> decoded = DecodeBatchResult(EncodeBatchResult(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->results[0].status_message.size(),
            std::size_t{kMaxErrorMessageBytes});

  WireWriter w;
  w.U32(1);  // one result
  w.U8(static_cast<std::uint8_t>(StatusCode::kInternal));
  w.String(std::string(kMaxErrorMessageBytes + 1, 'm'));
  w.U8(2);   // verdict: failed
  w.U8(0);   // no counterexample
  w.U64(0);
  for (int i = 0; i < 8; ++i) w.U64(0);  // stats
  Frame f{static_cast<std::uint8_t>(WireResponse::kBatchResult), kMinWireVersion,
          std::move(w).Take()};
  Result<BatchResultMsg> rejected = DecodeBatchResult(f);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("cap"), std::string::npos);
}

// ------------------------------------------------- frame header contract

TEST(FrameHeaderTest, ValidHeaderParses) {
  std::uint8_t bytes[kFrameHeaderBytes] = {0x0D, 0xF0, 0x00, 0x00, kWireVersion,
                                           static_cast<std::uint8_t>(WireRequest::kCheckBatch)};
  FrameHeader head;
  ASSERT_TRUE(DecodeFrameHeader(bytes, sizeof(bytes), &head).ok());
  EXPECT_EQ(head.payload_len, 0xF00Du);
  EXPECT_EQ(head.version, kWireVersion);
  EXPECT_EQ(head.type, static_cast<std::uint8_t>(WireRequest::kCheckBatch));
}

TEST(FrameHeaderTest, ShortBufferIsTruncated) {
  std::uint8_t bytes[kFrameHeaderBytes] = {0, 0, 0, 0, kWireVersion, 0};
  FrameHeader head;
  for (std::size_t len = 0; len < kFrameHeaderBytes; ++len) {
    Status s = DecodeFrameHeader(bytes, len, &head);
    ASSERT_FALSE(s.ok()) << "header of " << len << " bytes must not parse";
    EXPECT_NE(s.message().find("truncated"), std::string::npos);
  }
}

TEST(FrameHeaderTest, VersionWindowIsClosedOnBothSides) {
  FrameHeader head;
  std::uint8_t low[kFrameHeaderBytes] = {0, 0, 0, 0, kMinWireVersion - 1, 0};
  Status s = DecodeFrameHeader(low, sizeof(low), &head);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos);

  std::uint8_t high[kFrameHeaderBytes] = {0, 0, 0, 0, kWireVersion + 1, 0};
  s = DecodeFrameHeader(high, sizeof(high), &head);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(FrameHeaderTest, PayloadCapBoundary) {
  // len == kMaxFramePayload is the last legal value; one more is refused.
  // This is the shared gate for both directions — client and server frame
  // reads run through the same DecodeFrameHeader.
  auto header_with_len = [](std::uint32_t len) {
    std::vector<std::uint8_t> bytes(kFrameHeaderBytes, 0);
    for (int i = 0; i < 4; ++i) bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
    bytes[4] = kWireVersion;
    bytes[5] = static_cast<std::uint8_t>(WireRequest::kPing);
    return bytes;
  };
  FrameHeader head;
  std::vector<std::uint8_t> at_cap = header_with_len(kMaxFramePayload);
  ASSERT_TRUE(DecodeFrameHeader(at_cap.data(), at_cap.size(), &head).ok());
  EXPECT_EQ(head.payload_len, kMaxFramePayload);

  std::vector<std::uint8_t> over = header_with_len(kMaxFramePayload + 1);
  Status s = DecodeFrameHeader(over.data(), over.size(), &head);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("cap"), std::string::npos);
}

// --------------------------------------- trace-context truncation matrix
//
// A v3 frame carries exactly kTraceContextBytes (25) of trace context at
// the payload tail. Cutting the frame at every point inside those 25
// bytes must be InvalidArgument — for the request codecs the server runs
// and the reply codecs the client runs alike. (Leaving all 25 intact is
// the round-trip case, pinned here too so the loop bounds are honest.)

void ExpectTraceCutPointsRejected(
    const Frame& v3, const std::function<Status(const Frame&)>& decode) {
  ASSERT_GE(v3.payload.size(), std::size_t{25});
  const std::size_t base = v3.payload.size() - 25;
  for (std::size_t kept = 0; kept < 25; ++kept) {
    Frame cut = v3;
    cut.payload.resize(base + kept);
    Status s = decode(cut);
    ASSERT_FALSE(s.ok()) << "decode with " << kept << "/25 trace bytes must fail";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "kept=" << kept;
  }
  EXPECT_TRUE(decode(v3).ok());
}

TEST(TraceCutPointTest, RegisterPremisesRequest) {
  RegisterPremisesMsg msg;
  msg.n = 4;
  msg.premises = {MakeConstraint({0}, {ItemSet{1}})};
  msg.trace.trace_id_hi = 1;
  msg.trace.trace_id_lo = 2;
  msg.trace.parent_span_id = 3;
  ExpectTraceCutPointsRejected(EncodeRegisterPremises(msg), [](const Frame& f) {
    return DecodeRegisterPremises(f).status();
  });
}

TEST(TraceCutPointTest, CheckBatchRequest) {
  CheckBatchMsg msg;
  msg.handle = 5;
  msg.n = 4;
  msg.goals = {MakeConstraint({0}, {ItemSet{1}})};
  msg.trace.trace_id_hi = 1;
  msg.trace.trace_id_lo = 2;
  ExpectTraceCutPointsRejected(EncodeCheckBatch(msg), [](const Frame& f) {
    return DecodeCheckBatch(f).status();
  });
}

TEST(TraceCutPointTest, RegisterOkReply) {
  RegisterOkMsg msg;
  msg.handle = 11;
  msg.trace.trace_id_hi = 1;
  msg.trace.trace_id_lo = 2;
  ExpectTraceCutPointsRejected(EncodeRegisterOk(msg), [](const Frame& f) {
    return DecodeRegisterOk(f).status();
  });
}

TEST(TraceCutPointTest, BatchResultReply) {
  BatchResultMsg msg;
  WireQueryResult implied;
  implied.verdict = 1;
  msg.results = {implied};
  msg.stats.queries = 1;
  msg.trace.trace_id_hi = 1;
  msg.trace.trace_id_lo = 2;
  ExpectTraceCutPointsRejected(EncodeBatchResult(msg), [](const Frame& f) {
    return DecodeBatchResult(f).status();
  });
}

TEST(WireCodecTest, SerializedHeaderLayout) {
  Frame ping = TamperedPing();
  std::vector<std::uint8_t> bytes = SerializeFrame(ping);
  ASSERT_EQ(bytes.size(), 6u + ping.payload.size());
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{bytes[i]} << (8 * i);
  EXPECT_EQ(len, ping.payload.size());
  EXPECT_EQ(bytes[4], kWireVersion);
  EXPECT_EQ(bytes[5], static_cast<std::uint8_t>(WireRequest::kPing));
}

// ----------------------------------------------------------------- framing
//
// ReadFrame over a socketpair: the header contract (version byte, length
// cap, truncation) is enforced before any payload allocation.

struct SocketPair {
  Socket a;
  Socket b;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
};

TEST(FramingTest, FrameRoundTripOverSocket) {
  SocketPair pair;
  Frame sent = EncodePing(PingMsg{1234});
  ASSERT_TRUE(WriteFrame(pair.a, sent).ok());
  Frame got;
  bool clean_eof = true;
  ASSERT_TRUE(ReadFrame(pair.b, &got, &clean_eof).ok());
  EXPECT_FALSE(clean_eof);
  EXPECT_EQ(got.type, sent.type);
  EXPECT_EQ(got.payload, sent.payload);
}

TEST(FramingTest, CleanEofBetweenFrames) {
  SocketPair pair;
  pair.a.Close();
  Frame got;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(pair.b, &got, &clean_eof).ok());
  EXPECT_TRUE(clean_eof);
}

TEST(FramingTest, OversizedDeclaredLengthRejectedBeforeAllocation) {
  SocketPair pair;
  // Header declaring a payload one byte over the cap; no payload follows.
  const std::uint32_t len = kMaxFramePayload + 1;
  std::uint8_t header[6];
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  header[4] = kWireVersion;
  header[5] = static_cast<std::uint8_t>(WireRequest::kPing);
  ASSERT_TRUE(pair.a.SendAll(header, sizeof(header)).ok());
  Frame got;
  bool clean_eof = false;
  Status s = ReadFrame(pair.b, &got, &clean_eof);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("cap"), std::string::npos);
}

TEST(FramingTest, BothSupportedVersionsAreAcceptedAndRecorded) {
  // v3 servers keep talking to v2 clients: ReadFrame accepts the whole
  // [kMinWireVersion, kWireVersion] window and reports which version the
  // peer spoke so codecs can gate the trace-context bytes.
  for (std::uint8_t v = kMinWireVersion; v <= kWireVersion; ++v) {
    SocketPair pair;
    Frame sent = EncodePing(PingMsg{77});
    sent.version = v;
    ASSERT_TRUE(WriteFrame(pair.a, sent).ok());
    Frame got;
    bool clean_eof = true;
    ASSERT_TRUE(ReadFrame(pair.b, &got, &clean_eof).ok());
    EXPECT_EQ(got.version, v);
    EXPECT_EQ(got.payload, sent.payload);
  }
  // Below the window is as dead as above it.
  SocketPair pair;
  std::uint8_t header[6] = {0, 0, 0, 0, static_cast<std::uint8_t>(kMinWireVersion - 1),
                            static_cast<std::uint8_t>(WireRequest::kPing)};
  ASSERT_TRUE(pair.a.SendAll(header, sizeof(header)).ok());
  Frame got;
  bool clean_eof = false;
  Status s = ReadFrame(pair.b, &got, &clean_eof);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(FramingTest, VersionMismatchRejected) {
  SocketPair pair;
  std::uint8_t header[6] = {0, 0, 0, 0, static_cast<std::uint8_t>(kWireVersion + 1),
                            static_cast<std::uint8_t>(WireRequest::kPing)};
  ASSERT_TRUE(pair.a.SendAll(header, sizeof(header)).ok());
  Frame got;
  bool clean_eof = false;
  Status s = ReadFrame(pair.b, &got, &clean_eof);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(FramingTest, TruncatedHeaderIsError) {
  SocketPair pair;
  std::uint8_t partial[3] = {1, 2, 3};
  ASSERT_TRUE(pair.a.SendAll(partial, sizeof(partial)).ok());
  pair.a.Close();
  Frame got;
  bool clean_eof = false;
  Status s = ReadFrame(pair.b, &got, &clean_eof);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
}

TEST(FramingTest, TruncatedPayloadIsError) {
  SocketPair pair;
  Frame sent = EncodePing(PingMsg{1});
  std::vector<std::uint8_t> bytes = SerializeFrame(sent);
  // Header promises 8 payload bytes; deliver half and hang up.
  ASSERT_TRUE(pair.a.SendAll(bytes.data(), bytes.size() - 4).ok());
  pair.a.Close();
  Frame got;
  bool clean_eof = false;
  Status s = ReadFrame(pair.b, &got, &clean_eof);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
}

// ------------------------------------------------- errno classification
//
// The socket layer's error taxonomy, pinned at the boundary the client
// retry logic keys on: a hard peer reset is Unavailable (retryable on a
// fresh connection), an orderly-but-early close is InvalidArgument
// ("truncated", not retryable as-is), and EINTR never surfaces at all.

TEST(SocketErrnoTest, PeerResetOnRecvIsUnavailable) {
  // Linux AF_UNIX semantics: closing a socket that still has unread data
  // in its receive queue resets the peer — the peer's next recv fails
  // with ECONNRESET rather than reporting EOF. That must classify as
  // Unavailable, distinct from the InvalidArgument of a mid-frame EOF.
  SocketPair pair;
  const std::uint8_t junk[64] = {};
  ASSERT_TRUE(pair.a.SendAll(junk, sizeof(junk)).ok());
  // b closes with a's 64 bytes still queued and unread.
  pair.b.Close();
  std::uint8_t buf[16];
  bool clean_eof = false;
  Status s = pair.a.RecvAll(buf, sizeof(buf), &clean_eof);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.message();
  EXPECT_FALSE(clean_eof);
}

TEST(SocketErrnoTest, BrokenPipeOnSendIsUnavailable) {
  SocketPair pair;
  pair.b.Close();
  const std::uint8_t junk[64] = {};
  Status s = pair.a.SendAll(junk, sizeof(junk));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.message();
}

TEST(SocketErrnoTest, OrderlyEarlyCloseStaysInvalidArgumentNotUnavailable) {
  // The reset case above must not blur the existing truncation contract:
  // a peer that sends part of a request and closes cleanly (nothing
  // unread in its own queue) is a protocol error, not an outage.
  SocketPair pair;
  const std::uint8_t partial[4] = {1, 2, 3, 4};
  ASSERT_TRUE(pair.a.SendAll(partial, sizeof(partial)).ok());
  pair.a.Close();
  std::uint8_t buf[16];
  bool clean_eof = false;
  Status s = pair.b.RecvAll(buf, sizeof(buf), &clean_eof);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.message();
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
}

TEST(SocketErrnoTest, RecvTimeoutIsDeadlineExceeded) {
  SocketPair pair;
  ASSERT_TRUE(pair.b.SetRecvTimeout(std::chrono::milliseconds(50)).ok());
  std::uint8_t buf[16];
  bool clean_eof = false;
  Status s = pair.b.RecvAll(buf, sizeof(buf), &clean_eof);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.message();
}

TEST(SocketErrnoTest, EintrDuringBlockingRecvIsRetriedNotSurfaced) {
  // A signal delivered to a thread parked in recv makes the syscall fail
  // with EINTR when the handler is installed without SA_RESTART. The read
  // loop must absorb it and deliver the bytes that eventually arrive.
  struct sigaction sa {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // Deliberately no SA_RESTART: recv must see EINTR.
  struct sigaction old {};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair pair;
  std::atomic<bool> receiving{false};
  Status result = Status::Internal("not run");
  std::uint8_t got[8] = {};
  std::thread reader([&] {
    receiving.store(true);
    bool clean_eof = false;
    result = pair.b.RecvAll(got, sizeof(got), &clean_eof);
  });
  while (!receiving.load()) std::this_thread::yield();
  // Interrupt the blocked recv several times before any data exists.
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pthread_kill(reader.native_handle(), SIGUSR1);
  }
  const std::uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(pair.a.SendAll(payload, sizeof(payload)).ok());
  reader.join();
  ASSERT_EQ(sigaction(SIGUSR1, &old, nullptr), 0);

  ASSERT_TRUE(result.ok()) << result.message();
  EXPECT_EQ(std::memcmp(got, payload, sizeof(payload)), 0);
}

}  // namespace
}  // namespace diffc::net
