#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <set>
#include <thread>

#include "util/bitops.h"
#include "util/deadline.h"
#include "util/random.h"
#include "util/rational.h"
#include "util/status.h"
#include "util/text.h"

namespace diffc {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition), "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
}

TEST(StatusTest, OkStatusDropsMessage) {
  // Invariant: an OK status never carries a message, no matter how it was
  // constructed — so `ok()` / equality / ToString can't disagree about it.
  Status s(StatusCode::kOk, "should be ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, Status());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Internal("x"));
  EXPECT_NE(Status(), Status::Internal("boom"));
}

TEST(StatusTest, ToStringCoversAllErrorConstructors) {
  EXPECT_EQ(Status::InvalidArgument("a").ToString(), "InvalidArgument: a");
  EXPECT_EQ(Status::OutOfRange("b").ToString(), "OutOfRange: b");
  EXPECT_EQ(Status::FailedPrecondition("c").ToString(), "FailedPrecondition: c");
  EXPECT_EQ(Status::NotFound("d").ToString(), "NotFound: d");
  EXPECT_EQ(Status::ResourceExhausted("e").ToString(), "ResourceExhausted: e");
  EXPECT_EQ(Status::Internal("f").ToString(), "Internal: f");
  EXPECT_EQ(Status::DeadlineExceeded("g").ToString(), "DeadlineExceeded: g");
  EXPECT_EQ(Status::Cancelled("h").ToString(), "Cancelled: h");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

// ---------------------------------------------------------------- Rational

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(RationalTest, Reduces) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(RationalTest, NormalizesSign) {
  Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
  EXPECT_TRUE(r.IsNegative());
}

TEST(RationalTest, Arithmetic) {
  Rational a(1, 3), b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
  EXPECT_EQ(-a, Rational(-1, 3));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
  EXPECT_GE(Rational(2, 4), Rational(1, 2));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(RationalTest, CompoundAssignment) {
  Rational r(1, 2);
  r += Rational(1, 2);
  EXPECT_EQ(r, Rational(1));
  r *= Rational(2, 3);
  EXPECT_EQ(r, Rational(2, 3));
  r -= Rational(2, 3);
  EXPECT_TRUE(r.IsZero());
}

TEST(RationalTest, ToString) {
  EXPECT_EQ(Rational(3).ToString(), "3");
  EXPECT_EQ(Rational(1, 2).ToString(), "1/2");
  EXPECT_EQ(Rational(-1, 2).ToString(), "-1/2");
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).ToDouble(), 0.25);
}

TEST(RationalTest, SumOfThirdsIsExactlyOne) {
  Rational acc;
  for (int i = 0; i < 3; ++i) acc += Rational(1, 3);
  EXPECT_EQ(acc, Rational(1));
}

// Overflow used to abort the process; it must now surface as the sticky
// overflow value, detectable with Overflowed().

TEST(RationalTest, MultiplicationOverflowIsErrorNotCrash) {
  Rational big(std::int64_t{1} << 62);
  Rational r = big * big;
  EXPECT_TRUE(r.Overflowed());
  EXPECT_FALSE(r.IsZero());
}

TEST(RationalTest, AdditionOverflowIsErrorNotCrash) {
  // num/den with den ~2^40: the sum's reduced denominator is ~2^80.
  Rational a(1, (std::int64_t{1} << 40) + 1);
  Rational b(1, (std::int64_t{1} << 40) + 15);
  EXPECT_TRUE((a + b).Overflowed());
}

TEST(RationalTest, NegationOfMinIsOverflowNotUb) {
  Rational min_num(std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE((-min_num).Overflowed());
  EXPECT_TRUE((Rational(0) - min_num).Overflowed());
}

TEST(RationalTest, OverflowIsSticky) {
  Rational poison = Rational::Overflow();
  EXPECT_TRUE((poison + Rational(1)).Overflowed());
  EXPECT_TRUE((Rational(1) + poison).Overflowed());
  EXPECT_TRUE((poison - poison).Overflowed());
  EXPECT_TRUE((poison * Rational(0)).Overflowed());
  EXPECT_TRUE((poison / Rational(2)).Overflowed());
  EXPECT_TRUE((-poison).Overflowed());
}

TEST(RationalTest, DivisionByZeroIsOverflow) {
  EXPECT_TRUE((Rational(1) / Rational(0)).Overflowed());
  EXPECT_TRUE((Rational(0) / Rational(0)).Overflowed());
}

TEST(RationalTest, ZeroDenominatorConstructorIsOverflow) {
  EXPECT_TRUE(Rational(5, 0).Overflowed());
}

TEST(RationalTest, OverflowComparesEqualOnlyToItself) {
  Rational poison = Rational::Overflow();
  EXPECT_EQ(poison, Rational::Overflow());
  EXPECT_NE(poison, Rational(0));
  EXPECT_FALSE(poison < Rational(1));
  EXPECT_FALSE(Rational(1) < poison);
  EXPECT_FALSE(poison < poison);
}

TEST(RationalTest, OverflowToString) {
  EXPECT_EQ(Rational::Overflow().ToString(), "overflow");
}

TEST(RationalTest, NearOverflowStillExact) {
  // Values that fit exactly must keep working right up to the edge.
  Rational max_num(std::numeric_limits<std::int64_t>::max());
  EXPECT_FALSE(max_num.Overflowed());
  EXPECT_FALSE((max_num - max_num).Overflowed());
  EXPECT_TRUE((max_num - max_num).IsZero());
  EXPECT_TRUE((max_num + Rational(1)).Overflowed());
}

// ---------------------------------------------------------------- bitops

TEST(BitopsTest, FullMask) {
  EXPECT_EQ(FullMask(0), 0u);
  EXPECT_EQ(FullMask(3), 0b111u);
  EXPECT_EQ(FullMask(64), ~Mask{0});
}

TEST(BitopsTest, SubsetTest) {
  EXPECT_TRUE(IsSubset(0b101, 0b111));
  EXPECT_FALSE(IsSubset(0b101, 0b011));
  EXPECT_TRUE(IsSubset(0, 0));
}

TEST(BitopsTest, ForEachBitVisitsAllInOrder) {
  std::vector<int> bits;
  ForEachBit(0b10110, [&](int b) { bits.push_back(b); });
  EXPECT_EQ(bits, (std::vector<int>{1, 2, 4}));
}

TEST(BitopsTest, ForEachSubsetVisitsAll) {
  std::set<Mask> seen;
  ForEachSubset(0b101, [&](Mask m) { seen.insert(m); });
  EXPECT_EQ(seen, (std::set<Mask>{0, 0b001, 0b100, 0b101}));
}

TEST(BitopsTest, ForEachSubsetOfEmpty) {
  int count = 0;
  ForEachSubset(0, [&](Mask m) {
    EXPECT_EQ(m, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(BitopsTest, ForEachSupersetVisitsAll) {
  std::set<Mask> seen;
  ForEachSuperset(0b001, 0b011, [&](Mask m) { seen.insert(m); });
  EXPECT_EQ(seen, (std::set<Mask>{0b001, 0b011}));
}

TEST(BitopsTest, SubsetSupersetCountsMatch) {
  // 2^k subsets of a k-element set; supersets within a universe mirror it.
  int subsets = 0;
  ForEachSubset(0b11011, [&](Mask) { ++subsets; });
  EXPECT_EQ(subsets, 16);
  int supersets = 0;
  ForEachSuperset(0b00011, FullMask(6), [&](Mask) { ++supersets; });
  EXPECT_EQ(supersets, 16);
}

// ---------------------------------------------------------------- random

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, RandomMaskWithinUniverse) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(IsSubset(rng.RandomMask(10, 0.5), FullMask(10)));
  }
}

TEST(RngTest, RandomMaskDensityExtremes) {
  Rng rng(5);
  EXPECT_EQ(rng.RandomMask(12, 0.0), 0u);
  EXPECT_EQ(rng.RandomMask(12, 1.0), FullMask(12));
}

TEST(RngTest, RandomNonemptySubsetIsNonemptySubset) {
  Rng rng(13);
  const Mask pool = 0b1010110;
  for (int i = 0; i < 200; ++i) {
    Mask m = rng.RandomNonemptySubsetOf(pool);
    EXPECT_NE(m, 0u);
    EXPECT_TRUE(IsSubset(m, pool));
  }
}

TEST(RngTest, RandomSubsetOfStaysInPool) {
  Rng rng(17);
  const Mask pool = 0b111000;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(IsSubset(rng.RandomSubsetOf(pool), pool));
  }
}

TEST(RngTest, RandomFamilyHasRequestedCount) {
  Rng rng(19);
  EXPECT_EQ(rng.RandomFamily(8, 5, 0.3).size(), 5u);
}

// ---------------------------------------------------------------- text

TEST(TextTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(TextTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(TextTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

// ---------------------------------------------------------------- Deadline

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.IsNever());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.Remaining(), Deadline::Clock::duration::max());
  EXPECT_TRUE(Deadline::Never().IsNever());
}

TEST(DeadlineTest, AfterExpires) {
  Deadline past = Deadline::After(std::chrono::nanoseconds(-1));
  EXPECT_FALSE(past.IsNever());
  EXPECT_TRUE(past.Expired());
  EXPECT_LE(past.Remaining().count(), 0);

  Deadline future = Deadline::After(std::chrono::hours(1));
  EXPECT_FALSE(future.Expired());
  EXPECT_GT(future.Remaining().count(), 0);
}

TEST(DeadlineTest, EarlierPicksTheTighterBound) {
  Deadline a = Deadline::After(std::chrono::hours(1));
  Deadline never = Deadline::Never();
  EXPECT_EQ(Deadline::Earlier(a, never).expiry(), a.expiry());
  EXPECT_EQ(Deadline::Earlier(never, a).expiry(), a.expiry());
  EXPECT_TRUE(Deadline::Earlier(never, never).IsNever());

  Deadline b = Deadline::At(a.expiry() - std::chrono::minutes(1));
  EXPECT_EQ(Deadline::Earlier(a, b).expiry(), b.expiry());
}

TEST(CancelTokenTest, CopiesShareTheFlag) {
  CancelToken token;
  CancelToken copy = token;
  EXPECT_FALSE(token.Cancelled());
  EXPECT_FALSE(copy.Cancelled());
  copy.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_TRUE(copy.Cancelled());
  token.Cancel();  // Idempotent.
  EXPECT_TRUE(token.Cancelled());
}

TEST(CancelTokenTest, FreshTokensAreIndependent) {
  CancelToken a;
  CancelToken b;
  a.Cancel();
  EXPECT_FALSE(b.Cancelled());
}

TEST(StopCheckTest, DefaultNeverStops) {
  StopCheck stop;
  for (int i = 0; i < 10'000; ++i) EXPECT_TRUE(stop.Check().ok());
  EXPECT_FALSE(stop.stopped());
  EXPECT_EQ(stop.samples(), 0u);  // Unarmed checks never touch the clock.
}

TEST(StopCheckTest, ExpiredDeadlineFiresOnFirstCheck) {
  StopCheck stop(Deadline::After(std::chrono::nanoseconds(-1)), CancelToken());
  Status s = stop.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(stop.stopped());
}

TEST(StopCheckTest, CancellationWinsAndIsSticky) {
  CancelToken token;
  StopCheck stop(Deadline::After(std::chrono::nanoseconds(-1)), token);
  token.Cancel();
  // Both conditions hold; cancellation is reported (checked first).
  EXPECT_EQ(stop.Check().code(), StatusCode::kCancelled);
  // Sticky: the same status comes back without re-sampling.
  const std::uint64_t samples = stop.samples();
  EXPECT_EQ(stop.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(stop.CheckNow().code(), StatusCode::kCancelled);
  EXPECT_EQ(stop.samples(), samples);
}

TEST(StopCheckTest, ChecksAreAmortizedByStride) {
  CancelToken token;
  StopCheck stop(Deadline::Never(), token, /*stride=*/64);
  // First call samples; the next 63 are countdown-only.
  EXPECT_TRUE(stop.Check().ok());
  EXPECT_EQ(stop.samples(), 1u);
  token.Cancel();
  for (int i = 0; i < 63; ++i) EXPECT_TRUE(stop.Check().ok());
  EXPECT_EQ(stop.samples(), 1u);
  // The 64th call after the sample re-samples and observes the token.
  EXPECT_EQ(stop.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(stop.samples(), 2u);
}

TEST(StopCheckTest, CheckNowBypassesTheStride) {
  CancelToken token;
  StopCheck stop(Deadline::Never(), token, /*stride=*/1'000'000);
  EXPECT_TRUE(stop.Check().ok());
  token.Cancel();
  EXPECT_EQ(stop.CheckNow().code(), StatusCode::kCancelled);
}

TEST(StopCheckTest, DeadlineObservedAcrossSleep) {
  StopCheck stop(Deadline::After(std::chrono::milliseconds(1)), CancelToken(),
                 /*stride=*/1);
  EXPECT_TRUE(stop.Check().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_EQ(stop.Check().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace diffc
