#include <gtest/gtest.h>

#include "math/simplex.h"
#include "util/random.h"

namespace diffc {
namespace {

LpConstraint Row(std::vector<Rational> coeffs, LpSense sense, Rational rhs) {
  return LpConstraint{std::move(coeffs), sense, rhs};
}

TEST(SimplexTest, ValidatesShapes) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {Rational(1)};  // Wrong size.
  EXPECT_FALSE(SolveLp(p).ok());
  p.objective = {Rational(1), Rational(0)};
  p.constraints.push_back(Row({Rational(1)}, LpSense::kLe, Rational(1)));
  EXPECT_FALSE(SolveLp(p).ok());
}

TEST(SimplexTest, TextbookMaximum) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: optimum 36 at (2,6).
  LpProblem p;
  p.num_vars = 2;
  p.objective = {Rational(3), Rational(5)};
  p.constraints = {
      Row({Rational(1), Rational(0)}, LpSense::kLe, Rational(4)),
      Row({Rational(0), Rational(2)}, LpSense::kLe, Rational(12)),
      Row({Rational(3), Rational(2)}, LpSense::kLe, Rational(18)),
  };
  Result<LpSolution> s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->outcome, LpOutcome::kOptimal);
  EXPECT_EQ(s->objective_value, Rational(36));
  EXPECT_EQ(s->values[0], Rational(2));
  EXPECT_EQ(s->values[1], Rational(6));
}

TEST(SimplexTest, ExactFractionalOptimum) {
  // max x + y s.t. 2x + y <= 1, x + 3y <= 2: optimum at x=1/5, y=3/5.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {Rational(1), Rational(1)};
  p.constraints = {
      Row({Rational(2), Rational(1)}, LpSense::kLe, Rational(1)),
      Row({Rational(1), Rational(3)}, LpSense::kLe, Rational(2)),
  };
  Result<LpSolution> s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->outcome, LpOutcome::kOptimal);
  EXPECT_EQ(s->objective_value, Rational(4, 5));
  EXPECT_EQ(s->values[0], Rational(1, 5));
  EXPECT_EQ(s->values[1], Rational(3, 5));
}

TEST(SimplexTest, Unbounded) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {Rational(1), Rational(0)};
  p.constraints = {Row({Rational(-1), Rational(1)}, LpSense::kLe, Rational(1))};
  Result<LpSolution> s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->outcome, LpOutcome::kUnbounded);
}

TEST(SimplexTest, Infeasible) {
  // x <= 1 and x >= 2.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {Rational(0)};
  p.constraints = {
      Row({Rational(1)}, LpSense::kLe, Rational(1)),
      Row({Rational(1)}, LpSense::kGe, Rational(2)),
  };
  Result<LpSolution> s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->outcome, LpOutcome::kInfeasible);
}

TEST(SimplexTest, EqualityConstraints) {
  // max x s.t. x + y = 3, x - y = 1: unique point (2, 1).
  LpProblem p;
  p.num_vars = 2;
  p.objective = {Rational(1), Rational(0)};
  p.constraints = {
      Row({Rational(1), Rational(1)}, LpSense::kEq, Rational(3)),
      Row({Rational(1), Rational(-1)}, LpSense::kEq, Rational(1)),
  };
  Result<LpSolution> s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->outcome, LpOutcome::kOptimal);
  EXPECT_EQ(s->values[0], Rational(2));
  EXPECT_EQ(s->values[1], Rational(1));
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // -x <= -2 means x >= 2; max -x gives x = 2.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {Rational(-1)};
  p.constraints = {Row({Rational(-1)}, LpSense::kLe, Rational(-2))};
  Result<LpSolution> s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->outcome, LpOutcome::kOptimal);
  EXPECT_EQ(s->values[0], Rational(2));
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degenerate vertex; Bland's rule must not cycle.
  LpProblem p;
  p.num_vars = 4;
  p.objective = {Rational(3, 4), Rational(-150), Rational(1, 50), Rational(-6)};
  p.constraints = {
      Row({Rational(1, 4), Rational(-60), Rational(-1, 25), Rational(9)}, LpSense::kLe,
          Rational(0)),
      Row({Rational(1, 2), Rational(-90), Rational(-1, 50), Rational(3)}, LpSense::kLe,
          Rational(0)),
      Row({Rational(0), Rational(0), Rational(1), Rational(0)}, LpSense::kLe, Rational(1)),
  };
  Result<LpSolution> s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->outcome, LpOutcome::kOptimal);
  EXPECT_EQ(s->objective_value, Rational(1, 20));
}

TEST(SimplexTest, RedundantEqualityRows) {
  // x + y = 2 stated twice; still solvable.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {Rational(1), Rational(1)};
  p.constraints = {
      Row({Rational(1), Rational(1)}, LpSense::kEq, Rational(2)),
      Row({Rational(1), Rational(1)}, LpSense::kEq, Rational(2)),
  };
  Result<LpSolution> s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->outcome, LpOutcome::kOptimal);
  EXPECT_EQ(s->objective_value, Rational(2));
}

TEST(SimplexTest, RationalOverflowIsOutOfRangeNotAbort) {
  // Pivoting mixes denominators 2^40+1 and 2^40+15 (coprime), so the
  // eliminated row's coefficient 1 - 1/(d1*d2) needs a ~2^80 denominator.
  // The solver must report OutOfRange, not abort.
  const std::int64_t d1 = (std::int64_t{1} << 40) + 1;
  const std::int64_t d2 = (std::int64_t{1} << 40) + 15;
  LpProblem p;
  p.num_vars = 2;
  p.objective = {Rational(1), Rational(1)};
  p.constraints = {
      Row({Rational(1, d1), Rational(1)}, LpSense::kLe, Rational(1)),
      Row({Rational(1), Rational(1, d2)}, LpSense::kLe, Rational(1)),
  };
  Result<LpSolution> s = SolveLp(p);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kOutOfRange);
}

TEST(SimplexTest, ZeroVariableProblem) {
  LpProblem p;
  p.num_vars = 0;
  Result<LpSolution> s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->outcome, LpOutcome::kOptimal);
  EXPECT_EQ(s->objective_value, Rational(0));
}

// Property: on random feasible-by-construction problems the optimum is a
// feasible point and no sampled feasible point beats it.
class SimplexProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexProperty, OptimumIsFeasibleAndUnbeatenBySamples) {
  Rng rng(GetParam() * 127);
  for (int iter = 0; iter < 15; ++iter) {
    const int n = static_cast<int>(rng.UniformInt(1, 4));
    const int m = static_cast<int>(rng.UniformInt(1, 5));
    LpProblem p;
    p.num_vars = n;
    for (int j = 0; j < n; ++j) p.objective.push_back(Rational(rng.UniformInt(-3, 3)));
    // Constraints a·x <= b with a >= 0 elementwise keep the region bounded
    // in every objective-increasing direction only if a > 0; add a box to
    // guarantee boundedness.
    for (int i = 0; i < m; ++i) {
      std::vector<Rational> coeffs;
      for (int j = 0; j < n; ++j) coeffs.push_back(Rational(rng.UniformInt(0, 3)));
      p.constraints.push_back(Row(std::move(coeffs), LpSense::kLe,
                                  Rational(rng.UniformInt(0, 10))));
    }
    for (int j = 0; j < n; ++j) {
      std::vector<Rational> box(n);
      box[j] = Rational(1);
      p.constraints.push_back(Row(std::move(box), LpSense::kLe, Rational(8)));
    }
    Result<LpSolution> s = SolveLp(p);
    ASSERT_TRUE(s.ok());
    ASSERT_EQ(s->outcome, LpOutcome::kOptimal);  // 0 is always feasible.
    // Feasibility of the reported vertex.
    for (const LpConstraint& c : p.constraints) {
      Rational lhs;
      for (int j = 0; j < n; ++j) lhs += c.coeffs[j] * s->values[j];
      EXPECT_LE(lhs, c.rhs);
    }
    for (int j = 0; j < n; ++j) EXPECT_GE(s->values[j], Rational(0));
    // Random feasible samples never beat the optimum.
    for (int sample = 0; sample < 50; ++sample) {
      std::vector<Rational> x;
      for (int j = 0; j < n; ++j) x.push_back(Rational(rng.UniformInt(0, 8)));
      bool feasible = true;
      for (const LpConstraint& c : p.constraints) {
        Rational lhs;
        for (int j = 0; j < n; ++j) lhs += c.coeffs[j] * x[j];
        if (lhs > c.rhs) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      Rational value;
      for (int j = 0; j < n; ++j) value += p.objective[j] * x[j];
      EXPECT_LE(value, s->objective_value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace diffc
