#include <gtest/gtest.h>

#include "core/function_ops.h"
#include "core/parser.h"
#include "fis/frequency.h"
#include "fis/generator.h"
#include "fis/ndi.h"
#include "fis/support.h"

namespace diffc {
namespace {

TEST(FrequencyConstraintTest, Satisfaction) {
  BasketList b = *BasketList::Make(3, {0b011, 0b001, 0b111});
  EXPECT_TRUE(SatisfiesFrequencyConstraint(b, {ItemSet{0}, 2, 3}));
  EXPECT_FALSE(SatisfiesFrequencyConstraint(b, {ItemSet{0}, 4, std::nullopt}));
  EXPECT_FALSE(SatisfiesFrequencyConstraint(b, {ItemSet{0}, 0, 2}));
  EXPECT_TRUE(SatisfiesFrequencyConstraint(b, {ItemSet{2}, 0, std::nullopt}));
}

TEST(FrequencyConstraintTest, ExactConstraintsHold) {
  BasketList b = *BasketList::Make(3, {0b011, 0b001, 0b111, 0b100});
  std::vector<ItemSet> sets{ItemSet(), ItemSet{0}, ItemSet{0, 1}, ItemSet{2}};
  for (const FrequencyConstraint& c : ExactConstraintsOf(b, sets)) {
    EXPECT_TRUE(SatisfiesFrequencyConstraint(b, c));
    ASSERT_TRUE(c.hi.has_value());
    EXPECT_EQ(c.lo, *c.hi);
  }
}

TEST(ConsistencyTest, ObviousContradiction) {
  // s(A) >= 5 but s(∅) <= 3 — impossible since s is antitone.
  std::vector<FrequencyConstraint> freq{
      {ItemSet{0}, 5, std::nullopt},
      {ItemSet(), 0, 3},
  };
  Result<FrequencyConsistency> r = CheckFrequencyConsistency(3, freq);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->consistent);
}

TEST(ConsistencyTest, SatisfiableWithWitness) {
  std::vector<FrequencyConstraint> freq{
      {ItemSet{0}, 3, 5},
      {ItemSet{0, 1}, 2, 2},
      {ItemSet(), 0, 10},
  };
  Result<FrequencyConsistency> r = CheckFrequencyConsistency(3, freq);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->consistent);
  ASSERT_TRUE(r->witness.has_value());
  for (const FrequencyConstraint& c : freq) {
    EXPECT_TRUE(SatisfiesFrequencyConstraint(*r->witness, c));
  }
}

TEST(ConsistencyTest, DifferentialConstraintsRestrict) {
  Universe u = Universe::Letters(3);
  // A -> {B} forces every basket containing A to contain B, so
  // s(A) = s(AB); demanding s(A)=4, s(AB)=1 is inconsistent.
  ConstraintSet diff = *ParseConstraintSet(u, "A -> {B}");
  std::vector<FrequencyConstraint> freq{
      {ItemSet{0}, 4, 4},
      {ItemSet{0, 1}, 1, 1},
  };
  Result<FrequencyConsistency> r = CheckFrequencyConsistency(3, freq, diff);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->consistent);

  // With matching supports it is consistent and the witness satisfies the
  // differential constraint.
  freq[1] = {ItemSet{0, 1}, 4, 4};
  r = CheckFrequencyConsistency(3, freq, diff);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->consistent);
  ASSERT_TRUE(r->witness.has_value());
  SetFunction<std::int64_t> support = *SupportFunction(*r->witness);
  EXPECT_TRUE(Satisfies(support, diff[0]));
}

TEST(ConsistencyTest, EmptyConstraintsAlwaysConsistent) {
  Result<FrequencyConsistency> r = CheckFrequencyConsistency(4, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->consistent);
}

TEST(ConsistencyTest, GuardOnLargeUniverse) {
  EXPECT_EQ(CheckFrequencyConsistency(12, {}).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(IntervalTest, MonotonicityRecovered) {
  // From s(A) = 7 alone: 0 <= s(AB) <= 7 (anti-monotonicity of support).
  std::vector<FrequencyConstraint> freq{{ItemSet{0}, 7, 7}, {ItemSet(), 0, 20}};
  Result<SupportInterval> iv = ImpliedSupportInterval(3, freq, {}, ItemSet{0, 1});
  ASSERT_TRUE(iv.ok());
  EXPECT_EQ(iv->lo, Rational(0));
  ASSERT_TRUE(iv->hi.has_value());
  EXPECT_EQ(*iv->hi, Rational(7));
}

TEST(IntervalTest, UnboundedWithoutCeiling) {
  // No upper bounds anywhere: s(A) can be arbitrarily large.
  std::vector<FrequencyConstraint> freq{{ItemSet{0}, 3, std::nullopt}};
  Result<SupportInterval> iv = ImpliedSupportInterval(3, freq, {}, ItemSet{0});
  ASSERT_TRUE(iv.ok());
  EXPECT_EQ(iv->lo, Rational(3));
  EXPECT_FALSE(iv->hi.has_value());
}

TEST(IntervalTest, InclusionExclusionBound) {
  // s(A)=6, s(B)=7, s(∅)=10: s(AB) >= 3 (Bonferroni) and <= 6.
  std::vector<FrequencyConstraint> freq{
      {ItemSet{0}, 6, 6}, {ItemSet{1}, 7, 7}, {ItemSet(), 10, 10}};
  Result<SupportInterval> iv = ImpliedSupportInterval(2, freq, {}, ItemSet{0, 1});
  ASSERT_TRUE(iv.ok());
  EXPECT_EQ(iv->lo, Rational(3));
  ASSERT_TRUE(iv->hi.has_value());
  EXPECT_EQ(*iv->hi, Rational(6));
}

TEST(IntervalTest, DifferentialConstraintTightensBounds) {
  Universe u = Universe::Letters(3);
  // s(A) = 5; under A -> {B}, s(AB) is forced to 5 exactly.
  std::vector<FrequencyConstraint> freq{{ItemSet{0}, 5, 5}, {ItemSet(), 0, 20}};
  Result<SupportInterval> plain = ImpliedSupportInterval(3, freq, {}, ItemSet{0, 1});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->lo, Rational(0));

  ConstraintSet diff = *ParseConstraintSet(u, "A -> {B}");
  Result<SupportInterval> constrained = ImpliedSupportInterval(3, freq, diff, ItemSet{0, 1});
  ASSERT_TRUE(constrained.ok());
  EXPECT_EQ(constrained->lo, Rational(5));
  ASSERT_TRUE(constrained->hi.has_value());
  EXPECT_EQ(*constrained->hi, Rational(5));
}

TEST(IntervalTest, InconsistentConstraintsRejected) {
  std::vector<FrequencyConstraint> freq{{ItemSet{0}, 5, std::nullopt}, {ItemSet(), 0, 3}};
  EXPECT_EQ(ImpliedSupportInterval(3, freq, {}, ItemSet{1}).status().code(),
            StatusCode::kFailedPrecondition);
}

// LP bounds vs the NDI inclusion–exclusion bounds: given exact supports
// of all proper subsets, the LP interval is at least as tight (the NDI
// inequalities are consequences of the density polytope).
class LpVsNdiBounds : public ::testing::TestWithParam<int> {};

TEST_P(LpVsNdiBounds, LpAtLeastAsTight) {
  BasketGenConfig config;
  config.num_items = 5;
  config.num_baskets = 40;
  config.num_patterns = 2;
  config.pattern_size = 3;
  config.seed = GetParam();
  BasketList b = *GenerateBaskets(config);
  SetFunction<std::int64_t> support = *SupportFunction(b);

  const Mask target = FullMask(4);  // A four-item target set.
  std::vector<FrequencyConstraint> freq;
  ForEachSubset(target, [&](Mask w) {
    if (w == target) return;
    freq.push_back({ItemSet(w), support.at(w), support.at(w)});
  });
  Result<SupportInterval> lp =
      ImpliedSupportInterval(b.num_items(), freq, {}, ItemSet(target));
  ASSERT_TRUE(lp.ok());
  Result<SupportBounds> ndi =
      NdiBounds(target, b.size(), [&](Mask m) { return support.at(m); });
  ASSERT_TRUE(ndi.ok());

  // Soundness: the true support lies in both intervals.
  const Rational truth(support.at(target));
  EXPECT_LE(lp->lo, truth);
  ASSERT_TRUE(lp->hi.has_value());
  EXPECT_GE(*lp->hi, truth);
  // Tightness: LP within NDI.
  EXPECT_GE(lp->lo, Rational(ndi->lower));
  EXPECT_LE(*lp->hi, Rational(ndi->upper));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpVsNdiBounds, ::testing::Range(1, 9));

}  // namespace
}  // namespace diffc
