// HTTP head-parsing tests for the observability surface: the request-line
// contract (NotFound vs InvalidArgument vs Ok), query-param lookup, and
// trace-id parsing. These pin the error taxonomy the server routes on —
// NotFound means "drop silently", InvalidArgument means "answer 400".

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "net/http.h"

namespace diffc::net {
namespace {

// ---------------------------------------------------- ParseHttpRequestHead

TEST(HttpHeadTest, SimpleGet) {
  HttpRequestHead head;
  Status s = ParseHttpRequestHead("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", &head);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(head.method, "GET");
  EXPECT_EQ(head.path, "/metrics");
  EXPECT_EQ(head.query, "");
}

TEST(HttpHeadTest, GetWithQuery) {
  HttpRequestHead head;
  Status s = ParseHttpRequestHead("GET /tracez?trace=00112233445566778899aabbccddeeff&limit=5 HTTP/1.0\r\n",
                                  &head);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(head.path, "/tracez");
  EXPECT_EQ(head.query, "trace=00112233445566778899aabbccddeeff&limit=5");
}

TEST(HttpHeadTest, EmptyQueryAfterQuestionMark) {
  HttpRequestHead head;
  Status s = ParseHttpRequestHead("GET /slowz? HTTP/1.1\r\n", &head);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(head.path, "/slowz");
  EXPECT_EQ(head.query, "");
}

TEST(HttpHeadTest, NoCrlfIsNotFound) {
  // A head with no request-line terminator is not (yet) HTTP: the server
  // drops such connections without a response. Distinct from 400.
  HttpRequestHead head;
  EXPECT_EQ(ParseHttpRequestHead("", &head).code(), StatusCode::kNotFound);
  EXPECT_EQ(ParseHttpRequestHead("GET /metrics HTTP/1.1", &head).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseHttpRequestHead(std::string("\x00\x01\x02", 3), &head).code(),
            StatusCode::kNotFound);
}

TEST(HttpHeadTest, MalformedRequestLineIsInvalidArgument) {
  HttpRequestHead head;
  // No spaces at all.
  EXPECT_EQ(ParseHttpRequestHead("GET\r\n", &head).code(),
            StatusCode::kInvalidArgument);
  // One space: rfind == find.
  EXPECT_EQ(ParseHttpRequestHead("GET /metrics\r\n", &head).code(),
            StatusCode::kInvalidArgument);
  // Empty line.
  EXPECT_EQ(ParseHttpRequestHead("\r\n", &head).code(),
            StatusCode::kInvalidArgument);
}

TEST(HttpHeadTest, MethodPolicyIsTheCallers) {
  // POST parses fine — the parser reports shape, the server enforces
  // GET-only with a 405.
  HttpRequestHead head;
  Status s = ParseHttpRequestHead("POST /metrics HTTP/1.1\r\n", &head);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(head.method, "POST");
}

// --------------------------------------------------------- HttpQueryParam

TEST(HttpQueryParamTest, LookupHitAndMiss) {
  const std::string q = "a=1&trace=abc&empty=&b=2";
  EXPECT_EQ(HttpQueryParam(q, "a"), "1");
  EXPECT_EQ(HttpQueryParam(q, "trace"), "abc");
  EXPECT_EQ(HttpQueryParam(q, "empty"), "");
  EXPECT_EQ(HttpQueryParam(q, "b"), "2");
  EXPECT_EQ(HttpQueryParam(q, "missing"), "");
  EXPECT_EQ(HttpQueryParam("", "a"), "");
}

TEST(HttpQueryParamTest, KeyMustMatchExactly) {
  // "ab=1" must not satisfy a lookup for "a"; a bare key with no '='
  // yields no value.
  EXPECT_EQ(HttpQueryParam("ab=1", "a"), "");
  EXPECT_EQ(HttpQueryParam("flag&a=1", "a"), "1");
  EXPECT_EQ(HttpQueryParam("flag", "flag"), "");
}

// ----------------------------------------------------------- ParseTraceId

TEST(ParseTraceIdTest, ValidBothCases) {
  std::uint64_t hi = 0, lo = 0;
  ASSERT_TRUE(ParseTraceId("00112233445566778899aabbccddeeff", &hi, &lo));
  EXPECT_EQ(hi, 0x0011223344556677ull);
  EXPECT_EQ(lo, 0x8899aabbccddeeffull);
  ASSERT_TRUE(ParseTraceId("8899AABBCCDDEEFF0011223344556677", &hi, &lo));
  EXPECT_EQ(hi, 0x8899aabbccddeeffull);
  EXPECT_EQ(lo, 0x0011223344556677ull);
}

TEST(ParseTraceIdTest, RejectsWrongLengthAndNonHex) {
  std::uint64_t hi = 0, lo = 0;
  EXPECT_FALSE(ParseTraceId("", &hi, &lo));
  EXPECT_FALSE(ParseTraceId("0011223344556677", &hi, &lo));            // 16
  EXPECT_FALSE(ParseTraceId("00112233445566778899aabbccddeef", &hi, &lo));   // 31
  EXPECT_FALSE(ParseTraceId("00112233445566778899aabbccddeeff0", &hi, &lo)); // 33
  EXPECT_FALSE(ParseTraceId("00112233445566778899aabbccddeexx", &hi, &lo));  // non-hex
  EXPECT_FALSE(ParseTraceId("g0112233445566778899aabbccddeeff", &hi, &lo));  // non-hex hi
}

}  // namespace
}  // namespace diffc::net
