// Batched implication engine: dispatch correctness against the sequential
// checkers, thread-count invariance (the stress test runs the same mixed
// batch at 1, 4 and 8 workers), shared-cache behavior, and the
// no-abort/Status-on-failure contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/implication.h"
#include "engine/caches.h"
#include "engine/implication_engine.h"
#include "engine/worker_pool.h"
#include "obs/exposition.h"
#include "prop/tautology.h"
#include "test_helpers.h"
#include "util/deadline.h"
#include "util/random.h"

namespace diffc {
namespace {

// A counterexample must certify non-implication on its own: it lies in the
// goal's lattice decomposition and escapes every premise's.
void ExpectValidCounterexample(int n, const ConstraintSet& premises,
                               const DifferentialConstraint& goal, const ItemSet& u) {
  EXPECT_TRUE(goal.lhs().IsSubsetOf(u));
  EXPECT_TRUE(u.IsSubsetOf(ItemSet(FullMask(n))));
  EXPECT_FALSE(goal.rhs().SomeMemberSubsetOf(u));
  EXPECT_FALSE(InConstraintLattice(premises, u));
}

// The mixed batch of the stress test: FD-subclass queries, general (SAT)
// queries, trivially-implied goals, repeated right-hand families (witness
// cache traffic), and non-implied goals with counterexamples.
struct MixedBatch {
  int n = 0;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
};

MixedBatch MakeMixedBatch(int n, int num_goals, std::uint64_t seed) {
  MixedBatch b;
  b.n = n;
  Rng rng(seed);
  b.premises = testing::RandomConstraintSet(rng, n, 6);
  // Some singleton-RHS premises so the FD subclass is exercised too.
  b.premises.push_back(DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}})));
  b.premises.push_back(DifferentialConstraint(ItemSet{1}, SetFamily({ItemSet{2}})));
  for (int i = 0; i < num_goals; ++i) {
    switch (i % 4) {
      case 0:  // Augmented premise: implied, repeated right-hand family.
      {
        const DifferentialConstraint& p = b.premises[i % b.premises.size()];
        b.goals.push_back(DifferentialConstraint(
            p.lhs().Union(ItemSet::Singleton(i % n)), p.rhs()));
        break;
      }
      case 1:  // FD-shaped goal (singleton RHS): FD path when premises allow.
        b.goals.push_back(DifferentialConstraint(
            ItemSet{0}, SetFamily({ItemSet::Singleton((i + 2) % n)})));
        break;
      case 2:  // Trivial goal: member inside the left-hand side.
        b.goals.push_back(DifferentialConstraint(ItemSet{0, 1}, SetFamily({ItemSet{1}})));
        break;
      default:  // General random goal, usually not implied.
        b.goals.push_back(testing::RandomConstraint(rng, n));
        break;
    }
  }
  return b;
}

TEST(ImplicationEngineTest, MatchesSequentialCheckersAcrossThreadCounts) {
  MixedBatch b = MakeMixedBatch(12, 64, 7);

  // Ground truth from the sequential front door.
  std::vector<bool> expected;
  for (const DifferentialConstraint& g : b.goals) {
    Result<ImplicationOutcome> r = CheckImplication(b.n, b.premises, g);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(r->implied);
  }

  for (int threads : {1, 4, 8}) {
    EngineOptions opts;
    opts.num_threads = threads;
    ImplicationEngine engine(opts);
    Result<BatchOutcome> out = engine.CheckBatch(b.n, b.premises, b.goals);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_EQ(out->results.size(), b.goals.size());
    for (std::size_t i = 0; i < b.goals.size(); ++i) {
      const EngineQueryResult& r = out->results[i];
      ASSERT_TRUE(r.status.ok()) << "threads=" << threads << " query=" << i << ": "
                                 << r.status.ToString();
      EXPECT_EQ(r.outcome.implied, expected[i])
          << "threads=" << threads << " query=" << i << " via "
          << DecisionProcedureName(r.stats.procedure);
      if (!r.outcome.implied) {
        ASSERT_TRUE(r.outcome.counterexample.has_value());
        ExpectValidCounterexample(b.n, b.premises, b.goals[i], *r.outcome.counterexample);
      }
    }
    EXPECT_EQ(out->stats.queries, b.goals.size());
    EXPECT_EQ(out->stats.implied + out->stats.not_implied + out->stats.failed,
              b.goals.size());
  }
}

TEST(ImplicationEngineTest, StressSameBatchRepeatedlyOnAllThreadCounts) {
  // Fire the same mixed batch through freshly-built engines at 1, 4 and 8
  // threads, twice each (the second pass runs hot caches), and demand
  // bit-identical verdict vectors every time.
  MixedBatch b = MakeMixedBatch(14, 96, 23);
  std::vector<bool> first;
  bool have_first = false;
  for (int pass = 0; pass < 2; ++pass) {
    for (int threads : {1, 4, 8}) {
      EngineOptions opts;
      opts.num_threads = threads;
      ImplicationEngine engine(opts);
      Result<BatchOutcome> out = engine.CheckBatch(b.n, b.premises, b.goals);
      ASSERT_TRUE(out.ok());
      std::vector<bool> verdicts;
      for (const EngineQueryResult& r : out->results) {
        ASSERT_TRUE(r.status.ok()) << r.status.ToString();
        verdicts.push_back(r.outcome.implied);
      }
      if (!have_first) {
        first = verdicts;
        have_first = true;
      } else {
        EXPECT_EQ(verdicts, first) << "pass=" << pass << " threads=" << threads;
      }
    }
  }
}

TEST(ImplicationEngineTest, RepeatedRhsBatchHitsWitnessCache) {
  GlobalWitnessSetCache().Clear();
  const int n = 10;
  ConstraintSet premises{DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1, 2}, ItemSet{3}}))};
  // 32 goals sharing one right-hand family → 1 miss, then hits.
  std::vector<DifferentialConstraint> goals;
  SetFamily rhs({ItemSet{1, 2}, ItemSet{3}});
  for (int i = 0; i < 32; ++i) {
    goals.push_back(DifferentialConstraint(ItemSet{0}.Union(ItemSet::Singleton(4 + i % 5)), rhs));
  }
  ImplicationEngine engine;
  Result<BatchOutcome> out = engine.CheckBatch(n, premises, goals);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->stats.witness_cache_hits, 0u);
  EXPECT_GE(out->stats.witness_cache_hits + out->stats.witness_cache_misses, 32u);
  // Every goal augments the single premise: implied, via the cover.
  for (const EngineQueryResult& r : out->results) {
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.outcome.implied);
    EXPECT_EQ(r.stats.procedure, DecisionProcedure::kIntervalCover);
  }
}

TEST(ImplicationEngineTest, PremiseTranslationSharedAcrossBatch) {
  const int n = 16;
  Rng rng(5);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 5);
  std::vector<DifferentialConstraint> goals;
  for (int i = 0; i < 24; ++i) goals.push_back(testing::RandomConstraint(rng, n));

  // Fast path off: every nontrivial goal goes through SAT and the shared
  // premise translation.
  EngineOptions opts;
  opts.use_interval_cover_fast_path = false;
  ImplicationEngine engine(opts);
  // First batch warms the cache (its miss count can exceed 1 when several
  // workers miss concurrently; both build the same translation).
  ASSERT_TRUE(engine.CheckBatch(n, premises, goals).ok());
  // The second batch must be all hits.
  Result<BatchOutcome> out = engine.CheckBatch(n, premises, goals);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->stats.by_sat, 0u);
  EXPECT_EQ(out->stats.premise_cache_misses, 0u);
  EXPECT_EQ(out->stats.premise_cache_hits, out->stats.by_sat);
}

TEST(ImplicationEngineTest, FdSubclassBatchUsesFdProcedure) {
  // All premises and goals have singleton right-hand sides: the polynomial
  // FD-subclass procedure must decide every query.
  const int n = 8;
  ConstraintSet premises{
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}})),
      DifferentialConstraint(ItemSet{1}, SetFamily({ItemSet{2}})),
      DifferentialConstraint(ItemSet{3}, SetFamily({ItemSet{4}})),
  };
  std::vector<DifferentialConstraint> goals{
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{2}})),  // Implied.
      DifferentialConstraint(ItemSet{3}, SetFamily({ItemSet{4}})),  // Implied.
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{4}})),  // Not implied.
  };
  ImplicationEngine engine;
  Result<BatchOutcome> out = engine.CheckBatch(n, premises, goals);
  ASSERT_TRUE(out.ok());
  for (std::size_t i = 0; i < goals.size(); ++i) {
    const EngineQueryResult& r = out->results[i];
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.stats.procedure, DecisionProcedure::kFdSubclass);
    Result<ImplicationOutcome> seq = CheckImplication(n, premises, goals[i]);
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(r.outcome.implied, seq->implied);
    if (!r.outcome.implied) {
      ASSERT_TRUE(r.outcome.counterexample.has_value());
      ExpectValidCounterexample(n, premises, goals[i], *r.outcome.counterexample);
    }
  }
  EXPECT_EQ(out->stats.by_fd, goals.size());
}

TEST(ImplicationEngineTest, FastPathDisabledStillCorrect) {
  MixedBatch b = MakeMixedBatch(12, 32, 99);
  EngineOptions opts;
  opts.use_interval_cover_fast_path = false;
  ImplicationEngine engine(opts);
  Result<BatchOutcome> out = engine.CheckBatch(b.n, b.premises, b.goals);
  ASSERT_TRUE(out.ok());
  for (std::size_t i = 0; i < b.goals.size(); ++i) {
    Result<ImplicationOutcome> seq = CheckImplication(b.n, b.premises, b.goals[i]);
    ASSERT_TRUE(seq.ok());
    ASSERT_TRUE(out->results[i].status.ok());
    EXPECT_EQ(out->results[i].outcome.implied, seq->implied);
    EXPECT_EQ(out->stats.witness_cache_hits + out->stats.witness_cache_misses, 0u);
  }
}

TEST(ImplicationEngineTest, InvalidUniverseSizeIsStatusNotAbort) {
  ImplicationEngine engine;
  EXPECT_EQ(engine.CheckBatch(-1, {}, {}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.CheckBatch(65, {}, {}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.CheckOne(65, {}, DifferentialConstraint(ItemSet(), SetFamily()))
                .status.code(),
            StatusCode::kInvalidArgument);
}

TEST(ImplicationEngineTest, EmptyBatch) {
  ImplicationEngine engine;
  Result<BatchOutcome> out = engine.CheckBatch(8, {}, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->results.empty());
  EXPECT_EQ(out->stats.queries, 0u);
}

TEST(ImplicationEngineTest, CheckOneMatchesFrontDoor) {
  const int n = 10;
  Rng rng(3);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 4);
  ImplicationEngine engine;
  for (int i = 0; i < 20; ++i) {
    DifferentialConstraint goal = testing::RandomConstraint(rng, n);
    Result<ImplicationOutcome> seq = CheckImplication(n, premises, goal);
    ASSERT_TRUE(seq.ok());
    EngineQueryResult r = engine.CheckOne(n, premises, goal);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.outcome.implied, seq->implied);
  }
}

TEST(ImplicationEngineTest, PreparedBatchMatchesUnprepared) {
  MixedBatch b = MakeMixedBatch(12, 32, 41);
  ImplicationEngine engine;
  Result<std::shared_ptr<const PreparedPremises>> prepared = engine.Prepare(b.n, b.premises);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  Result<BatchOutcome> via_prepared = engine.CheckBatch(*prepared, b.goals);
  Result<BatchOutcome> via_raw = engine.CheckBatch(b.n, b.premises, b.goals);
  ASSERT_TRUE(via_prepared.ok());
  ASSERT_TRUE(via_raw.ok());
  ASSERT_EQ(via_prepared->results.size(), b.goals.size());
  for (std::size_t i = 0; i < b.goals.size(); ++i) {
    const EngineQueryResult& p = via_prepared->results[i];
    const EngineQueryResult& r = via_raw->results[i];
    ASSERT_TRUE(p.status.ok()) << p.status.ToString();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(p.outcome.verdict, r.outcome.verdict) << "query=" << i;
    EXPECT_EQ(p.stats.procedure, r.stats.procedure) << "query=" << i;
    // An explicitly prepared artifact counts as amortized compilation.
    if (p.stats.premise_cache_used) {
      EXPECT_TRUE(p.stats.premise_cache_hit);
    }
  }
  // CheckOne against the artifact agrees too.
  EngineQueryResult one = engine.CheckOne(*prepared, b.goals[0]);
  ASSERT_TRUE(one.status.ok());
  EXPECT_EQ(one.outcome.verdict, via_raw->results[0].outcome.verdict);
}

TEST(ImplicationEngineTest, NullPreparedIsInvalidArgument) {
  ImplicationEngine engine;
  std::shared_ptr<const PreparedPremises> null_prepared;
  EXPECT_EQ(engine.CheckBatch(null_prepared, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.CheckOne(null_prepared, DifferentialConstraint(ItemSet(), SetFamily()))
                .status.code(),
            StatusCode::kInvalidArgument);
}

TEST(ImplicationEngineTest, PlanIsRecordedInQueryStats) {
  const int n = 10;
  ConstraintSet premises{
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}, ItemSet{2, 3}}))};
  std::vector<DifferentialConstraint> goals{
      // Trivial goal: the zero-cost procedure must lead its plan.
      DifferentialConstraint(ItemSet{0, 1}, SetFamily({ItemSet{1}})),
      // General goal: interval cover is planned before SAT, exhaustive last.
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{4}, ItemSet{5, 6}}))};
  ImplicationEngine engine;
  Result<BatchOutcome> out = engine.CheckBatch(n, premises, goals);
  ASSERT_TRUE(out.ok());
  ASSERT_FALSE(out->results[0].stats.plan.empty());
  EXPECT_EQ(out->results[0].stats.plan.front(), DecisionProcedure::kTrivial);
  EXPECT_EQ(out->results[0].stats.procedure, DecisionProcedure::kTrivial);
  const std::vector<DecisionProcedure>& plan = out->results[1].stats.plan;
  auto pos = [&](DecisionProcedure p) {
    return std::find(plan.begin(), plan.end(), p) - plan.begin();
  };
  ASSERT_NE(pos(DecisionProcedure::kIntervalCover),
            static_cast<std::ptrdiff_t>(plan.size()));
  ASSERT_NE(pos(DecisionProcedure::kSat), static_cast<std::ptrdiff_t>(plan.size()));
  ASSERT_NE(pos(DecisionProcedure::kExhaustive), static_cast<std::ptrdiff_t>(plan.size()));
  EXPECT_LT(pos(DecisionProcedure::kIntervalCover), pos(DecisionProcedure::kSat));
  EXPECT_LT(pos(DecisionProcedure::kSat), pos(DecisionProcedure::kExhaustive));

  // The legacy ladder path records no plan.
  EngineOptions ladder_opts;
  ladder_opts.use_planner = false;
  ImplicationEngine ladder(ladder_opts);
  Result<BatchOutcome> lout = ladder.CheckBatch(n, premises, goals);
  ASSERT_TRUE(lout.ok());
  EXPECT_EQ(lout->results[0].outcome.verdict, out->results[0].outcome.verdict);
  EXPECT_EQ(lout->results[1].outcome.verdict, out->results[1].outcome.verdict);
  EXPECT_TRUE(lout->results[1].stats.plan.empty());
}

TEST(ImplicationEngineTest, PlannerOffStillMatchesSequentialCheckers) {
  MixedBatch b = MakeMixedBatch(12, 32, 58);
  EngineOptions opts;
  opts.use_planner = false;
  ImplicationEngine engine(opts);
  Result<BatchOutcome> out = engine.CheckBatch(b.n, b.premises, b.goals);
  ASSERT_TRUE(out.ok());
  for (std::size_t i = 0; i < b.goals.size(); ++i) {
    Result<ImplicationOutcome> seq = CheckImplication(b.n, b.premises, b.goals[i]);
    ASSERT_TRUE(seq.ok());
    ASSERT_TRUE(out->results[i].status.ok()) << out->results[i].status.ToString();
    EXPECT_EQ(out->results[i].outcome.implied, seq->implied);
  }
}

TEST(ImplicationEngineTest, HugeWitnessFamilyFallsBackToSat) {
  // A right-hand family with an exponential transversal antichain: the
  // witness budget trips, the negative entry is cached, and the query is
  // still answered (by SAT), not failed.
  const int n = 24;
  std::vector<ItemSet> members;
  for (int i = 0; i < 12; ++i) members.push_back(ItemSet{2 * i, 2 * i + 1});
  SetFamily rhs(std::move(members));
  ConstraintSet premises{
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}, ItemSet{2, 3}}))};
  DifferentialConstraint goal(ItemSet(), rhs);

  EngineOptions opts;
  opts.witness_max_results = 16;  // Force the budget to trip.
  ImplicationEngine engine(opts);
  EngineQueryResult r = engine.CheckOne(n, premises, goal);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.stats.procedure, DecisionProcedure::kSat);
  Result<ImplicationOutcome> seq = CheckImplication(n, premises, goal);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(r.outcome.implied, seq->implied);
}

TEST(ImplicationEngineTest, BatchStatsToStringMentionsCaches) {
  MixedBatch b = MakeMixedBatch(10, 8, 1);
  ImplicationEngine engine;
  Result<BatchOutcome> out = engine.CheckBatch(b.n, b.premises, b.goals);
  ASSERT_TRUE(out.ok());
  std::string s = out->stats.ToString();
  EXPECT_NE(s.find("witness_cache"), std::string::npos);
  EXPECT_NE(s.find("premise_cache"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shared caches, tested on local instances (the global ones are shared
// across tests and carry counters from earlier batches).

TEST(CacheTest, WitnessCacheEvictsColdestAtCapacity) {
  WitnessSetCache cache(4);
  for (int i = 0; i < 10; ++i) {
    SetFamily family({ItemSet::Singleton(i), ItemSet{10, 11}});
    bool hit = true;
    std::shared_ptr<const WitnessSetCache::Entry> entry = cache.Get(family, 64, &hit);
    ASSERT_TRUE(entry->status.ok());
    EXPECT_FALSE(hit);
  }
  EXPECT_EQ(cache.size(), 4u);
  CacheCounters c = cache.counters();
  EXPECT_EQ(c.misses, 10u);
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.evictions, 6u);
  EXPECT_DOUBLE_EQ(c.HitRatio(), 0.0);
  // Insert-only traffic stays probationary, so eviction is oldest-first:
  // the newest entry survives, the oldest was evicted.
  bool hit = false;
  cache.Get(SetFamily({ItemSet::Singleton(9), ItemSet{10, 11}}), 64, &hit);
  EXPECT_TRUE(hit);
  cache.Get(SetFamily({ItemSet::Singleton(0), ItemSet{10, 11}}), 64, &hit);
  EXPECT_FALSE(hit);
}

TEST(CacheTest, WitnessCacheIsScanResistant) {
  // One hot family (touched twice, so promoted to the protected segment),
  // then a one-shot scan of 20 cold families through a capacity-5 cache.
  // The scan may only churn the probationary segment: the hot entry must
  // survive, where a plain FIFO or LRU would have evicted it.
  WitnessSetCache cache(5);
  SetFamily hot({ItemSet{0}, ItemSet{1, 2}});
  cache.Get(hot, 64);
  bool hit = false;
  cache.Get(hot, 64, &hit);
  ASSERT_TRUE(hit);
  for (int i = 0; i < 20; ++i) {
    cache.Get(SetFamily({ItemSet::Singleton(i), ItemSet{10, 11}}), 64, &hit);
    EXPECT_FALSE(hit);
  }
  cache.Get(hot, 64, &hit);
  EXPECT_TRUE(hit);
}

TEST(CacheTest, SegmentedLruPromotesAndDemotes) {
  // The eviction index itself: capacity 5 → protected capacity 4. Promote
  // four entries, then a fifth promotion must demote the coldest protected
  // entry back to probation rather than grow the protected segment.
  struct IntHash {
    std::size_t operator()(int k) const { return static_cast<std::size_t>(k); }
  };
  SegmentedLruMap<int, int, IntHash> lru(5);
  std::size_t evicted = 0;
  for (int k = 0; k < 5; ++k) lru.InsertIfAbsent(k, k * 10, &evicted);
  EXPECT_EQ(lru.size(), 5u);
  EXPECT_EQ(lru.protected_size(), 0u);
  for (int k = 0; k < 4; ++k) ASSERT_NE(lru.Find(k), nullptr);
  EXPECT_EQ(lru.protected_size(), 4u);
  ASSERT_NE(lru.Find(4), nullptr);  // Fifth promotion: 0 demotes.
  EXPECT_EQ(lru.protected_size(), 4u);
  EXPECT_EQ(lru.size(), 5u);
  // Key 0 is now the only probationary entry, so the next insert past
  // capacity evicts it first.
  lru.InsertIfAbsent(100, 1000, &evicted);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(lru.Find(0), nullptr);
  ASSERT_NE(lru.Find(1), nullptr);
  EXPECT_EQ(*lru.Find(1), 10);
  // A duplicate insert returns the resident value and evicts nothing.
  evicted = 7;
  const int* resident = lru.InsertIfAbsent(2, 999, &evicted);
  EXPECT_EQ(evicted, 0u);
  EXPECT_EQ(*resident, 20);
}

TEST(CacheTest, RepeatLookupsShareOneEntry) {
  WitnessSetCache cache(4);
  SetFamily family({ItemSet{0}, ItemSet{1, 2}});
  std::shared_ptr<const WitnessSetCache::Entry> a = cache.Get(family, 64);
  std::shared_ptr<const WitnessSetCache::Entry> b = cache.Get(family, 64);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
  CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.evictions, 0u);
}

TEST(CacheTest, NegativeEntriesAreCachedAndServed) {
  // 12 disjoint pairs: 2^12 minimal transversals, far over a budget of 16,
  // so the enumeration fails ResourceExhausted — and that failure is itself
  // cached, so hostile families are not re-searched per query.
  WitnessSetCache cache(16);
  std::vector<ItemSet> members;
  for (int i = 0; i < 12; ++i) members.push_back(ItemSet{2 * i, 2 * i + 1});
  SetFamily family(std::move(members));
  bool hit = true;
  std::shared_ptr<const WitnessSetCache::Entry> first = cache.Get(family, 16, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(first->status.code(), StatusCode::kResourceExhausted);
  std::shared_ptr<const WitnessSetCache::Entry> second = cache.Get(family, 16, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(second->status.code(), StatusCode::kResourceExhausted);
}

TEST(CacheTest, PreparedCacheEvictsAndDedupes) {
  PreparedPremisesCache cache(2);
  auto make = [](int i) {
    return ConstraintSet{DifferentialConstraint(ItemSet::Singleton(i),
                                                SetFamily({ItemSet::Singleton(i + 1)}))};
  };
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(cache.Get(8, make(i)).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.counters().evictions, 3u);
  bool hit = false;
  Result<std::shared_ptr<const PreparedPremises>> again = cache.Get(8, make(4), &hit);
  ASSERT_TRUE(again.ok());  // Newest still resident.
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.size(), 2u);
  // An invalid universe size fails the lookup and is never cached.
  EXPECT_EQ(cache.Get(65, make(0)).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// Reliability layer: deadlines, exhaustion policies, cancellation.
//
// The adversarial instance is the pigeonhole DNF tautology PHP(holes+1,
// holes) pushed through the Proposition 5.5 reduction: the interval-cover
// fast path is provably inconclusive on it (the empty right-hand family's
// only witness interval is not covered), so every query is pinned to DPLL,
// whose cost scales steeply (holes=6 ≈ 6.5k decisions, holes=7 ≈ 65k
// decisions ≈ hundreds of milliseconds) — and with 42+ free attributes the
// exhaustive fallback is out of range, so exhaustion is genuine.

prop::DnfFormula PigeonholeDnf(int holes) {
  prop::DnfFormula f;
  f.num_vars = (holes + 1) * holes;
  auto var = [&](int pigeon, int hole) { return pigeon * holes + hole; };
  // Pigeon i sits nowhere...
  for (int i = 0; i <= holes; ++i) {
    prop::DnfConjunct c;
    for (int k = 0; k < holes; ++k) c.neg |= Mask{1} << var(i, k);
    f.conjuncts.push_back(c);
  }
  // ...or pigeons i and j share hole k: a tautology by pigeonhole.
  for (int i = 0; i <= holes; ++i)
    for (int j = i + 1; j <= holes; ++j)
      for (int k = 0; k < holes; ++k) {
        prop::DnfConjunct c;
        c.pos = (Mask{1} << var(i, k)) | (Mask{1} << var(j, k));
        f.conjuncts.push_back(c);
      }
  return f;
}

struct PigeonholeProblem {
  int n = 0;
  ConstraintSet premises;
  DifferentialConstraint goal = TautologyGoal();
};

PigeonholeProblem MakePigeonhole(int holes) {
  PigeonholeProblem p;
  prop::DnfFormula f = PigeonholeDnf(holes);
  p.n = f.num_vars;
  p.premises = DnfTautologyReduction(f);
  return p;
}

TEST(EngineReliabilityTest, DegradePolicyYieldsUnknownWithEvidence) {
  PigeonholeProblem p = MakePigeonhole(7);
  EngineOptions opts;
  opts.per_query_deadline = std::chrono::milliseconds(10);
  opts.exhaustion_policy = ExhaustionPolicy::kDegrade;
  ImplicationEngine engine(opts);
  EngineQueryResult r = engine.CheckOne(p.n, p.premises, p.goal);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.outcome.verdict, ImplicationOutcome::kUnknown);
  EXPECT_FALSE(r.outcome.implied);
  EXPECT_FALSE(r.outcome.counterexample.has_value());
  // The partial evidence survives: which procedure ran out, with what, and
  // how much work it had done.
  EXPECT_EQ(r.stats.degraded_from, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.stats.stopped_in, DecisionProcedure::kSat);
  EXPECT_GT(r.stats.solver.decisions, 0u);
}

TEST(EngineReliabilityTest, FailPolicySurfacesDeadlineExceeded) {
  PigeonholeProblem p = MakePigeonhole(7);
  EngineOptions opts;
  opts.per_query_deadline = std::chrono::milliseconds(5);
  ImplicationEngine engine(opts);  // Default policy: kFail.
  EngineQueryResult r = engine.CheckOne(p.n, p.premises, p.goal);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.stats.stopped_in, DecisionProcedure::kSat);
  EXPECT_EQ(r.stats.attempts, 1);
}

TEST(EngineReliabilityTest, EscalatePolicyRetriesUntilTheBudgetFits) {
  // PHP(7,6) needs ~6.5k DPLL decisions: a budget of 2000 fails, its
  // doublings 4000 and 8000 fail and succeed respectively, so the query
  // lands on attempt 3 with two observable escalations.
  PigeonholeProblem p = MakePigeonhole(6);
  EngineOptions opts;
  opts.max_solver_decisions = 2000;
  opts.exhaustion_policy = ExhaustionPolicy::kEscalate;
  opts.max_retries = 2;
  opts.escalate_backoff = std::chrono::nanoseconds(0);
  ImplicationEngine engine(opts);
  Result<BatchOutcome> out = engine.CheckBatch(p.n, p.premises, {p.goal});
  ASSERT_TRUE(out.ok());
  const EngineQueryResult& r = out->results[0];
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.outcome.implied);
  EXPECT_EQ(r.stats.attempts, 3);
  EXPECT_EQ(out->stats.escalations, 2u);
  EXPECT_EQ(out->stats.implied, 1u);
}

TEST(EngineReliabilityTest, ExhaustedRetriesDegrade) {
  PigeonholeProblem p = MakePigeonhole(6);
  EngineOptions opts;
  opts.max_solver_decisions = 100;  // 100 then 200: both far short.
  opts.exhaustion_policy = ExhaustionPolicy::kEscalate;
  opts.max_retries = 1;
  opts.escalate_backoff = std::chrono::nanoseconds(0);
  ImplicationEngine engine(opts);
  EngineQueryResult r = engine.CheckOne(p.n, p.premises, p.goal);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.outcome.verdict, ImplicationOutcome::kUnknown);
  EXPECT_EQ(r.stats.attempts, 2);
  EXPECT_EQ(r.stats.degraded_from, StatusCode::kResourceExhausted);
}

TEST(EngineReliabilityTest, CancellationDrainsTheBatch) {
  PigeonholeProblem p = MakePigeonhole(7);
  std::vector<DifferentialConstraint> goals(6, p.goal);
  EngineOptions opts;
  opts.num_threads = 2;
  ImplicationEngine engine(opts);
  CancelToken cancel;
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.Cancel();
  });
  Result<BatchOutcome> out = engine.CheckBatch(p.n, p.premises, goals, cancel);
  canceller.join();
  ASSERT_TRUE(out.ok());
  std::size_t stopped_while_running = 0, drained_from_queue = 0;
  for (const EngineQueryResult& r : out->results) {
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << r.status.ToString();
    if (r.status.message().find("before query started") != std::string::npos) {
      ++drained_from_queue;
    } else {
      ++stopped_while_running;
    }
  }
  EXPECT_EQ(out->stats.cancelled, goals.size());
  EXPECT_EQ(out->stats.failed, goals.size());
  // Two workers were mid-solve when the token fired (each query alone runs
  // far past 30ms); the queued queries drained without starting.
  EXPECT_GE(stopped_while_running, 1u);
  EXPECT_GE(drained_from_queue, 1u);
}

TEST(EngineReliabilityTest, AdversarialDeadlineBatchFinishesPromptly) {
  // 1000 queries that each want ~26ms of DPLL, under a ~10ms per-query
  // deadline and a 1s batch deadline: the batch must come in well under
  // twice its deadline, every query OK (degraded), none failed.
  PigeonholeProblem p = MakePigeonhole(6);
  const std::size_t kQueries = 1000;
  std::vector<DifferentialConstraint> goals(kQueries, p.goal);
  EngineOptions opts;
  opts.num_threads = 4;
  opts.per_query_deadline = std::chrono::milliseconds(10);
  opts.batch_deadline = std::chrono::seconds(1);
  opts.exhaustion_policy = ExhaustionPolicy::kDegrade;
  opts.stop_check_stride = 256;
  ImplicationEngine engine(opts);
  Result<BatchOutcome> out = engine.CheckBatch(p.n, p.premises, goals);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(out->stats.batch_wall_ns, 2ull * 1'000'000'000ull);
  std::size_t unknown = 0;
  for (const EngineQueryResult& r : out->results) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    if (r.outcome.verdict == ImplicationOutcome::kUnknown) ++unknown;
  }
  EXPECT_EQ(out->stats.failed, 0u);
  EXPECT_EQ(out->stats.degraded, unknown);
  EXPECT_GT(out->stats.degraded, 0u);
  // Every degrade here is deadline-driven.
  EXPECT_EQ(out->stats.timed_out, out->stats.degraded);
  EXPECT_EQ(out->stats.implied + out->stats.not_implied + out->stats.degraded +
                out->stats.failed,
            kQueries);
  std::string s = out->stats.ToString();
  EXPECT_NE(s.find("timed_out"), std::string::npos);
  EXPECT_NE(s.find("degraded"), std::string::npos);
}

TEST(WorkerPoolTest, RunsAllSubmittedTasks) {
  WorkerPool pool(4);
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  const int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++done == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == kTasks; });
  EXPECT_EQ(done, kTasks);
}

TEST(WorkerPoolTest, TaskExceptionsAreContainedAndCounted) {
  WorkerPool pool(2);
  const int kThrowers = 10;
  const int kNormal = 10;
  for (int i = 0; i < kThrowers; ++i) {
    pool.Submit([] { throw std::runtime_error("task failure"); });
  }
  // Queued behind the throwers: they only complete if the workers survive.
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < kNormal; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++done == kNormal) cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == kNormal; });
  }
  // A thrower dequeued just before the last normal task may still be
  // mid-unwind; give the counter a moment to settle.
  for (int spin = 0; spin < 1000 && pool.uncaught_exceptions() < static_cast<std::uint64_t>(kThrowers);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.uncaught_exceptions(), static_cast<std::uint64_t>(kThrowers));
}

TEST(WorkerPoolTest, StatsSnapshotRacesSafelyWithSubmit) {
  // Regression test for the unsynchronized-stats-read bug class: one thread
  // hammers Submit while others snapshot stats() / queue_depth() /
  // in_flight() continuously. Run under TSan in CI; correctness here is the
  // invariants every snapshot must satisfy.
  WorkerPool pool(2);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> submitted{0};

  std::thread submitter([&] {
    for (int i = 0; i < 2000; ++i) {
      pool.Submit([] {});
      submitted.fetch_add(1, std::memory_order_relaxed);
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        WorkerPool::Stats s = pool.stats();
        EXPECT_LE(s.completed, s.submitted);
        EXPECT_LE(s.queue_depth, s.submitted);
        EXPECT_GE(s.in_flight, 0);
        EXPECT_LE(s.in_flight, pool.size());
        (void)pool.queue_depth();
        (void)pool.in_flight();
      }
    });
  }
  submitter.join();
  for (std::thread& r : readers) r.join();

  // Drain: wait until everything completes, then the totals must agree.
  for (int spin = 0; spin < 5000 && pool.stats().completed < submitted.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  WorkerPool::Stats s = pool.stats();
  EXPECT_EQ(s.submitted, submitted.load());
  EXPECT_EQ(s.completed, submitted.load());
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.exceptions, 0u);
}

TEST(EngineReliabilityTest, TracedStressBatchIsRaceFree) {
  // The TSan CI job runs this: a mixed batch on several threads with
  // tracing, metrics, and the event log all live, exercising every
  // instrumentation flush site concurrently.
  MixedBatch b = MakeMixedBatch(12, 48, 99);
  EngineOptions opts;
  opts.num_threads = 4;
  opts.trace = true;
  ImplicationEngine engine(opts);
  for (int round = 0; round < 2; ++round) {
    Result<BatchOutcome> out = engine.CheckBatch(b.n, b.premises, b.goals);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    for (const EngineQueryResult& r : out->results) {
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      ASSERT_NE(r.trace, nullptr);
      EXPECT_FALSE(r.trace->spans.empty());
      EXPECT_GE(r.trace->HottestLeaf(), 0);
    }
  }
  // Exposition is safe concurrently with nothing else running, but also
  // while the registry is warm: both renderings must be non-empty.
  EXPECT_FALSE(obs::SnapshotPrometheus().empty());
  EXPECT_FALSE(obs::SnapshotJson().empty());
}

}  // namespace
}  // namespace diffc
