// Batched implication engine: dispatch correctness against the sequential
// checkers, thread-count invariance (the stress test runs the same mixed
// batch at 1, 4 and 8 workers), shared-cache behavior, and the
// no-abort/Status-on-failure contract.

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "core/implication.h"
#include "engine/caches.h"
#include "engine/implication_engine.h"
#include "engine/worker_pool.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc {
namespace {

// A counterexample must certify non-implication on its own: it lies in the
// goal's lattice decomposition and escapes every premise's.
void ExpectValidCounterexample(int n, const ConstraintSet& premises,
                               const DifferentialConstraint& goal, const ItemSet& u) {
  EXPECT_TRUE(goal.lhs().IsSubsetOf(u));
  EXPECT_TRUE(u.IsSubsetOf(ItemSet(FullMask(n))));
  EXPECT_FALSE(goal.rhs().SomeMemberSubsetOf(u));
  EXPECT_FALSE(InConstraintLattice(premises, u));
}

// The mixed batch of the stress test: FD-subclass queries, general (SAT)
// queries, trivially-implied goals, repeated right-hand families (witness
// cache traffic), and non-implied goals with counterexamples.
struct MixedBatch {
  int n = 0;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
};

MixedBatch MakeMixedBatch(int n, int num_goals, std::uint64_t seed) {
  MixedBatch b;
  b.n = n;
  Rng rng(seed);
  b.premises = testing::RandomConstraintSet(rng, n, 6);
  // Some singleton-RHS premises so the FD subclass is exercised too.
  b.premises.push_back(DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}})));
  b.premises.push_back(DifferentialConstraint(ItemSet{1}, SetFamily({ItemSet{2}})));
  for (int i = 0; i < num_goals; ++i) {
    switch (i % 4) {
      case 0:  // Augmented premise: implied, repeated right-hand family.
      {
        const DifferentialConstraint& p = b.premises[i % b.premises.size()];
        b.goals.push_back(DifferentialConstraint(
            p.lhs().Union(ItemSet::Singleton(i % n)), p.rhs()));
        break;
      }
      case 1:  // FD-shaped goal (singleton RHS): FD path when premises allow.
        b.goals.push_back(DifferentialConstraint(
            ItemSet{0}, SetFamily({ItemSet::Singleton((i + 2) % n)})));
        break;
      case 2:  // Trivial goal: member inside the left-hand side.
        b.goals.push_back(DifferentialConstraint(ItemSet{0, 1}, SetFamily({ItemSet{1}})));
        break;
      default:  // General random goal, usually not implied.
        b.goals.push_back(testing::RandomConstraint(rng, n));
        break;
    }
  }
  return b;
}

TEST(ImplicationEngineTest, MatchesSequentialCheckersAcrossThreadCounts) {
  MixedBatch b = MakeMixedBatch(12, 64, 7);

  // Ground truth from the sequential front door.
  std::vector<bool> expected;
  for (const DifferentialConstraint& g : b.goals) {
    Result<ImplicationOutcome> r = CheckImplication(b.n, b.premises, g);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(r->implied);
  }

  for (int threads : {1, 4, 8}) {
    EngineOptions opts;
    opts.num_threads = threads;
    ImplicationEngine engine(opts);
    Result<BatchOutcome> out = engine.CheckBatch(b.n, b.premises, b.goals);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_EQ(out->results.size(), b.goals.size());
    for (std::size_t i = 0; i < b.goals.size(); ++i) {
      const EngineQueryResult& r = out->results[i];
      ASSERT_TRUE(r.status.ok()) << "threads=" << threads << " query=" << i << ": "
                                 << r.status.ToString();
      EXPECT_EQ(r.outcome.implied, expected[i])
          << "threads=" << threads << " query=" << i << " via "
          << DecisionProcedureName(r.stats.procedure);
      if (!r.outcome.implied) {
        ASSERT_TRUE(r.outcome.counterexample.has_value());
        ExpectValidCounterexample(b.n, b.premises, b.goals[i], *r.outcome.counterexample);
      }
    }
    EXPECT_EQ(out->stats.queries, b.goals.size());
    EXPECT_EQ(out->stats.implied + out->stats.not_implied + out->stats.failed,
              b.goals.size());
  }
}

TEST(ImplicationEngineTest, StressSameBatchRepeatedlyOnAllThreadCounts) {
  // Fire the same mixed batch through freshly-built engines at 1, 4 and 8
  // threads, twice each (the second pass runs hot caches), and demand
  // bit-identical verdict vectors every time.
  MixedBatch b = MakeMixedBatch(14, 96, 23);
  std::vector<bool> first;
  bool have_first = false;
  for (int pass = 0; pass < 2; ++pass) {
    for (int threads : {1, 4, 8}) {
      EngineOptions opts;
      opts.num_threads = threads;
      ImplicationEngine engine(opts);
      Result<BatchOutcome> out = engine.CheckBatch(b.n, b.premises, b.goals);
      ASSERT_TRUE(out.ok());
      std::vector<bool> verdicts;
      for (const EngineQueryResult& r : out->results) {
        ASSERT_TRUE(r.status.ok()) << r.status.ToString();
        verdicts.push_back(r.outcome.implied);
      }
      if (!have_first) {
        first = verdicts;
        have_first = true;
      } else {
        EXPECT_EQ(verdicts, first) << "pass=" << pass << " threads=" << threads;
      }
    }
  }
}

TEST(ImplicationEngineTest, RepeatedRhsBatchHitsWitnessCache) {
  GlobalWitnessSetCache().Clear();
  const int n = 10;
  ConstraintSet premises{DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1, 2}, ItemSet{3}}))};
  // 32 goals sharing one right-hand family → 1 miss, then hits.
  std::vector<DifferentialConstraint> goals;
  SetFamily rhs({ItemSet{1, 2}, ItemSet{3}});
  for (int i = 0; i < 32; ++i) {
    goals.push_back(DifferentialConstraint(ItemSet{0}.Union(ItemSet::Singleton(4 + i % 5)), rhs));
  }
  ImplicationEngine engine;
  Result<BatchOutcome> out = engine.CheckBatch(n, premises, goals);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->stats.witness_cache_hits, 0u);
  EXPECT_GE(out->stats.witness_cache_hits + out->stats.witness_cache_misses, 32u);
  // Every goal augments the single premise: implied, via the cover.
  for (const EngineQueryResult& r : out->results) {
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.outcome.implied);
    EXPECT_EQ(r.stats.procedure, DecisionProcedure::kIntervalCover);
  }
}

TEST(ImplicationEngineTest, PremiseTranslationSharedAcrossBatch) {
  const int n = 16;
  Rng rng(5);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 5);
  std::vector<DifferentialConstraint> goals;
  for (int i = 0; i < 24; ++i) goals.push_back(testing::RandomConstraint(rng, n));

  // Fast path off: every nontrivial goal goes through SAT and the shared
  // premise translation.
  EngineOptions opts;
  opts.use_interval_cover_fast_path = false;
  ImplicationEngine engine(opts);
  // First batch warms the cache (its miss count can exceed 1 when several
  // workers miss concurrently; both build the same translation).
  ASSERT_TRUE(engine.CheckBatch(n, premises, goals).ok());
  // The second batch must be all hits.
  Result<BatchOutcome> out = engine.CheckBatch(n, premises, goals);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->stats.by_sat, 0u);
  EXPECT_EQ(out->stats.premise_cache_misses, 0u);
  EXPECT_EQ(out->stats.premise_cache_hits, out->stats.by_sat);
}

TEST(ImplicationEngineTest, FdSubclassBatchUsesFdProcedure) {
  // All premises and goals have singleton right-hand sides: the polynomial
  // FD-subclass procedure must decide every query.
  const int n = 8;
  ConstraintSet premises{
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}})),
      DifferentialConstraint(ItemSet{1}, SetFamily({ItemSet{2}})),
      DifferentialConstraint(ItemSet{3}, SetFamily({ItemSet{4}})),
  };
  std::vector<DifferentialConstraint> goals{
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{2}})),  // Implied.
      DifferentialConstraint(ItemSet{3}, SetFamily({ItemSet{4}})),  // Implied.
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{4}})),  // Not implied.
  };
  ImplicationEngine engine;
  Result<BatchOutcome> out = engine.CheckBatch(n, premises, goals);
  ASSERT_TRUE(out.ok());
  for (std::size_t i = 0; i < goals.size(); ++i) {
    const EngineQueryResult& r = out->results[i];
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.stats.procedure, DecisionProcedure::kFdSubclass);
    Result<ImplicationOutcome> seq = CheckImplication(n, premises, goals[i]);
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(r.outcome.implied, seq->implied);
    if (!r.outcome.implied) {
      ASSERT_TRUE(r.outcome.counterexample.has_value());
      ExpectValidCounterexample(n, premises, goals[i], *r.outcome.counterexample);
    }
  }
  EXPECT_EQ(out->stats.by_fd, goals.size());
}

TEST(ImplicationEngineTest, FastPathDisabledStillCorrect) {
  MixedBatch b = MakeMixedBatch(12, 32, 99);
  EngineOptions opts;
  opts.use_interval_cover_fast_path = false;
  ImplicationEngine engine(opts);
  Result<BatchOutcome> out = engine.CheckBatch(b.n, b.premises, b.goals);
  ASSERT_TRUE(out.ok());
  for (std::size_t i = 0; i < b.goals.size(); ++i) {
    Result<ImplicationOutcome> seq = CheckImplication(b.n, b.premises, b.goals[i]);
    ASSERT_TRUE(seq.ok());
    ASSERT_TRUE(out->results[i].status.ok());
    EXPECT_EQ(out->results[i].outcome.implied, seq->implied);
    EXPECT_EQ(out->stats.witness_cache_hits + out->stats.witness_cache_misses, 0u);
  }
}

TEST(ImplicationEngineTest, InvalidUniverseSizeIsStatusNotAbort) {
  ImplicationEngine engine;
  EXPECT_EQ(engine.CheckBatch(-1, {}, {}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.CheckBatch(65, {}, {}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.CheckOne(65, {}, DifferentialConstraint(ItemSet(), SetFamily()))
                .status.code(),
            StatusCode::kInvalidArgument);
}

TEST(ImplicationEngineTest, EmptyBatch) {
  ImplicationEngine engine;
  Result<BatchOutcome> out = engine.CheckBatch(8, {}, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->results.empty());
  EXPECT_EQ(out->stats.queries, 0u);
}

TEST(ImplicationEngineTest, CheckOneMatchesFrontDoor) {
  const int n = 10;
  Rng rng(3);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 4);
  ImplicationEngine engine;
  for (int i = 0; i < 20; ++i) {
    DifferentialConstraint goal = testing::RandomConstraint(rng, n);
    Result<ImplicationOutcome> seq = CheckImplication(n, premises, goal);
    ASSERT_TRUE(seq.ok());
    EngineQueryResult r = engine.CheckOne(n, premises, goal);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.outcome.implied, seq->implied);
  }
}

TEST(ImplicationEngineTest, HugeWitnessFamilyFallsBackToSat) {
  // A right-hand family with an exponential transversal antichain: the
  // witness budget trips, the negative entry is cached, and the query is
  // still answered (by SAT), not failed.
  const int n = 24;
  std::vector<ItemSet> members;
  for (int i = 0; i < 12; ++i) members.push_back(ItemSet{2 * i, 2 * i + 1});
  SetFamily rhs(std::move(members));
  ConstraintSet premises{
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}, ItemSet{2, 3}}))};
  DifferentialConstraint goal(ItemSet(), rhs);

  EngineOptions opts;
  opts.witness_max_results = 16;  // Force the budget to trip.
  ImplicationEngine engine(opts);
  EngineQueryResult r = engine.CheckOne(n, premises, goal);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.stats.procedure, DecisionProcedure::kSat);
  Result<ImplicationOutcome> seq = CheckImplication(n, premises, goal);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(r.outcome.implied, seq->implied);
}

TEST(ImplicationEngineTest, BatchStatsToStringMentionsCaches) {
  MixedBatch b = MakeMixedBatch(10, 8, 1);
  ImplicationEngine engine;
  Result<BatchOutcome> out = engine.CheckBatch(b.n, b.premises, b.goals);
  ASSERT_TRUE(out.ok());
  std::string s = out->stats.ToString();
  EXPECT_NE(s.find("witness_cache"), std::string::npos);
  EXPECT_NE(s.find("premise_cache"), std::string::npos);
}

TEST(WorkerPoolTest, RunsAllSubmittedTasks) {
  WorkerPool pool(4);
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  const int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++done == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == kTasks; });
  EXPECT_EQ(done, kTasks);
}

}  // namespace
}  // namespace diffc
