// Observability layer: registry semantics (exact concurrent sums, histogram
// bucket boundaries, snapshot-vs-reset), Prometheus / JSON exposition
// (golden outputs plus a mini text-format parser), span-tree tracing, the
// event-log flight recorder, and end-to-end metric deltas through
// `ImplicationEngine::CheckBatch` under every exhaustion policy.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/implication.h"
#include "engine/implication_engine.h"
#include "obs/event_log.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_store.h"
#include "prop/tautology.h"

namespace diffc {
namespace {

using obs::EventLog;
using obs::Labels;
using obs::MetricsSnapshot;
using obs::Registry;
using obs::TraceRecord;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Registry semantics.

TEST(MetricsRegistryTest, CounterSumsConcurrentIncrementsExactly) {
  Registry reg;
  obs::Counter* c = reg.GetCounter("t_ops_total", "ops");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kIncrements; ++i) c->Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameHandle) {
  Registry reg;
  obs::Counter* a = reg.GetCounter("t_total", "h", {{"k", "v"}});
  obs::Counter* b = reg.GetCounter("t_total", "h", {{"k", "v"}});
  obs::Counter* other = reg.GetCounter("t_total", "h", {{"k", "w"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Inc(2);
  b->Inc(3);
  EXPECT_EQ(a->Value(), 5u);
  EXPECT_EQ(other->Value(), 0u);
}

TEST(MetricsRegistryTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  Registry reg;
  obs::Histogram* h = reg.GetHistogram("t_seconds", "h", {0.1, 1.0, 10.0});
  h->Observe(0.1);   // le="0.1": boundary values land in their bucket.
  h->Observe(0.05);  // le="0.1"
  h->Observe(0.5);   // le="1"
  h->Observe(1.0);   // le="1"
  h->Observe(10.0);  // le="10"
  h->Observe(99.0);  // +Inf
  std::vector<std::uint64_t> buckets = h->BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h->Count(), 6u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.1 + 0.05 + 0.5 + 1.0 + 10.0 + 99.0);
}

TEST(MetricsRegistryTest, ExponentialAndLinearBucketShapes) {
  std::vector<double> exp = obs::ExponentialBuckets(1e-3, 10.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1e-3);
  EXPECT_DOUBLE_EQ(exp[3], 1.0);
  std::vector<double> lin = obs::LinearBuckets(0.0, 0.5, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[2], 1.0);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  Registry reg;
  obs::Counter* c = reg.GetCounter("t_total", "h");
  obs::Gauge* g = reg.GetGauge("t_depth", "h");
  obs::Histogram* h = reg.GetHistogram("t_seconds", "h", {1.0});
  c->Inc(7);
  g->Set(-3);
  h->Observe(0.5);
  MetricsSnapshot before = reg.Snapshot();
  ASSERT_EQ(before.counters.size(), 1u);
  EXPECT_EQ(before.counters[0].value, 7u);
  ASSERT_EQ(before.gauges.size(), 1u);
  EXPECT_EQ(before.gauges[0].value, -3);
  ASSERT_EQ(before.histograms.size(), 1u);
  EXPECT_EQ(before.histograms[0].count, 1u);

  reg.ResetValues();
  // The snapshot is a copy: resetting the registry does not mutate it.
  EXPECT_EQ(before.counters[0].value, 7u);
  // Old handles keep working against the zeroed values.
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
  c->Inc();
  EXPECT_EQ(reg.Snapshot().counters[0].value, 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameThenLabels) {
  Registry reg;
  reg.GetCounter("t_b_total", "h");
  reg.GetCounter("t_a_total", "h", {{"k", "2"}});
  reg.GetCounter("t_a_total", "h", {{"k", "1"}});
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "t_a_total");
  EXPECT_EQ(snap.counters[0].labels[0].second, "1");
  EXPECT_EQ(snap.counters[1].labels[0].second, "2");
  EXPECT_EQ(snap.counters[2].name, "t_b_total");
}

// ---------------------------------------------------------------------------
// Exposition.

// A registry with one of everything, for the golden tests.
void PopulateGolden(Registry& reg) {
  reg.GetCounter("t_requests_total", "Requests served.", {{"code", "200"}})->Inc(3);
  reg.GetGauge("t_queue_depth", "Queued tasks.")->Set(5);
  obs::Histogram* h =
      reg.GetHistogram("t_latency_seconds", "Request latency.", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);
}

TEST(ExpositionTest, PrometheusGolden) {
  Registry reg;
  PopulateGolden(reg);
  const std::string expected =
      "# HELP t_requests_total Requests served.\n"
      "# TYPE t_requests_total counter\n"
      "t_requests_total{code=\"200\"} 3\n"
      "# HELP t_queue_depth Queued tasks.\n"
      "# TYPE t_queue_depth gauge\n"
      "t_queue_depth 5\n"
      "# HELP t_latency_seconds Request latency.\n"
      "# TYPE t_latency_seconds histogram\n"
      "t_latency_seconds_bucket{le=\"0.1\"} 1\n"
      "t_latency_seconds_bucket{le=\"1\"} 2\n"
      "t_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "t_latency_seconds_sum 5.55\n"
      "t_latency_seconds_count 3\n";
  EXPECT_EQ(obs::RenderPrometheus(reg.Snapshot()), expected);
}

TEST(ExpositionTest, JsonGolden) {
  Registry reg;
  PopulateGolden(reg);
  const std::string expected =
      "{\n"
      "  \"counters\": [\n"
      "    {\"name\": \"t_requests_total\", \"labels\": {\"code\": \"200\"}, "
      "\"value\": 3}\n"
      "  ],\n"
      "  \"gauges\": [\n"
      "    {\"name\": \"t_queue_depth\", \"labels\": {}, \"value\": 5}\n"
      "  ],\n"
      "  \"histograms\": [\n"
      "    {\"name\": \"t_latency_seconds\", \"labels\": {}, \"bounds\": [0.1, 1], "
      "\"counts\": [1, 1, 1], \"count\": 3, \"sum\": 5.55}\n"
      "  ]\n"
      "}";
  EXPECT_EQ(obs::RenderJson(reg.Snapshot()), expected);
}

TEST(ExpositionTest, LabelValuesAreEscaped) {
  Registry reg;
  reg.GetCounter("t_total", "h", {{"k", "a\"b\\c\nd"}})->Inc();
  std::string prom = obs::RenderPrometheus(reg.Snapshot());
  EXPECT_NE(prom.find("k=\"a\\\"b\\\\c\\nd\""), std::string::npos) << prom;
  std::string json = obs::RenderJson(reg.Snapshot());
  EXPECT_NE(json.find("\"k\": \"a\\\"b\\\\c\\nd\""), std::string::npos) << json;
}

TEST(ExpositionTest, FormatDoubleRoundTripsAndHandlesNonFinite) {
  EXPECT_EQ(obs::FormatDouble(0.1), "0.1");
  EXPECT_EQ(obs::FormatDouble(1.0), "1");
  EXPECT_EQ(obs::FormatDouble(1e-06), "1e-06");
  EXPECT_EQ(obs::FormatDouble(std::numeric_limits<double>::infinity()), "+Inf");
  EXPECT_EQ(obs::FormatDouble(-std::numeric_limits<double>::infinity()), "-Inf");
  EXPECT_EQ(obs::FormatDouble(std::nan("")), "NaN");
}

// A tiny parser of the Prometheus text format: every line must be a comment
// (`# HELP` / `# TYPE`) or a sample `name[{labels}] value`; histogram
// `_bucket` series must be cumulative and end at `_count`'s value. Applied
// to the full global-registry snapshot, so every exported family in the
// library is checked for well-formedness.
void CheckPrometheusParses(const std::string& text) {
  std::uint64_t last_bucket = 0;
  std::string bucket_family;
  std::size_t pos = 0;
  int samples = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "missing trailing newline";
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // Sample: metric name, optional {labels}, space, value.
    std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string series = line.substr(0, sp);
    std::string value = line.substr(sp + 1);
    EXPECT_FALSE(value.empty()) << line;
    std::string name = series.substr(0, series.find('{'));
    ASSERT_FALSE(name.empty()) << line;
    for (char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')
          << line;
    }
    if (series.find('{') != std::string::npos) {
      EXPECT_EQ(series.back(), '}') << line;
    }
    // Cumulative-bucket check per (family, labels) series run.
    if (name.size() > 7 && name.compare(name.size() - 7, 7, "_bucket") == 0) {
      if (series != bucket_family) {
        // A new histogram series starts; its first bucket resets the run.
        last_bucket = 0;
      }
      std::uint64_t v = std::stoull(value);
      EXPECT_GE(v, last_bucket) << line;
      last_bucket = v;
      std::size_t le = series.find("le=\"");
      ASSERT_NE(le, std::string::npos) << line;
      bucket_family = series;
    } else {
      bucket_family.clear();
      last_bucket = 0;
    }
    ++samples;
  }
  EXPECT_GT(samples, 0);
}

TEST(ExpositionTest, GlobalSnapshotPrometheusParses) {
  // Make sure the library families exist (engine construction registers
  // pool metrics; one query registers engine/solver/cache families).
  ImplicationEngine engine(EngineOptions{});
  ConstraintSet premises;
  premises.push_back(DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}})));
  (void)engine.CheckOne(4, premises, DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{2}})));
  CheckPrometheusParses(obs::SnapshotPrometheus());
}

// ---------------------------------------------------------------------------
// Tracing.

TEST(TraceTest, SpansNestWithParentAndDepth) {
  Tracer tracer(true);
  int outer = tracer.Begin("outer");
  int inner = tracer.Begin("inner");
  tracer.End(inner);
  int second = tracer.Begin("second");
  tracer.End(second);
  tracer.End(outer);
  TraceRecord rec = tracer.Finish();
  ASSERT_EQ(rec.spans.size(), 3u);
  EXPECT_EQ(rec.spans[0].name, "outer");
  EXPECT_EQ(rec.spans[0].parent, -1);
  EXPECT_EQ(rec.spans[0].depth, 0);
  EXPECT_EQ(rec.spans[1].name, "inner");
  EXPECT_EQ(rec.spans[1].parent, 0);
  EXPECT_EQ(rec.spans[1].depth, 1);
  EXPECT_EQ(rec.spans[2].name, "second");
  EXPECT_EQ(rec.spans[2].parent, 0);
  EXPECT_EQ(rec.spans[2].depth, 1);
  // Children are contained in the parent.
  EXPECT_GE(rec.spans[1].start_ns, rec.spans[0].start_ns);
  EXPECT_LE(rec.spans[1].start_ns + rec.spans[1].duration_ns,
            rec.spans[0].start_ns + rec.spans[0].duration_ns);
  EXPECT_EQ(rec.TotalNs(), rec.spans[0].duration_ns);
}

TEST(TraceTest, EndClosesStillOpenDescendants) {
  // An early return unwinds guards in LIFO order, but a hand-written End on
  // an outer span must not leave orphans open.
  Tracer tracer(true);
  int outer = tracer.Begin("outer");
  tracer.Begin("leaked-child");
  tracer.End(outer);
  TraceRecord rec = tracer.Finish();
  ASSERT_EQ(rec.spans.size(), 2u);
  EXPECT_GT(rec.spans[1].duration_ns, 0u);
  EXPECT_LE(rec.spans[1].start_ns + rec.spans[1].duration_ns,
            rec.spans[0].start_ns + rec.spans[0].duration_ns);
}

TEST(TraceTest, HottestLeafFindsTheExpensiveSpan) {
  Tracer tracer(true);
  {
    obs::SpanGuard a(&tracer, "cheap");
  }
  {
    obs::SpanGuard b(&tracer, "expensive");
    obs::SpanGuard c(&tracer, "expensive-child");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  TraceRecord rec = tracer.Finish();
  int hottest = rec.HottestLeaf();
  ASSERT_GE(hottest, 0);
  EXPECT_EQ(rec.spans[hottest].name, "expensive-child");
  EXPECT_NE(rec.ToString().find("expensive-child"), std::string::npos);
  EXPECT_NE(rec.ToJson().find("\"expensive-child\""), std::string::npos);
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer;  // Default: disabled.
  EXPECT_FALSE(tracer.enabled());
  {
    obs::SpanGuard a(&tracer, "ignored");
  }
  EXPECT_EQ(tracer.Begin("also-ignored"), -1);
  EXPECT_TRUE(tracer.Finish().spans.empty());
  // Null tracer is legal for SpanGuard too.
  obs::SpanGuard b(nullptr, "ignored");
}

TEST(TraceTest, RecordsCarryOneWallClockAnchor) {
  // Regression (PR 8): /tracez needs absolute times, so every enabled
  // tracer stamps exactly one system_clock anchor; the spans themselves
  // stay on steady_clock offsets. The anchor must fall inside the
  // [before, after] window bracketing the tracer's construction.
  const auto before = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  Tracer tracer(true);
  {
    obs::SpanGuard a(&tracer, "work");
  }
  const auto after = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  TraceRecord rec = tracer.Finish();
  EXPECT_GE(rec.wall_start_unix_ns, static_cast<std::uint64_t>(before));
  EXPECT_LE(rec.wall_start_unix_ns, static_cast<std::uint64_t>(after));
  // A disabled tracer has no anchor to offer.
  EXPECT_EQ(Tracer().Finish().wall_start_unix_ns, 0u);
  // Reuse after Finish re-anchors: the second record's anchor is no
  // earlier than the first's.
  tracer.Begin("again");
  EXPECT_GE(tracer.Finish().wall_start_unix_ns, rec.wall_start_unix_ns);
}

TEST(TraceTest, NoteRecordsInstantEventsWithDetail) {
  Tracer tracer(true);
  int root = tracer.Begin("call");
  tracer.Note("backoff", "25ms shed");
  tracer.Note("plain");
  tracer.End(root);
  TraceRecord rec = tracer.Finish();
  ASSERT_EQ(rec.spans.size(), 3u);
  EXPECT_EQ(rec.spans[1].name, "backoff");
  EXPECT_EQ(rec.spans[1].parent, 0);
  EXPECT_EQ(rec.spans[1].duration_ns, 0u);
  EXPECT_EQ(rec.spans[1].detail, "25ms shed");
  // Detail shows up in JSON only when non-empty.
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"detail\": \"25ms shed\""), std::string::npos);
  EXPECT_EQ(json.find("\"detail\": \"\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace store.

TEST(TraceStoreTest, StoredTraceJsonGolden) {
  obs::StoredTrace st;
  st.trace_id_hi = 0x0123456789ABCDEFull;
  st.trace_id_lo = 0xFEDCBA9876543210ull;
  st.span_id = 0x1111;
  st.parent_span_id = 0;
  st.kind = "server";
  st.name = "check-batch";
  st.status = "ok";
  st.sampled = true;
  st.record.wall_start_unix_ns = 1700000000000000000ull;
  st.record.spans.push_back(obs::TraceSpan{"server:check-batch", -1, 0, 0, 42, ""});
  st.duration_ns = 42;
  EXPECT_EQ(st.TraceIdHex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(st.ToJson(),
            "{\"trace_id\": \"0123456789abcdeffedcba9876543210\", "
            "\"span_id\": \"0000000000001111\", "
            "\"parent_span_id\": \"0000000000000000\", "
            "\"kind\": \"server\", \"name\": \"check-batch\", \"status\": \"ok\", "
            "\"sampled\": true, \"forced\": false, \"slow\": false, "
            "\"shed\": false, \"errored\": false, \"duration_ns\": 42, "
            "\"wall_start_unix_ns\": 1700000000000000000, "
            "\"spans\": [{\"name\": \"server:check-batch\", \"parent\": -1, "
            "\"depth\": 0, \"start_ns\": 0, \"duration_ns\": 42}]}");
}

TEST(TraceStoreTest, RingOverwritesOldestAndFindsById) {
  obs::TraceStore store(2);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    obs::StoredTrace st;
    st.trace_id_hi = i;
    st.trace_id_lo = i;
    store.Add(st);
  }
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total(), 3u);
  EXPECT_EQ(store.dropped(), 1u);
  std::vector<obs::StoredTrace> all = store.Snapshot();
  ASSERT_EQ(all.size(), 2u);
  // Oldest first; trace 1 was overwritten.
  EXPECT_EQ(all[0].trace_id_hi, 2u);
  EXPECT_EQ(all[1].trace_id_hi, 3u);
  EXPECT_TRUE(store.FindByTraceId(1, 1).empty());
  EXPECT_EQ(store.FindByTraceId(3, 3).size(), 1u);
}

TEST(TraceStoreTest, AppendChildRecordGraftsUnderAttachSpan) {
  // The server grafts engine records under its "execute" span: parents and
  // depths shift, and the child's steady offsets are re-based via the two
  // wall anchors.
  TraceRecord server;
  server.wall_start_unix_ns = 1000;
  server.spans.push_back(obs::TraceSpan{"server:check-batch", -1, 0, 0, 500, ""});
  server.spans.push_back(obs::TraceSpan{"execute", 0, 1, 100, 300, ""});
  TraceRecord engine;
  engine.wall_start_unix_ns = 1150;  // 150 ns after the server anchor.
  engine.spans.push_back(obs::TraceSpan{"sat", -1, 0, 0, 200, ""});
  engine.spans.push_back(obs::TraceSpan{"solve", 0, 1, 10, 100, ""});

  obs::AppendChildRecord(&server, 1, engine);
  ASSERT_EQ(server.spans.size(), 4u);
  EXPECT_EQ(server.spans[2].name, "sat");
  EXPECT_EQ(server.spans[2].parent, 1);  // Re-parented under "execute".
  EXPECT_EQ(server.spans[2].depth, 2);
  EXPECT_EQ(server.spans[2].start_ns, 150u);  // Wall-anchor delta.
  EXPECT_EQ(server.spans[3].name, "solve");
  EXPECT_EQ(server.spans[3].parent, 2);  // Internal edges preserved.
  EXPECT_EQ(server.spans[3].depth, 3);
  EXPECT_EQ(server.spans[3].start_ns, 160u);

  // A child without an anchor lands at the attach span's start.
  TraceRecord bare;
  bare.spans.push_back(obs::TraceSpan{"unanchored", -1, 0, 0, 5, ""});
  obs::AppendChildRecord(&server, 1, bare);
  EXPECT_EQ(server.spans[4].start_ns, 100u);
}

TEST(TraceStoreTest, SlowQueryLogAssignsSeqAndRendersOneLine) {
  obs::SlowQueryLog log(2);
  obs::SlowQuery q;
  q.wall_unix_ns = 123;
  q.kind = "check-batch";
  q.seconds = 1.5;
  q.session = 7;
  q.trace_id = "00000000000000000000000000000000";
  q.status = "ok";
  obs::SlowQuery stored = log.Add(q);
  EXPECT_EQ(stored.seq, 1u);
  const std::string line = stored.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"slow_query\": {\"seq\": 1"), std::string::npos);
  EXPECT_NE(line.find("\"kind\": \"check-batch\""), std::string::npos);
  log.Add(q);
  log.Add(q);
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.dropped(), 1u);
  ASSERT_EQ(log.Snapshot().size(), 2u);
  EXPECT_EQ(log.Snapshot()[0].seq, 2u);  // Oldest surviving entry.
}

TEST(TraceStoreTest, RandomTraceBitsAreNonzeroAndSamplingDrawInRange) {
  for (int i = 0; i < 64; ++i) {
    EXPECT_NE(obs::RandomTraceBits(), 0u);
    const double d = obs::SamplingDraw();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Event log.

TEST(EventLogTest, RingWrapsKeepingTheNewestEvents) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record("e", {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, static_cast<std::uint64_t>(6 + i));
    EXPECT_EQ(events[i].fields[0].second, std::to_string(6 + i));
    if (i > 0) {
      EXPECT_GE(events[i].ns, events[i - 1].ns);
    }
  }
}

TEST(EventLogTest, JsonlDumpIsOneObjectPerLine) {
  EventLog log(8);
  log.Record("deadline_exceeded", {{"stopped_in", "sat"}});
  log.Record("degrade", {{"from", "DEADLINE_EXCEEDED"}});
  std::string dump = log.DumpJsonl();
  std::size_t lines = 0;
  std::size_t pos = 0;
  while ((pos = dump.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(dump.find("\"type\": \"deadline_exceeded\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"stopped_in\": \"sat\""), std::string::npos) << dump;
}

TEST(EventLogTest, DisableIsAnOffSwitch) {
  EventLog log(4);
  log.SetEnabled(false);
  log.Record("ignored", {});
  EXPECT_EQ(log.total(), 0u);
  log.SetEnabled(true);
  log.Record("kept", {});
  EXPECT_EQ(log.total(), 1u);
}

TEST(EventLogTest, ConcurrentRecordersNeverLoseCounts) {
  EventLog log(64);
  constexpr int kThreads = 4;
  constexpr int kEvents = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kEvents; ++i) log.Record("e", {});
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.total(), static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(log.dropped(), log.total() - 64);
  EXPECT_EQ(log.Snapshot().size(), 64u);
}

// ---------------------------------------------------------------------------
// End-to-end: engine instrumentation.

// The PHP(holes+1, holes) tautology via the Proposition 5.5 reduction pins
// queries to the SAT procedure (see test_engine.cc for the reasoning).
prop::DnfFormula PigeonholeDnf(int holes) {
  prop::DnfFormula f;
  f.num_vars = (holes + 1) * holes;
  auto var = [&](int pigeon, int hole) { return pigeon * holes + hole; };
  for (int i = 0; i <= holes; ++i) {
    prop::DnfConjunct c;
    for (int k = 0; k < holes; ++k) c.neg |= Mask{1} << var(i, k);
    f.conjuncts.push_back(c);
  }
  for (int i = 0; i <= holes; ++i)
    for (int j = i + 1; j <= holes; ++j)
      for (int k = 0; k < holes; ++k) {
        prop::DnfConjunct c;
        c.pos = (Mask{1} << var(i, k)) | (Mask{1} << var(j, k));
        f.conjuncts.push_back(c);
      }
  return f;
}

// Handles into the global registry for delta assertions. Help strings must
// not conflict with the library's registrations — re-registration returns
// the existing handle regardless of help text.
obs::Counter* QueriesCounter(const char* procedure) {
  return Registry::Global().GetCounter("diffc_engine_queries_total", "",
                                       {{"procedure", procedure}});
}

obs::Counter* OutcomeCounter(const char* outcome) {
  return Registry::Global().GetCounter("diffc_engine_outcomes_total", "",
                                       {{"outcome", outcome}});
}

TEST(EngineObservabilityTest, CheckBatchFlushesQueryAndOutcomeCounters) {
  const std::uint64_t implied0 = OutcomeCounter("implied")->Value();
  const std::uint64_t trivial0 = QueriesCounter("trivial")->Value();
  const std::uint64_t batches0 =
      Registry::Global().GetCounter("diffc_engine_batches_total", "")->Value();

  ImplicationEngine engine(EngineOptions{});
  ConstraintSet premises;
  premises.push_back(DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}})));
  // Trivial goal: a member inside the left-hand side.
  std::vector<DifferentialConstraint> goals(
      3, DifferentialConstraint(ItemSet{0, 1}, SetFamily({ItemSet{1}})));
  Result<BatchOutcome> out = engine.CheckBatch(4, premises, goals);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stats.implied, 3u);

  EXPECT_EQ(OutcomeCounter("implied")->Value(), implied0 + 3);
  EXPECT_EQ(QueriesCounter("trivial")->Value(), trivial0 + 3);
  EXPECT_EQ(Registry::Global().GetCounter("diffc_engine_batches_total", "")->Value(),
            batches0 + 1);
}

TEST(EngineObservabilityTest, DegradedQueryPopulatesSlackTraceAndEvents) {
  obs::Histogram* slack = Registry::Global().GetHistogram(
      "diffc_deadline_slack_seconds", "", obs::ExponentialBuckets(1e-5, 4.0, 12));
  obs::Counter* degraded = Registry::Global().GetCounter(
      "diffc_engine_degraded_total", "", {{"from", "deadline"}});
  obs::Counter* unknown = OutcomeCounter("unknown");
  const std::uint64_t slack0 = slack->Count();
  const std::uint64_t degraded0 = degraded->Value();
  const std::uint64_t unknown0 = unknown->Value();
  const std::uint64_t events0 = obs::GlobalEventLog().total();

  prop::DnfFormula f = PigeonholeDnf(7);
  ConstraintSet premises = DnfTautologyReduction(f);
  EngineOptions opts;
  opts.per_query_deadline = std::chrono::milliseconds(10);
  opts.exhaustion_policy = ExhaustionPolicy::kDegrade;
  opts.trace = true;
  ImplicationEngine engine(opts);
  EngineQueryResult r = engine.CheckOne(f.num_vars, premises, TautologyGoal());
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.outcome.verdict, ImplicationOutcome::kUnknown);

  // The acceptance criterion: the trace names the phase that consumed the
  // budget. PHP(8,7) dies inside DPLL, so the hottest leaf is "sat".
  ASSERT_NE(r.trace, nullptr);
  ASSERT_FALSE(r.trace->spans.empty());
  int hottest = r.trace->HottestLeaf();
  ASSERT_GE(hottest, 0);
  EXPECT_EQ(r.trace->spans[hottest].name, "sat") << r.trace->ToString();

  // The slack histogram got a sample (a degraded query finished with ~zero
  // slack, which still counts), and the degrade surfaced in counters and
  // the flight recorder.
  EXPECT_EQ(slack->Count(), slack0 + 1);
  EXPECT_EQ(degraded->Value(), degraded0 + 1);
  EXPECT_EQ(unknown->Value(), unknown0 + 1);
  EXPECT_GT(obs::GlobalEventLog().total(), events0);
  bool saw_degrade = false;
  for (const obs::Event& e : obs::GlobalEventLog().Snapshot()) {
    if (e.seq >= events0 && e.type == "degrade") saw_degrade = true;
  }
  EXPECT_TRUE(saw_degrade);
}

TEST(EngineObservabilityTest, EscalationsAreCountedPerRetry) {
  obs::Counter* escalations =
      Registry::Global().GetCounter("diffc_engine_escalations_total", "");
  const std::uint64_t escalations0 = escalations->Value();

  prop::DnfFormula f = PigeonholeDnf(6);
  ConstraintSet premises = DnfTautologyReduction(f);
  EngineOptions opts;
  opts.max_solver_decisions = 2000;  // PHP(7,6) needs ~6.5k: two doublings.
  opts.exhaustion_policy = ExhaustionPolicy::kEscalate;
  opts.max_retries = 2;
  opts.escalate_backoff = std::chrono::nanoseconds(0);
  ImplicationEngine engine(opts);
  EngineQueryResult r = engine.CheckOne(f.num_vars, premises, TautologyGoal());
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.outcome.implied);
  EXPECT_EQ(r.stats.attempts, 3);
  EXPECT_EQ(escalations->Value(), escalations0 + 2);
}

TEST(EngineObservabilityTest, UntracedQueriesCarryNoTraceRecord) {
  ImplicationEngine engine(EngineOptions{});  // trace defaults off.
  ConstraintSet premises;
  premises.push_back(DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}})));
  EngineQueryResult r = engine.CheckOne(
      4, premises, DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{2}})));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.trace, nullptr);
}

TEST(EngineObservabilityTest, MetricsDisabledFreezesLibraryCounters) {
  obs::Counter* trivial = QueriesCounter("trivial");
  ConstraintSet premises;
  premises.push_back(DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}})));
  DifferentialConstraint goal(ItemSet{0, 1}, SetFamily({ItemSet{1}}));

  obs::SetMetricsEnabled(false);
  const std::uint64_t before = trivial->Value();
  {
    ImplicationEngine engine(EngineOptions{});
    EngineQueryResult r = engine.CheckOne(4, premises, goal);
    ASSERT_TRUE(r.status.ok());
  }
  EXPECT_EQ(trivial->Value(), before);
  obs::SetMetricsEnabled(true);
  {
    ImplicationEngine engine(EngineOptions{});
    EngineQueryResult r = engine.CheckOne(4, premises, goal);
    ASSERT_TRUE(r.status.ok());
  }
  EXPECT_EQ(trivial->Value(), before + 1);
}

}  // namespace
}  // namespace diffc
