#include <gtest/gtest.h>

#include <set>

#include "core/atoms.h"
#include "core/constraint.h"
#include "core/parser.h"
#include "lattice/decomposition.h"
#include "test_helpers.h"

namespace diffc {
namespace {

// --------------------------------------------------------------- constraint

TEST(ConstraintTest, Accessors) {
  DifferentialConstraint c(ItemSet{0}, SetFamily({ItemSet{1}, ItemSet{2, 3}}));
  EXPECT_EQ(c.lhs(), ItemSet{0});
  EXPECT_EQ(c.rhs().size(), 2);
}

TEST(ConstraintTest, TrivialityMatchesEmptyDecomposition) {
  // Definition 3.1 (corrected): trivial iff some member ⊆ lhs iff L = ∅.
  DifferentialConstraint trivial(ItemSet{0, 1}, SetFamily({ItemSet{1}}));
  EXPECT_TRUE(trivial.IsTrivial());
  EXPECT_TRUE(DecompositionIsEmpty(trivial.lhs(), trivial.rhs()));

  DifferentialConstraint nontrivial(ItemSet{0}, SetFamily({ItemSet{1}}));
  EXPECT_FALSE(nontrivial.IsTrivial());
  EXPECT_FALSE(DecompositionIsEmpty(nontrivial.lhs(), nontrivial.rhs()));
}

TEST(ConstraintTest, EmptyMemberMakesTrivial) {
  DifferentialConstraint c(ItemSet(), SetFamily({ItemSet()}));
  EXPECT_TRUE(c.IsTrivial());
}

TEST(ConstraintTest, EmptyFamilyIsNotTrivial) {
  DifferentialConstraint c(ItemSet{0}, SetFamily());
  EXPECT_FALSE(c.IsTrivial());
}

TEST(ConstraintTest, EqualityAndOrdering) {
  DifferentialConstraint a(ItemSet{0}, SetFamily({ItemSet{1}}));
  DifferentialConstraint b(ItemSet{0}, SetFamily({ItemSet{1}}));
  DifferentialConstraint c(ItemSet{0}, SetFamily({ItemSet{2}}));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);
}

TEST(ConstraintTest, ToString) {
  Universe u = Universe::Letters(4);
  DifferentialConstraint c(ItemSet{0}, SetFamily({ItemSet{1}, ItemSet{2, 3}}));
  EXPECT_EQ(c.ToString(u), "A -> {B, CD}");
  EXPECT_EQ(ConstraintSetToString({c, c}, u), "A -> {B, CD}; A -> {B, CD}");
}

TEST(ConstraintTest, AtomConstraintShape) {
  // atom(U) = U -> {{z}|z∈S∖U}; L(atom(U)) = {U} (Remark 4.5).
  const int n = 4;
  ItemSet u{0, 2};
  DifferentialConstraint atom = AtomConstraint(n, u);
  EXPECT_EQ(atom.lhs(), u);
  EXPECT_EQ(atom.rhs(), SetFamily({ItemSet{1}, ItemSet{3}}));
  EXPECT_TRUE(atom.IsAtomic(n));
  Result<std::vector<ItemSet>> L = EnumerateDecomposition(n, atom.lhs(), atom.rhs());
  ASSERT_TRUE(L.ok());
  EXPECT_EQ(*L, std::vector<ItemSet>{u});
}

TEST(ConstraintTest, AtomOfFullSetHasEmptyFamily) {
  const int n = 3;
  DifferentialConstraint atom = AtomConstraint(n, ItemSet(FullMask(n)));
  EXPECT_TRUE(atom.rhs().empty());
  EXPECT_TRUE(atom.IsAtomic(n));
}

TEST(ConstraintTest, IsAtomicRejectsOthers) {
  EXPECT_FALSE(DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}})).IsAtomic(3));
}

// ------------------------------------------------------------------- parser

TEST(ParserTest, BasicConstraint) {
  Universe u = Universe::Letters(4);
  Result<DifferentialConstraint> c = ParseConstraint(u, "A -> {BC, CD}");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->lhs(), ItemSet{0});
  EXPECT_EQ(c->rhs(), SetFamily({ItemSet{1, 2}, ItemSet{2, 3}}));
}

TEST(ParserTest, EmptyLhsAndEmptyFamily) {
  Universe u = Universe::Letters(3);
  EXPECT_EQ(ParseConstraint(u, "0 -> {B}")->lhs(), ItemSet());
  EXPECT_TRUE(ParseConstraint(u, "A -> {}")->rhs().empty());
  EXPECT_EQ(ParseConstraint(u, "0 -> {}")->lhs(), ItemSet());
}

TEST(ParserTest, EmptyMemberInFamily) {
  Universe u = Universe::Letters(3);
  Result<DifferentialConstraint> c = ParseConstraint(u, "A -> {0, B}");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->rhs().HasEmptyMember());
  EXPECT_EQ(c->rhs().size(), 2);
}

TEST(ParserTest, WhitespaceTolerant) {
  Universe u = Universe::Letters(4);
  Result<DifferentialConstraint> c = ParseConstraint(u, "  AB  ->  { C ,  D }  ");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->lhs(), (ItemSet{0, 1}));
  EXPECT_EQ(c->rhs(), SetFamily({ItemSet{2}, ItemSet{3}}));
}

TEST(ParserTest, Errors) {
  Universe u = Universe::Letters(3);
  EXPECT_FALSE(ParseConstraint(u, "A {B}").ok());       // No arrow.
  EXPECT_FALSE(ParseConstraint(u, "A -> B").ok());      // No braces.
  EXPECT_FALSE(ParseConstraint(u, "A -> {X}").ok());    // Unknown name.
  EXPECT_FALSE(ParseConstraint(u, "Q -> {B}").ok());    // Unknown lhs.
}

TEST(ParserTest, ConstraintSet) {
  Universe u = Universe::Letters(4);
  Result<ConstraintSet> cs = ParseConstraintSet(u, "A -> {B}; B -> {C} ; C -> {D}");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->size(), 3u);
  EXPECT_EQ((*cs)[2].lhs(), ItemSet{2});
}

TEST(ParserTest, EmptyConstraintSet) {
  Universe u = Universe::Letters(3);
  EXPECT_TRUE(ParseConstraintSet(u, "")->empty());
  EXPECT_TRUE(ParseConstraintSet(u, "  ;  ")->empty());
}

TEST(ParserTest, RoundTripRandomConstraints) {
  Universe u = Universe::Letters(6);
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    DifferentialConstraint c = testing::RandomConstraint(rng, 6);
    Result<DifferentialConstraint> parsed = ParseConstraint(u, c.ToString(u));
    ASSERT_TRUE(parsed.ok()) << c.ToString(u);
    EXPECT_EQ(*parsed, c);
  }
}

// ----------------------------------------------------------- decompositions

TEST(DecompTest, PaperExampleDecomp) {
  // decomp(A -> {B, CD}) = {A->{B,C}, A->{B,D}, A->{B,C,D}}.
  Universe u = Universe::Letters(4);
  Result<std::vector<DifferentialConstraint>> d =
      Decomp(*ParseConstraint(u, "A -> {B, CD}"));
  ASSERT_TRUE(d.ok());
  std::set<std::string> got;
  for (const DifferentialConstraint& c : *d) got.insert(c.ToString(u));
  EXPECT_EQ(got, (std::set<std::string>{"A -> {B, C}", "A -> {B, D}", "A -> {B, C, D}"}));
}

TEST(DecompTest, PaperExampleAtoms) {
  // atoms(A -> {B, CD}) = {A->{B,C,D}, AC->{B,D}, AD->{B,C}}.
  Universe u = Universe::Letters(4);
  Result<std::vector<DifferentialConstraint>> a =
      Atoms(4, *ParseConstraint(u, "A -> {B, CD}"));
  ASSERT_TRUE(a.ok());
  std::set<std::string> got;
  for (const DifferentialConstraint& c : *a) got.insert(c.ToString(u));
  EXPECT_EQ(got,
            (std::set<std::string>{"A -> {B, C, D}", "AC -> {B, D}", "AD -> {B, C}"}));
}

TEST(DecompTest, TrivialConstraintHasNoAtomsAndTrivialDecomp) {
  Universe u = Universe::Letters(3);
  DifferentialConstraint c = *ParseConstraint(u, "AB -> {A}");
  ASSERT_TRUE(c.IsTrivial());
  // L(AB, {A}) = ∅, so there are no atoms; witness sets depend only on the
  // right-hand family, so decomp members exist but are all trivial too.
  EXPECT_TRUE(Atoms(3, c)->empty());
  Result<std::vector<DifferentialConstraint>> decomp = Decomp(c);
  ASSERT_TRUE(decomp.ok());
  for (const DifferentialConstraint& d : *decomp) EXPECT_TRUE(d.IsTrivial());
}

TEST(DecompTest, EmptyMemberTrivialConstraintDecomposesToNothing) {
  // A family with an empty member has no witness sets at all.
  DifferentialConstraint c(ItemSet{0}, SetFamily({ItemSet()}));
  ASSERT_TRUE(c.IsTrivial());
  EXPECT_TRUE(Decomp(c)->empty());
  EXPECT_TRUE(Atoms(3, c)->empty());
}

TEST(DecompTest, AtomsAreAtomic) {
  Rng rng(33);
  const int n = 5;
  for (int i = 0; i < 20; ++i) {
    DifferentialConstraint c = testing::RandomConstraint(rng, n);
    Result<std::vector<DifferentialConstraint>> atoms = Atoms(n, c);
    ASSERT_TRUE(atoms.ok());
    for (const DifferentialConstraint& a : *atoms) EXPECT_TRUE(a.IsAtomic(n));
  }
}

// Remark 4.5: L(decomp members) covers exactly L(X, Y), and likewise for
// atoms — the semantic equivalence {X->Y}* = decomp* = atoms*.
class DecompEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DecompEquivalence, SameLatticeUnion) {
  Rng rng(GetParam() * 101);
  const int n = 5;
  for (int iter = 0; iter < 10; ++iter) {
    DifferentialConstraint c = testing::RandomConstraint(rng, n);
    Result<std::vector<DifferentialConstraint>> decomp = Decomp(c);
    Result<std::vector<DifferentialConstraint>> atoms = Atoms(n, c);
    ASSERT_TRUE(decomp.ok());
    ASSERT_TRUE(atoms.ok());
    for (Mask m = 0; m < (Mask{1} << n); ++m) {
      ItemSet u(m);
      bool in_orig = InDecomposition(n, c.lhs(), c.rhs(), u);
      bool in_decomp = false;
      for (const DifferentialConstraint& dc : *decomp) {
        if (InDecomposition(n, dc.lhs(), dc.rhs(), u)) in_decomp = true;
      }
      bool in_atoms = false;
      for (const DifferentialConstraint& ac : *atoms) {
        if (InDecomposition(n, ac.lhs(), ac.rhs(), u)) in_atoms = true;
      }
      EXPECT_EQ(in_orig, in_decomp) << "m=" << m;
      EXPECT_EQ(in_orig, in_atoms) << "m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompEquivalence, ::testing::Range(1, 9));

}  // namespace
}  // namespace diffc
