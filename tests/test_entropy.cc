#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/function_ops.h"
#include "relational/boolean_dependency.h"
#include "relational/entropy.h"
#include "relational/fd.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc {
namespace {

Relation SampleRelation() {
  // (A, B, C): A determines B; C free.
  return *Relation::Make(3, {
                                {1, 10, 0},
                                {1, 10, 1},
                                {2, 20, 0},
                                {3, 20, 1},
                            });
}

Relation RandomRelation(Rng& rng, int attrs, int tuples, int domain) {
  std::vector<std::vector<int>> rows;
  std::set<std::vector<int>> seen;
  while (static_cast<int>(rows.size()) < tuples) {
    std::vector<int> row(attrs);
    for (int a = 0; a < attrs; ++a) row[a] = static_cast<int>(rng.UniformInt(0, domain - 1));
    if (seen.insert(row).second) rows.push_back(row);
  }
  return *Relation::Make(attrs, rows);
}

TEST(ShannonTest, EmptyProjectionHasZeroEntropy) {
  Relation r = SampleRelation();
  SetFunction<double> h = *ShannonFunction(r, *Distribution::Uniform(r.size()));
  EXPECT_NEAR(h.at(Mask{0}), 0.0, 1e-12);
}

TEST(ShannonTest, UniformFullProjection) {
  // 4 distinct tuples, uniform: H(S) = 2 bits.
  Relation r = SampleRelation();
  SetFunction<double> h = *ShannonFunction(r, *Distribution::Uniform(r.size()));
  EXPECT_NEAR(h.at(FullMask(3)), 2.0, 1e-12);
}

TEST(ShannonTest, KnownMarginals) {
  Relation r = SampleRelation();
  SetFunction<double> h = *ShannonFunction(r, *Distribution::Uniform(r.size()));
  // On B: groups 10,10 / 20,20 -> 1 bit.
  EXPECT_NEAR(h.at(Mask{0b010}), 1.0, 1e-12);
  // On A: 1/2, 1/4, 1/4 -> 1.5 bits.
  EXPECT_NEAR(h.at(Mask{0b001}), 1.5, 1e-12);
}

TEST(ShannonTest, MonotoneInAttributes) {
  Rng rng(61);
  for (int iter = 0; iter < 8; ++iter) {
    Relation r = RandomRelation(rng, 4, static_cast<int>(rng.UniformInt(2, 8)), 3);
    SetFunction<double> h = *ShannonFunction(r, *Distribution::Uniform(r.size()));
    for (Mask x = 0; x < h.size(); ++x) {
      for (int a = 0; a < 4; ++a) {
        if (!(x & (Mask{1} << a))) {
          EXPECT_LE(h.at(x), h.at(x | (Mask{1} << a)) + 1e-9);
        }
      }
    }
  }
}

TEST(ShannonTest, Submodular) {
  // H(X∪{a}) - H(X) is antitone in X (diminishing information gain).
  Rng rng(62);
  for (int iter = 0; iter < 8; ++iter) {
    Relation r = RandomRelation(rng, 4, static_cast<int>(rng.UniformInt(2, 8)), 3);
    SetFunction<double> h = *ShannonFunction(r, *Distribution::Uniform(r.size()));
    for (Mask x = 0; x < h.size(); ++x) {
      for (Mask y = 0; y < h.size(); ++y) {
        if (!IsSubset(x, y)) continue;
        for (int a = 0; a < 4; ++a) {
          const Mask bit = Mask{1} << a;
          if ((y & bit) || (x & bit)) continue;
          EXPECT_GE(h.at(x | bit) - h.at(x), h.at(y | bit) - h.at(y) - 1e-9);
        }
      }
    }
  }
}

TEST(InformationDependencyTest, EquivalentToFdSatisfaction) {
  Rng rng(63);
  for (int iter = 0; iter < 10; ++iter) {
    Relation r = RandomRelation(rng, 4, static_cast<int>(rng.UniformInt(2, 8)), 2);
    SetFunction<double> h = *ShannonFunction(r, *Distribution::Uniform(r.size()));
    for (int c_iter = 0; c_iter < 20; ++c_iter) {
      ItemSet x(rng.RandomMask(4, 0.4));
      ItemSet y(rng.RandomMask(4, 0.4));
      EXPECT_EQ(SatisfiesInformationDependency(h, x, y), SatisfiesFdInRelation(r, x, y))
          << "X=" << x.bits() << " Y=" << y.bits();
    }
  }
}

TEST(ShannonComplementTest, FirstDifferencesAreConditionalEntropies) {
  Rng rng(64);
  Relation r = RandomRelation(rng, 4, 6, 3);
  Distribution p = *Distribution::Uniform(r.size());
  SetFunction<double> h = *ShannonFunction(r, p);
  SetFunction<double> g = *ShannonComplementFunction(r, p);
  for (Mask x = 0; x < g.size(); ++x) {
    for (int a = 0; a < 4; ++a) {
      const Mask bit = Mask{1} << a;
      if (x & bit) continue;
      // g(X) - g(X∪{a}) = H(X∪{a}) - H(X) = H({a} | X) >= 0.
      double diff = g.at(x) - g.at(x | bit);
      EXPECT_NEAR(diff, h.at(x | bit) - h.at(x), 1e-9);
      EXPECT_GE(diff, -1e-9);
    }
  }
}

TEST(ShannonComplementTest, SecondOrderDifferentialsNonnegative) {
  // D^{Y,Z}_g(X) = I(Y;Z|X) >= 0 — conditional mutual information.
  Rng rng(65);
  for (int iter = 0; iter < 10; ++iter) {
    Relation r = RandomRelation(rng, 4, static_cast<int>(rng.UniformInt(2, 8)), 2);
    SetFunction<double> g =
        *ShannonComplementFunction(r, *Distribution::Uniform(r.size()));
    for (int c_iter = 0; c_iter < 20; ++c_iter) {
      ItemSet x(rng.RandomMask(4, 0.3));
      SetFamily fam = SetFamily::FromMasks(rng.RandomFamily(4, 2, 0.4));
      if (fam.size() != 2) continue;
      EXPECT_GE(DifferentialAt(g, x, fam), -1e-9);
    }
  }
}

TEST(ShannonComplementTest, FdFaceMatchesBooleanDependency) {
  // For single-member constraints the Shannon face agrees with boolean
  // dependencies (this is the classical InD result, not open).
  Rng rng(66);
  for (int iter = 0; iter < 10; ++iter) {
    Relation r = RandomRelation(rng, 4, static_cast<int>(rng.UniformInt(2, 8)), 2);
    SetFunction<double> g =
        *ShannonComplementFunction(r, *Distribution::Uniform(r.size()));
    for (int c_iter = 0; c_iter < 15; ++c_iter) {
      ItemSet x(rng.RandomMask(4, 0.4));
      Mask y = rng.RandomMask(4, 0.4);
      if (y == 0) y = 1;
      DifferentialConstraint c(x, SetFamily({ItemSet(y)}));
      // First-order differential zero <=> FD holds <=> boolean dependency.
      bool shannon_diff_zero = std::fabs(DifferentialAt(g, c.lhs(), c.rhs())) < 1e-9;
      EXPECT_EQ(shannon_diff_zero, SatisfiesBooleanDependency(r, c));
    }
  }
}

TEST(ShannonComplementTest, OpenProblemProbeRuns) {
  // The open problem: does density-based Shannon satisfaction coincide
  // with boolean dependencies for general families? We don't assert a
  // theorem — we measure agreement and require the FD face (checked
  // above) plus a sane agreement rate. Disagreements, if any, are
  // interesting, not bugs.
  Rng rng(67);
  int agree = 0, total = 0;
  for (int iter = 0; iter < 10; ++iter) {
    Relation r = RandomRelation(rng, 4, static_cast<int>(rng.UniformInt(2, 8)), 2);
    Distribution p = *Distribution::Uniform(r.size());
    SetFunction<double> g = *ShannonComplementFunction(r, p);
    SetFunction<double> density = Density(g);
    for (int c_iter = 0; c_iter < 20; ++c_iter) {
      DifferentialConstraint c = testing::RandomConstraint(rng, 4, 0.3, 2, 0.4);
      bool shannon = SatisfiesWithDensity(density, c, 1e-9);
      bool boolean = SatisfiesBooleanDependency(r, c);
      ++total;
      if (shannon == boolean) ++agree;
    }
  }
  EXPECT_GT(agree, total / 2);
}

TEST(ShannonTest, Validation) {
  EXPECT_FALSE(ShannonFunction(*Relation::Make(2, {}), *Distribution::Uniform(1)).ok());
  EXPECT_FALSE(ShannonFunction(SampleRelation(), *Distribution::Uniform(3)).ok());
}

}  // namespace
}  // namespace diffc
