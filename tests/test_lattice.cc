#include <gtest/gtest.h>

#include "lattice/interval.h"
#include "lattice/itemset.h"
#include "lattice/set_family.h"
#include "lattice/universe.h"

namespace diffc {
namespace {

// ---------------------------------------------------------------- Universe

TEST(UniverseTest, LettersNamesAndSize) {
  Universe u = Universe::Letters(4);
  EXPECT_EQ(u.size(), 4);
  EXPECT_EQ(u.name(0), "A");
  EXPECT_EQ(u.name(3), "D");
  EXPECT_EQ(u.full_mask(), 0b1111u);
}

TEST(UniverseTest, LettersBeyondAlphabetGetSuffixes) {
  Universe u = Universe::Letters(28);
  EXPECT_EQ(u.name(26), "A1");
  EXPECT_EQ(u.name(27), "B1");
}

TEST(UniverseTest, NamedValidation) {
  EXPECT_TRUE(Universe::Named({"x", "y"}).ok());
  EXPECT_FALSE(Universe::Named({"x", "x"}).ok());
  EXPECT_FALSE(Universe::Named({""}).ok());
  EXPECT_FALSE(Universe::Named(std::vector<std::string>(65, "a")).ok());
}

TEST(UniverseTest, Index) {
  Universe u = Universe::Letters(3);
  EXPECT_EQ(*u.Index("B"), 1);
  EXPECT_FALSE(u.Index("Z").ok());
}

TEST(UniverseTest, FormatSetSingleChars) {
  Universe u = Universe::Letters(4);
  EXPECT_EQ(u.FormatSet(0b1101), "ACD");
  EXPECT_EQ(u.FormatSet(0), "0");
}

TEST(UniverseTest, FormatSetMultiCharUsesCommas) {
  Universe u = *Universe::Named({"id", "name"});
  EXPECT_EQ(u.FormatSet(0b11), "id,name");
}

TEST(UniverseTest, FormatFamily) {
  Universe u = Universe::Letters(4);
  EXPECT_EQ(u.FormatFamily({0b0010, 0b1100}), "{B, CD}");
  EXPECT_EQ(u.FormatFamily({}), "{}");
}

// ---------------------------------------------------------------- ItemSet

TEST(ItemSetTest, BasicOps) {
  ItemSet a{0, 2};
  ItemSet b{2, 3};
  EXPECT_EQ(a.size(), 2);
  EXPECT_TRUE(a.Contains(0));
  EXPECT_FALSE(a.Contains(1));
  EXPECT_EQ(a.Union(b), (ItemSet{0, 2, 3}));
  EXPECT_EQ(a.Intersect(b), (ItemSet{2}));
  EXPECT_EQ(a.Minus(b), (ItemSet{0}));
  EXPECT_EQ(a.ComplementIn(4), (ItemSet{1, 3}));
}

TEST(ItemSetTest, SubsetAndEmpty) {
  EXPECT_TRUE(ItemSet().empty());
  EXPECT_TRUE(ItemSet().IsSubsetOf(ItemSet{1}));
  EXPECT_TRUE((ItemSet{1}).IsSubsetOf(ItemSet{0, 1}));
  EXPECT_FALSE((ItemSet{2}).IsSubsetOf(ItemSet{0, 1}));
}

TEST(ItemSetTest, Singleton) {
  EXPECT_EQ(ItemSet::Singleton(3).bits(), 0b1000u);
}

TEST(ItemSetTest, ToString) {
  Universe u = Universe::Letters(4);
  EXPECT_EQ((ItemSet{0, 2, 3}).ToString(u), "ACD");
  EXPECT_EQ(ItemSet().ToString(u), "0");
}

TEST(ItemSetTest, ParseConcatenated) {
  Universe u = Universe::Letters(4);
  EXPECT_EQ(*ParseItemSet(u, "ACD"), (ItemSet{0, 2, 3}));
  EXPECT_EQ(*ParseItemSet(u, " B "), (ItemSet{1}));
  EXPECT_EQ(*ParseItemSet(u, "0"), ItemSet());
}

TEST(ItemSetTest, ParseCommaSeparated) {
  Universe u = *Universe::Named({"id", "name", "age"});
  EXPECT_EQ(*ParseItemSet(u, "id, age"), (ItemSet{0, 2}));
}

TEST(ItemSetTest, ParseErrors) {
  Universe u = Universe::Letters(3);
  EXPECT_FALSE(ParseItemSet(u, "AX").ok());
  EXPECT_FALSE(ParseItemSet(u, "").ok());
}

TEST(ItemSetTest, ParseRoundTrip) {
  Universe u = Universe::Letters(6);
  for (Mask m = 0; m < 64; ++m) {
    ItemSet s(m);
    EXPECT_EQ(*ParseItemSet(u, s.ToString(u)), s) << m;
  }
}

// ---------------------------------------------------------------- SetFamily

TEST(SetFamilyTest, SortsAndDedupes) {
  SetFamily f({ItemSet{2}, ItemSet{0}, ItemSet{2}});
  EXPECT_EQ(f.size(), 2);
  EXPECT_EQ(f.member(0), ItemSet{0});
  EXPECT_EQ(f.member(1), ItemSet{2});
}

TEST(SetFamilyTest, EqualityIgnoresOrder) {
  SetFamily a({ItemSet{0}, ItemSet{1}});
  SetFamily b({ItemSet{1}, ItemSet{0}});
  EXPECT_EQ(a, b);
}

TEST(SetFamilyTest, EmptyFamilyVsEmptyMember) {
  SetFamily none;
  SetFamily just_empty({ItemSet()});
  EXPECT_TRUE(none.empty());
  EXPECT_FALSE(just_empty.empty());
  EXPECT_TRUE(just_empty.HasEmptyMember());
  EXPECT_FALSE(none.HasEmptyMember());
  EXPECT_NE(none, just_empty);
}

TEST(SetFamilyTest, SomeMemberSubsetOf) {
  SetFamily f({ItemSet{0, 1}, ItemSet{2}});
  EXPECT_TRUE(f.SomeMemberSubsetOf(ItemSet{0, 1, 3}));
  EXPECT_TRUE(f.SomeMemberSubsetOf(ItemSet{2}));
  EXPECT_FALSE(f.SomeMemberSubsetOf(ItemSet{0, 3}));
}

TEST(SetFamilyTest, UnionOfMembers) {
  SetFamily f({ItemSet{0, 1}, ItemSet{2}});
  EXPECT_EQ(f.UnionOfMembers(), (ItemSet{0, 1, 2}));
  EXPECT_EQ(SetFamily().UnionOfMembers(), ItemSet());
}

TEST(SetFamilyTest, WithAndWithoutMember) {
  SetFamily f({ItemSet{0}});
  SetFamily g = f.WithMember(ItemSet{1});
  EXPECT_EQ(g.size(), 2);
  EXPECT_TRUE(g.HasMember(ItemSet{1}));
  EXPECT_EQ(g.WithoutMember(ItemSet{1}), f);
  EXPECT_EQ(f.WithMember(ItemSet{0}), f);  // Re-adding dedupes.
}

TEST(SetFamilyTest, IntersectMembersWith) {
  SetFamily f({ItemSet{0, 1}, ItemSet{1, 2}});
  SetFamily g = f.IntersectMembersWith(ItemSet{1});
  // Both intersect to {1}: deduped to a single member.
  EXPECT_EQ(g, SetFamily({ItemSet{1}}));
}

TEST(SetFamilyTest, Singletons) {
  SetFamily f = SetFamily::Singletons(ItemSet{0, 2});
  EXPECT_EQ(f, SetFamily({ItemSet{0}, ItemSet{2}}));
  EXPECT_TRUE(SetFamily::Singletons(ItemSet()).empty());
}

TEST(SetFamilyTest, Minimized) {
  SetFamily f({ItemSet{0}, ItemSet{0, 1}, ItemSet{2, 3}});
  EXPECT_EQ(f.Minimized(), SetFamily({ItemSet{0}, ItemSet{2, 3}}));
}

TEST(SetFamilyTest, MinimizedKeepsAntichain) {
  SetFamily f({ItemSet{0, 1}, ItemSet{1, 2}});
  EXPECT_EQ(f.Minimized(), f);
}

TEST(SetFamilyTest, ToString) {
  Universe u = Universe::Letters(4);
  SetFamily f({ItemSet{1}, ItemSet{2, 3}});
  EXPECT_EQ(f.ToString(u), "{B, CD}");
}

// ---------------------------------------------------------------- Interval

TEST(IntervalTest, SizeAndContains) {
  Interval iv{ItemSet{0}, ItemSet{0, 1, 2}};
  EXPECT_FALSE(iv.IsEmpty());
  EXPECT_EQ(iv.Size(), 4u);
  EXPECT_TRUE(iv.Contains(ItemSet{0, 2}));
  EXPECT_FALSE(iv.Contains(ItemSet{1}));    // Misses lo.
  EXPECT_FALSE(iv.Contains(ItemSet{0, 3})); // Escapes hi.
}

TEST(IntervalTest, EmptyWhenLoNotSubsetOfHi) {
  Interval iv{ItemSet{3}, ItemSet{0, 1}};
  EXPECT_TRUE(iv.IsEmpty());
  EXPECT_EQ(iv.Size(), 0u);
  EXPECT_TRUE(iv.Enumerate().empty());
}

TEST(IntervalTest, EnumerateSortedAndComplete) {
  Interval iv{ItemSet{1}, ItemSet{0, 1, 2}};
  std::vector<ItemSet> got = iv.Enumerate();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], (ItemSet{1}));
  EXPECT_EQ(got[3], (ItemSet{0, 1, 2}));
  for (const ItemSet& s : got) EXPECT_TRUE(iv.Contains(s));
}

TEST(IntervalTest, PointInterval) {
  Interval iv{ItemSet{0, 1}, ItemSet{0, 1}};
  EXPECT_EQ(iv.Size(), 1u);
  EXPECT_EQ(iv.Enumerate(), (std::vector<ItemSet>{ItemSet{0, 1}}));
}

TEST(IntervalTest, ToString) {
  Universe u = Universe::Letters(4);
  Interval iv{ItemSet{0}, ItemSet{0, 3}};
  EXPECT_EQ(iv.ToString(u), "[A, AD]");
}

// ------------------------------------------------- n = 64 boundary (bugfix)
//
// Regression tests for the input-boundary fixes: Universe::Letters used to
// truncate n > 64 silently (inconsistent with Named's InvalidArgument) and
// ItemSet's index paths shifted unchecked (UB at i >= 64). The full
// 64-attribute universe itself must keep working exactly.

TEST(UniverseTest, LettersCheckedRejectsOutOfRange) {
  EXPECT_FALSE(Universe::LettersChecked(-1).ok());
  EXPECT_FALSE(Universe::LettersChecked(65).ok());
  EXPECT_EQ(Universe::LettersChecked(65).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Universe::LettersChecked(100).status().code(), StatusCode::kInvalidArgument);
}

TEST(UniverseTest, LettersCheckedAcceptsFullRange) {
  Result<Universe> empty = Universe::LettersChecked(0);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0);
  Result<Universe> full = Universe::LettersChecked(64);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 64);
  EXPECT_EQ(full->full_mask(), ~Mask{0});
}

TEST(ItemSetTest, ContainsIsWellDefinedOutOfRange) {
  ItemSet all(~Mask{0});
  EXPECT_TRUE(all.Contains(0));
  EXPECT_TRUE(all.Contains(63));
  // Out-of-range indices are simply not members — never UB, never true.
  EXPECT_FALSE(all.Contains(64));
  EXPECT_FALSE(all.Contains(70));
  EXPECT_FALSE(all.Contains(-1));
  EXPECT_FALSE(ItemSet().Contains(64));
}

TEST(ItemSetTest, FullMaskBoundaryAt64) {
  EXPECT_EQ(FullMask(64), ~Mask{0});
  EXPECT_EQ(FullMask(63), ~Mask{0} >> 1);
  EXPECT_EQ(FullMask(0), Mask{0});
  ItemSet all(FullMask(64));
  EXPECT_EQ(all.size(), 64);
  EXPECT_TRUE(all.Contains(63));
}

TEST(ItemSetTest, ComplementInBoundaryAt64) {
  EXPECT_EQ(ItemSet().ComplementIn(64).bits(), ~Mask{0});
  EXPECT_EQ(ItemSet(~Mask{0}).ComplementIn(64).bits(), Mask{0});
  ItemSet low(FullMask(32));
  EXPECT_EQ(low.ComplementIn(64).bits(), ~Mask{0} << 32);
  EXPECT_EQ(ItemSet::Singleton(63).ComplementIn(64).size(), 63);
}

#ifndef NDEBUG
TEST(ItemSetTest, DebugAssertsOnOutOfRangeConstruction) {
  EXPECT_DEATH(ItemSet({64}), "out of");
  EXPECT_DEATH(ItemSet({-1}), "out of");
  EXPECT_DEATH(ItemSet::Singleton(64), "out of");
}

TEST(UniverseTest, DebugAssertsOnOutOfRangeLetters) {
  EXPECT_DEATH(Universe::Letters(65), "0 <= n <= 64");
  EXPECT_DEATH(Universe::Letters(-1), "0 <= n <= 64");
}
#endif

}  // namespace
}  // namespace diffc
