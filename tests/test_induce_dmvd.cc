#include <gtest/gtest.h>

#include <set>

#include "core/implication.h"
#include "fis/generator.h"
#include "fis/induce.h"
#include "fis/support.h"
#include "relational/dmvd.h"
#include "util/random.h"

namespace diffc {
namespace {

// ---------------------------------------------------------- basket induction

TEST(InduceTest, RoundTripFromBaskets) {
  BasketGenConfig config;
  config.num_items = 8;
  config.num_baskets = 150;
  config.seed = 5;
  BasketList b = *GenerateBaskets(config);
  SetFunction<std::int64_t> support = *SupportFunction(b);
  ASSERT_TRUE(IsSupportFunction(support));
  Result<BasketList> induced = InduceBaskets(support);
  ASSERT_TRUE(induced.ok());
  // Same multiset of baskets (induction orders by mask).
  std::multiset<Mask> original(b.baskets().begin(), b.baskets().end());
  std::multiset<Mask> got(induced->baskets().begin(), induced->baskets().end());
  EXPECT_EQ(got, original);
  EXPECT_EQ(*SupportFunction(*induced), support);
}

TEST(InduceTest, RejectsNonSupportFunctions) {
  // f(∅)=0, f(A)=1 has d(∅) = -1 (Remark 3.6's function).
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(1);
  f.at(Mask{1}) = 1;
  EXPECT_FALSE(IsSupportFunction(f));
  EXPECT_EQ(InduceBaskets(f).status().code(), StatusCode::kInvalidArgument);
}

TEST(InduceTest, CounterexampleFunctionsInduce) {
  // f_U is the support function of the one-basket list (U).
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(4);
  ForEachSubset(Mask{0b1010}, [&](Mask w) { f.at(w) = 1; });
  Result<BasketList> induced = InduceBaskets(f);
  ASSERT_TRUE(induced.ok());
  ASSERT_EQ(induced->size(), 1);
  EXPECT_EQ(induced->basket(0), 0b1010u);
}

TEST(InduceTest, BudgetGuard) {
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(2);
  // Constant density 10 everywhere -> 40 baskets; cap at 5.
  SetFunction<std::int64_t> d = *SetFunction<std::int64_t>::Make(2);
  for (Mask m = 0; m < 4; ++m) d.at(m) = 10;
  f = FromDensity(d);
  EXPECT_EQ(InduceBaskets(f, 5).status().code(), StatusCode::kResourceExhausted);
}

// ----------------------------------------------------------------------- DMVD

Relation PhoneBook() {
  // (Dept, Floor, Phone): tuples agreeing on Dept agree on Floor or Phone.
  return *Relation::Make(3, {
                                {10, 3, 100},
                                {10, 3, 200},
                                {20, 4, 300},
                                {20, 5, 300},
                                {30, 6, 400},
                            });
}

TEST(DmvdTest, SatisfactionOnExample) {
  Relation r = PhoneBook();
  // Dept -|-> Floor | Phone holds.
  EXPECT_TRUE(SatisfiesDmvd(r, {ItemSet{0}, ItemSet{1}, ItemSet{2}}));
  // Floor -|-> Dept | Phone: tuples 0,1 agree on floor 3 and dept; ok.
  // Tuples with floors 4/5/6 are singletons. Check a failing one:
  // Phone -|-> Dept | Floor: tuples 2,3 agree on phone 300 but differ on
  // floor... they agree on dept 20. Construct a violation directly:
  Relation bad = *Relation::Make(3, {{10, 3, 100}, {20, 4, 100}});
  EXPECT_FALSE(SatisfiesDmvd(bad, {ItemSet{2}, ItemSet{0}, ItemSet{1}}));
}

TEST(DmvdTest, TrivialWhenSideInsideLhs) {
  Relation r = PhoneBook();
  // X -|-> Y | Z with Y ⊆ X is trivial.
  Dmvd trivial{ItemSet{0, 1}, ItemSet{1}, ItemSet{2}};
  ASSERT_TRUE(trivial.AsConstraint().IsTrivial());
  EXPECT_TRUE(SatisfiesDmvd(r, trivial));
}

TEST(DmvdTest, ImplicationViaDifferentialMachinery) {
  const int n = 4;
  // X -|-> Y|Z implies X∪W -|-> Y|Z (augmentation).
  Dmvd base{ItemSet{0}, ItemSet{1}, ItemSet{2}};
  Dmvd augmented{ItemSet{0, 3}, ItemSet{1}, ItemSet{2}};
  EXPECT_TRUE(*DmvdImplies(n, {base}, augmented));
  EXPECT_FALSE(*DmvdImplies(n, {augmented}, base));
}

TEST(DmvdTest, ToString) {
  Universe u = Universe::Letters(3);
  EXPECT_EQ((Dmvd{ItemSet{0}, ItemSet{1}, ItemSet{2}}).ToString(u), "A -|-> B | C");
}

// Soundness across the bridge: if a relation satisfies all premise DMVDs
// and the DMVDs imply the goal (as differential constraints), the
// relation satisfies the goal.
class DmvdSoundness : public ::testing::TestWithParam<int> {};

TEST_P(DmvdSoundness, ImpliedDmvdsHoldInModels) {
  Rng rng(GetParam() * 733);
  const int n = 4;
  for (int iter = 0; iter < 10; ++iter) {
    auto random_dmvd = [&]() {
      Mask lhs = rng.RandomMask(n, 0.3);
      Mask left = rng.RandomMask(n, 0.4);
      Mask right = rng.RandomMask(n, 0.4);
      if (left == 0) left = 1;
      if (right == 0) right = 2;
      return Dmvd{ItemSet(lhs), ItemSet(left), ItemSet(right)};
    };
    std::vector<Dmvd> premises{random_dmvd(), random_dmvd()};
    Dmvd goal = random_dmvd();
    if (!*DmvdImplies(n, premises, goal)) continue;
    for (int r_iter = 0; r_iter < 10; ++r_iter) {
      std::vector<std::vector<int>> rows;
      std::set<std::vector<int>> seen;
      int tuples = static_cast<int>(rng.UniformInt(1, 6));
      while (static_cast<int>(rows.size()) < tuples) {
        std::vector<int> row(n);
        for (int a = 0; a < n; ++a) row[a] = static_cast<int>(rng.UniformInt(0, 2));
        if (seen.insert(row).second) rows.push_back(row);
      }
      Relation rel = *Relation::Make(n, rows);
      if (SatisfiesDmvd(rel, premises[0]) && SatisfiesDmvd(rel, premises[1])) {
        EXPECT_TRUE(SatisfiesDmvd(rel, goal));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmvdSoundness, ::testing::Range(1, 9));

}  // namespace
}  // namespace diffc
