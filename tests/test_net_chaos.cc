// Chaos suite for the diffcd wire service: the resilient-client machinery
// (retry schedule, circuit breaker, nonce idempotency) as units, then the
// wire-vs-in-process differential contract under injected network faults.
// The invariant everywhere: a query either completes bit-for-bit equal to
// the in-process engine or fails with a typed Status — never a hang, a
// crash, or a wrong answer.
//
// Tests that need fault injection skip themselves unless the library was
// built with -DDIFFC_FAILPOINTS=ON (the `chaos` CI job builds that way,
// under ASan, and runs this binary with several DIFFC_CHAOS_SEED values).

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/implication.h"
#include "engine/implication_engine.h"
#include "net/client.h"
#include "net/nonce_cache.h"
#include "net/retry.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "obs/trace_store.h"
#include "test_helpers.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace diffc::net {
namespace {

// Polls until `pred` holds or ~2 s pass.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 1000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Disarms every fail point on scope exit, so a failing assertion cannot
/// leak an armed schedule into the next test.
struct FailpointGuard {
  ~FailpointGuard() { failpoint::DisarmAll(); }
};

/// The chaos seed: DIFFC_CHAOS_SEED when set (the CI job runs several),
/// else a fixed default.
std::uint64_t ChaosSeed() {
  const char* env = std::getenv("DIFFC_CHAOS_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return 20260809;
}

/// Reads one un-labeled counter out of the Prometheus exposition (values
/// are cumulative across the whole test binary — use deltas).
double CounterValue(const std::string& name) {
  const std::string text = obs::SnapshotPrometheus();
  const std::string needle = "\n" + name + " ";
  std::size_t at = text.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

std::string UniqueUnixAddress(const char* tag) {
  return "unix:/tmp/diffcd_chaos_" + std::string(tag) + "_" + std::to_string(::getpid()) +
         ".sock";
}

// -------------------------------------------------------- unit: retry loop

TEST(RetryScheduleTest, BacksOffExponentiallyAndExhausts) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = std::chrono::milliseconds(10);
  policy.max_backoff = std::chrono::milliseconds(40);
  policy.jitter = 0.0;
  policy.retry_budget = std::chrono::milliseconds(0);  // Unbounded.
  RetrySchedule schedule(policy, 1);

  Result<std::chrono::milliseconds> d1 =
      schedule.NextDelay(std::chrono::milliseconds(0), Deadline::Never());
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(*d1, std::chrono::milliseconds(10));
  Result<std::chrono::milliseconds> d2 =
      schedule.NextDelay(std::chrono::milliseconds(0), Deadline::Never());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(*d2, std::chrono::milliseconds(20));
  Result<std::chrono::milliseconds> d3 =
      schedule.NextDelay(std::chrono::milliseconds(0), Deadline::Never());
  ASSERT_TRUE(d3.ok());
  EXPECT_EQ(*d3, std::chrono::milliseconds(40));  // Capped at max_backoff.

  // Attempt 4 was the last allowed: the next failure exhausts the policy.
  Result<std::chrono::milliseconds> d4 =
      schedule.NextDelay(std::chrono::milliseconds(0), Deadline::Never());
  EXPECT_EQ(d4.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(schedule.failures(), 4);
}

TEST(RetryScheduleTest, ServerHintIsAFloor) {
  RetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(5);
  policy.jitter = 0.0;
  RetrySchedule schedule(policy, 1);
  Result<std::chrono::milliseconds> d =
      schedule.NextDelay(std::chrono::milliseconds(150), Deadline::Never());
  ASSERT_TRUE(d.ok());
  EXPECT_GE(*d, std::chrono::milliseconds(150));
}

TEST(RetryScheduleTest, NeverSleepsPastTheCallerDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = std::chrono::milliseconds(100);
  policy.jitter = 0.0;
  RetrySchedule schedule(policy, 1);
  // 20 ms of deadline cannot absorb a 100 ms backoff: refuse, typed.
  Result<std::chrono::milliseconds> d = schedule.NextDelay(
      std::chrono::milliseconds(0), Deadline::After(std::chrono::milliseconds(20)));
  EXPECT_EQ(d.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(RetryScheduleTest, RetryBudgetBoundsTheWholeLoop) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff = std::chrono::milliseconds(30);
  policy.backoff_multiplier = 1.0;
  policy.jitter = 0.0;
  policy.retry_budget = std::chrono::milliseconds(50);
  RetrySchedule schedule(policy, 1);
  Result<std::chrono::milliseconds> first =
      schedule.NextDelay(std::chrono::milliseconds(0), Deadline::Never());
  ASSERT_TRUE(first.ok());
  std::this_thread::sleep_for(*first);  // The retry loop sleeps this out.
  // ~20 ms of budget left: the second 30 ms delay would overrun it.
  Result<std::chrono::milliseconds> d =
      schedule.NextDelay(std::chrono::milliseconds(0), Deadline::Never());
  EXPECT_EQ(d.status().code(), StatusCode::kDeadlineExceeded);
}

// --------------------------------------------------- unit: circuit breaker

TEST(CircuitBreakerTest, OpensAfterThresholdAndShortCircuits) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_duration = std::chrono::hours(1);  // Never half-opens here.
  CircuitBreaker breaker(options);

  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.Allow().ok());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  Status gate = breaker.Allow();
  EXPECT_EQ(gate.code(), StatusCode::kUnavailable);
  EXPECT_GT(breaker.RetryAfter(), std::chrono::milliseconds(0));
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOrReopens) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_duration = std::chrono::milliseconds(20);
  CircuitBreaker breaker(options);

  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // Cooldown over: the next attempt runs as a half-open probe; its
  // failure reopens immediately.
  EXPECT_TRUE(breaker.Allow().ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);

  // Second cooldown: this time the probe succeeds and the breaker closes.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(breaker.Allow().ok());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ------------------------------------------------------- unit: nonce cache

TEST(NonceCacheTest, MissInFlightDoneLifecycle) {
  NonceCache cache(NonceCache::Options{4});

  // First arrival claims; a racing duplicate sees in-flight.
  EXPECT_EQ(cache.Begin(7).state, NonceCache::State::kMiss);
  EXPECT_EQ(cache.Begin(7).state, NonceCache::State::kInFlight);

  Frame reply{0x13, kWireVersion, {1, 2, 3}};
  cache.Complete(7, reply);
  NonceCache::Lookup done = cache.Begin(7);
  EXPECT_EQ(done.state, NonceCache::State::kDone);
  EXPECT_EQ(done.reply.payload, reply.payload);

  // Abandoned claims re-execute; nonce 0 is never tracked.
  EXPECT_EQ(cache.Begin(8).state, NonceCache::State::kMiss);
  cache.Abandon(8);
  EXPECT_EQ(cache.Begin(8).state, NonceCache::State::kMiss);
  EXPECT_EQ(cache.Begin(0).state, NonceCache::State::kMiss);
  EXPECT_EQ(cache.Begin(0).state, NonceCache::State::kMiss);
}

TEST(NonceCacheTest, DoneEntriesEvictFifoAtCapacity) {
  NonceCache cache(NonceCache::Options{2});
  for (std::uint64_t nonce = 1; nonce <= 3; ++nonce) {
    ASSERT_EQ(cache.Begin(nonce).state, NonceCache::State::kMiss);
    cache.Complete(nonce, Frame{0x13, kWireVersion, {static_cast<std::uint8_t>(nonce)}});
  }
  // Nonce 1 was evicted by 3; 2 and 3 still replay.
  EXPECT_EQ(cache.Begin(2).state, NonceCache::State::kDone);
  EXPECT_EQ(cache.Begin(3).state, NonceCache::State::kDone);
  // 1 misses again (and re-claims).
  EXPECT_EQ(cache.Begin(1).state, NonceCache::State::kMiss);
}

// --------------------------------------- recovery without fault injection

TEST(NetChaosTest, ServerRestartReconnectsAndReRegistersHandles) {
  // The full recovery path with a real outage: the server process dies and
  // a *fresh* one binds the same address. The client-scoped handle keeps
  // working (transparent reconnect + re-registration), and verdicts stay
  // bit-for-bit equal to the in-process engine.
  const int n = 8;
  Rng rng(ChaosSeed());
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 25);
  std::vector<DifferentialConstraint> goals;
  for (int i = 0; i < 40; ++i) goals.push_back(testing::RandomConstraint(rng, n));

  ImplicationEngine local;
  Result<std::shared_ptr<const PreparedPremises>> prepared = local.Prepare(n, premises);
  ASSERT_TRUE(prepared.ok());
  Result<BatchOutcome> expected = local.CheckBatch(*prepared, goals);
  ASSERT_TRUE(expected.ok());

  const std::string address = UniqueUnixAddress("restart");
  auto server = std::make_unique<DiffcdServer>(ServerOptions{.listen_address = address});
  ASSERT_TRUE(server->Start().ok());

  ClientOptions copts;
  copts.retry.initial_backoff = std::chrono::milliseconds(2);
  copts.seed = ChaosSeed() + 1;
  Result<DiffcClient> client = DiffcClient::Connect(address, copts);
  ASSERT_TRUE(client.ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(n, premises);
  ASSERT_TRUE(registered.ok());
  Result<BatchResultMsg> before = client->CheckBatch(registered->handle, n, goals);
  ASSERT_TRUE(before.ok());

  // Kill the server and bring up a brand new one on the same address: a
  // fresh handle table, a fresh nonce cache, fresh everything.
  ASSERT_TRUE(server->Shutdown().ok());
  server = std::make_unique<DiffcdServer>(ServerOptions{.listen_address = address});
  ASSERT_TRUE(server->Start().ok());

  Result<BatchResultMsg> after = client->CheckBatch(registered->handle, n, goals);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GE(client->stats().reconnects, 1u);

  ASSERT_EQ(after->results.size(), goals.size());
  for (std::size_t i = 0; i < goals.size(); ++i) {
    EXPECT_EQ(after->results[i].verdict,
              static_cast<std::uint8_t>(expected->results[i].outcome.verdict))
        << "goal " << i;
    EXPECT_EQ(after->results[i].counterexample, before->results[i].counterexample)
        << "goal " << i;
  }
  EXPECT_TRUE(server->Shutdown().ok());
}

TEST(NetChaosTest, BreakerOpensOnDeadEndpointAndRecoversViaHalfOpenProbe) {
  const std::string address = UniqueUnixAddress("breaker");

  ClientOptions copts;
  copts.connect_timeout = std::chrono::milliseconds(250);
  copts.retry.max_attempts = 2;
  copts.retry.initial_backoff = std::chrono::milliseconds(1);
  copts.breaker.failure_threshold = 2;
  copts.breaker.open_duration = std::chrono::milliseconds(60);
  copts.seed = ChaosSeed() + 2;
  DiffcClient client = DiffcClient::Create(address, copts);  // Nothing listening.

  // Two transport failures (one per attempt) open the breaker.
  EXPECT_FALSE(client.Ping(1).ok());
  EXPECT_EQ(client.breaker_state(), CircuitBreaker::State::kOpen);

  // While open, calls short-circuit locally — no connection attempts.
  EXPECT_FALSE(client.Ping(2).ok());
  EXPECT_GE(client.stats().breaker_short_circuits, 1u);

  // Endpoint comes back; after the cooldown the half-open Ping probe runs
  // and the breaker closes.
  DiffcdServer server(ServerOptions{.listen_address = address});
  ASSERT_TRUE(server.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Result<std::uint64_t> echoed = client.Ping(3);
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(*echoed, 3u);
  EXPECT_EQ(client.breaker_state(), CircuitBreaker::State::kClosed);
  EXPECT_GE(client.stats().breaker_transitions, 3u);  // open, half-open, closed.
  EXPECT_TRUE(server.Shutdown().ok());
}

// --------------------------------------------- fault-injection scenarios

#define SKIP_WITHOUT_FAILPOINTS()                                              \
  if (!failpoint::CompiledIn()) {                                              \
    GTEST_SKIP() << "library built without -DDIFFC_FAILPOINTS=ON";             \
  }                                                                            \
  FailpointGuard guard

TEST(NetChaosTest, MidReplyResetReplaysTheBatchFromTheNonceCache) {
  SKIP_WITHOUT_FAILPOINTS();
  // Scenario: the server executes the batch, then the connection resets
  // halfway through the reply frame. The retry must reconnect, re-register
  // the handle, and get the *original* reply out of the nonce cache —
  // executed once, delivered bit-for-bit.
  const int n = 8;
  Rng rng(ChaosSeed() + 3);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 25);
  std::vector<DifferentialConstraint> goals;
  for (int i = 0; i < 30; ++i) goals.push_back(testing::RandomConstraint(rng, n));

  ImplicationEngine local;
  Result<std::shared_ptr<const PreparedPremises>> prepared = local.Prepare(n, premises);
  ASSERT_TRUE(prepared.ok());
  Result<BatchOutcome> expected = local.CheckBatch(*prepared, goals);
  ASSERT_TRUE(expected.ok());

  DiffcdServer server(ServerOptions{.listen_address = "127.0.0.1:0"});
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.retry.initial_backoff = std::chrono::milliseconds(2);
  copts.seed = ChaosSeed() + 4;
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address(), copts);
  ASSERT_TRUE(client.ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(n, premises);
  ASSERT_TRUE(registered.ok());

  const double replays_before = CounterValue("diffc_net_nonce_replays_total");
  const double batches_before = CounterValue("diffc_net_batch_queries_total");
  failpoint::Arm("server/reset-mid-reply", failpoint::Spec::NthHit(1));

  Result<BatchResultMsg> batch = client->CheckBatch(registered->handle, n, goals);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_GE(client->stats().retries, 1u);
  EXPECT_GE(client->stats().reconnects, 1u);
  // The retry was answered from the cache: one replay, zero re-executions.
  EXPECT_GE(CounterValue("diffc_net_nonce_replays_total"), replays_before + 1);
  EXPECT_EQ(CounterValue("diffc_net_batch_queries_total"),
            batches_before + static_cast<double>(goals.size()));

  ASSERT_EQ(batch->results.size(), goals.size());
  for (std::size_t i = 0; i < goals.size(); ++i) {
    EXPECT_EQ(batch->results[i].verdict,
              static_cast<std::uint8_t>(expected->results[i].outcome.verdict))
        << "goal " << i;
  }
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(NetChaosTest, InjectedShedIsRetriedAfterTheHint) {
  SKIP_WITHOUT_FAILPOINTS();
  DiffcdServer server(ServerOptions{.listen_address = "127.0.0.1:0"});
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.retry.initial_backoff = std::chrono::milliseconds(2);
  copts.seed = ChaosSeed() + 5;
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address(), copts);
  ASSERT_TRUE(client.ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(
      3, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  ASSERT_TRUE(registered.ok());

  const double shed_before = CounterValue("diffc_net_shed_total");
  failpoint::Arm("server/shed", failpoint::Spec::NthHit(1));
  Result<BatchResultMsg> batch = client->CheckBatch(
      registered->handle, 3, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->results[0].verdict, 1);
  EXPECT_GE(client->stats().shed_backoffs, 1u);
  EXPECT_GE(CounterValue("diffc_net_shed_total"), shed_before + 1);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(NetChaosTest, ShedRequestsLandInTraceStoreWithRetryChainIntact) {
  SKIP_WITHOUT_FAILPOINTS();
  // PR 8 acceptance: a request shed on its first attempt and retried to
  // success must leave the whole story in the trace store under ONE trace
  // id — the shed server record, the successful server record, and the
  // client record whose span carries the shed/backoff events between them.
  obs::GlobalTraceStore().Clear();
  DiffcdServer server(ServerOptions{.listen_address = "127.0.0.1:0"});
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.retry.initial_backoff = std::chrono::milliseconds(2);
  copts.seed = ChaosSeed() + 11;
  copts.trace = true;  // Force-sample the whole chain.
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address(), copts);
  ASSERT_TRUE(client.ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(
      3, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  ASSERT_TRUE(registered.ok());

  failpoint::Arm("server/shed", failpoint::Spec::NthHit(1));
  Result<BatchResultMsg> batch = client->CheckBatch(
      registered->handle, 3, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_GE(client->stats().shed_backoffs, 1u);

  const TraceContext tc = client->last_trace();
  ASSERT_TRUE(tc.valid());
  std::vector<obs::StoredTrace> chain =
      obs::GlobalTraceStore().FindByTraceId(tc.trace_id_hi, tc.trace_id_lo);
  ASSERT_EQ(chain.size(), 3u) << "shed attempt + retried attempt + client record";

  const obs::StoredTrace* shed_rec = nullptr;
  const obs::StoredTrace* ok_rec = nullptr;
  const obs::StoredTrace* client_rec = nullptr;
  for (const obs::StoredTrace& t : chain) {
    if (t.kind == "server" && t.status == "shed") shed_rec = &t;
    if (t.kind == "server" && t.status == "ok") ok_rec = &t;
    if (t.kind == "client") client_rec = &t;
  }
  ASSERT_NE(shed_rec, nullptr);
  ASSERT_NE(ok_rec, nullptr);
  ASSERT_NE(client_rec, nullptr);

  // Both server attempts hang off the same client span.
  EXPECT_EQ(shed_rec->parent_span_id, client_rec->span_id);
  EXPECT_EQ(ok_rec->parent_span_id, client_rec->span_id);
  EXPECT_NE(shed_rec->span_id, ok_rec->span_id);
  EXPECT_TRUE(shed_rec->shed);
  // The shed attempt recorded where it was turned away.
  bool shed_noted = false;
  for (const obs::TraceSpan& s : shed_rec->record.spans) {
    if (s.name == "shed" && s.detail == "watermark") shed_noted = true;
  }
  EXPECT_TRUE(shed_noted);

  // The client span tells the retry story: the overload event, then the
  // backoff it honored — and the call still ended "ok".
  EXPECT_EQ(client_rec->status, "ok");
  EXPECT_TRUE(client_rec->shed);
  bool saw_shed_event = false;
  bool saw_backoff = false;
  for (const obs::TraceSpan& s : client_rec->record.spans) {
    if (s.name == "shed") saw_shed_event = true;
    if (s.name == "backoff") saw_backoff = true;
  }
  EXPECT_TRUE(saw_shed_event);
  EXPECT_TRUE(saw_backoff);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(NetChaosTest, TornWriteAndRecvResetAreRiddenOut) {
  SKIP_WITHOUT_FAILPOINTS();
  DiffcdServer server(ServerOptions{.listen_address = "127.0.0.1:0"});
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.retry.max_attempts = 6;
  copts.retry.initial_backoff = std::chrono::milliseconds(2);
  copts.breaker.failure_threshold = 100;  // Keep the breaker out of this one.
  copts.seed = ChaosSeed() + 6;
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address(), copts);
  ASSERT_TRUE(client.ok());

  failpoint::Arm("net/send-torn", failpoint::Spec::NthHit(1));
  Result<std::uint64_t> echoed = client->Ping(11);
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(*echoed, 11u);
  EXPECT_GE(client->stats().retries, 1u);

  failpoint::Arm("net/recv-reset", failpoint::Spec::NthHit(1));
  echoed = client->Ping(12);
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(*echoed, 12u);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(NetChaosTest, RandomizedFailpointScheduleNeverHangsOrLies) {
  SKIP_WITHOUT_FAILPOINTS();
  // The headline differential run: every wire fault site armed with
  // seeded probabilities, 30 batches, and the contract checked on each —
  // a reply is bit-for-bit the in-process engine's answer, or the call
  // fails with a typed Status. The CI chaos job runs this under ASan with
  // several DIFFC_CHAOS_SEED values.
  const std::uint64_t seed = ChaosSeed();
  const int n = 8;
  const int kBatches = 30;
  Rng rng(seed);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 25);
  std::vector<std::vector<DifferentialConstraint>> batches(kBatches);
  for (auto& goals : batches) {
    const int count = static_cast<int>(rng.UniformInt(3, 10));
    for (int i = 0; i < count; ++i) goals.push_back(testing::RandomConstraint(rng, n));
  }

  // Local expectations computed before any fail point is armed (the
  // engine has its own failpoint sites; this suite injects only wire
  // faults, but arming order keeps that true by construction).
  ImplicationEngine local;
  Result<std::shared_ptr<const PreparedPremises>> prepared = local.Prepare(n, premises);
  ASSERT_TRUE(prepared.ok());
  std::vector<BatchOutcome> expected;
  expected.reserve(kBatches);
  for (const auto& goals : batches) {
    Result<BatchOutcome> out = local.CheckBatch(*prepared, goals);
    ASSERT_TRUE(out.ok());
    expected.push_back(std::move(*out));
  }

  DiffcdServer server(ServerOptions{.listen_address = "127.0.0.1:0"});
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.retry.max_attempts = 8;
  copts.retry.initial_backoff = std::chrono::milliseconds(2);
  copts.retry.max_backoff = std::chrono::milliseconds(50);
  copts.breaker.open_duration = std::chrono::milliseconds(40);
  copts.seed = seed + 7;
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address(), copts);
  ASSERT_TRUE(client.ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(n, premises);
  ASSERT_TRUE(registered.ok());

  // Every wire-layer fault site, seeded so a CI failure reproduces with
  // the printed seed. The net/* sites fire on client and server sockets
  // alike — both directions of every exchange are in play.
  failpoint::Arm("net/send-torn", failpoint::Spec::Probability(0.05, seed + 11));
  failpoint::Arm("net/recv-reset", failpoint::Spec::Probability(0.05, seed + 12));
  failpoint::Arm("wire/decode-batch-result", failpoint::Spec::Probability(0.05, seed + 13));
  failpoint::Arm("wire/decode-register-ok", failpoint::Spec::Probability(0.05, seed + 14));
  failpoint::Arm("server/delay-reply", failpoint::Spec::Probability(0.10, seed + 15));
  failpoint::Arm("server/reset-mid-reply", failpoint::Spec::Probability(0.05, seed + 16));
  failpoint::Arm("server/abort-session", failpoint::Spec::Probability(0.03, seed + 17));
  failpoint::Arm("server/shed", failpoint::Spec::Probability(0.05, seed + 18));

  int completed = 0;
  int typed_failures = 0;
  for (int b = 0; b < kBatches; ++b) {
    Result<BatchResultMsg> wire = client->CheckBatch(registered->handle, n, batches[b]);
    if (!wire.ok()) {
      // Typed failure: a real StatusCode, never a hang or a garbled frame
      // surfaced as data.
      EXPECT_NE(wire.status().code(), StatusCode::kOk) << "seed " << seed;
      ++typed_failures;
      continue;
    }
    ++completed;
    ASSERT_EQ(wire->results.size(), batches[b].size()) << "seed " << seed << " batch " << b;
    for (std::size_t i = 0; i < batches[b].size(); ++i) {
      const EngineQueryResult& e = expected[b].results[i];
      EXPECT_EQ(wire->results[i].verdict, static_cast<std::uint8_t>(e.outcome.verdict))
          << "seed " << seed << " batch " << b << " goal " << i;
      EXPECT_EQ(wire->results[i].has_counterexample, e.outcome.counterexample.has_value())
          << "seed " << seed << " batch " << b << " goal " << i;
    }
  }
  failpoint::DisarmAll();

  // The schedule is noisy but survivable: most batches must get through.
  EXPECT_GE(completed, kBatches / 2)
      << "seed " << seed << ": " << typed_failures << " typed failures";

  // And the service is intact afterwards: a clean call works, the server
  // drains gracefully, and the sessions the chaos killed were reaped.
  Result<std::uint64_t> echoed = client->Ping(99);
  EXPECT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_TRUE(WaitFor([&] { return server.sessions_active() <= 1; }));
  EXPECT_TRUE(server.Shutdown().ok());
}

}  // namespace
}  // namespace diffc::net
