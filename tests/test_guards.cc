// Resource-guard behaviors: every exponential algorithm in the library is
// guarded and must fail with ResourceExhausted — never hang or overflow —
// when pushed past its limit, and the guards must not trigger on sized
// work below the limit.

#include <gtest/gtest.h>

#include "core/atoms.h"
#include "core/implication.h"
#include "core/inference.h"
#include "fis/disjunctive.h"
#include "lattice/decomposition.h"
#include "lattice/hitting_set.h"
#include "lattice/mobius.h"
#include "prop/cdcl.h"
#include "prop/dpll.h"
#include "prop/minterm.h"
#include "test_helpers.h"

namespace diffc {
namespace {

TEST(GuardTest, DecompositionEnumeration) {
  SetFamily fam({ItemSet{0}});
  EXPECT_EQ(EnumerateDecomposition(30, ItemSet(), fam, /*max_free_bits=*/24)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(EnumerateDecomposition(30, ItemSet(FullMask(28)), fam, 24).ok());
  EXPECT_EQ(CountDecomposition(30, ItemSet(), fam, 24).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(GuardTest, MinimalWitnessResultCap) {
  // n singleton-ish members of two elements each: 2^k minimal transversal
  // candidates; cap at 4.
  std::vector<ItemSet> members;
  for (int i = 0; i < 8; ++i) members.push_back(ItemSet{2 * i, 2 * i + 1});
  Result<std::vector<ItemSet>> r = MinimalWitnessSets(SetFamily(members), 4);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(GuardTest, ExhaustiveImplication) {
  Universe u = Universe::Letters(30);
  DifferentialConstraint goal(ItemSet(), SetFamily({ItemSet{0}}));
  EXPECT_EQ(CheckImplicationExhaustive(30, {}, goal, 24).status().code(),
            StatusCode::kResourceExhausted);
  // The SAT path has no such limit.
  EXPECT_TRUE(CheckImplicationSat(30, {}, goal).ok());
}

TEST(GuardTest, AtomsInheritEnumerationGuard) {
  DifferentialConstraint c(ItemSet(), SetFamily({ItemSet{0}}));
  EXPECT_EQ(Atoms(30, c).status().code(), StatusCode::kResourceExhausted);
}

TEST(GuardTest, MinsetEnumeration) {
  prop::FormulaPtr v = prop::Formula::Var(0);
  EXPECT_EQ(prop::Minset(*v, 30, 24).status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(prop::Entails({}, *v, 30, 24).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(GuardTest, DpllDecisionBudget) {
  // A hard instance with a 2-decision budget must report exhaustion, not
  // a wrong answer.
  prop::Cnf cnf;
  const int n = 12;
  cnf.num_vars = n;
  Rng rng(3);
  for (int i = 0; i < n * 5; ++i) {
    prop::Clause clause;
    for (int j = 0; j < 3; ++j) {
      int var = static_cast<int>(rng.UniformInt(0, n - 1));
      clause.push_back(rng.Bernoulli(0.5) ? var + 1 : -(var + 1));
    }
    cnf.AddClause(std::move(clause));
  }
  prop::DpllSolver tiny(/*max_decisions=*/2);
  Result<prop::SatResult> r = tiny.Solve(cnf);
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(GuardTest, CdclConflictBudget) {
  // Pigeonhole needs many conflicts; a 3-conflict budget must exhaust.
  const int holes = 5;
  const int pigeons = holes + 1;
  prop::Cnf cnf;
  cnf.num_vars = pigeons * holes;
  auto var = [&](int p, int h) { return p * holes + h + 1; };
  for (int p = 0; p < pigeons; ++p) {
    prop::Clause clause;
    for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
    cnf.AddClause(std::move(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.AddClause({-var(p1, h), -var(p2, h)});
      }
    }
  }
  prop::CdclSolver tiny(/*max_conflicts=*/3);
  EXPECT_EQ(tiny.Solve(cnf).status().code(), StatusCode::kResourceExhausted);
}

TEST(GuardTest, DisjunctiveItemsetSize) {
  BasketList b = *BasketList::Make(30, {FullMask(30)});
  EXPECT_EQ(IsDisjunctiveItemset(b, ItemSet(FullMask(30)), 2).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(GuardTest, RuleMiningUniverse) {
  BasketList b = *BasketList::Make(30, {});
  EXPECT_EQ(MineSingletonRules(b, 2, 2).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(GuardTest, DeriveBudgetNeverWrongAnswer) {
  // With a generous-enough budget the derivation succeeds; with budget 1
  // it either proves trivial goals or exhausts — never mis-derives.
  Rng rng(7);
  const int n = 5;
  for (int iter = 0; iter < 10; ++iter) {
    ConstraintSet givens = testing::RandomConstraintSet(rng, n, 2);
    DifferentialConstraint goal = testing::RandomConstraint(rng, n);
    DeriveOptions one;
    one.max_steps = 1;
    Result<Derivation> d = DeriveImplied(n, givens, goal, one);
    if (d.ok()) {
      EXPECT_TRUE(ValidateDerivation(n, givens, *d).ok());
      EXPECT_EQ(d->conclusion(), goal);
    } else {
      EXPECT_TRUE(d.status().code() == StatusCode::kNotFound ||
                  d.status().code() == StatusCode::kResourceExhausted)
          << d.status().ToString();
    }
  }
}

TEST(GuardTest, SetFunctionSizeCap) {
  EXPECT_EQ(SetFunction<double>::Make(kMaxSetFunctionBits + 1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace diffc
