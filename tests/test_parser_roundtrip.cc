// Parser/printer round-trip property: for seeded-random constraints c over
// single-character-named universes, Parse(Print(c)) == c — the printed form
// is a faithful, re-readable serialization (the engine's golden files and
// examples depend on it). Complements the hand-picked cases in
// test_parser.cc with bulk randomized coverage.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/constraint.h"
#include "core/parser.h"
#include "lattice/universe.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc {
namespace {

TEST(ParserRoundTripTest, RandomConstraintsSurviveParsePrint) {
  Rng rng(20260806);
  // Single-character names only (n <= 26): the concatenated-set syntax the
  // printer emits is exactly what the parser accepts.
  for (int n = 1; n <= 26; n += 5) {
    Universe u = Universe::Letters(n);
    for (int i = 0; i < 200; ++i) {
      DifferentialConstraint c = testing::RandomConstraint(rng, n);
      const std::string text = c.ToString(u);
      Result<DifferentialConstraint> parsed = ParseConstraint(u, text);
      ASSERT_TRUE(parsed.ok()) << "n=" << n << " text=\"" << text
                               << "\": " << parsed.status().ToString();
      EXPECT_EQ(*parsed, c) << "n=" << n << " text=\"" << text << "\" reprinted \""
                            << parsed->ToString(u) << "\"";
    }
  }
}

TEST(ParserRoundTripTest, EdgeShapedConstraintsSurvive) {
  Universe u = Universe::Letters(8);
  std::vector<DifferentialConstraint> cases{
      DifferentialConstraint(ItemSet(), SetFamily()),            // 0 -> {}
      DifferentialConstraint(ItemSet{0, 7}, SetFamily()),        // AH -> {}
      DifferentialConstraint(ItemSet(), SetFamily({ItemSet()})),  // 0 -> {0}
      DifferentialConstraint(ItemSet{1}, SetFamily({ItemSet{1}})),
      DifferentialConstraint(ItemSet(FullMask(8)), SetFamily({ItemSet(FullMask(8))})),
  };
  for (const DifferentialConstraint& c : cases) {
    Result<DifferentialConstraint> parsed = ParseConstraint(u, c.ToString(u));
    ASSERT_TRUE(parsed.ok()) << c.ToString(u) << ": " << parsed.status().ToString();
    EXPECT_EQ(*parsed, c) << c.ToString(u);
  }
}

TEST(ParserRoundTripTest, RandomConstraintSetsSurviveParsePrint) {
  Rng rng(77);
  Universe u = Universe::Letters(12);
  for (int i = 0; i < 100; ++i) {
    ConstraintSet set = testing::RandomConstraintSet(rng, 12, 1 + i % 7);
    const std::string text = ConstraintSetToString(set, u);
    Result<ConstraintSet> parsed = ParseConstraintSet(u, text);
    ASSERT_TRUE(parsed.ok()) << "text=\"" << text << "\": " << parsed.status().ToString();
    EXPECT_EQ(*parsed, set) << "text=\"" << text << "\"";
  }
}

}  // namespace
}  // namespace diffc
