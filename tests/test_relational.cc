#include <gtest/gtest.h>

#include <set>

#include "core/function_ops.h"
#include "core/implication.h"
#include "core/parser.h"
#include "relational/boolean_dependency.h"
#include "relational/distribution.h"
#include "relational/fd.h"
#include "relational/relation.h"
#include "relational/simpson.h"
#include "test_helpers.h"

namespace diffc {
namespace {

Relation SampleRelation() {
  // Schema (A, B, C): A determines B; C free.
  return *Relation::Make(3, {
                                {1, 10, 0},
                                {1, 10, 1},
                                {2, 20, 0},
                                {3, 20, 1},
                            });
}

Relation RandomRelation(Rng& rng, int attrs, int tuples, int domain) {
  std::vector<std::vector<int>> rows;
  std::set<std::vector<int>> seen;
  while (static_cast<int>(rows.size()) < tuples) {
    std::vector<int> row(attrs);
    for (int a = 0; a < attrs; ++a) row[a] = static_cast<int>(rng.UniformInt(0, domain - 1));
    if (seen.insert(row).second) rows.push_back(row);
  }
  return *Relation::Make(attrs, rows);
}

// ----------------------------------------------------------------- relation

TEST(RelationTest, MakeValidates) {
  EXPECT_TRUE(Relation::Make(2, {{1, 2}}).ok());
  EXPECT_FALSE(Relation::Make(2, {{1}}).ok());
  EXPECT_FALSE(Relation::Make(2, {{1, 2}, {1, 2}}).ok());  // Duplicate.
  EXPECT_FALSE(Relation::Make(-1, {}).ok());
}

TEST(RelationTest, AgreeOnAndProject) {
  Relation r = SampleRelation();
  EXPECT_TRUE(r.AgreeOn(0, 1, ItemSet{0, 1}));
  EXPECT_FALSE(r.AgreeOn(0, 1, ItemSet{2}));
  EXPECT_TRUE(r.AgreeOn(0, 3, ItemSet()));  // Empty projection agrees.
  EXPECT_EQ(r.Project(2, ItemSet{0, 2}), (std::vector<int>{2, 0}));
}

// ------------------------------------------------------------- distribution

TEST(DistributionTest, UniformSumsToOne) {
  Distribution p = *Distribution::Uniform(4);
  Rational sum;
  for (int i = 0; i < 4; ++i) sum += p.weight(i);
  EXPECT_EQ(sum, Rational(1));
}

TEST(DistributionTest, Validation) {
  EXPECT_FALSE(Distribution::Make({Rational(1, 2)}).ok());          // Sum != 1.
  EXPECT_FALSE(Distribution::Make({Rational(0), Rational(1)}).ok());  // Zero weight.
  EXPECT_FALSE(Distribution::Make({Rational(-1, 2), Rational(3, 2)}).ok());
  EXPECT_TRUE(Distribution::Make({Rational(1, 4), Rational(3, 4)}).ok());
  EXPECT_FALSE(Distribution::Uniform(0).ok());
}

// ------------------------------------------------------------------ Simpson

TEST(SimpsonTest, EmptyProjectionIsOne) {
  // simpson(∅) = (Σp)^2 = 1 for any distribution.
  Relation r = SampleRelation();
  SetFunction<Rational> f = *SimpsonFunction(r, *Distribution::Uniform(r.size()));
  EXPECT_EQ(f.at(Mask{0}), Rational(1));
}

TEST(SimpsonTest, FullProjectionIsSumOfSquares) {
  Relation r = SampleRelation();
  SetFunction<Rational> f = *SimpsonFunction(r, *Distribution::Uniform(r.size()));
  EXPECT_EQ(f.at(FullMask(3)), Rational(4, 16));  // 4 · (1/4)^2.
}

TEST(SimpsonTest, GroupedValues) {
  Relation r = SampleRelation();
  SetFunction<Rational> f = *SimpsonFunction(r, *Distribution::Uniform(r.size()));
  // On A: groups {1,1},{2},{3} → (1/2)^2 + (1/4)^2 + (1/4)^2 = 6/16.
  EXPECT_EQ(f.at(Mask{0b001}), Rational(6, 16));
  // On B: groups {10,10},{20,20} → 2 · (1/2)^2 = 1/2.
  EXPECT_EQ(f.at(Mask{0b010}), Rational(1, 2));
}

TEST(SimpsonTest, RequiresNonemptyAndMatchingDistribution) {
  EXPECT_FALSE(SimpsonFunction(*Relation::Make(2, {}), *Distribution::Uniform(1)).ok());
  EXPECT_FALSE(SimpsonFunction(SampleRelation(), *Distribution::Uniform(3)).ok());
}

// Proposition 7.2: the density of the Simpson function equals the direct
// pair-sum formula, and is nonnegative (Simpson functions are frequency
// functions).
class Prop72Property : public ::testing::TestWithParam<int> {};

TEST_P(Prop72Property, DensityMatchesDirectFormulaAndIsNonnegative) {
  Rng rng(GetParam() * 11 + 1);
  for (int iter = 0; iter < 6; ++iter) {
    Relation r = RandomRelation(rng, 4, static_cast<int>(rng.UniformInt(1, 8)), 3);
    // Random positive rational weights summing to 1 (denominator = total).
    std::vector<Rational> weights;
    std::int64_t total = 0;
    std::vector<std::int64_t> numerators;
    for (int i = 0; i < r.size(); ++i) {
      numerators.push_back(rng.UniformInt(1, 5));
      total += numerators.back();
    }
    for (std::int64_t num : numerators) weights.push_back(Rational(num, total));
    Distribution p = *Distribution::Make(weights);

    SetFunction<Rational> f = *SimpsonFunction(r, p);
    SetFunction<Rational> density = Density(f);
    SetFunction<Rational> direct = *SimpsonDensityDirect(r, p);
    EXPECT_EQ(density, direct);
    for (Mask m = 0; m < f.size(); ++m) EXPECT_FALSE(density.at(m).IsNegative());
    EXPECT_TRUE(IsFrequencyFunction(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop72Property, ::testing::Range(1, 9));

// ------------------------------------------------------ boolean dependencies

TEST(BooleanDependencyTest, FdStyle) {
  Relation r = SampleRelation();
  Universe u = Universe::Letters(3);
  // A -> B holds; B -> A does not (20 maps to both 2 and 3).
  EXPECT_TRUE(SatisfiesBooleanDependency(r, *ParseConstraint(u, "A -> {B}")));
  EXPECT_FALSE(SatisfiesBooleanDependency(r, *ParseConstraint(u, "B -> {A}")));
  EXPECT_TRUE(SatisfiesFdInRelation(r, ItemSet{0}, ItemSet{1}));
  EXPECT_FALSE(SatisfiesFdInRelation(r, ItemSet{1}, ItemSet{0}));
}

TEST(BooleanDependencyTest, DisjunctiveRhs) {
  Relation r = SampleRelation();
  Universe u = Universe::Letters(3);
  // B -> {A, C}: tuples agreeing on B agree on A or on C.
  // Tuples 2,3 agree on B(20) but differ on A(2,3) and C(0,1): violated.
  EXPECT_FALSE(SatisfiesBooleanDependency(r, *ParseConstraint(u, "B -> {A, C}")));
  // Trivial dependency always holds.
  EXPECT_TRUE(SatisfiesBooleanDependency(r, *ParseConstraint(u, "AB -> {A}")));
  // Empty-family dependency: "∀t,t'" includes t = t', so a nonempty
  // relation never satisfies X ⇒boolean {} — matching the Simpson side,
  // whose density at S is always positive.
  EXPECT_FALSE(SatisfiesBooleanDependency(r, *ParseConstraint(u, "B -> {}")));
  EXPECT_FALSE(SatisfiesBooleanDependency(r, *ParseConstraint(u, "ABC -> {}")));
  EXPECT_TRUE(
      SatisfiesBooleanDependency(*Relation::Make(3, {}), *ParseConstraint(u, "B -> {}")));
}

// Proposition 7.3: simpson_{r,p} satisfies X -> Y iff r satisfies
// X ⇒boolean Y — exactly, over rationals.
class Prop73Property : public ::testing::TestWithParam<int> {};

TEST_P(Prop73Property, SimpsonIffBooleanDependency) {
  Rng rng(GetParam() * 13 + 3);
  const int n = 4;
  for (int iter = 0; iter < 5; ++iter) {
    Relation r = RandomRelation(rng, n, static_cast<int>(rng.UniformInt(2, 7)), 2);
    Distribution p = *Distribution::Uniform(r.size());
    SetFunction<Rational> simpson = *SimpsonFunction(r, p);
    SetFunction<Rational> density = Density(simpson);
    for (int c_iter = 0; c_iter < 25; ++c_iter) {
      DifferentialConstraint c = testing::RandomConstraint(
          rng, n, 0.3, static_cast<int>(rng.UniformInt(0, 3)), 0.35);
      EXPECT_EQ(SatisfiesWithDensity(density, c), SatisfiesBooleanDependency(r, c))
          << c.ToString(Universe::Letters(n));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop73Property, ::testing::Range(1, 11));

// --------------------------------------------------------------------- FDs

TEST(FdTest, Closure) {
  std::vector<Fd> fds{{ItemSet{0}, ItemSet{1}}, {ItemSet{1}, ItemSet{2, 3}}};
  EXPECT_EQ(FdClosure(ItemSet{0}, fds), (ItemSet{0, 1, 2, 3}));
  EXPECT_EQ(FdClosure(ItemSet{2}, fds), (ItemSet{2}));
}

TEST(FdTest, Implies) {
  std::vector<Fd> fds{{ItemSet{0}, ItemSet{1}}, {ItemSet{1}, ItemSet{2}}};
  EXPECT_TRUE(FdImplies(fds, {ItemSet{0}, ItemSet{2}}));
  EXPECT_TRUE(FdImplies(fds, {ItemSet{0, 3}, ItemSet{1, 2}}));
  EXPECT_FALSE(FdImplies(fds, {ItemSet{2}, ItemSet{0}}));
  EXPECT_TRUE(FdImplies({}, {ItemSet{0, 1}, ItemSet{0}}));  // Reflexivity.
}

TEST(FdTest, MinimalCoverSingletonRhs) {
  std::vector<Fd> fds{{ItemSet{0}, ItemSet{1, 2}}};
  std::vector<Fd> cover = FdMinimalCover(fds);
  ASSERT_EQ(cover.size(), 2u);
  for (const Fd& fd : cover) EXPECT_EQ(fd.rhs.size(), 1);
}

TEST(FdTest, MinimalCoverDropsExtraneousLhs) {
  // AB -> C with A -> B present: B is extraneous? A->B, AB->C ⇒ A->C.
  std::vector<Fd> fds{{ItemSet{0}, ItemSet{1}}, {ItemSet{0, 1}, ItemSet{2}}};
  std::vector<Fd> cover = FdMinimalCover(fds);
  bool has_a_to_c = false;
  for (const Fd& fd : cover) {
    if (fd.lhs == ItemSet{0} && fd.rhs == ItemSet{2}) has_a_to_c = true;
    EXPECT_LE(fd.lhs.size(), 1);
  }
  EXPECT_TRUE(has_a_to_c);
}

TEST(FdTest, MinimalCoverEquivalent) {
  Rng rng(71);
  const int n = 5;
  for (int iter = 0; iter < 15; ++iter) {
    std::vector<Fd> fds;
    int count = static_cast<int>(rng.UniformInt(1, 6));
    for (int i = 0; i < count; ++i) {
      Mask lhs = rng.RandomMask(n, 0.3);
      Mask rhs = rng.RandomMask(n, 0.3);
      if (rhs == 0) rhs = Mask{1} << rng.UniformInt(0, n - 1);
      fds.push_back({ItemSet(lhs), ItemSet(rhs)});
    }
    std::vector<Fd> cover = FdMinimalCover(fds);
    // Same closures everywhere ⇒ equivalent.
    for (Mask m = 0; m < (Mask{1} << n); ++m) {
      EXPECT_EQ(FdClosure(ItemSet(m), fds), FdClosure(ItemSet(m), cover)) << m;
    }
  }
}

// The paper's §8 equivalence: FD implication (via closure) coincides with
// differential-constraint implication for singleton-member constraints,
// and with FD satisfaction in relations (soundness spot-check).
TEST(FdTest, AgreesWithDifferentialImplication) {
  Rng rng(73);
  const int n = 5;
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<Fd> fds;
    ConstraintSet constraints;
    int count = static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < count; ++i) {
      Mask lhs = rng.RandomMask(n, 0.3);
      Mask rhs = Mask{1} << rng.UniformInt(0, n - 1);
      fds.push_back({ItemSet(lhs), ItemSet(rhs)});
      constraints.push_back(
          DifferentialConstraint(ItemSet(lhs), SetFamily({ItemSet(rhs)})));
    }
    Mask glhs = rng.RandomMask(n, 0.3);
    Mask grhs = Mask{1} << rng.UniformInt(0, n - 1);
    Fd goal_fd{ItemSet(glhs), ItemSet(grhs)};
    DifferentialConstraint goal(ItemSet(glhs), SetFamily({ItemSet(grhs)}));
    EXPECT_EQ(FdImplies(fds, goal_fd),
              CheckImplicationSat(n, constraints, goal)->implied);
  }
}

}  // namespace
}  // namespace diffc
