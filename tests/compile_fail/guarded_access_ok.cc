// Positive half of the thread-safety compile-fail pair: identical to
// guarded_access_bad.cc except the guarded member is accessed under the
// lock. This must compile cleanly under -Werror=thread-safety, proving
// that the rejection of the bad twin comes from the analysis and not from
// an unrelated compile error in the fixture.
#include "util/mutex.h"
#include "util/thread_annotations.h"

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    diffc::MutexLock lock(&mu_);
    value_ += 1;
  }

 private:
  diffc::Mutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Increment();
  return 0;
}
