// Negative half of the thread-safety compile-fail pair: reads and writes a
// GUARDED_BY member without holding its mutex. Clang's -Wthread-safety must
// reject this translation unit; ctest runs it with WILL_FAIL so a compiler
// that silently accepts the race breaks the suite.
#include "util/mutex.h"
#include "util/thread_annotations.h"

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    value_ += 1;  // BAD: mu_ is not held.
  }

 private:
  diffc::Mutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Increment();
  return 0;
}
