// End-to-end tests of the diffcd service: a real server on a real socket
// (TCP ephemeral and Unix), driven through DiffcClient — round-trip
// equivalence against the in-process engine, typed error frames,
// admission control, handle lifecycle, graceful drain under load, and the
// HTTP /metrics endpoint. Unit coverage for PreparedHandleTable and
// AdmissionController rides along.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/implication.h"
#include "engine/handle_table.h"
#include "engine/implication_engine.h"
#include "net/admission.h"
#include "net/client.h"
#include "net/handler_registry.h"
#include "net/server.h"
#include "obs/trace_store.h"
#include "prop/tautology.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc::net {
namespace {

ServerOptions LoopbackOptions() {
  ServerOptions options;
  options.listen_address = "127.0.0.1:0";
  return options;
}

// Polls until `pred` holds or ~2 s pass; the service's async transitions
// (session teardown, batch start) have no synchronous hook by design.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 1000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// ------------------------------------------------------ registry coverage

TEST(WireHandlerRegistryTest, EveryRequestTypeHasARegisteredHandler) {
  // The runtime mirror of the wire-registry lint rule: enum, name table,
  // and handler registration must agree.
  const WireRequest all[] = {WireRequest::kPing, WireRequest::kRegisterPremises,
                             WireRequest::kCheckBatch, WireRequest::kRelease};
  for (WireRequest t : all) {
    const WireHandlerImpl* handler =
        WireHandlerRegistry::Global().Find(static_cast<std::uint8_t>(t));
    ASSERT_NE(handler, nullptr) << WireRequestName(t);
    EXPECT_EQ(handler->id(), t);
    EXPECT_STREQ(handler->name(), WireRequestName(t));
  }
  EXPECT_EQ(WireHandlerRegistry::Global().Snapshot().size(), 4u);
}

// ------------------------------------------------------------ handle table

std::shared_ptr<const PreparedPremises> SomePrepared(int n) {
  ImplicationEngine engine;
  Result<std::shared_ptr<const PreparedPremises>> prepared = engine.Prepare(n, {});
  EXPECT_TRUE(prepared.ok());
  return *prepared;
}

TEST(PreparedHandleTableTest, RegisterLookupRelease) {
  PreparedHandleTable table;
  auto prepared = SomePrepared(4);
  Result<std::uint64_t> handle = table.Register(1, prepared);
  ASSERT_TRUE(handle.ok());
  EXPECT_NE(*handle, 0u);
  EXPECT_EQ(table.size(), 1u);

  Result<std::shared_ptr<const PreparedPremises>> found = table.Lookup(*handle);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->get(), prepared.get());

  EXPECT_EQ(table.Lookup(*handle + 100).status().code(), StatusCode::kNotFound);
  // Wrong owner cannot release someone else's handle.
  EXPECT_EQ(table.Release(*handle, 2).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(table.Release(*handle, 1).ok());
  EXPECT_EQ(table.Release(*handle, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(table.size(), 0u);
}

TEST(PreparedHandleTableTest, QuotasAndOwnerTeardown) {
  PreparedHandleTable::Options options;
  options.max_handles_per_owner = 2;
  options.max_total_handles = 3;
  PreparedHandleTable table(options);
  auto prepared = SomePrepared(4);

  ASSERT_TRUE(table.Register(1, prepared).ok());
  ASSERT_TRUE(table.Register(1, prepared).ok());
  // Per-owner quota.
  EXPECT_EQ(table.Register(1, prepared).status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(table.Register(2, prepared).ok());
  // Process-wide quota.
  EXPECT_EQ(table.Register(3, prepared).status().code(), StatusCode::kResourceExhausted);

  EXPECT_EQ(table.CountForOwner(1), 2u);
  EXPECT_EQ(table.ReleaseAllForOwner(1), 2u);
  EXPECT_EQ(table.CountForOwner(1), 0u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(PreparedHandleTableTest, HandleIdsAreNeverReused) {
  PreparedHandleTable table;
  auto prepared = SomePrepared(4);
  Result<std::uint64_t> first = table.Register(1, prepared);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(table.Release(*first, 1).ok());
  Result<std::uint64_t> second = table.Register(1, prepared);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*first, *second);
}

// --------------------------------------------------------------- admission

TEST(AdmissionControllerTest, SlotsAreBoundedAndRaii) {
  AdmissionController::Options options;
  options.max_inflight_batches = 2;
  AdmissionController ctrl(options);

  Result<AdmissionController::Slot> a = ctrl.Admit();
  Result<AdmissionController::Slot> b = ctrl.Admit();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ctrl.inflight(), 2u);
  EXPECT_EQ(ctrl.Admit().status().code(), StatusCode::kResourceExhausted);

  a->Reset();
  EXPECT_EQ(ctrl.inflight(), 1u);
  Result<AdmissionController::Slot> c = ctrl.Admit();
  EXPECT_TRUE(c.ok());

  // Move transfers ownership; the moved-from slot releases nothing.
  AdmissionController::Slot moved = std::move(*c);
  EXPECT_TRUE(moved.held());
  EXPECT_EQ(ctrl.inflight(), 2u);
}

TEST(AdmissionControllerTest, RejectionsDoNotLeakSlots) {
  // The rejection path must not consume capacity: rejected requests took
  // nothing, so they release nothing.
  AdmissionController::Options options;
  options.max_inflight_batches = 1;
  AdmissionController ctrl(options);

  Result<AdmissionController::Slot> held = ctrl.Admit();
  ASSERT_TRUE(held.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ctrl.Admit().status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(ctrl.inflight(), 1u);  // Rejections charged nothing.
  held->Reset();
  EXPECT_EQ(ctrl.inflight(), 0u);
  EXPECT_TRUE(ctrl.Admit().ok());
}

TEST(AdmissionControllerTest, ConcurrentContentionNeverExceedsCapacity) {
  AdmissionController::Options options;
  options.max_inflight_batches = 4;
  AdmissionController ctrl(options);

  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        Result<AdmissionController::Slot> slot = ctrl.Admit();
        if (!slot.ok()) {
          ASSERT_EQ(slot.status().code(), StatusCode::kResourceExhausted);
          continue;
        }
        const int now = concurrent.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        ++admitted;
        std::this_thread::sleep_for(std::chrono::microseconds(20));
        concurrent.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_LE(peak.load(), 4);
  EXPECT_GT(admitted.load(), 0);
  EXPECT_EQ(ctrl.inflight(), 0u);  // Every admitted slot returned exactly once.
}

TEST(AdmissionControllerTest, ShedWatermarksAndLatencyEwma) {
  AdmissionController::Options options;
  options.max_inflight_batches = 8;
  options.shed_watermark = 2;
  options.latency_watermark = std::chrono::milliseconds(50);
  options.min_retry_after = std::chrono::milliseconds(10);
  options.max_retry_after = std::chrono::milliseconds(100);
  AdmissionController ctrl(options);

  // Below both watermarks: no shedding, and the hint floors at the min.
  EXPECT_FALSE(ctrl.ShouldShed());
  EXPECT_EQ(ctrl.RetryAfterHint(), std::chrono::milliseconds(10));

  // In-flight watermark: trips at `shed_watermark` held slots even though
  // the hard cap still has headroom.
  Result<AdmissionController::Slot> a = ctrl.Admit();
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(ctrl.ShouldShed());
  Result<AdmissionController::Slot> b = ctrl.Admit();
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(ctrl.ShouldShed());

  // Latency watermark: a slow batch pushes the EWMA over 50 ms, so the
  // controller keeps shedding after the slots drain — and the hint tracks
  // the observed latency (clamped to max_retry_after).
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  a->Reset();
  b->Reset();
  EXPECT_EQ(ctrl.inflight(), 0u);
  EXPECT_GT(ctrl.ewma_latency_ms(), 50.0);
  EXPECT_TRUE(ctrl.ShouldShed());
  EXPECT_GE(ctrl.RetryAfterHint(), std::chrono::milliseconds(10));
  EXPECT_LE(ctrl.RetryAfterHint(), std::chrono::milliseconds(100));
}

// ------------------------------------------------------------- end to end

TEST(DiffcdServiceTest, PingRoundTrip) {
  DiffcdServer server(LoopbackOptions());
  ASSERT_TRUE(server.Start().ok());

  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok());
  Result<std::uint64_t> echoed = client->Ping(0xFEEDFACEull);
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(*echoed, 0xFEEDFACEull);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, HundredQueryRoundTripMatchesInProcessEngine) {
  // The acceptance bar: 100+ queries over the wire, bit-for-bit the same
  // verdicts as the in-process prepare/plan/execute path, and every
  // counterexample genuinely refutes its goal.
  const int n = 10;
  Rng rng(20260809);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 40);
  std::vector<DifferentialConstraint> goals;
  for (int i = 0; i < 120; ++i) goals.push_back(testing::RandomConstraint(rng, n));

  ImplicationEngine local;
  Result<std::shared_ptr<const PreparedPremises>> prepared = local.Prepare(n, premises);
  ASSERT_TRUE(prepared.ok());
  Result<BatchOutcome> expected = local.CheckBatch(*prepared, goals);
  ASSERT_TRUE(expected.ok());

  DiffcdServer server(LoopbackOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(n, premises);
  ASSERT_TRUE(registered.ok());
  EXPECT_EQ(registered->canonical_constraints, (*prepared)->constraints().size());
  Result<BatchResultMsg> wire = client->CheckBatch(registered->handle, n, goals);
  ASSERT_TRUE(wire.ok());

  ASSERT_EQ(wire->results.size(), goals.size());
  ASSERT_EQ(expected->results.size(), goals.size());
  for (std::size_t i = 0; i < goals.size(); ++i) {
    const EngineQueryResult& e = expected->results[i];
    const WireQueryResult& w = wire->results[i];
    EXPECT_EQ(w.status_code, e.status.code()) << "goal " << i;
    EXPECT_EQ(w.verdict, static_cast<std::uint8_t>(e.outcome.verdict)) << "goal " << i;
    EXPECT_EQ(w.has_counterexample, e.outcome.counterexample.has_value()) << "goal " << i;
    if (w.has_counterexample) {
      // The wire witness must actually refute: inside the goal's lattice,
      // outside the premises'.
      ItemSet u(w.counterexample);
      EXPECT_TRUE(InConstraintLattice({goals[i]}, u)) << "goal " << i;
      EXPECT_FALSE(InConstraintLattice(premises, u)) << "goal " << i;
    }
  }
  EXPECT_EQ(wire->stats.queries, goals.size());
  EXPECT_EQ(wire->stats.implied, expected->stats.implied);
  EXPECT_EQ(wire->stats.not_implied, expected->stats.not_implied);

  EXPECT_TRUE(client->Release(registered->handle).ok());
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, UnixSocketRoundTrip) {
  const std::string path = "/tmp/diffcd_test_" + std::to_string(::getpid()) + ".sock";
  ServerOptions options;
  options.listen_address = "unix:" + path;
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.bound_address(), "unix:" + path);

  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok());
  Result<RegisterOkMsg> registered =
      client->RegisterPremises(3, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  ASSERT_TRUE(registered.ok());
  Result<BatchResultMsg> batch = client->CheckBatch(
      registered->handle, 3, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->results.size(), 1u);
  EXPECT_EQ(batch->results[0].verdict, 1);  // A premise implies itself.
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, TypedErrorFramesCarryTheOriginalStatusCode) {
  ServerOptions options = LoopbackOptions();
  options.max_handles_per_session = 2;
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok());

  // Unknown handle -> NotFound.
  Result<BatchResultMsg> missing = client->CheckBatch(
      424242, 3, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Universe mismatch -> InvalidArgument.
  Result<RegisterOkMsg> registered = client->RegisterPremises(3, {});
  ASSERT_TRUE(registered.ok());
  Result<BatchResultMsg> mismatched = client->CheckBatch(
      registered->handle, 5, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);

  // Handle quota -> ResourceExhausted (admission's second axis).
  ASSERT_TRUE(client->RegisterPremises(3, {}).ok());
  Result<RegisterOkMsg> over_quota = client->RegisterPremises(3, {});
  EXPECT_EQ(over_quota.status().code(), StatusCode::kResourceExhausted);

  // Releasing an unknown handle -> NotFound; the connection survives all
  // of these rejections.
  EXPECT_EQ(client->Release(99999).code(), StatusCode::kNotFound);
  Result<std::uint64_t> echoed = client->Ping(7);
  EXPECT_TRUE(echoed.ok());
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, AdmissionRejectsWhenNoBatchSlots) {
  ServerOptions options = LoopbackOptions();
  options.max_inflight_batches = 0;  // Deterministic: every batch rejected.
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(3, {});
  ASSERT_TRUE(registered.ok());
  Result<BatchResultMsg> rejected = client->CheckBatch(
      registered->handle, 3, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // Rejected, not queued: the connection is still serviceable.
  EXPECT_TRUE(client->Ping(1).ok());
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, ShedRepliesAreHonoredByClientBackoff) {
  // Overload shedding end-to-end: with the soft watermark tripped the
  // server answers OVERLOADED (not an error, not a queue), and the
  // client's retry schedule backs off until capacity returns.
  ServerOptions options = LoopbackOptions();
  options.shed_watermark = 1;
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.retry.max_attempts = 12;
  copts.retry.initial_backoff = std::chrono::milliseconds(5);
  copts.seed = 99;
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address(), copts);
  ASSERT_TRUE(client.ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(
      3, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  ASSERT_TRUE(registered.ok());

  // Pin an admission slot so the watermark sheds every new batch, then
  // free it while the client is backing off.
  Result<AdmissionController::Slot> pinned = server.admission().Admit();
  ASSERT_TRUE(pinned.ok());
  std::thread unpin([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pinned->Reset();
  });
  Result<BatchResultMsg> batch = client->CheckBatch(
      registered->handle, 3, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  unpin.join();

  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->results.size(), 1u);
  EXPECT_EQ(batch->results[0].verdict, 1);
  EXPECT_GT(client->stats().shed_backoffs, 0u);
  EXPECT_GT(client->stats().retries, 0u);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, WatchdogKillsSessionStalledMidFrame) {
  ServerOptions options = LoopbackOptions();
  options.session_stall_budget = std::chrono::milliseconds(100);
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // An idle session (zero bytes sent) is fine indefinitely — the budget
  // arms only once a frame has started.
  Result<Socket> idle = Connect(server.bound_address());
  ASSERT_TRUE(idle.ok());
  ASSERT_TRUE(WaitFor([&] { return server.sessions_active() == 1; }));

  // A session that sends half a header and goes silent is killed within
  // the stall budget, without taking the idle session with it.
  Result<Socket> stalled = Connect(server.bound_address());
  ASSERT_TRUE(stalled.ok());
  ASSERT_TRUE(WaitFor([&] { return server.sessions_active() == 2; }));
  const std::uint8_t half_header[3] = {1, 0, 0};
  ASSERT_TRUE(stalled->SendAll(half_header, sizeof(half_header)).ok());
  EXPECT_TRUE(WaitFor([&] { return server.sessions_active() == 1; }));

  // The idle session outlived the watchdog and still serves requests.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(WriteFrame(*idle, EncodePing(PingMsg{77})).ok());
  Frame reply;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(*idle, &reply, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  Result<PingMsg> pong = DecodePong(reply);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->nonce, 77u);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, HandlesReleasedWhenSessionDisconnects) {
  DiffcdServer server(LoopbackOptions());
  ASSERT_TRUE(server.Start().ok());
  {
    Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->RegisterPremises(3, {}).ok());
    ASSERT_TRUE(client->RegisterPremises(4, {}).ok());
    EXPECT_EQ(server.handles().size(), 2u);
  }  // Client destroyed: connection closes.
  EXPECT_TRUE(WaitFor([&] { return server.handles().size() == 0; }));
  EXPECT_TRUE(WaitFor([&] { return server.sessions_active() == 0; }));
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, FinishedSessionsAreReapedNotAccumulated) {
  // Regression: a long-running daemon must not retain a Session (and its
  // unjoined thread) per historical connection. The accept loop reaps
  // finished sessions on every new connection.
  DiffcdServer server(LoopbackOptions());
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 5; ++i) {
    Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Ping(static_cast<std::uint64_t>(i)).ok());
  }  // Each client destroyed: its connection closes.
  ASSERT_TRUE(WaitFor([&] { return server.sessions_active() == 0; }));

  // The next accept reaps everything the five dead connections left.
  Result<DiffcClient> survivor = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(survivor.ok());
  ASSERT_TRUE(survivor->Ping(99).ok());
  EXPECT_TRUE(WaitFor([&] { return server.sessions_tracked() <= 1; }));
  EXPECT_TRUE(server.Shutdown().ok());
  EXPECT_EQ(server.sessions_tracked(), 0u);
}

TEST(DiffcdServiceTest, ShutdownIsNotBlockedByAnIdleMetricsConnection) {
  // Regression: a client that connects to the metrics port and sends
  // nothing must not pin the metrics thread — Shutdown joins it before
  // waiting out the drain, so an unbounded recv would hang SIGTERM
  // forever.
  ServerOptions options = LoopbackOptions();
  options.metrics_address = "127.0.0.1:0";
  options.metrics_timeout = std::chrono::milliseconds(200);
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Result<Socket> idle = Connect(server.metrics_bound_address());
  ASSERT_TRUE(idle.ok());
  // Give the metrics thread time to accept and block in the head read.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto started = std::chrono::steady_clock::now();
  EXPECT_TRUE(server.Shutdown().ok());
  const auto elapsed = std::chrono::steady_clock::now() - started;
  // Bound: one serve budget (~200 ms) plus slack, nowhere near a hang.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(DiffcdServiceTest, MalformedFramesGetTypedErrorThenClose) {
  DiffcdServer server(LoopbackOptions());
  ASSERT_TRUE(server.Start().ok());

  {
    // Bad version byte: error frame back, then EOF.
    Result<Socket> raw = Connect(server.bound_address());
    ASSERT_TRUE(raw.ok());
    std::uint8_t header[6] = {0, 0, 0, 0, kWireVersion + 1,
                              static_cast<std::uint8_t>(WireRequest::kPing)};
    ASSERT_TRUE(raw->SendAll(header, sizeof(header)).ok());
    Frame reply;
    bool clean_eof = false;
    ASSERT_TRUE(ReadFrame(*raw, &reply, &clean_eof).ok());
    ASSERT_FALSE(clean_eof);
    Result<ErrorMsg> err = DecodeError(reply);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->code, StatusCode::kInvalidArgument);
    // And the server hangs up after an unparseable stream.
    EXPECT_TRUE(ReadFrame(*raw, &reply, &clean_eof).ok());
    EXPECT_TRUE(clean_eof);
  }
  {
    // Unknown request type byte (framing fine): same treatment.
    Result<Socket> raw = Connect(server.bound_address());
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(WriteFrame(*raw, Frame{0x66, kWireVersion, {}}).ok());
    Frame reply;
    bool clean_eof = false;
    ASSERT_TRUE(ReadFrame(*raw, &reply, &clean_eof).ok());
    ASSERT_FALSE(clean_eof);
    Result<ErrorMsg> err = DecodeError(reply);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->code, StatusCode::kInvalidArgument);
  }
  {
    // Oversized declared payload: rejected from the header alone.
    Result<Socket> raw = Connect(server.bound_address());
    ASSERT_TRUE(raw.ok());
    const std::uint32_t huge = kMaxFramePayload + 1;
    std::uint8_t header[6];
    for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(huge >> (8 * i));
    header[4] = kWireVersion;
    header[5] = static_cast<std::uint8_t>(WireRequest::kPing);
    ASSERT_TRUE(raw->SendAll(header, sizeof(header)).ok());
    Frame reply;
    bool clean_eof = false;
    ASSERT_TRUE(ReadFrame(*raw, &reply, &clean_eof).ok());
    ASSERT_FALSE(clean_eof);
    EXPECT_EQ(reply.type, static_cast<std::uint8_t>(WireResponse::kError));
  }
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, PerRequestDeadlineMapsOntoTheBatch) {
  ServerOptions options = LoopbackOptions();
  options.engine.num_threads = 1;
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok());

  const int n = 12;
  Rng rng(7);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 30);
  std::vector<DifferentialConstraint> goals;
  for (int i = 0; i < 20000; ++i) goals.push_back(testing::RandomConstraint(rng, n));
  Result<RegisterOkMsg> registered = client->RegisterPremises(n, premises);
  ASSERT_TRUE(registered.ok());

  Result<BatchResultMsg> batch = client->CheckBatch(registered->handle, n, goals,
                                                    std::chrono::milliseconds(1));
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->results.size(), goals.size());
  // 20k queries on one worker cannot finish in 1 ms: the deadline must
  // have fired, and every slot is still populated (index-aligned).
  EXPECT_GT(batch->stats.timed_out, 0u);
  EXPECT_EQ(batch->stats.queries, goals.size());
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, GracefulDrainWaitsForInflightBatch) {
  ServerOptions options = LoopbackOptions();
  options.engine.num_threads = 2;
  options.drain_deadline = std::chrono::seconds(30);
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const int n = 12;
  Rng rng(11);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 30);
  std::vector<DifferentialConstraint> goals;
  for (int i = 0; i < 20000; ++i) goals.push_back(testing::RandomConstraint(rng, n));

  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(n, premises);
  ASSERT_TRUE(registered.ok());

  Result<BatchResultMsg> batch = Status::Internal("batch never ran");
  std::thread in_flight([&] {
    batch = client->CheckBatch(registered->handle, n, goals);
  });
  // Wait until the batch is genuinely executing, then drain mid-burst.
  ASSERT_TRUE(WaitFor([&] { return server.admission().inflight() > 0; }));
  Status drained = server.Shutdown();
  in_flight.join();

  // The drain waited: the client holds a complete, index-aligned reply.
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->results.size(), goals.size());
  EXPECT_EQ(server.sessions_active(), 0u);

  // Stopped means stopped: new requests fail, repeat shutdowns are no-ops.
  EXPECT_FALSE(client->Ping(1).ok());
  EXPECT_TRUE(server.Shutdown().ok());
}

// ----------------------------------------------------------- HTTP metrics

std::string HttpGet(const std::string& address, const std::string& path) {
  Result<Socket> sock = Connect(address);
  EXPECT_TRUE(sock.ok());
  if (!sock.ok()) return "";
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: diffcd\r\n\r\n";
  EXPECT_TRUE(sock->SendAll(request.data(), request.size()).ok());
  std::string response;
  char buf[2048];
  while (true) {
    Result<std::size_t> got = sock->RecvSome(buf, sizeof(buf));
    if (!got.ok() || *got == 0) break;
    response.append(buf, *got);
  }
  return response;
}

TEST(DiffcdServiceTest, MetricsEndpointServesPrometheusAndJson) {
  ServerOptions options = LoopbackOptions();
  options.metrics_address = "127.0.0.1:0";
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_FALSE(server.metrics_bound_address().empty());

  // Generate some traffic so the per-service counters exist with values.
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping(1).ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(3, {});
  ASSERT_TRUE(registered.ok());
  ASSERT_TRUE(client
                  ->CheckBatch(registered->handle, 3,
                               {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))})
                  .ok());

  const std::string metrics = HttpGet(server.metrics_bound_address(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  // Valid Prometheus exposition: HELP/TYPE blocks and the per-service
  // counters, including the labeled per-type request family.
  EXPECT_NE(metrics.find("# TYPE diffc_net_requests_total counter"), std::string::npos);
  EXPECT_NE(metrics.find("diffc_net_requests_total{type=\"ping\"}"), std::string::npos);
  EXPECT_NE(metrics.find("diffc_net_requests_total{type=\"check-batch\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE diffc_net_sessions_active gauge"), std::string::npos);
  EXPECT_NE(metrics.find("diffc_net_connections_total"), std::string::npos);
  EXPECT_NE(metrics.find("diffc_net_request_seconds_bucket"), std::string::npos);
  // The PR 7 resilience counters are registered (0 until faults happen).
  EXPECT_NE(metrics.find("diffc_net_shed_total"), std::string::npos);
  EXPECT_NE(metrics.find("diffc_net_watchdog_kills_total"), std::string::npos);
  EXPECT_NE(metrics.find("diffc_net_nonce_replays_total"), std::string::npos);
  EXPECT_NE(metrics.find("diffc_net_nonce_inflight_dups_total"), std::string::npos);
  EXPECT_NE(metrics.find("diffc_net_accept_failures_total"), std::string::npos);

  const std::string json = HttpGet(server.metrics_bound_address(), "/metrics.json");
  EXPECT_NE(json.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);

  const std::string health = HttpGet(server.metrics_bound_address(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing = HttpGet(server.metrics_bound_address(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_TRUE(server.Shutdown().ok());
}

// ---------------------------------------------------------- tracing (PR 8)

// The PHP(holes+1, holes) tautology via the Proposition 5.5 reduction: a
// query guaranteed to spend real time in the SAT procedure (see
// test_engine.cc), used here to cross the slow-query threshold.
prop::DnfFormula PigeonholeDnf(int holes) {
  prop::DnfFormula f;
  f.num_vars = (holes + 1) * holes;
  auto var = [&](int pigeon, int hole) { return pigeon * holes + hole; };
  for (int i = 0; i <= holes; ++i) {
    prop::DnfConjunct c;
    for (int k = 0; k < holes; ++k) c.neg |= Mask{1} << var(i, k);
    f.conjuncts.push_back(c);
  }
  for (int i = 0; i <= holes; ++i)
    for (int j = i + 1; j <= holes; ++j)
      for (int k = 0; k < holes; ++k) {
        prop::DnfConjunct c;
        c.pos = (Mask{1} << var(i, k)) | (Mask{1} << var(j, k));
        f.conjuncts.push_back(c);
      }
  return f;
}

TEST(DiffcdServiceTest, TracezServesOneJoinedClientServerEngineTrace) {
  obs::GlobalTraceStore().Clear();
  ServerOptions options = LoopbackOptions();
  options.metrics_address = "127.0.0.1:0";
  options.engine.trace = true;  // Engine spans join the request trace.
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.trace = true;  // Force-sample: client span + wire sampled flag.
  copts.seed = 20260809;
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address(), copts);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client->wire_version(), kWireVersion);

  Result<RegisterOkMsg> registered = client->RegisterPremises(
      4, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))});
  ASSERT_TRUE(registered.ok());
  Result<BatchResultMsg> batch = client->CheckBatch(
      registered->handle, 4, {DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{2}}))});
  ASSERT_TRUE(batch.ok());

  // The reply echoes the trace id the client minted for the batch call,
  // with the server's span id as the parent half of the echo.
  const TraceContext echo = client->last_trace();
  ASSERT_TRUE(echo.valid());
  EXPECT_TRUE(echo.sampled);
  EXPECT_EQ(echo.trace_id_hi, batch->trace.trace_id_hi);

  // Both sides of the loopback share the process-global store: exactly one
  // client record and one server record under the batch call's trace id.
  std::vector<obs::StoredTrace> joined =
      obs::GlobalTraceStore().FindByTraceId(echo.trace_id_hi, echo.trace_id_lo);
  ASSERT_EQ(joined.size(), 2u);
  const obs::StoredTrace* client_rec = nullptr;
  const obs::StoredTrace* server_rec = nullptr;
  for (const obs::StoredTrace& t : joined) {
    if (t.kind == "client") client_rec = &t;
    if (t.kind == "server") server_rec = &t;
  }
  ASSERT_NE(client_rec, nullptr);
  ASSERT_NE(server_rec, nullptr);
  // The span chain: client root -> server span (client ⊇ server ⊇ engine).
  EXPECT_EQ(client_rec->parent_span_id, 0u);
  EXPECT_EQ(server_rec->parent_span_id, client_rec->span_id);
  EXPECT_EQ(echo.parent_span_id, server_rec->span_id);
  EXPECT_EQ(client_rec->name, "check-batch");
  EXPECT_TRUE(client_rec->forced);
  ASSERT_FALSE(client_rec->record.spans.empty());
  EXPECT_EQ(client_rec->record.spans[0].name, "client:check-batch");
  // The server record covers the request phases, with the engine's span
  // tree grafted under "execute" (grafted spans sit at depth >= 2).
  ASSERT_FALSE(server_rec->record.spans.empty());
  EXPECT_EQ(server_rec->record.spans[0].name, "server:check-batch");
  bool saw_execute = false;
  bool saw_engine_depth = false;
  for (const obs::TraceSpan& s : server_rec->record.spans) {
    if (s.name == "execute") saw_execute = true;
    if (s.depth >= 2) saw_engine_depth = true;
  }
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_engine_depth);
  // Both records carry wall anchors, and the server starts no earlier
  // than the client (same host clock).
  EXPECT_GT(client_rec->record.wall_start_unix_ns, 0u);
  EXPECT_GE(server_rec->record.wall_start_unix_ns,
            client_rec->record.wall_start_unix_ns);

  // The same joined view over HTTP, filterable by trace id.
  const std::string by_id =
      HttpGet(server.metrics_bound_address(), "/tracez?trace_id=" + echo.IdHex());
  EXPECT_NE(by_id.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(by_id.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(by_id.find("\"kind\": \"client\""), std::string::npos);
  EXPECT_NE(by_id.find("\"kind\": \"server\""), std::string::npos);
  EXPECT_NE(by_id.find("\"trace_id\": \"" + echo.IdHex() + "\""), std::string::npos);
  // Filters compose: a status filter that matches nothing yields an empty
  // list but the same envelope.
  const std::string none = HttpGet(server.metrics_bound_address(),
                                   "/tracez?trace_id=" + echo.IdHex() + "&status=shed");
  EXPECT_NE(none.find("\"count\": 0"), std::string::npos);
  EXPECT_NE(none.find("\"traces\": []"), std::string::npos);
  // And limit caps the newest-first listing.
  const std::string limited = HttpGet(server.metrics_bound_address(), "/tracez?limit=1");
  EXPECT_NE(limited.find("\"count\": 1"), std::string::npos);

  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, StatuszReportsBuildOptionsAdmissionAndStoreHealth) {
  ServerOptions options = LoopbackOptions();
  options.metrics_address = "127.0.0.1:0";
  options.trace_sample_rate = 0.25;
  options.slow_request_threshold = std::chrono::milliseconds(750);
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping(1).ok());

  const std::string statusz = HttpGet(server.metrics_bound_address(), "/statusz");
  EXPECT_NE(statusz.find("HTTP/1.1 200 OK"), std::string::npos);
  // Build block: protocol window and build mode are pinned.
  EXPECT_NE(statusz.find("\"wire_version\": 3"), std::string::npos);
  EXPECT_NE(statusz.find("\"min_wire_version\": 2"), std::string::npos);
  EXPECT_NE(statusz.find("\"compiler\": \""), std::string::npos);
  EXPECT_NE(statusz.find("\"uptime_ms\": "), std::string::npos);
  EXPECT_NE(statusz.find("\"start_wall_unix_ns\": "), std::string::npos);
  EXPECT_NE(statusz.find("\"draining\": false"), std::string::npos);
  // Options in force, including the PR 8 knobs.
  EXPECT_NE(statusz.find("\"slow_query_ms\": 750"), std::string::npos);
  EXPECT_NE(statusz.find("\"trace_sample_rate\": 0.25"), std::string::npos);
  EXPECT_NE(statusz.find("\"trace_store_capacity\": 256"), std::string::npos);
  EXPECT_NE(statusz.find("\"max_wire_version\": 3"), std::string::npos);
  // Live admission and session state.
  EXPECT_NE(statusz.find("\"admission\": {\"inflight\": 0"), std::string::npos);
  EXPECT_NE(statusz.find("\"shed_watermark\": "), std::string::npos);
  EXPECT_NE(statusz.find("\"ewma_latency_ms\": "), std::string::npos);
  EXPECT_NE(statusz.find("\"sessions_active\": 1"), std::string::npos);
  EXPECT_NE(statusz.find("\"handles_active\": 0"), std::string::npos);
  // Store health envelopes.
  EXPECT_NE(statusz.find("\"trace_store\": {\"capacity\": 256"), std::string::npos);
  EXPECT_NE(statusz.find("\"slow_query_log\": {\"capacity\": 128"), std::string::npos);

  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, SlowRequestsLandInTheSlowQueryLogWithTraceId) {
  obs::GlobalTraceStore().Clear();
  const std::uint64_t slow_before = obs::GlobalSlowQueryLog().total();
  ServerOptions options = LoopbackOptions();
  options.metrics_address = "127.0.0.1:0";
  options.slow_request_threshold = std::chrono::milliseconds(1);
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // PHP(8,7) pins the query in the SAT procedure for far longer than the
  // 1 ms threshold (test_engine measures ~10^5 decisions), regardless of
  // whether it finishes or degrades.
  prop::DnfFormula php = PigeonholeDnf(7);
  ConstraintSet premises = DnfTautologyReduction(php);
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(php.num_vars, premises);
  ASSERT_TRUE(registered.ok());
  Result<BatchResultMsg> batch =
      client->CheckBatch(registered->handle, php.num_vars, {TautologyGoal()});
  ASSERT_TRUE(batch.ok());

  ASSERT_GT(obs::GlobalSlowQueryLog().total(), slow_before);
  std::vector<obs::SlowQuery> entries = obs::GlobalSlowQueryLog().Snapshot();
  ASSERT_FALSE(entries.empty());
  const obs::SlowQuery& slow = entries.back();
  EXPECT_EQ(slow.kind, "check-batch");
  EXPECT_GE(slow.seconds, 0.001);
  EXPECT_EQ(slow.trace_id.size(), 32u);
  EXPECT_GT(slow.wall_unix_ns, 0u);

  // An unsampled slow request still lands in the trace store (tail rule)
  // as a skeleton record flagged slow.
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  ASSERT_TRUE(client->last_trace().valid());
  hi = client->last_trace().trace_id_hi;
  lo = client->last_trace().trace_id_lo;
  std::vector<obs::StoredTrace> stored = obs::GlobalTraceStore().FindByTraceId(hi, lo);
  ASSERT_EQ(stored.size(), 1u);  // Server-side only: the client was unsampled.
  EXPECT_TRUE(stored[0].slow);
  EXPECT_FALSE(stored[0].sampled);
  EXPECT_EQ(stored[0].status, "ok");
  ASSERT_EQ(stored[0].record.spans.size(), 1u);  // Skeleton: one root span.
  EXPECT_GT(stored[0].record.wall_start_unix_ns, 0u);

  // /slowz serves the ring with its counters.
  const std::string slowz = HttpGet(server.metrics_bound_address(), "/slowz");
  EXPECT_NE(slowz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(slowz.find("\"slow_queries\": [{\"slow_query\": "), std::string::npos);
  EXPECT_NE(slowz.find("\"kind\": \"check-batch\""), std::string::npos);

  EXPECT_TRUE(server.Shutdown().ok());
}

// ------------------------------------------------- wire-version interop

TEST(DiffcdServiceTest, V2ClientAgainstV3ServerPassesTheDifferentialSuite) {
  // Compat half 1: an old client (wire v2, no trace bytes) against the
  // current server must produce bit-for-bit the verdicts of the in-process
  // engine — the same bar the v3 path clears.
  const int n = 10;
  Rng rng(20260810);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 40);
  std::vector<DifferentialConstraint> goals;
  for (int i = 0; i < 60; ++i) goals.push_back(testing::RandomConstraint(rng, n));

  ImplicationEngine local;
  Result<std::shared_ptr<const PreparedPremises>> prepared = local.Prepare(n, premises);
  ASSERT_TRUE(prepared.ok());
  Result<BatchOutcome> expected = local.CheckBatch(*prepared, goals);
  ASSERT_TRUE(expected.ok());

  DiffcdServer server(LoopbackOptions());
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.wire_version = kMinWireVersion;
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address(), copts);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping(5).ok());
  Result<RegisterOkMsg> registered = client->RegisterPremises(n, premises);
  ASSERT_TRUE(registered.ok());
  // A v2 reply carries no trace echo.
  EXPECT_FALSE(registered->trace.valid());
  Result<BatchResultMsg> wire = client->CheckBatch(registered->handle, n, goals);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(client->wire_version(), kMinWireVersion);

  ASSERT_EQ(wire->results.size(), goals.size());
  for (std::size_t i = 0; i < goals.size(); ++i) {
    EXPECT_EQ(wire->results[i].verdict,
              static_cast<std::uint8_t>(expected->results[i].outcome.verdict))
        << "goal " << i;
    EXPECT_EQ(wire->results[i].has_counterexample,
              expected->results[i].outcome.counterexample.has_value())
        << "goal " << i;
  }
  EXPECT_EQ(wire->stats.implied, expected->stats.implied);
  EXPECT_EQ(wire->stats.not_implied, expected->stats.not_implied);
  EXPECT_TRUE(client->Release(registered->handle).ok());
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(DiffcdServiceTest, V3ClientAutoDowngradesAgainstV2ServerAndStillMatches) {
  // Compat half 2: the current client against an old server (emulated via
  // max_wire_version) sees its first v3 frame rejected, downgrades to v2
  // transparently, and the differential suite still passes.
  const int n = 10;
  Rng rng(20260811);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 40);
  std::vector<DifferentialConstraint> goals;
  for (int i = 0; i < 60; ++i) goals.push_back(testing::RandomConstraint(rng, n));

  ImplicationEngine local;
  Result<std::shared_ptr<const PreparedPremises>> prepared = local.Prepare(n, premises);
  ASSERT_TRUE(prepared.ok());
  Result<BatchOutcome> expected = local.CheckBatch(*prepared, goals);
  ASSERT_TRUE(expected.ok());

  ServerOptions options = LoopbackOptions();
  options.max_wire_version = kMinWireVersion;  // Old-server emulation.
  DiffcdServer server(options);
  ASSERT_TRUE(server.Start().ok());
  Result<DiffcClient> client = DiffcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client->wire_version(), kWireVersion);

  // The downgrade happens inside the first call's retry loop.
  ASSERT_TRUE(client->Ping(9).ok());
  EXPECT_EQ(client->wire_version(), kMinWireVersion);
  EXPECT_GE(client->stats().retries, 1u);

  Result<RegisterOkMsg> registered = client->RegisterPremises(n, premises);
  ASSERT_TRUE(registered.ok());
  Result<BatchResultMsg> wire = client->CheckBatch(registered->handle, n, goals);
  ASSERT_TRUE(wire.ok());
  ASSERT_EQ(wire->results.size(), goals.size());
  for (std::size_t i = 0; i < goals.size(); ++i) {
    EXPECT_EQ(wire->results[i].verdict,
              static_cast<std::uint8_t>(expected->results[i].outcome.verdict))
        << "goal " << i;
  }
  EXPECT_EQ(wire->stats.implied, expected->stats.implied);
  EXPECT_TRUE(client->Release(registered->handle).ok());
  EXPECT_TRUE(server.Shutdown().ok());
}

}  // namespace
}  // namespace diffc::net
