// PreparedPremises: the compiled premise artifact behind the engine's
// prepare/plan/execute pipeline. Canonicalization invariants (trivial
// premises dropped, right-hand families minimized, duplicates removed —
// all without changing L(C)), translation equivalence against the
// per-query path, the FD closure index, build stats, and id uniqueness.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/implication.h"
#include "engine/prepared_premises.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc {
namespace {

TEST(PreparedPremisesTest, CanonicalizationDropsTrivialAndDuplicates) {
  const int n = 8;
  DifferentialConstraint real(ItemSet{0}, SetFamily({ItemSet{1}, ItemSet{2, 3}}));
  DifferentialConstraint trivial(ItemSet{0, 1}, SetFamily({ItemSet{1}}));  // 1 ⊆ lhs.
  ConstraintSet premises{real, trivial, real};  // Duplicate `real`.
  Result<std::shared_ptr<const PreparedPremises>> built =
      PreparedPremises::Build(n, premises);
  ASSERT_TRUE(built.ok());
  const PreparedPremises& p = **built;
  EXPECT_EQ(p.n(), n);
  ASSERT_EQ(p.constraints().size(), 1u);
  EXPECT_EQ(p.constraints()[0], real);
  EXPECT_EQ(p.stats().input_constraints, 3u);
  EXPECT_EQ(p.stats().canonical_constraints, 1u);
  EXPECT_EQ(p.stats().dropped_trivial, 1u);
  EXPECT_EQ(p.stats().dropped_duplicates, 1u);
}

TEST(PreparedPremisesTest, CanonicalizationMinimizesWitnessFamilies) {
  const int n = 8;
  // {1} ⊂ {1,2}: the non-minimal member never matters for
  // SomeMemberSubsetOf, so minimization removes it without changing L.
  ConstraintSet premises{
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}, ItemSet{1, 2}}))};
  Result<std::shared_ptr<const PreparedPremises>> built =
      PreparedPremises::Build(n, premises);
  ASSERT_TRUE(built.ok());
  const PreparedPremises& p = **built;
  ASSERT_EQ(p.constraints().size(), 1u);
  EXPECT_EQ(p.constraints()[0].rhs(), SetFamily({ItemSet{1}}));
  EXPECT_EQ(p.stats().minimized_members, 1u);
  // The canonical set excludes exactly the same lattice points.
  for (Mask m = 0; m < (Mask{1} << n); ++m) {
    EXPECT_EQ(InConstraintLattice(premises, ItemSet(m)),
              InConstraintLattice(p.constraints(), ItemSet(m)))
        << "U=" << m;
  }
}

TEST(PreparedPremisesTest, CanonicalizationPreservesVerdicts) {
  // Random premise sets: implication verdicts against the canonical set
  // must equal verdicts against the original.
  Rng rng(411);
  for (int round = 0; round < 20; ++round) {
    const int n = 8;
    ConstraintSet premises = testing::RandomConstraintSet(rng, n, 5, 0.25, 3);
    // Seed some trivial and duplicate premises to exercise the dropping.
    premises.push_back(DifferentialConstraint(ItemSet{0, 1}, SetFamily({ItemSet{1}})));
    premises.push_back(premises[0]);
    Result<std::shared_ptr<const PreparedPremises>> built =
        PreparedPremises::Build(n, premises);
    ASSERT_TRUE(built.ok());
    for (int q = 0; q < 10; ++q) {
      DifferentialConstraint goal = testing::RandomConstraint(rng, n);
      Result<ImplicationOutcome> original = CheckImplication(n, premises, goal);
      Result<ImplicationOutcome> canonical =
          CheckImplication(n, (*built)->constraints(), goal);
      ASSERT_TRUE(original.ok());
      ASSERT_TRUE(canonical.ok());
      EXPECT_EQ(original->implied, canonical->implied) << "round=" << round << " q=" << q;
    }
  }
}

TEST(PreparedPremisesTest, TranslationMatchesDirectTranslation) {
  const int n = 10;
  Rng rng(88);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 6);
  Result<std::shared_ptr<const PreparedPremises>> built =
      PreparedPremises::Build(n, premises);
  ASSERT_TRUE(built.ok());
  // The artifact's translation is TranslatePremises of the canonical set.
  PremiseTranslation direct = TranslatePremises(n, (*built)->constraints());
  EXPECT_EQ((*built)->translation().num_vars, direct.num_vars);
  EXPECT_EQ((*built)->translation().clauses, direct.clauses);
  EXPECT_EQ((*built)->stats().translation_vars, direct.num_vars);
  EXPECT_EQ((*built)->stats().translation_clauses, direct.clauses.size());
}

TEST(PreparedPremisesTest, FdIndexMatchesEligibility) {
  const int n = 8;
  ConstraintSet fd_premises{
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}})),
      DifferentialConstraint(ItemSet{1}, SetFamily({ItemSet{2}})),
  };
  Result<std::shared_ptr<const PreparedPremises>> fd_built =
      PreparedPremises::Build(n, fd_premises);
  ASSERT_TRUE(fd_built.ok());
  EXPECT_TRUE((*fd_built)->fd_index().eligible);
  EXPECT_TRUE((*fd_built)->stats().fd_eligible);
  EXPECT_EQ((*fd_built)->fd_index().fds.size(), 2u);
  // Closure of {0} under 0→1, 1→2 is {0,1,2}; the indexed checker agrees
  // with the direct FD checker.
  DifferentialConstraint goal(ItemSet{0}, SetFamily({ItemSet{2}}));
  Result<ImplicationOutcome> indexed =
      CheckImplicationFdIndexed(n, (*fd_built)->fd_index(), goal);
  Result<ImplicationOutcome> direct = CheckImplicationFd(n, fd_premises, goal);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(indexed->implied);
  EXPECT_EQ(indexed->implied, direct->implied);

  ConstraintSet general{
      DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}, ItemSet{2}}))};
  Result<std::shared_ptr<const PreparedPremises>> general_built =
      PreparedPremises::Build(n, general);
  ASSERT_TRUE(general_built.ok());
  EXPECT_FALSE((*general_built)->fd_index().eligible);
  EXPECT_EQ(CheckImplicationFdIndexed(n, (*general_built)->fd_index(), goal)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(PreparedPremisesTest, BuildStatsAreCoherent) {
  const int n = 12;
  Rng rng(3);
  ConstraintSet premises = testing::RandomConstraintSet(rng, n, 8);
  Result<std::shared_ptr<const PreparedPremises>> built =
      PreparedPremises::Build(n, premises);
  ASSERT_TRUE(built.ok());
  const PrepareStats& s = (*built)->stats();
  EXPECT_EQ(s.input_constraints, premises.size());
  EXPECT_EQ(s.canonical_constraints, s.input_constraints - s.dropped_trivial -
                                         s.dropped_duplicates - s.merged_constraints);
  EXPECT_GE(s.translation_vars, n);
  EXPECT_GT(s.translation_clauses, 0u);
  EXPECT_GT(s.total_ns, 0u);
  EXPECT_LE(s.canonicalize_ns, s.total_ns);
  EXPECT_LE(s.translate_ns, s.total_ns);
  EXPECT_LE(s.fd_index_ns, s.total_ns);
}

TEST(PreparedPremisesTest, IdsAreProcessUnique) {
  std::set<std::uint64_t> ids;
  ConstraintSet premises{DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}}))};
  for (int i = 0; i < 16; ++i) {
    Result<std::shared_ptr<const PreparedPremises>> built =
        PreparedPremises::Build(8, premises);
    ASSERT_TRUE(built.ok());
    EXPECT_TRUE(ids.insert((*built)->id()).second);
  }
}

TEST(PreparedPremisesTest, InvalidUniverseSizeFails) {
  EXPECT_EQ(PreparedPremises::Build(-1, {}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(PreparedPremises::Build(65, {}).status().code(), StatusCode::kInvalidArgument);
  Result<std::shared_ptr<const PreparedPremises>> empty = PreparedPremises::Build(0, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE((*empty)->constraints().empty());
}

}  // namespace
}  // namespace diffc
