#include <gtest/gtest.h>

#include "core/function_ops.h"
#include "core/parser.h"
#include "lattice/decomposition.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc {
namespace {

SetFunction<std::int64_t> RandomFunction(Rng& rng, int n, int lo = -20, int hi = 20) {
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(n);
  for (Mask m = 0; m < f.size(); ++m) f.at(m) = rng.UniformInt(lo, hi);
  return f;
}

// ------------------------------------------------------------ differentials

TEST(DifferentialTest, PaperExample22) {
  // D^{B,CD}_f(A) = f(A) - f(AB) - f(ACD) + f(ABCD).
  Rng rng(1);
  SetFunction<std::int64_t> f = RandomFunction(rng, 4);
  const Mask A = 1, B = 2, C = 4, D = 8;
  SetFamily fam({ItemSet(B), ItemSet(C | D)});
  std::int64_t expected = f.at(A) - f.at(A | B) - f.at(A | C | D) + f.at(A | B | C | D);
  EXPECT_EQ(DifferentialAt(f, ItemSet(A), fam), expected);
}

TEST(DifferentialTest, EmptyFamilyIsValueItself) {
  // Constraint (1): D^∅_f(X) = f(X).
  Rng rng(2);
  SetFunction<std::int64_t> f = RandomFunction(rng, 4);
  for (Mask m = 0; m < 16; ++m) {
    EXPECT_EQ(DifferentialAt(f, ItemSet(m), SetFamily()), f.at(m));
  }
}

TEST(DifferentialTest, SingleMemberIsFirstDifference) {
  // Constraint (2): D^{Y}_f(X) = f(X) - f(X∪Y).
  Rng rng(3);
  SetFunction<std::int64_t> f = RandomFunction(rng, 5);
  ItemSet x{0}, y{2, 3};
  EXPECT_EQ(DifferentialAt(f, x, SetFamily({y})),
            f.at(x.bits()) - f.at(x.bits() | y.bits()));
}

TEST(DifferentialTest, DensityViaComplementSingletons) {
  // Definition 2.1: d_f(X) = D^{{{y}|y∉X}}_f(X), vs. the fast transform.
  Rng rng(4);
  SetFunction<std::int64_t> f = RandomFunction(rng, 6);
  SetFunction<std::int64_t> d = Density(f);
  for (Mask m = 0; m < f.size(); ++m) {
    EXPECT_EQ(DensityAtViaDifferential(f, ItemSet(m)), d.at(m)) << m;
  }
}

// Proposition 2.9: D^Y_f(X) = Σ_{U ∈ L(X,Y)} d_f(U).
class Prop29Property : public ::testing::TestWithParam<int> {};

TEST_P(Prop29Property, DifferentialEqualsDensitySumOverL) {
  Rng rng(GetParam() * 17);
  const int n = 6;
  SetFunction<std::int64_t> f = RandomFunction(rng, n);
  SetFunction<std::int64_t> d = Density(f);
  for (int iter = 0; iter < 25; ++iter) {
    ItemSet x(rng.RandomMask(n, 0.3));
    int members = static_cast<int>(rng.UniformInt(0, 3));
    SetFamily fam = SetFamily::FromMasks(rng.RandomFamily(n, members, 0.3));
    std::int64_t sum = 0;
    Result<std::vector<ItemSet>> lattice = EnumerateDecomposition(n, x, fam);
    for (const ItemSet& u : *lattice) sum += d.at(u);
    EXPECT_EQ(DifferentialAt(f, x, fam), sum);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop29Property, ::testing::Range(1, 11));

// ------------------------------------------------------------ satisfaction

TEST(SatisfactionTest, PaperExample32) {
  // S={A,B,C}; f(∅)=f(C)=2, f=1 elsewhere. Satisfies A->{B} and B->{C},
  // violates C->{A}.
  Universe u = Universe::Letters(3);
  SetFunction<double> f = *SetFunction<double>::Make(3);
  for (Mask m = 0; m < 8; ++m) f.at(m) = 1.0;
  f.at(0) = 2.0;
  f.at(0b100) = 2.0;
  EXPECT_TRUE(Satisfies(f, *ParseConstraint(u, "A -> {B}")));
  EXPECT_TRUE(Satisfies(f, *ParseConstraint(u, "B -> {C}")));
  EXPECT_FALSE(Satisfies(f, *ParseConstraint(u, "C -> {A}")));
}

TEST(SatisfactionTest, TrivialConstraintAlwaysSatisfied) {
  Rng rng(21);
  SetFunction<std::int64_t> f = RandomFunction(rng, 5);
  // Member {0} ⊆ lhs {0,1}: trivial.
  DifferentialConstraint c(ItemSet{0, 1}, SetFamily({ItemSet{0}}));
  ASSERT_TRUE(c.IsTrivial());
  EXPECT_TRUE(Satisfies(f, c));
}

TEST(SatisfactionTest, Remark36DifferentialWeakerThanDensity) {
  // S={A}; f(∅)=0, f(A)=1: D^∅_f(∅)=0 but f does not satisfy ∅ -> {}.
  SetFunction<double> f = *SetFunction<double>::Make(1);
  f.at(Mask{0}) = 0.0;
  f.at(Mask{1}) = 1.0;
  DifferentialConstraint c{ItemSet(), SetFamily()};
  EXPECT_TRUE(SatisfiesDifferentialSemantics(f, c));
  EXPECT_FALSE(Satisfies(f, c));
}

TEST(SatisfactionTest, DensityImpliesDifferentialSemantics) {
  // Density-based satisfaction always implies differential-based
  // (Proposition 2.9); checked on random functions and constraints.
  Rng rng(22);
  const int n = 5;
  for (int iter = 0; iter < 50; ++iter) {
    SetFunction<std::int64_t> f = RandomFunction(rng, n, -3, 3);
    DifferentialConstraint c = testing::RandomConstraint(rng, n);
    if (Satisfies(f, c)) {
      EXPECT_TRUE(SatisfiesDifferentialSemantics(f, c));
    }
  }
}

TEST(SatisfactionTest, EquivalentForNonnegativeDensities) {
  // For frequency functions the two semantics coincide (Remark 3.6 /
  // Section 6).
  Rng rng(23);
  const int n = 5;
  for (int iter = 0; iter < 50; ++iter) {
    // Build f from a nonnegative density.
    SetFunction<std::int64_t> d = *SetFunction<std::int64_t>::Make(n);
    for (Mask m = 0; m < d.size(); ++m) d.at(m) = rng.Bernoulli(0.3) ? rng.UniformInt(0, 3) : 0;
    SetFunction<std::int64_t> f = FromDensity(d);
    ASSERT_TRUE(IsFrequencyFunction(f));
    DifferentialConstraint c = testing::RandomConstraint(rng, n);
    EXPECT_EQ(Satisfies(f, c), SatisfiesDifferentialSemantics(f, c))
        << "iter=" << iter;
  }
}

TEST(SatisfactionTest, SatisfiesWithDensityMatchesSatisfies) {
  Rng rng(24);
  const int n = 6;
  SetFunction<std::int64_t> f = RandomFunction(rng, n, -2, 2);
  SetFunction<std::int64_t> d = Density(f);
  for (int iter = 0; iter < 40; ++iter) {
    DifferentialConstraint c = testing::RandomConstraint(rng, n);
    EXPECT_EQ(Satisfies(f, c), SatisfiesWithDensity(d, c));
  }
}

// ------------------------------------------------------- frequency functions

TEST(FrequencyTest, NonnegativeDensityIsFrequency) {
  SetFunction<std::int64_t> d = *SetFunction<std::int64_t>::Make(4);
  d.at(Mask{0b0011}) = 2;
  d.at(Mask{0b1000}) = 1;
  EXPECT_TRUE(IsFrequencyFunction(FromDensity(d)));
}

TEST(FrequencyTest, NegativeDensitySomewhereIsNot) {
  SetFunction<std::int64_t> d = *SetFunction<std::int64_t>::Make(4);
  d.at(Mask{0b0011}) = 2;
  d.at(Mask{0b1000}) = -1;
  EXPECT_FALSE(IsFrequencyFunction(FromDensity(d)));
}

TEST(FrequencyTest, FrequencyFunctionHasAllDifferentialsNonnegative) {
  // The defining property of Section 6, checked on random families.
  Rng rng(25);
  const int n = 5;
  SetFunction<std::int64_t> d = *SetFunction<std::int64_t>::Make(n);
  for (Mask m = 0; m < d.size(); ++m) d.at(m) = rng.UniformInt(0, 2);
  SetFunction<std::int64_t> f = FromDensity(d);
  ASSERT_TRUE(IsFrequencyFunction(f));
  for (int iter = 0; iter < 100; ++iter) {
    ItemSet x(rng.RandomMask(n, 0.3));
    SetFamily fam = SetFamily::FromMasks(
        rng.RandomFamily(n, static_cast<int>(rng.UniformInt(0, 3)), 0.3));
    EXPECT_GE(DifferentialAt(f, x, fam), 0);
  }
}

TEST(FrequencyTest, NonFrequencyHasSomeNegativeDifferential) {
  // Converse direction: a negative density value is exposed by the
  // complement-singletons differential.
  SetFunction<std::int64_t> d = *SetFunction<std::int64_t>::Make(4);
  d.at(Mask{0b0101}) = -3;
  SetFunction<std::int64_t> f = FromDensity(d);
  ItemSet x(Mask{0b0101});
  EXPECT_LT(DifferentialAt(f, x, SetFamily::Singletons(x.ComplementIn(4))), 0);
}

TEST(ZeroValueTest, TypeSpecificZeroTests) {
  EXPECT_TRUE(IsZeroValue(0.0));
  EXPECT_TRUE(IsZeroValue(1e-12));
  EXPECT_FALSE(IsZeroValue(1e-3));
  EXPECT_TRUE(IsZeroValue(std::int64_t{0}));
  EXPECT_FALSE(IsZeroValue(std::int64_t{1}));
  EXPECT_TRUE(IsZeroValue(Rational()));
  EXPECT_FALSE(IsZeroValue(Rational(1, 1000000)));
}

}  // namespace
}  // namespace diffc
