// Cross-module property tests: interactions between the theory layers
// that no single-module suite covers.

#include <gtest/gtest.h>

#include <set>

#include "core/armstrong.h"
#include "core/atoms.h"
#include "core/closure.h"
#include "core/function_ops.h"
#include "core/implication.h"
#include "core/inference.h"
#include "core/parser.h"
#include "ds/belief.h"
#include "fis/closed.h"
#include "fis/concise.h"
#include "fis/generator.h"
#include "fis/io.h"
#include "fis/ndi.h"
#include "fis/support.h"
#include "prop/cdcl.h"
#include "prop/minterm.h"
#include "relational/simpson.h"
#include "relational/boolean_dependency.h"
#include "test_helpers.h"

namespace diffc {
namespace {

// ----------------------------------------------------------- rational laws

TEST(DeepRational, FieldLaws) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    Rational a(rng.UniformInt(-20, 20), rng.UniformInt(1, 20));
    Rational b(rng.UniformInt(-20, 20), rng.UniformInt(1, 20));
    Rational c(rng.UniformInt(-20, 20), rng.UniformInt(1, 20));
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + (-a), Rational(0));
    if (!a.IsZero()) {
      EXPECT_EQ(a / a, Rational(1));
    }
    EXPECT_EQ(a - b, -(b - a));
  }
}

// ------------------------------------------------- transforms and duality

TEST(DeepMobius, SubsetTransformRoundTrip) {
  Rng rng(2);
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(7);
  for (Mask m = 0; m < f.size(); ++m) f.at(m) = rng.UniformInt(-30, 30);
  SetFunction<std::int64_t> g = f;
  ZetaSubsetInPlace(g);
  MobiusSubsetInPlace(g);
  EXPECT_EQ(g, f);
}

TEST(DeepMobius, SubsetZetaIsSubsetSum) {
  Rng rng(3);
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(6);
  for (Mask m = 0; m < f.size(); ++m) f.at(m) = rng.UniformInt(-10, 10);
  SetFunction<std::int64_t> g = f;
  ZetaSubsetInPlace(g);
  for (Mask x = 0; x < f.size(); ++x) {
    std::int64_t sum = 0;
    ForEachSubset(x, [&](Mask u) { sum += f.at(u); });
    EXPECT_EQ(g.at(x), sum) << x;
  }
}

// --------------------------------------------- constraint-set equivalences

// Remark 4.5: {c}* = decomp(c)* = atoms(c)*.
class DeepEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DeepEquivalence, ConstraintDecompAtomsAllEquivalent) {
  Rng rng(GetParam() * 19);
  const int n = 5;
  for (int iter = 0; iter < 6; ++iter) {
    DifferentialConstraint c = testing::RandomConstraint(rng, n);
    ConstraintSet single{c};
    Result<std::vector<DifferentialConstraint>> decomp = Decomp(c);
    Result<std::vector<DifferentialConstraint>> atoms = Atoms(n, c);
    ASSERT_TRUE(decomp.ok());
    ASSERT_TRUE(atoms.ok());
    EXPECT_TRUE(*AreEquivalent(n, single, *decomp));
    EXPECT_TRUE(*AreEquivalent(n, single, *atoms));
  }
}

TEST_P(DeepEquivalence, MinimalCoverPreservesArmstrongModel) {
  Rng rng(GetParam() * 23 + 7);
  const int n = 5;
  ConstraintSet c = testing::RandomConstraintSet(rng, n, 4);
  Result<ConstraintSet> cover = MinimalCover(n, c);
  ASSERT_TRUE(cover.ok());
  // Equivalent sets have the same closure lattice, hence the same
  // Armstrong function.
  EXPECT_EQ(*ArmstrongFunction(n, c), *ArmstrongFunction(n, *cover));
}

TEST_P(DeepEquivalence, AddingPremisesIsMonotone) {
  Rng rng(GetParam() * 29 + 1);
  const int n = 5;
  ConstraintSet base = testing::RandomConstraintSet(rng, n, 2);
  ConstraintSet more = base;
  more.push_back(testing::RandomConstraint(rng, n));
  for (int i = 0; i < 15; ++i) {
    DifferentialConstraint goal = testing::RandomConstraint(rng, n);
    if (CheckImplicationSat(n, base, goal)->implied) {
      EXPECT_TRUE(CheckImplicationSat(n, more, goal)->implied);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepEquivalence, ::testing::Range(1, 7));

// Minimizing the right-hand family does not change the semantics.
TEST(DeepEquivalence2, FamilyMinimizationInvariant) {
  Rng rng(31);
  const int n = 5;
  for (int iter = 0; iter < 30; ++iter) {
    ItemSet x(rng.RandomMask(n, 0.3));
    SetFamily fam = SetFamily::FromMasks(rng.RandomFamily(n, 3, 0.4));
    DifferentialConstraint full(x, fam);
    DifferentialConstraint minimized(x, fam.Minimized());
    EXPECT_TRUE(*AreEquivalent(n, {full}, {minimized}));
  }
}

// ---------------------------------------------------- derivation edge cases

TEST(DeepDerivation, StepBudgetEnforced) {
  Universe u = Universe::Letters(6);
  ConstraintSet givens = *ParseConstraintSet(u, "0 -> {AB, CD, EF}");
  DifferentialConstraint goal = *ParseConstraint(u, "0 -> {ABC, DEF, AD}");
  // Whether or not this particular goal is implied, a 3-step budget cannot
  // fit any nontrivial proof.
  DeriveOptions tiny;
  tiny.max_steps = 3;
  Result<Derivation> d = DeriveImplied(6, givens, goal, tiny);
  if (d.status().code() != StatusCode::kNotFound) {
    EXPECT_EQ(d.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(DeepDerivation, ProofsSurviveMinimalCoverSwap) {
  // A goal provable from C is provable from MinimalCover(C).
  Universe u = Universe::Letters(4);
  ConstraintSet c = *ParseConstraintSet(u, "A -> {B}; B -> {C}; A -> {C}; C -> {D}");
  ConstraintSet cover = *MinimalCover(4, c);
  DifferentialConstraint goal = *ParseConstraint(u, "A -> {D}");
  Result<Derivation> d = DeriveImplied(4, cover, goal);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(ValidateDerivation(4, cover, *d).ok());
}

// --------------------------------------------------------- FIS interactions

TEST(DeepFis, SupportFunctionIsLinearInConcatenation) {
  BasketGenConfig config;
  config.num_items = 7;
  config.num_baskets = 40;
  config.seed = 41;
  BasketList a = *GenerateBaskets(config);
  config.seed = 42;
  BasketList b = *GenerateBaskets(config);
  std::vector<Mask> both = a.baskets();
  both.insert(both.end(), b.baskets().begin(), b.baskets().end());
  BasketList ab = *BasketList::Make(7, both);
  SetFunction<std::int64_t> sa = *SupportFunction(a);
  SetFunction<std::int64_t> sb = *SupportFunction(b);
  SetFunction<std::int64_t> sab = *SupportFunction(ab);
  for (Mask m = 0; m < sa.size(); ++m) {
    EXPECT_EQ(sab.at(m), sa.at(m) + sb.at(m));
  }
}

// All four representations agree on every status (consensus check).
class DeepRepresentationConsensus : public ::testing::TestWithParam<int> {};

TEST_P(DeepRepresentationConsensus, AllDeriveTheSameStatuses) {
  BasketGenConfig config;
  config.num_items = 8;
  config.num_baskets = 120;
  config.seed = GetParam() * 3;
  BasketList b = *GenerateBasketsWithRules(config, {{0, ItemSet{1, 2}}});
  const std::int64_t kappa = 12;
  ConciseRepresentation fdfree =
      *ConciseRepresentation::Build(b, {.min_support = kappa, .rule_arity = 2});
  NdiRepresentation ndi = *NdiRepresentation::Build(b, kappa);
  std::vector<CountedItemset> closed = *ClosedFrequentItemsets(b, kappa);
  SetFunction<std::int64_t> support = *SupportFunction(b);
  for (Mask m = 0; m < (Mask{1} << 8); ++m) {
    const bool truth = support.at(m) >= kappa;
    EXPECT_EQ(fdfree.Derive(ItemSet(m)).frequent, truth) << m;
    EXPECT_EQ(ndi.Derive(ItemSet(m)).frequent, truth) << m;
    EXPECT_EQ(DeriveFromClosed(closed, kappa, ItemSet(m)).frequent, truth) << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepRepresentationConsensus, ::testing::Range(1, 5));

TEST(DeepFis, IoFuzzRoundTrip) {
  Rng rng(47);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = static_cast<int>(rng.UniformInt(1, 20));
    std::vector<Mask> baskets;
    int count = static_cast<int>(rng.UniformInt(0, 30));
    for (int i = 0; i < count; ++i) baskets.push_back(rng.RandomMask(n, 0.3));
    BasketList b = *BasketList::Make(n, baskets);
    Result<BasketList> loaded = BasketsFromText(BasketsToText(b));
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->baskets(), b.baskets());
    EXPECT_EQ(loaded->num_items(), n);
  }
}

TEST(DeepFis, ParserNeverCrashesOnGarbage) {
  Universe u = Universe::Letters(4);
  for (const char* text :
       {"", "->", "A ->", "-> {B}", "A -> {B", "A -> B}", "A -> {B,, C}", "A - > {B}",
        "{A} -> {B}", "A -> {B} -> {C}", "0 -> {0}", "ABCD -> {}", ";;;", "A -> {B;C}"}) {
    Result<DifferentialConstraint> c = ParseConstraint(u, text);
    // Either parses or reports an error; no crash, and round-trips when ok.
    if (c.ok()) {
      EXPECT_TRUE(ParseConstraint(u, c->ToString(u)).ok()) << text;
    }
  }
}

// --------------------------------------------------------- Simpson/DS links

TEST(DeepSimpson, SatisfactionIndependentOfDistribution) {
  // Proposition 7.3 both ways: the verdict depends only on the relation,
  // not on the (positive) distribution.
  Rng rng(53);
  const int n = 4;
  for (int iter = 0; iter < 6; ++iter) {
    std::vector<std::vector<int>> rows;
    std::set<std::vector<int>> seen;
    int tuples = static_cast<int>(rng.UniformInt(2, 6));
    while (static_cast<int>(rows.size()) < tuples) {
      std::vector<int> row(n);
      for (int a = 0; a < n; ++a) row[a] = static_cast<int>(rng.UniformInt(0, 2));
      if (seen.insert(row).second) rows.push_back(row);
    }
    Relation r = *Relation::Make(n, rows);
    Distribution uniform = *Distribution::Uniform(r.size());
    // A skewed distribution: weights 1, 2, 3, ... scaled.
    std::vector<Rational> weights;
    std::int64_t total = 0;
    for (int i = 0; i < r.size(); ++i) total += i + 1;
    for (int i = 0; i < r.size(); ++i) weights.push_back(Rational(i + 1, total));
    Distribution skewed = *Distribution::Make(weights);

    SetFunction<Rational> d1 = Density(*SimpsonFunction(r, uniform));
    SetFunction<Rational> d2 = Density(*SimpsonFunction(r, skewed));
    for (int c_iter = 0; c_iter < 20; ++c_iter) {
      DifferentialConstraint c = testing::RandomConstraint(rng, n, 0.3, 2, 0.4);
      EXPECT_EQ(SatisfiesWithDensity(d1, c), SatisfiesWithDensity(d2, c));
    }
  }
}

TEST(DeepDs, CommonalitySatisfactionMatchesBasketAnalogy) {
  // A mass function's focal elements behave exactly like a (weighted)
  // basket list: satisfaction of a constraint by the commonality function
  // equals disjunctive satisfaction by the focal elements as baskets.
  Rng rng(59);
  const int n = 4;
  for (int iter = 0; iter < 20; ++iter) {
    // Random mass on a few focal elements.
    SetFunction<Rational> values = *SetFunction<Rational>::Make(n);
    std::vector<Mask> focal;
    int count = static_cast<int>(rng.UniformInt(1, 4));
    std::int64_t total = 0;
    std::vector<std::int64_t> w;
    for (int i = 0; i < count; ++i) {
      Mask m = rng.RandomMask(n, 0.4);
      if (m == 0) m = 1;
      focal.push_back(m);
      w.push_back(rng.UniformInt(1, 4));
      total += w.back();
    }
    for (int i = 0; i < count; ++i) values.at(focal[i]) += Rational(w[i], total);
    MassFunction mass = *MassFunction::Make(values);
    std::vector<Mask> focal_masks;
    for (const ItemSet& f : mass.FocalElements()) focal_masks.push_back(f.bits());
    BasketList baskets = *BasketList::Make(n, focal_masks);
    for (int c_iter = 0; c_iter < 10; ++c_iter) {
      DifferentialConstraint c = testing::RandomConstraint(rng, n);
      EXPECT_EQ(mass.SatisfiesConstraint(c), SatisfiesDisjunctive(baskets, c));
    }
  }
}

// ------------------------------------------------------------ prop solvers

TEST(DeepProp, TseitinEquisatisfiableUnderCdcl) {
  Rng rng(61);
  const int n = 5;
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<prop::FormulaPtr> parts;
    int count = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < count; ++i) {
      std::vector<prop::FormulaPtr> lits;
      int width = static_cast<int>(rng.UniformInt(1, 3));
      for (int j = 0; j < width; ++j) {
        prop::FormulaPtr v = prop::Formula::Var(static_cast<int>(rng.UniformInt(0, n - 1)));
        lits.push_back(rng.Bernoulli(0.5) ? v : prop::Formula::Not(v));
      }
      parts.push_back(rng.Bernoulli(0.5) ? prop::Formula::And(lits)
                                         : prop::Formula::Or(lits));
    }
    prop::FormulaPtr f =
        rng.Bernoulli(0.5) ? prop::Formula::And(parts) : prop::Formula::Or(parts);
    bool truth_sat = !prop::Minset(*f, n)->empty();
    prop::Cnf cnf = prop::TseitinTransform(*f, n);
    Result<prop::SatResult> r = prop::CdclSolver().Solve(cnf);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->satisfiable, truth_sat);
  }
}

// --------------------------------------------------------- tiny universes

TEST(DeepEdge, SingletonUniverse) {
  const int n = 1;
  Universe u = Universe::Letters(n);
  DifferentialConstraint c = *ParseConstraint(u, "0 -> {A}");
  // L(∅, {A}) = {∅}.
  Result<std::vector<ItemSet>> L = EnumerateDecomposition(n, c.lhs(), c.rhs());
  ASSERT_TRUE(L.ok());
  EXPECT_EQ(*L, std::vector<ItemSet>{ItemSet()});
  // Implication with itself and proof.
  EXPECT_TRUE(CheckImplicationSat(n, {c}, c)->implied);
  Result<Derivation> d = DeriveImplied(n, {c}, c);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(ValidateDerivation(n, {c}, *d).ok());
}

TEST(DeepEdge, EmptyUniverse) {
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(0);
  f.at(Mask{0}) = 5;
  EXPECT_TRUE(IsFrequencyFunction(f));
  // The only constraints are ∅ -> {} and ∅ -> {∅}.
  DifferentialConstraint trivial(ItemSet(), SetFamily({ItemSet()}));
  DifferentialConstraint empty_family{ItemSet(), SetFamily()};
  EXPECT_TRUE(Satisfies(f, trivial));
  EXPECT_FALSE(Satisfies(f, empty_family));  // d(∅) = 5 ≠ 0.
  EXPECT_TRUE(CheckImplicationSat(0, {}, trivial)->implied);
  EXPECT_FALSE(CheckImplicationSat(0, {}, empty_family)->implied);
}

TEST(DeepEdge, ApriorOnDegenerateBaskets) {
  // All-empty baskets: only ∅ is frequent.
  BasketList b = *BasketList::Make(3, {0, 0, 0});
  AprioriResult r = *Apriori(b, 2);
  ASSERT_EQ(r.frequent.size(), 1u);
  EXPECT_EQ(r.frequent[0].items, 0u);
  EXPECT_EQ(r.frequent[0].support, 3);
}

}  // namespace
}  // namespace diffc
