#include <gtest/gtest.h>

#include <set>

#include "lattice/decomposition.h"
#include "prop/cnf.h"
#include "prop/dpll.h"
#include "prop/formula.h"
#include "prop/implication_constraint.h"
#include "prop/minterm.h"
#include "prop/tautology.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc {
namespace {

using prop::Cnf;
using prop::DnfFormula;
using prop::DpllSolver;
using prop::Formula;
using prop::FormulaPtr;

// ---------------------------------------------------------------- formulas

TEST(FormulaTest, ConstEval) {
  EXPECT_TRUE(Formula::True()->Eval(0));
  EXPECT_FALSE(Formula::False()->Eval(~Mask{0}));
}

TEST(FormulaTest, VarEval) {
  FormulaPtr v = Formula::Var(2);
  EXPECT_TRUE(v->Eval(0b100));
  EXPECT_FALSE(v->Eval(0b011));
}

TEST(FormulaTest, Connectives) {
  FormulaPtr f = Formula::And({Formula::Var(0), Formula::Not(Formula::Var(1))});
  EXPECT_TRUE(f->Eval(0b01));
  EXPECT_FALSE(f->Eval(0b11));
  EXPECT_FALSE(f->Eval(0b00));

  FormulaPtr g = Formula::Or({Formula::Var(0), Formula::Var(1)});
  EXPECT_TRUE(g->Eval(0b10));
  EXPECT_FALSE(g->Eval(0b00));
}

TEST(FormulaTest, EmptyConnectives) {
  EXPECT_TRUE(Formula::And({})->Eval(0));   // Empty conjunction = true.
  EXPECT_FALSE(Formula::Or({})->Eval(0));   // Empty disjunction = false.
}

TEST(FormulaTest, Implies) {
  FormulaPtr f = Formula::Implies(Formula::Var(0), Formula::Var(1));
  EXPECT_TRUE(f->Eval(0b00));
  EXPECT_TRUE(f->Eval(0b10));
  EXPECT_TRUE(f->Eval(0b11));
  EXPECT_FALSE(f->Eval(0b01));
}

TEST(FormulaTest, AndOfVars) {
  FormulaPtr f = Formula::AndOfVars(0b101);
  EXPECT_TRUE(f->Eval(0b111));
  EXPECT_FALSE(f->Eval(0b011));
}

TEST(FormulaTest, MaxVar) {
  EXPECT_EQ(Formula::True()->MaxVar(), -1);
  EXPECT_EQ(Formula::And({Formula::Var(3), Formula::Not(Formula::Var(5))})->MaxVar(), 5);
}

TEST(FormulaTest, ToString) {
  Universe u = Universe::Letters(3);
  FormulaPtr f = Formula::Or({Formula::And({Formula::Var(0), Formula::Not(Formula::Var(1))}),
                              Formula::Var(2)});
  EXPECT_EQ(f->ToString(u), "((A & !B) | C)");
}

// ---------------------------------------------------------------- minterms

TEST(MintermTest, MintermTrueExactlyAtItsAssignment) {
  const int n = 4;
  for (Mask x = 0; x < (Mask{1} << n); ++x) {
    FormulaPtr m = prop::MintermFormula(x, n);
    for (Mask a = 0; a < (Mask{1} << n); ++a) {
      EXPECT_EQ(m->Eval(a), a == x);
    }
  }
}

TEST(MintermTest, MinsetAndNegMinsetPartition) {
  const int n = 4;
  FormulaPtr f = Formula::Implies(Formula::Var(0), Formula::Var(2));
  std::vector<Mask> pos = *prop::Minset(*f, n);
  std::vector<Mask> neg = *prop::NegMinset(*f, n);
  EXPECT_EQ(pos.size() + neg.size(), std::size_t{1} << n);
  std::set<Mask> all(pos.begin(), pos.end());
  all.insert(neg.begin(), neg.end());
  EXPECT_EQ(all.size(), std::size_t{1} << n);
}

TEST(MintermTest, EntailsBasics) {
  const int n = 3;
  std::vector<FormulaPtr> premises{Formula::Implies(Formula::Var(0), Formula::Var(1)),
                                   Formula::Implies(Formula::Var(1), Formula::Var(2))};
  FormulaPtr chain = Formula::Implies(Formula::Var(0), Formula::Var(2));
  FormulaPtr wrong = Formula::Implies(Formula::Var(2), Formula::Var(0));
  EXPECT_TRUE(*prop::Entails(premises, *chain, n));
  EXPECT_FALSE(*prop::Entails(premises, *wrong, n));
}

// Proposition 5.3: negminset(X ⇒prop Y) = L(X, Y).
class Prop53Property : public ::testing::TestWithParam<int> {};

TEST_P(Prop53Property, NegMinsetEqualsLatticeDecomposition) {
  Rng rng(GetParam() * 7 + 1);
  const int n = 5;
  for (int iter = 0; iter < 20; ++iter) {
    DifferentialConstraint c = testing::RandomConstraint(
        rng, n, 0.3, static_cast<int>(rng.UniformInt(0, 3)), 0.35);
    FormulaPtr f = prop::ImplicationConstraintFormula(c.lhs(), c.rhs());
    std::vector<Mask> neg = *prop::NegMinset(*f, n);
    std::set<Mask> neg_set(neg.begin(), neg.end());
    for (Mask m = 0; m < (Mask{1} << n); ++m) {
      EXPECT_EQ(neg_set.count(m) > 0, InDecomposition(n, c.lhs(), c.rhs(), ItemSet(m)))
          << "m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop53Property, ::testing::Range(1, 11));

TEST(ImplicationConstraintTest, PaperExampleAlpha) {
  // α = A ⇒ B ∨ (C∧D); negminset(α) = {A, AC, AD} (Section 5 example).
  ItemSet a{0};
  SetFamily fam({ItemSet{1}, ItemSet{2, 3}});
  FormulaPtr f = prop::ImplicationConstraintFormula(a, fam);
  std::vector<Mask> neg = *prop::NegMinset(*f, 4);
  EXPECT_EQ(neg, (std::vector<Mask>{0b0001, 0b0101, 0b1001}));
}

// ---------------------------------------------------------------- CNF/DPLL

TEST(CnfTest, IsSatisfiedBy) {
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.AddClause({1, 2});
  cnf.AddClause({-1});
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, true}));
  EXPECT_FALSE(cnf.IsSatisfiedBy({true, true}));
  EXPECT_FALSE(cnf.IsSatisfiedBy({false, false}));
}

TEST(CnfTest, ToStringDimacsish) {
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.AddClause({1, -2});
  EXPECT_EQ(cnf.ToString(), "p cnf 2 1\n1 -2 0\n");
}

TEST(DpllTest, SatisfiableAndModelValid) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.AddClause({1, 2});
  cnf.AddClause({-1, 3});
  cnf.AddClause({-2, -3});
  DpllSolver solver;
  Result<prop::SatResult> r = solver.Solve(cnf);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->satisfiable);
  EXPECT_TRUE(cnf.IsSatisfiedBy(r->model));
}

TEST(DpllTest, Unsatisfiable) {
  Cnf cnf;
  cnf.num_vars = 1;
  cnf.AddClause({1});
  cnf.AddClause({-1});
  DpllSolver solver;
  Result<prop::SatResult> r = solver.Solve(cnf);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->satisfiable);
}

TEST(DpllTest, EmptyCnfIsSatisfiable) {
  Cnf cnf;
  cnf.num_vars = 0;
  Result<prop::SatResult> r = DpllSolver().Solve(cnf);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->satisfiable);
}

TEST(DpllTest, EmptyClauseIsUnsat) {
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.AddClause({});
  Result<prop::SatResult> r = DpllSolver().Solve(cnf);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->satisfiable);
}

TEST(DpllTest, RejectsOutOfRangeLiterals) {
  Cnf cnf;
  cnf.num_vars = 1;
  cnf.AddClause({2});
  EXPECT_FALSE(DpllSolver().Solve(cnf).ok());
}

TEST(DpllTest, StatsPopulated) {
  Cnf cnf;
  cnf.num_vars = 4;
  cnf.AddClause({1, 2});
  cnf.AddClause({-1, 3});
  cnf.AddClause({-3, 4});
  DpllSolver solver;
  ASSERT_TRUE(solver.Solve(cnf).ok());
  EXPECT_GT(solver.stats().decisions + solver.stats().propagations, 0u);
}

// Property: DPLL agrees with exhaustive evaluation on random small CNFs.
class DpllProperty : public ::testing::TestWithParam<int> {};

TEST_P(DpllProperty, AgreesWithBruteForce) {
  Rng rng(GetParam() * 41);
  for (int iter = 0; iter < 30; ++iter) {
    const int n = static_cast<int>(rng.UniformInt(1, 8));
    const int clauses = static_cast<int>(rng.UniformInt(1, 20));
    Cnf cnf;
    cnf.num_vars = n;
    for (int c = 0; c < clauses; ++c) {
      prop::Clause clause;
      int width = static_cast<int>(rng.UniformInt(1, 3));
      for (int l = 0; l < width; ++l) {
        int var = static_cast<int>(rng.UniformInt(0, n - 1));
        clause.push_back(rng.Bernoulli(0.5) ? var + 1 : -(var + 1));
      }
      cnf.AddClause(std::move(clause));
    }
    bool brute_sat = false;
    for (Mask m = 0; m < (Mask{1} << n) && !brute_sat; ++m) {
      std::vector<bool> assignment(n);
      for (int v = 0; v < n; ++v) assignment[v] = (m >> v) & 1;
      if (cnf.IsSatisfiedBy(assignment)) brute_sat = true;
    }
    Result<prop::SatResult> r = DpllSolver().Solve(cnf);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->satisfiable, brute_sat);
    if (r->satisfiable) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(r->model));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpllProperty, ::testing::Range(1, 13));

// ------------------------------------------------------------------ Tseitin

TEST(TseitinTest, EquisatisfiableOnRandomFormulas) {
  Rng rng(51);
  const int n = 5;
  for (int iter = 0; iter < 40; ++iter) {
    // Random depth-2 formula.
    std::vector<FormulaPtr> clauses;
    int parts = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < parts; ++i) {
      std::vector<FormulaPtr> lits;
      int width = static_cast<int>(rng.UniformInt(1, 3));
      for (int j = 0; j < width; ++j) {
        FormulaPtr v = Formula::Var(static_cast<int>(rng.UniformInt(0, n - 1)));
        lits.push_back(rng.Bernoulli(0.5) ? v : Formula::Not(v));
      }
      clauses.push_back(rng.Bernoulli(0.5) ? Formula::And(lits) : Formula::Or(lits));
    }
    FormulaPtr f = rng.Bernoulli(0.5) ? Formula::And(clauses) : Formula::Or(clauses);

    bool truth_sat = !prop::Minset(*f, n)->empty();
    Cnf cnf = prop::TseitinTransform(*f, n);
    Result<prop::SatResult> r = DpllSolver().Solve(cnf);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->satisfiable, truth_sat);
    if (r->satisfiable) {
      // The model restricted to the original variables satisfies f.
      Mask assignment = 0;
      for (int v = 0; v < n; ++v) {
        if (r->model[v]) assignment |= Mask{1} << v;
      }
      EXPECT_TRUE(f->Eval(assignment));
    }
  }
}

TEST(TseitinTest, ConstantsEncode) {
  Cnf t = prop::TseitinTransform(*Formula::True(), 0);
  EXPECT_TRUE(DpllSolver().Solve(t)->satisfiable);
  Cnf f = prop::TseitinTransform(*Formula::False(), 0);
  EXPECT_FALSE(DpllSolver().Solve(f)->satisfiable);
}

// ---------------------------------------------------------------- tautology

TEST(TautologyTest, DnfEval) {
  DnfFormula f;
  f.num_vars = 2;
  f.conjuncts = {{0b01, 0b10}};  // A ∧ ¬B.
  EXPECT_TRUE(f.Eval(0b01));
  EXPECT_FALSE(f.Eval(0b11));
  EXPECT_FALSE(f.Eval(0b00));
}

TEST(TautologyTest, LawOfExcludedMiddle) {
  DnfFormula f;
  f.num_vars = 1;
  f.conjuncts = {{0b1, 0}, {0, 0b1}};  // A ∨ ¬A.
  EXPECT_TRUE(*prop::IsDnfTautology(f));
  EXPECT_TRUE(*prop::IsDnfTautologyExhaustive(f));
}

TEST(TautologyTest, SingleConjunctIsNot) {
  DnfFormula f;
  f.num_vars = 2;
  f.conjuncts = {{0b01, 0}};
  EXPECT_FALSE(*prop::IsDnfTautology(f));
}

TEST(TautologyTest, EmptyDnfIsFalse) {
  DnfFormula f;
  f.num_vars = 1;
  EXPECT_FALSE(*prop::IsDnfTautology(f));
}

TEST(TautologyTest, SatMatchesExhaustiveOnRandomDnfs) {
  for (int seed = 1; seed <= 40; ++seed) {
    DnfFormula f = prop::RandomDnf(5, 8, 2, seed);
    EXPECT_EQ(*prop::IsDnfTautology(f), *prop::IsDnfTautologyExhaustive(f))
        << "seed=" << seed;
  }
}

TEST(TautologyTest, RandomDnfShape) {
  DnfFormula f = prop::RandomDnf(6, 10, 3, 9);
  EXPECT_EQ(f.num_vars, 6);
  ASSERT_EQ(f.conjuncts.size(), 10u);
  for (const prop::DnfConjunct& c : f.conjuncts) {
    EXPECT_EQ(Popcount(c.pos | c.neg), 3);
    EXPECT_EQ(c.pos & c.neg, 0u);
  }
}

}  // namespace
}  // namespace diffc
