#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lattice/decomposition.h"
#include "lattice/hitting_set.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc {
namespace {

SetFamily FamilyOf(std::vector<Mask> masks) { return SetFamily::FromMasks(masks); }

// ------------------------------------------------------------ witness sets

TEST(WitnessTest, PaperExample27) {
  // S = {A,B,C,D}; W({B, CD}) = {BC, BD, BCD}.
  SetFamily fam = FamilyOf({0b0010, 0b1100});
  Result<std::vector<ItemSet>> ws = AllWitnessSets(fam);
  ASSERT_TRUE(ws.ok());
  std::vector<ItemSet> expected{ItemSet(0b0110), ItemSet(0b1010), ItemSet(0b1110)};
  EXPECT_EQ(*ws, expected);
}

TEST(WitnessTest, PaperExample27Overlap) {
  // W({BC, BD}) = {B, BC, BD, CD, BCD}.
  SetFamily fam = FamilyOf({0b0110, 0b1010});
  Result<std::vector<ItemSet>> ws = AllWitnessSets(fam);
  ASSERT_TRUE(ws.ok());
  std::set<Mask> got;
  for (const ItemSet& w : *ws) got.insert(w.bits());
  EXPECT_EQ(got, (std::set<Mask>{0b0010, 0b0110, 0b1010, 0b1100, 0b1110}));
}

TEST(WitnessTest, EmptyFamilyHasEmptyWitness) {
  // W(∅) = {∅} (Definition 2.5).
  Result<std::vector<ItemSet>> ws = AllWitnessSets(SetFamily());
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(*ws, std::vector<ItemSet>{ItemSet()});
  EXPECT_TRUE(HasWitnessSet(SetFamily()));
}

TEST(WitnessTest, EmptyMemberKillsAllWitnesses) {
  SetFamily fam({ItemSet(), ItemSet{1}});
  EXPECT_FALSE(HasWitnessSet(fam));
  Result<std::vector<ItemSet>> ws = AllWitnessSets(fam);
  ASSERT_TRUE(ws.ok());
  EXPECT_TRUE(ws->empty());
}

TEST(WitnessTest, IsWitnessSetChecksBothConditions) {
  SetFamily fam = FamilyOf({0b0010, 0b1100});
  EXPECT_TRUE(IsWitnessSet(fam, ItemSet(0b0110)));
  EXPECT_FALSE(IsWitnessSet(fam, ItemSet(0b0010)));  // Misses CD.
  EXPECT_FALSE(IsWitnessSet(fam, ItemSet(0b0111)));  // A outside ∪Y.
}

TEST(WitnessTest, GuardOnLargeUnion) {
  std::vector<ItemSet> members;
  for (int i = 0; i < 30; ++i) members.push_back(ItemSet::Singleton(i));
  Result<std::vector<ItemSet>> ws = AllWitnessSets(SetFamily(members), /*max_union_bits=*/24);
  EXPECT_EQ(ws.status().code(), StatusCode::kResourceExhausted);
}

TEST(MinimalWitnessTest, PaperExample) {
  // Minimal witness sets of {B, CD}: BC and BD.
  SetFamily fam = FamilyOf({0b0010, 0b1100});
  Result<std::vector<ItemSet>> mins = MinimalWitnessSets(fam);
  ASSERT_TRUE(mins.ok());
  EXPECT_EQ(*mins, (std::vector<ItemSet>{ItemSet(0b0110), ItemSet(0b1010)}));
}

TEST(MinimalWitnessTest, SingletonMembersForceFullUnion) {
  SetFamily fam = FamilyOf({0b001, 0b010, 0b100});
  Result<std::vector<ItemSet>> mins = MinimalWitnessSets(fam);
  ASSERT_TRUE(mins.ok());
  EXPECT_EQ(*mins, std::vector<ItemSet>{ItemSet(0b111)});
}

TEST(MinimalWitnessTest, EmptyMemberYieldsNone) {
  Result<std::vector<ItemSet>> mins = MinimalWitnessSets(SetFamily({ItemSet()}));
  ASSERT_TRUE(mins.ok());
  EXPECT_TRUE(mins->empty());
}

// Property: minimal witness sets = ⊆-minimal elements of AllWitnessSets,
// on random families.
class MinimalWitnessProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinimalWitnessProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  const int n = 7;
  for (int iter = 0; iter < 20; ++iter) {
    int members = static_cast<int>(rng.UniformInt(0, 4));
    SetFamily fam = SetFamily::FromMasks(rng.RandomFamily(n, members, 0.35));
    Result<std::vector<ItemSet>> all = AllWitnessSets(fam);
    ASSERT_TRUE(all.ok());
    std::vector<ItemSet> expected;
    for (const ItemSet& w : *all) {
      bool minimal = true;
      for (const ItemSet& w2 : *all) {
        if (w2 != w && w2.IsSubsetOf(w)) {
          minimal = false;
          break;
        }
      }
      if (minimal) expected.push_back(w);
    }
    Result<std::vector<ItemSet>> mins = MinimalWitnessSets(fam);
    ASSERT_TRUE(mins.ok());
    EXPECT_EQ(*mins, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimalWitnessProperty, ::testing::Range(1, 9));

// --------------------------------------------------- lattice decomposition

TEST(DecompositionTest, PaperExample27) {
  // L(A, {B, CD}) = {A, AC, AD}.
  Result<std::vector<ItemSet>> L =
      EnumerateDecomposition(4, ItemSet{0}, FamilyOf({0b0010, 0b1100}));
  ASSERT_TRUE(L.ok());
  EXPECT_EQ(*L, (std::vector<ItemSet>{ItemSet(0b0001), ItemSet(0b0101), ItemSet(0b1001)}));
}

TEST(DecompositionTest, PaperExample27Overlap) {
  // L(A, {BC, BD}) = {A, AB, AC, AD, ACD}.
  Result<std::vector<ItemSet>> L =
      EnumerateDecomposition(4, ItemSet{0}, FamilyOf({0b0110, 0b1010}));
  ASSERT_TRUE(L.ok());
  std::set<Mask> got;
  for (const ItemSet& s : *L) got.insert(s.bits());
  EXPECT_EQ(got, (std::set<Mask>{0b0001, 0b0011, 0b0101, 0b1001, 0b1101}));
}

TEST(DecompositionTest, ExamplesFromSection3) {
  // Example 3.2: L(A, {B}) = {A, AC}; L(B, {C}) = {B, AB}; L(C, {A}) = {C, BC}.
  auto enumerate = [](ItemSet x, SetFamily fam) {
    return *EnumerateDecomposition(3, x, fam);
  };
  EXPECT_EQ(enumerate(ItemSet{0}, SetFamily({ItemSet{1}})),
            (std::vector<ItemSet>{ItemSet(0b001), ItemSet(0b101)}));
  EXPECT_EQ(enumerate(ItemSet{1}, SetFamily({ItemSet{2}})),
            (std::vector<ItemSet>{ItemSet(0b010), ItemSet(0b011)}));
  EXPECT_EQ(enumerate(ItemSet{2}, SetFamily({ItemSet{0}})),
            (std::vector<ItemSet>{ItemSet(0b100), ItemSet(0b110)}));
}

TEST(DecompositionTest, EmptyFamilyIsFullUpset) {
  // L(X, ∅) = [X, S].
  Result<std::uint64_t> count = CountDecomposition(4, ItemSet{1}, SetFamily());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 8u);
}

TEST(DecompositionTest, TrivialIffEmpty) {
  SetFamily fam({ItemSet{0}});
  EXPECT_TRUE(DecompositionIsEmpty(ItemSet{0, 1}, fam));
  EXPECT_FALSE(DecompositionIsEmpty(ItemSet{1}, fam));
  Result<std::vector<ItemSet>> L = EnumerateDecomposition(3, ItemSet{0, 1}, fam);
  ASSERT_TRUE(L.ok());
  EXPECT_TRUE(L->empty());
}

TEST(DecompositionTest, MembershipAgreesWithEnumeration) {
  Rng rng(99);
  const int n = 6;
  for (int iter = 0; iter < 30; ++iter) {
    ItemSet x(rng.RandomMask(n, 0.25));
    SetFamily fam = SetFamily::FromMasks(rng.RandomFamily(n, 2, 0.3));
    Result<std::vector<ItemSet>> L = EnumerateDecomposition(n, x, fam);
    ASSERT_TRUE(L.ok());
    std::set<Mask> in_l;
    for (const ItemSet& s : *L) in_l.insert(s.bits());
    for (Mask m = 0; m < (Mask{1} << n); ++m) {
      EXPECT_EQ(InDecomposition(n, x, fam, ItemSet(m)), in_l.count(m) > 0) << m;
    }
  }
}

TEST(DecompositionTest, CountMatchesEnumeration) {
  Rng rng(123);
  const int n = 7;
  for (int iter = 0; iter < 20; ++iter) {
    ItemSet x(rng.RandomMask(n, 0.2));
    SetFamily fam = SetFamily::FromMasks(rng.RandomFamily(n, 3, 0.3));
    Result<std::vector<ItemSet>> L = EnumerateDecomposition(n, x, fam);
    Result<std::uint64_t> count = CountDecomposition(n, x, fam);
    ASSERT_TRUE(L.ok());
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(L->size(), *count);
  }
}

// Definition 2.6 as an identity: L(X, Y) = ∪_{W ∈ W(Y)} [X, S∖W].
class IntervalCoverProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalCoverProperty, CoverEqualsDecomposition) {
  Rng rng(GetParam() * 31);
  const int n = 6;
  for (int iter = 0; iter < 20; ++iter) {
    ItemSet x(rng.RandomMask(n, 0.25));
    int members = static_cast<int>(rng.UniformInt(0, 3));
    SetFamily fam = SetFamily::FromMasks(rng.RandomFamily(n, members, 0.35));
    Result<std::vector<Interval>> cover = DecompositionIntervalCover(n, x, fam);
    ASSERT_TRUE(cover.ok());
    for (Mask m = 0; m < (Mask{1} << n); ++m) {
      ItemSet u(m);
      bool in_cover = false;
      for (const Interval& iv : *cover) {
        if (iv.Contains(u)) {
          in_cover = true;
          break;
        }
      }
      EXPECT_EQ(in_cover, InDecomposition(n, x, fam, u)) << "m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalCoverProperty, ::testing::Range(1, 9));

// Proposition 2.8: L(X, Y) = L(X, Y ∪ {Z}) ∪ L(X ∪ Z, Y).
class Prop28Property : public ::testing::TestWithParam<int> {};

TEST_P(Prop28Property, Holds) {
  Rng rng(GetParam() * 77 + 5);
  const int n = 6;
  for (int iter = 0; iter < 25; ++iter) {
    ItemSet x(rng.RandomMask(n, 0.25));
    ItemSet z(rng.RandomMask(n, 0.3));
    SetFamily fam = SetFamily::FromMasks(rng.RandomFamily(n, 2, 0.3));
    SetFamily with_z = fam.WithMember(z);
    for (Mask m = 0; m < (Mask{1} << n); ++m) {
      ItemSet u(m);
      bool lhs = InDecomposition(n, x, fam, u);
      bool rhs = InDecomposition(n, x, with_z, u) ||
                 InDecomposition(n, x.Union(z), fam, u);
      EXPECT_EQ(lhs, rhs) << "m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop28Property, ::testing::Range(1, 9));

}  // namespace
}  // namespace diffc
