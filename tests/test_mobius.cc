#include <gtest/gtest.h>

#include "lattice/mobius.h"
#include "util/random.h"
#include "util/rational.h"

namespace diffc {
namespace {

TEST(SetFunctionTest, MakeValidatesSize) {
  EXPECT_TRUE(SetFunction<double>::Make(0).ok());
  EXPECT_TRUE(SetFunction<double>::Make(10).ok());
  EXPECT_FALSE(SetFunction<double>::Make(-1).ok());
  EXPECT_FALSE(SetFunction<double>::Make(kMaxSetFunctionBits + 1).ok());
}

TEST(SetFunctionTest, ZeroInitializedAndIndexable) {
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(3);
  EXPECT_EQ(f.size(), 8u);
  for (Mask m = 0; m < 8; ++m) EXPECT_EQ(f.at(m), 0);
  f.at(ItemSet{0, 2}) = 7;
  EXPECT_EQ(f.at(0b101), 7);
}

TEST(MobiusTest, PaperExample24DensityAtA) {
  // S={A,B,C,D}: d_f(A) = f(A) - f(AB) - f(AC) - f(AD)
  //                       + f(ABC) + f(ABD) + f(ACD) - f(ABCD).
  SetFunction<double> f = *SetFunction<double>::Make(4);
  Rng rng(5);
  for (Mask m = 0; m < 16; ++m) f.at(m) = static_cast<double>(rng.UniformInt(0, 20));
  SetFunction<double> d = Density(f);
  const Mask A = 0b0001, B = 0b0010, C = 0b0100, D = 0b1000;
  double expected = f.at(A) - f.at(A | B) - f.at(A | C) - f.at(A | D) +
                    f.at(A | B | C) + f.at(A | B | D) + f.at(A | C | D) -
                    f.at(A | B | C | D);
  EXPECT_DOUBLE_EQ(d.at(A), expected);
}

TEST(MobiusTest, PaperExample24ReconstructionAtA) {
  // f(A) = d(A) + d(AB) + d(AC) + d(AD) + d(ABC) + d(ABD) + d(ACD) + d(ABCD).
  SetFunction<double> f = *SetFunction<double>::Make(4);
  Rng rng(6);
  for (Mask m = 0; m < 16; ++m) f.at(m) = static_cast<double>(rng.UniformInt(0, 20));
  SetFunction<double> d = Density(f);
  double sum = 0;
  ForEachSuperset(0b0001, 0b1111, [&](Mask u) { sum += d.at(u); });
  EXPECT_DOUBLE_EQ(sum, f.at(0b0001));
}

TEST(MobiusTest, RoundTripIdentityInt) {
  Rng rng(7);
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(8);
  for (Mask m = 0; m < f.size(); ++m) f.at(m) = rng.UniformInt(-50, 50);
  EXPECT_EQ(FromDensity(Density(f)), f);
  EXPECT_EQ(Density(FromDensity(f)), f);
}

TEST(MobiusTest, RoundTripIdentityRational) {
  Rng rng(8);
  SetFunction<Rational> f = *SetFunction<Rational>::Make(5);
  for (Mask m = 0; m < f.size(); ++m) {
    f.at(m) = Rational(rng.UniformInt(-9, 9), rng.UniformInt(1, 9));
  }
  EXPECT_EQ(FromDensity(Density(f)), f);
}

TEST(MobiusTest, FastMatchesNaive) {
  Rng rng(9);
  for (int n = 0; n <= 8; ++n) {
    SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(n);
    for (Mask m = 0; m < f.size(); ++m) f.at(m) = rng.UniformInt(-100, 100);
    EXPECT_EQ(Density(f), NaiveDensity(f)) << "n=" << n;
  }
}

TEST(MobiusTest, DensityOfIndicatorDownSet) {
  // f(W) = 1 iff W ⊆ U has density = indicator of U (Theorem 3.5's f_U).
  const int n = 6;
  const Mask u = 0b101100;
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(n);
  ForEachSubset(u, [&](Mask w) { f.at(w) = 1; });
  SetFunction<std::int64_t> d = Density(f);
  for (Mask m = 0; m < f.size(); ++m) {
    EXPECT_EQ(d.at(m), m == u ? 1 : 0) << m;
  }
}

TEST(MobiusTest, ZetaOfPointMass) {
  // d = indicator of U ⇒ f(X) = [X ⊆ U].
  const int n = 5;
  const Mask u = 0b01101;
  SetFunction<std::int64_t> d = *SetFunction<std::int64_t>::Make(n);
  d.at(u) = 1;
  SetFunction<std::int64_t> f = FromDensity(d);
  for (Mask m = 0; m < f.size(); ++m) {
    EXPECT_EQ(f.at(m), IsSubset(m, u) ? 1 : 0) << m;
  }
}

TEST(MobiusTest, LinearityOfDensity) {
  Rng rng(10);
  const int n = 6;
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(n);
  SetFunction<std::int64_t> g = *SetFunction<std::int64_t>::Make(n);
  for (Mask m = 0; m < f.size(); ++m) {
    f.at(m) = rng.UniformInt(-20, 20);
    g.at(m) = rng.UniformInt(-20, 20);
  }
  SetFunction<std::int64_t> sum = *SetFunction<std::int64_t>::Make(n);
  for (Mask m = 0; m < f.size(); ++m) sum.at(m) = f.at(m) + g.at(m);
  SetFunction<std::int64_t> df = Density(f), dg = Density(g), dsum = Density(sum);
  for (Mask m = 0; m < f.size(); ++m) EXPECT_EQ(dsum.at(m), df.at(m) + dg.at(m));
}

TEST(MobiusTest, TrivialUniverse) {
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(0);
  f.at(Mask{0}) = 42;
  EXPECT_EQ(Density(f).at(Mask{0}), 42);
  EXPECT_EQ(FromDensity(f).at(Mask{0}), 42);
}

// Remark 2.3 uniqueness: the density is the only d with f(X) = Σ_{U⊇X} d(U).
class MobiusUniqueness : public ::testing::TestWithParam<int> {};

TEST_P(MobiusUniqueness, DensityIsUnique) {
  Rng rng(GetParam() * 1000 + 13);
  const int n = 5;
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(n);
  for (Mask m = 0; m < f.size(); ++m) f.at(m) = rng.UniformInt(-30, 30);
  SetFunction<std::int64_t> d = Density(f);
  // Verify equation (5) pointwise.
  for (Mask x = 0; x < f.size(); ++x) {
    std::int64_t sum = 0;
    ForEachSuperset(x, FullMask(n), [&](Mask u) { sum += d.at(u); });
    EXPECT_EQ(sum, f.at(x));
  }
  // Perturbing d anywhere breaks equation (5) somewhere.
  Mask where = rng.RandomMask(n, 0.5);
  d.at(where) += 1;
  SetFunction<std::int64_t> f2 = FromDensity(d);
  EXPECT_NE(f2, f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MobiusUniqueness, ::testing::Range(1, 11));

}  // namespace
}  // namespace diffc
