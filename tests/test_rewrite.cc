// Rule-driven rewrite canonicalizer (DESIGN.md §14): a slinky-style rule
// tester verifies every registered rule on hundreds of seeded random
// instances by materializing L(C) on small universes before and after and
// asserting set equality; plus fixpoint-driver properties (termination
// within the pass bound, idempotence at fixpoint, cost monotonicity),
// registry invariants, the n=64 boundary, and prepare/cache integration of
// `PrepareOptions`.

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "engine/caches.h"
#include "engine/implication_engine.h"
#include "engine/prepared_premises.h"
#include "rewrite/lc_check.h"
#include "rewrite/rewrite_rule.h"
#include "rewrite/simplifier.h"
#include "test_helpers.h"
#include "util/random.h"

namespace diffc {
namespace {

using rewrite::LcEquivalent;
using rewrite::Probe;
using rewrite::RewriteCost;
using rewrite::RewriteRule;
using rewrite::RewriteRuleRegistry;
using rewrite::RuleProbe;
using rewrite::Simplify;
using rewrite::SimplifyOptions;
using rewrite::SimplifyStats;

// ---------------------------------------------------------------------------
// Instance generators: random sets with planted redundancy so each rule has
// something to fire on. All draw from the shared helpers, densities chosen
// so instances mix redundant and irreducible constraints.

// A member that is a subset of `lhs` makes the constraint trivial.
DifferentialConstraint PlantTrivial(Rng& rng, int n) {
  ItemSet lhs(rng.RandomMask(n, 0.5));
  if (lhs.empty()) lhs = ItemSet::Singleton(static_cast<int>(rng.UniformInt(0, n - 1)));
  SetFamily rhs = testing::RandomConstraint(rng, n).rhs();
  return DifferentialConstraint(lhs, rhs.WithMember(ItemSet(rng.RandomSubsetOf(lhs.bits()))));
}

// A family holding both Y and a strict superset of Y is non-minimal.
DifferentialConstraint PlantNonMinimal(Rng& rng, int n) {
  DifferentialConstraint base = testing::RandomConstraint(rng, n);
  ItemSet y = base.rhs().member(0);
  ItemSet wider = y.Union(ItemSet(rng.RandomMask(n, 0.4)));
  if (wider == y) wider = y.Union(ItemSet::Singleton(static_cast<int>(rng.UniformInt(0, n - 1))));
  return DifferentialConstraint(base.lhs(), base.rhs().WithMember(wider));
}

// Members overlapping the left-hand side can be narrowed to Y∖X.
DifferentialConstraint PlantOverlap(Rng& rng, int n) {
  ItemSet lhs(rng.RandomMask(n, 0.4));
  if (lhs.empty()) lhs = ItemSet::Singleton(static_cast<int>(rng.UniformInt(0, n - 1)));
  std::vector<ItemSet> members;
  const int count = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < count; ++i) {
    ItemSet outside(rng.RandomMask(n, 0.3));
    ItemSet inside(rng.RandomSubsetOf(lhs.bits()));
    ItemSet y = outside.Union(inside);
    if (y.Minus(lhs).empty()) {
      // Keep the constraint nontrivial: force a bit outside the lhs.
      ItemSet extra = lhs.ComplementIn(n);
      if (extra.empty()) continue;
      y = y.Union(ItemSet::Singleton(LowestBit(extra.bits())));
    }
    members.push_back(y);
  }
  if (members.empty()) members.push_back(lhs.ComplementIn(n));
  return DifferentialConstraint(lhs, SetFamily(std::move(members)));
}

// An augmented/added copy of `base`: wider lhs, extra member — absorbed by
// `base` per the Figure 1 augmentation/addition schemas.
DifferentialConstraint PlantAbsorbed(Rng& rng, int n, const DifferentialConstraint& base) {
  ItemSet lhs = base.lhs().Union(ItemSet(rng.RandomMask(n, 0.3)));
  SetFamily rhs = base.rhs();
  if (rng.Bernoulli(0.5)) {
    rhs = rhs.WithMember(ItemSet(rng.RandomMask(n, 0.4)));  // Addition.
  }
  return DifferentialConstraint(lhs, rhs);
}

ConstraintSet BaseSet(Rng& rng, int n) {
  return testing::RandomConstraintSet(rng, n, static_cast<int>(rng.UniformInt(2, 5)));
}

// ---------------------------------------------------------------------------
// The rule tester: seeded random instances through one rule at a time,
// ground-truthed against the materialized L(C).

void TestRule(const std::string& name, int min_applied,
              const std::function<ConstraintSet(Rng&, int)>& make_instance) {
  const RewriteRule* rule = RewriteRuleRegistry::Global().Find(name);
  ASSERT_NE(rule, nullptr) << "rule not registered: " << name;
  Rng rng(0xD1FFC + static_cast<std::uint64_t>(name.size()) * 131 +
          static_cast<std::uint64_t>(name[0]));
  int applied = 0;
  int attempts = 0;
  const int max_attempts = 50 * min_applied;
  while (applied < min_applied && attempts < max_attempts) {
    ++attempts;
    const int n = static_cast<int>(rng.UniformInt(4, 10));
    const ConstraintSet instance = make_instance(rng, n);
    const RuleProbe probe = Probe(*rule, n, instance);
    if (probe.edits == 0) continue;
    ++applied;
    // Progress: the cost triple strictly decreases on application.
    EXPECT_LT(probe.after, probe.before) << name << " attempt " << attempts;
    // Soundness: L(C) is bit-for-bit identical over all 2^n subsets.
    ItemSet witness;
    Result<bool> same = LcEquivalent(n, instance, probe.result, &witness);
    ASSERT_TRUE(same.ok());
    ASSERT_TRUE(*same) << name << " changed L(C): witness mask=" << witness.bits()
                       << " n=" << n;
    // Rule-local fixpoint: a second application finds nothing new.
    ConstraintSet again = probe.result;
    EXPECT_EQ(rule->Apply(n, &again), 0u) << name << " not idempotent";
  }
  EXPECT_GE(applied, min_applied)
      << name << " fired on too few instances (" << applied << "/" << min_applied
      << " in " << attempts << " attempts)";
}

TEST(RewriteRuleTester, DropTrivial) {
  TestRule("drop-trivial", 200, [](Rng& rng, int n) {
    ConstraintSet c = BaseSet(rng, n);
    const int planted = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < planted; ++i) c.push_back(PlantTrivial(rng, n));
    return c;
  });
}

TEST(RewriteRuleTester, MinimizeRhs) {
  TestRule("minimize-rhs", 200, [](Rng& rng, int n) {
    ConstraintSet c = BaseSet(rng, n);
    const int planted = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < planted; ++i) c.push_back(PlantNonMinimal(rng, n));
    return c;
  });
}

TEST(RewriteRuleTester, NarrowMembers) {
  TestRule("narrow-members", 200, [](Rng& rng, int n) {
    ConstraintSet c = BaseSet(rng, n);
    const int planted = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < planted; ++i) c.push_back(PlantOverlap(rng, n));
    return c;
  });
}

TEST(RewriteRuleTester, AbsorbSubsumed) {
  TestRule("absorb-subsumed", 200, [](Rng& rng, int n) {
    ConstraintSet c = BaseSet(rng, n);
    const DifferentialConstraint& base = c[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(c.size()) - 1))];
    ConstraintSet out = c;
    out.push_back(PlantAbsorbed(rng, n, base));
    if (rng.Bernoulli(0.3)) out.push_back(c[0]);  // Exact duplicate.
    return out;
  });
}

TEST(RewriteRuleTester, MergeSameLhs) {
  TestRule("merge-same-lhs", 200, [](Rng& rng, int n) {
    ConstraintSet c = BaseSet(rng, n);
    // Same-lhs singleton families merge into one cross-union member.
    ItemSet lhs(rng.RandomMask(n, 0.3));
    const int group = static_cast<int>(rng.UniformInt(2, 3));
    for (int i = 0; i < group; ++i) {
      Mask m = rng.RandomMask(n, 0.4) & ~lhs.bits();
      if (m == 0) m = ItemSet::Singleton(static_cast<int>(rng.UniformInt(0, n - 1))).bits();
      c.push_back(DifferentialConstraint(lhs, SetFamily({ItemSet(m)})));
    }
    return c;
  });
}

// ---------------------------------------------------------------------------
// Registry invariants.

TEST(RewriteRegistryTest, CatalogsTheFiveBuiltinRules) {
  const std::vector<const RewriteRule*>& rules = RewriteRuleRegistry::Global().rules();
  ASSERT_EQ(rules.size(), 5u);
  EXPECT_STREQ(rules[0]->name(), "drop-trivial");
  EXPECT_STREQ(rules[1]->name(), "minimize-rhs");
  EXPECT_STREQ(rules[2]->name(), "narrow-members");
  EXPECT_STREQ(rules[3]->name(), "absorb-subsumed");
  EXPECT_STREQ(rules[4]->name(), "merge-same-lhs");
  // Structural rules run at level 1; the rewriting ones need level 2.
  EXPECT_EQ(rules[0]->min_level(), 1);
  EXPECT_EQ(rules[1]->min_level(), 1);
  EXPECT_EQ(rules[2]->min_level(), 2);
  EXPECT_EQ(rules[3]->min_level(), 1);
  EXPECT_EQ(rules[4]->min_level(), 2);
  EXPECT_EQ(RewriteRuleRegistry::Global().Find("no-such-rule"), nullptr);
}

// ---------------------------------------------------------------------------
// Fixpoint-driver properties.

ConstraintSet RedundantInstance(Rng& rng, int n) {
  ConstraintSet c = BaseSet(rng, n);
  if (rng.Bernoulli(0.6)) c.push_back(PlantTrivial(rng, n));
  if (rng.Bernoulli(0.6)) c.push_back(PlantNonMinimal(rng, n));
  if (rng.Bernoulli(0.6)) c.push_back(PlantOverlap(rng, n));
  if (rng.Bernoulli(0.6)) c.push_back(PlantAbsorbed(rng, n, c[0]));
  if (rng.Bernoulli(0.4)) c.push_back(c[0]);
  return c;
}

TEST(SimplifierTest, PreservesLcReachesFixpointAndIsIdempotent) {
  Rng rng(20260809);
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.UniformInt(4, 10));
    const ConstraintSet instance = RedundantInstance(rng, n);
    for (int level = 1; level <= 2; ++level) {
      SimplifyOptions opts;
      opts.level = level;
      SimplifyStats stats;
      const ConstraintSet out = Simplify(n, instance, opts, &stats);
      // Terminates within the automatic pass bound, at a true fixpoint.
      EXPECT_TRUE(stats.reached_fixpoint) << "round " << round << " level " << level;
      EXPECT_LE(stats.passes, rewrite::SimplifyPassBound(stats.before));
      // Cost never increases; the triples match the returned set.
      EXPECT_FALSE(stats.before < stats.after);
      EXPECT_EQ(stats.after, RewriteCost::Of(out));
      // L(C) preserved exactly.
      ItemSet witness;
      Result<bool> same = LcEquivalent(n, instance, out, &witness);
      ASSERT_TRUE(same.ok());
      ASSERT_TRUE(*same) << "level " << level << " witness mask=" << witness.bits();
      // At-fixpoint idempotence: a second run edits nothing and returns
      // the identical (sorted) set.
      SimplifyStats again_stats;
      const ConstraintSet again = Simplify(n, out, opts, &again_stats);
      EXPECT_EQ(again_stats.applied_total, 0u);
      EXPECT_EQ(again, out);
    }
  }
}

TEST(SimplifierTest, PerRuleBreakdownSumsToTotal) {
  Rng rng(77);
  const int n = 8;
  const ConstraintSet instance = RedundantInstance(rng, n);
  SimplifyStats stats;
  (void)Simplify(n, instance, SimplifyOptions{}, &stats);  // Only stats matter here.
  ASSERT_EQ(stats.applied_by_rule.size(), 5u);  // Level 2 runs all five rules.
  std::size_t sum = 0;
  for (const auto& [rule, edits] : stats.applied_by_rule) sum += edits;
  EXPECT_EQ(sum, stats.applied_total);
}

// The n=64 boundary: full-width masks through every rule, no UB, and the
// expected structural results.
TEST(SimplifierTest, HandlesN64Boundary) {
  const int n = 64;
  const ItemSet top = ItemSet::Singleton(63);
  const ItemSet next = ItemSet::Singleton(62);
  ConstraintSet c;
  // Trivial at the boundary: member {63} ⊆ lhs {62, 63}.
  c.push_back(DifferentialConstraint(top.Union(next), SetFamily({top})));
  // Narrowable: member {62, 63} overlaps lhs {63}.
  c.push_back(DifferentialConstraint(top, SetFamily({top.Union(next)})));
  // Absorbable: augmented copy of the previous constraint.
  c.push_back(DifferentialConstraint(top.Union(ItemSet::Singleton(0)),
                                     SetFamily({top.Union(next)})));
  // Mergeable same-lhs singletons over high bits.
  c.push_back(DifferentialConstraint(ItemSet::Singleton(1), SetFamily({next})));
  c.push_back(DifferentialConstraint(ItemSet::Singleton(1), SetFamily({top})));
  SimplifyStats stats;
  const ConstraintSet out = Simplify(n, c, SimplifyOptions{}, &stats);
  EXPECT_TRUE(stats.reached_fixpoint);
  ASSERT_EQ(out.size(), 2u);
  // {63} -> {{62, 63}} narrowed to {63} -> {{62}}.
  EXPECT_EQ(out[1], DifferentialConstraint(top, SetFamily({next})));
  // {1} -> {{62}}, {1} -> {{63}} merged to {1} -> {{62, 63}}.
  EXPECT_EQ(out[0],
            DifferentialConstraint(ItemSet::Singleton(1), SetFamily({next.Union(top)})));
}

// ---------------------------------------------------------------------------
// Prepare/cache integration of PrepareOptions.

TEST(PrepareRewriteTest, RewriterPathPopulatesStats) {
  const int n = 8;
  Rng rng(5150);
  ConstraintSet premises = RedundantInstance(rng, n);
  Result<std::shared_ptr<const PreparedPremises>> built =
      PreparedPremises::Build(n, premises);  // Default: rewriter at level 2.
  ASSERT_TRUE(built.ok());
  const PrepareStats& s = (*built)->stats();
  EXPECT_TRUE(s.used_rewriter);
  EXPECT_EQ(s.simplify_level, 2);
  EXPECT_GE(s.rewrite_passes, 1u);
  EXPECT_EQ(s.rewrite_rule_applied.size(), 5u);
  EXPECT_EQ(s.cost_constraints_before, premises.size());
  EXPECT_EQ(s.cost_constraints_after, (*built)->constraints().size());
  // Constraint bookkeeping: every removed constraint is attributed to
  // exactly one of the three constraint-dropping rules.
  EXPECT_EQ(s.canonical_constraints,
            s.input_constraints - s.dropped_trivial - s.dropped_duplicates -
                s.merged_constraints);
  // The canonical set excludes exactly the same lattice points.
  Result<bool> same = LcEquivalent(n, premises, (*built)->constraints());
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(*same);
}

TEST(PrepareRewriteTest, LegacyInlinePathIsPreserved) {
  const int n = 8;
  Rng rng(5151);
  ConstraintSet premises = RedundantInstance(rng, n);
  PrepareOptions legacy;
  legacy.use_rewriter = false;
  Result<std::shared_ptr<const PreparedPremises>> built =
      PreparedPremises::Build(n, premises, legacy);
  ASSERT_TRUE(built.ok());
  const PrepareStats& s = (*built)->stats();
  EXPECT_FALSE(s.used_rewriter);
  EXPECT_EQ(s.simplify_level, 0);
  EXPECT_EQ(s.rewrite_passes, 0u);
  EXPECT_TRUE(s.rewrite_rule_applied.empty());
  EXPECT_EQ(s.canonical_constraints,
            s.input_constraints - s.dropped_trivial - s.dropped_duplicates);
  // Both canonicalizers preserve L(C), so they agree with each other.
  Result<std::shared_ptr<const PreparedPremises>> rewritten =
      PreparedPremises::Build(n, premises);
  ASSERT_TRUE(rewritten.ok());
  Result<bool> same = LcEquivalent(n, (*built)->constraints(), (*rewritten)->constraints());
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(*same);
  // The rewriter never produces a larger artifact than the inline path.
  EXPECT_LE((*rewritten)->constraints().size(), (*built)->constraints().size());
}

TEST(PrepareRewriteTest, CacheKeysIncludeOptions) {
  const int n = 9;
  Rng rng(986);  // Unique premise set so other tests cannot pre-warm the key.
  ConstraintSet premises = RedundantInstance(rng, n);
  PrepareOptions rewrite_opts;
  PrepareOptions legacy;
  legacy.use_rewriter = false;
  bool hit = false;
  Result<std::shared_ptr<const PreparedPremises>> a =
      GlobalPreparedPremisesCache().Get(n, premises, rewrite_opts, &hit);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(hit);
  // Same key: a hit returning the identical artifact.
  Result<std::shared_ptr<const PreparedPremises>> b =
      GlobalPreparedPremisesCache().Get(n, premises, rewrite_opts, &hit);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ((*a)->id(), (*b)->id());
  // Different options: a distinct artifact, never aliased.
  Result<std::shared_ptr<const PreparedPremises>> c =
      GlobalPreparedPremisesCache().Get(n, premises, legacy, &hit);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(hit);
  EXPECT_NE((*a)->id(), (*c)->id());
  EXPECT_FALSE((*c)->options().use_rewriter);
}

TEST(PrepareRewriteTest, EngineSimplifyLevelsAgreeOnVerdictsAtN64) {
  // FD-style chain at the boundary, decidable polynomially at any level.
  const int n = 64;
  ConstraintSet premises{
      DifferentialConstraint(ItemSet::Singleton(0), SetFamily({ItemSet::Singleton(62)})),
      DifferentialConstraint(ItemSet::Singleton(62), SetFamily({ItemSet::Singleton(63)})),
      DifferentialConstraint(ItemSet::Singleton(0), SetFamily({ItemSet::Singleton(62)})),
  };
  DifferentialConstraint goal(ItemSet::Singleton(0), SetFamily({ItemSet::Singleton(63)}));
  DifferentialConstraint bad_goal(ItemSet::Singleton(63), SetFamily({ItemSet::Singleton(0)}));
  for (int level = 0; level <= 2; ++level) {
    EngineOptions opts;
    opts.simplify_level = level;
    opts.use_prepared_cache = false;
    ImplicationEngine engine(opts);
    EngineQueryResult yes = engine.CheckOne(n, premises, goal);
    ASSERT_TRUE(yes.status.ok()) << "level " << level;
    EXPECT_TRUE(yes.outcome.implied) << "level " << level;
    EngineQueryResult no = engine.CheckOne(n, premises, bad_goal);
    ASSERT_TRUE(no.status.ok()) << "level " << level;
    EXPECT_FALSE(no.outcome.implied) << "level " << level;
  }
}

}  // namespace
}  // namespace diffc
