#include <gtest/gtest.h>

#include "prop/cdcl.h"
#include "prop/cnf.h"
#include "prop/dpll.h"
#include "prop/tautology.h"
#include "util/random.h"

namespace diffc {
namespace {

using prop::CdclSolver;
using prop::Clause;
using prop::Cnf;
using prop::DpllSolver;

TEST(CdclTest, TrivialCases) {
  Cnf empty;
  empty.num_vars = 0;
  EXPECT_TRUE(CdclSolver().Solve(empty)->satisfiable);

  Cnf contradiction;
  contradiction.num_vars = 1;
  contradiction.AddClause({1});
  contradiction.AddClause({-1});
  EXPECT_FALSE(CdclSolver().Solve(contradiction)->satisfiable);

  Cnf empty_clause;
  empty_clause.num_vars = 2;
  empty_clause.AddClause({});
  EXPECT_FALSE(CdclSolver().Solve(empty_clause)->satisfiable);
}

TEST(CdclTest, ModelSatisfiesClauses) {
  Cnf cnf;
  cnf.num_vars = 4;
  cnf.AddClause({1, 2});
  cnf.AddClause({-1, 3});
  cnf.AddClause({-3, -2, 4});
  cnf.AddClause({-4, 2});
  Result<prop::SatResult> r = CdclSolver().Solve(cnf);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->satisfiable);
  EXPECT_TRUE(cnf.IsSatisfiedBy(r->model));
}

TEST(CdclTest, TautologicalClausesDropped) {
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.AddClause({1, -1});
  cnf.AddClause({2});
  Result<prop::SatResult> r = CdclSolver().Solve(cnf);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->satisfiable);
  EXPECT_TRUE(r->model[1]);
}

TEST(CdclTest, RejectsOutOfRangeLiterals) {
  Cnf cnf;
  cnf.num_vars = 1;
  cnf.AddClause({3});
  EXPECT_FALSE(CdclSolver().Solve(cnf).ok());
}

// Pigeonhole principle PHP(n+1, n): n+1 pigeons in n holes, classically
// hard UNSAT instances that exercise clause learning.
Cnf Pigeonhole(int holes) {
  const int pigeons = holes + 1;
  Cnf cnf;
  cnf.num_vars = pigeons * holes;
  auto var = [&](int p, int h) { return p * holes + h + 1; };
  for (int p = 0; p < pigeons; ++p) {
    Clause clause;
    for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
    cnf.AddClause(std::move(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.AddClause({-var(p1, h), -var(p2, h)});
      }
    }
  }
  return cnf;
}

TEST(CdclTest, PigeonholeUnsat) {
  for (int holes = 2; holes <= 5; ++holes) {
    Result<prop::SatResult> r = CdclSolver().Solve(Pigeonhole(holes));
    ASSERT_TRUE(r.ok()) << holes;
    EXPECT_FALSE(r->satisfiable) << holes;
  }
}

TEST(CdclTest, PigeonholeSatWhenEnoughHoles) {
  // n pigeons, n holes (drop the last pigeon's clauses by building
  // PHP(n, n) directly).
  const int n = 4;
  Cnf cnf;
  cnf.num_vars = n * n;
  auto var = [&](int p, int h) { return p * n + h + 1; };
  for (int p = 0; p < n; ++p) {
    Clause clause;
    for (int h = 0; h < n; ++h) clause.push_back(var(p, h));
    cnf.AddClause(std::move(clause));
  }
  for (int h = 0; h < n; ++h) {
    for (int p1 = 0; p1 < n; ++p1) {
      for (int p2 = p1 + 1; p2 < n; ++p2) {
        cnf.AddClause({-var(p1, h), -var(p2, h)});
      }
    }
  }
  Result<prop::SatResult> r = CdclSolver().Solve(cnf);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->satisfiable);
  EXPECT_TRUE(cnf.IsSatisfiedBy(r->model));
}

TEST(CdclTest, LearnsClausesOnHardInstances) {
  CdclSolver solver;
  ASSERT_TRUE(solver.Solve(Pigeonhole(5)).ok());
  EXPECT_GT(solver.learned_clauses(), 0u);
  EXPECT_GT(solver.stats().conflicts, 0u);
}

// Property: CDCL and DPLL agree on random CNFs across the phase
// transition, and CDCL models check out.
class CdclVsDpll : public ::testing::TestWithParam<int> {};

TEST_P(CdclVsDpll, Agree) {
  Rng rng(GetParam() * 997);
  for (int iter = 0; iter < 25; ++iter) {
    const int n = static_cast<int>(rng.UniformInt(3, 12));
    const int clauses = static_cast<int>(rng.UniformInt(n, n * 5));
    Cnf cnf;
    cnf.num_vars = n;
    for (int c = 0; c < clauses; ++c) {
      Clause clause;
      int width = static_cast<int>(rng.UniformInt(1, 3));
      for (int l = 0; l < width; ++l) {
        int var = static_cast<int>(rng.UniformInt(0, n - 1));
        clause.push_back(rng.Bernoulli(0.5) ? var + 1 : -(var + 1));
      }
      cnf.AddClause(std::move(clause));
    }
    Result<prop::SatResult> dpll = DpllSolver().Solve(cnf);
    Result<prop::SatResult> cdcl = CdclSolver().Solve(cnf);
    ASSERT_TRUE(dpll.ok());
    ASSERT_TRUE(cdcl.ok());
    EXPECT_EQ(dpll->satisfiable, cdcl->satisfiable) << "iter=" << iter;
    if (cdcl->satisfiable) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(cdcl->model));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdclVsDpll, ::testing::Range(1, 17));

// Agreement on the DNF-tautology CNFs used by the coNP experiment.
TEST(CdclTest, AgreesOnTautologyInstances) {
  for (int seed = 1; seed <= 20; ++seed) {
    prop::DnfFormula f = prop::RandomDnf(8, 20, 3, seed);
    Cnf cnf;
    cnf.num_vars = f.num_vars;
    for (const prop::DnfConjunct& c : f.conjuncts) {
      Clause clause;
      ForEachBit(c.pos, [&](int b) { clause.push_back(-(b + 1)); });
      ForEachBit(c.neg, [&](int b) { clause.push_back(b + 1); });
      cnf.AddClause(std::move(clause));
    }
    Result<prop::SatResult> dpll = DpllSolver().Solve(cnf);
    Result<prop::SatResult> cdcl = CdclSolver().Solve(cnf);
    ASSERT_TRUE(dpll.ok());
    ASSERT_TRUE(cdcl.ok());
    EXPECT_EQ(dpll->satisfiable, cdcl->satisfiable) << seed;
  }
}

}  // namespace
}  // namespace diffc
