#include <gtest/gtest.h>

#include <set>

#include "fis/apriori.h"
#include "fis/concise.h"
#include "fis/generator.h"
#include "fis/support.h"

namespace diffc {
namespace {

BasketList RuleHeavyData(std::uint64_t seed, int items = 8, int baskets = 200) {
  BasketGenConfig config;
  config.num_items = items;
  config.num_baskets = baskets;
  config.num_patterns = 3;
  config.pattern_size = 3;
  config.pattern_prob = 0.4;
  config.noise_density = 0.15;
  config.seed = seed;
  std::vector<PlantedRule> rules{{0, ItemSet{1, 2}}, {3, ItemSet{4}}};
  return *GenerateBasketsWithRules(config, rules);
}

TEST(ConciseTest, BuildValidatesOptions) {
  BasketList b = *BasketList::Make(2, {0b01});
  EXPECT_FALSE(ConciseRepresentation::Build(b, {.min_support = 0}).ok());
  EXPECT_FALSE(
      ConciseRepresentation::Build(b, {.min_support = 1, .rule_arity = -1}).ok());
}

TEST(ConciseTest, EmptySetInfrequentShortCircuits) {
  BasketList b = *BasketList::Make(3, {0b001});
  ConciseRepresentation rep = *ConciseRepresentation::Build(b, {.min_support = 5});
  EXPECT_TRUE(rep.fdfree().empty());
  ASSERT_EQ(rep.border().size(), 1u);
  EXPECT_EQ(rep.border()[0].items, 0u);
  DerivedSupport d = rep.Derive(ItemSet{0, 1});
  EXPECT_FALSE(d.frequent);
}

TEST(ConciseTest, StoredSupportsAreExact) {
  BasketList b = RuleHeavyData(3);
  ConciseRepresentation rep = *ConciseRepresentation::Build(b, {.min_support = 10});
  for (const CountedItemset& s : rep.fdfree()) {
    EXPECT_EQ(s.support, b.SupportCount(ItemSet(s.items)));
  }
  for (const CountedItemset& s : rep.border()) {
    EXPECT_EQ(s.support, b.SupportCount(ItemSet(s.items)));
  }
}

TEST(ConciseTest, DiscoveredRulesHoldInData) {
  BasketList b = RuleHeavyData(4);
  ConciseRepresentation rep = *ConciseRepresentation::Build(b, {.min_support = 10});
  for (const SingletonDisjunctiveRule& rule : rep.rules()) {
    EXPECT_TRUE(SatisfiesSingletonRule(b, rule));
  }
}

TEST(ConciseTest, FdfreeAndBorderDisjoint) {
  BasketList b = RuleHeavyData(5);
  ConciseRepresentation rep = *ConciseRepresentation::Build(b, {.min_support = 15});
  std::set<Mask> fdfree;
  for (const CountedItemset& s : rep.fdfree()) fdfree.insert(s.items);
  for (const CountedItemset& s : rep.border()) EXPECT_FALSE(fdfree.count(s.items));
}

TEST(ConciseTest, BorderSetsHaveAllSubsetsInFdfree) {
  BasketList b = RuleHeavyData(6);
  ConciseRepresentation rep = *ConciseRepresentation::Build(b, {.min_support = 15});
  std::set<Mask> fdfree;
  for (const CountedItemset& s : rep.fdfree()) fdfree.insert(s.items);
  for (const CountedItemset& s : rep.border()) {
    ForEachBit(s.items, [&](int bit) {
      EXPECT_TRUE(fdfree.count(s.items & ~(Mask{1} << bit)))
          << "border set " << s.items << " missing subset";
    });
  }
}

// The headline property (Bykowski–Rigotti): the representation determines
// the frequency status of EVERY itemset, and the exact support of every
// frequent itemset, without touching the baskets.
class ConciseCorrectness
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t, int>> {};

TEST_P(ConciseCorrectness, DerivesAllStatusesAndFrequentSupports) {
  auto [seed, min_support, arity] = GetParam();
  BasketList b = RuleHeavyData(seed);
  SetFunction<std::int64_t> support = *SupportFunction(b);
  ConciseRepresentation rep =
      *ConciseRepresentation::Build(b, {.min_support = min_support, .rule_arity = arity});
  for (Mask m = 0; m < (Mask{1} << b.num_items()); ++m) {
    SCOPED_TRACE(m);
    DerivedSupport d = rep.Derive(ItemSet(m));
    const std::int64_t truth = support.at(m);
    EXPECT_EQ(d.frequent, truth >= min_support);
    if (truth >= min_support) {
      ASSERT_TRUE(d.support.has_value());
      EXPECT_EQ(*d.support, truth);
    } else if (d.support.has_value()) {
      EXPECT_EQ(*d.support, truth);  // When provided, must be exact.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConciseCorrectness,
    ::testing::Combine(::testing::Values(1, 2, 7, 11), ::testing::Values<std::int64_t>(5, 25, 60),
                       ::testing::Values(1, 2, 3)));

TEST(ConciseTest, RepresentationNoLargerThanFrequentSets) {
  // With rules planted, |FDFree ∪ Bd⁻| should not exceed |frequent| +
  // |negative border| (it prunes disjunctive sets) — the quantity
  // experiment E6 tabulates.
  BasketList b = RuleHeavyData(8, /*items=*/10, /*baskets=*/400);
  const std::int64_t kappa = 20;
  ConciseRepresentation rep = *ConciseRepresentation::Build(b, {.min_support = kappa});
  AprioriResult apriori = *Apriori(b, kappa);
  EXPECT_LE(rep.size(), apriori.frequent.size() + apriori.negative_border.size());
  EXPECT_LE(rep.candidates_counted(), apriori.candidates_counted);
}

TEST(ConciseTest, HigherArityNeverGrowsFdfree) {
  // Kryszkiewicz–Gajek: arity-k+1 rules subsume arity-k ones, so FDFree can
  // only shrink (or stay) as arity grows.
  BasketList b = RuleHeavyData(9);
  const std::int64_t kappa = 10;
  std::size_t prev = SIZE_MAX;
  for (int arity = 1; arity <= 4; ++arity) {
    ConciseRepresentation rep =
        *ConciseRepresentation::Build(b, {.min_support = kappa, .rule_arity = arity});
    EXPECT_LE(rep.fdfree().size(), prev);
    prev = rep.fdfree().size();
  }
}

TEST(ConciseTest, ArityZeroDegeneratesToApriori) {
  BasketList b = RuleHeavyData(10);
  const std::int64_t kappa = 15;
  ConciseRepresentation rep =
      *ConciseRepresentation::Build(b, {.min_support = kappa, .rule_arity = 0});
  AprioriResult apriori = *Apriori(b, kappa);
  EXPECT_TRUE(rep.rules().empty());
  EXPECT_EQ(rep.fdfree().size(), apriori.frequent.size());
  EXPECT_EQ(rep.border().size(), apriori.negative_border.size());
}

TEST(ConciseTest, DisjunctiveBorderMembersAreDisjunctiveItemsets) {
  BasketList b = RuleHeavyData(12);
  const std::int64_t kappa = 10;
  const int arity = 2;
  ConciseRepresentation rep =
      *ConciseRepresentation::Build(b, {.min_support = kappa, .rule_arity = arity});
  for (const CountedItemset& s : rep.border()) {
    if (s.support >= kappa) {
      // Frequent border members were pruned as disjunctive.
      EXPECT_TRUE(*IsDisjunctiveItemset(b, ItemSet(s.items), arity));
    }
  }
  for (const CountedItemset& s : rep.fdfree()) {
    EXPECT_FALSE(*IsDisjunctiveItemset(b, ItemSet(s.items), arity));
  }
}

}  // namespace
}  // namespace diffc
