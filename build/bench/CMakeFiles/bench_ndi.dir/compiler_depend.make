# Empty compiler generated dependencies file for bench_ndi.
# This may be replaced when dependencies are built.
