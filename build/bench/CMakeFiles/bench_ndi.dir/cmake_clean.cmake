file(REMOVE_RECURSE
  "CMakeFiles/bench_ndi.dir/bench_ndi.cc.o"
  "CMakeFiles/bench_ndi.dir/bench_ndi.cc.o.d"
  "bench_ndi"
  "bench_ndi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ndi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
