file(REMOVE_RECURSE
  "CMakeFiles/bench_simpson.dir/bench_simpson.cc.o"
  "CMakeFiles/bench_simpson.dir/bench_simpson.cc.o.d"
  "bench_simpson"
  "bench_simpson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simpson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
