# Empty compiler generated dependencies file for bench_simpson.
# This may be replaced when dependencies are built.
