# Empty compiler generated dependencies file for bench_concise.
# This may be replaced when dependencies are built.
