file(REMOVE_RECURSE
  "CMakeFiles/bench_concise.dir/bench_concise.cc.o"
  "CMakeFiles/bench_concise.dir/bench_concise.cc.o.d"
  "bench_concise"
  "bench_concise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
