# Empty compiler generated dependencies file for bench_diff_semantics.
# This may be replaced when dependencies are built.
