file(REMOVE_RECURSE
  "CMakeFiles/bench_diff_semantics.dir/bench_diff_semantics.cc.o"
  "CMakeFiles/bench_diff_semantics.dir/bench_diff_semantics.cc.o.d"
  "bench_diff_semantics"
  "bench_diff_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diff_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
