file(REMOVE_RECURSE
  "CMakeFiles/bench_fd_subclass.dir/bench_fd_subclass.cc.o"
  "CMakeFiles/bench_fd_subclass.dir/bench_fd_subclass.cc.o.d"
  "bench_fd_subclass"
  "bench_fd_subclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fd_subclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
