# Empty dependencies file for bench_fd_subclass.
# This may be replaced when dependencies are built.
