file(REMOVE_RECURSE
  "CMakeFiles/bench_freqsat.dir/bench_freqsat.cc.o"
  "CMakeFiles/bench_freqsat.dir/bench_freqsat.cc.o.d"
  "bench_freqsat"
  "bench_freqsat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_freqsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
