# Empty dependencies file for bench_freqsat.
# This may be replaced when dependencies are built.
