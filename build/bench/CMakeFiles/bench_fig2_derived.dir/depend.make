# Empty dependencies file for bench_fig2_derived.
# This may be replaced when dependencies are built.
