file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_derived.dir/bench_fig2_derived.cc.o"
  "CMakeFiles/bench_fig2_derived.dir/bench_fig2_derived.cc.o.d"
  "bench_fig2_derived"
  "bench_fig2_derived.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_derived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
