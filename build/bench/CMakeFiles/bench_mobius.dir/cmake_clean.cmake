file(REMOVE_RECURSE
  "CMakeFiles/bench_mobius.dir/bench_mobius.cc.o"
  "CMakeFiles/bench_mobius.dir/bench_mobius.cc.o.d"
  "bench_mobius"
  "bench_mobius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mobius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
