# Empty compiler generated dependencies file for bench_mobius.
# This may be replaced when dependencies are built.
