# Empty compiler generated dependencies file for bench_witness.
# This may be replaced when dependencies are built.
