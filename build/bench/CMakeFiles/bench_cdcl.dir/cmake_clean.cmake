file(REMOVE_RECURSE
  "CMakeFiles/bench_cdcl.dir/bench_cdcl.cc.o"
  "CMakeFiles/bench_cdcl.dir/bench_cdcl.cc.o.d"
  "bench_cdcl"
  "bench_cdcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cdcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
