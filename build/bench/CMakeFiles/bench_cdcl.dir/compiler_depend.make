# Empty compiler generated dependencies file for bench_cdcl.
# This may be replaced when dependencies are built.
