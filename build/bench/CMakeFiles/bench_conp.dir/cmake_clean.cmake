file(REMOVE_RECURSE
  "CMakeFiles/bench_conp.dir/bench_conp.cc.o"
  "CMakeFiles/bench_conp.dir/bench_conp.cc.o.d"
  "bench_conp"
  "bench_conp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
