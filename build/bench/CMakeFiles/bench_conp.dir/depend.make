# Empty dependencies file for bench_conp.
# This may be replaced when dependencies are built.
