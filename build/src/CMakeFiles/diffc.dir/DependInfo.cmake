
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/armstrong.cc" "src/CMakeFiles/diffc.dir/core/armstrong.cc.o" "gcc" "src/CMakeFiles/diffc.dir/core/armstrong.cc.o.d"
  "/root/repo/src/core/atoms.cc" "src/CMakeFiles/diffc.dir/core/atoms.cc.o" "gcc" "src/CMakeFiles/diffc.dir/core/atoms.cc.o.d"
  "/root/repo/src/core/closure.cc" "src/CMakeFiles/diffc.dir/core/closure.cc.o" "gcc" "src/CMakeFiles/diffc.dir/core/closure.cc.o.d"
  "/root/repo/src/core/constraint.cc" "src/CMakeFiles/diffc.dir/core/constraint.cc.o" "gcc" "src/CMakeFiles/diffc.dir/core/constraint.cc.o.d"
  "/root/repo/src/core/counterexample.cc" "src/CMakeFiles/diffc.dir/core/counterexample.cc.o" "gcc" "src/CMakeFiles/diffc.dir/core/counterexample.cc.o.d"
  "/root/repo/src/core/differential_semantics.cc" "src/CMakeFiles/diffc.dir/core/differential_semantics.cc.o" "gcc" "src/CMakeFiles/diffc.dir/core/differential_semantics.cc.o.d"
  "/root/repo/src/core/implication.cc" "src/CMakeFiles/diffc.dir/core/implication.cc.o" "gcc" "src/CMakeFiles/diffc.dir/core/implication.cc.o.d"
  "/root/repo/src/core/inference.cc" "src/CMakeFiles/diffc.dir/core/inference.cc.o" "gcc" "src/CMakeFiles/diffc.dir/core/inference.cc.o.d"
  "/root/repo/src/core/parser.cc" "src/CMakeFiles/diffc.dir/core/parser.cc.o" "gcc" "src/CMakeFiles/diffc.dir/core/parser.cc.o.d"
  "/root/repo/src/ds/belief.cc" "src/CMakeFiles/diffc.dir/ds/belief.cc.o" "gcc" "src/CMakeFiles/diffc.dir/ds/belief.cc.o.d"
  "/root/repo/src/fis/apriori.cc" "src/CMakeFiles/diffc.dir/fis/apriori.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/apriori.cc.o.d"
  "/root/repo/src/fis/association.cc" "src/CMakeFiles/diffc.dir/fis/association.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/association.cc.o.d"
  "/root/repo/src/fis/basket.cc" "src/CMakeFiles/diffc.dir/fis/basket.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/basket.cc.o.d"
  "/root/repo/src/fis/closed.cc" "src/CMakeFiles/diffc.dir/fis/closed.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/closed.cc.o.d"
  "/root/repo/src/fis/concise.cc" "src/CMakeFiles/diffc.dir/fis/concise.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/concise.cc.o.d"
  "/root/repo/src/fis/disjunctive.cc" "src/CMakeFiles/diffc.dir/fis/disjunctive.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/disjunctive.cc.o.d"
  "/root/repo/src/fis/frequency.cc" "src/CMakeFiles/diffc.dir/fis/frequency.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/frequency.cc.o.d"
  "/root/repo/src/fis/generator.cc" "src/CMakeFiles/diffc.dir/fis/generator.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/generator.cc.o.d"
  "/root/repo/src/fis/induce.cc" "src/CMakeFiles/diffc.dir/fis/induce.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/induce.cc.o.d"
  "/root/repo/src/fis/io.cc" "src/CMakeFiles/diffc.dir/fis/io.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/io.cc.o.d"
  "/root/repo/src/fis/ndi.cc" "src/CMakeFiles/diffc.dir/fis/ndi.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/ndi.cc.o.d"
  "/root/repo/src/fis/support.cc" "src/CMakeFiles/diffc.dir/fis/support.cc.o" "gcc" "src/CMakeFiles/diffc.dir/fis/support.cc.o.d"
  "/root/repo/src/lattice/decomposition.cc" "src/CMakeFiles/diffc.dir/lattice/decomposition.cc.o" "gcc" "src/CMakeFiles/diffc.dir/lattice/decomposition.cc.o.d"
  "/root/repo/src/lattice/hitting_set.cc" "src/CMakeFiles/diffc.dir/lattice/hitting_set.cc.o" "gcc" "src/CMakeFiles/diffc.dir/lattice/hitting_set.cc.o.d"
  "/root/repo/src/lattice/interval.cc" "src/CMakeFiles/diffc.dir/lattice/interval.cc.o" "gcc" "src/CMakeFiles/diffc.dir/lattice/interval.cc.o.d"
  "/root/repo/src/lattice/itemset.cc" "src/CMakeFiles/diffc.dir/lattice/itemset.cc.o" "gcc" "src/CMakeFiles/diffc.dir/lattice/itemset.cc.o.d"
  "/root/repo/src/lattice/set_family.cc" "src/CMakeFiles/diffc.dir/lattice/set_family.cc.o" "gcc" "src/CMakeFiles/diffc.dir/lattice/set_family.cc.o.d"
  "/root/repo/src/lattice/universe.cc" "src/CMakeFiles/diffc.dir/lattice/universe.cc.o" "gcc" "src/CMakeFiles/diffc.dir/lattice/universe.cc.o.d"
  "/root/repo/src/math/gauss.cc" "src/CMakeFiles/diffc.dir/math/gauss.cc.o" "gcc" "src/CMakeFiles/diffc.dir/math/gauss.cc.o.d"
  "/root/repo/src/math/simplex.cc" "src/CMakeFiles/diffc.dir/math/simplex.cc.o" "gcc" "src/CMakeFiles/diffc.dir/math/simplex.cc.o.d"
  "/root/repo/src/prop/cdcl.cc" "src/CMakeFiles/diffc.dir/prop/cdcl.cc.o" "gcc" "src/CMakeFiles/diffc.dir/prop/cdcl.cc.o.d"
  "/root/repo/src/prop/cnf.cc" "src/CMakeFiles/diffc.dir/prop/cnf.cc.o" "gcc" "src/CMakeFiles/diffc.dir/prop/cnf.cc.o.d"
  "/root/repo/src/prop/dpll.cc" "src/CMakeFiles/diffc.dir/prop/dpll.cc.o" "gcc" "src/CMakeFiles/diffc.dir/prop/dpll.cc.o.d"
  "/root/repo/src/prop/formula.cc" "src/CMakeFiles/diffc.dir/prop/formula.cc.o" "gcc" "src/CMakeFiles/diffc.dir/prop/formula.cc.o.d"
  "/root/repo/src/prop/implication_constraint.cc" "src/CMakeFiles/diffc.dir/prop/implication_constraint.cc.o" "gcc" "src/CMakeFiles/diffc.dir/prop/implication_constraint.cc.o.d"
  "/root/repo/src/prop/minterm.cc" "src/CMakeFiles/diffc.dir/prop/minterm.cc.o" "gcc" "src/CMakeFiles/diffc.dir/prop/minterm.cc.o.d"
  "/root/repo/src/prop/tautology.cc" "src/CMakeFiles/diffc.dir/prop/tautology.cc.o" "gcc" "src/CMakeFiles/diffc.dir/prop/tautology.cc.o.d"
  "/root/repo/src/relational/boolean_dependency.cc" "src/CMakeFiles/diffc.dir/relational/boolean_dependency.cc.o" "gcc" "src/CMakeFiles/diffc.dir/relational/boolean_dependency.cc.o.d"
  "/root/repo/src/relational/distribution.cc" "src/CMakeFiles/diffc.dir/relational/distribution.cc.o" "gcc" "src/CMakeFiles/diffc.dir/relational/distribution.cc.o.d"
  "/root/repo/src/relational/dmvd.cc" "src/CMakeFiles/diffc.dir/relational/dmvd.cc.o" "gcc" "src/CMakeFiles/diffc.dir/relational/dmvd.cc.o.d"
  "/root/repo/src/relational/entropy.cc" "src/CMakeFiles/diffc.dir/relational/entropy.cc.o" "gcc" "src/CMakeFiles/diffc.dir/relational/entropy.cc.o.d"
  "/root/repo/src/relational/fd.cc" "src/CMakeFiles/diffc.dir/relational/fd.cc.o" "gcc" "src/CMakeFiles/diffc.dir/relational/fd.cc.o.d"
  "/root/repo/src/relational/normalization.cc" "src/CMakeFiles/diffc.dir/relational/normalization.cc.o" "gcc" "src/CMakeFiles/diffc.dir/relational/normalization.cc.o.d"
  "/root/repo/src/relational/positive_bool.cc" "src/CMakeFiles/diffc.dir/relational/positive_bool.cc.o" "gcc" "src/CMakeFiles/diffc.dir/relational/positive_bool.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/diffc.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/diffc.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/simpson.cc" "src/CMakeFiles/diffc.dir/relational/simpson.cc.o" "gcc" "src/CMakeFiles/diffc.dir/relational/simpson.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/diffc.dir/util/random.cc.o" "gcc" "src/CMakeFiles/diffc.dir/util/random.cc.o.d"
  "/root/repo/src/util/rational.cc" "src/CMakeFiles/diffc.dir/util/rational.cc.o" "gcc" "src/CMakeFiles/diffc.dir/util/rational.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/diffc.dir/util/status.cc.o" "gcc" "src/CMakeFiles/diffc.dir/util/status.cc.o.d"
  "/root/repo/src/util/text.cc" "src/CMakeFiles/diffc.dir/util/text.cc.o" "gcc" "src/CMakeFiles/diffc.dir/util/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
