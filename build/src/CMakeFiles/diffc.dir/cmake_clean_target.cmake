file(REMOVE_RECURSE
  "libdiffc.a"
)
