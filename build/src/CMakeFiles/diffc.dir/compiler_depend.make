# Empty compiler generated dependencies file for diffc.
# This may be replaced when dependencies are built.
