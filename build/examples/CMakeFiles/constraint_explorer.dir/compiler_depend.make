# Empty compiler generated dependencies file for constraint_explorer.
# This may be replaced when dependencies are built.
