file(REMOVE_RECURSE
  "CMakeFiles/constraint_explorer.dir/constraint_explorer.cc.o"
  "CMakeFiles/constraint_explorer.dir/constraint_explorer.cc.o.d"
  "constraint_explorer"
  "constraint_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
