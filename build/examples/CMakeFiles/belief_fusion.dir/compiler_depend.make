# Empty compiler generated dependencies file for belief_fusion.
# This may be replaced when dependencies are built.
