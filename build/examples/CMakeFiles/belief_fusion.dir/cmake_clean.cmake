file(REMOVE_RECURSE
  "CMakeFiles/belief_fusion.dir/belief_fusion.cc.o"
  "CMakeFiles/belief_fusion.dir/belief_fusion.cc.o.d"
  "belief_fusion"
  "belief_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/belief_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
