file(REMOVE_RECURSE
  "CMakeFiles/mine_baskets.dir/mine_baskets.cc.o"
  "CMakeFiles/mine_baskets.dir/mine_baskets.cc.o.d"
  "mine_baskets"
  "mine_baskets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mine_baskets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
