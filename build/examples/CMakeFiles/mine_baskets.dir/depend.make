# Empty dependencies file for mine_baskets.
# This may be replaced when dependencies are built.
