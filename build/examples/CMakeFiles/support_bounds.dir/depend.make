# Empty dependencies file for support_bounds.
# This may be replaced when dependencies are built.
