file(REMOVE_RECURSE
  "CMakeFiles/support_bounds.dir/support_bounds.cc.o"
  "CMakeFiles/support_bounds.dir/support_bounds.cc.o.d"
  "support_bounds"
  "support_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
