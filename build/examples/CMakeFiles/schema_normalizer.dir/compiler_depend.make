# Empty compiler generated dependencies file for schema_normalizer.
# This may be replaced when dependencies are built.
