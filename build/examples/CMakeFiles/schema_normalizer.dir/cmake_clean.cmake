file(REMOVE_RECURSE
  "CMakeFiles/schema_normalizer.dir/schema_normalizer.cc.o"
  "CMakeFiles/schema_normalizer.dir/schema_normalizer.cc.o.d"
  "schema_normalizer"
  "schema_normalizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_normalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
