file(REMOVE_RECURSE
  "CMakeFiles/relational_fds.dir/relational_fds.cc.o"
  "CMakeFiles/relational_fds.dir/relational_fds.cc.o.d"
  "relational_fds"
  "relational_fds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_fds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
