# Empty dependencies file for relational_fds.
# This may be replaced when dependencies are built.
