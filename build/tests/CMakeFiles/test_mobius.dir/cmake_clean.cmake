file(REMOVE_RECURSE
  "CMakeFiles/test_mobius.dir/test_mobius.cc.o"
  "CMakeFiles/test_mobius.dir/test_mobius.cc.o.d"
  "test_mobius"
  "test_mobius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
