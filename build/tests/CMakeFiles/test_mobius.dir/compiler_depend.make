# Empty compiler generated dependencies file for test_mobius.
# This may be replaced when dependencies are built.
