file(REMOVE_RECURSE
  "CMakeFiles/test_normalization.dir/test_normalization.cc.o"
  "CMakeFiles/test_normalization.dir/test_normalization.cc.o.d"
  "test_normalization"
  "test_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
