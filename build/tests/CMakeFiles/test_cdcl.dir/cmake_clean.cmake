file(REMOVE_RECURSE
  "CMakeFiles/test_cdcl.dir/test_cdcl.cc.o"
  "CMakeFiles/test_cdcl.dir/test_cdcl.cc.o.d"
  "test_cdcl"
  "test_cdcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
