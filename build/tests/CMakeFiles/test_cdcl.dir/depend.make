# Empty dependencies file for test_cdcl.
# This may be replaced when dependencies are built.
