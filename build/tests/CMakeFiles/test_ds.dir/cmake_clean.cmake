file(REMOVE_RECURSE
  "CMakeFiles/test_ds.dir/test_ds.cc.o"
  "CMakeFiles/test_ds.dir/test_ds.cc.o.d"
  "test_ds"
  "test_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
