# Empty compiler generated dependencies file for test_positive_bool.
# This may be replaced when dependencies are built.
