file(REMOVE_RECURSE
  "CMakeFiles/test_positive_bool.dir/test_positive_bool.cc.o"
  "CMakeFiles/test_positive_bool.dir/test_positive_bool.cc.o.d"
  "test_positive_bool"
  "test_positive_bool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_positive_bool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
