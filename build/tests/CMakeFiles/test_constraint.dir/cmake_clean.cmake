file(REMOVE_RECURSE
  "CMakeFiles/test_constraint.dir/test_constraint.cc.o"
  "CMakeFiles/test_constraint.dir/test_constraint.cc.o.d"
  "test_constraint"
  "test_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
