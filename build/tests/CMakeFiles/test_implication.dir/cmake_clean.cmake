file(REMOVE_RECURSE
  "CMakeFiles/test_implication.dir/test_implication.cc.o"
  "CMakeFiles/test_implication.dir/test_implication.cc.o.d"
  "test_implication"
  "test_implication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_implication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
