# Empty compiler generated dependencies file for test_ndi.
# This may be replaced when dependencies are built.
