file(REMOVE_RECURSE
  "CMakeFiles/test_ndi.dir/test_ndi.cc.o"
  "CMakeFiles/test_ndi.dir/test_ndi.cc.o.d"
  "test_ndi"
  "test_ndi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ndi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
