file(REMOVE_RECURSE
  "CMakeFiles/test_lattice.dir/test_lattice.cc.o"
  "CMakeFiles/test_lattice.dir/test_lattice.cc.o.d"
  "test_lattice"
  "test_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
