file(REMOVE_RECURSE
  "CMakeFiles/test_induce_dmvd.dir/test_induce_dmvd.cc.o"
  "CMakeFiles/test_induce_dmvd.dir/test_induce_dmvd.cc.o.d"
  "test_induce_dmvd"
  "test_induce_dmvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_induce_dmvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
