# Empty compiler generated dependencies file for test_induce_dmvd.
# This may be replaced when dependencies are built.
