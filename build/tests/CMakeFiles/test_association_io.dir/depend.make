# Empty dependencies file for test_association_io.
# This may be replaced when dependencies are built.
