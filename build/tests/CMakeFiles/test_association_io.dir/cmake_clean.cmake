file(REMOVE_RECURSE
  "CMakeFiles/test_association_io.dir/test_association_io.cc.o"
  "CMakeFiles/test_association_io.dir/test_association_io.cc.o.d"
  "test_association_io"
  "test_association_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_association_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
