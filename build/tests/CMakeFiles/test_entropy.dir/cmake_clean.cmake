file(REMOVE_RECURSE
  "CMakeFiles/test_entropy.dir/test_entropy.cc.o"
  "CMakeFiles/test_entropy.dir/test_entropy.cc.o.d"
  "test_entropy"
  "test_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
