file(REMOVE_RECURSE
  "CMakeFiles/test_prop.dir/test_prop.cc.o"
  "CMakeFiles/test_prop.dir/test_prop.cc.o.d"
  "test_prop"
  "test_prop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
