file(REMOVE_RECURSE
  "CMakeFiles/test_concise.dir/test_concise.cc.o"
  "CMakeFiles/test_concise.dir/test_concise.cc.o.d"
  "test_concise"
  "test_concise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
