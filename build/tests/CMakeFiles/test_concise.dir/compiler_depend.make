# Empty compiler generated dependencies file for test_concise.
# This may be replaced when dependencies are built.
