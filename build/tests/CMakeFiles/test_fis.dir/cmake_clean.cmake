file(REMOVE_RECURSE
  "CMakeFiles/test_fis.dir/test_fis.cc.o"
  "CMakeFiles/test_fis.dir/test_fis.cc.o.d"
  "test_fis"
  "test_fis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
