# Empty compiler generated dependencies file for test_fis.
# This may be replaced when dependencies are built.
