# Empty dependencies file for test_diff_semantics.
# This may be replaced when dependencies are built.
