file(REMOVE_RECURSE
  "CMakeFiles/test_diff_semantics.dir/test_diff_semantics.cc.o"
  "CMakeFiles/test_diff_semantics.dir/test_diff_semantics.cc.o.d"
  "test_diff_semantics"
  "test_diff_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diff_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
