file(REMOVE_RECURSE
  "CMakeFiles/test_armstrong.dir/test_armstrong.cc.o"
  "CMakeFiles/test_armstrong.dir/test_armstrong.cc.o.d"
  "test_armstrong"
  "test_armstrong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_armstrong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
