# Empty dependencies file for test_armstrong.
# This may be replaced when dependencies are built.
