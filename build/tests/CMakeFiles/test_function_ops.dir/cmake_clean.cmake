file(REMOVE_RECURSE
  "CMakeFiles/test_function_ops.dir/test_function_ops.cc.o"
  "CMakeFiles/test_function_ops.dir/test_function_ops.cc.o.d"
  "test_function_ops"
  "test_function_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_function_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
