# Empty dependencies file for test_function_ops.
# This may be replaced when dependencies are built.
