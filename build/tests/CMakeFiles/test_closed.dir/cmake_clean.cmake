file(REMOVE_RECURSE
  "CMakeFiles/test_closed.dir/test_closed.cc.o"
  "CMakeFiles/test_closed.dir/test_closed.cc.o.d"
  "test_closed"
  "test_closed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_closed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
