# Empty compiler generated dependencies file for test_closed.
# This may be replaced when dependencies are built.
