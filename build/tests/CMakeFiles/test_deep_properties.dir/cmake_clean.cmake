file(REMOVE_RECURSE
  "CMakeFiles/test_deep_properties.dir/test_deep_properties.cc.o"
  "CMakeFiles/test_deep_properties.dir/test_deep_properties.cc.o.d"
  "test_deep_properties"
  "test_deep_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deep_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
