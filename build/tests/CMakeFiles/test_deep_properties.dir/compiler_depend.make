# Empty compiler generated dependencies file for test_deep_properties.
# This may be replaced when dependencies are built.
