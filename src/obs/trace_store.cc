#include "obs/trace_store.h"

#include <random>
#include <utility>

#include "obs/exposition.h"

namespace diffc::obs {

namespace {

const char* BoolName(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string StoredTrace::TraceIdHex() const {
  return HexU64(trace_id_hi) + HexU64(trace_id_lo);
}

std::string StoredTrace::ToJson() const {
  std::string out = "{\"trace_id\": \"" + TraceIdHex() +
                    "\", \"span_id\": \"" + HexU64(span_id) +
                    "\", \"parent_span_id\": \"" + HexU64(parent_span_id) +
                    "\", \"kind\": \"" + JsonEscape(kind) +
                    "\", \"name\": \"" + JsonEscape(name) +
                    "\", \"status\": \"" + JsonEscape(status) + "\"";
  out += std::string(", \"sampled\": ") + BoolName(sampled);
  out += std::string(", \"forced\": ") + BoolName(forced);
  out += std::string(", \"slow\": ") + BoolName(slow);
  out += std::string(", \"shed\": ") + BoolName(shed);
  out += std::string(", \"errored\": ") + BoolName(errored);
  out += ", \"duration_ns\": " + std::to_string(duration_ns);
  out += ", \"wall_start_unix_ns\": " + std::to_string(record.wall_start_unix_ns);
  out += ", \"spans\": " + record.ToJson();
  out += "}";
  return out;
}

TraceStore::TraceStore(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceStore::Add(StoredTrace trace) {
  MutexLock lock(&mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
    return;
  }
  ring_[next_] = std::move(trace);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<StoredTrace> TraceStore::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<StoredTrace> out;
  out.reserve(ring_.size());
  // Oldest first: the overwrite position is the oldest entry once full.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<StoredTrace> TraceStore::FindByTraceId(std::uint64_t hi,
                                                   std::uint64_t lo) const {
  MutexLock lock(&mu_);
  std::vector<StoredTrace> out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const StoredTrace& t = ring_[(next_ + i) % ring_.size()];
    if (t.trace_id_hi == hi && t.trace_id_lo == lo) out.push_back(t);
  }
  return out;
}

void TraceStore::SetCapacity(std::size_t capacity) {
  MutexLock lock(&mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  next_ = 0;
}

void TraceStore::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
}

std::size_t TraceStore::capacity() const {
  MutexLock lock(&mu_);
  return capacity_;
}

std::size_t TraceStore::size() const {
  MutexLock lock(&mu_);
  return ring_.size();
}

std::uint64_t TraceStore::total() const {
  MutexLock lock(&mu_);
  return total_;
}

std::uint64_t TraceStore::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

TraceStore& GlobalTraceStore() {
  static TraceStore* store = new TraceStore();
  return *store;
}

std::string SlowQuery::ToJsonLine() const {
  std::string out = "{\"slow_query\": {\"seq\": " + std::to_string(seq) +
                    ", \"wall_unix_ns\": " + std::to_string(wall_unix_ns) +
                    ", \"kind\": \"" + JsonEscape(kind) +
                    "\", \"seconds\": " + FormatDouble(seconds) +
                    ", \"session\": " + std::to_string(session) +
                    ", \"trace_id\": \"" + JsonEscape(trace_id) +
                    "\", \"status\": \"" + JsonEscape(status) + "\"}}";
  return out;
}

SlowQueryLog::SlowQueryLog(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

SlowQuery SlowQueryLog::Add(SlowQuery q) {
  MutexLock lock(&mu_);
  q.seq = ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(q);
    return q;
  }
  ring_[next_] = q;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
  return q;
}

std::vector<SlowQuery> SlowQueryLog::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<SlowQuery> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void SlowQueryLog::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
}

std::uint64_t SlowQueryLog::total() const {
  MutexLock lock(&mu_);
  return total_;
}

std::uint64_t SlowQueryLog::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

SlowQueryLog& GlobalSlowQueryLog() {
  static SlowQueryLog* log = new SlowQueryLog();
  return *log;
}

namespace {

std::mt19937_64& ThreadRng() {
  thread_local std::mt19937_64 rng = [] {
    std::random_device rd;
    std::seed_seq seq{rd(), rd(), rd(), rd()};
    return std::mt19937_64(seq);
  }();
  return rng;
}

}  // namespace

std::uint64_t RandomTraceBits() {
  std::uint64_t v = 0;
  while (v == 0) v = ThreadRng()();
  return v;
}

double SamplingDraw() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(ThreadRng());
}

void AppendChildRecord(TraceRecord* dst, int attach_idx, const TraceRecord& child) {
  if (dst == nullptr || child.spans.empty()) return;
  if (attach_idx < 0 || attach_idx >= static_cast<int>(dst->spans.size())) return;
  const int base = static_cast<int>(dst->spans.size());
  const int attach_depth = dst->spans[attach_idx].depth;
  // Re-base the child's steady-clock offsets onto dst's timeline. Both
  // anchors come from the same host clock, so the wall delta equals the
  // steady delta between the two records' t=0 points.
  std::uint64_t offset = dst->spans[attach_idx].start_ns;
  if (child.wall_start_unix_ns != 0 && dst->wall_start_unix_ns != 0 &&
      child.wall_start_unix_ns >= dst->wall_start_unix_ns) {
    offset = child.wall_start_unix_ns - dst->wall_start_unix_ns;
  }
  for (const TraceSpan& s : child.spans) {
    TraceSpan copy = s;
    copy.parent = s.parent < 0 ? attach_idx : s.parent + base;
    copy.depth = s.depth + attach_depth + 1;
    copy.start_ns = s.start_ns + offset;
    dst->spans.push_back(std::move(copy));
  }
}

}  // namespace diffc::obs
