#include "obs/event_log.h"

#include <chrono>

#include "obs/exposition.h"

namespace diffc::obs {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

std::string Event::ToJsonLine() const {
  std::string out = "{\"seq\": " + std::to_string(seq) +
                    ", \"ns\": " + std::to_string(ns) + ", \"type\": \"" +
                    JsonEscape(type) + "\"";
  for (const auto& [k, v] : fields) {
    out += ", \"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\"";
  }
  out += "}";
  return out;
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void EventLog::Record(std::string type,
                      std::vector<std::pair<std::string, std::string>> fields) {
  const std::uint64_t now = SteadyNowNs();
  MutexLock lock(&mu_);
  if (!enabled_) return;
  Event e;
  e.ns = now;
  e.seq = total_++;
  e.type = std::move(type);
  e.fields = std::move(fields);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[next_] = std::move(e);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<Event> EventLog::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  // `next_` is the oldest slot once the ring is full; 0 before that.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::string EventLog::DumpJsonl() const {
  std::string out;
  for (const Event& e : Snapshot()) {
    out += e.ToJsonLine();
    out += "\n";
  }
  return out;
}

void EventLog::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
}

void EventLog::SetEnabled(bool enabled) {
  MutexLock lock(&mu_);
  enabled_ = enabled;
}

bool EventLog::enabled() const {
  MutexLock lock(&mu_);
  return enabled_;
}

std::uint64_t EventLog::total() const {
  MutexLock lock(&mu_);
  return total_;
}

std::uint64_t EventLog::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

EventLog& GlobalEventLog() {
  // Leaked for the same destruction-order reason as the metrics registry.
  static EventLog* log = new EventLog(4096);
  return *log;
}

}  // namespace diffc::obs
