#ifndef DIFFC_OBS_EXPOSITION_H_
#define DIFFC_OBS_EXPOSITION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace diffc::obs {

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` per family, samples as `name{labels} value`,
/// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
/// `_count`. Families sharing a name emit one HELP/TYPE block. Output is
/// deterministic (snapshot order).
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// Renders a snapshot as a JSON object:
///
///     {"counters": [{"name": ..., "labels": {...}, "value": N}, ...],
///      "gauges": [...],
///      "histograms": [{"name": ..., "labels": {...}, "bounds": [...],
///                      "counts": [...], "count": N, "sum": X}, ...]}
///
/// Histogram `counts` are non-cumulative with the +Inf bucket last
/// (`counts.size() == bounds.size() + 1`). Deterministic ordering.
std::string RenderJson(const MetricsSnapshot& snapshot);

/// Convenience: render the global registry right now.
std::string SnapshotPrometheus();
std::string SnapshotJson();

/// Escapes `s` for inclusion inside a JSON double-quoted string (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// Formats a double the way the exposition layer does: shortest-roundtrip
/// decimal, "+Inf"/"-Inf"/"NaN" for non-finite values (Prometheus only; the
/// JSON renderer never emits non-finite numbers).
std::string FormatDouble(double v);

/// Lower-case zero-padded 16-digit hex, no "0x" prefix — the rendering used
/// for trace and span ids in /tracez and the slow-query log.
std::string HexU64(std::uint64_t v);

}  // namespace diffc::obs

#endif  // DIFFC_OBS_EXPOSITION_H_
