#include "obs/trace.h"

#include <chrono>
#include <cstdio>

#include "obs/exposition.h"

namespace diffc::obs {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::uint64_t WallNowUnixNs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::system_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

std::uint64_t TraceRecord::TotalNs() const {
  std::uint64_t total = 0;
  for (const TraceSpan& s : spans) {
    if (s.parent == -1) total += s.duration_ns;
  }
  return total;
}

int TraceRecord::HottestLeaf() const {
  // Self time = duration minus the children's durations, so a phase span
  // is charged for its own work, not for cheap probes nested inside it.
  std::vector<std::uint64_t> self(spans.size(), 0);
  for (std::size_t i = 0; i < spans.size(); ++i) self[i] = spans[i].duration_ns;
  for (const TraceSpan& s : spans) {
    if (s.parent >= 0) {
      self[s.parent] -= self[s.parent] >= s.duration_ns ? s.duration_ns : self[s.parent];
    }
  }
  int best = -1;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    // Ties go to the deeper (more specific) span.
    if (best == -1 || self[i] > self[best] ||
        (self[i] == self[best] && spans[i].depth > spans[best].depth)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::string TraceRecord::ToString() const {
  std::string out;
  for (const TraceSpan& s : spans) {
    for (int i = 0; i < s.depth; ++i) out += "  ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %.3fms", s.duration_ns / 1e6);
    out += s.name + buf + "\n";
  }
  return out;
}

std::string TraceRecord::ToJson() const {
  std::string out = "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    if (i > 0) out += ", ";
    out += "{\"name\": \"" + JsonEscape(s.name) +
           "\", \"parent\": " + std::to_string(s.parent) +
           ", \"depth\": " + std::to_string(s.depth) +
           ", \"start_ns\": " + std::to_string(s.start_ns) +
           ", \"duration_ns\": " + std::to_string(s.duration_ns);
    if (!s.detail.empty()) out += ", \"detail\": \"" + JsonEscape(s.detail) + "\"";
    out += "}";
  }
  out += "]";
  return out;
}

Tracer::Tracer(bool enabled) : enabled_(enabled) {
  if (enabled_) {
    start_ns_ = SteadyNowNs();
    wall_start_unix_ns_ = WallNowUnixNs();
  }
}

std::uint64_t Tracer::NowRelNs() const { return SteadyNowNs() - start_ns_; }

int Tracer::Begin(std::string_view name) {
  if (!enabled_) return -1;
  TraceSpan span;
  span.name = std::string(name);
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = static_cast<int>(open_.size());
  span.start_ns = NowRelNs();
  record_.spans.push_back(std::move(span));
  int handle = static_cast<int>(record_.spans.size()) - 1;
  open_.push_back(handle);
  return handle;
}

void Tracer::End(int handle) {
  if (!enabled_ || handle < 0) return;
  const std::uint64_t now = NowRelNs();
  // Close the span and any descendants still open (guards unwind LIFO, so
  // this only triggers on early returns that skipped inner guards).
  while (!open_.empty()) {
    int idx = open_.back();
    open_.pop_back();
    TraceSpan& s = record_.spans[idx];
    s.duration_ns = now >= s.start_ns ? now - s.start_ns : 0;
    if (idx == handle) break;
  }
}

void Tracer::Note(std::string_view name, std::string_view detail) {
  if (!enabled_) return;
  TraceSpan span;
  span.name = std::string(name);
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = static_cast<int>(open_.size());
  span.start_ns = NowRelNs();
  span.duration_ns = 0;
  span.detail = std::string(detail);
  record_.spans.push_back(std::move(span));
}

TraceRecord Tracer::Finish() {
  if (!open_.empty()) End(open_.front());
  TraceRecord out = std::move(record_);
  out.wall_start_unix_ns = wall_start_unix_ns_;
  record_ = TraceRecord{};
  open_.clear();
  // Re-anchor so a reused tracer gets fresh clocks.
  if (enabled_) {
    start_ns_ = SteadyNowNs();
    wall_start_unix_ns_ = WallNowUnixNs();
  }
  return out;
}

}  // namespace diffc::obs
