#ifndef DIFFC_OBS_EVENT_LOG_H_
#define DIFFC_OBS_EVENT_LOG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffc::obs {

/// A discrete, structured occurrence worth keeping for a post-mortem:
/// deadline exceeded, degrade, escalate attempt, cache eviction, fail-point
/// fire, worker exception. Events are rare by construction — per-decision /
/// per-propagation happenings belong in metrics, not here.
struct Event {
  /// steady_clock nanoseconds at record time.
  std::uint64_t ns = 0;
  /// Monotonic sequence number across the log's lifetime (survives
  /// wraparound, so dropped ranges are visible as seq gaps).
  std::uint64_t seq = 0;
  /// Event type, e.g. "degrade", "deadline_exceeded", "cache_eviction".
  std::string type;
  /// Key/value payload, insertion-ordered.
  std::vector<std::pair<std::string, std::string>> fields;

  /// One JSONL line (no trailing newline):
  ///     {"seq": 7, "ns": 123, "type": "degrade", "k": "v", ...}
  std::string ToJsonLine() const;
};

/// A bounded, thread-safe sink of `Event`s operating as a ring-buffer
/// "flight recorder": the newest `capacity` events are retained, older ones
/// are overwritten (and counted in `dropped()`). Recording takes a mutex —
/// events are rare, and the lock keeps the ring and the sequence counter
/// consistent for dumps taken mid-flight.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 1024);

  /// Records an event (no-op while disabled). Thread-safe.
  void Record(std::string type,
              std::vector<std::pair<std::string, std::string>> fields = {})
      EXCLUDES(mu_);

  /// Oldest-to-newest copy of the retained events.
  std::vector<Event> Snapshot() const EXCLUDES(mu_);

  /// The retained events as JSONL, one event per line — the post-mortem
  /// dump format.
  std::string DumpJsonl() const;

  /// Drops every retained event; counters (`total`, `dropped`) survive.
  void Clear() EXCLUDES(mu_);

  /// Enables/disables recording (enabled by default). Disabling is the
  /// production off-switch; the flight recorder costs nothing when off.
  void SetEnabled(bool enabled) EXCLUDES(mu_);
  bool enabled() const EXCLUDES(mu_);

  std::size_t capacity() const { return capacity_; }
  /// Events ever recorded (including overwritten ones).
  std::uint64_t total() const EXCLUDES(mu_);
  /// Events overwritten by wraparound.
  std::uint64_t dropped() const EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  bool enabled_ GUARDED_BY(mu_) = true;
  std::vector<Event> ring_ GUARDED_BY(mu_);   // Up to capacity_ entries.
  std::size_t next_ GUARDED_BY(mu_) = 0;      // Overwrite position once full.
  std::uint64_t total_ GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

/// The process-wide flight recorder every library site records into.
EventLog& GlobalEventLog();

}  // namespace diffc::obs

#endif  // DIFFC_OBS_EVENT_LOG_H_
