#include "obs/exposition.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace diffc::obs {

namespace {

// Prometheus label values escape backslash, double-quote, and newline.
std::string PromLabelEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// HELP text escapes backslash and newline (quotes are legal there).
std::string PromHelpEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// `{k="v",...}`, with `extra` appended last (used for the `le` label);
// empty when there are no labels at all.
std::string PromLabels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + PromLabelEscape(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

void EmitFamilyHeader(std::string& out, std::string& last_family,
                      const std::string& name, const std::string& help,
                      const char* type) {
  if (name == last_family) return;
  last_family = name;
  out += "# HELP " + name + " " + PromHelpEscape(help) + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

void AppendJsonLabels(std::string& out, const Labels& labels) {
  out += "\"labels\": {";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\"";
  }
  out += "}";
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back = 0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

std::string HexU64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const CounterSample& c : snapshot.counters) {
    EmitFamilyHeader(out, last_family, c.name, c.help, "counter");
    out += c.name + PromLabels(c.labels) + " " + std::to_string(c.value) + "\n";
  }
  last_family.clear();
  for (const GaugeSample& g : snapshot.gauges) {
    EmitFamilyHeader(out, last_family, g.name, g.help, "gauge");
    out += g.name + PromLabels(g.labels) + " " + FormatDouble(g.value) + "\n";
  }
  last_family.clear();
  for (const HistogramSample& h : snapshot.histograms) {
    EmitFamilyHeader(out, last_family, h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      out += h.name + "_bucket" +
             PromLabels(h.labels, "le=\"" + FormatDouble(h.bounds[i]) + "\"") + " " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += h.buckets.empty() ? 0 : h.buckets.back();
    out += h.name + "_bucket" + PromLabels(h.labels, "le=\"+Inf\"") + " " +
           std::to_string(cumulative) + "\n";
    out += h.name + "_sum" + PromLabels(h.labels) + " " + FormatDouble(h.sum) + "\n";
    out += h.name + "_count" + PromLabels(h.labels) + " " + std::to_string(h.count) +
           "\n";
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const CounterSample& c : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + JsonEscape(c.name) + "\", ";
    AppendJsonLabels(out, c.labels);
    out += ", \"value\": " + std::to_string(c.value) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  first = true;
  for (const GaugeSample& g : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + JsonEscape(g.name) + "\", ";
    AppendJsonLabels(out, g.labels);
    out += ", \"value\": " + FormatDouble(std::isfinite(g.value) ? g.value : 0.0) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  first = true;
  for (const HistogramSample& h : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + JsonEscape(h.name) + "\", ";
    AppendJsonLabels(out, h.labels);
    out += ", \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatDouble(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + FormatDouble(std::isfinite(h.sum) ? h.sum : 0.0) + "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}";
  return out;
}

std::string SnapshotPrometheus() {
  return RenderPrometheus(Registry::Global().Snapshot());
}

std::string SnapshotJson() { return RenderJson(Registry::Global().Snapshot()); }

}  // namespace diffc::obs
