#ifndef DIFFC_OBS_TRACE_H_
#define DIFFC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace diffc::obs {

/// Per-query tracing: a lightweight span tree on `steady_clock`, recorded
/// by the engine when `EngineOptions::trace` is on. One `Tracer` lives per
/// query on the worker thread that runs it (not thread-safe, by design);
/// the finished `TraceRecord` is attached to the query result.
///
/// A disabled tracer (the default) costs one branch per span — every
/// `SpanGuard` checks `enabled()` before touching the clock — so tracing
/// adds nothing to untraced queries.

/// One completed (or still-open) span.
struct TraceSpan {
  std::string name;
  /// Index of the enclosing span in `TraceRecord::spans`, -1 for roots.
  int parent = -1;
  /// Nesting depth (roots at 0).
  int depth = 0;
  /// Start offset from the trace's start, nanoseconds.
  std::uint64_t start_ns = 0;
  /// Span duration, nanoseconds (0 while open).
  std::uint64_t duration_ns = 0;
  /// Free-form annotation (set for `Tracer::Note` event spans; empty for
  /// ordinary phase spans).
  std::string detail;
};

/// The span tree of one traced query, in span-start order (a parent always
/// precedes its children).
struct TraceRecord {
  std::vector<TraceSpan> spans;
  /// Wall-clock (`system_clock`) Unix nanoseconds at the tracer's
  /// construction — the anchor that turns the spans' steady-clock offsets
  /// into absolute times. Span offsets stay on `steady_clock` (monotonic,
  /// immune to NTP steps); renderers add the anchor when they need
  /// absolute timestamps (e.g. /tracez). 0 for records from a disabled
  /// tracer.
  std::uint64_t wall_start_unix_ns = 0;

  /// Total traced wall time: the sum of root-span durations.
  std::uint64_t TotalNs() const;

  /// The span with the largest *self* time (duration minus children), ties
  /// broken toward the deeper span — where the query actually spent its
  /// time. For a degraded query this names the solver phase that consumed
  /// the budget. Returns -1 when empty.
  int HottestLeaf() const;

  /// Human-readable indented tree, one span per line:
  ///     sat                        12.3ms
  std::string ToString() const;

  /// JSON array of span objects: [{"name", "parent", "depth", "start_ns",
  /// "duration_ns"}, ...].
  std::string ToJson() const;
};

/// Builds a `TraceRecord`. Spans nest by Begin/End pairing (LIFO); use
/// `SpanGuard` rather than calling Begin/End directly.
class Tracer {
 public:
  /// A tracer that records nothing (all calls are no-ops).
  Tracer() = default;

  /// `enabled` true: record spans. false: a no-op tracer.
  explicit Tracer(bool enabled);

  bool enabled() const { return enabled_; }

  /// Opens a span under the innermost open span. Returns a handle for End,
  /// or -1 when disabled.
  int Begin(std::string_view name);

  /// Closes the span `handle` (and any still-open descendants).
  void End(int handle);

  /// Records an instant event: a zero-duration span under the innermost
  /// open span, carrying `detail` as its annotation. The client's retry /
  /// backoff / breaker-transition events use this.
  void Note(std::string_view name, std::string_view detail = {});

  /// Closes every open span and returns the finished record. The tracer is
  /// left empty and may be reused.
  TraceRecord Finish();

 private:
  std::uint64_t NowRelNs() const;

  bool enabled_ = false;
  std::uint64_t start_ns_ = 0;  // Absolute steady_clock ns at construction.
  std::uint64_t wall_start_unix_ns_ = 0;  // system_clock anchor, see TraceRecord.
  TraceRecord record_;
  std::vector<int> open_;  // Stack of open span indices.
};

/// RAII span: opens on construction (when the tracer is non-null and
/// enabled), closes on destruction.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, std::string_view name) : tracer_(tracer) {
    if (tracer_ != nullptr && tracer_->enabled()) handle_ = tracer_->Begin(name);
  }
  ~SpanGuard() {
    if (tracer_ != nullptr && handle_ >= 0) tracer_->End(handle_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_;
  int handle_ = -1;
};

}  // namespace diffc::obs

#endif  // DIFFC_OBS_TRACE_H_
