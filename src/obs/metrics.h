#ifndef DIFFC_OBS_METRICS_H_
#define DIFFC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffc::obs {

/// Process-wide metrics: named counters, gauges, and fixed-bucket
/// histograms, registered once and incremented lock-free on hot paths.
///
/// Naming scheme: `diffc_<subsystem>_<name>[_total|_seconds]`, with
/// Prometheus conventions (`_total` for counters, base-unit seconds for
/// durations). A metric handle is looked up once (typically a function-local
/// static) and then used forever — handles are never invalidated, not even
/// by `Registry::ResetValues()`, which zeroes values but keeps every
/// registration.
///
/// Recording discipline: the library never increments metrics inside solver
/// inner loops. Work counters are accumulated thread-locally (e.g.
/// `prop::SolverStats`) and flushed in O(1) atomics at procedure exit, so
/// the whole layer costs a handful of relaxed atomic adds per query.

/// Global switch for metric recording at the library's flush sites. Handles
/// themselves always work (a direct `Inc()` is never gated); this flag gates
/// the *instrumentation* in engine/pool/cache/solver code so benchmarks can
/// measure the cost of the layer. Default: enabled.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// A fixed label set attached to a metric at registration time, e.g.
/// {{"procedure", "sat"}}. Rendered as `name{k="v",...}` in Prometheus
/// text format. Label values are escaped by the exposition layer.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing counter. Increments are relaxed atomic adds
/// sharded across cache lines, so concurrent writers on different cores do
/// not contend; `Value()` sums the shards (each shard read is atomic; the
/// sum is a consistent-enough snapshot for exposition).
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void Inc(std::uint64_t delta = 1) {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  static std::size_t ShardIndex();

  Shard shards_[kShards];
};

/// A gauge: a value that can go up and down (queue depth, cache size,
/// in-flight tasks) or hold a ratio (cache hit rate). Double-valued so
/// fractional gauges need no fixed-point encoding; integral values render
/// without a decimal point in the exposition layer. All operations are
/// single relaxed atomics (`Add`/`Sub` spell the read-modify-write as a CAS
/// loop, like `Histogram`'s sum, to avoid relying on C++20 floating-point
/// `fetch_add` support).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double expected = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(expected, expected + d,
                                         std::memory_order_relaxed)) {
    }
  }
  void Sub(double d) { Add(-d); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<double> value_{0};
};

/// A fixed-bucket histogram with Prometheus semantics: `bounds` are
/// ascending inclusive upper bounds (`le`), with an implicit +Inf bucket.
/// `Observe` is a binary search plus two relaxed atomic adds (bucket and
/// count) and one CAS-loop add (sum); no locks.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Per-bucket (non-cumulative) counts; size `bounds().size() + 1`, the
  /// last entry being the +Inf bucket.
  std::vector<std::uint64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` exponential bucket bounds starting at `start`, each `factor`
/// times the previous — the default shape for latency histograms.
std::vector<double> ExponentialBuckets(double start, double factor, int count);

/// `count` linear bucket bounds: start, start+width, ...
std::vector<double> LinearBuckets(double start, double width, int count);

/// One sampled counter / gauge / histogram in a snapshot, carrying its
/// registration metadata so the exposition layer is self-contained.
struct CounterSample {
  std::string name;
  std::string help;
  Labels labels;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string help;
  Labels labels;
  double value = 0;
};

struct HistogramSample {
  std::string name;
  std::string help;
  Labels labels;
  std::vector<double> bounds;
  /// Non-cumulative per-bucket counts, size `bounds.size() + 1` (+Inf last).
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// A point-in-time copy of every registered metric, sorted by
/// (name, labels) for deterministic exposition.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// The metrics registry. Registration takes a mutex (cold path, once per
/// call site); the returned handles are lock-free and live for the life of
/// the registry. Re-registering the same (name, labels) returns the same
/// handle; help text and histogram bounds are fixed by the first
/// registration.
///
/// `Global()` is the process-wide instance every library call site uses;
/// local instances exist for tests of the registry itself.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  Counter* GetCounter(std::string_view name, std::string_view help,
                      Labels labels = {}) EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  Labels labels = {}) EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds, Labels labels = {}) EXCLUDES(mu_);

  /// A consistent point-in-time copy of every metric. Registration is
  /// blocked for the duration; values are atomic reads.
  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

  /// Zeroes every value; registrations (and outstanding handles) survive.
  void ResetValues() EXCLUDES(mu_);

 private:
  template <typename M>
  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<M> metric;
  };

  static std::string Key(std::string_view name, const Labels& labels);

  mutable Mutex mu_;
  std::vector<Entry<Counter>> counters_ GUARDED_BY(mu_);
  std::vector<Entry<Gauge>> gauges_ GUARDED_BY(mu_);
  std::vector<Entry<Histogram>> histograms_ GUARDED_BY(mu_);
};

}  // namespace diffc::obs

#endif  // DIFFC_OBS_METRICS_H_
