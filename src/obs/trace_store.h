#ifndef DIFFC_OBS_TRACE_STORE_H_
#define DIFFC_OBS_TRACE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffc::obs {

/// Storage for completed request traces (PR 8). Where `Tracer` builds one
/// in-process span tree, `StoredTrace` wraps that tree with the wire-level
/// identity (trace id, span ids) that lets a client-side record and the
/// server-side record of the same request be found together, and
/// `TraceStore` is the bounded process-wide ring the /tracez endpoint
/// reads. The companion `SlowQueryLog` is the same shape for requests that
/// crossed the slow-query threshold.

/// One finished request-scoped trace as retained for /tracez.
struct StoredTrace {
  /// 16-byte trace id, split into two u64 halves (hi printed first).
  std::uint64_t trace_id_hi = 0;
  std::uint64_t trace_id_lo = 0;
  /// This record's own span id (client root span or server span).
  std::uint64_t span_id = 0;
  /// Span id of the remote parent (0 when this side minted the trace).
  std::uint64_t parent_span_id = 0;
  /// "client" or "server" — which side of the wire recorded this.
  std::string kind;
  /// Operation name, e.g. "check-batch", "register-premises".
  std::string name;
  /// "ok", "error", or "shed".
  std::string status = "ok";
  /// Head-sampling decision that was propagated on the wire.
  bool sampled = false;
  /// True when sampling was forced (client --trace / wire flag) rather
  /// than drawn.
  bool forced = false;
  /// Tail always-sample reasons (any one of these stores an otherwise
  /// unsampled trace).
  bool slow = false;
  bool shed = false;
  bool errored = false;
  /// End-to-end duration of this record's root span, nanoseconds.
  std::uint64_t duration_ns = 0;
  /// The span tree (carries the wall-clock anchor for absolute times).
  TraceRecord record;

  /// 32 lower-case hex digits, hi half first.
  std::string TraceIdHex() const;

  /// One JSON object (schema documented in DESIGN.md §12):
  ///     {"trace_id": "...", "span_id": "...", "parent_span_id": "...",
  ///      "kind": "server", "name": "check-batch", "status": "ok",
  ///      "sampled": true, "forced": false, "slow": false, "shed": false,
  ///      "errored": false, "duration_ns": N, "wall_start_unix_ns": N,
  ///      "spans": [...]}
  std::string ToJson() const;
};

/// Bounded thread-safe ring of `StoredTrace`s, newest-wins. One process
/// global (`GlobalTraceStore()`) collects both client- and server-side
/// records so an in-process loopback test sees the joined trace.
class TraceStore {
 public:
  explicit TraceStore(std::size_t capacity = 256);

  /// Retains `trace`, overwriting the oldest entry when full. Thread-safe.
  void Add(StoredTrace trace) EXCLUDES(mu_);

  /// Oldest-to-newest copy of the retained traces.
  std::vector<StoredTrace> Snapshot() const EXCLUDES(mu_);

  /// All retained records carrying the given trace id, oldest first —
  /// a joined view of one request (client record + server records).
  std::vector<StoredTrace> FindByTraceId(std::uint64_t hi, std::uint64_t lo) const
      EXCLUDES(mu_);

  /// Resizes the ring (drops retained entries; counters survive). Used at
  /// server start to apply --trace_store_capacity.
  void SetCapacity(std::size_t capacity) EXCLUDES(mu_);

  /// Drops every retained trace; counters survive.
  void Clear() EXCLUDES(mu_);

  std::size_t capacity() const EXCLUDES(mu_);
  std::size_t size() const EXCLUDES(mu_);
  /// Traces ever added (including overwritten ones).
  std::uint64_t total() const EXCLUDES(mu_);
  /// Traces overwritten by wraparound.
  std::uint64_t dropped() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::size_t capacity_ GUARDED_BY(mu_);
  std::vector<StoredTrace> ring_ GUARDED_BY(mu_);  // Up to capacity_ entries.
  std::size_t next_ GUARDED_BY(mu_) = 0;           // Overwrite position once full.
  std::uint64_t total_ GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

/// The process-wide trace sink /tracez reads.
TraceStore& GlobalTraceStore();

/// One slow-request entry as retained for /slowz and emitted to stderr.
struct SlowQuery {
  /// Wall-clock Unix nanoseconds when the request started.
  std::uint64_t wall_unix_ns = 0;
  /// Monotonic sequence number across the log's lifetime.
  std::uint64_t seq = 0;
  /// Operation name, e.g. "check-batch".
  std::string kind;
  /// Request duration, seconds.
  double seconds = 0;
  /// Server session id the request arrived on.
  std::uint64_t session = 0;
  /// 32-hex-digit trace id ("0"*32 when the request carried none).
  std::string trace_id;
  /// "ok", "error", or "shed".
  std::string status = "ok";

  /// One JSON line (no trailing newline):
  ///     {"slow_query": {"seq": 1, "wall_unix_ns": N, "kind": "...",
  ///      "seconds": X, "session": N, "trace_id": "...", "status": "ok"}}
  /// The outer "slow_query" key makes the stderr stream greppable.
  std::string ToJsonLine() const;
};

/// Bounded thread-safe ring of `SlowQuery` entries (same flight-recorder
/// shape as `EventLog`).
class SlowQueryLog {
 public:
  explicit SlowQueryLog(std::size_t capacity = 128);

  /// Retains `q` (assigning its `seq`) and returns the stored copy so the
  /// caller can emit the exact retained line to stderr. Thread-safe.
  SlowQuery Add(SlowQuery q) EXCLUDES(mu_);

  /// Oldest-to-newest copy of the retained entries.
  std::vector<SlowQuery> Snapshot() const EXCLUDES(mu_);

  /// Drops every retained entry; counters survive.
  void Clear() EXCLUDES(mu_);

  std::size_t capacity() const { return capacity_; }
  std::uint64_t total() const EXCLUDES(mu_);
  std::uint64_t dropped() const EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  std::vector<SlowQuery> ring_ GUARDED_BY(mu_);
  std::size_t next_ GUARDED_BY(mu_) = 0;
  std::uint64_t total_ GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

/// The process-wide slow-query sink /slowz reads.
SlowQueryLog& GlobalSlowQueryLog();

/// A nonzero pseudo-random 64-bit value from a thread-local generator
/// seeded with entropy — trace- and span-id minting. Not cryptographic;
/// collision odds across a store of hundreds of traces are negligible.
std::uint64_t RandomTraceBits();

/// Uniform double in [0, 1) from the same thread-local generator — the
/// head-sampling draw.
double SamplingDraw();

/// Grafts `child` (e.g. an engine TraceRecord) into `dst` under the span at
/// `attach_idx`: child roots become children of `attach_idx`, depths and
/// parent indices shift accordingly. Start offsets are re-based onto
/// `dst`'s timeline using the two records' wall-clock anchors; when the
/// child has no anchor its spans start at the attach span's start. Used by
/// the server to join engine traces into the request trace.
void AppendChildRecord(TraceRecord* dst, int attach_idx, const TraceRecord& child);

}  // namespace diffc::obs

#endif  // DIFFC_OBS_TRACE_STORE_H_
