#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace diffc::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

// A stable small integer per thread, for shard selection. Thread ids
// recycle, but collisions only cost contention, never correctness.
std::size_t ThreadOrdinal() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

bool MetricsEnabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::size_t Counter::ShardIndex() { return ThreadOrdinal() % kShards; }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  std::size_t i =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20; spelled as a CAS loop to stay
  // portable across standard-library implementations.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBuckets(double start, double factor, int count) {
  std::vector<double> out;
  out.reserve(count);
  double v = start;
  for (int i = 0; i < count; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> LinearBuckets(double start, double width, int count) {
  std::vector<double> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(start + width * i);
  return out;
}

Registry& Registry::Global() {
  // Leaked on purpose: call sites hold handles in function-local statics
  // whose destruction order vs. this registry is otherwise unsequenced.
  static Registry* registry = new Registry();
  return *registry;
}

std::string Registry::Key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help,
                              Labels labels) {
  const std::string key = Key(name, labels);
  MutexLock lock(&mu_);
  for (const Entry<Counter>& e : counters_) {
    if (Key(e.name, e.labels) == key) return e.metric.get();
  }
  counters_.push_back(Entry<Counter>{std::string(name), std::string(help),
                                     std::move(labels), std::make_unique<Counter>()});
  return counters_.back().metric.get();
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help,
                          Labels labels) {
  const std::string key = Key(name, labels);
  MutexLock lock(&mu_);
  for (const Entry<Gauge>& e : gauges_) {
    if (Key(e.name, e.labels) == key) return e.metric.get();
  }
  gauges_.push_back(Entry<Gauge>{std::string(name), std::string(help),
                                 std::move(labels), std::make_unique<Gauge>()});
  return gauges_.back().metric.get();
}

Histogram* Registry::GetHistogram(std::string_view name, std::string_view help,
                                  std::vector<double> bounds, Labels labels) {
  const std::string key = Key(name, labels);
  MutexLock lock(&mu_);
  for (const Entry<Histogram>& e : histograms_) {
    if (Key(e.name, e.labels) == key) return e.metric.get();
  }
  histograms_.push_back(Entry<Histogram>{std::string(name), std::string(help),
                                         std::move(labels),
                                         std::make_unique<Histogram>(std::move(bounds))});
  return histograms_.back().metric.get();
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&mu_);
  snap.counters.reserve(counters_.size());
  for (const Entry<Counter>& e : counters_) {
    snap.counters.push_back(CounterSample{e.name, e.help, e.labels, e.metric->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const Entry<Gauge>& e : gauges_) {
    snap.gauges.push_back(GaugeSample{e.name, e.help, e.labels, e.metric->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const Entry<Histogram>& e : histograms_) {
    snap.histograms.push_back(HistogramSample{e.name, e.help, e.labels,
                                              e.metric->bounds(), e.metric->BucketCounts(),
                                              e.metric->Count(), e.metric->Sum()});
  }
  auto by_key = [](const auto& a, const auto& b) {
    return Key(a.name, a.labels) < Key(b.name, b.labels);
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_key);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_key);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_key);
  return snap;
}

void Registry::ResetValues() {
  MutexLock lock(&mu_);
  for (const Entry<Counter>& e : counters_) e.metric->Reset();
  for (const Entry<Gauge>& e : gauges_) e.metric->Reset();
  for (const Entry<Histogram>& e : histograms_) e.metric->Reset();
}

}  // namespace diffc::obs
