#ifndef DIFFC_ENGINE_IMPLICATION_ENGINE_H_
#define DIFFC_ENGINE_IMPLICATION_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/constraint.h"
#include "core/implication.h"
#include "engine/caches.h"
#include "engine/worker_pool.h"
#include "util/status.h"

namespace diffc {

/// Tuning knobs of the batched implication engine.
struct EngineOptions {
  /// Worker threads for `CheckBatch` (clamped to at least 1).
  int num_threads = 4;
  /// Enables the interval-cover fast path: answer a query from the cached
  /// minimal witness sets of its right-hand family when the cover is
  /// conclusive, skipping the SAT solver entirely. Sound in both verdicts;
  /// falls through to SAT when inconclusive.
  bool use_interval_cover_fast_path = true;
  /// Candidate budget for witness-set enumeration on the fast path.
  /// Families whose transversal search exceeds it are cached negatively
  /// and handled by SAT.
  std::size_t witness_max_results = 4096;
  /// DPLL decision budget per query (ResourceExhausted beyond it).
  std::uint64_t max_solver_decisions = 50'000'000;
  /// Free-attribute bound for the exhaustive fallback used when the SAT
  /// budget is exhausted.
  int exhaustive_max_free_bits = 24;
};

/// Which decision procedure answered a query.
enum class DecisionProcedure {
  kNone = 0,        // Query failed before any procedure concluded.
  kTrivial,         // Goal trivial (Definition 3.1): implied outright.
  kFdSubclass,      // Polynomial closure check (singleton-RHS subclass).
  kIntervalCover,   // Witness-set interval cover was conclusive.
  kSat,             // Proposition 5.4 CNF refuted / satisfied by DPLL.
  kExhaustive,      // Exhaustive lattice containment (SAT-budget fallback).
};

/// Stable name of a `DecisionProcedure` ("fd-subclass", "sat", ...).
const char* DecisionProcedureName(DecisionProcedure p);

/// Per-query execution counters.
struct QueryStats {
  DecisionProcedure procedure = DecisionProcedure::kNone;
  /// Witness-set cache hit/lookup flags (fast-path queries only).
  bool witness_cache_used = false;
  bool witness_cache_hit = false;
  /// Premise-translation cache hit/lookup flags (SAT queries only).
  bool premise_cache_used = false;
  bool premise_cache_hit = false;
  /// DPLL counters (zero off the SAT path).
  prop::SolverStats solver;
  /// Wall time of this query, nanoseconds.
  std::uint64_t wall_ns = 0;
};

/// One query's answer: a per-query `Status` (the engine never aborts; every
/// failure is carried here), the outcome when OK, and the counters.
struct EngineQueryResult {
  Status status;
  ImplicationOutcome outcome;
  QueryStats stats;
};

/// Aggregate counters of one `CheckBatch` call.
struct BatchStats {
  std::size_t queries = 0;
  std::size_t implied = 0;
  std::size_t not_implied = 0;
  std::size_t failed = 0;
  /// Queries answered per procedure.
  std::size_t by_trivial = 0;
  std::size_t by_fd = 0;
  std::size_t by_interval_cover = 0;
  std::size_t by_sat = 0;
  std::size_t by_exhaustive = 0;
  /// Shared-cache traffic from this batch.
  std::size_t witness_cache_hits = 0;
  std::size_t witness_cache_misses = 0;
  std::size_t premise_cache_hits = 0;
  std::size_t premise_cache_misses = 0;
  /// Summed DPLL counters.
  std::uint64_t solver_decisions = 0;
  std::uint64_t solver_propagations = 0;
  std::uint64_t solver_conflicts = 0;
  /// Summed per-query wall time and end-to-end batch wall time.
  std::uint64_t total_query_ns = 0;
  std::uint64_t batch_wall_ns = 0;

  /// One-line human-readable rendering, for benchmark tables and logs.
  std::string ToString() const;
};

/// The results of a batch: one entry per goal, index-aligned, plus the
/// aggregate counters.
struct BatchOutcome {
  std::vector<EngineQueryResult> results;
  BatchStats stats;
};

/// A batched, multi-threaded front door to the implication checkers.
///
/// Each query `premises |= goal` is dispatched to the cheapest applicable
/// decision procedure — trivial / FD-subclass closure / witness-set
/// interval cover / SAT (Proposition 5.4) / exhaustive fallback — on a
/// fixed-size `std::jthread` worker pool. All engines share two
/// process-wide caches: minimal witness sets keyed on the right-hand
/// family, and premise CNF translations keyed on the constraint set, so a
/// service answering many queries against the same `ConstraintSet` pays
/// the translation and transversal costs once.
///
/// Verdicts are identical to `CheckImplication` (every procedure is sound
/// and the dispatch is deterministic per query); only speed depends on
/// cache state and thread count. The engine returns `Status` on every
/// failure path and never aborts the process.
///
/// Thread-safe: concurrent `CheckBatch` calls from different threads are
/// allowed and share the pool.
class ImplicationEngine {
 public:
  explicit ImplicationEngine(EngineOptions options = {});

  ImplicationEngine(const ImplicationEngine&) = delete;
  ImplicationEngine& operator=(const ImplicationEngine&) = delete;

  /// The options the engine was built with (threads already clamped).
  const EngineOptions& options() const { return options_; }

  /// Decides `premises |= goals[i]` for every goal, in parallel. Returns
  /// InvalidArgument for an out-of-range universe size; per-query failures
  /// land in the corresponding `EngineQueryResult::status`, never abort.
  Result<BatchOutcome> CheckBatch(int n, const ConstraintSet& premises,
                                  const std::vector<DifferentialConstraint>& goals);

  /// Single-query convenience: the same dispatch and caches, no pool
  /// round-trip.
  EngineQueryResult CheckOne(int n, const ConstraintSet& premises,
                             const DifferentialConstraint& goal);

 private:
  EngineQueryResult RunQuery(int n, const ConstraintSet& premises,
                             const DifferentialConstraint& goal);

  EngineOptions options_;
  WorkerPool pool_;
};

}  // namespace diffc

#endif  // DIFFC_ENGINE_IMPLICATION_ENGINE_H_
