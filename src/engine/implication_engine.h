#ifndef DIFFC_ENGINE_IMPLICATION_ENGINE_H_
#define DIFFC_ENGINE_IMPLICATION_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/constraint.h"
#include "core/implication.h"
#include "engine/caches.h"
#include "engine/engine_options.h"
#include "engine/planner.h"
#include "engine/prepared_premises.h"
#include "engine/worker_pool.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/status.h"

namespace diffc {

/// One query's answer: a per-query `Status` (the engine never aborts; every
/// failure is carried here), the outcome when OK, and the counters.
struct EngineQueryResult {
  Status status;
  ImplicationOutcome outcome;
  QueryStats stats;
  /// The query's span tree, present iff `EngineOptions::trace` was on. For
  /// a degraded query the hottest leaf span names the solver phase that
  /// consumed the budget.
  std::shared_ptr<const obs::TraceRecord> trace;
};

/// Aggregate counters of one `CheckBatch` call.
///
/// `implied + not_implied + degraded + failed == queries`; `cancelled` and
/// `timed_out` classify (subsets of) the other buckets and `escalations`
/// counts retries, so those three are not part of the partition.
struct BatchStats {
  std::size_t queries = 0;
  std::size_t implied = 0;
  std::size_t not_implied = 0;
  std::size_t failed = 0;
  /// Queries whose verdict is kUnknown (OK status under
  /// `ExhaustionPolicy::kDegrade`).
  std::size_t degraded = 0;
  /// Queries that hit a deadline: final status DeadlineExceeded, or
  /// degraded from it.
  std::size_t timed_out = 0;
  /// Escalation retries run across the batch (attempts beyond each query's
  /// first).
  std::size_t escalations = 0;
  /// Queries returned Cancelled (counted in `failed` as well).
  std::size_t cancelled = 0;
  /// Queries answered per procedure.
  std::size_t by_trivial = 0;
  std::size_t by_fd = 0;
  std::size_t by_interval_cover = 0;
  std::size_t by_sat = 0;
  std::size_t by_exhaustive = 0;
  /// Shared-cache traffic from this batch.
  std::size_t witness_cache_hits = 0;
  std::size_t witness_cache_misses = 0;
  std::size_t premise_cache_hits = 0;
  std::size_t premise_cache_misses = 0;
  /// Summed DPLL counters.
  std::uint64_t solver_decisions = 0;
  std::uint64_t solver_propagations = 0;
  std::uint64_t solver_conflicts = 0;
  /// Summed per-query wall time and end-to-end batch wall time.
  std::uint64_t total_query_ns = 0;
  std::uint64_t batch_wall_ns = 0;

  /// One-line human-readable rendering, for benchmark tables and logs.
  std::string ToString() const;
};

/// The results of a batch: one entry per goal, index-aligned, plus the
/// aggregate counters.
struct BatchOutcome {
  std::vector<EngineQueryResult> results;
  BatchStats stats;
};

/// A batched, multi-threaded front door to the implication checkers, built
/// as a prepare/plan/execute pipeline:
///
///   - **Prepare**: `Prepare(n, premises)` compiles the premise set into
///     an immutable, shared `PreparedPremises` artifact (canonical
///     constraints, Proposition 5.4 CNF translation, FD closure index).
///     Callers answering many queries against one premise set prepare once
///     and pass the artifact to every batch; the unprepared entry points
///     prepare on the caller's behalf through the process-wide
///     `PreparedPremisesCache`.
///   - **Plan**: per query, a `QueryPlanner` orders the registered
///     decision procedures (trivial / FD-subclass closure / witness-set
///     interval cover / SAT / exhaustive fallback) by estimated cost and
///     the `EngineOptions` toggles; the plan lands in the query stats and
///     trace.
///   - **Execute**: the plan runs on a fixed-size `std::jthread` worker
///     pool, against the shared witness-set cache.
///
/// Verdicts are identical to `CheckImplication` (every procedure is sound
/// and the dispatch is deterministic per query); only speed depends on
/// cache state and thread count. The engine returns `Status` on every
/// failure path and never aborts the process.
///
/// Thread-safe: concurrent `CheckBatch` calls from different threads are
/// allowed and share the pool.
class ImplicationEngine {
 public:
  explicit ImplicationEngine(EngineOptions options = {});

  ImplicationEngine(const ImplicationEngine&) = delete;
  ImplicationEngine& operator=(const ImplicationEngine&) = delete;

  /// The options the engine was built with (threads already clamped).
  const EngineOptions& options() const { return options_; }

  /// Compiles `premises` into a shared artifact, served from the
  /// process-wide `PreparedPremisesCache` (unless
  /// `EngineOptions::use_prepared_cache` is off). Returns InvalidArgument
  /// for an out-of-range universe size. The artifact is immutable and may
  /// be used concurrently, across batches, and by other engine instances.
  Result<std::shared_ptr<const PreparedPremises>> Prepare(int n,
                                                          const ConstraintSet& premises) const;

  /// Decides `premises |= goals[i]` for every goal, in parallel. Returns
  /// InvalidArgument for an out-of-range universe size; per-query failures
  /// land in the corresponding `EngineQueryResult::status`, never abort.
  ///
  /// `cancel` is a cooperative batch-wide cancel handle: fire it (from any
  /// thread) and queries not yet started return Cancelled without running,
  /// while running queries stop at their next check-point and return
  /// Cancelled from there. The call still waits for every slot to settle,
  /// so the returned vector is fully populated.
  Result<BatchOutcome> CheckBatch(int n, const ConstraintSet& premises,
                                  const std::vector<DifferentialConstraint>& goals,
                                  CancelToken cancel = CancelToken());

  /// `CheckBatch` against an already-prepared premise set — the
  /// prepare-once / execute-many fast path. `prepared` must be non-null.
  Result<BatchOutcome> CheckBatch(std::shared_ptr<const PreparedPremises> prepared,
                                  const std::vector<DifferentialConstraint>& goals,
                                  CancelToken cancel = CancelToken());

  /// As above, with an explicit per-call batch deadline overriding
  /// `EngineOptions::batch_deadline` — the entry point for callers (the
  /// diffcd service) whose requests each carry their own wall-clock
  /// budget. `Deadline::Never()` means unbounded; per-query deadlines from
  /// the options still compose via `Deadline::Earlier`.
  Result<BatchOutcome> CheckBatch(std::shared_ptr<const PreparedPremises> prepared,
                                  const std::vector<DifferentialConstraint>& goals,
                                  Deadline batch_deadline, CancelToken cancel = CancelToken());

  /// Single-query convenience: the same dispatch, caches, deadlines, and
  /// exhaustion policy, no pool round-trip.
  EngineQueryResult CheckOne(int n, const ConstraintSet& premises,
                             const DifferentialConstraint& goal);

  /// `CheckOne` against an already-prepared premise set.
  EngineQueryResult CheckOne(const std::shared_ptr<const PreparedPremises>& prepared,
                             const DifferentialConstraint& goal);

 private:
  /// One dispatch pass under `stop` (may end early with its status):
  /// plan-and-execute over `prepared`, or the legacy inline ladder over
  /// the raw premises when `EngineOptions::use_planner` is off. `tracer`
  /// (never null; disabled when tracing is off) receives the per-phase
  /// spans; `prepared_from_cache` feeds the premise-cache stat flags.
  EngineQueryResult RunQueryOnce(const PreparedPremises& prepared,
                                 const DifferentialConstraint& goal, StopCheck* stop,
                                 const ProcedureBudgets& budgets, obs::Tracer* tracer,
                                 bool prepared_from_cache);
  /// The legacy inline ladder (the reference control flow the differential
  /// suite pins the planner against). Shares the compiled artifacts inside
  /// `prepared` — only the dispatch logic differs from the planner path.
  EngineQueryResult RunLadderOnce(const PreparedPremises& prepared,
                                  const DifferentialConstraint& goal, StopCheck* stop,
                                  const ProcedureBudgets& budgets, obs::Tracer* tracer,
                                  bool prepared_from_cache);
  /// The exhaustion-policy loop around `RunQueryOnce`.
  EngineQueryResult RunQuery(const PreparedPremises& prepared,
                             const DifferentialConstraint& goal, const Deadline& batch_deadline,
                             const CancelToken& cancel, bool prepared_from_cache);
  /// `RunQuery` with exceptions converted to an Internal per-query status.
  EngineQueryResult GuardedRunQuery(const PreparedPremises& prepared,
                                    const DifferentialConstraint& goal,
                                    const Deadline& batch_deadline, const CancelToken& cancel,
                                    bool prepared_from_cache);
  /// Shared batch driver for the prepared and unprepared entry points;
  /// `batch_deadline` is the already-resolved wall-clock bound.
  Result<BatchOutcome> RunBatch(std::shared_ptr<const PreparedPremises> prepared,
                                const std::vector<DifferentialConstraint>& goals,
                                Deadline batch_deadline, CancelToken cancel,
                                bool prepared_from_cache);
  /// The batch deadline implied by `EngineOptions::batch_deadline`.
  Deadline OptionsBatchDeadline() const;

  EngineOptions options_;
  QueryPlanner planner_;
  WorkerPool pool_;
};

}  // namespace diffc

#endif  // DIFFC_ENGINE_IMPLICATION_ENGINE_H_
