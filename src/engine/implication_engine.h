#ifndef DIFFC_ENGINE_IMPLICATION_ENGINE_H_
#define DIFFC_ENGINE_IMPLICATION_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/constraint.h"
#include "core/implication.h"
#include "engine/caches.h"
#include "engine/worker_pool.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/status.h"

namespace diffc {

/// What the engine does when a query exhausts a deadline or a solver
/// budget (DeadlineExceeded / ResourceExhausted). Cancellation is never
/// subject to this policy: a fired cancel token always surfaces as a
/// Cancelled status.
enum class ExhaustionPolicy {
  /// Surface the failure as the per-query `Status` (the default; matches
  /// the engine's historical behavior).
  kFail = 0,
  /// Return OK with `ImplicationOutcome::kUnknown`. The query stats keep
  /// the partial evidence: `stopped_in` names the procedure that ran out
  /// and `degraded_from` the status code it ran out with; solver / cache
  /// counters describe the work done before giving up.
  kDegrade,
  /// Retry with doubled solver budgets (decision budget and witness
  /// candidate budget) and a fresh per-query deadline, after a jittered
  /// exponential backoff, up to `EngineOptions::max_retries` times; then
  /// degrade as above.
  kEscalate,
};

/// Stable name of an `ExhaustionPolicy` ("fail", "degrade", "escalate").
const char* ExhaustionPolicyName(ExhaustionPolicy p);

/// Tuning knobs of the batched implication engine.
struct EngineOptions {
  /// Worker threads for `CheckBatch` (clamped to at least 1).
  int num_threads = 4;
  /// Enables the interval-cover fast path: answer a query from the cached
  /// minimal witness sets of its right-hand family when the cover is
  /// conclusive, skipping the SAT solver entirely. Sound in both verdicts;
  /// falls through to SAT when inconclusive.
  bool use_interval_cover_fast_path = true;
  /// Candidate budget for witness-set enumeration on the fast path.
  /// Families whose transversal search exceeds it are cached negatively
  /// and handled by SAT.
  std::size_t witness_max_results = 4096;
  /// DPLL decision budget per query (ResourceExhausted beyond it).
  std::uint64_t max_solver_decisions = 50'000'000;
  /// Free-attribute bound for the exhaustive fallback used when the SAT
  /// budget is exhausted.
  int exhaustive_max_free_bits = 24;
  /// Wall-clock budget per query attempt; zero = unbounded. Checked
  /// cooperatively (amortized every `stop_check_stride` steps) inside every
  /// decision procedure, so a fired deadline surfaces at the next
  /// check-point, not instantly.
  std::chrono::nanoseconds per_query_deadline{0};
  /// Wall-clock budget for a whole `CheckBatch` call; zero = unbounded.
  /// Each query runs under the earlier of this and its own deadline.
  std::chrono::nanoseconds batch_deadline{0};
  /// What to do when a query exhausts a deadline or solver budget.
  ExhaustionPolicy exhaustion_policy = ExhaustionPolicy::kFail;
  /// Retries under `ExhaustionPolicy::kEscalate` (attempts beyond the
  /// first); exhausted retries degrade.
  int max_retries = 2;
  /// Base backoff between escalation attempts (doubled per retry, jittered
  /// by 0.5–1.5x, capped by the remaining batch deadline); zero disables
  /// sleeping.
  std::chrono::nanoseconds escalate_backoff{100'000};
  /// Steps between cooperative deadline / cancellation checks inside the
  /// solvers and enumerations.
  std::uint32_t stop_check_stride = StopCheck::kDefaultStride;
  /// Records a per-query span tree (`EngineQueryResult::trace`): one span
  /// per attempt with children for each decision-procedure phase (cache
  /// probe, interval cover, SAT, exhaustive, escalation backoff). Latency
  /// *histograms* are aggregated regardless of this flag; the flag only
  /// controls the per-query record.
  bool trace = false;
};

/// Which decision procedure answered a query.
enum class DecisionProcedure {
  kNone = 0,        // Query failed before any procedure concluded.
  kTrivial,         // Goal trivial (Definition 3.1): implied outright.
  kFdSubclass,      // Polynomial closure check (singleton-RHS subclass).
  kIntervalCover,   // Witness-set interval cover was conclusive.
  kSat,             // Proposition 5.4 CNF refuted / satisfied by DPLL.
  kExhaustive,      // Exhaustive lattice containment (SAT-budget fallback).
};

/// Stable name of a `DecisionProcedure` ("fd-subclass", "sat", ...).
const char* DecisionProcedureName(DecisionProcedure p);

/// Per-query execution counters.
struct QueryStats {
  DecisionProcedure procedure = DecisionProcedure::kNone;
  /// The procedure that was running when a deadline / cancellation / budget
  /// stop fired (kNone when the query concluded normally). Under
  /// `ExhaustionPolicy::kDegrade` this is the partial evidence attached to
  /// a kUnknown verdict.
  DecisionProcedure stopped_in = DecisionProcedure::kNone;
  /// Attempts run (1 + escalation retries).
  int attempts = 1;
  /// Under `ExhaustionPolicy::kDegrade`: the status code (DeadlineExceeded
  /// or ResourceExhausted) the final attempt failed with before the engine
  /// converted it to OK + kUnknown; kOk otherwise.
  StatusCode degraded_from = StatusCode::kOk;
  /// Witness-set cache hit/lookup flags (fast-path queries only).
  bool witness_cache_used = false;
  bool witness_cache_hit = false;
  /// Premise-translation cache hit/lookup flags (SAT queries only).
  bool premise_cache_used = false;
  bool premise_cache_hit = false;
  /// DPLL counters (zero off the SAT path; last attempt only).
  prop::SolverStats solver;
  /// Wall time of this query across all attempts, nanoseconds.
  std::uint64_t wall_ns = 0;
};

/// One query's answer: a per-query `Status` (the engine never aborts; every
/// failure is carried here), the outcome when OK, and the counters.
struct EngineQueryResult {
  Status status;
  ImplicationOutcome outcome;
  QueryStats stats;
  /// The query's span tree, present iff `EngineOptions::trace` was on. For
  /// a degraded query the hottest leaf span names the solver phase that
  /// consumed the budget.
  std::shared_ptr<const obs::TraceRecord> trace;
};

/// Aggregate counters of one `CheckBatch` call.
///
/// `implied + not_implied + degraded + failed == queries`; `cancelled` and
/// `timed_out` classify (subsets of) the other buckets and `escalations`
/// counts retries, so those three are not part of the partition.
struct BatchStats {
  std::size_t queries = 0;
  std::size_t implied = 0;
  std::size_t not_implied = 0;
  std::size_t failed = 0;
  /// Queries whose verdict is kUnknown (OK status under
  /// `ExhaustionPolicy::kDegrade`).
  std::size_t degraded = 0;
  /// Queries that hit a deadline: final status DeadlineExceeded, or
  /// degraded from it.
  std::size_t timed_out = 0;
  /// Escalation retries run across the batch (attempts beyond each query's
  /// first).
  std::size_t escalations = 0;
  /// Queries returned Cancelled (counted in `failed` as well).
  std::size_t cancelled = 0;
  /// Queries answered per procedure.
  std::size_t by_trivial = 0;
  std::size_t by_fd = 0;
  std::size_t by_interval_cover = 0;
  std::size_t by_sat = 0;
  std::size_t by_exhaustive = 0;
  /// Shared-cache traffic from this batch.
  std::size_t witness_cache_hits = 0;
  std::size_t witness_cache_misses = 0;
  std::size_t premise_cache_hits = 0;
  std::size_t premise_cache_misses = 0;
  /// Summed DPLL counters.
  std::uint64_t solver_decisions = 0;
  std::uint64_t solver_propagations = 0;
  std::uint64_t solver_conflicts = 0;
  /// Summed per-query wall time and end-to-end batch wall time.
  std::uint64_t total_query_ns = 0;
  std::uint64_t batch_wall_ns = 0;

  /// One-line human-readable rendering, for benchmark tables and logs.
  std::string ToString() const;
};

/// The results of a batch: one entry per goal, index-aligned, plus the
/// aggregate counters.
struct BatchOutcome {
  std::vector<EngineQueryResult> results;
  BatchStats stats;
};

/// A batched, multi-threaded front door to the implication checkers.
///
/// Each query `premises |= goal` is dispatched to the cheapest applicable
/// decision procedure — trivial / FD-subclass closure / witness-set
/// interval cover / SAT (Proposition 5.4) / exhaustive fallback — on a
/// fixed-size `std::jthread` worker pool. All engines share two
/// process-wide caches: minimal witness sets keyed on the right-hand
/// family, and premise CNF translations keyed on the constraint set, so a
/// service answering many queries against the same `ConstraintSet` pays
/// the translation and transversal costs once.
///
/// Verdicts are identical to `CheckImplication` (every procedure is sound
/// and the dispatch is deterministic per query); only speed depends on
/// cache state and thread count. The engine returns `Status` on every
/// failure path and never aborts the process.
///
/// Thread-safe: concurrent `CheckBatch` calls from different threads are
/// allowed and share the pool.
class ImplicationEngine {
 public:
  explicit ImplicationEngine(EngineOptions options = {});

  ImplicationEngine(const ImplicationEngine&) = delete;
  ImplicationEngine& operator=(const ImplicationEngine&) = delete;

  /// The options the engine was built with (threads already clamped).
  const EngineOptions& options() const { return options_; }

  /// Decides `premises |= goals[i]` for every goal, in parallel. Returns
  /// InvalidArgument for an out-of-range universe size; per-query failures
  /// land in the corresponding `EngineQueryResult::status`, never abort.
  ///
  /// `cancel` is a cooperative batch-wide cancel handle: fire it (from any
  /// thread) and queries not yet started return Cancelled without running,
  /// while running queries stop at their next check-point and return
  /// Cancelled from there. The call still waits for every slot to settle,
  /// so the returned vector is fully populated.
  Result<BatchOutcome> CheckBatch(int n, const ConstraintSet& premises,
                                  const std::vector<DifferentialConstraint>& goals,
                                  CancelToken cancel = CancelToken());

  /// Single-query convenience: the same dispatch, caches, deadlines, and
  /// exhaustion policy, no pool round-trip.
  EngineQueryResult CheckOne(int n, const ConstraintSet& premises,
                             const DifferentialConstraint& goal);

 private:
  /// Solver budgets, doubled per escalation attempt.
  struct Budgets {
    std::uint64_t max_decisions;
    std::size_t witness_max_results;
  };

  /// One dispatch pass under `stop` (may end early with its status).
  /// `tracer` (never null; disabled when tracing is off) receives the
  /// per-phase spans.
  EngineQueryResult RunQueryOnce(int n, const ConstraintSet& premises,
                                 const DifferentialConstraint& goal, StopCheck* stop,
                                 const Budgets& budgets, obs::Tracer* tracer);
  /// The exhaustion-policy loop around `RunQueryOnce`.
  EngineQueryResult RunQuery(int n, const ConstraintSet& premises,
                             const DifferentialConstraint& goal, const Deadline& batch_deadline,
                             const CancelToken& cancel);
  /// `RunQuery` with exceptions converted to an Internal per-query status.
  EngineQueryResult GuardedRunQuery(int n, const ConstraintSet& premises,
                                    const DifferentialConstraint& goal,
                                    const Deadline& batch_deadline, const CancelToken& cancel);

  EngineOptions options_;
  WorkerPool pool_;
};

}  // namespace diffc

#endif  // DIFFC_ENGINE_IMPLICATION_ENGINE_H_
