#include "engine/implication_engine.h"

#include <chrono>
#include <exception>
#include <memory>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/mutex.h"

namespace diffc {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

// True for the statuses the exhaustion policy applies to; everything else
// (Cancelled, Internal, InvalidArgument, ...) always surfaces as-is.
bool IsExhaustion(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kResourceExhausted;
}

// True iff `s` came from a fired StopCheck (as opposed to a solver budget
// or any other per-stage failure).
bool IsStopStatus(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded || s.code() == StatusCode::kCancelled;
}

// Sleeps a jittered exponential backoff before escalation attempt
// `attempt` (the one about to run, 2-based), capped by the remaining batch
// deadline. A zero base disables sleeping entirely.
void EscalationBackoff(std::chrono::nanoseconds base, int attempt,
                       const Deadline& batch_deadline) {
  if (base.count() <= 0) return;
  thread_local std::mt19937_64 rng{std::random_device{}()};
  const double jitter = std::uniform_real_distribution<double>(0.5, 1.5)(rng);
  auto wait = std::chrono::nanoseconds(static_cast<std::int64_t>(
      static_cast<double>(base.count()) * static_cast<double>(1 << (attempt - 2)) * jitter));
  if (!batch_deadline.IsNever()) {
    auto remaining = batch_deadline.Remaining();
    if (remaining.count() <= 0) return;
    wait = std::min(wait, std::chrono::duration_cast<std::chrono::nanoseconds>(remaining));
  }
  std::this_thread::sleep_for(wait);
}

// Registry handles of the engine subsystem (`diffc_engine_*` /
// `diffc_deadline_*`), looked up once. Per-procedure families carry a
// `procedure` label; the array is indexed by `DecisionProcedure`.
struct EngineMetrics {
  static constexpr int kProcedures = 6;

  obs::Counter* queries_by_proc[kProcedures];
  obs::Histogram* latency_by_proc[kProcedures];
  obs::Counter* implied;
  obs::Counter* not_implied;
  obs::Counter* unknown;
  obs::Counter* failed;
  obs::Counter* cancelled;
  obs::Counter* escalations;
  obs::Counter* degraded_deadline;
  obs::Counter* degraded_resource;
  obs::Counter* deadline_exceeded;
  obs::Counter* unbounded_queries;
  obs::Histogram* deadline_slack;
  obs::Counter* batches;
  obs::Histogram* batch_seconds;

  EngineMetrics() {
    obs::Registry& r = obs::Registry::Global();
    for (int p = 0; p < kProcedures; ++p) {
      obs::Labels labels{
          {"procedure", DecisionProcedureName(static_cast<DecisionProcedure>(p))}};
      queries_by_proc[p] =
          r.GetCounter("diffc_engine_queries_total",
                       "Queries answered, by concluding decision procedure "
                       "(procedure=none: failed before any procedure concluded).",
                       labels);
      latency_by_proc[p] = r.GetHistogram(
          "diffc_engine_query_seconds",
          "End-to-end per-query wall time across attempts, by procedure.",
          obs::ExponentialBuckets(1e-6, 4.0, 14), labels);
    }
    implied = r.GetCounter("diffc_engine_outcomes_total", "Query verdicts.",
                           {{"outcome", "implied"}});
    not_implied = r.GetCounter("diffc_engine_outcomes_total", "Query verdicts.",
                               {{"outcome", "not_implied"}});
    unknown = r.GetCounter("diffc_engine_outcomes_total", "Query verdicts.",
                           {{"outcome", "unknown"}});
    failed = r.GetCounter("diffc_engine_outcomes_total", "Query verdicts.",
                          {{"outcome", "failed"}});
    cancelled = r.GetCounter("diffc_engine_cancelled_total",
                             "Queries that returned Cancelled.");
    escalations = r.GetCounter("diffc_engine_escalations_total",
                               "Escalation retries run (attempts beyond the first).");
    degraded_deadline =
        r.GetCounter("diffc_engine_degraded_total",
                     "Queries degraded to kUnknown, by exhausted budget kind.",
                     {{"from", "deadline"}});
    degraded_resource =
        r.GetCounter("diffc_engine_degraded_total",
                     "Queries degraded to kUnknown, by exhausted budget kind.",
                     {{"from", "resource"}});
    deadline_exceeded = r.GetCounter(
        "diffc_deadline_exceeded_total",
        "Queries that hit a wall-clock deadline (surfaced or degraded).");
    unbounded_queries = r.GetCounter(
        "diffc_deadline_unbounded_queries_total",
        "Queries that ran without a finite deadline (no slack sample).");
    deadline_slack = r.GetHistogram(
        "diffc_deadline_slack_seconds",
        "Wall-clock budget remaining at query completion (0 = finished at or "
        "past the deadline); one sample per query run under a finite deadline.",
        obs::ExponentialBuckets(1e-5, 4.0, 12));
    batches = r.GetCounter("diffc_engine_batches_total", "CheckBatch calls.");
    batch_seconds =
        r.GetHistogram("diffc_engine_batch_seconds", "End-to-end CheckBatch wall time.",
                       obs::ExponentialBuckets(1e-5, 4.0, 12));
  }
};

EngineMetrics& Metrics() {
  static EngineMetrics* m = new EngineMetrics();
  return *m;
}

// Flushes one settled query into the registry: procedure mix, verdict, and
// latency. Called exactly once per query result, wherever it settles
// (normal run, exception guard, or queue drain).
void RecordQueryMetrics(const EngineQueryResult& r) {
  if (!obs::MetricsEnabled()) return;
  EngineMetrics& m = Metrics();
  const int proc = static_cast<int>(r.stats.procedure);
  if (proc >= 0 && proc < EngineMetrics::kProcedures) {
    m.queries_by_proc[proc]->Inc();
    m.latency_by_proc[proc]->Observe(r.stats.wall_ns / 1e9);
  }
  if (!r.status.ok()) {
    m.failed->Inc();
    if (r.status.code() == StatusCode::kCancelled) m.cancelled->Inc();
    if (r.status.code() == StatusCode::kDeadlineExceeded) m.deadline_exceeded->Inc();
  } else if (r.outcome.verdict == ImplicationOutcome::kUnknown) {
    m.unknown->Inc();
    if (r.stats.degraded_from == StatusCode::kDeadlineExceeded) {
      m.degraded_deadline->Inc();
      m.deadline_exceeded->Inc();
    } else if (r.stats.degraded_from == StatusCode::kResourceExhausted) {
      m.degraded_resource->Inc();
    }
  } else if (r.outcome.implied) {
    m.implied->Inc();
  } else {
    m.not_implied->Inc();
  }
}

}  // namespace

const char* ExhaustionPolicyName(ExhaustionPolicy p) {
  switch (p) {
    case ExhaustionPolicy::kFail:
      return "fail";
    case ExhaustionPolicy::kDegrade:
      return "degrade";
    case ExhaustionPolicy::kEscalate:
      return "escalate";
  }
  return "unknown";
}

const char* DecisionProcedureName(DecisionProcedure p) {
  switch (p) {
    case DecisionProcedure::kNone:
      return "none";
    case DecisionProcedure::kTrivial:
      return "trivial";
    case DecisionProcedure::kFdSubclass:
      return "fd-subclass";
    case DecisionProcedure::kIntervalCover:
      return "interval-cover";
    case DecisionProcedure::kSat:
      return "sat";
    case DecisionProcedure::kExhaustive:
      return "exhaustive";
  }
  return "unknown";
}

std::string BatchStats::ToString() const {
  std::string s;
  s += "queries=" + std::to_string(queries);
  s += " implied=" + std::to_string(implied);
  s += " not_implied=" + std::to_string(not_implied);
  s += " degraded=" + std::to_string(degraded);
  s += " failed=" + std::to_string(failed);
  s += " | timed_out=" + std::to_string(timed_out);
  s += " escalations=" + std::to_string(escalations);
  s += " cancelled=" + std::to_string(cancelled);
  s += " | trivial=" + std::to_string(by_trivial);
  s += " fd=" + std::to_string(by_fd);
  s += " cover=" + std::to_string(by_interval_cover);
  s += " sat=" + std::to_string(by_sat);
  s += " exhaustive=" + std::to_string(by_exhaustive);
  s += " | witness_cache=" + std::to_string(witness_cache_hits) + "h/" +
       std::to_string(witness_cache_misses) + "m";
  s += " premise_cache=" + std::to_string(premise_cache_hits) + "h/" +
       std::to_string(premise_cache_misses) + "m";
  s += " | decisions=" + std::to_string(solver_decisions);
  s += " conflicts=" + std::to_string(solver_conflicts);
  s += " batch_ms=" + std::to_string(batch_wall_ns / 1000000.0);
  return s;
}

ImplicationEngine::ImplicationEngine(EngineOptions options)
    : options_(options),
      planner_(ProcedureRegistry::Global().Snapshot()),
      pool_(options.num_threads < 1 ? 1 : options.num_threads) {
  options_.num_threads = pool_.size();
}

// Maps the engine's simplify level onto premise-compilation options:
// level 0 selects the legacy inline canonicalizer (the differential
// reference), any higher level runs the rewrite simplifier at that level.
static PrepareOptions PrepareOptionsFrom(const EngineOptions& o) {
  PrepareOptions p;
  p.use_rewriter = o.simplify_level > 0;
  if (o.simplify_level > 0) p.simplify_level = o.simplify_level;
  return p;
}

Result<std::shared_ptr<const PreparedPremises>> ImplicationEngine::Prepare(
    int n, const ConstraintSet& premises) const {
  if (options_.use_prepared_cache) {
    return GlobalPreparedPremisesCache().Get(n, premises, PrepareOptionsFrom(options_));
  }
  return PreparedPremises::Build(n, premises, PrepareOptionsFrom(options_));
}

EngineQueryResult ImplicationEngine::RunQueryOnce(const PreparedPremises& prepared,
                                                  const DifferentialConstraint& goal,
                                                  StopCheck* stop,
                                                  const ProcedureBudgets& budgets,
                                                  obs::Tracer* tracer,
                                                  bool prepared_from_cache) {
  if (!options_.use_planner) {
    return RunLadderOnce(prepared, goal, stop, budgets, tracer, prepared_from_cache);
  }

  EngineQueryResult r;
  const std::uint64_t start = NowNs();

  const ProcedureQuery query{prepared.n(), &goal};
  QueryPlan plan = planner_.Plan(prepared, query, options_);
  if (tracer->enabled()) {
    // The chosen plan, as an instantaneous marker span and an event-log
    // record (both gated on tracing: plans repeat per query and would
    // drown the global event ring in large batches).
    const std::string label = "plan:" + plan.ToString();
    obs::SpanGuard plan_span(tracer, label);
    obs::GlobalEventLog().Record("query_plan", {{"plan", plan.ToString()}});
  }

  ProcedureContext ctx;
  ctx.options = &options_;
  ctx.budgets = budgets;
  ctx.stop = stop;
  ctx.tracer = tracer;
  ctx.stats = &r.stats;
  ctx.prepared_from_cache = prepared_from_cache;
  PlanOutcome out = ExecutePlan(plan, prepared, query, &ctx);
  r.status = std::move(out.status);
  r.outcome = out.outcome;
  r.stats.wall_ns = NowNs() - start;
  return r;
}

EngineQueryResult ImplicationEngine::RunLadderOnce(const PreparedPremises& prepared,
                                                   const DifferentialConstraint& goal,
                                                   StopCheck* stop,
                                                   const ProcedureBudgets& budgets,
                                                   obs::Tracer* tracer,
                                                   bool prepared_from_cache) {
  EngineQueryResult r;
  const std::uint64_t start = NowNs();
  const int n = prepared.n();
  const ConstraintSet& premises = prepared.constraints();

  // 1. Triviality: L(X, Y) = ∅, every function satisfies the goal. Runs
  // before the first stop sample on purpose: an O(1) certain answer beats a
  // DeadlineExceeded even when the batch is already over budget.
  if (goal.IsTrivial()) {
    r.outcome.SetImplied();
    r.stats.procedure = DecisionProcedure::kTrivial;
    r.stats.wall_ns = NowNs() - start;
    return r;
  }

  // Fail fast on a deadline that expired before this query started (the
  // degrade path of an over-budget batch).
  if (Status s = stop->CheckNow(); !s.ok()) {
    r.status = std::move(s);
    r.stats.wall_ns = NowNs() - start;
    return r;
  }

  // 2. The polynomial FD subclass (singleton right-hand sides), off the
  // precomputed closure index.
  if (prepared.fd_index().eligible && goal.rhs().size() == 1) {
    obs::SpanGuard span(tracer, "fd-subclass");
    Result<ImplicationOutcome> fd = CheckImplicationFdIndexed(n, prepared.fd_index(), goal);
    if (fd.ok()) {
      r.outcome = *fd;
      r.stats.procedure = DecisionProcedure::kFdSubclass;
    } else {
      r.status = fd.status();
    }
    r.stats.wall_ns = NowNs() - start;
    return r;
  }

  // 3. Interval-cover fast path over the cached minimal witness sets of the
  // goal's right-hand family: L(X, Y) = ∪_{W minimal} [X, S∖W]
  // (Definition 2.6). Sound in both directions when conclusive:
  //   - an interval top S∖W outside L(C) is itself a counterexample;
  //   - if every nonempty interval is covered by a single premise's
  //     lattice, then L(X, Y) ⊆ L(C) and the goal is implied (Thm. 3.5).
  // Inconclusive covers (an interval needs several premises) go to SAT.
  if (options_.use_interval_cover_fast_path) {
    obs::SpanGuard cover_span(tracer, "interval-cover");
    r.stats.witness_cache_used = true;
    std::shared_ptr<const WitnessSetCache::Entry> entry;
    {
      obs::SpanGuard probe_span(tracer, "witness-cache-probe");
      entry = GlobalWitnessSetCache().Get(goal.rhs(), budgets.witness_max_results,
                                          &r.stats.witness_cache_hit, stop);
    }
    if (IsStopStatus(entry->status)) {
      r.status = entry->status;
      r.stats.stopped_in = DecisionProcedure::kIntervalCover;
      r.stats.wall_ns = NowNs() - start;
      return r;
    }
    if (entry->status.ok()) {
      bool every_interval_covered = true;
      for (const ItemSet& w : entry->witnesses) {
        if (Status s = stop->Check(); !s.ok()) {
          r.status = std::move(s);
          r.stats.stopped_in = DecisionProcedure::kIntervalCover;
          r.stats.wall_ns = NowNs() - start;
          return r;
        }
        if (!goal.lhs().Intersect(w).empty()) continue;  // Empty interval.
        const ItemSet top = w.ComplementIn(n);
        // `top` ∈ L(X, Y): X ⊆ top, and no goal member fits inside top
        // because W hits every member. If no premise excludes it, it is a
        // counterexample and the goal is not implied.
        if (!InConstraintLattice(premises, top)) {
          r.outcome.SetNotImplied(top);
          r.stats.procedure = DecisionProcedure::kIntervalCover;
          r.stats.wall_ns = NowNs() - start;
          return r;
        }
        // Single-premise coverage of the whole interval [X, top]:
        // p.lhs ⊆ X keeps p.lhs inside every U ⊇ X, and no member of
        // p.rhs inside `top` keeps every U ⊆ top clear of p.rhs.
        bool covered = false;
        for (const DifferentialConstraint& p : premises) {
          if (p.lhs().IsSubsetOf(goal.lhs()) && !p.rhs().SomeMemberSubsetOf(top)) {
            covered = true;
            break;
          }
        }
        if (!covered) every_interval_covered = false;
      }
      if (every_interval_covered) {
        r.outcome.SetImplied();
        r.stats.procedure = DecisionProcedure::kIntervalCover;
        r.stats.wall_ns = NowNs() - start;
        return r;
      }
    }
    // Witness enumeration exhausted its budget, or the cover was
    // inconclusive: fall through to the complete SAT procedure.
  }

  // 4. SAT (Proposition 5.4), premise clauses from the prepared artifact.
  {
    obs::SpanGuard sat_span(tracer, "sat");
    r.stats.premise_cache_used = true;
    r.stats.premise_cache_hit = prepared_from_cache;
    Result<ImplicationOutcome> sat = CheckImplicationSatTranslated(
        n, prepared.translation(), goal, &r.stats.solver, budgets.max_decisions, stop);
    if (sat.ok()) {
      r.outcome = *sat;
      r.stats.procedure = DecisionProcedure::kSat;
      r.stats.wall_ns = NowNs() - start;
      return r;
    }
    if (IsStopStatus(sat.status())) {
      r.status = sat.status();
      r.stats.stopped_in = DecisionProcedure::kSat;
      r.stats.wall_ns = NowNs() - start;
      return r;
    }

    // 5. Exhaustive lattice containment as a last resort when the SAT budget
    // ran out and the free-attribute count admits enumeration.
    if (sat.status().code() == StatusCode::kResourceExhausted &&
        n - goal.lhs().size() <= options_.exhaustive_max_free_bits) {
      obs::SpanGuard ex_span(tracer, "exhaustive");
      Result<ImplicationOutcome> ex = CheckImplicationExhaustive(
          n, premises, goal, options_.exhaustive_max_free_bits, stop);
      if (ex.ok()) {
        r.outcome = *ex;
        r.stats.procedure = DecisionProcedure::kExhaustive;
        r.stats.wall_ns = NowNs() - start;
        return r;
      }
      if (IsStopStatus(ex.status())) {
        r.status = ex.status();
        r.stats.stopped_in = DecisionProcedure::kExhaustive;
        r.stats.wall_ns = NowNs() - start;
        return r;
      }
    }

    r.status = sat.status();
    if (IsExhaustion(r.status)) r.stats.stopped_in = DecisionProcedure::kSat;
  }
  r.stats.wall_ns = NowNs() - start;
  return r;
}

EngineQueryResult ImplicationEngine::RunQuery(const PreparedPremises& prepared,
                                              const DifferentialConstraint& goal,
                                              const Deadline& batch_deadline,
                                              const CancelToken& cancel,
                                              bool prepared_from_cache) {
  if (DIFFC_FAILPOINT("engine/throw")) {
    throw std::runtime_error("failpoint engine/throw: query task threw");
  }
  ProcedureBudgets budgets{options_.max_solver_decisions, options_.witness_max_results};
  const std::uint64_t start = NowNs();
  obs::Tracer tracer(options_.trace);
  EngineQueryResult r;
  int attempt = 1;
  // The deadline of the attempt that settled the query, for the slack
  // histogram below.
  Deadline deadline = batch_deadline;
  while (true) {
    // Each attempt gets a fresh per-query deadline; the batch deadline is
    // absolute and shared by every attempt.
    deadline = batch_deadline;
    if (options_.per_query_deadline.count() > 0) {
      deadline = Deadline::Earlier(Deadline::After(options_.per_query_deadline), deadline);
    }
    StopCheck stop(deadline, cancel, options_.stop_check_stride);
    {
      obs::SpanGuard attempt_span(&tracer,
                                  attempt == 1 ? "attempt" : "attempt-retry");
      r = RunQueryOnce(prepared, goal, &stop, budgets, &tracer, prepared_from_cache);
    }
    r.stats.attempts = attempt;
    if (r.status.ok() || !IsExhaustion(r.status)) break;

    if (options_.exhaustion_policy == ExhaustionPolicy::kFail) break;
    if (options_.exhaustion_policy == ExhaustionPolicy::kEscalate &&
        attempt <= options_.max_retries) {
      budgets.max_decisions *= 2;
      budgets.witness_max_results *= 2;
      ++attempt;
      if (obs::MetricsEnabled()) Metrics().escalations->Inc();
      obs::GlobalEventLog().Record(
          "escalate", {{"attempt", std::to_string(attempt)},
                       {"stopped_in", DecisionProcedureName(r.stats.stopped_in)},
                       {"from", StatusCodeName(r.status.code())}});
      obs::SpanGuard backoff_span(&tracer, "escalate-backoff");
      EscalationBackoff(options_.escalate_backoff, attempt, batch_deadline);
      continue;
    }
    // kDegrade, or escalation retries exhausted: answer OK + kUnknown and
    // keep the partial evidence (stopped_in, counters) in the stats.
    r.stats.degraded_from = r.status.code();
    obs::GlobalEventLog().Record(
        "degrade", {{"stopped_in", DecisionProcedureName(r.stats.stopped_in)},
                    {"from", StatusCodeName(r.status.code())},
                    {"attempts", std::to_string(attempt)}});
    r.status = Status::Ok();
    r.outcome.SetUnknown();
    break;
  }
  r.stats.wall_ns = NowNs() - start;
  if (r.status.code() == StatusCode::kDeadlineExceeded ||
      r.stats.degraded_from == StatusCode::kDeadlineExceeded) {
    obs::GlobalEventLog().Record(
        "deadline_exceeded",
        {{"stopped_in", DecisionProcedureName(r.stats.stopped_in)},
         {"surfaced", r.status.ok() ? "degraded" : "status"}});
  }
  if (obs::MetricsEnabled()) {
    // Slack: how much of the wall-clock budget was left when the query
    // settled. 0 means it finished at (or past) its deadline.
    if (deadline.IsNever()) {
      Metrics().unbounded_queries->Inc();
    } else {
      const double remaining_s =
          std::chrono::duration<double>(deadline.Remaining()).count();
      Metrics().deadline_slack->Observe(remaining_s > 0 ? remaining_s : 0.0);
    }
  }
  if (tracer.enabled()) {
    r.trace = std::make_shared<obs::TraceRecord>(tracer.Finish());
  }
  return r;
}

EngineQueryResult ImplicationEngine::GuardedRunQuery(const PreparedPremises& prepared,
                                                     const DifferentialConstraint& goal,
                                                     const Deadline& batch_deadline,
                                                     const CancelToken& cancel,
                                                     bool prepared_from_cache) {
  // A decision procedure that throws must fail its own query, not the
  // process: the pool's loop-level catch would keep the worker alive but
  // lose the error.
  EngineQueryResult r;
  try {
    r = RunQuery(prepared, goal, batch_deadline, cancel, prepared_from_cache);
  } catch (const std::exception& e) {
    r = EngineQueryResult{};
    r.status = Status::Internal(std::string("uncaught exception in query: ") + e.what());
  } catch (...) {
    r = EngineQueryResult{};
    r.status = Status::Internal("uncaught non-exception throw in query");
  }
  RecordQueryMetrics(r);
  return r;
}

EngineQueryResult ImplicationEngine::CheckOne(int n, const ConstraintSet& premises,
                                              const DifferentialConstraint& goal) {
  EngineQueryResult r;
  bool from_cache = false;
  std::shared_ptr<const PreparedPremises> prepared;
  if (options_.use_prepared_cache) {
    Result<std::shared_ptr<const PreparedPremises>> p =
        GlobalPreparedPremisesCache().Get(n, premises, PrepareOptionsFrom(options_),
                                          &from_cache);
    if (!p.ok()) {
      r.status = p.status();
      return r;
    }
    prepared = *std::move(p);
  } else {
    Result<std::shared_ptr<const PreparedPremises>> p =
        PreparedPremises::Build(n, premises, PrepareOptionsFrom(options_));
    if (!p.ok()) {
      r.status = p.status();
      return r;
    }
    prepared = *std::move(p);
  }
  Deadline batch_deadline = options_.batch_deadline.count() > 0
                                ? Deadline::After(options_.batch_deadline)
                                : Deadline::Never();
  return GuardedRunQuery(*prepared, goal, batch_deadline, CancelToken(), from_cache);
}

EngineQueryResult ImplicationEngine::CheckOne(
    const std::shared_ptr<const PreparedPremises>& prepared,
    const DifferentialConstraint& goal) {
  if (prepared == nullptr) {
    EngineQueryResult r;
    r.status = Status::InvalidArgument("prepared premises must be non-null");
    return r;
  }
  Deadline batch_deadline = options_.batch_deadline.count() > 0
                                ? Deadline::After(options_.batch_deadline)
                                : Deadline::Never();
  // An explicitly prepared artifact is amortized by construction; queries
  // report it as a premise-compilation cache hit.
  return GuardedRunQuery(*prepared, goal, batch_deadline, CancelToken(),
                         /*prepared_from_cache=*/true);
}

Result<BatchOutcome> ImplicationEngine::CheckBatch(
    int n, const ConstraintSet& premises, const std::vector<DifferentialConstraint>& goals,
    CancelToken cancel) {
  bool from_cache = false;
  std::shared_ptr<const PreparedPremises> prepared;
  if (options_.use_prepared_cache) {
    Result<std::shared_ptr<const PreparedPremises>> p =
        GlobalPreparedPremisesCache().Get(n, premises, PrepareOptionsFrom(options_),
                                          &from_cache);
    if (!p.ok()) return p.status();
    prepared = *std::move(p);
  } else {
    Result<std::shared_ptr<const PreparedPremises>> p =
        PreparedPremises::Build(n, premises, PrepareOptionsFrom(options_));
    if (!p.ok()) return p.status();
    prepared = *std::move(p);
  }
  return RunBatch(std::move(prepared), goals, OptionsBatchDeadline(), std::move(cancel),
                  from_cache);
}

Result<BatchOutcome> ImplicationEngine::CheckBatch(
    std::shared_ptr<const PreparedPremises> prepared,
    const std::vector<DifferentialConstraint>& goals, CancelToken cancel) {
  if (prepared == nullptr) {
    return Status::InvalidArgument("prepared premises must be non-null");
  }
  return RunBatch(std::move(prepared), goals, OptionsBatchDeadline(), std::move(cancel),
                  /*prepared_from_cache=*/true);
}

Result<BatchOutcome> ImplicationEngine::CheckBatch(
    std::shared_ptr<const PreparedPremises> prepared,
    const std::vector<DifferentialConstraint>& goals, Deadline batch_deadline,
    CancelToken cancel) {
  if (prepared == nullptr) {
    return Status::InvalidArgument("prepared premises must be non-null");
  }
  return RunBatch(std::move(prepared), goals, batch_deadline, std::move(cancel),
                  /*prepared_from_cache=*/true);
}

Deadline ImplicationEngine::OptionsBatchDeadline() const {
  return options_.batch_deadline.count() > 0 ? Deadline::After(options_.batch_deadline)
                                             : Deadline::Never();
}

Result<BatchOutcome> ImplicationEngine::RunBatch(
    std::shared_ptr<const PreparedPremises> prepared,
    const std::vector<DifferentialConstraint>& goals, Deadline batch_deadline,
    CancelToken cancel, bool prepared_from_cache) {
  BatchOutcome out;
  out.results.resize(goals.size());
  const std::uint64_t batch_start = NowNs();

  if (!goals.empty()) {
    // Countdown latch: workers fill disjoint slots of the pre-sized result
    // vector, the submitter blocks until the last query lands.
    Mutex done_mu;
    CondVarAny done_cv;
    std::size_t remaining = goals.size();

    for (std::size_t i = 0; i < goals.size(); ++i) {
      pool_.Submit([this, i, &prepared, &goals, &out, &done_mu, &done_cv, &remaining,
                    &batch_deadline, cancel, prepared_from_cache] {
        // A fired token drains still-queued queries without running them;
        // queries already inside a solver observe the same token at their
        // next check-point.
        if (cancel.Cancelled()) {
          out.results[i].status = Status::Cancelled("batch cancelled before query started");
          RecordQueryMetrics(out.results[i]);
        } else {
          out.results[i] = GuardedRunQuery(*prepared, goals[i], batch_deadline, cancel,
                                           prepared_from_cache);
        }
        MutexLock lock(&done_mu);
        if (--remaining == 0) done_cv.NotifyOne();
      });
    }

    MutexLock lock(&done_mu);
    done_cv.Wait(done_mu, [&] { return remaining == 0; });
  }

  BatchStats& s = out.stats;
  s.queries = goals.size();
  for (const EngineQueryResult& r : out.results) {
    if (!r.status.ok()) {
      ++s.failed;
      if (r.status.code() == StatusCode::kCancelled) ++s.cancelled;
    } else if (r.outcome.verdict == ImplicationOutcome::kUnknown) {
      ++s.degraded;
    } else if (r.outcome.implied) {
      ++s.implied;
    } else {
      ++s.not_implied;
    }
    if (r.status.code() == StatusCode::kDeadlineExceeded ||
        r.stats.degraded_from == StatusCode::kDeadlineExceeded) {
      ++s.timed_out;
    }
    s.escalations += static_cast<std::size_t>(r.stats.attempts > 1 ? r.stats.attempts - 1 : 0);
    switch (r.stats.procedure) {
      case DecisionProcedure::kNone:
        break;
      case DecisionProcedure::kTrivial:
        ++s.by_trivial;
        break;
      case DecisionProcedure::kFdSubclass:
        ++s.by_fd;
        break;
      case DecisionProcedure::kIntervalCover:
        ++s.by_interval_cover;
        break;
      case DecisionProcedure::kSat:
        ++s.by_sat;
        break;
      case DecisionProcedure::kExhaustive:
        ++s.by_exhaustive;
        break;
    }
    if (r.stats.witness_cache_used) {
      r.stats.witness_cache_hit ? ++s.witness_cache_hits : ++s.witness_cache_misses;
    }
    if (r.stats.premise_cache_used) {
      r.stats.premise_cache_hit ? ++s.premise_cache_hits : ++s.premise_cache_misses;
    }
    s.solver_decisions += r.stats.solver.decisions;
    s.solver_propagations += r.stats.solver.propagations;
    s.solver_conflicts += r.stats.solver.conflicts;
    s.total_query_ns += r.stats.wall_ns;
  }
  s.batch_wall_ns = NowNs() - batch_start;
  if (obs::MetricsEnabled()) {
    Metrics().batches->Inc();
    Metrics().batch_seconds->Observe(s.batch_wall_ns / 1e9);
  }
  return out;
}

}  // namespace diffc
