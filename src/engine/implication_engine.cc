#include "engine/implication_engine.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace diffc {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

const char* DecisionProcedureName(DecisionProcedure p) {
  switch (p) {
    case DecisionProcedure::kNone:
      return "none";
    case DecisionProcedure::kTrivial:
      return "trivial";
    case DecisionProcedure::kFdSubclass:
      return "fd-subclass";
    case DecisionProcedure::kIntervalCover:
      return "interval-cover";
    case DecisionProcedure::kSat:
      return "sat";
    case DecisionProcedure::kExhaustive:
      return "exhaustive";
  }
  return "unknown";
}

std::string BatchStats::ToString() const {
  std::string s;
  s += "queries=" + std::to_string(queries);
  s += " implied=" + std::to_string(implied);
  s += " not_implied=" + std::to_string(not_implied);
  s += " failed=" + std::to_string(failed);
  s += " | trivial=" + std::to_string(by_trivial);
  s += " fd=" + std::to_string(by_fd);
  s += " cover=" + std::to_string(by_interval_cover);
  s += " sat=" + std::to_string(by_sat);
  s += " exhaustive=" + std::to_string(by_exhaustive);
  s += " | witness_cache=" + std::to_string(witness_cache_hits) + "h/" +
       std::to_string(witness_cache_misses) + "m";
  s += " premise_cache=" + std::to_string(premise_cache_hits) + "h/" +
       std::to_string(premise_cache_misses) + "m";
  s += " | decisions=" + std::to_string(solver_decisions);
  s += " conflicts=" + std::to_string(solver_conflicts);
  s += " batch_ms=" + std::to_string(batch_wall_ns / 1000000.0);
  return s;
}

ImplicationEngine::ImplicationEngine(EngineOptions options)
    : options_(options), pool_(options.num_threads < 1 ? 1 : options.num_threads) {
  options_.num_threads = pool_.size();
}

EngineQueryResult ImplicationEngine::RunQuery(int n, const ConstraintSet& premises,
                                              const DifferentialConstraint& goal) {
  EngineQueryResult r;
  const std::uint64_t start = NowNs();

  // 1. Triviality: L(X, Y) = ∅, every function satisfies the goal.
  if (goal.IsTrivial()) {
    r.outcome.implied = true;
    r.stats.procedure = DecisionProcedure::kTrivial;
    r.stats.wall_ns = NowNs() - start;
    return r;
  }

  // 2. The polynomial FD subclass (singleton right-hand sides).
  if (FdSubclassApplicable(premises, goal)) {
    Result<ImplicationOutcome> fd = CheckImplicationFd(n, premises, goal);
    if (fd.ok()) {
      r.outcome = *fd;
      r.stats.procedure = DecisionProcedure::kFdSubclass;
    } else {
      r.status = fd.status();
    }
    r.stats.wall_ns = NowNs() - start;
    return r;
  }

  // 3. Interval-cover fast path over the cached minimal witness sets of the
  // goal's right-hand family: L(X, Y) = ∪_{W minimal} [X, S∖W]
  // (Definition 2.6). Sound in both directions when conclusive:
  //   - an interval top S∖W outside L(C) is itself a counterexample;
  //   - if every nonempty interval is covered by a single premise's
  //     lattice, then L(X, Y) ⊆ L(C) and the goal is implied (Thm. 3.5).
  // Inconclusive covers (an interval needs several premises) go to SAT.
  if (options_.use_interval_cover_fast_path) {
    r.stats.witness_cache_used = true;
    std::shared_ptr<const WitnessSetCache::Entry> entry = GlobalWitnessSetCache().Get(
        goal.rhs(), options_.witness_max_results, &r.stats.witness_cache_hit);
    if (entry->status.ok()) {
      bool every_interval_covered = true;
      for (const ItemSet& w : entry->witnesses) {
        if (!goal.lhs().Intersect(w).empty()) continue;  // Empty interval.
        const ItemSet top = w.ComplementIn(n);
        // `top` ∈ L(X, Y): X ⊆ top, and no goal member fits inside top
        // because W hits every member. If no premise excludes it, it is a
        // counterexample and the goal is not implied.
        if (!InConstraintLattice(premises, top)) {
          r.outcome.implied = false;
          r.outcome.counterexample = top;
          r.stats.procedure = DecisionProcedure::kIntervalCover;
          r.stats.wall_ns = NowNs() - start;
          return r;
        }
        // Single-premise coverage of the whole interval [X, top]:
        // p.lhs ⊆ X keeps p.lhs inside every U ⊇ X, and no member of
        // p.rhs inside `top` keeps every U ⊆ top clear of p.rhs.
        bool covered = false;
        for (const DifferentialConstraint& p : premises) {
          if (p.lhs().IsSubsetOf(goal.lhs()) && !p.rhs().SomeMemberSubsetOf(top)) {
            covered = true;
            break;
          }
        }
        if (!covered) every_interval_covered = false;
      }
      if (every_interval_covered) {
        r.outcome.implied = true;
        r.stats.procedure = DecisionProcedure::kIntervalCover;
        r.stats.wall_ns = NowNs() - start;
        return r;
      }
    }
    // Witness enumeration exhausted its budget, or the cover was
    // inconclusive: fall through to the complete SAT procedure.
  }

  // 4. SAT (Proposition 5.4), premise clauses from the shared cache.
  r.stats.premise_cache_used = true;
  std::shared_ptr<const PremiseTranslation> translation =
      GlobalPremiseTranslationCache().Get(n, premises, &r.stats.premise_cache_hit);
  Result<ImplicationOutcome> sat = CheckImplicationSatTranslated(
      n, *translation, goal, &r.stats.solver, options_.max_solver_decisions);
  if (sat.ok()) {
    r.outcome = *sat;
    r.stats.procedure = DecisionProcedure::kSat;
    r.stats.wall_ns = NowNs() - start;
    return r;
  }

  // 5. Exhaustive lattice containment as a last resort when the SAT budget
  // ran out and the free-attribute count admits enumeration.
  if (sat.status().code() == StatusCode::kResourceExhausted &&
      n - goal.lhs().size() <= options_.exhaustive_max_free_bits) {
    Result<ImplicationOutcome> ex =
        CheckImplicationExhaustive(n, premises, goal, options_.exhaustive_max_free_bits);
    if (ex.ok()) {
      r.outcome = *ex;
      r.stats.procedure = DecisionProcedure::kExhaustive;
      r.stats.wall_ns = NowNs() - start;
      return r;
    }
  }

  r.status = sat.status();
  r.stats.wall_ns = NowNs() - start;
  return r;
}

EngineQueryResult ImplicationEngine::CheckOne(int n, const ConstraintSet& premises,
                                              const DifferentialConstraint& goal) {
  if (n < 0 || n > 64) {
    EngineQueryResult r;
    r.status = Status::InvalidArgument("universe size must be in [0, 64]");
    return r;
  }
  return RunQuery(n, premises, goal);
}

Result<BatchOutcome> ImplicationEngine::CheckBatch(
    int n, const ConstraintSet& premises, const std::vector<DifferentialConstraint>& goals) {
  if (n < 0 || n > 64) {
    return Status::InvalidArgument("universe size must be in [0, 64]");
  }

  BatchOutcome out;
  out.results.resize(goals.size());
  const std::uint64_t batch_start = NowNs();

  if (!goals.empty()) {
    // Countdown latch: workers fill disjoint slots of the pre-sized result
    // vector, the submitter blocks until the last query lands.
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::size_t remaining = goals.size();

    for (std::size_t i = 0; i < goals.size(); ++i) {
      pool_.Submit([this, i, n, &premises, &goals, &out, &done_mu, &done_cv, &remaining] {
        out.results[i] = RunQuery(n, premises, goals[i]);
        std::lock_guard<std::mutex> lock(done_mu);
        if (--remaining == 0) done_cv.notify_one();
      });
    }

    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }

  BatchStats& s = out.stats;
  s.queries = goals.size();
  for (const EngineQueryResult& r : out.results) {
    if (!r.status.ok()) {
      ++s.failed;
    } else if (r.outcome.implied) {
      ++s.implied;
    } else {
      ++s.not_implied;
    }
    switch (r.stats.procedure) {
      case DecisionProcedure::kNone:
        break;
      case DecisionProcedure::kTrivial:
        ++s.by_trivial;
        break;
      case DecisionProcedure::kFdSubclass:
        ++s.by_fd;
        break;
      case DecisionProcedure::kIntervalCover:
        ++s.by_interval_cover;
        break;
      case DecisionProcedure::kSat:
        ++s.by_sat;
        break;
      case DecisionProcedure::kExhaustive:
        ++s.by_exhaustive;
        break;
    }
    if (r.stats.witness_cache_used) {
      r.stats.witness_cache_hit ? ++s.witness_cache_hits : ++s.witness_cache_misses;
    }
    if (r.stats.premise_cache_used) {
      r.stats.premise_cache_hit ? ++s.premise_cache_hits : ++s.premise_cache_misses;
    }
    s.solver_decisions += r.stats.solver.decisions;
    s.solver_propagations += r.stats.solver.propagations;
    s.solver_conflicts += r.stats.solver.conflicts;
    s.total_query_ns += r.stats.wall_ns;
  }
  s.batch_wall_ns = NowNs() - batch_start;
  return out;
}

}  // namespace diffc
