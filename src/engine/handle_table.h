#ifndef DIFFC_ENGINE_HANDLE_TABLE_H_
#define DIFFC_ENGINE_HANDLE_TABLE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "engine/prepared_premises.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffc {

/// A table of live `PreparedPremises` handles: process-unique ids mapped
/// to shared compiled artifacts, each owned by the session (or tenant)
/// that registered it. This is the registration side of the diffcd
/// service — REGISTER_PREMISES inserts here, CHECK_BATCH looks up here,
/// RELEASE / disconnect remove here — but it is engine-layer on purpose:
/// the sharded coordinator/agent tier (ROADMAP item 2) routes these same
/// ids across processes.
///
/// Quotas are enforced at registration: `max_handles_per_owner` bounds
/// one session's appetite, `max_total_handles` bounds the process
/// (artifacts pin memory for as long as they are registered). Both
/// rejections surface as ResourceExhausted, which the service maps to a
/// typed error frame.
///
/// Thread-safe; lookups copy the `shared_ptr` so a released handle's
/// artifact stays alive until every in-flight batch over it finishes.
class PreparedHandleTable {
 public:
  struct Options {
    std::size_t max_handles_per_owner = 64;
    std::size_t max_total_handles = 4096;
  };

  PreparedHandleTable() : PreparedHandleTable(Options()) {}
  explicit PreparedHandleTable(Options options) : options_(options) {}

  PreparedHandleTable(const PreparedHandleTable&) = delete;
  PreparedHandleTable& operator=(const PreparedHandleTable&) = delete;

  /// Inserts `prepared` (non-null) for `owner` and returns the new handle
  /// id (never 0, never reused). ResourceExhausted when either quota is
  /// full.
  Result<std::uint64_t> Register(std::uint64_t owner,
                                 std::shared_ptr<const PreparedPremises> prepared)
      EXCLUDES(mu_);

  /// The artifact behind `handle`, or NotFound.
  Result<std::shared_ptr<const PreparedPremises>> Lookup(std::uint64_t handle) const
      EXCLUDES(mu_);

  /// Removes `handle`. NotFound for an unknown id; FailedPrecondition when
  /// `owner` did not register it (one session cannot drop another's
  /// handles).
  Status Release(std::uint64_t handle, std::uint64_t owner) EXCLUDES(mu_);

  /// Removes every handle `owner` registered (session teardown). Returns
  /// how many were dropped.
  std::size_t ReleaseAllForOwner(std::uint64_t owner) EXCLUDES(mu_);

  /// Live handles across all owners.
  std::size_t size() const EXCLUDES(mu_);

  /// Live handles registered by `owner`.
  std::size_t CountForOwner(std::uint64_t owner) const EXCLUDES(mu_);

 private:
  struct Entry {
    std::uint64_t owner = 0;
    std::shared_ptr<const PreparedPremises> prepared;
  };

  const Options options_;
  mutable Mutex mu_;
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::unordered_map<std::uint64_t, Entry> entries_ GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::size_t> per_owner_ GUARDED_BY(mu_);
};

}  // namespace diffc

#endif  // DIFFC_ENGINE_HANDLE_TABLE_H_
