#ifndef DIFFC_ENGINE_WORKER_POOL_H_
#define DIFFC_ENGINE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace diffc {

/// A fixed-size pool of `std::jthread` workers draining a shared task
/// queue — the execution substrate of the batched implication engine.
///
/// Tasks are arbitrary `void()` callables. A task that throws does NOT
/// take the process down: the exception is swallowed at the worker loop
/// (counted in `uncaught_exceptions()`) and the worker keeps draining the
/// queue. Callers that need the error itself must catch inside the task —
/// the engine converts throws to a per-query Internal `Status` there; the
/// loop-level catch is the last-resort guard that keeps one poisoned task
/// from terminating every thread (an escaped exception in a `jthread`
/// calls `std::terminate`).
///
/// Submission is thread-safe. Destruction requests stop, wakes all
/// workers, and joins them (jthread); tasks still queued at destruction
/// are discarded, so callers that need completion must track it themselves
/// (the engine uses a countdown latch per batch).
class WorkerPool {
 public:
  /// Creates `num_threads` workers (clamped to at least 1).
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution by some worker.
  void Submit(std::function<void()> task);

  /// Number of exceptions that escaped submitted tasks (and were swallowed
  /// by the worker loop) over the pool's lifetime.
  std::uint64_t uncaught_exceptions() const {
    return uncaught_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop(std::stop_token stop);

  std::mutex mu_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::jthread> workers_;
  std::atomic<std::uint64_t> uncaught_exceptions_{0};
};

}  // namespace diffc

#endif  // DIFFC_ENGINE_WORKER_POOL_H_
