#ifndef DIFFC_ENGINE_WORKER_POOL_H_
#define DIFFC_ENGINE_WORKER_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffc {

/// A fixed-size pool of `std::jthread` workers draining a shared task
/// queue — the execution substrate of the batched implication engine.
///
/// Tasks are arbitrary `void()` callables. A task that throws does NOT
/// take the process down: the exception is swallowed at the worker loop
/// (counted in `uncaught_exceptions()`, recorded as a "worker_exception"
/// event) and the worker keeps draining the queue. Callers that need the
/// error itself must catch inside the task — the engine converts throws to
/// a per-query Internal `Status` there; the loop-level catch is the
/// last-resort guard that keeps one poisoned task from terminating every
/// thread (an escaped exception in a `jthread` calls `std::terminate`).
///
/// Submission is thread-safe, and so is every observer (`stats()`,
/// `queue_depth()`, `in_flight()`): the queue depth is read under the queue
/// mutex and the counters are atomics, so snapshots taken concurrently with
/// `Submit` are race-free. The pool also exports live gauges
/// (`diffc_pool_queue_depth`, `diffc_pool_in_flight`) and task-latency
/// histograms (queue wait, run time) to the metrics registry.
///
/// Destruction requests stop, wakes all workers, and joins them (jthread);
/// tasks still queued at destruction are discarded, so callers that need
/// completion must track it themselves (the engine uses a countdown latch
/// per batch).
class WorkerPool {
 public:
  /// A consistent point-in-time view of the pool.
  struct Stats {
    /// Tasks ever submitted / completed (completed includes throwers).
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    /// Exceptions that escaped tasks and were swallowed by the loop.
    std::uint64_t exceptions = 0;
    /// Tasks queued but not yet picked up.
    std::size_t queue_depth = 0;
    /// Tasks currently executing on a worker.
    int in_flight = 0;
  };

  /// Creates `num_threads` workers (clamped to at least 1).
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution by some worker.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// A snapshot safe against concurrent `Submit` / completion: the queue
  /// depth is read under the queue mutex, counters atomically.
  Stats stats() const EXCLUDES(mu_);

  /// Tasks queued but not yet picked up.
  std::size_t queue_depth() const EXCLUDES(mu_);

  /// Tasks currently executing.
  int in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

  /// Number of exceptions that escaped submitted tasks (and were swallowed
  /// by the worker loop) over the pool's lifetime.
  std::uint64_t uncaught_exceptions() const {
    return uncaught_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void WorkerLoop(std::stop_token stop) EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVarAny cv_;
  std::deque<QueuedTask> queue_ GUARDED_BY(mu_);
  std::vector<std::jthread> workers_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<int> in_flight_{0};
  std::atomic<std::uint64_t> uncaught_exceptions_{0};
};

}  // namespace diffc

#endif  // DIFFC_ENGINE_WORKER_POOL_H_
