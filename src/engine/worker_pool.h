#ifndef DIFFC_ENGINE_WORKER_POOL_H_
#define DIFFC_ENGINE_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace diffc {

/// A fixed-size pool of `std::jthread` workers draining a shared task
/// queue — the execution substrate of the batched implication engine.
///
/// Tasks are arbitrary `void()` callables and must not throw. Submission is
/// thread-safe. Destruction requests stop, wakes all workers, and joins
/// them (jthread); tasks still queued at destruction are discarded, so
/// callers that need completion must track it themselves (the engine uses a
/// countdown latch per batch).
class WorkerPool {
 public:
  /// Creates `num_threads` workers (clamped to at least 1).
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution by some worker.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop(std::stop_token stop);

  std::mutex mu_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::jthread> workers_;
};

}  // namespace diffc

#endif  // DIFFC_ENGINE_WORKER_POOL_H_
