#include "engine/worker_pool.h"

#include <utility>

namespace diffc {

WorkerPool::WorkerPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { WorkerLoop(stop); });
  }
}

WorkerPool::~WorkerPool() {
  for (std::jthread& w : workers_) w.request_stop();
  cv_.notify_all();
  // jthread joins on destruction.
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void WorkerPool::WorkerLoop(std::stop_token stop) {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // Stop requested and nothing to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      // Never let an exception escape the jthread (std::terminate). The
      // task's owner observes the failure through its own result channel;
      // this counter is for tests and post-mortems.
      uncaught_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace diffc
