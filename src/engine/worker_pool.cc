#include "engine/worker_pool.h"

#include <chrono>
#include <utility>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace diffc {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

// Pool-wide (process-wide) registry handles; all pools aggregate into them.
struct PoolMetrics {
  obs::Counter* submitted;
  obs::Counter* completed;
  obs::Counter* exceptions;
  obs::Gauge* queue_depth;
  obs::Gauge* in_flight;
  obs::Histogram* queue_wait;
  obs::Histogram* run_time;

  PoolMetrics() {
    obs::Registry& r = obs::Registry::Global();
    submitted = r.GetCounter("diffc_pool_tasks_submitted_total",
                             "Tasks submitted to worker pools.");
    completed = r.GetCounter("diffc_pool_tasks_completed_total",
                             "Tasks completed by worker pools (including throwers).");
    exceptions = r.GetCounter("diffc_pool_task_exceptions_total",
                              "Exceptions that escaped tasks and were contained.");
    queue_depth =
        r.GetGauge("diffc_pool_queue_depth", "Tasks queued but not yet picked up.");
    in_flight = r.GetGauge("diffc_pool_in_flight", "Tasks currently executing.");
    queue_wait = r.GetHistogram("diffc_pool_queue_wait_seconds",
                                "Time from Submit to a worker picking the task up.",
                                obs::ExponentialBuckets(1e-6, 4.0, 12));
    run_time = r.GetHistogram("diffc_pool_task_run_seconds",
                              "Task execution time on the worker.",
                              obs::ExponentialBuckets(1e-6, 4.0, 12));
  }
};

PoolMetrics& Metrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

}  // namespace

WorkerPool::WorkerPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { WorkerLoop(stop); });
  }
}

WorkerPool::~WorkerPool() {
  for (std::jthread& w : workers_) w.request_stop();
  cv_.NotifyAll();
  // jthread joins on destruction.
}

void WorkerPool::Submit(std::function<void()> task) {
  const bool obs_on = obs::MetricsEnabled();
  // Count the submission BEFORE publishing the task: a worker may pop and
  // finish it the moment the lock drops, and `completed <= submitted` must
  // hold for every snapshot (release pairs with the acquire in stats()).
  submitted_.fetch_add(1, std::memory_order_release);
  std::size_t depth;
  {
    MutexLock lock(&mu_);
    queue_.push_back(QueuedTask{std::move(task), obs_on ? SteadyNowNs() : 0});
    depth = queue_.size();
  }
  if (obs_on) {
    Metrics().submitted->Inc();
    // Set (not Add): idempotent against the enable flag toggling mid-run.
    Metrics().queue_depth->Set(static_cast<std::int64_t>(depth));
  }
  cv_.NotifyOne();
}

WorkerPool::Stats WorkerPool::stats() const {
  Stats s;
  {
    MutexLock lock(&mu_);
    s.queue_depth = queue_.size();
  }
  // Load `completed` before `submitted`: the acquire synchronizes with the
  // completing worker's release, which itself saw the submission increment,
  // so `completed <= submitted` holds in every snapshot.
  s.completed = completed_.load(std::memory_order_acquire);
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.exceptions = uncaught_exceptions_.load(std::memory_order_relaxed);
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  return s;
}

std::size_t WorkerPool::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void WorkerPool::WorkerLoop(std::stop_token stop) {
  while (true) {
    QueuedTask task;
    std::size_t depth;
    {
      MutexLock lock(&mu_);
      // `Wait` re-evaluates the predicate with `mu_` held; the analysis
      // cannot see that through the type-erased wait, hence AssertHeld.
      cv_.Wait(mu_, stop, [this] {
        mu_.AssertHeld();
        return !queue_.empty();
      });
      if (queue_.empty()) return;  // Stop requested and nothing to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    const bool obs_on = obs::MetricsEnabled();
    std::uint64_t start_ns = 0;
    if (obs_on) {
      start_ns = SteadyNowNs();
      if (task.enqueue_ns != 0) {
        Metrics().queue_wait->Observe((start_ns - task.enqueue_ns) / 1e9);
      }
      Metrics().queue_depth->Set(static_cast<std::int64_t>(depth));
      Metrics().in_flight->Set(in_flight_.load(std::memory_order_relaxed) + 1);
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    try {
      task.fn();
    } catch (...) {
      // Never let an exception escape the jthread (std::terminate). The
      // task's owner observes the failure through its own result channel;
      // this counter is for tests and post-mortems.
      uncaught_exceptions_.fetch_add(1, std::memory_order_relaxed);
      if (obs_on) {
        Metrics().exceptions->Inc();
        obs::GlobalEventLog().Record("worker_exception", {});
      }
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_release);
    if (obs_on) {
      Metrics().run_time->Observe((SteadyNowNs() - start_ns) / 1e9);
      Metrics().completed->Inc();
      Metrics().in_flight->Set(in_flight_.load(std::memory_order_relaxed));
    }
  }
}

}  // namespace diffc
