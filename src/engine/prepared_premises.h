#ifndef DIFFC_ENGINE_PREPARED_PREMISES_H_
#define DIFFC_ENGINE_PREPARED_PREMISES_H_

#include <cstdint>
#include <memory>

#include "core/constraint.h"
#include "core/implication.h"
#include "util/status.h"

namespace diffc {

/// Per-artifact build counters of a `PreparedPremises` compilation.
struct PrepareStats {
  /// Constraints in the input set / surviving canonicalization.
  std::size_t input_constraints = 0;
  std::size_t canonical_constraints = 0;
  /// Trivial premises dropped (`L(X, Y) = ∅` constrains nothing).
  std::size_t dropped_trivial = 0;
  /// Duplicates removed after sorting the canonical forms.
  std::size_t dropped_duplicates = 0;
  /// Right-hand members removed by witness-family minimization.
  std::size_t minimized_members = 0;
  /// Size of the Proposition 5.4 premise translation.
  int translation_vars = 0;
  std::size_t translation_clauses = 0;
  /// True iff the canonical set is in the polynomial FD subclass.
  bool fd_eligible = false;
  /// Wall time per compilation stage and end-to-end, nanoseconds.
  std::uint64_t canonicalize_ns = 0;
  std::uint64_t translate_ns = 0;
  std::uint64_t fd_index_ns = 0;
  std::uint64_t total_ns = 0;
};

/// An immutable compilation of a `ConstraintSet`, built once per premise
/// set and shared (`shared_ptr`) across queries, batches, and engine
/// instances — the prepare side of the engine's prepare/plan/execute
/// pipeline. Holds:
///
///   - the canonical constraints: trivial premises dropped, right-hand
///     families minimized (`SetFamily::Minimized`, which preserves the
///     witness structure `SomeMemberSubsetOf` and hence `L(C)` exactly),
///     then sorted and deduplicated;
///   - the Proposition 5.4 premise CNF translation over the canonical set;
///   - the FD-subclass closure index (`FdPremiseIndex`), when eligible;
///   - the per-stage build stats.
///
/// Canonicalization never changes the closure lattice `L(C)`, so verdicts
/// and counterexamples computed against the artifact are valid against the
/// original set. Thread-safe by immutability: every accessor is a const
/// read of state fixed at `Build` time.
class PreparedPremises {
 public:
  /// Compiles `premises` over an `n`-attribute universe. Returns
  /// InvalidArgument for `n` outside [0, 64]; never fails otherwise.
  static Result<std::shared_ptr<const PreparedPremises>> Build(int n,
                                                               const ConstraintSet& premises);

  /// The universe size the artifact was compiled for.
  int n() const { return n_; }

  /// A process-unique identity, assigned at build time — the cache /
  /// trace key for "same compilation", cheaper and stricter than
  /// re-comparing constraint sets.
  std::uint64_t id() const { return id_; }

  /// The canonical constraint set (see class comment for the invariants).
  const ConstraintSet& constraints() const { return constraints_; }

  /// The Proposition 5.4 premise clauses over the canonical set.
  const PremiseTranslation& translation() const { return translation_; }

  /// The FD view of the canonical set (`eligible` false when some premise
  /// has a non-singleton right-hand family).
  const FdPremiseIndex& fd_index() const { return fd_index_; }

  /// The build counters.
  const PrepareStats& stats() const { return stats_; }

 private:
  PreparedPremises() = default;

  int n_ = 0;
  std::uint64_t id_ = 0;
  ConstraintSet constraints_;
  PremiseTranslation translation_;
  FdPremiseIndex fd_index_;
  PrepareStats stats_;
};

}  // namespace diffc

#endif  // DIFFC_ENGINE_PREPARED_PREMISES_H_
