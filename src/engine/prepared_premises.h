#ifndef DIFFC_ENGINE_PREPARED_PREMISES_H_
#define DIFFC_ENGINE_PREPARED_PREMISES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/constraint.h"
#include "core/implication.h"
#include "util/status.h"

namespace diffc {

/// How `PreparedPremises::Build` canonicalizes the premise set.
struct PrepareOptions {
  /// Canonicalize through the rule-driven rewrite simplifier
  /// (`src/rewrite/`, DESIGN.md §14). When false the PR 5 inline path
  /// (drop trivial, minimize right-hand families, sort + dedupe) runs
  /// instead — kept as a differential reference, mirroring the
  /// planner/ladder split.
  bool use_rewriter = true;
  /// `rewrite::SimplifyOptions::level` when the rewriter runs: 1 =
  /// structural rules only, 2 = full rule set. Clamped to >= 1.
  int simplify_level = 2;

  friend bool operator==(const PrepareOptions& a, const PrepareOptions& b) {
    return a.use_rewriter == b.use_rewriter && a.simplify_level == b.simplify_level;
  }
  friend bool operator!=(const PrepareOptions& a, const PrepareOptions& b) {
    return !(a == b);
  }
};

/// Per-artifact build counters of a `PreparedPremises` compilation.
struct PrepareStats {
  /// Constraints in the input set / surviving canonicalization.
  std::size_t input_constraints = 0;
  std::size_t canonical_constraints = 0;
  /// Trivial premises dropped (`L(X, Y) = ∅` constrains nothing). On the
  /// rewriter path this is the `drop-trivial` edit count.
  std::size_t dropped_trivial = 0;
  /// Inline path: duplicates removed after sorting the canonical forms.
  /// Rewriter path: constraints dropped by `absorb-subsumed`, which
  /// subsumes exact duplicates (DESIGN.md §14).
  std::size_t dropped_duplicates = 0;
  /// Right-hand members removed by witness-family minimization
  /// (`minimize-rhs` on the rewriter path).
  std::size_t minimized_members = 0;
  /// Constraints removed by `merge-same-lhs` (rewriter path only).
  std::size_t merged_constraints = 0;
  /// Member items removed by `narrow-members` (rewriter path only).
  std::size_t narrowed_items = 0;
  /// True when the rule-driven simplifier canonicalized the set.
  bool used_rewriter = false;
  /// The level the rewriter ran at; 0 on the legacy inline path.
  int simplify_level = 0;
  /// Rewriter fixpoint passes / total rule edits (zero on the inline path).
  std::size_t rewrite_passes = 0;
  std::size_t rewrite_applied = 0;
  /// The simplifier cost triple — (constraints, witness-family members,
  /// total member sizes) — before and after canonicalization. Populated on
  /// both paths, so artifact-shrink is comparable across them.
  std::size_t cost_constraints_before = 0;
  std::size_t cost_members_before = 0;
  std::size_t cost_items_before = 0;
  std::size_t cost_constraints_after = 0;
  std::size_t cost_members_after = 0;
  std::size_t cost_items_after = 0;
  /// (rule name, edit count) per rule the rewriter ran, in application
  /// order; empty on the inline path.
  std::vector<std::pair<std::string, std::size_t>> rewrite_rule_applied;
  /// Size of the Proposition 5.4 premise translation.
  int translation_vars = 0;
  std::size_t translation_clauses = 0;
  /// True iff the canonical set is in the polynomial FD subclass.
  bool fd_eligible = false;
  /// Wall time per compilation stage and end-to-end, nanoseconds.
  std::uint64_t canonicalize_ns = 0;
  std::uint64_t translate_ns = 0;
  std::uint64_t fd_index_ns = 0;
  std::uint64_t total_ns = 0;
};

/// An immutable compilation of a `ConstraintSet`, built once per premise
/// set and shared (`shared_ptr`) across queries, batches, and engine
/// instances — the prepare side of the engine's prepare/plan/execute
/// pipeline. Holds:
///
///   - the canonical constraints: trivial premises dropped, right-hand
///     families minimized (`SetFamily::Minimized`, which preserves the
///     witness structure `SomeMemberSubsetOf` and hence `L(C)` exactly),
///     then sorted and deduplicated;
///   - the Proposition 5.4 premise CNF translation over the canonical set;
///   - the FD-subclass closure index (`FdPremiseIndex`), when eligible;
///   - the per-stage build stats.
///
/// Canonicalization never changes the closure lattice `L(C)`, so verdicts
/// and counterexamples computed against the artifact are valid against the
/// original set. Thread-safe by immutability: every accessor is a const
/// read of state fixed at `Build` time.
class PreparedPremises {
 public:
  /// Compiles `premises` over an `n`-attribute universe with default
  /// options (rewrite simplifier at level 2). Returns InvalidArgument for
  /// `n` outside [0, 64]; never fails otherwise.
  static Result<std::shared_ptr<const PreparedPremises>> Build(int n,
                                                               const ConstraintSet& premises);

  /// As above, with explicit canonicalization options.
  static Result<std::shared_ptr<const PreparedPremises>> Build(int n,
                                                               const ConstraintSet& premises,
                                                               const PrepareOptions& options);

  /// The universe size the artifact was compiled for.
  int n() const { return n_; }

  /// A process-unique identity, assigned at build time — the cache /
  /// trace key for "same compilation", cheaper and stricter than
  /// re-comparing constraint sets.
  std::uint64_t id() const { return id_; }

  /// The canonical constraint set (see class comment for the invariants).
  const ConstraintSet& constraints() const { return constraints_; }

  /// The Proposition 5.4 premise clauses over the canonical set.
  const PremiseTranslation& translation() const { return translation_; }

  /// The FD view of the canonical set (`eligible` false when some premise
  /// has a non-singleton right-hand family).
  const FdPremiseIndex& fd_index() const { return fd_index_; }

  /// The build counters.
  const PrepareStats& stats() const { return stats_; }

  /// The canonicalization options the artifact was built with.
  const PrepareOptions& options() const { return options_; }

 private:
  PreparedPremises() = default;

  int n_ = 0;
  PrepareOptions options_;
  std::uint64_t id_ = 0;
  ConstraintSet constraints_;
  PremiseTranslation translation_;
  FdPremiseIndex fd_index_;
  PrepareStats stats_;
};

}  // namespace diffc

#endif  // DIFFC_ENGINE_PREPARED_PREMISES_H_
