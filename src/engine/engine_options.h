#ifndef DIFFC_ENGINE_ENGINE_OPTIONS_H_
#define DIFFC_ENGINE_ENGINE_OPTIONS_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "prop/dpll.h"
#include "util/deadline.h"
#include "util/status.h"

namespace diffc {

/// The option, enum, and per-query stat types shared by the engine front
/// door (`engine/implication_engine.h`), the decision-procedure units
/// (`engine/procedures/`), and the planner (`engine/planner.h`). Split out
/// of the engine header so procedure implementations depend on these types
/// without pulling in (or cyclically re-entering) the engine itself.

/// What the engine does when a query exhausts a deadline or a solver
/// budget (DeadlineExceeded / ResourceExhausted). Cancellation is never
/// subject to this policy: a fired cancel token always surfaces as a
/// Cancelled status.
enum class ExhaustionPolicy {
  /// Surface the failure as the per-query `Status` (the default; matches
  /// the engine's historical behavior).
  kFail = 0,
  /// Return OK with `ImplicationOutcome::kUnknown`. The query stats keep
  /// the partial evidence: `stopped_in` names the procedure that ran out
  /// and `degraded_from` the status code it ran out with; solver / cache
  /// counters describe the work done before giving up.
  kDegrade,
  /// Retry with doubled solver budgets (decision budget and witness
  /// candidate budget) and a fresh per-query deadline, after a jittered
  /// exponential backoff, up to `EngineOptions::max_retries` times; then
  /// degrade as above.
  kEscalate,
};

/// Stable name of an `ExhaustionPolicy` ("fail", "degrade", "escalate").
const char* ExhaustionPolicyName(ExhaustionPolicy p);

/// Tuning knobs of the batched implication engine.
struct EngineOptions {
  /// Worker threads for `CheckBatch` (clamped to at least 1).
  int num_threads = 4;
  /// Dispatch through the `QueryPlanner` over the registered decision
  /// procedures (the default). When false, queries run the legacy inline
  /// ladder (trivial → FD-subclass → interval-cover → SAT → exhaustive) on
  /// the raw premise set — kept as the reference implementation for the
  /// planner/ladder differential suite.
  bool use_planner = true;
  /// Serve `Prepare()` (and the unprepared `CheckBatch` / `CheckOne`
  /// entry points, which prepare on the caller's behalf) from the
  /// process-wide `PreparedPremisesCache`. When false every call compiles
  /// the premises from scratch — the per-query baseline that
  /// `bench_engine_prepared` measures `Prepare()` against.
  bool use_prepared_cache = true;
  /// Canonicalization level of premise compilation (`PrepareOptions`,
  /// DESIGN.md §14): 0 runs the legacy PR 5 inline path
  /// (`use_rewriter=false`) as a differential reference; 1 runs the
  /// structural rewrite rules (drop-trivial, minimize-rhs,
  /// absorb-subsumed); 2 (the default) adds narrow-members and
  /// merge-same-lhs. Every level preserves L(C) — and so every verdict —
  /// exactly.
  int simplify_level = 2;
  /// Enables the interval-cover fast path: answer a query from the cached
  /// minimal witness sets of its right-hand family when the cover is
  /// conclusive, skipping the SAT solver entirely. Sound in both verdicts;
  /// falls through to SAT when inconclusive.
  bool use_interval_cover_fast_path = true;
  /// Candidate budget for witness-set enumeration on the fast path.
  /// Families whose transversal search exceeds it are cached negatively
  /// and handled by SAT.
  std::size_t witness_max_results = 4096;
  /// DPLL decision budget per query (ResourceExhausted beyond it).
  std::uint64_t max_solver_decisions = 50'000'000;
  /// Free-attribute bound for the exhaustive fallback used when the SAT
  /// budget is exhausted.
  int exhaustive_max_free_bits = 24;
  /// Wall-clock budget per query attempt; zero = unbounded. Checked
  /// cooperatively (amortized every `stop_check_stride` steps) inside every
  /// decision procedure, so a fired deadline surfaces at the next
  /// check-point, not instantly.
  std::chrono::nanoseconds per_query_deadline{0};
  /// Wall-clock budget for a whole `CheckBatch` call; zero = unbounded.
  /// Each query runs under the earlier of this and its own deadline.
  std::chrono::nanoseconds batch_deadline{0};
  /// What to do when a query exhausts a deadline or solver budget.
  ExhaustionPolicy exhaustion_policy = ExhaustionPolicy::kFail;
  /// Retries under `ExhaustionPolicy::kEscalate` (attempts beyond the
  /// first); exhausted retries degrade.
  int max_retries = 2;
  /// Base backoff between escalation attempts (doubled per retry, jittered
  /// by 0.5–1.5x, capped by the remaining batch deadline); zero disables
  /// sleeping.
  std::chrono::nanoseconds escalate_backoff{100'000};
  /// Steps between cooperative deadline / cancellation checks inside the
  /// solvers and enumerations.
  std::uint32_t stop_check_stride = StopCheck::kDefaultStride;
  /// Records a per-query span tree (`EngineQueryResult::trace`): one span
  /// per attempt with children for each decision-procedure phase (cache
  /// probe, interval cover, SAT, exhaustive, escalation backoff). Latency
  /// *histograms* are aggregated regardless of this flag; the flag only
  /// controls the per-query record.
  bool trace = false;
};

/// Which decision procedure answered a query.
enum class DecisionProcedure {
  kNone = 0,        // Query failed before any procedure concluded.
  kTrivial,         // Goal trivial (Definition 3.1): implied outright.
  kFdSubclass,      // Polynomial closure check (singleton-RHS subclass).
  kIntervalCover,   // Witness-set interval cover was conclusive.
  kSat,             // Proposition 5.4 CNF refuted / satisfied by DPLL.
  kExhaustive,      // Exhaustive lattice containment (SAT-budget fallback).
};

/// Stable name of a `DecisionProcedure` ("fd-subclass", "sat", ...).
const char* DecisionProcedureName(DecisionProcedure p);

/// Per-query execution counters.
struct QueryStats {
  DecisionProcedure procedure = DecisionProcedure::kNone;
  /// The procedure that was running when a deadline / cancellation / budget
  /// stop fired (kNone when the query concluded normally). Under
  /// `ExhaustionPolicy::kDegrade` this is the partial evidence attached to
  /// a kUnknown verdict.
  DecisionProcedure stopped_in = DecisionProcedure::kNone;
  /// The plan the `QueryPlanner` chose for the final attempt: the
  /// applicable procedures in execution order. Empty on the legacy ladder
  /// path (`EngineOptions::use_planner` false).
  std::vector<DecisionProcedure> plan;
  /// Attempts run (1 + escalation retries).
  int attempts = 1;
  /// Under `ExhaustionPolicy::kDegrade`: the status code (DeadlineExceeded
  /// or ResourceExhausted) the final attempt failed with before the engine
  /// converted it to OK + kUnknown; kOk otherwise.
  StatusCode degraded_from = StatusCode::kOk;
  /// Witness-set cache hit/lookup flags (fast-path queries only).
  bool witness_cache_used = false;
  bool witness_cache_hit = false;
  /// Premise-compilation cache hit/lookup flags (SAT queries only): whether
  /// the prepared artifact whose translation the SAT procedure used came
  /// out of the process-wide prepared-premises cache.
  bool premise_cache_used = false;
  bool premise_cache_hit = false;
  /// DPLL counters (zero off the SAT path; last attempt only).
  prop::SolverStats solver;
  /// Wall time of this query across all attempts, nanoseconds.
  std::uint64_t wall_ns = 0;
};

}  // namespace diffc

#endif  // DIFFC_ENGINE_ENGINE_OPTIONS_H_
