#include "engine/handle_table.h"

#include <string>
#include <utility>

namespace diffc {

Result<std::uint64_t> PreparedHandleTable::Register(
    std::uint64_t owner, std::shared_ptr<const PreparedPremises> prepared) {
  if (prepared == nullptr) {
    return Status::InvalidArgument("cannot register a null prepared artifact");
  }
  MutexLock lock(&mu_);
  if (entries_.size() >= options_.max_total_handles) {
    return Status::ResourceExhausted("handle table full (" +
                                     std::to_string(options_.max_total_handles) +
                                     " live handles)");
  }
  std::size_t& owned = per_owner_[owner];
  if (owned >= options_.max_handles_per_owner) {
    return Status::ResourceExhausted("handle quota exhausted: owner already holds " +
                                     std::to_string(owned) + " of " +
                                     std::to_string(options_.max_handles_per_owner) +
                                     " handles");
  }
  const std::uint64_t id = next_id_++;
  entries_.emplace(id, Entry{owner, std::move(prepared)});
  ++owned;
  return id;
}

Result<std::shared_ptr<const PreparedPremises>> PreparedHandleTable::Lookup(
    std::uint64_t handle) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    return Status::NotFound("no such premise handle: " + std::to_string(handle));
  }
  return it->second.prepared;
}

Status PreparedHandleTable::Release(std::uint64_t handle, std::uint64_t owner) {
  MutexLock lock(&mu_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    return Status::NotFound("no such premise handle: " + std::to_string(handle));
  }
  if (it->second.owner != owner) {
    return Status::FailedPrecondition("premise handle " + std::to_string(handle) +
                                      " belongs to another session");
  }
  auto owned = per_owner_.find(owner);
  if (owned != per_owner_.end() && --owned->second == 0) per_owner_.erase(owned);
  entries_.erase(it);
  return Status::Ok();
}

std::size_t PreparedHandleTable::ReleaseAllForOwner(std::uint64_t owner) {
  MutexLock lock(&mu_);
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner == owner) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  per_owner_.erase(owner);
  return dropped;
}

std::size_t PreparedHandleTable::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

std::size_t PreparedHandleTable::CountForOwner(std::uint64_t owner) const {
  MutexLock lock(&mu_);
  auto it = per_owner_.find(owner);
  return it == per_owner_.end() ? 0 : it->second;
}

}  // namespace diffc
