#ifndef DIFFC_ENGINE_PLANNER_H_
#define DIFFC_ENGINE_PLANNER_H_

#include <string>
#include <vector>

#include "engine/procedures/procedure.h"

namespace diffc {

/// The ordered execution plan of one query: every applicable procedure,
/// primaries (by ascending cost estimate) before fallbacks (likewise).
struct QueryPlan {
  struct Step {
    const DecisionProcedureImpl* procedure = nullptr;
    Applicability applicability = Applicability::kNo;
    double estimated_cost = 0.0;
  };
  std::vector<Step> steps;

  /// "trivial+interval-cover+sat+exhaustive" — the span / event-log label.
  std::string ToString() const;
};

/// Orders the registered decision procedures for one query: filters by
/// `CanDecide` and the `EngineOptions` toggles (a disabled interval-cover
/// fast path drops that procedure from every plan), then sorts primaries
/// by `EstimateCost` ahead of fallbacks (a fallback only ever runs after a
/// primary exhausted a budget, so cost cannot promote it). Deterministic:
/// equal-cost steps keep a stable name order.
class QueryPlanner {
 public:
  /// Plans over `procedures` (typically `ProcedureRegistry::Global().
  /// Snapshot()`, taken once per engine).
  explicit QueryPlanner(std::vector<const DecisionProcedureImpl*> procedures);

  QueryPlan Plan(const PreparedPremises& premises, const ProcedureQuery& query,
                 const EngineOptions& options) const;

 private:
  std::vector<const DecisionProcedureImpl*> procedures_;
};

/// The terminal answer of an executed plan.
struct PlanOutcome {
  Status status;
  ImplicationOutcome outcome;
};

/// Runs `plan` step by step (the execute stage):
///
///   - zero-cost steps run before the first deadline sample; the sample
///     (one `StopCheck::CheckNow`) precedes the first costed step, failing
///     fast on a deadline that expired before the query started;
///   - a conclusive step (verdict kImplied / kNotImplied) is terminal and
///     names `QueryStats::procedure`;
///   - an inconclusive step (OK + kUnknown) passes to the next step;
///   - a primary step's ResourceExhausted is recorded as the pending
///     failure and arms the `Applicability::kFallback` steps (which are
///     skipped otherwise); a fallback's own failure never replaces the
///     pending primary status;
///   - DeadlineExceeded / Cancelled and any other primary error are
///     terminal (`QueryStats::stopped_in` names the stopping step for
///     stop / exhaustion statuses).
///
/// Records the plan in `ctx->stats->plan` and one span per executed step
/// in `ctx->tracer`.
PlanOutcome ExecutePlan(const QueryPlan& plan, const PreparedPremises& premises,
                        const ProcedureQuery& query, ProcedureContext* ctx);

}  // namespace diffc

#endif  // DIFFC_ENGINE_PLANNER_H_
