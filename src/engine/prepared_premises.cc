#include "engine/prepared_premises.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "rewrite/simplifier.h"

namespace diffc {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

// Registry handles of the prepare stage (`diffc_engine_prepare_*`), looked
// up once.
struct PrepareMetrics {
  obs::Counter* builds;
  obs::Counter* dropped_premises;
  obs::Histogram* build_seconds;

  PrepareMetrics() {
    obs::Registry& r = obs::Registry::Global();
    builds = r.GetCounter("diffc_engine_prepare_total",
                          "PreparedPremises compilations (cache misses and direct builds).");
    dropped_premises =
        r.GetCounter("diffc_engine_prepare_dropped_premises_total",
                     "Premises removed by canonicalization (trivial, subsumed, or merged).");
    build_seconds = r.GetHistogram("diffc_engine_prepare_seconds",
                                   "End-to-end PreparedPremises build wall time.",
                                   obs::ExponentialBuckets(1e-7, 4.0, 12));
  }
};

PrepareMetrics& Metrics() {
  static PrepareMetrics* m = new PrepareMetrics();
  return *m;
}

}  // namespace

Result<std::shared_ptr<const PreparedPremises>> PreparedPremises::Build(
    int n, const ConstraintSet& premises) {
  return Build(n, premises, PrepareOptions());
}

Result<std::shared_ptr<const PreparedPremises>> PreparedPremises::Build(
    int n, const ConstraintSet& premises, const PrepareOptions& options) {
  if (n < 0 || n > 64) {
    return Status::InvalidArgument("universe size must be in [0, 64]");
  }
  static std::atomic<std::uint64_t> next_id{1};

  auto prepared = std::shared_ptr<PreparedPremises>(new PreparedPremises());
  prepared->n_ = n;
  prepared->options_ = options;
  prepared->id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  PrepareStats& stats = prepared->stats_;
  stats.input_constraints = premises.size();
  const std::uint64_t start = NowNs();

  ConstraintSet canonical;
  if (options.use_rewriter) {
    // Canonicalize through the rule-driven rewrite simplifier (DESIGN.md
    // §14): every rule preserves L(C) exactly, so verdicts against the
    // artifact are valid against the original set.
    rewrite::SimplifyOptions sopts;
    sopts.level = options.simplify_level < 1 ? 1 : options.simplify_level;
    rewrite::SimplifyStats sstats;
    canonical = rewrite::Simplify(n, premises, sopts, &sstats);
    stats.used_rewriter = true;
    stats.simplify_level = sopts.level;
    stats.rewrite_passes = sstats.passes;
    stats.rewrite_applied = sstats.applied_total;
    stats.cost_constraints_before = sstats.before.constraints;
    stats.cost_members_before = sstats.before.members;
    stats.cost_items_before = sstats.before.member_items;
    stats.cost_constraints_after = sstats.after.constraints;
    stats.cost_members_after = sstats.after.members;
    stats.cost_items_after = sstats.after.member_items;
    stats.rewrite_rule_applied = std::move(sstats.applied_by_rule);
    for (const auto& [rule, edits] : stats.rewrite_rule_applied) {
      if (rule == "drop-trivial") stats.dropped_trivial = edits;
      if (rule == "minimize-rhs") stats.minimized_members = edits;
      if (rule == "absorb-subsumed") stats.dropped_duplicates = edits;
      if (rule == "merge-same-lhs") stats.merged_constraints = edits;
      if (rule == "narrow-members") stats.narrowed_items = edits;
    }
  } else {
    // Legacy inline path (PR 5), kept as a differential reference: drop
    // trivial premises (they exclude no set from L(C)), minimize each
    // right-hand family (SomeMemberSubsetOf — and so L(X, Y) — is
    // invariant under dropping non-minimal members), then sort and dedupe.
    const rewrite::RewriteCost before = rewrite::RewriteCost::Of(premises);
    stats.cost_constraints_before = before.constraints;
    stats.cost_members_before = before.members;
    stats.cost_items_before = before.member_items;
    canonical.reserve(premises.size());
    for (const DifferentialConstraint& p : premises) {
      if (p.IsTrivial()) {
        ++stats.dropped_trivial;
        continue;
      }
      SetFamily minimized = p.rhs().Minimized();
      stats.minimized_members +=
          static_cast<std::size_t>(p.rhs().size() - minimized.size());
      canonical.push_back(DifferentialConstraint(p.lhs(), std::move(minimized)));
    }
    std::sort(canonical.begin(), canonical.end());
    auto last = std::unique(canonical.begin(), canonical.end());
    stats.dropped_duplicates = static_cast<std::size_t>(canonical.end() - last);
    canonical.erase(last, canonical.end());
    const rewrite::RewriteCost after = rewrite::RewriteCost::Of(canonical);
    stats.cost_constraints_after = after.constraints;
    stats.cost_members_after = after.members;
    stats.cost_items_after = after.member_items;
  }
  stats.canonical_constraints = canonical.size();
  prepared->constraints_ = std::move(canonical);
  stats.canonicalize_ns = NowNs() - start;

  const std::uint64_t translate_start = NowNs();
  prepared->translation_ = TranslatePremises(n, prepared->constraints_);
  stats.translation_vars = prepared->translation_.num_vars;
  stats.translation_clauses = prepared->translation_.clauses.size();
  stats.translate_ns = NowNs() - translate_start;

  const std::uint64_t fd_start = NowNs();
  prepared->fd_index_ = BuildFdPremiseIndex(prepared->constraints_);
  stats.fd_eligible = prepared->fd_index_.eligible;
  stats.fd_index_ns = NowNs() - fd_start;

  stats.total_ns = NowNs() - start;
  if (obs::MetricsEnabled()) {
    PrepareMetrics& m = Metrics();
    m.builds->Inc();
    const std::uint64_t dropped =
        stats.dropped_trivial + stats.dropped_duplicates + stats.merged_constraints;
    if (dropped > 0) m.dropped_premises->Inc(dropped);
    m.build_seconds->Observe(stats.total_ns / 1e9);
  }
  return std::shared_ptr<const PreparedPremises>(std::move(prepared));
}

}  // namespace diffc
