#include "engine/caches.h"

#include <utility>

#include "util/failpoint.h"

namespace diffc {

namespace {

// A cached status must describe the *key*, not the query that computed it:
// deadline / cancellation outcomes are per-query and would poison every
// later lookup of the same family if cached.
bool CacheableStatus(const Status& s) {
  return s.code() != StatusCode::kDeadlineExceeded && s.code() != StatusCode::kCancelled;
}

}  // namespace

std::shared_ptr<const WitnessSetCache::Entry> WitnessSetCache::Get(const SetFamily& family,
                                                                   std::size_t max_results,
                                                                   bool* hit, StopCheck* stop) {
  Key key{family, max_results};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++counters_.hits;
      if (hit != nullptr) *hit = true;
      return it->second;
    }
    ++counters_.misses;
  }
  if (hit != nullptr) *hit = false;

  // Compute outside the lock: the transversal search can be expensive and
  // must not serialize unrelated queries.
  auto entry = std::make_shared<Entry>();
  Result<std::vector<ItemSet>> r =
      MinimalWitnessSets(family, max_results, &entry->search, stop);
  entry->status = r.status();
  if (r.ok()) entry->witnesses = *std::move(r);

  if (!CacheableStatus(entry->status)) return entry;
  if (DIFFC_FAILPOINT("cache/witness-insert")) return entry;  // Served uncached.

  std::lock_guard<std::mutex> lock(mu_);
  // Find-then-insert: a concurrent miss may have populated the key while we
  // searched; reusing its entry keeps `order_` free of duplicate keys.
  auto it = map_.find(key);
  if (it != map_.end()) return it->second;
  map_.emplace(key, entry);
  order_.push_back(std::move(key));
  while (map_.size() > capacity_ && !order_.empty()) {
    // Count only actual erases, so the eviction counter stays truthful even
    // if `order_` ever drifts from the map's key set.
    if (map_.erase(order_.front()) > 0) ++counters_.evictions;
    order_.pop_front();
  }
  return entry;
}

void WitnessSetCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  order_.clear();
}

CacheCounters WitnessSetCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t WitnessSetCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::size_t PremiseTranslationCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(k.n);
  for (const DifferentialConstraint& c : k.premises) {
    h ^= c.lhs().bits() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= static_cast<std::uint64_t>(c.rhs().Hash()) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const PremiseTranslation> PremiseTranslationCache::Get(
    int n, const ConstraintSet& premises, bool* hit) {
  Key key{n, premises};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++counters_.hits;
      if (hit != nullptr) *hit = true;
      return it->second;
    }
    ++counters_.misses;
  }
  if (hit != nullptr) *hit = false;

  auto translation = std::make_shared<PremiseTranslation>(TranslatePremises(n, premises));

  if (DIFFC_FAILPOINT("cache/premise-insert")) return translation;  // Served uncached.

  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) return it->second;
  auto inserted_it = map_.emplace(std::move(key), translation).first;
  order_.push_back(inserted_it->first);
  while (map_.size() > capacity_ && !order_.empty()) {
    if (map_.erase(order_.front()) > 0) ++counters_.evictions;
    order_.pop_front();
  }
  return translation;
}

void PremiseTranslationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  order_.clear();
}

CacheCounters PremiseTranslationCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t PremiseTranslationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

WitnessSetCache& GlobalWitnessSetCache() {
  static WitnessSetCache* cache = new WitnessSetCache();
  return *cache;
}

PremiseTranslationCache& GlobalPremiseTranslationCache() {
  static PremiseTranslationCache* cache = new PremiseTranslationCache();
  return *cache;
}

}  // namespace diffc
