#include "engine/caches.h"

#include <utility>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/failpoint.h"

namespace diffc {

namespace {

// A cached status must describe the *key*, not the query that computed it:
// deadline / cancellation outcomes are per-query and would poison every
// later lookup of the same family if cached.
bool CacheableStatus(const Status& s) {
  return s.code() != StatusCode::kDeadlineExceeded && s.code() != StatusCode::kCancelled;
}

// Registry handles for one cache, labelled `cache=<which>`. Looked up once
// per cache kind; the increments themselves are lock-free.
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* negative_entries;
  obs::Gauge* size;

  explicit CacheMetrics(const char* which) {
    obs::Registry& r = obs::Registry::Global();
    obs::Labels labels{{"cache", which}};
    hits = r.GetCounter("diffc_cache_hits_total", "Cache lookups served from the cache.",
                        labels);
    misses = r.GetCounter("diffc_cache_misses_total",
                          "Cache lookups that had to compute the entry.", labels);
    evictions = r.GetCounter("diffc_cache_evictions_total",
                             "Entries evicted by FIFO capacity pressure.", labels);
    negative_entries =
        r.GetCounter("diffc_cache_negative_entries_total",
                     "Entries cached with a non-OK status (budget-exhausted families).",
                     labels);
    size = r.GetGauge("diffc_cache_size", "Entries currently resident.", labels);
  }
};

CacheMetrics& WitnessMetrics() {
  static CacheMetrics* m = new CacheMetrics("witness");
  return *m;
}

CacheMetrics& PremiseMetrics() {
  static CacheMetrics* m = new CacheMetrics("premise");
  return *m;
}

void RecordEviction(const char* which) {
  obs::GlobalEventLog().Record("cache_eviction", {{"cache", which}});
}

}  // namespace

std::shared_ptr<const WitnessSetCache::Entry> WitnessSetCache::Get(const SetFamily& family,
                                                                   std::size_t max_results,
                                                                   bool* hit, StopCheck* stop) {
  const bool obs_on = obs::MetricsEnabled();
  Key key{family, max_results};
  {
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      counters_.hits.fetch_add(1, std::memory_order_relaxed);
      if (obs_on) WitnessMetrics().hits->Inc();
      if (hit != nullptr) *hit = true;
      return it->second;
    }
  }
  counters_.misses.fetch_add(1, std::memory_order_relaxed);
  if (obs_on) WitnessMetrics().misses->Inc();
  if (hit != nullptr) *hit = false;

  // Compute outside the lock: the transversal search can be expensive and
  // must not serialize unrelated queries.
  auto entry = std::make_shared<Entry>();
  Result<std::vector<ItemSet>> r =
      MinimalWitnessSets(family, max_results, &entry->search, stop);
  entry->status = r.status();
  if (r.ok()) entry->witnesses = *std::move(r);

  if (!CacheableStatus(entry->status)) return entry;
  if (DIFFC_FAILPOINT("cache/witness-insert")) return entry;  // Served uncached.

  std::size_t evicted = 0;
  bool inserted_negative = false;
  std::shared_ptr<const Entry> out;
  {
    MutexLock lock(&mu_);
    // Find-then-insert: a concurrent miss may have populated the key while
    // we searched; reusing its entry keeps `order_` free of duplicate keys.
    auto it = map_.find(key);
    if (it != map_.end()) return it->second;
    map_.emplace(key, entry);
    order_.push_back(std::move(key));
    inserted_negative = !entry->status.ok();
    while (map_.size() > capacity_ && !order_.empty()) {
      // Count only actual erases, so the eviction counter stays truthful
      // even if `order_` ever drifts from the map's key set.
      if (map_.erase(order_.front()) > 0) ++evicted;
      order_.pop_front();
    }
    if (obs_on) WitnessMetrics().size->Set(static_cast<std::int64_t>(map_.size()));
    out = entry;
  }
  if (evicted > 0) {
    counters_.evictions.fetch_add(evicted, std::memory_order_relaxed);
    if (obs_on) {
      WitnessMetrics().evictions->Inc(evicted);
      RecordEviction("witness");
    }
  }
  if (inserted_negative) {
    counters_.negative_entries.fetch_add(1, std::memory_order_relaxed);
    if (obs_on) WitnessMetrics().negative_entries->Inc();
  }
  return out;
}

void WitnessSetCache::Clear() {
  MutexLock lock(&mu_);
  map_.clear();
  order_.clear();
  if (obs::MetricsEnabled()) WitnessMetrics().size->Set(0);
}

CacheCounters WitnessSetCache::counters() const { return counters_.Snapshot(); }

std::size_t WitnessSetCache::size() const {
  MutexLock lock(&mu_);
  return map_.size();
}

std::size_t PremiseTranslationCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(k.n);
  for (const DifferentialConstraint& c : k.premises) {
    h ^= c.lhs().bits() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= static_cast<std::uint64_t>(c.rhs().Hash()) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const PremiseTranslation> PremiseTranslationCache::Get(
    int n, const ConstraintSet& premises, bool* hit) {
  const bool obs_on = obs::MetricsEnabled();
  Key key{n, premises};
  {
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      counters_.hits.fetch_add(1, std::memory_order_relaxed);
      if (obs_on) PremiseMetrics().hits->Inc();
      if (hit != nullptr) *hit = true;
      return it->second;
    }
  }
  counters_.misses.fetch_add(1, std::memory_order_relaxed);
  if (obs_on) PremiseMetrics().misses->Inc();
  if (hit != nullptr) *hit = false;

  auto translation = std::make_shared<PremiseTranslation>(TranslatePremises(n, premises));

  if (DIFFC_FAILPOINT("cache/premise-insert")) return translation;  // Served uncached.

  std::size_t evicted = 0;
  {
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it != map_.end()) return it->second;
    auto inserted_it = map_.emplace(std::move(key), translation).first;
    order_.push_back(inserted_it->first);
    while (map_.size() > capacity_ && !order_.empty()) {
      if (map_.erase(order_.front()) > 0) ++evicted;
      order_.pop_front();
    }
    if (obs_on) PremiseMetrics().size->Set(static_cast<std::int64_t>(map_.size()));
  }
  if (evicted > 0) {
    counters_.evictions.fetch_add(evicted, std::memory_order_relaxed);
    if (obs_on) {
      PremiseMetrics().evictions->Inc(evicted);
      RecordEviction("premise");
    }
  }
  return translation;
}

void PremiseTranslationCache::Clear() {
  MutexLock lock(&mu_);
  map_.clear();
  order_.clear();
  if (obs::MetricsEnabled()) PremiseMetrics().size->Set(0);
}

CacheCounters PremiseTranslationCache::counters() const { return counters_.Snapshot(); }

std::size_t PremiseTranslationCache::size() const {
  MutexLock lock(&mu_);
  return map_.size();
}

WitnessSetCache& GlobalWitnessSetCache() {
  static WitnessSetCache* cache = new WitnessSetCache();
  return *cache;
}

PremiseTranslationCache& GlobalPremiseTranslationCache() {
  static PremiseTranslationCache* cache = new PremiseTranslationCache();
  return *cache;
}

}  // namespace diffc
