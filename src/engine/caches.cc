#include "engine/caches.h"

#include <utility>

namespace diffc {

std::shared_ptr<const WitnessSetCache::Entry> WitnessSetCache::Get(const SetFamily& family,
                                                                   std::size_t max_results,
                                                                   bool* hit) {
  Key key{family, max_results};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++counters_.hits;
      if (hit != nullptr) *hit = true;
      return it->second;
    }
    ++counters_.misses;
  }
  if (hit != nullptr) *hit = false;

  // Compute outside the lock: the transversal search can be expensive and
  // must not serialize unrelated queries.
  auto entry = std::make_shared<Entry>();
  Result<std::vector<ItemSet>> r = MinimalWitnessSets(family, max_results, &entry->search);
  entry->status = r.status();
  if (r.ok()) entry->witnesses = *std::move(r);

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.emplace(key, entry);
  if (!inserted) return it->second;  // A concurrent miss beat us; reuse it.
  order_.push_back(std::move(key));
  while (map_.size() > capacity_ && !order_.empty()) {
    map_.erase(order_.front());
    order_.pop_front();
    ++counters_.evictions;
  }
  return entry;
}

void WitnessSetCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  order_.clear();
}

CacheCounters WitnessSetCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t PremiseTranslationCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(k.n);
  for (const DifferentialConstraint& c : k.premises) {
    h ^= c.lhs().bits() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= static_cast<std::uint64_t>(c.rhs().Hash()) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const PremiseTranslation> PremiseTranslationCache::Get(
    int n, const ConstraintSet& premises, bool* hit) {
  Key key{n, premises};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++counters_.hits;
      if (hit != nullptr) *hit = true;
      return it->second;
    }
    ++counters_.misses;
  }
  if (hit != nullptr) *hit = false;

  auto translation = std::make_shared<PremiseTranslation>(TranslatePremises(n, premises));

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.emplace(std::move(key), translation);
  if (!inserted) return it->second;
  order_.push_back(it->first);
  while (map_.size() > capacity_ && !order_.empty()) {
    map_.erase(order_.front());
    order_.pop_front();
    ++counters_.evictions;
  }
  return translation;
}

void PremiseTranslationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  order_.clear();
}

CacheCounters PremiseTranslationCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

WitnessSetCache& GlobalWitnessSetCache() {
  static WitnessSetCache* cache = new WitnessSetCache();
  return *cache;
}

PremiseTranslationCache& GlobalPremiseTranslationCache() {
  static PremiseTranslationCache* cache = new PremiseTranslationCache();
  return *cache;
}

}  // namespace diffc
