#include "engine/caches.h"

#include <utility>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/failpoint.h"

namespace diffc {

namespace {

// A cached status must describe the *key*, not the query that computed it:
// deadline / cancellation outcomes are per-query and would poison every
// later lookup of the same family if cached.
bool CacheableStatus(const Status& s) {
  return s.code() != StatusCode::kDeadlineExceeded && s.code() != StatusCode::kCancelled;
}

// Registry handles for one cache, labelled `cache=<which>`. Looked up once
// per cache kind; the increments themselves are lock-free.
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* negative_entries;
  obs::Gauge* size;
  obs::Gauge* hit_ratio;

  explicit CacheMetrics(const char* which) {
    obs::Registry& r = obs::Registry::Global();
    obs::Labels labels{{"cache", which}};
    hits = r.GetCounter("diffc_cache_hits_total", "Cache lookups served from the cache.",
                        labels);
    misses = r.GetCounter("diffc_cache_misses_total",
                          "Cache lookups that had to compute the entry.", labels);
    evictions = r.GetCounter("diffc_cache_evictions_total",
                             "Entries evicted by segmented-LRU capacity pressure.", labels);
    negative_entries =
        r.GetCounter("diffc_cache_negative_entries_total",
                     "Entries cached with a non-OK status (budget-exhausted families).",
                     labels);
    size = r.GetGauge("diffc_cache_size", "Entries currently resident.", labels);
    hit_ratio = r.GetGauge("diffc_cache_hit_ratio",
                           "Lifetime hits / lookups, updated per lookup.", labels);
  }
};

CacheMetrics& WitnessMetrics() {
  static CacheMetrics* m = new CacheMetrics("witness");
  return *m;
}

CacheMetrics& PreparedMetrics() {
  static CacheMetrics* m = new CacheMetrics("prepared");
  return *m;
}

void RecordEviction(const char* which) {
  obs::GlobalEventLog().Record("cache_eviction", {{"cache", which}});
}

// Flushes one lookup into the per-cache counters and metrics (shared by
// both caches, which differ only in their key/value types).
void RecordLookup(AtomicCacheCounters* counters, CacheMetrics& metrics, bool hit,
                  bool obs_on) {
  (hit ? counters->hits : counters->misses).fetch_add(1, std::memory_order_relaxed);
  if (!obs_on) return;
  (hit ? metrics.hits : metrics.misses)->Inc();
  metrics.hit_ratio->Set(counters->Snapshot().HitRatio());
}

}  // namespace

std::shared_ptr<const WitnessSetCache::Entry> WitnessSetCache::Get(const SetFamily& family,
                                                                   std::size_t max_results,
                                                                   bool* hit, StopCheck* stop) {
  const bool obs_on = obs::MetricsEnabled();
  Key key{family, max_results};
  {
    MutexLock lock(&mu_);
    if (const auto* found = lru_.Find(key)) {
      RecordLookup(&counters_, WitnessMetrics(), /*hit=*/true, obs_on);
      if (hit != nullptr) *hit = true;
      return *found;
    }
  }
  RecordLookup(&counters_, WitnessMetrics(), /*hit=*/false, obs_on);
  if (hit != nullptr) *hit = false;

  // Compute outside the lock: the transversal search can be expensive and
  // must not serialize unrelated queries.
  auto entry = std::make_shared<Entry>();
  Result<std::vector<ItemSet>> r =
      MinimalWitnessSets(family, max_results, &entry->search, stop);
  entry->status = r.status();
  if (r.ok()) entry->witnesses = *std::move(r);

  if (!CacheableStatus(entry->status)) return entry;
  if (DIFFC_FAILPOINT("cache/witness-insert")) return entry;  // Served uncached.

  std::size_t evicted = 0;
  bool inserted_negative = false;
  std::shared_ptr<const Entry> out;
  {
    MutexLock lock(&mu_);
    // InsertIfAbsent: a concurrent miss may have populated the key while
    // we searched; reusing its entry keeps the index free of duplicates.
    out = *lru_.InsertIfAbsent(std::move(key), entry, &evicted);
    inserted_negative = out == entry && !entry->status.ok();
    if (obs_on) WitnessMetrics().size->Set(static_cast<double>(lru_.size()));
  }
  if (evicted > 0) {
    counters_.evictions.fetch_add(evicted, std::memory_order_relaxed);
    if (obs_on) {
      WitnessMetrics().evictions->Inc(evicted);
      RecordEviction("witness");
    }
  }
  if (inserted_negative) {
    counters_.negative_entries.fetch_add(1, std::memory_order_relaxed);
    if (obs_on) WitnessMetrics().negative_entries->Inc();
  }
  return out;
}

void WitnessSetCache::Clear() {
  MutexLock lock(&mu_);
  lru_.Clear();
  if (obs::MetricsEnabled()) WitnessMetrics().size->Set(0);
}

CacheCounters WitnessSetCache::counters() const { return counters_.Snapshot(); }

std::size_t WitnessSetCache::size() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

std::size_t PreparedPremisesCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(k.n);
  h ^= (k.options.use_rewriter ? 0x85ebca6bull : 0xc2b2ae35ull) +
       static_cast<std::uint64_t>(k.options.simplify_level) + (h << 6) + (h >> 2);
  for (const DifferentialConstraint& c : k.premises) {
    h ^= c.lhs().bits() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= static_cast<std::uint64_t>(c.rhs().Hash()) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

Result<std::shared_ptr<const PreparedPremises>> PreparedPremisesCache::Get(
    int n, const ConstraintSet& premises, bool* hit) {
  return Get(n, premises, PrepareOptions(), hit);
}

Result<std::shared_ptr<const PreparedPremises>> PreparedPremisesCache::Get(
    int n, const ConstraintSet& premises, const PrepareOptions& options, bool* hit) {
  const bool obs_on = obs::MetricsEnabled();
  Key key{n, options, premises};
  {
    MutexLock lock(&mu_);
    if (const auto* found = lru_.Find(key)) {
      RecordLookup(&counters_, PreparedMetrics(), /*hit=*/true, obs_on);
      if (hit != nullptr) *hit = true;
      return *found;
    }
  }
  RecordLookup(&counters_, PreparedMetrics(), /*hit=*/false, obs_on);
  if (hit != nullptr) *hit = false;

  // Compile outside the lock; only a valid artifact is cacheable.
  Result<std::shared_ptr<const PreparedPremises>> built =
      PreparedPremises::Build(n, premises, options);
  if (!built.ok()) return built.status();

  if (DIFFC_FAILPOINT("cache/premise-insert")) return built;  // Served uncached.

  std::size_t evicted = 0;
  std::shared_ptr<const PreparedPremises> out;
  {
    MutexLock lock(&mu_);
    out = *lru_.InsertIfAbsent(std::move(key), *built, &evicted);
    if (obs_on) PreparedMetrics().size->Set(static_cast<double>(lru_.size()));
  }
  if (evicted > 0) {
    counters_.evictions.fetch_add(evicted, std::memory_order_relaxed);
    if (obs_on) {
      PreparedMetrics().evictions->Inc(evicted);
      RecordEviction("prepared");
    }
  }
  return out;
}

void PreparedPremisesCache::Clear() {
  MutexLock lock(&mu_);
  lru_.Clear();
  if (obs::MetricsEnabled()) PreparedMetrics().size->Set(0);
}

CacheCounters PreparedPremisesCache::counters() const { return counters_.Snapshot(); }

std::size_t PreparedPremisesCache::size() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

WitnessSetCache& GlobalWitnessSetCache() {
  static WitnessSetCache* cache = new WitnessSetCache();
  return *cache;
}

PreparedPremisesCache& GlobalPreparedPremisesCache() {
  static PreparedPremisesCache* cache = new PreparedPremisesCache();
  return *cache;
}

}  // namespace diffc
