#ifndef DIFFC_ENGINE_CACHES_H_
#define DIFFC_ENGINE_CACHES_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/constraint.h"
#include "core/implication.h"
#include "engine/prepared_premises.h"
#include "lattice/hitting_set.h"
#include "lattice/set_family.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffc {

/// Aggregate counters of a shared cache.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Entries cached with a non-OK status (budget-exhausted families served
  /// negatively). Always 0 for caches that never store failures.
  std::uint64_t negative_entries = 0;

  /// hits / (hits + misses), 0 before the first lookup.
  double HitRatio() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Internal: the atomic counter block behind `CacheCounters`. The counters
/// are deliberately *not* guarded by the cache's map mutex — they are
/// mutated and snapshotted with atomics, so a reader calling `counters()`
/// mid-`Get` can never race the increments (the old plain-field version
/// could, when a snapshot was taken without the lock). Registry-backed
/// metrics mirror every increment, so dashboards see the same numbers.
struct AtomicCacheCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> negative_entries{0};

  CacheCounters Snapshot() const {
    CacheCounters c;
    c.hits = hits.load(std::memory_order_relaxed);
    c.misses = misses.load(std::memory_order_relaxed);
    c.evictions = evictions.load(std::memory_order_relaxed);
    c.negative_entries = negative_entries.load(std::memory_order_relaxed);
    return c;
  }
};

/// A segmented-LRU map: the shared eviction index of the engine caches.
///
/// New entries enter a *probationary* segment; a hit promotes the entry to
/// the *protected* segment's MRU position (capped at ~80% of capacity,
/// with protected overflow demoted back to probationary MRU). Eviction
/// takes the probationary LRU first, so a one-shot scan of cold keys can
/// only churn the probationary segment — entries with at least two
/// touches survive floods that would wipe a plain FIFO or LRU.
///
/// Not internally synchronized: callers wrap it in their own mutex (the
/// engine caches compute values outside the lock and insert under it).
template <typename Key, typename Value, typename KeyHash>
class SegmentedLruMap {
 public:
  explicit SegmentedLruMap(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        protected_capacity_(capacity_ * 4 / 5) {}

  /// The value for `key`, or null. A hit promotes the entry (probationary
  /// entries move to protected; protected entries refresh to MRU).
  const Value* Find(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    Promote(it->second);
    return &it->second.value;
  }

  /// Inserts `(key, value)` if the key is absent, evicting (probationary
  /// LRU first) past capacity; `*evicted` receives the eviction count.
  /// Returns the resident value — the existing one on a duplicate insert,
  /// so racing computations of the same key converge on one entry.
  const Value* InsertIfAbsent(const Key& key, Value value, std::size_t* evicted) {
    *evicted = 0;
    auto it = map_.find(key);
    if (it != map_.end()) return &it->second.value;
    while (map_.size() >= capacity_) {
      EvictOne();
      ++*evicted;
    }
    probation_.push_front(key);
    Node node;
    node.value = std::move(value);
    node.pos = probation_.begin();
    node.in_protected = false;
    return &map_.emplace(key, std::move(node)).first->second.value;
  }

  void Clear() {
    map_.clear();
    probation_.clear();
    protected_.clear();
  }

  std::size_t size() const { return map_.size(); }

  /// Entries currently in the protected segment (survived ≥ 1 hit).
  std::size_t protected_size() const { return protected_.size(); }

 private:
  struct Node {
    Value value;
    typename std::list<Key>::iterator pos;
    bool in_protected = false;
  };

  void Promote(Node& node) {
    if (node.in_protected) {
      protected_.splice(protected_.begin(), protected_, node.pos);
      return;
    }
    protected_.splice(protected_.begin(), probation_, node.pos);
    node.in_protected = true;
    // Protected overflow demotes its LRU entry back to probationary MRU —
    // it keeps its value and can earn its way back with another hit.
    while (protected_.size() > protected_capacity_) {
      auto demoted = map_.find(protected_.back());
      probation_.splice(probation_.begin(), protected_, demoted->second.pos);
      demoted->second.in_protected = false;
    }
  }

  void EvictOne() {
    std::list<Key>& victims = probation_.empty() ? protected_ : probation_;
    map_.erase(victims.back());
    victims.pop_back();
  }

  const std::size_t capacity_;
  const std::size_t protected_capacity_;
  std::unordered_map<Key, Node, KeyHash> map_;
  std::list<Key> probation_;   // MRU at front; evict from the back.
  std::list<Key> protected_;   // MRU at front; demote from the back.
};

/// A process-wide cache of minimal witness sets keyed on the right-hand
/// family — the dominant cost of the lattice side of implication checking
/// (`lattice/hitting_set.cc`). Batches that repeat right-hand families
/// (re-validating derived constraints, mining loops) hit the cache and skip
/// the transversal search entirely.
///
/// Entries record the enumeration `Status` as well: a family whose
/// enumeration exhausted its budget is cached negatively, so hostile
/// or degenerate families are not re-searched on every query.
///
/// Thread-safe. The enumeration itself runs outside the lock, so
/// concurrent misses on the same key may duplicate work (both results are
/// equal; the first insert wins).
class WitnessSetCache {
 public:
  /// The cached outcome of `MinimalWitnessSets(family, max_results)`.
  struct Entry {
    /// OK, or the enumeration error (ResourceExhausted on truncation).
    Status status;
    /// The minimal witness sets; meaningful only when `status.ok()`.
    std::vector<ItemSet> witnesses;
    /// Work counters of the (single) enumeration that populated the entry.
    WitnessSearchStats search;
  };

  /// A cache holding at most `capacity` entries (segmented-LRU eviction).
  explicit WitnessSetCache(std::size_t capacity = 4096) : lru_(capacity) {}

  /// The minimal witness sets of `family` under `max_results`, computed on
  /// miss. `hit`, when non-null, receives whether the entry was cached.
  /// `stop`, when non-null, bounds the miss-path enumeration; an entry
  /// whose status is DeadlineExceeded / Cancelled is returned to the
  /// caller but never cached — those statuses describe this query's
  /// deadline, not the family.
  std::shared_ptr<const Entry> Get(const SetFamily& family, std::size_t max_results,
                                   bool* hit = nullptr, StopCheck* stop = nullptr)
      EXCLUDES(mu_);

  /// Drops every entry (counters are kept).
  void Clear() EXCLUDES(mu_);

  /// Lifetime hit/miss/eviction counters.
  CacheCounters counters() const;

  /// Number of cached entries.
  std::size_t size() const EXCLUDES(mu_);

 private:
  struct Key {
    SetFamily family;
    std::size_t max_results;
    bool operator==(const Key& o) const {
      return max_results == o.max_results && family == o.family;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return k.family.Hash() * 31 + k.max_results;
    }
  };

  mutable Mutex mu_;
  SegmentedLruMap<Key, std::shared_ptr<const Entry>, KeyHash> lru_ GUARDED_BY(mu_);
  AtomicCacheCounters counters_;
};

/// A process-wide cache of compiled premise artifacts (`PreparedPremises`)
/// keyed on the raw (universe size, constraint set) pair — the bridge that
/// lets the unprepared engine API (`CheckBatch(n, premises, goals)`)
/// amortize compilation exactly like an explicit `Prepare()` call: the
/// canonical form, the Proposition 5.4 CNF translation, and the FD closure
/// index are built once per distinct premise set and shared read-only by
/// every query, batch, and engine instance. Replaces the former
/// premise-translation cache (the translation now lives inside the
/// artifact).
///
/// Thread-safe, with the same duplicate-miss policy as `WitnessSetCache`.
class PreparedPremisesCache {
 public:
  /// A cache holding at most `capacity` entries (segmented-LRU eviction).
  explicit PreparedPremisesCache(std::size_t capacity = 256) : lru_(capacity) {}

  /// The prepared artifact for `premises` over `n` attributes under
  /// default `PrepareOptions`, built on miss. `hit`, when non-null,
  /// receives whether the entry was cached. Fails only on invalid `n`
  /// (InvalidArgument, never cached).
  Result<std::shared_ptr<const PreparedPremises>> Get(int n, const ConstraintSet& premises,
                                                      bool* hit = nullptr) EXCLUDES(mu_);

  /// As above with explicit canonicalization options — part of the cache
  /// key, so artifacts built at different simplify levels (or on the
  /// legacy inline path) never alias.
  Result<std::shared_ptr<const PreparedPremises>> Get(int n, const ConstraintSet& premises,
                                                      const PrepareOptions& options,
                                                      bool* hit = nullptr) EXCLUDES(mu_);

  /// Drops every entry (counters are kept).
  void Clear() EXCLUDES(mu_);

  /// Lifetime hit/miss/eviction counters.
  CacheCounters counters() const;

  /// Number of cached entries.
  std::size_t size() const EXCLUDES(mu_);

 private:
  struct Key {
    int n;
    PrepareOptions options;
    ConstraintSet premises;
    bool operator==(const Key& o) const {
      return n == o.n && options == o.options && premises == o.premises;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  mutable Mutex mu_;
  SegmentedLruMap<Key, std::shared_ptr<const PreparedPremises>, KeyHash> lru_
      GUARDED_BY(mu_);
  AtomicCacheCounters counters_;
};

/// The process-wide witness-set cache shared by every engine instance.
WitnessSetCache& GlobalWitnessSetCache();

/// The process-wide prepared-premises cache shared by every engine
/// instance.
PreparedPremisesCache& GlobalPreparedPremisesCache();

}  // namespace diffc

#endif  // DIFFC_ENGINE_CACHES_H_
