#ifndef DIFFC_ENGINE_CACHES_H_
#define DIFFC_ENGINE_CACHES_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/constraint.h"
#include "core/implication.h"
#include "lattice/hitting_set.h"
#include "lattice/set_family.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffc {

/// Aggregate counters of a shared cache.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Entries cached with a non-OK status (budget-exhausted families served
  /// negatively). Always 0 for caches that never store failures.
  std::uint64_t negative_entries = 0;
};

/// Internal: the atomic counter block behind `CacheCounters`. The counters
/// are deliberately *not* guarded by the cache's map mutex — they are
/// mutated and snapshotted with atomics, so a reader calling `counters()`
/// mid-`Get` can never race the increments (the old plain-field version
/// could, when a snapshot was taken without the lock). Registry-backed
/// metrics mirror every increment, so dashboards see the same numbers.
struct AtomicCacheCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> negative_entries{0};

  CacheCounters Snapshot() const {
    CacheCounters c;
    c.hits = hits.load(std::memory_order_relaxed);
    c.misses = misses.load(std::memory_order_relaxed);
    c.evictions = evictions.load(std::memory_order_relaxed);
    c.negative_entries = negative_entries.load(std::memory_order_relaxed);
    return c;
  }
};

/// A process-wide cache of minimal witness sets keyed on the right-hand
/// family — the dominant cost of the lattice side of implication checking
/// (`lattice/hitting_set.cc`). Batches that repeat right-hand families
/// (re-validating derived constraints, mining loops) hit the cache and skip
/// the transversal search entirely.
///
/// Entries record the enumeration `Status` as well: a family whose
/// enumeration exhausted its budget is cached negatively, so hostile
/// or degenerate families are not re-searched on every query.
///
/// Thread-safe. The enumeration itself runs outside the lock, so
/// concurrent misses on the same key may duplicate work (both results are
/// equal; the first insert wins).
class WitnessSetCache {
 public:
  /// The cached outcome of `MinimalWitnessSets(family, max_results)`.
  struct Entry {
    /// OK, or the enumeration error (ResourceExhausted on truncation).
    Status status;
    /// The minimal witness sets; meaningful only when `status.ok()`.
    std::vector<ItemSet> witnesses;
    /// Work counters of the (single) enumeration that populated the entry.
    WitnessSearchStats search;
  };

  /// A cache holding at most `capacity` entries (FIFO eviction).
  explicit WitnessSetCache(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// The minimal witness sets of `family` under `max_results`, computed on
  /// miss. `hit`, when non-null, receives whether the entry was cached.
  /// `stop`, when non-null, bounds the miss-path enumeration; an entry
  /// whose status is DeadlineExceeded / Cancelled is returned to the
  /// caller but never cached — those statuses describe this query's
  /// deadline, not the family.
  std::shared_ptr<const Entry> Get(const SetFamily& family, std::size_t max_results,
                                   bool* hit = nullptr, StopCheck* stop = nullptr)
      EXCLUDES(mu_);

  /// Drops every entry (counters are kept).
  void Clear() EXCLUDES(mu_);

  /// Lifetime hit/miss/eviction counters.
  CacheCounters counters() const;

  /// Number of cached entries.
  std::size_t size() const EXCLUDES(mu_);

 private:
  struct Key {
    SetFamily family;
    std::size_t max_results;
    bool operator==(const Key& o) const {
      return max_results == o.max_results && family == o.family;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return k.family.Hash() * 31 + k.max_results;
    }
  };

  const std::size_t capacity_;
  mutable Mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const Entry>, KeyHash> map_ GUARDED_BY(mu_);
  std::deque<Key> order_ GUARDED_BY(mu_);  // Insertion order, for FIFO eviction.
  AtomicCacheCounters counters_;
};

/// A process-wide cache of premise-side CNF translations (Proposition 5.4),
/// keyed on (universe size, constraint set). The per-premise clauses are
/// built once per `ConstraintSet` and shared read-only by every SAT query
/// against it, instead of being rebuilt per query.
///
/// Thread-safe, with the same duplicate-miss policy as `WitnessSetCache`.
class PremiseTranslationCache {
 public:
  /// A cache holding at most `capacity` entries (FIFO eviction).
  explicit PremiseTranslationCache(std::size_t capacity = 256) : capacity_(capacity) {}

  /// The translation of `premises` over `n` attributes, built on miss.
  /// `hit`, when non-null, receives whether the entry was cached.
  std::shared_ptr<const PremiseTranslation> Get(int n, const ConstraintSet& premises,
                                                bool* hit = nullptr) EXCLUDES(mu_);

  /// Drops every entry (counters are kept).
  void Clear() EXCLUDES(mu_);

  /// Lifetime hit/miss/eviction counters.
  CacheCounters counters() const;

  /// Number of cached entries.
  std::size_t size() const EXCLUDES(mu_);

 private:
  struct Key {
    int n;
    ConstraintSet premises;
    bool operator==(const Key& o) const { return n == o.n && premises == o.premises; }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  const std::size_t capacity_;
  mutable Mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const PremiseTranslation>, KeyHash> map_
      GUARDED_BY(mu_);
  std::deque<Key> order_ GUARDED_BY(mu_);
  AtomicCacheCounters counters_;
};

/// The process-wide witness-set cache shared by every engine instance.
WitnessSetCache& GlobalWitnessSetCache();

/// The process-wide premise-translation cache shared by every engine
/// instance.
PremiseTranslationCache& GlobalPremiseTranslationCache();

}  // namespace diffc

#endif  // DIFFC_ENGINE_CACHES_H_
