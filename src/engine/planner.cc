#include "engine/planner.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace diffc {

namespace {

// True iff `s` came from a fired StopCheck (as opposed to a solver budget
// or any other per-step failure).
bool IsStopStatus(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded || s.code() == StatusCode::kCancelled;
}

}  // namespace

std::string QueryPlan::ToString() const {
  std::string out;
  for (const Step& step : steps) {
    if (!out.empty()) out += "+";
    out += step.procedure->name();
  }
  return out;
}

QueryPlanner::QueryPlanner(std::vector<const DecisionProcedureImpl*> procedures)
    : procedures_(std::move(procedures)) {}

QueryPlan QueryPlanner::Plan(const PreparedPremises& premises, const ProcedureQuery& query,
                             const EngineOptions& options) const {
  QueryPlan plan;
  plan.steps.reserve(procedures_.size());
  for (const DecisionProcedureImpl* procedure : procedures_) {
    if (procedure->id() == DecisionProcedure::kIntervalCover &&
        !options.use_interval_cover_fast_path) {
      continue;
    }
    const Applicability applicability = procedure->CanDecide(premises, query);
    if (applicability == Applicability::kNo) continue;
    plan.steps.push_back(
        {procedure, applicability, procedure->EstimateCost(premises, query)});
  }
  std::sort(plan.steps.begin(), plan.steps.end(),
            [](const QueryPlan::Step& a, const QueryPlan::Step& b) {
              const bool a_fallback = a.applicability == Applicability::kFallback;
              const bool b_fallback = b.applicability == Applicability::kFallback;
              if (a_fallback != b_fallback) return b_fallback;
              if (a.estimated_cost != b.estimated_cost) {
                return a.estimated_cost < b.estimated_cost;
              }
              return std::strcmp(a.procedure->name(), b.procedure->name()) < 0;
            });
  return plan;
}

PlanOutcome ExecutePlan(const QueryPlan& plan, const PreparedPremises& premises,
                        const ProcedureQuery& query, ProcedureContext* ctx) {
  PlanOutcome out;
  ctx->stats->plan.clear();
  ctx->stats->plan.reserve(plan.steps.size());
  for (const QueryPlan::Step& step : plan.steps) {
    ctx->stats->plan.push_back(step.procedure->id());
  }

  bool sampled_deadline = false;
  bool have_pending = false;
  Status pending;
  DecisionProcedure pending_proc = DecisionProcedure::kNone;
  for (const QueryPlan::Step& step : plan.steps) {
    const bool is_fallback = step.applicability == Applicability::kFallback;
    // Fallbacks exist to rescue a blown budget; without one they are
    // skipped entirely (the complete primaries already had their say).
    if (is_fallback && !have_pending) continue;
    if (!sampled_deadline && step.estimated_cost > 0) {
      // Fail fast on a deadline that expired before this query started
      // (the degrade path of an over-budget batch) — but only once a
      // costed step is reached, so zero-cost certain answers still win.
      sampled_deadline = true;
      if (Status s = ctx->stop->CheckNow(); !s.ok()) {
        out.status = std::move(s);
        return out;
      }
    }
    obs::SpanGuard span(ctx->tracer, step.procedure->name());
    Result<ImplicationOutcome> r = step.procedure->Decide(premises, query, ctx);
    if (r.ok()) {
      if (r->verdict == ImplicationOutcome::kUnknown) continue;  // Inconclusive.
      out.outcome = *r;
      ctx->stats->procedure = step.procedure->id();
      return out;
    }
    if (IsStopStatus(r.status())) {
      out.status = r.status();
      ctx->stats->stopped_in = step.procedure->id();
      return out;
    }
    if (is_fallback) continue;  // The pending primary status stays authoritative.
    if (r.status().code() == StatusCode::kResourceExhausted) {
      pending = r.status();
      pending_proc = step.procedure->id();
      have_pending = true;
      continue;
    }
    out.status = r.status();  // Hard error (Internal, FailedPrecondition, ...).
    return out;
  }
  if (have_pending) {
    out.status = std::move(pending);
    ctx->stats->stopped_in = pending_proc;
    return out;
  }
  out.status = Status::Internal("no decision procedure settled the query");
  return out;
}

}  // namespace diffc
