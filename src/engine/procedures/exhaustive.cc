#include <algorithm>
#include <memory>

#include "engine/procedures/procedure.h"

namespace diffc {

/// Exhaustive lattice containment (Theorem 3.5 checked by enumerating
/// L(X, Y)): the fallback of last resort when the SAT budget ran out and
/// the free-attribute count admits enumeration. `Applicability::kFallback`
/// makes the planner run it only after a prior procedure returned
/// ResourceExhausted.
class ExhaustiveProcedure : public DecisionProcedureImpl {
 public:
  DecisionProcedure id() const override { return DecisionProcedure::kExhaustive; }
  const char* name() const override { return "exhaustive"; }

  Applicability CanDecide(const PreparedPremises& /*premises*/,
                          const ProcedureQuery& /*query*/) const override {
    // The free-attribute bound is an EngineOptions knob, applied by the
    // planner (which owns the options); the procedure itself re-checks it
    // inside CheckImplicationExhaustive.
    return Applicability::kFallback;
  }

  double EstimateCost(const PreparedPremises& premises,
                      const ProcedureQuery& query) const override {
    const int free_bits =
        std::min(query.n - query.goal->lhs().size(), 62);
    return static_cast<double>(std::uint64_t{1} << std::max(free_bits, 0)) *
           (1.0 + static_cast<double>(premises.constraints().size()));
  }

  Result<ImplicationOutcome> Decide(const PreparedPremises& premises,
                                    const ProcedureQuery& query,
                                    ProcedureContext* ctx) const override {
    return CheckImplicationExhaustive(query.n, premises.constraints(), *query.goal,
                                      ctx->options->exhaustive_max_free_bits, ctx->stop);
  }
};

DIFFC_REGISTER_PROCEDURE(kExhaustive, ExhaustiveProcedure)

}  // namespace diffc
