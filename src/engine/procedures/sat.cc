#include <memory>

#include "engine/procedures/procedure.h"

namespace diffc {

/// The complete procedure: Proposition 5.4 CNF refuted / satisfied by
/// DPLL, using the premise clauses compiled into the prepared artifact.
/// Returns ResourceExhausted past the decision budget, which is what
/// arms the exhaustive fallback.
class SatProcedure : public DecisionProcedureImpl {
 public:
  DecisionProcedure id() const override { return DecisionProcedure::kSat; }
  const char* name() const override { return "sat"; }

  Applicability CanDecide(const PreparedPremises& /*premises*/,
                          const ProcedureQuery& /*query*/) const override {
    return Applicability::kYes;
  }

  double EstimateCost(const PreparedPremises& premises,
                      const ProcedureQuery& query) const override {
    // Worst-case exponential; the base constant pins the tier (after every
    // polynomial procedure), the size term tracks the CNF monotonically.
    return 1e4 + 1e-2 * (10.0 * static_cast<double>(premises.translation().clauses.size()) +
                         static_cast<double>(query.goal->rhs().size()));
  }

  Result<ImplicationOutcome> Decide(const PreparedPremises& premises,
                                    const ProcedureQuery& query,
                                    ProcedureContext* ctx) const override {
    ctx->stats->premise_cache_used = true;
    ctx->stats->premise_cache_hit = ctx->prepared_from_cache;
    return CheckImplicationSatTranslated(query.n, premises.translation(), *query.goal,
                                         &ctx->stats->solver, ctx->budgets.max_decisions,
                                         ctx->stop);
  }
};

DIFFC_REGISTER_PROCEDURE(kSat, SatProcedure)

}  // namespace diffc
