#include <memory>

#include "engine/caches.h"
#include "engine/procedures/procedure.h"

namespace diffc {

namespace {

// True iff `s` came from a fired StopCheck (as opposed to a budget-
// truncated enumeration, which is a property of the family, not the query).
bool IsStopStatus(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded || s.code() == StatusCode::kCancelled;
}

}  // namespace

/// Interval cover over the cached minimal witness sets of the goal's
/// right-hand family: L(X, Y) = ∪_{W minimal} [X, S∖W] (Definition 2.6).
/// Sound in both directions when conclusive:
///   - an interval top S∖W outside L(C) is itself a counterexample;
///   - if every nonempty interval is covered by a single premise's
///     lattice, then L(X, Y) ⊆ L(C) and the goal is implied (Thm. 3.5).
/// Inconclusive covers (an interval needs several premises) and
/// budget-truncated witness enumerations return kUnknown, handing the
/// query to the complete SAT procedure.
class IntervalCoverProcedure : public DecisionProcedureImpl {
 public:
  DecisionProcedure id() const override { return DecisionProcedure::kIntervalCover; }
  const char* name() const override { return "interval-cover"; }

  Applicability CanDecide(const PreparedPremises& /*premises*/,
                          const ProcedureQuery& /*query*/) const override {
    // Always runnable (the planner applies the EngineOptions fast-path
    // toggle); completeness is what it lacks, not applicability.
    return Applicability::kYes;
  }

  double EstimateCost(const PreparedPremises& premises,
                      const ProcedureQuery& query) const override {
    // Witness enumeration grows with the right-hand family; the cover scan
    // is |witnesses| * |C|. The base constant pins the tier (after
    // FD-subclass, before SAT — the ladder's cover-before-SAT order); the
    // size term orders instances within it.
    return 100.0 + 1e-3 * (10.0 * static_cast<double>(query.goal->rhs().size()) +
                           static_cast<double>(premises.constraints().size()));
  }

  Result<ImplicationOutcome> Decide(const PreparedPremises& premises,
                                    const ProcedureQuery& query,
                                    ProcedureContext* ctx) const override {
    const DifferentialConstraint& goal = *query.goal;
    ctx->stats->witness_cache_used = true;
    std::shared_ptr<const WitnessSetCache::Entry> entry;
    {
      obs::SpanGuard probe_span(ctx->tracer, "witness-cache-probe");
      entry = GlobalWitnessSetCache().Get(goal.rhs(), ctx->budgets.witness_max_results,
                                          &ctx->stats->witness_cache_hit, ctx->stop);
    }
    if (IsStopStatus(entry->status)) return entry->status;
    ImplicationOutcome out;
    out.SetUnknown();
    if (!entry->status.ok()) {
      // Witness enumeration exhausted its budget (cached negatively):
      // inconclusive here, complete SAT decides.
      return out;
    }
    bool every_interval_covered = true;
    for (const ItemSet& w : entry->witnesses) {
      if (Status s = ctx->stop->Check(); !s.ok()) return s;
      if (!goal.lhs().Intersect(w).empty()) continue;  // Empty interval.
      const ItemSet top = w.ComplementIn(query.n);
      // `top` ∈ L(X, Y): X ⊆ top, and no goal member fits inside top
      // because W hits every member. If no premise excludes it, it is a
      // counterexample and the goal is not implied.
      if (!InConstraintLattice(premises.constraints(), top)) {
        out.SetNotImplied(top);
        return out;
      }
      // Single-premise coverage of the whole interval [X, top]:
      // p.lhs ⊆ X keeps p.lhs inside every U ⊇ X, and no member of
      // p.rhs inside `top` keeps every U ⊆ top clear of p.rhs.
      bool covered = false;
      for (const DifferentialConstraint& p : premises.constraints()) {
        if (p.lhs().IsSubsetOf(goal.lhs()) && !p.rhs().SomeMemberSubsetOf(top)) {
          covered = true;
          break;
        }
      }
      if (!covered) every_interval_covered = false;
    }
    if (every_interval_covered) out.SetImplied();
    return out;
  }
};

DIFFC_REGISTER_PROCEDURE(kIntervalCover, IntervalCoverProcedure)

}  // namespace diffc
