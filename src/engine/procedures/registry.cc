#include <utility>

#include "engine/procedures/procedure.h"

namespace diffc {

// Anchors defined by DIFFC_REGISTER_PROCEDURE in each built-in unit.
int ForceLinkProcedure_TrivialProcedure();
int ForceLinkProcedure_FdSubclassProcedure();
int ForceLinkProcedure_IntervalCoverProcedure();
int ForceLinkProcedure_SatProcedure();
int ForceLinkProcedure_ExhaustiveProcedure();

int ForceLinkBuiltinProcedures() {
  return ForceLinkProcedure_TrivialProcedure() + ForceLinkProcedure_FdSubclassProcedure() +
         ForceLinkProcedure_IntervalCoverProcedure() + ForceLinkProcedure_SatProcedure() +
         ForceLinkProcedure_ExhaustiveProcedure() + 5;
}

ProcedureRegistry& ProcedureRegistry::Global() {
  // The anchor call keeps the built-in translation units (and so their
  // self-registering statics) in any binary that reaches the registry.
  static ProcedureRegistry* registry = [] {
    (void)ForceLinkBuiltinProcedures();  // Link-time effect only.
    return new ProcedureRegistry();
  }();
  return *registry;
}

void ProcedureRegistry::Register(DecisionProcedure id,
                                 std::unique_ptr<const DecisionProcedureImpl> impl) {
  // `id` is redundant with `impl->id()` at runtime; the macro spells it out
  // for the linter's enum/registration drift check. Keep them honest here.
  if (impl == nullptr || impl->id() != id) return;
  MutexLock lock(&mu_);
  for (const auto& p : procedures_) {
    if (p->id() == id) return;  // First registration wins.
  }
  procedures_.push_back(std::move(impl));
}

std::vector<const DecisionProcedureImpl*> ProcedureRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<const DecisionProcedureImpl*> out;
  out.reserve(procedures_.size());
  for (const auto& p : procedures_) out.push_back(p.get());
  return out;
}

const DecisionProcedureImpl* ProcedureRegistry::Find(DecisionProcedure id) const {
  MutexLock lock(&mu_);
  for (const auto& p : procedures_) {
    if (p->id() == id) return p.get();
  }
  return nullptr;
}

bool RegisterDecisionProcedure(DecisionProcedure id,
                               std::unique_ptr<const DecisionProcedureImpl> impl) {
  ProcedureRegistry::Global().Register(id, std::move(impl));
  return true;
}

}  // namespace diffc
