#include <memory>

#include "engine/procedures/procedure.h"

namespace diffc {

/// Triviality (Definition 3.1): `L(X, Y) = ∅`, every function satisfies
/// the goal. Zero-cost, so the planner runs it before the first deadline
/// sample — an O(1) certain answer beats a DeadlineExceeded even when the
/// batch is already over budget.
class TrivialProcedure : public DecisionProcedureImpl {
 public:
  DecisionProcedure id() const override { return DecisionProcedure::kTrivial; }
  const char* name() const override { return "trivial"; }

  Applicability CanDecide(const PreparedPremises& /*premises*/,
                          const ProcedureQuery& query) const override {
    return query.goal->IsTrivial() ? Applicability::kYes : Applicability::kNo;
  }

  double EstimateCost(const PreparedPremises& /*premises*/,
                      const ProcedureQuery& /*query*/) const override {
    return 0.0;
  }

  Result<ImplicationOutcome> Decide(const PreparedPremises& /*premises*/,
                                    const ProcedureQuery& /*query*/,
                                    ProcedureContext* /*ctx*/) const override {
    ImplicationOutcome out;
    out.SetImplied();
    return out;
  }
};

DIFFC_REGISTER_PROCEDURE(kTrivial, TrivialProcedure)

}  // namespace diffc
