#ifndef DIFFC_ENGINE_PROCEDURES_PROCEDURE_H_
#define DIFFC_ENGINE_PROCEDURES_PROCEDURE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/constraint.h"
#include "core/implication.h"
#include "engine/engine_options.h"
#include "engine/prepared_premises.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffc {

/// One implication query against a prepared premise set.
struct ProcedureQuery {
  int n = 0;
  const DifferentialConstraint* goal = nullptr;
};

/// How a procedure relates to a query, per `DecisionProcedureImpl::CanDecide`.
enum class Applicability {
  /// The procedure cannot run on this (premises, query) pair.
  kNo = 0,
  /// The procedure can run; the planner schedules it by estimated cost.
  kYes,
  /// The procedure can run, but only as a fallback: the planner schedules
  /// it after every `kYes` procedure and runs it only when a prior
  /// procedure exhausted a resource budget (the exhaustive enumerator
  /// backing up a budget-stopped SAT search).
  kFallback,
};

/// Solver budgets of one attempt, doubled per escalation retry.
struct ProcedureBudgets {
  std::uint64_t max_decisions = 0;
  std::size_t witness_max_results = 0;
};

/// Mutable per-attempt state handed to `Decide`: the engine options and
/// budgets in force, the cooperative stop handle, the tracer (never null;
/// disabled when tracing is off), and the query stats the procedure
/// annotates (cache flags, solver counters).
struct ProcedureContext {
  const EngineOptions* options = nullptr;
  ProcedureBudgets budgets;
  StopCheck* stop = nullptr;
  obs::Tracer* tracer = nullptr;
  QueryStats* stats = nullptr;
  /// True iff the prepared artifact came out of the process-wide
  /// prepared-premises cache (for `QueryStats::premise_cache_hit`).
  bool prepared_from_cache = false;
};

/// A first-class decision procedure: one strategy for deciding
/// `premises |= goal`, pluggable into the `QueryPlanner`.
///
/// Contract for `Decide`:
///   - a conclusive answer returns OK with verdict kImplied / kNotImplied;
///   - an *inconclusive* pass (the procedure ran but could not settle the
///     query, e.g. an interval cover needing several premises) returns OK
///     with verdict kUnknown — the planner moves to the next procedure;
///   - ResourceExhausted reports a blown budget — the planner records it
///     and continues (enabling `Applicability::kFallback` procedures);
///   - DeadlineExceeded / Cancelled from the stop handle, and any other
///     error, terminate the query with that status.
///
/// Implementations must be stateless (or internally synchronized): one
/// instance serves every engine and thread in the process.
class DecisionProcedureImpl {
 public:
  virtual ~DecisionProcedureImpl() = default;

  /// The enum value this implementation decides for.
  virtual DecisionProcedure id() const = 0;

  /// Stable name; must equal `DecisionProcedureName(id())`.
  virtual const char* name() const = 0;

  /// Whether (and how) the procedure applies to this query.
  virtual Applicability CanDecide(const PreparedPremises& premises,
                                  const ProcedureQuery& query) const = 0;

  /// Estimated cost in abstract work units; the planner orders applicable
  /// procedures by ascending estimate. Zero means "free" (the planner runs
  /// zero-cost procedures before its first deadline sample, so an O(1)
  /// certain answer beats a DeadlineExceeded).
  virtual double EstimateCost(const PreparedPremises& premises,
                              const ProcedureQuery& query) const = 0;

  /// Runs the procedure (see the class contract above).
  virtual Result<ImplicationOutcome> Decide(const PreparedPremises& premises,
                                            const ProcedureQuery& query,
                                            ProcedureContext* ctx) const = 0;
};

/// The process-wide procedure registry. Registration happens during static
/// initialization (via `DIFFC_REGISTER_PROCEDURE`); lookups snapshot the
/// table, so engines take no lock per query.
class ProcedureRegistry {
 public:
  static ProcedureRegistry& Global();

  /// Registers `impl` for `id`. Called by the registration macro; safe
  /// during static initialization.
  void Register(DecisionProcedure id, std::unique_ptr<const DecisionProcedureImpl> impl)
      EXCLUDES(mu_);

  /// The registered procedures, in registration order (unspecified across
  /// translation units; the planner orders by cost, not registration).
  std::vector<const DecisionProcedureImpl*> Snapshot() const EXCLUDES(mu_);

  /// The procedure registered for `id`, or null.
  const DecisionProcedureImpl* Find(DecisionProcedure id) const EXCLUDES(mu_);

 private:
  ProcedureRegistry() = default;

  mutable Mutex mu_;
  std::vector<std::unique_ptr<const DecisionProcedureImpl>> procedures_ GUARDED_BY(mu_);
};

/// Registration hook behind `DIFFC_REGISTER_PROCEDURE`; returns true so it
/// can initialize a namespace-scope constant.
bool RegisterDecisionProcedure(DecisionProcedure id,
                               std::unique_ptr<const DecisionProcedureImpl> impl);

/// Forces the linker to keep the built-in procedure translation units (a
/// static library drops unreferenced objects, self-registering statics
/// included); referenced by `ProcedureRegistry::Global`. Returns the
/// number of anchored units.
int ForceLinkBuiltinProcedures();

/// Self-registers a `DecisionProcedureImpl` for `enum_value` (a bare
/// `DecisionProcedure` enumerator, e.g. `kSat` — spelled out so the
/// project linter can check enum/registration drift) and emits the
/// force-link anchor `registry.cc` references for built-in units. Use at
/// namespace `diffc` scope.
#define DIFFC_REGISTER_PROCEDURE(enum_value, ClassName)                            \
  int ForceLinkProcedure_##ClassName() { return 0; }                               \
  namespace {                                                                      \
  [[maybe_unused]] const bool registered_##ClassName = RegisterDecisionProcedure(  \
      DecisionProcedure::enum_value, std::make_unique<ClassName>());               \
  }

}  // namespace diffc

#endif  // DIFFC_ENGINE_PROCEDURES_PROCEDURE_H_
