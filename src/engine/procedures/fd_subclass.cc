#include <memory>

#include "engine/procedures/procedure.h"

namespace diffc {

/// The polynomial FD subclass (singleton right-hand sides): attribute-set
/// closure over the prepared `FdPremiseIndex`, O(|C|^2) set operations.
/// Complete on its subclass, so the planner treats its answer as terminal.
class FdSubclassProcedure : public DecisionProcedureImpl {
 public:
  DecisionProcedure id() const override { return DecisionProcedure::kFdSubclass; }
  const char* name() const override { return "fd-subclass"; }

  Applicability CanDecide(const PreparedPremises& premises,
                          const ProcedureQuery& query) const override {
    return premises.fd_index().eligible && query.goal->rhs().size() == 1
               ? Applicability::kYes
               : Applicability::kNo;
  }

  double EstimateCost(const PreparedPremises& premises,
                      const ProcedureQuery& /*query*/) const override {
    // Closure is at worst |C| passes over |C| premises. The base constant
    // pins the cross-procedure tier (after trivial, before interval-cover)
    // for any realistic premise count; the size term orders instances
    // within the tier.
    const double c = static_cast<double>(premises.constraints().size());
    return 1.0 + 1e-6 * c * c;
  }

  Result<ImplicationOutcome> Decide(const PreparedPremises& premises,
                                    const ProcedureQuery& query,
                                    ProcedureContext* /*ctx*/) const override {
    return CheckImplicationFdIndexed(query.n, premises.fd_index(), *query.goal);
  }
};

DIFFC_REGISTER_PROCEDURE(kFdSubclass, FdSubclassProcedure)

}  // namespace diffc
