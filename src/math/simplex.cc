#include "math/simplex.h"

namespace diffc {

namespace {

// Dense simplex tableau. Columns: the problem's variables, then one slack
// or surplus per inequality, then one artificial per >=/=-row (and per
// <=-row whose normalized rhs required one). `basis[i]` is the column
// basic in row i.
class Tableau {
 public:
  Tableau(int num_columns, int num_rows)
      : num_columns_(num_columns),
        rows_(num_rows, std::vector<Rational>(num_columns)),
        rhs_(num_rows),
        basis_(num_rows, -1) {}

  int num_columns() const { return num_columns_; }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  Rational& at(int i, int j) { return rows_[i][j]; }
  const Rational& at(int i, int j) const { return rows_[i][j]; }
  Rational& rhs(int i) { return rhs_[i]; }
  const Rational& rhs(int i) const { return rhs_[i]; }
  int basis(int i) const { return basis_[i]; }
  void set_basis(int i, int col) { basis_[i] = col; }

  // Pivots on (row, col): makes column `col` basic in row `row` and
  // eliminates it from all other rows and from the reduced-cost row.
  void Pivot(int row, int col, std::vector<Rational>& reduced, Rational& value) {
    const Rational pivot = rows_[row][col];
    for (Rational& v : rows_[row]) v /= pivot;
    rhs_[row] /= pivot;
    for (int i = 0; i < num_rows(); ++i) {
      if (i == row || rows_[i][col].IsZero()) continue;
      const Rational factor = rows_[i][col];
      for (int j = 0; j < num_columns_; ++j) {
        rows_[i][j] -= factor * rows_[row][j];
      }
      rhs_[i] -= factor * rhs_[row];
    }
    if (!reduced[col].IsZero()) {
      const Rational factor = reduced[col];
      for (int j = 0; j < num_columns_; ++j) {
        reduced[j] -= factor * rows_[row][j];
      }
      value += factor * rhs_[row];
    }
    basis_[row] = col;
  }

 private:
  int num_columns_;
  std::vector<std::vector<Rational>> rows_;
  std::vector<Rational> rhs_;
  std::vector<int> basis_;
};

// Reduced costs for objective `c` given the current basis:
// reduced[j] = c[j] - Σ_i c[basis(i)]·T[i][j]; value = Σ_i c[basis(i)]·rhs(i).
void ComputeReducedCosts(const Tableau& t, const std::vector<Rational>& c,
                         std::vector<Rational>& reduced, Rational& value) {
  reduced = c;
  value = Rational(0);
  for (int i = 0; i < t.num_rows(); ++i) {
    const Rational& cb = c[t.basis(i)];
    if (cb.IsZero()) continue;
    for (int j = 0; j < t.num_columns(); ++j) {
      reduced[j] -= cb * t.at(i, j);
    }
    value += cb * t.rhs(i);
  }
}

// True iff any tableau cell, rhs, reduced cost or the objective value is
// the Rational overflow poison. Overflow is sticky through pivots, so one
// scan at the end of each simplex phase detects overflow anywhere inside.
bool AnyOverflow(const Tableau& t, const std::vector<Rational>& reduced,
                 const Rational& value) {
  if (value.Overflowed()) return true;
  for (const Rational& r : reduced) {
    if (r.Overflowed()) return true;
  }
  for (int i = 0; i < t.num_rows(); ++i) {
    if (t.rhs(i).Overflowed()) return true;
    for (int j = 0; j < t.num_columns(); ++j) {
      if (t.at(i, j).Overflowed()) return true;
    }
  }
  return false;
}

// Runs the primal simplex loop (maximization) with Bland's rule.
// `enterable[j]` bars columns (artificials in phase 2). Returns kOptimal
// or kUnbounded; ResourceExhausted past the pivot budget.
Result<LpOutcome> RunSimplex(Tableau& t, std::vector<Rational>& reduced, Rational& value,
                             const std::vector<bool>& enterable, std::size_t max_pivots,
                             std::size_t& pivots_used) {
  while (true) {
    // Bland: entering column = smallest index with positive reduced cost.
    int entering = -1;
    for (int j = 0; j < t.num_columns(); ++j) {
      if (enterable[j] && reduced[j] > Rational(0)) {
        entering = j;
        break;
      }
    }
    if (entering == -1) return LpOutcome::kOptimal;

    // Ratio test; Bland tie-break on the smallest basic variable index.
    int leaving_row = -1;
    Rational best_ratio;
    for (int i = 0; i < t.num_rows(); ++i) {
      if (!(t.at(i, entering) > Rational(0))) continue;
      Rational ratio = t.rhs(i) / t.at(i, entering);
      if (leaving_row == -1 || ratio < best_ratio ||
          (ratio == best_ratio && t.basis(i) < t.basis(leaving_row))) {
        leaving_row = i;
        best_ratio = ratio;
      }
    }
    if (leaving_row == -1) return LpOutcome::kUnbounded;

    if (++pivots_used > max_pivots) {
      return Status::ResourceExhausted("simplex pivot budget exceeded");
    }
    t.Pivot(leaving_row, entering, reduced, value);
  }
}

}  // namespace

Result<LpSolution> SolveLp(const LpProblem& problem, std::size_t max_pivots) {
  const int n = problem.num_vars;
  if (n < 0) return Status::InvalidArgument("negative variable count");
  if (static_cast<int>(problem.objective.size()) != n) {
    return Status::InvalidArgument("objective size does not match num_vars");
  }
  for (const LpConstraint& c : problem.constraints) {
    if (static_cast<int>(c.coeffs.size()) != n) {
      return Status::InvalidArgument("constraint arity does not match num_vars");
    }
  }
  const int m = static_cast<int>(problem.constraints.size());

  // Normalize rows to nonnegative rhs and decide slack/artificial needs.
  // After normalization: <= rows get a slack (basic), >= rows get a
  // surplus plus an artificial (basic), = rows get an artificial (basic).
  struct RowPlan {
    std::vector<Rational> coeffs;
    LpSense sense;
    Rational rhs;
  };
  std::vector<RowPlan> rows;
  rows.reserve(m);
  int num_slacks = 0, num_artificials = 0;
  for (const LpConstraint& c : problem.constraints) {
    RowPlan row{c.coeffs, c.sense, c.rhs};
    if (row.rhs < Rational(0)) {
      for (Rational& v : row.coeffs) v = -v;
      row.rhs = -row.rhs;
      if (row.sense == LpSense::kLe) {
        row.sense = LpSense::kGe;
      } else if (row.sense == LpSense::kGe) {
        row.sense = LpSense::kLe;
      }
    }
    if (row.sense != LpSense::kEq) ++num_slacks;
    if (row.sense != LpSense::kLe) ++num_artificials;
    rows.push_back(std::move(row));
  }

  const int total_cols = n + num_slacks + num_artificials;
  Tableau t(total_cols, m);
  std::vector<bool> is_artificial(total_cols, false);
  int slack_cursor = n;
  int artificial_cursor = n + num_slacks;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) t.at(i, j) = rows[i].coeffs[j];
    t.rhs(i) = rows[i].rhs;
    switch (rows[i].sense) {
      case LpSense::kLe:
        t.at(i, slack_cursor) = Rational(1);
        t.set_basis(i, slack_cursor++);
        break;
      case LpSense::kGe:
        t.at(i, slack_cursor++) = Rational(-1);
        t.at(i, artificial_cursor) = Rational(1);
        is_artificial[artificial_cursor] = true;
        t.set_basis(i, artificial_cursor++);
        break;
      case LpSense::kEq:
        t.at(i, artificial_cursor) = Rational(1);
        is_artificial[artificial_cursor] = true;
        t.set_basis(i, artificial_cursor++);
        break;
    }
  }
  // The slack column of a >=-row sits before later rows' columns; the
  // cursor bookkeeping above already placed each -1 surplus correctly.

  std::size_t pivots_used = 0;

  // Phase 1: maximize -(sum of artificials); feasible iff optimum is 0.
  if (num_artificials > 0) {
    std::vector<Rational> phase1_costs(total_cols);
    for (int j = 0; j < total_cols; ++j) {
      if (is_artificial[j]) phase1_costs[j] = Rational(-1);
    }
    std::vector<Rational> reduced;
    Rational value;
    ComputeReducedCosts(t, phase1_costs, reduced, value);
    std::vector<bool> enterable(total_cols, true);
    Result<LpOutcome> phase1 =
        RunSimplex(t, reduced, value, enterable, max_pivots, pivots_used);
    if (!phase1.ok()) return phase1.status();
    if (AnyOverflow(t, reduced, value)) {
      return Status::OutOfRange("rational overflow in simplex phase 1");
    }
    if (*phase1 == LpOutcome::kUnbounded) {
      return Status::Internal("phase-1 objective cannot be unbounded");
    }
    if (value != Rational(0)) {
      LpSolution solution;
      solution.outcome = LpOutcome::kInfeasible;
      return solution;
    }
    // Drive any artificial still basic (at level 0) out of the basis when
    // a pivotable non-artificial column exists; otherwise the row is
    // redundant and harmless (its artificial stays basic at 0 and is
    // barred from re-entering).
    for (int i = 0; i < t.num_rows(); ++i) {
      if (!is_artificial[t.basis(i)]) continue;
      for (int j = 0; j < total_cols; ++j) {
        if (!is_artificial[j] && !t.at(i, j).IsZero()) {
          t.Pivot(i, j, reduced, value);
          break;
        }
      }
    }
  }

  // Phase 2: the real objective; artificial columns barred.
  std::vector<Rational> phase2_costs(total_cols);
  for (int j = 0; j < n; ++j) phase2_costs[j] = problem.objective[j];
  std::vector<Rational> reduced;
  Rational value;
  ComputeReducedCosts(t, phase2_costs, reduced, value);
  std::vector<bool> enterable(total_cols, true);
  for (int j = 0; j < total_cols; ++j) {
    if (is_artificial[j]) enterable[j] = false;
  }
  Result<LpOutcome> phase2 =
      RunSimplex(t, reduced, value, enterable, max_pivots, pivots_used);
  if (!phase2.ok()) return phase2.status();
  if (AnyOverflow(t, reduced, value)) {
    return Status::OutOfRange("rational overflow in simplex phase 2");
  }

  LpSolution solution;
  solution.outcome = *phase2;
  if (*phase2 == LpOutcome::kOptimal) {
    solution.objective_value = value;
    solution.values.assign(n, Rational(0));
    for (int i = 0; i < t.num_rows(); ++i) {
      if (t.basis(i) < n) solution.values[t.basis(i)] = t.rhs(i);
    }
  }
  return solution;
}

}  // namespace diffc
