#ifndef DIFFC_MATH_GAUSS_H_
#define DIFFC_MATH_GAUSS_H_

#include <optional>
#include <vector>

#include "util/rational.h"

namespace diffc {

/// Exact rational linear algebra: row reduction, rank, row-space
/// membership, and linear-system solving. Substrate for the
/// differential-semantics implication checker (`core/differential_
/// semantics.h`), where constraint satisfaction sets are hyperplanes and
/// implication is row-space membership.

/// A dense rational matrix as a list of equal-length rows.
using RationalMatrix = std::vector<std::vector<Rational>>;

/// True iff any entry of `m` is the `Rational` overflow value. Overflow is
/// sticky through row reduction, so callers can detect mid-computation
/// overflow by checking the reduced matrix (or the returned solution) once.
bool MatrixOverflowed(const RationalMatrix& m);

/// Reduces `m` in place to reduced row-echelon form; returns the rank.
/// Zero rows sink to the bottom. Rows may be empty (rank 0).
int RowReduce(RationalMatrix& m);

/// True iff `v` lies in the row space of `m` (which need not be reduced).
bool InRowSpace(RationalMatrix m, const std::vector<Rational>& v);

/// Solves `A x = b` exactly. Returns a particular solution (free
/// variables set to 0), or nullopt when inconsistent. `A` is given by
/// rows; all rows and `b` must agree in size.
std::optional<std::vector<Rational>> SolveLinearSystem(const RationalMatrix& a,
                                                       const std::vector<Rational>& b);

/// A vector in the null space of `A` with `g · x = 1`, or nullopt when
/// none exists (i.e. when `g` lies in the row space of `A`). This is the
/// counterexample constructor of the differential-semantics checker.
std::optional<std::vector<Rational>> NullSpaceWitness(const RationalMatrix& a,
                                                      const std::vector<Rational>& g);

}  // namespace diffc

#endif  // DIFFC_MATH_GAUSS_H_
