#include "math/gauss.h"

namespace diffc {

bool MatrixOverflowed(const RationalMatrix& m) {
  for (const std::vector<Rational>& row : m) {
    for (const Rational& v : row) {
      if (v.Overflowed()) return true;
    }
  }
  return false;
}

int RowReduce(RationalMatrix& m) {
  if (m.empty()) return 0;
  const std::size_t cols = m[0].size();
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols && pivot_row < m.size(); ++col) {
    // Find a pivot in this column.
    std::size_t found = pivot_row;
    while (found < m.size() && m[found][col].IsZero()) ++found;
    if (found == m.size()) continue;
    std::swap(m[pivot_row], m[found]);
    // Normalize the pivot row.
    const Rational pivot = m[pivot_row][col];
    for (Rational& v : m[pivot_row]) v /= pivot;
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < m.size(); ++r) {
      if (r == pivot_row || m[r][col].IsZero()) continue;
      const Rational factor = m[r][col];
      for (std::size_t c = col; c < cols; ++c) {
        m[r][c] -= factor * m[pivot_row][c];
      }
    }
    ++pivot_row;
  }
  return static_cast<int>(pivot_row);
}

bool InRowSpace(RationalMatrix m, const std::vector<Rational>& v) {
  const int rank_without = RowReduce(m);
  m.push_back(v);
  const int rank_with = RowReduce(m);
  return rank_with == rank_without;
}

std::optional<std::vector<Rational>> SolveLinearSystem(const RationalMatrix& a,
                                                       const std::vector<Rational>& b) {
  const std::size_t rows = a.size();
  const std::size_t cols = rows == 0 ? 0 : a[0].size();
  // Augmented matrix [A | b].
  RationalMatrix aug = a;
  for (std::size_t r = 0; r < rows; ++r) aug[r].push_back(b[r]);
  RowReduce(aug);
  // Inconsistency: a pivot in the last column.
  std::vector<int> pivot_col_of_row(rows, -1);
  for (std::size_t r = 0; r < rows; ++r) {
    int pivot = -1;
    for (std::size_t c = 0; c <= cols; ++c) {
      if (!aug[r][c].IsZero()) {
        pivot = static_cast<int>(c);
        break;
      }
    }
    if (pivot == static_cast<int>(cols)) return std::nullopt;
    pivot_col_of_row[r] = pivot;
  }
  // Back-substitute with free variables at 0: x[pivot] = rhs (the reduced
  // form has unit pivots and zeros above/below).
  std::vector<Rational> x(cols, Rational(0));
  for (std::size_t r = 0; r < rows; ++r) {
    if (pivot_col_of_row[r] >= 0) {
      // Account for free columns: x[pivot] = rhs - Σ_{free} a*0 = rhs.
      x[pivot_col_of_row[r]] = aug[r][cols];
    }
  }
  return x;
}

std::optional<std::vector<Rational>> NullSpaceWitness(const RationalMatrix& a,
                                                      const std::vector<Rational>& g) {
  // Solve [A; g] x = [0; 1].
  RationalMatrix system = a;
  system.push_back(g);
  std::vector<Rational> rhs(a.size(), Rational(0));
  rhs.push_back(Rational(1));
  return SolveLinearSystem(system, rhs);
}

}  // namespace diffc
