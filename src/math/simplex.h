#ifndef DIFFC_MATH_SIMPLEX_H_
#define DIFFC_MATH_SIMPLEX_H_

#include <cstddef>
#include <vector>

#include "util/rational.h"
#include "util/status.h"

namespace diffc {

/// An exact linear-programming solver over rationals: two-phase primal
/// simplex with Bland's anti-cycling rule, dense tableau.
///
/// Substrate for the frequency-constraint module (`fis/frequency.h`): the
/// paper's closing paragraph proposes constraints that pin density values
/// and relates them to the support-interval constraints of Calders and
/// Paredaens; deciding their (rational) consistency and entailed support
/// bounds is linear programming over the density variables, and those
/// questions demand exact zero tests — hence rationals, not doubles.

/// Constraint sense.
enum class LpSense { kLe, kGe, kEq };

/// One linear constraint `coeffs · x (sense) rhs`. `coeffs` is indexed by
/// variable and must have exactly `num_vars` entries.
struct LpConstraint {
  std::vector<Rational> coeffs;
  LpSense sense = LpSense::kLe;
  Rational rhs;
};

/// Maximize `objective · x` subject to the constraints and `x >= 0`.
struct LpProblem {
  int num_vars = 0;
  std::vector<LpConstraint> constraints;
  std::vector<Rational> objective;
};

/// Outcome class of a solve.
enum class LpOutcome { kOptimal, kInfeasible, kUnbounded };

/// Solution: when optimal, `values` is an optimal vertex and
/// `objective_value` its objective.
struct LpSolution {
  LpOutcome outcome = LpOutcome::kInfeasible;
  Rational objective_value;
  std::vector<Rational> values;
};

/// Solves `problem` exactly. Returns InvalidArgument on malformed input
/// and ResourceExhausted past `max_pivots` (Bland's rule terminates, so
/// the cap is a backstop, not a correctness device).
Result<LpSolution> SolveLp(const LpProblem& problem, std::size_t max_pivots = 200000);

}  // namespace diffc

#endif  // DIFFC_MATH_SIMPLEX_H_
