#include "core/counterexample.h"

#include "lattice/decomposition.h"

namespace diffc {

Result<SetFunction<std::int64_t>> CounterexampleFunction(int n, const ItemSet& u) {
  Result<SetFunction<std::int64_t>> f = SetFunction<std::int64_t>::Make(n);
  if (!f.ok()) return f.status();
  ForEachSubset(u.bits(), [&](Mask w) { f->at(w) = 1; });
  return f;
}

bool IsValidCounterexample(int n, const ConstraintSet& premises,
                           const DifferentialConstraint& goal, const ItemSet& u) {
  if (!InDecomposition(n, goal.lhs(), goal.rhs(), u)) return false;
  for (const DifferentialConstraint& p : premises) {
    if (InDecomposition(n, p.lhs(), p.rhs(), u)) return false;
  }
  return true;
}

}  // namespace diffc
