#ifndef DIFFC_CORE_DIFFERENTIAL_SEMANTICS_H_
#define DIFFC_CORE_DIFFERENTIAL_SEMANTICS_H_

#include <optional>
#include <vector>

#include "core/constraint.h"
#include "lattice/mobius.h"
#include "util/rational.h"
#include "util/status.h"

namespace diffc {

/// The *differential-based* semantics of Remark 3.6 (the semantics of the
/// authors' earlier work [24, 25, 26]): `f` satisfies `X -> Y` when
/// `D^Y_f(X) = 0` — a single linear equation on `f`, weaker than the
/// density-based semantics in general, equivalent for frequency
/// functions.
///
/// Because each constraint's satisfaction set is a *hyperplane* of
/// `F(S) = R^(2^n)`, the implication problem over all of `F(S)` under
/// this semantics is exact linear algebra: `C` implies `X -> Y` iff the
/// goal's functional lies in the span of the premises' functionals —
/// decidable in time polynomial in `2^n · |C|` (contrast with the
/// coNP-complete density semantics). The paper notes the relationship
/// between the two semantics "is not yet well-understood"; experiment E11
/// probes it empirically with this checker.

/// The coefficient vector of the functional `f ↦ D^Y_f(X)` over the
/// standard basis of `F(S)`: entry `U` is the coefficient of `f(U)`,
/// namely `Σ_{Z ⊆ Y, X ∪ ∪Z = U} (-1)^{|Z|}`. Requires
/// `n <= max_bits` (vectors have 2^n entries).
Result<std::vector<Rational>> DifferentialFunctional(int n, const DifferentialConstraint& c,
                                                     int max_bits = 12);

/// Outcome of a differential-semantics implication query.
struct DifferentialImplicationOutcome {
  bool implied = false;
  /// When not implied: a function (as dense rational values) satisfying
  /// every premise under the differential semantics with
  /// `D^Y_goal(X_goal) = 1`.
  std::optional<SetFunction<Rational>> counterexample;
};

/// Decides `premises |= goal` over `F(S)` under the differential-based
/// semantics: row-space membership of the goal functional, with a
/// nullspace witness as counterexample otherwise.
Result<DifferentialImplicationOutcome> CheckImplicationDifferentialSemantics(
    int n, const ConstraintSet& premises, const DifferentialConstraint& goal,
    int max_bits = 12);

}  // namespace diffc

#endif  // DIFFC_CORE_DIFFERENTIAL_SEMANTICS_H_
