#ifndef DIFFC_CORE_CLOSURE_H_
#define DIFFC_CORE_CLOSURE_H_

#include <vector>

#include "core/constraint.h"
#include "util/status.h"

namespace diffc {

/// The closure lattice `L(C) = ∪_{X'->Y' ∈ C} L(X', Y')` (Theorem 3.5).
/// Everything about a constraint set — what it implies, equivalence,
/// redundancy — is determined by this set.

/// True iff `u ∈ L(C)`. O(|C| · |Y|) membership tests.
bool InClosureLattice(const ConstraintSet& c, const ItemSet& u);

/// All elements of `L(C)` over an `n`-attribute universe, sorted by mask.
/// Exhaustive in 2^n; ResourceExhausted when `n > max_bits`.
Result<std::vector<ItemSet>> ClosureLattice(int n, const ConstraintSet& c,
                                            int max_bits = 24);

/// True iff `a` and `b` imply each other, i.e. `L(a) = L(b)`. Decided with
/// the SAT-based checker, one query per constraint.
Result<bool> AreEquivalent(int n, const ConstraintSet& a, const ConstraintSet& b);

/// The constraints of `c` that are implied by the others (safe to drop).
Result<std::vector<int>> RedundantConstraints(int n, const ConstraintSet& c);

/// A minimal cover: greedily removes redundant constraints until none
/// remains. The result is equivalent to `c` and has no redundant member
/// (not necessarily of globally minimum size).
Result<ConstraintSet> MinimalCover(int n, const ConstraintSet& c);

}  // namespace diffc

#endif  // DIFFC_CORE_CLOSURE_H_
