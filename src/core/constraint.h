#ifndef DIFFC_CORE_CONSTRAINT_H_
#define DIFFC_CORE_CONSTRAINT_H_

#include <string>
#include <vector>

#include "lattice/set_family.h"

namespace diffc {

/// A differential constraint `X -> Y` over the universe `S`
/// (Definition 3.1): `X ⊆ S` and `Y` a set of subsets of `S`.
///
/// A function `f ∈ F(S)` satisfies `X -> Y` iff its density vanishes on the
/// whole lattice decomposition: `d_f(U) = 0` for every `U ∈ L(X, Y)`
/// (the density-based semantics; see `core/function_ops.h`).
class DifferentialConstraint {
 public:
  /// The constraint `lhs -> rhs`.
  DifferentialConstraint(ItemSet lhs, SetFamily rhs)
      : lhs_(lhs), rhs_(std::move(rhs)) {}

  /// The left-hand side `X`.
  const ItemSet& lhs() const { return lhs_; }
  /// The right-hand family `Y`.
  const SetFamily& rhs() const { return rhs_; }

  /// True iff some member `Y ∈ Y` has `Y ⊆ X` (Definition 3.1 as corrected
  /// in DESIGN.md §2) — exactly when `L(X, Y) = ∅`, so the constraint is
  /// satisfied by every function.
  bool IsTrivial() const { return rhs_.SomeMemberSubsetOf(lhs_); }

  /// True iff this is `atom(U)` for some `U` in an `n`-attribute universe:
  /// `U -> {{z} | z ∈ S∖U}` (Section 4.2).
  bool IsAtomic(int n) const {
    return rhs_ == SetFamily::Singletons(lhs_.ComplementIn(n));
  }

  /// Renders "X -> {Y1, Y2, ...}".
  std::string ToString(const Universe& u) const {
    return lhs_.ToString(u) + " -> " + rhs_.ToString(u);
  }

  friend bool operator==(const DifferentialConstraint& a, const DifferentialConstraint& b) {
    return a.lhs_ == b.lhs_ && a.rhs_ == b.rhs_;
  }
  friend bool operator!=(const DifferentialConstraint& a, const DifferentialConstraint& b) {
    return !(a == b);
  }
  friend bool operator<(const DifferentialConstraint& a, const DifferentialConstraint& b) {
    if (a.lhs_ != b.lhs_) return a.lhs_ < b.lhs_;
    return a.rhs_ < b.rhs_;
  }

 private:
  ItemSet lhs_;
  SetFamily rhs_;
};

/// A set of differential constraints — the `C` of an implication problem.
using ConstraintSet = std::vector<DifferentialConstraint>;

/// The atomic constraint `atom(U) = U -> {{z} | z ∈ S∖U}` (Section 4.2),
/// whose lattice decomposition is exactly `{U}`.
DifferentialConstraint AtomConstraint(int n, const ItemSet& u);

/// Renders a constraint set as "c1; c2; ...".
std::string ConstraintSetToString(const ConstraintSet& c, const Universe& u);

}  // namespace diffc

#endif  // DIFFC_CORE_CONSTRAINT_H_
