#ifndef DIFFC_CORE_ARMSTRONG_H_
#define DIFFC_CORE_ARMSTRONG_H_

#include <cstdint>

#include "core/constraint.h"
#include "fis/basket.h"
#include "lattice/mobius.h"
#include "util/status.h"

namespace diffc {

/// Armstrong models for differential constraints.
///
/// An *Armstrong function* for a constraint set `C` satisfies exactly the
/// constraints implied by `C`: it satisfies every member of `C*` and
/// violates everything else. By Theorem 3.5 such a function exists for
/// every `C` — put density 1 on every `U ∉ L(C)` and 0 on `L(C)`; a goal
/// is violated iff its lattice decomposition leaks outside `L(C)`, i.e.
/// iff it is not implied.
///
/// This mirrors Armstrong relations from functional-dependency theory and
/// gives a single reusable "worst-case witness" for a whole constraint
/// set: one model refutes every non-implied constraint at once.

/// The Armstrong function of `C` over `n` attributes: density 1 exactly
/// outside `L(C)`. Requires `n <= kMaxSetFunctionBits`.
Result<SetFunction<std::int64_t>> ArmstrongFunction(int n, const ConstraintSet& c);

/// The Armstrong basket list of `C`: one basket per `U ∉ L(C)`. Its
/// support function is exactly `ArmstrongFunction(n, c)`, so the Armstrong
/// model also lives inside `support(S)` — the witness class of
/// Proposition 6.4. Exponential in `n` (there are up to 2^n baskets);
/// guarded by `max_bits`.
Result<BasketList> ArmstrongBaskets(int n, const ConstraintSet& c, int max_bits = 20);

/// True iff `f` is an Armstrong function for `C` over `n` attributes:
/// `d_f` vanishes on `L(C)` and nowhere else.
bool IsArmstrongFunction(const SetFunction<std::int64_t>& f, const ConstraintSet& c);

}  // namespace diffc

#endif  // DIFFC_CORE_ARMSTRONG_H_
