#include "core/differential_semantics.h"

#include "math/gauss.h"

namespace diffc {

Result<std::vector<Rational>> DifferentialFunctional(int n, const DifferentialConstraint& c,
                                                     int max_bits) {
  if (n > max_bits) {
    return Status::ResourceExhausted("differential functional over " + std::to_string(n) +
                                     " attributes");
  }
  std::vector<Rational> coeffs(std::size_t{1} << n, Rational(0));
  const int k = c.rhs().size();
  for (Mask z = 0; z < (Mask{1} << k); ++z) {
    Mask arg = c.lhs().bits();
    ForEachBit(z, [&](int j) { arg |= c.rhs().member(j).bits(); });
    coeffs[arg] += Popcount(z) % 2 == 0 ? Rational(1) : Rational(-1);
  }
  return coeffs;
}

Result<DifferentialImplicationOutcome> CheckImplicationDifferentialSemantics(
    int n, const ConstraintSet& premises, const DifferentialConstraint& goal,
    int max_bits) {
  Result<std::vector<Rational>> goal_functional = DifferentialFunctional(n, goal, max_bits);
  if (!goal_functional.ok()) return goal_functional.status();
  RationalMatrix premise_rows;
  premise_rows.reserve(premises.size());
  for (const DifferentialConstraint& p : premises) {
    Result<std::vector<Rational>> row = DifferentialFunctional(n, p, max_bits);
    if (!row.ok()) return row.status();
    premise_rows.push_back(*std::move(row));
  }

  DifferentialImplicationOutcome out;
  std::optional<std::vector<Rational>> witness =
      NullSpaceWitness(premise_rows, *goal_functional);
  out.implied = !witness.has_value();
  if (witness.has_value()) {
    for (const Rational& v : *witness) {
      if (v.Overflowed()) {
        return Status::OutOfRange("rational overflow in differential-semantics witness");
      }
    }
    Result<SetFunction<Rational>> f = SetFunction<Rational>::Make(n);
    if (!f.ok()) return f.status();
    for (Mask m = 0; m < f->size(); ++m) f->at(m) = (*witness)[m];
    out.counterexample = *std::move(f);
  }
  return out;
}

}  // namespace diffc
