#include "core/implication.h"

#include <iterator>

#include "lattice/decomposition.h"
#include "prop/cnf.h"
#include "prop/implication_constraint.h"
#include "util/failpoint.h"

namespace diffc {

bool InConstraintLattice(const ConstraintSet& premises, const ItemSet& u) {
  for (const DifferentialConstraint& p : premises) {
    if (p.lhs().IsSubsetOf(u) && !p.rhs().SomeMemberSubsetOf(u)) return true;
  }
  return false;
}

Result<ImplicationOutcome> CheckImplicationExhaustive(int n, const ConstraintSet& premises,
                                                      const DifferentialConstraint& goal,
                                                      int max_free_bits, StopCheck* stop) {
  const int free_bits = n - goal.lhs().size();
  if (free_bits > max_free_bits) {
    return Status::ResourceExhausted("exhaustive implication over " +
                                     std::to_string(free_bits) + " free attributes");
  }
  ImplicationOutcome out;
  out.SetImplied();
  // Manual superset walk (rather than ForEachSuperset) so a counterexample
  // or a fired stop condition breaks out without visiting the remaining
  // 2^free_bits - k supersets.
  const Mask fixed = goal.lhs().bits();
  const Mask free = FullMask(n) & ~fixed;
  Mask sub = free;
  while (true) {
    if (stop != nullptr) {
      Status s = stop->Check();
      if (!s.ok()) return s;
    }
    ItemSet u(fixed | sub);
    if (!goal.rhs().SomeMemberSubsetOf(u) && !InConstraintLattice(premises, u)) {
      out.SetNotImplied(u);
      break;
    }
    if (sub == 0) break;
    sub = (sub - 1) & free;
  }
  return out;
}

PremiseTranslation TranslatePremises(int n, const ConstraintSet& premises) {
  PremiseTranslation out;
  out.num_vars = n;
  // Each premise must not witness U: X' ⊄ U, or some member of Y' ⊆ U —
  // one clause block per premise (`TranslateImplicationConstraint`), with
  // auxiliary variables numbered consecutively across blocks.
  for (const DifferentialConstraint& p : premises) {
    prop::ConstraintClauseBlock block =
        prop::TranslateImplicationConstraint(p.lhs(), p.rhs(), out.num_vars + 1);
    out.num_vars += block.aux_vars;
    out.clauses.insert(out.clauses.end(), std::make_move_iterator(block.clauses.begin()),
                       std::make_move_iterator(block.clauses.end()));
  }
  return out;
}

Result<ImplicationOutcome> CheckImplicationSat(int n, const ConstraintSet& premises,
                                               const DifferentialConstraint& goal,
                                               prop::SolverStats* stats) {
  return CheckImplicationSatTranslated(n, TranslatePremises(n, premises), goal, stats);
}

Result<ImplicationOutcome> CheckImplicationSatTranslated(
    int n, const PremiseTranslation& translation, const DifferentialConstraint& goal,
    prop::SolverStats* stats, std::uint64_t max_decisions, StopCheck* stop) {
  if (DIFFC_FAILPOINT("cnf/translate")) {
    return Status::Internal("failpoint cnf/translate: CNF translation failed");
  }
  prop::Cnf cnf;
  cnf.num_vars = translation.num_vars;

  // U must contain the goal's left-hand side...
  ForEachBit(goal.lhs().bits(), [&](int a) { cnf.AddClause({a + 1}); });
  // ...and no goal member (so U ∈ L(X, Y)). An empty member yields the
  // empty clause: the goal is trivial and the CNF unsatisfiable, as wanted.
  for (const ItemSet& member : goal.rhs().members()) {
    prop::Clause clause;
    ForEachBit(member.bits(), [&](int y) { clause.push_back(-(y + 1)); });
    cnf.AddClause(std::move(clause));
  }
  // The (shared) premise clauses of Proposition 5.4.
  cnf.clauses.insert(cnf.clauses.end(), translation.clauses.begin(),
                     translation.clauses.end());

  prop::DpllSolver solver(max_decisions);
  solver.set_stop(stop);
  Result<prop::SatResult> sat = solver.Solve(cnf);
  if (stats != nullptr) *stats = solver.stats();
  if (!sat.ok()) return sat.status();

  ImplicationOutcome out;
  if (sat->satisfiable) {
    Mask u = 0;
    for (int i = 0; i < n; ++i) {
      if (sat->model[i]) u |= Mask{1} << i;
    }
    out.SetNotImplied(ItemSet(u));
  } else {
    out.SetImplied();
  }
  return out;
}

bool FdSubclassApplicable(const ConstraintSet& premises, const DifferentialConstraint& goal) {
  if (goal.rhs().size() != 1) return false;
  for (const DifferentialConstraint& p : premises) {
    if (p.rhs().size() != 1) return false;
  }
  return true;
}

FdPremiseIndex BuildFdPremiseIndex(const ConstraintSet& premises) {
  FdPremiseIndex index;
  for (const DifferentialConstraint& p : premises) {
    if (p.rhs().size() != 1) return index;  // eligible stays false.
  }
  index.eligible = true;
  index.fds.reserve(premises.size());
  for (const DifferentialConstraint& p : premises) {
    index.fds.emplace_back(p.lhs(), p.rhs().member(0));
  }
  return index;
}

ItemSet FdClosure(const FdPremiseIndex& index, ItemSet x) {
  // Attribute-set closure under the premises read as functional
  // dependencies X' -> Y'.
  ItemSet closure = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [lhs, rhs] : index.fds) {
      if (lhs.IsSubsetOf(closure) && !rhs.IsSubsetOf(closure)) {
        closure = closure.Union(rhs);
        changed = true;
      }
    }
  }
  return closure;
}

Result<ImplicationOutcome> CheckImplicationFdIndexed(int n, const FdPremiseIndex& index,
                                                     const DifferentialConstraint& goal) {
  // Unused: the FD closure works on attribute sets and never materializes
  // the universe; `n` is kept for signature parity with the other checkers.
  (void)n;
  if (!index.eligible || goal.rhs().size() != 1) {
    return Status::FailedPrecondition(
        "FD subclass requires single-member right-hand sides");
  }
  const ItemSet closure = FdClosure(index, goal.lhs());
  ImplicationOutcome out;
  if (goal.rhs().member(0).IsSubsetOf(closure)) {
    out.SetImplied();
  } else {
    out.SetNotImplied(closure);
  }
  return out;
}

Result<ImplicationOutcome> CheckImplicationFd(int n, const ConstraintSet& premises,
                                              const DifferentialConstraint& goal) {
  if (!FdSubclassApplicable(premises, goal)) {
    return Status::FailedPrecondition(
        "FD subclass requires single-member right-hand sides");
  }
  return CheckImplicationFdIndexed(n, BuildFdPremiseIndex(premises), goal);
}

Result<ImplicationOutcome> CheckImplication(int n, const ConstraintSet& premises,
                                            const DifferentialConstraint& goal) {
  if (goal.IsTrivial()) {
    ImplicationOutcome out;
    out.SetImplied();
    return out;
  }
  if (FdSubclassApplicable(premises, goal)) {
    return CheckImplicationFd(n, premises, goal);
  }
  return CheckImplicationSat(n, premises, goal);
}

ConstraintSet DnfTautologyReduction(const prop::DnfFormula& f) {
  ConstraintSet out;
  out.reserve(f.conjuncts.size());
  for (const prop::DnfConjunct& c : f.conjuncts) {
    std::vector<ItemSet> members;
    ForEachBit(c.neg, [&](int q) { members.push_back(ItemSet::Singleton(q)); });
    out.push_back(DifferentialConstraint(ItemSet(c.pos), SetFamily(std::move(members))));
  }
  return out;
}

DifferentialConstraint TautologyGoal() {
  return DifferentialConstraint(ItemSet(), SetFamily());
}

}  // namespace diffc
