#ifndef DIFFC_CORE_INFERENCE_H_
#define DIFFC_CORE_INFERENCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/constraint.h"
#include "util/status.h"

namespace diffc {

/// The inference rules of Figure 1, plus a pseudo-rule for citing a given
/// constraint.
enum class InferenceRule {
  kGiven,         ///< cite a constraint of `C`
  kTriviality,    ///< ⊢ X -> Y when some Y ∈ Y has Y ⊆ X
  kAugmentation,  ///< X -> Y ⊢ X∪Z -> Y
  kAddition,      ///< X -> Y ⊢ X -> Y∪{Z}
  kElimination,   ///< X -> Y∪{Z}, X∪Z -> Y ⊢ X -> Y
};

/// Name of a rule ("given", "triviality", ...).
const char* InferenceRuleName(InferenceRule rule);

/// One application of a rule inside a derivation.
struct ProofStep {
  InferenceRule rule;
  /// Indices of earlier steps used as premises (empty for kGiven and
  /// kTriviality).
  std::vector<int> premises;
  /// For kGiven: index into the given constraint set.
  int given_index = -1;
  /// The constraint this step derives.
  DifferentialConstraint conclusion;
};

/// A derivation `C ⊢ X -> Y` (Definition 4.1): a sequence of rule
/// applications whose last step concludes the derived constraint.
/// Derivations are data; `ValidateDerivation` checks every step against
/// the rule schemas, so machine-generated proofs are independently
/// verifiable.
class Derivation {
 public:
  /// The steps in order.
  const std::vector<ProofStep>& steps() const { return steps_; }
  /// Number of steps.
  int size() const { return static_cast<int>(steps_.size()); }
  /// The final conclusion. Requires a nonempty derivation.
  const DifferentialConstraint& conclusion() const { return steps_.back().conclusion; }

  /// Appends a step and returns its index.
  int AddStep(ProofStep step) {
    steps_.push_back(std::move(step));
    return static_cast<int>(steps_.size()) - 1;
  }

  /// Pretty-prints the proof, one numbered line per step.
  std::string ToString(const Universe& u) const;

 private:
  std::vector<ProofStep> steps_;
};

/// Rule-schema validation (exposed for tests and the Figure 1 benchmark).
bool IsValidTriviality(const DifferentialConstraint& conclusion);
bool IsValidAugmentation(const DifferentialConstraint& premise,
                         const DifferentialConstraint& conclusion);
bool IsValidAddition(const DifferentialConstraint& premise,
                     const DifferentialConstraint& conclusion);
bool IsValidElimination(const DifferentialConstraint& p1, const DifferentialConstraint& p2,
                        const DifferentialConstraint& conclusion);

/// Checks that every step of `d` is a correct application of its rule over
/// an `n`-attribute universe, with kGiven steps citing `givens`. Returns
/// the first violation found.
Status ValidateDerivation(int n, const ConstraintSet& givens, const Derivation& d);

/// Limits for the proof generator.
struct DeriveOptions {
  /// Upper bound on emitted steps (ResourceExhausted beyond).
  std::size_t max_steps = 1'000'000;
};

/// Removes steps the conclusion does not depend on (the generator's
/// memoization leaves unused intermediates behind) and renumbers premise
/// references. The result validates whenever the input does, concludes
/// the same constraint, and is never larger.
Derivation PruneDerivation(const Derivation& d);

/// Constructs an explicit derivation `givens ⊢ goal` using only the four
/// rules of Figure 1, following the completeness argument of Theorem 4.8:
///
///  1. for every needed `U ∈ L(goal)`, derive `atom(U)` from a premise
///     whose lattice decomposition contains `U` (augmentation, then member
///     narrowing via addition+triviality+elimination, then addition);
///  2. for every witness-set leaf `W` of the goal's right-hand family,
///     derive `X -> {{w}|w∈W}` by the elimination cascade of
///     Proposition 4.7;
///  3. reassemble `X -> Y` by the union-rule induction of Proposition 4.6,
///     with each union application expanded into base rules.
///
/// Returns NotFound (with no derivation) when `givens` does not imply
/// `goal`, and ResourceExhausted when the proof would exceed
/// `opts.max_steps`. The result always passes `ValidateDerivation` and
/// concludes exactly `goal` — both re-checked by the test suite.
Result<Derivation> DeriveImplied(int n, const ConstraintSet& givens,
                                 const DifferentialConstraint& goal,
                                 const DeriveOptions& opts = {});

}  // namespace diffc

#endif  // DIFFC_CORE_INFERENCE_H_
