#include "core/atoms.h"

#include "lattice/decomposition.h"
#include "lattice/hitting_set.h"

namespace diffc {

Result<std::vector<DifferentialConstraint>> Decomp(const DifferentialConstraint& c) {
  Result<std::vector<ItemSet>> witnesses = AllWitnessSets(c.rhs());
  if (!witnesses.ok()) return witnesses.status();
  std::vector<DifferentialConstraint> out;
  out.reserve(witnesses->size());
  for (const ItemSet& w : *witnesses) {
    out.push_back(DifferentialConstraint(c.lhs(), SetFamily::Singletons(w)));
  }
  return out;
}

Result<std::vector<DifferentialConstraint>> Atoms(int n, const DifferentialConstraint& c) {
  Result<std::vector<ItemSet>> elements = EnumerateDecomposition(n, c.lhs(), c.rhs());
  if (!elements.ok()) return elements.status();
  std::vector<DifferentialConstraint> out;
  out.reserve(elements->size());
  for (const ItemSet& u : *elements) out.push_back(AtomConstraint(n, u));
  return out;
}

}  // namespace diffc
