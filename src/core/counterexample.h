#ifndef DIFFC_CORE_COUNTEREXAMPLE_H_
#define DIFFC_CORE_COUNTEREXAMPLE_H_

#include <cstdint>

#include "core/constraint.h"
#include "lattice/mobius.h"
#include "util/status.h"

namespace diffc {

/// The witness function `f_U` from the proof of Theorem 3.5 (with `c = 1`):
/// `f_U(W) = 1` if `W ⊆ U`, else 0. Its density is the indicator of `U`,
/// so `f_U` satisfies every constraint whose lattice decomposition avoids
/// `U` and violates every constraint whose decomposition contains `U`.
///
/// `f_U` is also the support function of the one-basket list `(U)` — the
/// witness in Proposition 6.4 showing that implication over all of `F(S)`,
/// over frequency functions, and over support functions coincide.
Result<SetFunction<std::int64_t>> CounterexampleFunction(int n, const ItemSet& u);

/// True iff `u` certifies non-implication: `u ∈ L(goal) ∖ L(premises)`.
/// O(|C| · |Y|) membership tests; no enumeration.
bool IsValidCounterexample(int n, const ConstraintSet& premises,
                           const DifferentialConstraint& goal, const ItemSet& u);

}  // namespace diffc

#endif  // DIFFC_CORE_COUNTEREXAMPLE_H_
