#ifndef DIFFC_CORE_IMPLICATION_H_
#define DIFFC_CORE_IMPLICATION_H_

#include <optional>
#include <utility>
#include <vector>

#include "core/constraint.h"
#include "prop/dpll.h"
#include "prop/tautology.h"
#include "util/status.h"

namespace diffc {

/// The answer to an implication query `C |= X -> Y`.
struct ImplicationOutcome {
  /// Three-valued answer. The core decision procedures only ever produce
  /// kImplied / kNotImplied; kUnknown is reserved for the implication
  /// engine's `ExhaustionPolicy::kDegrade`, which converts a deadline or
  /// budget exhaustion into an OK result carrying this verdict (the query
  /// stats record which procedure ran out). Unscoped on purpose, so
  /// `ImplicationOutcome::kUnknown` reads naturally at call sites.
  enum Verdict { kNotImplied = 0, kImplied = 1, kUnknown = 2 };

  /// True iff the constraint is implied. Kept in sync with `verdict`
  /// (kUnknown reads as not implied here; check `verdict` when the engine
  /// may degrade).
  bool implied = false;
  /// The three-valued verdict; authoritative under degrade policies.
  Verdict verdict = kNotImplied;
  /// When not implied: a set `U ∈ L(X, Y) ∖ L(C)`. The function `f_U`
  /// (Theorem 3.5) and the one-basket list `(U)` (Proposition 6.4) built
  /// from it satisfy `C` and violate the goal; see `core/counterexample.h`.
  std::optional<ItemSet> counterexample;

  void SetImplied() {
    implied = true;
    verdict = kImplied;
    counterexample.reset();
  }
  void SetNotImplied(const ItemSet& cx) {
    implied = false;
    verdict = kNotImplied;
    counterexample = cx;
  }
  void SetUnknown() {
    implied = false;
    verdict = kUnknown;
    counterexample.reset();
  }
};

/// True iff `u` lies in the closure lattice `L(C) = ∪ L(X_i, Y_i)` of
/// `premises` — i.e. `u` is excluded as a counterexample by some premise.
/// O(|C|) set operations; the building block of the engine's interval-cover
/// fast path.
bool InConstraintLattice(const ConstraintSet& premises, const ItemSet& u);

/// Decides `premises |= goal` by the syntactic criterion of Theorem 3.5,
/// `L(C) ⊇ L(X, Y)`, checked by exhaustive enumeration of `L(X, Y)`.
/// Exact but exponential; requires `n - |X| <= max_free_bits`. `stop`,
/// when non-null, is checked (amortized) per enumerated set; a fired
/// deadline / cancel token aborts and its status is returned.
Result<ImplicationOutcome> CheckImplicationExhaustive(int n, const ConstraintSet& premises,
                                                      const DifferentialConstraint& goal,
                                                      int max_free_bits = 24,
                                                      StopCheck* stop = nullptr);

/// The premise side of the Proposition 5.4 CNF, reusable across goals.
///
/// Variables 1..n are the attribute variables `u_a`; variables n+1..num_vars
/// are the auxiliary member variables. Goal clauses mention only attribute
/// variables, so the (dominant) premise clauses can be built once per
/// `ConstraintSet` and shared by every query against it — the implication
/// engine caches exactly this object.
struct PremiseTranslation {
  /// Total variable count: `n` attribute variables plus one auxiliary per
  /// premise right-hand member.
  int num_vars = 0;
  /// The premise clauses (auxiliary definitions interleaved with each
  /// premise's main clause, in premise order).
  std::vector<prop::Clause> clauses;
};

/// Builds the premise clauses of Proposition 5.4 over `n` attributes:
///
///   ∧_{X'->Y' ∈ C} ( (∨_{a∈X'} ¬u_a) ∨ ∨_j aux_j ),  aux_j → ∧_{y∈Y'_j} u_y
PremiseTranslation TranslatePremises(int n, const ConstraintSet& premises);

/// Decides `premises |= goal` through the propositional translation
/// (Proposition 5.4) refuted with DPLL: a counterexample `U` exists iff the
/// CNF
///
///   ∧_{a∈X} u_a  ∧  ∧_{Y∈Y} (∨_{y∈Y} ¬u_y)
///   ∧_{X'->Y' ∈ C} ( (∨_{a∈X'} ¬u_a) ∨ ∨_j aux_j ),  aux_j → ∧_{y∈Y'_j} u_y
///
/// is satisfiable. One variable per attribute plus one auxiliary variable
/// per premise member; no universe-size restriction beyond 64 attributes.
/// `stats`, when non-null, receives the solver counters.
Result<ImplicationOutcome> CheckImplicationSat(int n, const ConstraintSet& premises,
                                               const DifferentialConstraint& goal,
                                               prop::SolverStats* stats = nullptr);

/// `CheckImplicationSat` with a prebuilt (typically cached) premise
/// translation. `translation` must have been produced by
/// `TranslatePremises(n, premises)` for the same `n`; the result is
/// identical to `CheckImplicationSat(n, premises, goal, stats)`.
/// `max_decisions` bounds the DPLL search (ResourceExhausted beyond it);
/// `stop`, when non-null, is handed to the solver as a cooperative stop
/// condition (DeadlineExceeded / Cancelled when it fires mid-search).
Result<ImplicationOutcome> CheckImplicationSatTranslated(
    int n, const PremiseTranslation& translation, const DifferentialConstraint& goal,
    prop::SolverStats* stats = nullptr, std::uint64_t max_decisions = 50'000'000,
    StopCheck* stop = nullptr);

/// True iff every premise and the goal have a single right-hand member —
/// the subclass the paper's conclusion identifies with functional
/// dependencies, decidable in polynomial time.
bool FdSubclassApplicable(const ConstraintSet& premises, const DifferentialConstraint& goal);

/// The premise side of the FD-subclass closure check, reusable across
/// goals: the premises reread as functional dependencies `lhs -> rhs`.
/// Built once per `ConstraintSet` (e.g. inside a `PreparedPremises`
/// artifact) so repeated closure queries skip the applicability scan.
struct FdPremiseIndex {
  /// True iff every premise has a single right-hand member. The goal-side
  /// half of `FdSubclassApplicable` (singleton goal RHS) is per-query.
  bool eligible = false;
  /// The premises as (determinant, dependent) attribute-set pairs, in
  /// premise order; meaningful only when `eligible`.
  std::vector<std::pair<ItemSet, ItemSet>> fds;
};

/// Builds the FD view of `premises`; `eligible` is false (and `fds` empty)
/// when some premise has a non-singleton right-hand family.
FdPremiseIndex BuildFdPremiseIndex(const ConstraintSet& premises);

/// The attribute-set closure of `x` under an eligible index (Armstrong),
/// in O(|C|^2) set operations.
ItemSet FdClosure(const FdPremiseIndex& index, ItemSet x);

/// Decides the FD subclass by attribute-set closure (Armstrong), in
/// O(|C|^2) set operations. Requires `FdSubclassApplicable`. The
/// counterexample (when not implied) is the closure of the goal's
/// left-hand side.
Result<ImplicationOutcome> CheckImplicationFd(int n, const ConstraintSet& premises,
                                              const DifferentialConstraint& goal);

/// `CheckImplicationFd` with a prebuilt (typically cached) premise index.
/// Requires `index.eligible` and a singleton goal right-hand side.
Result<ImplicationOutcome> CheckImplicationFdIndexed(int n, const FdPremiseIndex& index,
                                                     const DifferentialConstraint& goal);

/// Front door: dispatches to the FD subclass when applicable, otherwise to
/// the SAT-based procedure.
Result<ImplicationOutcome> CheckImplication(int n, const ConstraintSet& premises,
                                            const DifferentialConstraint& goal);

/// The reduction of Proposition 5.5: the constraint set `C_φ` for a DNF
/// formula `φ`, such that `φ` is a tautology iff `C_φ |= ∅ -> {}`
/// (the goal returned by `TautologyGoal`). A conjunct mentioning a
/// variable both positively and negatively is a contradiction; its
/// translated constraint is trivial and constrains nothing, matching the
/// conjunct's absence from `φ`.
ConstraintSet DnfTautologyReduction(const prop::DnfFormula& f);

/// The goal `∅ -> {}` of the tautology reduction, whose lattice
/// decomposition is all of `2^S`.
DifferentialConstraint TautologyGoal();

}  // namespace diffc

#endif  // DIFFC_CORE_IMPLICATION_H_
