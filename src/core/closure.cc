#include "core/closure.h"

#include "core/implication.h"
#include "lattice/decomposition.h"

namespace diffc {

bool InClosureLattice(const ConstraintSet& c, const ItemSet& u) {
  for (const DifferentialConstraint& constraint : c) {
    if (constraint.lhs().IsSubsetOf(u) && !constraint.rhs().SomeMemberSubsetOf(u)) {
      return true;
    }
  }
  return false;
}

Result<std::vector<ItemSet>> ClosureLattice(int n, const ConstraintSet& c, int max_bits) {
  if (n > max_bits) {
    return Status::ResourceExhausted("closure lattice enumeration over " +
                                     std::to_string(n) + " attributes");
  }
  std::vector<ItemSet> out;
  const Mask full = FullMask(n);
  for (Mask m = 0;; ++m) {
    if (InClosureLattice(c, ItemSet(m))) out.push_back(ItemSet(m));
    if (m == full) break;
  }
  return out;
}

namespace {

// True iff `premises` implies every constraint in `goals`.
Result<bool> ImpliesAll(int n, const ConstraintSet& premises, const ConstraintSet& goals) {
  for (const DifferentialConstraint& g : goals) {
    Result<ImplicationOutcome> r = CheckImplicationSat(n, premises, g);
    if (!r.ok()) return r.status();
    if (!r->implied) return false;
  }
  return true;
}

}  // namespace

Result<bool> AreEquivalent(int n, const ConstraintSet& a, const ConstraintSet& b) {
  Result<bool> ab = ImpliesAll(n, a, b);
  if (!ab.ok() || !*ab) return ab;
  return ImpliesAll(n, b, a);
}

Result<std::vector<int>> RedundantConstraints(int n, const ConstraintSet& c) {
  std::vector<int> redundant;
  for (int i = 0; i < static_cast<int>(c.size()); ++i) {
    ConstraintSet rest;
    rest.reserve(c.size() - 1);
    for (int j = 0; j < static_cast<int>(c.size()); ++j) {
      if (j != i) rest.push_back(c[j]);
    }
    Result<ImplicationOutcome> r = CheckImplicationSat(n, rest, c[i]);
    if (!r.ok()) return r.status();
    if (r->implied) redundant.push_back(i);
  }
  return redundant;
}

Result<ConstraintSet> MinimalCover(int n, const ConstraintSet& c) {
  ConstraintSet cover = c;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < static_cast<int>(cover.size()); ++i) {
      ConstraintSet rest;
      rest.reserve(cover.size() - 1);
      for (int j = 0; j < static_cast<int>(cover.size()); ++j) {
        if (j != i) rest.push_back(cover[j]);
      }
      Result<ImplicationOutcome> r = CheckImplicationSat(n, rest, cover[i]);
      if (!r.ok()) return r.status();
      if (r->implied) {
        cover = std::move(rest);
        changed = true;
        break;
      }
    }
  }
  return cover;
}

}  // namespace diffc
