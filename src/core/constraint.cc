#include "core/constraint.h"

namespace diffc {

DifferentialConstraint AtomConstraint(int n, const ItemSet& u) {
  return DifferentialConstraint(u, SetFamily::Singletons(u.ComplementIn(n)));
}

std::string ConstraintSetToString(const ConstraintSet& c, const Universe& u) {
  std::string out;
  for (size_t i = 0; i < c.size(); ++i) {
    if (i > 0) out += "; ";
    out += c[i].ToString(u);
  }
  return out;
}

}  // namespace diffc
