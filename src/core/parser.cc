#include "core/parser.h"

#include "util/text.h"

namespace diffc {

Result<DifferentialConstraint> ParseConstraint(const Universe& u, const std::string& text) {
  std::string_view body = Trim(text);
  size_t arrow = body.find("->");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument("constraint missing '->': " + text);
  }
  std::string lhs_text(Trim(body.substr(0, arrow)));
  std::string_view rhs_text = Trim(body.substr(arrow + 2));

  Result<ItemSet> lhs = ParseItemSet(u, lhs_text);
  if (!lhs.ok()) return lhs.status();

  if (rhs_text.size() < 2 || rhs_text.front() != '{' || rhs_text.back() != '}') {
    return Status::InvalidArgument("constraint right-hand side must be '{...}': " + text);
  }
  std::string_view inner = Trim(rhs_text.substr(1, rhs_text.size() - 2));
  std::vector<ItemSet> members;
  if (!inner.empty()) {
    for (const std::string& piece : Split(inner, ',')) {
      Result<ItemSet> member = ParseItemSet(u, piece);
      if (!member.ok()) return member.status();
      members.push_back(*member);
    }
  }
  return DifferentialConstraint(*lhs, SetFamily(std::move(members)));
}

Result<ConstraintSet> ParseConstraintSet(const Universe& u, const std::string& text) {
  ConstraintSet out;
  if (Trim(text).empty()) return out;
  for (const std::string& piece : Split(text, ';')) {
    if (Trim(piece).empty()) continue;
    Result<DifferentialConstraint> c = ParseConstraint(u, piece);
    if (!c.ok()) return c.status();
    out.push_back(*c);
  }
  return out;
}

}  // namespace diffc
