#include "core/armstrong.h"

#include "core/closure.h"
#include "lattice/decomposition.h"

namespace diffc {

Result<SetFunction<std::int64_t>> ArmstrongFunction(int n, const ConstraintSet& c) {
  Result<SetFunction<std::int64_t>> density = SetFunction<std::int64_t>::Make(n);
  if (!density.ok()) return density.status();
  for (Mask m = 0; m < density->size(); ++m) {
    if (!InClosureLattice(c, ItemSet(m))) density->at(m) = 1;
  }
  return FromDensity(*density);
}

Result<BasketList> ArmstrongBaskets(int n, const ConstraintSet& c, int max_bits) {
  if (n > max_bits) {
    return Status::ResourceExhausted("Armstrong basket list over " + std::to_string(n) +
                                     " items");
  }
  std::vector<Mask> baskets;
  const Mask full = FullMask(n);
  for (Mask m = 0;; ++m) {
    if (!InClosureLattice(c, ItemSet(m))) baskets.push_back(m);
    if (m == full) break;
  }
  return BasketList::Make(n, std::move(baskets));
}

bool IsArmstrongFunction(const SetFunction<std::int64_t>& f, const ConstraintSet& c) {
  SetFunction<std::int64_t> density = Density(f);
  for (Mask m = 0; m < f.size(); ++m) {
    const bool in_lattice = InClosureLattice(c, ItemSet(m));
    if (in_lattice && density.at(m) != 0) return false;
    if (!in_lattice && density.at(m) == 0) return false;
  }
  return true;
}

}  // namespace diffc
