#ifndef DIFFC_CORE_PARSER_H_
#define DIFFC_CORE_PARSER_H_

#include <string>

#include "core/constraint.h"
#include "util/status.h"

namespace diffc {

/// Parses a differential constraint written as
///
///   `<set> -> { <set>, <set>, ... }`
///
/// e.g. `A -> {BC, CD}` or `AB -> {}` or `0 -> {C}`. Sets use the
/// universe's attribute names, concatenated when all names are single
/// characters; `0` denotes the empty set; `{}` denotes the empty family.
/// (Family members are comma-separated, so comma-separated attribute
/// names are not supported inside constraint text.)
Result<DifferentialConstraint> ParseConstraint(const Universe& u, const std::string& text);

/// Parses a `;`-separated list of constraints (empty input yields the
/// empty set).
Result<ConstraintSet> ParseConstraintSet(const Universe& u, const std::string& text);

}  // namespace diffc

#endif  // DIFFC_CORE_PARSER_H_
