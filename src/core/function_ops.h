#ifndef DIFFC_CORE_FUNCTION_OPS_H_
#define DIFFC_CORE_FUNCTION_OPS_H_

#include <cmath>
#include <cstdint>

#include "core/constraint.h"
#include "lattice/decomposition.h"
#include "lattice/mobius.h"
#include "util/rational.h"

namespace diffc {

/// Exact-or-tolerant zero tests used by satisfaction checks: exact for the
/// integer and rational scalar types, |v| < eps for double.
inline bool IsZeroValue(double v, double eps = 1e-9) { return std::fabs(v) < eps; }
inline bool IsZeroValue(std::int64_t v, double /*eps*/ = 0) { return v == 0; }
inline bool IsZeroValue(const Rational& v, double /*eps*/ = 0) { return v.IsZero(); }

inline bool IsNegativeValue(double v, double eps = 1e-9) { return v < -eps; }
inline bool IsNegativeValue(std::int64_t v, double /*eps*/ = 0) { return v < 0; }
inline bool IsNegativeValue(const Rational& v, double /*eps*/ = 0) { return v.IsNegative(); }

/// The Y-differential of `f` at `X` (Definition 2.1):
///
///   D^Y_f(X) = Σ_{Z ⊆ Y} (-1)^{|Z|} f(X ∪ ∪Z),
///
/// computed directly from the definition in O(2^|Y|) evaluations. By
/// Proposition 2.9 this equals Σ_{U ∈ L(X, Y)} d_f(U) — an identity the
/// test suite checks on random functions.
template <typename T>
T DifferentialAt(const SetFunction<T>& f, const ItemSet& x, const SetFamily& family) {
  const int k = family.size();
  T acc{};
  for (Mask z = 0; z < (Mask{1} << k); ++z) {
    Mask arg = x.bits();
    ForEachBit(z, [&](int j) { arg |= family.member(j).bits(); });
    if (Popcount(z) % 2 == 0) {
      acc += f.at(arg);
    } else {
      acc -= f.at(arg);
    }
  }
  return acc;
}

/// The density of `f` at `X` via the differential over the complement
/// singletons (Definition 2.1): `d_f(X) = D^{{{y}|y∉X}}_f(X)`. Reference
/// implementation; use `Density` (fast Möbius transform) for whole-function
/// densities.
template <typename T>
T DensityAtViaDifferential(const SetFunction<T>& f, const ItemSet& x) {
  return DifferentialAt(f, x, SetFamily::Singletons(x.ComplementIn(f.n())));
}

/// Density-based satisfaction (Definition 3.1): `f` satisfies `c` iff
/// `d_f(U) = 0` for all `U ∈ L(X, Y)`. Takes the *density* of `f`; use
/// `Satisfies` when only `f` is at hand.
template <typename T>
bool SatisfiesWithDensity(const SetFunction<T>& density, const DifferentialConstraint& c,
                          double eps = 1e-9) {
  bool ok = true;
  ForEachSuperset(c.lhs().bits(), FullMask(density.n()), [&](Mask u) {
    if (!ok) return;
    if (!c.rhs().SomeMemberSubsetOf(ItemSet(u)) && !IsZeroValue(density.at(u), eps)) {
      ok = false;
    }
  });
  return ok;
}

/// Density-based satisfaction computed from `f` directly (computes the
/// density in O(n·2^n) first).
template <typename T>
bool Satisfies(const SetFunction<T>& f, const DifferentialConstraint& c, double eps = 1e-9) {
  return SatisfiesWithDensity(Density(f), c, eps);
}

/// Differential-based satisfaction (Remark 3.6): `D^Y_f(X) = 0`. Strictly
/// weaker than the density-based semantics in general; equivalent for
/// functions with nonnegative (or nonpositive) densities.
template <typename T>
bool SatisfiesDifferentialSemantics(const SetFunction<T>& f, const DifferentialConstraint& c,
                                    double eps = 1e-9) {
  return IsZeroValue(DifferentialAt(f, c.lhs(), c.rhs()), eps);
}

/// True iff `f` is a frequency function (Section 6): every differential
/// `D^Y_f` is nonnegative — equivalently (by Proposition 2.9, both
/// directions checked in tests) `d_f ≥ 0` everywhere.
template <typename T>
bool IsFrequencyFunction(const SetFunction<T>& f, double eps = 1e-9) {
  SetFunction<T> d = Density(f);
  for (Mask m = 0; m < (Mask{1} << f.n()); ++m) {
    if (IsNegativeValue(d.at(m), eps)) return false;
  }
  return true;
}

}  // namespace diffc

#endif  // DIFFC_CORE_FUNCTION_OPS_H_
