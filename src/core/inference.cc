#include "core/inference.h"

#include <map>
#include <utility>

#include "core/implication.h"
#include "lattice/decomposition.h"

namespace diffc {

const char* InferenceRuleName(InferenceRule rule) {
  switch (rule) {
    case InferenceRule::kGiven:
      return "given";
    case InferenceRule::kTriviality:
      return "triviality";
    case InferenceRule::kAugmentation:
      return "augmentation";
    case InferenceRule::kAddition:
      return "addition";
    case InferenceRule::kElimination:
      return "elimination";
  }
  return "?";
}

std::string Derivation::ToString(const Universe& u) const {
  std::string out;
  for (int i = 0; i < size(); ++i) {
    const ProofStep& s = steps_[i];
    out += "(" + std::to_string(i) + ") " + s.conclusion.ToString(u) + "  [";
    out += InferenceRuleName(s.rule);
    if (s.rule == InferenceRule::kGiven) {
      out += " #" + std::to_string(s.given_index);
    }
    for (size_t j = 0; j < s.premises.size(); ++j) {
      out += j == 0 ? " of " : ", ";
      out += std::to_string(s.premises[j]);
    }
    out += "]\n";
  }
  return out;
}

bool IsValidTriviality(const DifferentialConstraint& conclusion) {
  return conclusion.IsTrivial();
}

bool IsValidAugmentation(const DifferentialConstraint& premise,
                         const DifferentialConstraint& conclusion) {
  return premise.rhs() == conclusion.rhs() && premise.lhs().IsSubsetOf(conclusion.lhs());
}

bool IsValidAddition(const DifferentialConstraint& premise,
                     const DifferentialConstraint& conclusion) {
  if (premise.lhs() != conclusion.lhs()) return false;
  if (conclusion.rhs().size() - premise.rhs().size() > 1) return false;
  for (const ItemSet& m : premise.rhs().members()) {
    if (!conclusion.rhs().HasMember(m)) return false;
  }
  return true;
}

bool IsValidElimination(const DifferentialConstraint& p1, const DifferentialConstraint& p2,
                        const DifferentialConstraint& conclusion) {
  if (p1.lhs() != conclusion.lhs()) return false;
  if (p2.rhs() != conclusion.rhs()) return false;
  // p1 = X -> Y∪{Z}, p2 = X∪Z -> Y for some Z ∈ p1.rhs.
  for (const ItemSet& z : p1.rhs().members()) {
    if (p1.rhs() == conclusion.rhs().WithMember(z) &&
        p2.lhs() == conclusion.lhs().Union(z)) {
      return true;
    }
  }
  return false;
}

Status ValidateDerivation(int n, const ConstraintSet& givens, const Derivation& d) {
  const Mask full = FullMask(n);
  for (int i = 0; i < d.size(); ++i) {
    const ProofStep& s = d.steps()[i];
    if (!IsSubset(s.conclusion.lhs().bits(), full)) {
      return Status::InvalidArgument("step " + std::to_string(i) +
                                     ": left-hand side outside universe");
    }
    for (const ItemSet& m : s.conclusion.rhs().members()) {
      if (!IsSubset(m.bits(), full)) {
        return Status::InvalidArgument("step " + std::to_string(i) +
                                       ": member outside universe");
      }
    }
    for (int p : s.premises) {
      if (p < 0 || p >= i) {
        return Status::InvalidArgument("step " + std::to_string(i) +
                                       ": premise index out of order");
      }
    }
    auto premise = [&](int j) -> const DifferentialConstraint& {
      return d.steps()[s.premises[j]].conclusion;
    };
    bool valid = false;
    switch (s.rule) {
      case InferenceRule::kGiven:
        valid = s.premises.empty() && s.given_index >= 0 &&
                s.given_index < static_cast<int>(givens.size()) &&
                givens[s.given_index] == s.conclusion;
        break;
      case InferenceRule::kTriviality:
        valid = s.premises.empty() && IsValidTriviality(s.conclusion);
        break;
      case InferenceRule::kAugmentation:
        valid = s.premises.size() == 1 && IsValidAugmentation(premise(0), s.conclusion);
        break;
      case InferenceRule::kAddition:
        valid = s.premises.size() == 1 && IsValidAddition(premise(0), s.conclusion);
        break;
      case InferenceRule::kElimination:
        valid = s.premises.size() == 2 &&
                IsValidElimination(premise(0), premise(1), s.conclusion);
        break;
    }
    if (!valid) {
      return Status::InvalidArgument("step " + std::to_string(i) + ": invalid " +
                                     InferenceRuleName(s.rule) + " application");
    }
  }
  if (d.size() == 0) return Status::InvalidArgument("empty derivation");
  return Status::Ok();
}

Derivation PruneDerivation(const Derivation& d) {
  if (d.size() == 0) return d;
  std::vector<bool> needed(d.size(), false);
  needed[d.size() - 1] = true;
  for (int i = d.size() - 1; i >= 0; --i) {
    if (!needed[i]) continue;
    for (int p : d.steps()[i].premises) needed[p] = true;
  }
  std::vector<int> new_index(d.size(), -1);
  Derivation pruned;
  for (int i = 0; i < d.size(); ++i) {
    if (!needed[i]) continue;
    ProofStep step = d.steps()[i];
    for (int& p : step.premises) p = new_index[p];
    new_index[i] = pruned.AddStep(std::move(step));
  }
  return pruned;
}

namespace {

// Canonical key of a constraint for memoization.
using ConstraintKey = std::pair<Mask, std::vector<Mask>>;

ConstraintKey KeyOf(const DifferentialConstraint& c) {
  std::vector<Mask> members;
  members.reserve(c.rhs().size());
  for (const ItemSet& m : c.rhs().members()) members.push_back(m.bits());
  return {c.lhs().bits(), std::move(members)};
}

// Incremental proof construction with per-conclusion memoization: deriving
// the same constraint twice reuses the earlier step.
class ProofBuilder {
 public:
  ProofBuilder(int n, const ConstraintSet& givens, const DeriveOptions& opts)
      : n_(n), givens_(givens), opts_(opts) {}

  Result<int> EmitGiven(int given_index) {
    const DifferentialConstraint& c = givens_[given_index];
    if (int existing = Lookup(c); existing >= 0) return existing;
    ProofStep step{InferenceRule::kGiven, {}, given_index, c};
    return Emit(std::move(step));
  }

  Result<int> EmitTriviality(const DifferentialConstraint& c) {
    if (int existing = Lookup(c); existing >= 0) return existing;
    if (!c.IsTrivial()) return Status::Internal("triviality on nontrivial constraint");
    ProofStep step{InferenceRule::kTriviality, {}, -1, c};
    return Emit(std::move(step));
  }

  Result<int> EmitAugmentation(int premise, const ItemSet& new_lhs) {
    DifferentialConstraint c(new_lhs, d_.steps()[premise].conclusion.rhs());
    if (int existing = Lookup(c); existing >= 0) return existing;
    ProofStep step{InferenceRule::kAugmentation, {premise}, -1, c};
    return Emit(std::move(step));
  }

  Result<int> EmitAddition(int premise, const ItemSet& new_member) {
    const DifferentialConstraint& p = d_.steps()[premise].conclusion;
    DifferentialConstraint c(p.lhs(), p.rhs().WithMember(new_member));
    if (c == p) return premise;  // Adding an existing member changes nothing.
    if (int existing = Lookup(c); existing >= 0) return existing;
    ProofStep step{InferenceRule::kAddition, {premise}, -1, c};
    return Emit(std::move(step));
  }

  Result<int> EmitElimination(int p1, int p2, DifferentialConstraint conclusion) {
    if (int existing = Lookup(conclusion); existing >= 0) return existing;
    ProofStep step{InferenceRule::kElimination, {p1, p2}, -1, std::move(conclusion)};
    return Emit(std::move(step));
  }

  const DifferentialConstraint& ConclusionOf(int step) const {
    return d_.steps()[step].conclusion;
  }

  int Lookup(const DifferentialConstraint& c) const {
    auto it = memo_.find(KeyOf(c));
    return it == memo_.end() ? -1 : it->second;
  }

  Derivation&& TakeDerivation() && { return std::move(d_); }

  int n() const { return n_; }
  const ConstraintSet& givens() const { return givens_; }

 private:
  Result<int> Emit(ProofStep step) {
    if (d_.steps().size() >= opts_.max_steps) {
      return Status::ResourceExhausted("derivation exceeds " +
                                       std::to_string(opts_.max_steps) + " steps");
    }
    int idx = d_.AddStep(step);
    memo_.emplace(KeyOf(d_.steps()[idx].conclusion), idx);
    return idx;
  }

  int n_;
  const ConstraintSet& givens_;
  DeriveOptions opts_;
  Derivation d_;
  std::map<ConstraintKey, int> memo_;
};

// Derives atom(u) from a given constraint whose lattice decomposition
// contains u. Returns the step index.
Result<int> DeriveAtom(ProofBuilder& b, const ItemSet& u) {
  const int n = b.n();
  DifferentialConstraint atom = AtomConstraint(n, u);
  if (int existing = b.Lookup(atom); existing >= 0) return existing;

  int source = -1;
  for (int i = 0; i < static_cast<int>(b.givens().size()); ++i) {
    const DifferentialConstraint& g = b.givens()[i];
    if (g.lhs().IsSubsetOf(u) && !g.rhs().SomeMemberSubsetOf(u)) {
      source = i;
      break;
    }
  }
  if (source == -1) {
    return Status::Internal("no premise covers lattice element");
  }

  Result<int> step = b.EmitGiven(source);
  if (!step.ok()) return step;
  if (b.givens()[source].lhs() != u) {
    step = b.EmitAugmentation(*step, u);
    if (!step.ok()) return step;
  }

  // Narrow every member M (which satisfies M ⊄ u) down to a singleton
  // {y} with y ∈ M ∖ u:  addition of {y}, then eliminate M against the
  // trivial constraint (u ∪ M) -> rest ∪ {{y}}.
  const std::vector<ItemSet> original_members = b.ConclusionOf(*step).rhs().members();
  for (const ItemSet& member : original_members) {
    ItemSet outside = member.Minus(u);
    ItemSet target = ItemSet::Singleton(LowestBit(outside.bits()));
    if (member == target) continue;
    SetFamily rest = b.ConclusionOf(*step).rhs().WithoutMember(member);
    Result<int> with_target = b.EmitAddition(*step, target);
    if (!with_target.ok()) return with_target;
    Result<int> trivial =
        b.EmitTriviality(DifferentialConstraint(u.Union(member), rest.WithMember(target)));
    if (!trivial.ok()) return trivial;
    step = b.EmitElimination(*with_target, *trivial,
                             DifferentialConstraint(u, rest.WithMember(target)));
    if (!step.ok()) return step;
  }

  // Pad with the remaining complement singletons.
  ForEachBit(u.ComplementIn(n).bits(), [&](int z) {
    if (!step.ok()) return;
    step = b.EmitAddition(*step, ItemSet::Singleton(z));
  });
  return step;
}

// Derives X -> {{w} | w ∈ W} for a witness-set leaf W of the goal's
// right-hand family: trivially when W meets X, otherwise by the
// elimination cascade of Proposition 4.7 over the atoms of [X, S∖W].
Result<int> DeriveWitnessLeaf(ProofBuilder& b, const ItemSet& x, const ItemSet& w) {
  const int n = b.n();
  DifferentialConstraint target(x, SetFamily::Singletons(w));
  if (int existing = b.Lookup(target); existing >= 0) return existing;
  if (!w.Intersect(x).empty()) return b.EmitTriviality(target);

  const SetFamily w_singletons = SetFamily::Singletons(w);
  const Mask v = FullMask(n) & ~(x.bits() | w.bits());

  // cur[U ∖ X] = step deriving U -> {{w}|w∈W} ∪ {{z}|z ∈ Vrem ∖ U}.
  std::map<Mask, int> cur;
  {
    Status first_error = Status::Ok();
    ForEachSubset(v, [&](Mask free) {
      if (!first_error.ok()) return;
      Result<int> atom = DeriveAtom(b, ItemSet(x.bits() | free));
      if (!atom.ok()) {
        first_error = atom.status();
        return;
      }
      cur[free] = *atom;
    });
    if (!first_error.ok()) return first_error;
  }

  Mask v_rem = v;
  while (v_rem != 0) {
    const int v_prime = LowestBit(v_rem);
    const Mask v_bit = Mask{1} << v_prime;
    v_rem &= ~v_bit;
    std::map<Mask, int> next;
    Status first_error = Status::Ok();
    ForEachSubset(v_rem, [&](Mask free) {
      if (!first_error.ok()) return;
      ItemSet u(x.bits() | free);
      SetFamily rhs = w_singletons;
      ForEachBit(v_rem & ~free, [&](int z) { rhs = rhs.WithMember(ItemSet::Singleton(z)); });
      Result<int> step =
          b.EmitElimination(cur[free], cur[free | v_bit], DifferentialConstraint(u, rhs));
      if (!step.ok()) {
        first_error = step.status();
        return;
      }
      next[free] = *step;
    });
    if (!first_error.ok()) return first_error;
    cur = std::move(next);
  }
  return cur[0];
}

// The union-rule induction of Proposition 4.6, expanded into base rules:
// derives x -> family from witness-set leaves.
Result<int> BuildFamily(ProofBuilder& b, const ItemSet& x, const SetFamily& family) {
  DifferentialConstraint target(x, family);
  if (int existing = b.Lookup(target); existing >= 0) return existing;
  if (target.IsTrivial()) return b.EmitTriviality(target);

  // Base case: every member a singleton (or the family empty) — the leaf
  // x -> {{w}|w∈W} for the witness set W = ∪family.
  bool all_singletons = true;
  ItemSet split_member;
  for (const ItemSet& m : family.members()) {
    if (m.size() >= 2) {
      all_singletons = false;
      split_member = m;
      break;
    }
  }
  if (all_singletons) return DeriveWitnessLeaf(b, x, family.UnionOfMembers());

  // Split M into Y1 = {m0} and Y2 = M ∖ {m0}; recurse; then expand the
  // union rule: from  a: X -> F∪{Y1}  and  b: X -> F∪{Y2}  conclude
  // X -> F∪{M}.
  const ItemSet y1 = ItemSet::Singleton(LowestBit(split_member.bits()));
  const ItemSet y2 = split_member.Minus(y1);
  const SetFamily rest = family.WithoutMember(split_member);

  Result<int> left = BuildFamily(b, x, rest.WithMember(y1));
  if (!left.ok()) return left;
  Result<int> right = BuildFamily(b, x, rest.WithMember(y2));
  if (!right.ok()) return right;

  Result<int> s1 = b.EmitAddition(*left, split_member);
  if (!s1.ok()) return s1;
  Result<int> s2 = b.EmitAugmentation(*right, x.Union(y1));
  if (!s2.ok()) return s2;
  Result<int> s3 = b.EmitAddition(*s2, split_member);
  if (!s3.ok()) return s3;
  Result<int> s4 = b.EmitTriviality(
      DifferentialConstraint(x.Union(split_member), rest.WithMember(split_member)));
  if (!s4.ok()) return s4;
  Result<int> s5 = b.EmitElimination(
      *s3, *s4, DifferentialConstraint(x.Union(y1), rest.WithMember(split_member)));
  if (!s5.ok()) return s5;
  return b.EmitElimination(*s1, *s5, target);
}

}  // namespace

Result<Derivation> DeriveImplied(int n, const ConstraintSet& givens,
                                 const DifferentialConstraint& goal,
                                 const DeriveOptions& opts) {
  ProofBuilder builder(n, givens, opts);
  if (goal.IsTrivial()) {
    Result<int> step = builder.EmitTriviality(goal);
    if (!step.ok()) return step.status();
    return std::move(builder).TakeDerivation();
  }

  Result<ImplicationOutcome> implied = CheckImplicationSat(n, givens, goal);
  if (!implied.ok()) return implied.status();
  if (!implied->implied) {
    return Status::NotFound("goal is not implied; no derivation exists");
  }

  Result<int> final_step = BuildFamily(builder, goal.lhs(), goal.rhs());
  if (!final_step.ok()) return final_step.status();
  if (builder.ConclusionOf(*final_step) != goal) {
    return Status::Internal("proof generator concluded the wrong constraint");
  }
  // If the goal was memoized before the last emitted step, restate it at
  // the end with a no-op augmentation so `conclusion()` is the goal.
  Derivation d = std::move(builder).TakeDerivation();
  if (d.conclusion() != goal) {
    d.AddStep(ProofStep{InferenceRule::kAugmentation, {*final_step}, -1, goal});
  }
  return d;
}

}  // namespace diffc
