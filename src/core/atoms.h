#ifndef DIFFC_CORE_ATOMS_H_
#define DIFFC_CORE_ATOMS_H_

#include <vector>

#include "core/constraint.h"
#include "util/status.h"

namespace diffc {

/// The decomposition of Definition 4.4:
/// `decomp(X -> Y) = { X -> {{w} | w ∈ W} | W ∈ W(Y) }` — one constraint
/// per witness set, with singleton right-hand members. Enumerates witness
/// sets, so inherits their ResourceExhausted guard.
Result<std::vector<DifferentialConstraint>> Decomp(const DifferentialConstraint& c);

/// The atomic decomposition of Definition 4.4:
/// `atoms(X -> Y) = { atom(U) | U ∈ L(X, Y) }`. Enumerates the lattice
/// decomposition, so requires `n - |X|` free attributes within the
/// enumeration guard.
Result<std::vector<DifferentialConstraint>> Atoms(int n, const DifferentialConstraint& c);

}  // namespace diffc

#endif  // DIFFC_CORE_ATOMS_H_
