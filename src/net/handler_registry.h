#ifndef DIFFC_NET_HANDLER_REGISTRY_H_
#define DIFFC_NET_HANDLER_REGISTRY_H_

#include <memory>
#include <vector>

#include "net/wire.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffc::net {

struct SessionContext;

/// A first-class wire-message handler: one server-side implementation per
/// `WireRequest` type, registered into the process-wide
/// `WireHandlerRegistry` the same way decision procedures register into
/// `ProcedureRegistry`. The session loop dispatches by type byte; the
/// `wire-registry` rule of tools/diffc_lint.py proves every declared
/// request type has exactly this trio: enumerator, name-table case, and
/// `DIFFC_REGISTER_WIRE_HANDLER` site — a message type without a handler
/// would be a frame the server accepts but can never answer.
class WireHandlerImpl {
 public:
  virtual ~WireHandlerImpl() = default;

  /// The request type this handler answers.
  virtual WireRequest id() const = 0;

  /// Stable name; must equal `WireRequestName(id())`.
  virtual const char* name() const = 0;

  /// Decodes and executes `frame`, returning the response frame (a typed
  /// error frame for any failure — handlers never throw and never close
  /// the connection themselves).
  virtual Frame Handle(SessionContext* session, const Frame& frame) const = 0;
};

/// The process-wide handler table. Registration happens during static
/// initialization; lookups are lock-snapshot like the procedure registry.
class WireHandlerRegistry {
 public:
  static WireHandlerRegistry& Global();

  void Register(WireRequest id, std::unique_ptr<const WireHandlerImpl> impl) EXCLUDES(mu_);

  /// The handler for type byte `type`, or null when unknown.
  const WireHandlerImpl* Find(std::uint8_t type) const EXCLUDES(mu_);

  /// All registered handlers (for the lint-mirroring completeness test).
  std::vector<const WireHandlerImpl*> Snapshot() const EXCLUDES(mu_);

 private:
  WireHandlerRegistry() = default;

  mutable Mutex mu_;
  std::vector<std::unique_ptr<const WireHandlerImpl>> handlers_ GUARDED_BY(mu_);
};

/// Registration hook behind `DIFFC_REGISTER_WIRE_HANDLER`.
bool RegisterWireHandler(WireRequest id, std::unique_ptr<const WireHandlerImpl> impl);

/// Self-registers a `WireHandlerImpl` for `enum_value` (a bare
/// `WireRequest` enumerator, e.g. `kCheckBatch` — spelled out so the
/// project linter can check enum/handler drift). Use at namespace
/// `diffc::net` scope.
#define DIFFC_REGISTER_WIRE_HANDLER(enum_value, ClassName)                    \
  namespace {                                                                 \
  [[maybe_unused]] const bool registered_##ClassName =                        \
      RegisterWireHandler(WireRequest::enum_value, std::make_unique<ClassName>()); \
  }

}  // namespace diffc::net

#endif  // DIFFC_NET_HANDLER_REGISTRY_H_
