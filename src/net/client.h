#ifndef DIFFC_NET_CLIENT_H_
#define DIFFC_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/constraint.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace diffc::net {

/// A blocking diffcd client: one connection, one outstanding request at a
/// time (the protocol is strict request/reply per connection; open more
/// connections for concurrency). Every server-side rejection arrives as
/// the original typed `Status` — the error frame round-trips the code, so
/// admission rejections are ResourceExhausted here, unknown handles are
/// NotFound, malformed input is InvalidArgument.
///
/// Move-only; the destructor closes the connection, which releases every
/// handle this session registered on the server.
class DiffcClient {
 public:
  DiffcClient() = default;

  /// Connects to a diffcd server at `address` ("host:port" or
  /// "unix:/path").
  static Result<DiffcClient> Connect(const std::string& address);

  bool connected() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

  /// Liveness probe; returns the echoed nonce.
  Result<std::uint64_t> Ping(std::uint64_t nonce);

  /// Compiles `premises` (over an `n`-attribute universe) server-side;
  /// the returned handle feeds `CheckBatch` until `Release` or disconnect.
  Result<RegisterOkMsg> RegisterPremises(int n, const ConstraintSet& premises);

  /// Decides `handle's premises |= goals[i]` for every goal. `deadline`
  /// (zero = none) is the server-side wall-clock budget for the whole
  /// batch; queries past it come back DeadlineExceeded or degraded,
  /// matching the in-process engine's semantics.
  Result<BatchResultMsg> CheckBatch(std::uint64_t handle, int n,
                                    const std::vector<DifferentialConstraint>& goals,
                                    std::chrono::milliseconds deadline = {});

  /// Drops `handle` server-side.
  Status Release(std::uint64_t handle);

 private:
  explicit DiffcClient(Socket sock) : sock_(std::move(sock)) {}

  /// Sends `request`, reads one reply, unwraps error frames into their
  /// `Status`, and insists on `expected` otherwise.
  Result<Frame> RoundTrip(const Frame& request, WireResponse expected);

  Socket sock_;
};

}  // namespace diffc::net

#endif  // DIFFC_NET_CLIENT_H_
