#ifndef DIFFC_NET_CLIENT_H_
#define DIFFC_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/constraint.h"
#include "net/retry.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/deadline.h"
#include "util/status.h"

namespace diffc::net {

/// Resilience knobs of a `DiffcClient`. The defaults ride out transient
/// faults transparently; `RetryPolicy{.max_attempts = 1}` plus
/// `reconnect = false` recovers the PR 6 fail-fast behavior.
struct ClientOptions {
  /// Bound on connection establishment (non-blocking connect + poll);
  /// zero blocks indefinitely.
  std::chrono::milliseconds connect_timeout{2000};
  /// Backoff/budget discipline for transient failures (transport errors,
  /// OVERLOADED replies).
  RetryPolicy retry;
  /// Per-endpoint circuit breaker over transport failures.
  CircuitBreakerOptions breaker;
  /// Reconnect automatically after a lost connection, transparently
  /// re-registering every recorded premise set. When false, a lost
  /// connection fails every later call with FailedPrecondition.
  bool reconnect = true;
  /// Seed for retry jitter and request nonces; 0 draws one from
  /// std::random_device (tests pin it for reproducibility).
  std::uint64_t seed = 0;
  /// Force-sample every call's trace (the diffc_client --trace flag): the
  /// client records its span (with every retry/backoff/reconnect event)
  /// into the global trace store and asks the server to sample too.
  bool trace = false;
  /// Head-sampling probability in [0, 1] for calls when `trace` is off.
  /// Unsampled calls that hit a non-fatal failure tail-arm their tracer,
  /// so a retried call's chain is captured from the first failure on.
  double trace_sample_rate = 0.0;
  /// Wire version to speak, clamped to [kMinWireVersion, kWireVersion].
  /// The client auto-downgrades to v2 when the server rejects v3 frames.
  std::uint8_t wire_version = kWireVersion;
};

/// Client-side resilience counters (monotonic over the client's life);
/// mirrored into the global metrics registry as diffc_net_client_*.
struct ClientStats {
  std::uint64_t retries = 0;
  std::uint64_t retries_exhausted = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t breaker_transitions = 0;
  std::uint64_t breaker_short_circuits = 0;
  /// Backoffs taken because the server shed the request (OVERLOADED).
  std::uint64_t shed_backoffs = 0;
};

/// A blocking diffcd client: one connection, one outstanding request at a
/// time (the protocol is strict request/reply per connection; open more
/// connections for concurrency). Every server-side rejection arrives as
/// the original typed `Status` — the error frame round-trips the code, so
/// handle-quota rejections are ResourceExhausted here, unknown handles are
/// NotFound, malformed input is InvalidArgument.
///
/// Failure handling (DESIGN.md §11): transport-level failures (connect,
/// torn frames, resets, a reply that fails to decode) poison the
/// connection — the next attempt reconnects rather than reading a
/// desynced stream — and are retried under `ClientOptions::retry` with
/// capped exponential backoff, never past the caller's deadline.
/// Registered premise sets are recorded client-side and transparently
/// re-registered after a reconnect, so the handles this class hands out
/// stay valid across connection loss; CHECK_BATCH retries carry an
/// idempotency nonce so the server never runs (or admission-counts) a
/// batch twice. OVERLOADED replies back off by at least the server's
/// retry-after hint. Repeated transport failures open a circuit breaker
/// that fails fast locally and recovers through a half-open `Ping` probe.
///
/// Not thread-safe. Move-only; the destructor closes the connection,
/// which releases every handle this session registered on the server.
class DiffcClient {
 public:
  DiffcClient() = default;

  /// Creates a client without touching the network; the first request
  /// connects lazily (useful when the endpoint may be down and the
  /// breaker/retry machinery should own the failure).
  static DiffcClient Create(const std::string& address, ClientOptions options = {});

  /// Connects eagerly to a diffcd server at `address` ("host:port" or
  /// "unix:/path"); fails fast when the endpoint is unreachable.
  static Result<DiffcClient> Connect(const std::string& address, ClientOptions options = {});

  bool connected() const { return sock_.valid() && !dead_; }

  /// Closes for good: drops the connection (releasing server-side
  /// handles), forgets recorded registrations, and fails later calls with
  /// FailedPrecondition — explicit Close is not a fault to ride out.
  void Close();

  /// Liveness probe; returns the echoed nonce.
  Result<std::uint64_t> Ping(std::uint64_t nonce);

  /// Compiles `premises` (over an `n`-attribute universe) server-side;
  /// the returned handle feeds `CheckBatch` until `Release` or `Close`.
  /// The handle is client-scoped and survives reconnects (the client
  /// re-registers under the covers).
  Result<RegisterOkMsg> RegisterPremises(int n, const ConstraintSet& premises);

  /// Decides `handle's premises |= goals[i]` for every goal. `deadline`
  /// (zero = none) is the server-side wall-clock budget for the whole
  /// batch — and the client-side bound past which no retry is scheduled;
  /// queries past it come back DeadlineExceeded or degraded, matching the
  /// in-process engine's semantics.
  Result<BatchResultMsg> CheckBatch(std::uint64_t handle, int n,
                                    const std::vector<DifferentialConstraint>& goals,
                                    std::chrono::milliseconds deadline = {});

  /// Drops `handle` server-side and forgets its registration record.
  Status Release(std::uint64_t handle);

  const ClientStats& stats() const { return stats_; }
  CircuitBreaker::State breaker_state() const { return breaker_.state(); }

  /// The trace context of the most recent call: minted client-side at call
  /// start, overwritten by the server's echo when the reply carries one.
  /// `IdHex()` is the id to look up in the server's /tracez.
  const TraceContext& last_trace() const { return last_trace_; }

  /// The wire version currently spoken (changes only via auto-downgrade).
  std::uint8_t wire_version() const { return wire_version_; }

 private:
  /// A recorded registration: enough to re-establish the server-side
  /// handle on a fresh connection.
  struct HandleRecord {
    std::uint64_t server_handle = 0;
    int n = 0;
    ConstraintSet premises;
  };

  /// How a failed attempt should drive the retry loop.
  enum class FailureClass {
    kTransport,   // connection-level: poison + reconnect + retry
    kOverloaded,  // server shed: back off (honoring the hint) + retry
    kFatal,       // typed server verdict: surface immediately
  };

  DiffcClient(std::string address, ClientOptions options);

  /// The retry loop shared by every request: breaker gate, (re)connect
  /// with handle re-registration, one round trip, decode, classify,
  /// back off. `encode` runs per attempt (server handles may change
  /// across reconnects); `decode` validates the expected reply payload.
  /// `op` names the call for spans ("check-batch", ...); `wire_tc`, when
  /// non-null, receives the minted trace context so the encode closure can
  /// put it on the wire (null for messages without a trace field).
  template <typename T>
  Result<T> CallDecoded(const char* op, TraceContext* wire_tc, WireResponse expected,
                        const Deadline& deadline, const std::function<Frame()>& encode,
                        const std::function<Result<T>(const Frame&)>& decode);

  /// One send/receive on the current connection. Any framing-level
  /// failure (write, read, clean EOF, unexpected type) marks the
  /// connection dead — a partially read reply must never poison the next
  /// request. Typed error and OVERLOADED frames come back as their
  /// Status with `*cls`/`*retry_hint` set accordingly.
  Result<Frame> RoundTripRaw(const Frame& request, WireResponse expected, FailureClass* cls,
                             std::chrono::milliseconds* retry_hint);

  /// Ensures a live connection: reconnects when poisoned, runs the
  /// half-open breaker probe (Ping), and re-registers recorded premises.
  Status EnsureReady(FailureClass* cls);

  void NoteBreakerTransition(CircuitBreaker::State before);
  void OnTransportFailure();
  void OnServerReply();
  std::uint64_t NextNonce();
  /// Nonzero draw from the client's seeded rng (trace/span ids —
  /// deterministic under a pinned seed).
  std::uint64_t RandomBits();

  std::string address_;
  ClientOptions options_;
  Socket sock_;
  /// Poisoned-connection flag (set on any framing error): the next call
  /// reconnects instead of reading garbage.
  bool dead_ = false;
  bool closed_ = false;
  bool connected_once_ = false;
  CircuitBreaker breaker_;
  std::mt19937_64 rng_;
  /// Client-scoped handle → registration record. Client handles are
  /// allocated locally so they can never collide with a restarted
  /// server's handle space.
  std::unordered_map<std::uint64_t, HandleRecord> handles_;
  std::uint64_t next_handle_ = 1;
  ClientStats stats_;
  /// Negotiated wire version: starts at the clamped option, drops to
  /// kMinWireVersion when the server rejects v3 frames.
  std::uint8_t wire_version_ = kWireVersion;
  TraceContext last_trace_;
};

}  // namespace diffc::net

#endif  // DIFFC_NET_CLIENT_H_
