#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "lattice/set_family.h"
#include "obs/exposition.h"
#include "util/bitops.h"
#include "util/failpoint.h"

namespace diffc::net {

std::string TraceContext::IdHex() const {
  return obs::HexU64(trace_id_hi) + obs::HexU64(trace_id_lo);
}

const char* WireRequestName(WireRequest t) {
  switch (t) {
    case WireRequest::kPing:
      return "ping";
    case WireRequest::kRegisterPremises:
      return "register-premises";
    case WireRequest::kCheckBatch:
      return "check-batch";
    case WireRequest::kRelease:
      return "release";
  }
  return "?";
}

const char* WireResponseName(WireResponse t) {
  switch (t) {
    case WireResponse::kPong:
      return "pong";
    case WireResponse::kRegisterOk:
      return "register-ok";
    case WireResponse::kBatchResult:
      return "batch-result";
    case WireResponse::kReleaseOk:
      return "release-ok";
    case WireResponse::kOverloaded:
      return "overloaded";
    case WireResponse::kError:
      return "error";
  }
  return "?";
}

bool IsKnownRequest(std::uint8_t t) {
  switch (static_cast<WireRequest>(t)) {
    case WireRequest::kPing:
    case WireRequest::kRegisterPremises:
    case WireRequest::kCheckBatch:
    case WireRequest::kRelease:
      return true;
  }
  return false;
}

void WireWriter::U32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::String(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

Result<std::uint8_t> WireReader::U8() {
  std::uint8_t v = 0;
  if (!cur_.TryU8(&v)) return Status::InvalidArgument("truncated payload: u8");
  return v;
}

Result<std::uint32_t> WireReader::U32() {
  std::uint32_t v = 0;
  if (!cur_.TryU32(&v)) return Status::InvalidArgument("truncated payload: u32");
  return v;
}

Result<std::uint64_t> WireReader::U64() {
  std::uint64_t v = 0;
  if (!cur_.TryU64(&v)) return Status::InvalidArgument("truncated payload: u64");
  return v;
}

Result<std::string> WireReader::String(std::uint32_t max_bytes) {
  Result<std::uint32_t> len = U32();
  if (!len.ok()) return len.status();
  if (*len > max_bytes) {
    return Status::InvalidArgument("string field exceeds cap (" + std::to_string(*len) +
                                   " > " + std::to_string(max_bytes) + ")");
  }
  std::string s;
  if (!cur_.TryBytes(*len, &s)) {
    return Status::InvalidArgument("truncated payload: string body");
  }
  return s;
}

Status WireReader::Finish() const {
  if (!cur_.exhausted()) {
    return Status::InvalidArgument("trailing bytes after message (" +
                                   std::to_string(cur_.remaining()) + ")");
  }
  return Status::Ok();
}

Status DecodeFrameHeader(const std::uint8_t* data, std::size_t size, FrameHeader* out) {
  ByteCursor cur(data, size);
  std::uint32_t len = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  if (!cur.TryU32(&len) || !cur.TryU8(&version) || !cur.TryU8(&type)) {
    return Status::InvalidArgument("truncated frame header");
  }
  if (version < kMinWireVersion || version > kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " + std::to_string(int{version}) +
                                   " (expected " + std::to_string(int{kWireVersion}) + ")");
  }
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument("declared frame payload " + std::to_string(len) +
                                   " exceeds cap " + std::to_string(kMaxFramePayload));
  }
  out->payload_len = len;
  out->version = version;
  out->type = type;
  return Status::Ok();
}

namespace {

Status CheckFrameType(const Frame& f, std::uint8_t expected, const char* what) {
  if (f.type != expected) {
    return Status::InvalidArgument(std::string("frame is not a ") + what + " (type " +
                                   std::to_string(f.type) + ")");
  }
  return Status::Ok();
}

// One constraint: lhs mask, member count, member masks. The universe size
// travels in the enclosing message; every mask is validated against it
// before any ItemSet is built (out-of-range bits would otherwise be
// undefined shifts downstream — the ItemSet boundary contract).
void EncodeConstraint(WireWriter* w, const DifferentialConstraint& c) {
  w->U64(c.lhs().bits());
  const std::vector<ItemSet>& members = c.rhs().members();
  w->U32(static_cast<std::uint32_t>(members.size()));
  for (const ItemSet& m : members) w->U64(m.bits());
}

Result<DifferentialConstraint> DecodeConstraint(WireReader* r, int n) {
  const Mask full = FullMask(n);
  Result<std::uint64_t> lhs = r->U64();
  if (!lhs.ok()) return lhs.status();
  if ((*lhs & ~full) != 0) {
    return Status::InvalidArgument("constraint lhs mask has attributes outside the " +
                                   std::to_string(n) + "-attribute universe");
  }
  Result<std::uint32_t> count = r->U32();
  if (!count.ok()) return count.status();
  if (*count > kMaxFamilyMembers) {
    return Status::InvalidArgument("constraint family size " + std::to_string(*count) +
                                   " exceeds cap " + std::to_string(kMaxFamilyMembers));
  }
  std::vector<ItemSet> members;
  members.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    Result<std::uint64_t> m = r->U64();
    if (!m.ok()) return m.status();
    if ((*m & ~full) != 0) {
      return Status::InvalidArgument("constraint family member has attributes outside the " +
                                     std::to_string(n) + "-attribute universe");
    }
    members.push_back(ItemSet(*m));
  }
  return DifferentialConstraint(ItemSet(*lhs), SetFamily(std::move(members)));
}

// Shared list codec for premises and goals: u8 n, u32 count, constraints.
Status DecodeConstraintList(WireReader* r, int* n, std::vector<DifferentialConstraint>* out) {
  Result<std::uint8_t> raw_n = r->U8();
  if (!raw_n.ok()) return raw_n.status();
  if (*raw_n > 64) {
    return Status::InvalidArgument("universe size " + std::to_string(int{*raw_n}) +
                                   " exceeds the 64-attribute maximum");
  }
  *n = int{*raw_n};
  Result<std::uint32_t> count = r->U32();
  if (!count.ok()) return count.status();
  if (*count > kMaxConstraintsPerMessage) {
    return Status::InvalidArgument("constraint count " + std::to_string(*count) +
                                   " exceeds cap " + std::to_string(kMaxConstraintsPerMessage));
  }
  out->reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    Result<DifferentialConstraint> c = DecodeConstraint(r, *n);
    if (!c.ok()) return c.status();
    out->push_back(*std::move(c));
  }
  return Status::Ok();
}

void EncodeConstraintList(WireWriter* w, int n,
                          const std::vector<DifferentialConstraint>& list) {
  w->U8(static_cast<std::uint8_t>(n));
  w->U32(static_cast<std::uint32_t>(list.size()));
  for (const DifferentialConstraint& c : list) EncodeConstraint(w, c);
}

Frame MakeFrame(std::uint8_t type, WireWriter&& w, std::uint8_t version = kWireVersion) {
  return Frame{type, version, std::move(w).Take()};
}

// v3 trace context: 25 bytes — trace id hi/lo, parent span id, sampled flag.
constexpr std::size_t kTraceContextBytes = 25;

void EncodeTraceContext(WireWriter* w, const TraceContext& tc) {
  w->U64(tc.trace_id_hi);
  w->U64(tc.trace_id_lo);
  w->U64(tc.parent_span_id);
  w->U8(tc.sampled ? 1 : 0);
}

Status DecodeTraceContext(WireReader* r, TraceContext* tc) {
  Result<std::uint64_t> hi = r->U64();
  if (!hi.ok()) return hi.status();
  tc->trace_id_hi = *hi;
  Result<std::uint64_t> lo = r->U64();
  if (!lo.ok()) return lo.status();
  tc->trace_id_lo = *lo;
  Result<std::uint64_t> parent = r->U64();
  if (!parent.ok()) return parent.status();
  tc->parent_span_id = *parent;
  Result<std::uint8_t> sampled = r->U8();
  if (!sampled.ok()) return sampled.status();
  if (*sampled > 1) {
    return Status::InvalidArgument("trace sampled flag byte out of range (" +
                                   std::to_string(int{*sampled}) + ")");
  }
  tc->sampled = *sampled != 0;
  return Status::Ok();
}

}  // namespace

Frame EncodeRegisterPremises(const RegisterPremisesMsg& msg, std::uint8_t version) {
  WireWriter w;
  EncodeConstraintList(&w, msg.n, msg.premises);
  if (version >= 3) EncodeTraceContext(&w, msg.trace);
  return MakeFrame(static_cast<std::uint8_t>(WireRequest::kRegisterPremises), std::move(w),
                   version);
}

Result<RegisterPremisesMsg> DecodeRegisterPremises(const Frame& f) {
  Status ts = CheckFrameType(f, static_cast<std::uint8_t>(WireRequest::kRegisterPremises),
                             "register-premises");
  if (!ts.ok()) return ts;
  WireReader r(f.payload);
  RegisterPremisesMsg msg;
  Status s = DecodeConstraintList(&r, &msg.n, &msg.premises);
  if (!s.ok()) return s;
  if (f.version >= 3) {
    s = DecodeTraceContext(&r, &msg.trace);
    if (!s.ok()) return s;
  }
  s = r.Finish();
  if (!s.ok()) return s;
  return msg;
}

Frame EncodeRegisterOk(const RegisterOkMsg& msg, std::uint8_t version) {
  WireWriter w;
  w.U64(msg.handle);
  w.U32(msg.canonical_constraints);
  if (version >= 3) EncodeTraceContext(&w, msg.trace);
  return MakeFrame(static_cast<std::uint8_t>(WireResponse::kRegisterOk), std::move(w),
                   version);
}

Result<RegisterOkMsg> DecodeRegisterOk(const Frame& f) {
  Status ts =
      CheckFrameType(f, static_cast<std::uint8_t>(WireResponse::kRegisterOk), "register-ok");
  if (!ts.ok()) return ts;
  if (DIFFC_FAILPOINT("wire/decode-register-ok")) {
    return Status::Unavailable("failpoint: injected register-ok decode failure");
  }
  WireReader r(f.payload);
  RegisterOkMsg msg;
  Result<std::uint64_t> handle = r.U64();
  if (!handle.ok()) return handle.status();
  msg.handle = *handle;
  Result<std::uint32_t> canonical = r.U32();
  if (!canonical.ok()) return canonical.status();
  msg.canonical_constraints = *canonical;
  if (f.version >= 3) {
    Status ds = DecodeTraceContext(&r, &msg.trace);
    if (!ds.ok()) return ds;
  }
  Status s = r.Finish();
  if (!s.ok()) return s;
  return msg;
}

Frame EncodeCheckBatch(const CheckBatchMsg& msg, std::uint8_t version) {
  WireWriter w;
  w.U64(msg.handle);
  w.U64(msg.deadline_ms);
  w.U64(msg.nonce);
  EncodeConstraintList(&w, msg.n, msg.goals);
  if (version >= 3) EncodeTraceContext(&w, msg.trace);
  return MakeFrame(static_cast<std::uint8_t>(WireRequest::kCheckBatch), std::move(w),
                   version);
}

Result<CheckBatchMsg> DecodeCheckBatch(const Frame& f) {
  Status ts =
      CheckFrameType(f, static_cast<std::uint8_t>(WireRequest::kCheckBatch), "check-batch");
  if (!ts.ok()) return ts;
  WireReader r(f.payload);
  CheckBatchMsg msg;
  Result<std::uint64_t> handle = r.U64();
  if (!handle.ok()) return handle.status();
  msg.handle = *handle;
  Result<std::uint64_t> deadline = r.U64();
  if (!deadline.ok()) return deadline.status();
  msg.deadline_ms = *deadline;
  Result<std::uint64_t> nonce = r.U64();
  if (!nonce.ok()) return nonce.status();
  msg.nonce = *nonce;
  Status s = DecodeConstraintList(&r, &msg.n, &msg.goals);
  if (!s.ok()) return s;
  if (f.version >= 3) {
    s = DecodeTraceContext(&r, &msg.trace);
    if (!s.ok()) return s;
  }
  s = r.Finish();
  if (!s.ok()) return s;
  return msg;
}

Frame EncodeBatchResult(const BatchResultMsg& msg, std::uint8_t version) {
  // The reply must decode under the peer's own caps: each status_message
  // is truncated to kMaxErrorMessageBytes (mirroring EncodeError), and
  // the per-message cap shrinks further whenever full-length messages
  // could push the frame past kMaxFramePayload — so the reply provably
  // fits for any result count DecodeBatchResult accepts. Fixed bytes per
  // result: code(1) + length(4) + verdict(1) + has_cx(1) + cx(8) = 15;
  // plus the count(4), the 8 u64 stats, and (v3) the trace-context echo.
  std::size_t message_cap = kMaxErrorMessageBytes;
  if (!msg.results.empty()) {
    const std::size_t fixed =
        4 + 15 * msg.results.size() + 8 * 8 + (version >= 3 ? kTraceContextBytes : 0);
    const std::size_t budget = fixed < kMaxFramePayload ? kMaxFramePayload - fixed : 0;
    message_cap = std::min<std::size_t>(message_cap, budget / msg.results.size());
  }
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(msg.results.size()));
  for (const WireQueryResult& r : msg.results) {
    w.U8(static_cast<std::uint8_t>(r.status_code));
    std::string_view m = r.status_message;
    if (m.size() > message_cap) m = m.substr(0, message_cap);
    w.String(m);
    w.U8(r.verdict);
    w.U8(r.has_counterexample ? 1 : 0);
    w.U64(r.counterexample);
  }
  w.U64(msg.stats.queries);
  w.U64(msg.stats.implied);
  w.U64(msg.stats.not_implied);
  w.U64(msg.stats.failed);
  w.U64(msg.stats.degraded);
  w.U64(msg.stats.timed_out);
  w.U64(msg.stats.cancelled);
  w.U64(msg.stats.batch_wall_ns);
  if (version >= 3) EncodeTraceContext(&w, msg.trace);
  return MakeFrame(static_cast<std::uint8_t>(WireResponse::kBatchResult), std::move(w),
                   version);
}

Result<BatchResultMsg> DecodeBatchResult(const Frame& f) {
  Status ts =
      CheckFrameType(f, static_cast<std::uint8_t>(WireResponse::kBatchResult), "batch-result");
  if (!ts.ok()) return ts;
  if (DIFFC_FAILPOINT("wire/decode-batch-result")) {
    return Status::Unavailable("failpoint: injected batch-result decode failure");
  }
  WireReader r(f.payload);
  Result<std::uint32_t> count = r.U32();
  if (!count.ok()) return count.status();
  if (*count > kMaxConstraintsPerMessage) {
    return Status::InvalidArgument("result count " + std::to_string(*count) + " exceeds cap");
  }
  BatchResultMsg msg;
  msg.results.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    WireQueryResult q;
    Result<std::uint8_t> code = r.U8();
    if (!code.ok()) return code.status();
    q.status_code = static_cast<StatusCode>(*code);
    Result<std::string> message = r.String(kMaxErrorMessageBytes);
    if (!message.ok()) return message.status();
    q.status_message = *std::move(message);
    Result<std::uint8_t> verdict = r.U8();
    if (!verdict.ok()) return verdict.status();
    if (*verdict > 2) return Status::InvalidArgument("verdict byte out of range");
    q.verdict = *verdict;
    Result<std::uint8_t> has_cx = r.U8();
    if (!has_cx.ok()) return has_cx.status();
    q.has_counterexample = *has_cx != 0;
    Result<std::uint64_t> cx = r.U64();
    if (!cx.ok()) return cx.status();
    q.counterexample = *cx;
    msg.results.push_back(std::move(q));
  }
  std::uint64_t* stats_fields[] = {
      &msg.stats.queries,   &msg.stats.implied,   &msg.stats.not_implied,
      &msg.stats.failed,    &msg.stats.degraded,  &msg.stats.timed_out,
      &msg.stats.cancelled, &msg.stats.batch_wall_ns,
  };
  for (std::uint64_t* field : stats_fields) {
    Result<std::uint64_t> v = r.U64();
    if (!v.ok()) return v.status();
    *field = *v;
  }
  if (f.version >= 3) {
    Status ds = DecodeTraceContext(&r, &msg.trace);
    if (!ds.ok()) return ds;
  }
  Status s = r.Finish();
  if (!s.ok()) return s;
  return msg;
}

Frame EncodeRelease(const ReleaseMsg& msg) {
  WireWriter w;
  w.U64(msg.handle);
  return MakeFrame(static_cast<std::uint8_t>(WireRequest::kRelease), std::move(w));
}

Result<ReleaseMsg> DecodeRelease(const Frame& f) {
  Status ts = CheckFrameType(f, static_cast<std::uint8_t>(WireRequest::kRelease), "release");
  if (!ts.ok()) return ts;
  WireReader r(f.payload);
  ReleaseMsg msg;
  Result<std::uint64_t> handle = r.U64();
  if (!handle.ok()) return handle.status();
  msg.handle = *handle;
  Status s = r.Finish();
  if (!s.ok()) return s;
  return msg;
}

Frame EncodeReleaseOk() {
  return Frame{static_cast<std::uint8_t>(WireResponse::kReleaseOk), kWireVersion, {}};
}

namespace {

Frame EncodeNonce(std::uint8_t type, const PingMsg& msg) {
  WireWriter w;
  w.U64(msg.nonce);
  return MakeFrame(type, std::move(w));
}

Result<PingMsg> DecodeNonce(const Frame& f, std::uint8_t expected, const char* what) {
  Status ts = CheckFrameType(f, expected, what);
  if (!ts.ok()) return ts;
  WireReader r(f.payload);
  PingMsg msg;
  Result<std::uint64_t> nonce = r.U64();
  if (!nonce.ok()) return nonce.status();
  msg.nonce = *nonce;
  Status s = r.Finish();
  if (!s.ok()) return s;
  return msg;
}

}  // namespace

Frame EncodePing(const PingMsg& msg) {
  return EncodeNonce(static_cast<std::uint8_t>(WireRequest::kPing), msg);
}

Result<PingMsg> DecodePing(const Frame& f) {
  return DecodeNonce(f, static_cast<std::uint8_t>(WireRequest::kPing), "ping");
}

Frame EncodePong(const PingMsg& msg) {
  return EncodeNonce(static_cast<std::uint8_t>(WireResponse::kPong), msg);
}

Result<PingMsg> DecodePong(const Frame& f) {
  return DecodeNonce(f, static_cast<std::uint8_t>(WireResponse::kPong), "pong");
}

Frame EncodeOverloaded(const OverloadedMsg& msg) {
  WireWriter w;
  w.U32(msg.retry_after_ms);
  return MakeFrame(static_cast<std::uint8_t>(WireResponse::kOverloaded), std::move(w));
}

Result<OverloadedMsg> DecodeOverloaded(const Frame& f) {
  Status ts =
      CheckFrameType(f, static_cast<std::uint8_t>(WireResponse::kOverloaded), "overloaded");
  if (!ts.ok()) return ts;
  WireReader r(f.payload);
  OverloadedMsg msg;
  Result<std::uint32_t> retry_after = r.U32();
  if (!retry_after.ok()) return retry_after.status();
  msg.retry_after_ms = *retry_after;
  Status s = r.Finish();
  if (!s.ok()) return s;
  return msg;
}

Frame EncodeError(const ErrorMsg& msg) {
  WireWriter w;
  w.U8(static_cast<std::uint8_t>(msg.code));
  std::string_view m = msg.message;
  if (m.size() > kMaxErrorMessageBytes) m = m.substr(0, kMaxErrorMessageBytes);
  w.String(m);
  return MakeFrame(static_cast<std::uint8_t>(WireResponse::kError), std::move(w));
}

Result<ErrorMsg> DecodeError(const Frame& f) {
  Status ts = CheckFrameType(f, static_cast<std::uint8_t>(WireResponse::kError), "error");
  if (!ts.ok()) return ts;
  WireReader r(f.payload);
  ErrorMsg msg;
  Result<std::uint8_t> code = r.U8();
  if (!code.ok()) return code.status();
  if (*code > static_cast<std::uint8_t>(kMaxStatusCode)) {
    return Status::InvalidArgument("unknown status code byte " + std::to_string(int{*code}));
  }
  msg.code = static_cast<StatusCode>(*code);
  Result<std::string> message = r.String(kMaxErrorMessageBytes);
  if (!message.ok()) return message.status();
  msg.message = *std::move(message);
  Status s = r.Finish();
  if (!s.ok()) return s;
  return msg;
}

std::vector<std::uint8_t> SerializeFrame(const Frame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(6 + f.payload.size());
  std::uint32_t len = static_cast<std::uint32_t>(f.payload.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.push_back(f.version);
  out.push_back(f.type);
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return out;
}

}  // namespace diffc::net
