#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"

namespace diffc::net {

namespace {

// Classifies the current errno into the status code the retry layers key
// on. EINTR never reaches here — every syscall loop retries it — so by the
// time an error surfaces it is a real condition: a peer reset/abort is
// Unavailable (safe to retry on a fresh connection, matching the error
// frames the server sends before closing), a receive timeout from
// SO_RCVTIMEO is DeadlineExceeded, and anything else (EBADF, ENOMEM, ...)
// stays Internal so programming errors are not silently retried.
Status Errno(const std::string& what) {
  const int err = errno;
  const std::string msg = what + ": " + std::strerror(err);
  if (err == ECONNRESET || err == ECONNABORTED || err == EPIPE) {
    return Status::Unavailable(msg);
  }
  if (err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT) {
    return Status::DeadlineExceeded(msg);
  }
  return Status::Internal(msg);
}

bool IsUnixAddress(const std::string& address) {
  return address.rfind("unix:", 0) == 0;
}

// Splits "host:port" at the last colon (host may be a name or IPv4
// literal). Returns InvalidArgument when there is no colon or the port is
// not numeric.
Status SplitHostPort(const std::string& address, std::string* host, std::string* port) {
  std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == address.size()) {
    return Status::InvalidArgument("address must be host:port or unix:/path, got '" +
                                   address + "'");
  }
  *host = address.substr(0, colon);
  *port = address.substr(colon + 1);
  for (char c : *port) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-numeric port in '" + address + "'");
    }
  }
  return Status::Ok();
}

Status FillUnixAddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("unix socket path empty or too long: '" + path + "'");
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownRead() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

namespace {

Status SetTimeoutOpt(int fd, int opt, std::chrono::milliseconds timeout) {
  if (fd < 0) return Status::FailedPrecondition("setsockopt on closed socket");
  if (timeout.count() < 0) timeout = std::chrono::milliseconds(0);  // 0 = no bound.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(timeout)");
  }
  return Status::Ok();
}

}  // namespace

Status Socket::SetRecvTimeout(std::chrono::milliseconds timeout) const {
  return SetTimeoutOpt(fd_, SO_RCVTIMEO, timeout);
}

Status Socket::SetSendTimeout(std::chrono::milliseconds timeout) const {
  return SetTimeoutOpt(fd_, SO_SNDTIMEO, timeout);
}

Status Socket::SendAll(const void* data, std::size_t len) const {
  if (fd_ < 0) return Status::FailedPrecondition("send on closed socket");
  if (DIFFC_FAILPOINT("net/send-reset")) {
    return Status::Unavailable("failpoint: injected connection reset before send");
  }
  if (len > 1 && DIFFC_FAILPOINT("net/send-torn")) {
    // A torn write: deliver a prefix, then fail as a mid-write reset
    // would — the peer sees a truncated frame, the writer a dead
    // connection.
    const char* q = static_cast<const char*>(data);
    std::size_t left = len / 2;
    while (left > 0) {
      ssize_t n = ::send(fd_, q, left, MSG_NOSIGNAL);
      if (n <= 0) break;
      q += n;
      left -= static_cast<std::size_t>(n);
    }
    return Status::Unavailable("failpoint: torn write after " + std::to_string(len / 2 - left) +
                               " of " + std::to_string(len) + " bytes");
  }
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status Socket::RecvAll(void* data, std::size_t len, bool* clean_eof) const {
  auto give_up = std::chrono::steady_clock::time_point::max();
  return RecvAllStalled(data, len, clean_eof, std::chrono::milliseconds(0), &give_up);
}

Status Socket::RecvAllStalled(void* data, std::size_t len, bool* clean_eof,
                              std::chrono::milliseconds stall,
                              std::chrono::steady_clock::time_point* give_up) const {
  using Clock = std::chrono::steady_clock;
  *clean_eof = false;
  if (fd_ < 0) return Status::FailedPrecondition("recv on closed socket");
  if (DIFFC_FAILPOINT("net/recv-reset")) {
    return Status::Unavailable("failpoint: injected connection reset before recv");
  }
  // Whether some earlier read already armed the stall deadline — then an
  // EOF here, even before this buffer's first byte, lands mid-frame and
  // must decode as truncation, not a clean close.
  const bool mid_frame = *give_up != Clock::time_point::max();
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    if (*give_up != Clock::time_point::max()) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          *give_up - Clock::now());
      if (remaining.count() <= 0) {
        return Status::DeadlineExceeded("peer stalled mid-frame beyond the stall budget");
      }
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      int pr = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return Errno("poll");
      }
      if (pr == 0) {
        return Status::DeadlineExceeded("peer stalled mid-frame beyond the stall budget");
      }
      // Readable (or hung up / errored): fall through to recv, which
      // reports the precise condition.
    }
    ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0 && !mid_frame) {
        *clean_eof = true;
        return Status::Ok();
      }
      return Status::InvalidArgument("truncated frame: peer closed mid-read after " +
                                     std::to_string(got) + " of " + std::to_string(len) +
                                     " bytes");
    }
    got += static_cast<std::size_t>(n);
    if (*give_up == Clock::time_point::max() && stall.count() > 0) {
      *give_up = Clock::now() + stall;
    }
  }
  return Status::Ok();
}

Result<std::size_t> Socket::RecvSome(void* data, std::size_t cap) const {
  if (fd_ < 0) return Status::FailedPrecondition("recv on closed socket");
  while (true) {
    ssize_t n = ::recv(fd_, data, cap, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

namespace {

// Connects `fd` to `addr`, bounded by `timeout` when positive: the socket
// goes non-blocking, the in-progress connect is awaited with poll, and the
// outcome is read back from SO_ERROR — the only portable way to bound
// ::connect (there is no SO_CONNECTTIMEO). The socket is restored to
// blocking mode on success.
Status ConnectFd(int fd, const sockaddr* addr, socklen_t addrlen, const std::string& address,
                 std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) {
    while (::connect(fd, addr, addrlen) != 0) {
      if (errno == EINTR) continue;
      return Errno("connect " + address);
    }
    return Status::Ok();
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  if (::connect(fd, addr, addrlen) != 0) {
    // EINTR here also means "in progress" (POSIX: the connection proceeds
    // asynchronously), so both wait below.
    if (errno != EINPROGRESS && errno != EINTR) return Errno("connect " + address);
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const auto give_up = std::chrono::steady_clock::now() + timeout;
    int pr;
    do {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          give_up - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        pr = 0;
        break;
      }
      pr = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    } while (pr < 0 && errno == EINTR);
    if (pr < 0) return Errno("poll(connect " + address + ")");
    if (pr == 0) {
      return Status::DeadlineExceeded("connect " + address + " timed out after " +
                                      std::to_string(timeout.count()) + "ms");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::Internal("connect " + address + ": " + std::strerror(err));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) return Errno("fcntl(restore blocking)");
  return Status::Ok();
}

}  // namespace

Result<Socket> Connect(const std::string& address, std::chrono::milliseconds connect_timeout) {
  if (DIFFC_FAILPOINT("net/connect-fail")) {
    return Status::Unavailable("failpoint: injected connect failure to " + address);
  }
  if (IsUnixAddress(address)) {
    sockaddr_un addr;
    Status s = FillUnixAddr(address.substr(5), &addr);
    if (!s.ok()) return s;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_UNIX)");
    Status cs = ConnectFd(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr), address,
                          connect_timeout);
    if (!cs.ok()) {
      ::close(fd);
      return cs;
    }
    return Socket(fd);
  }

  std::string host, port;
  Status s = SplitHostPort(address, &host, &port);
  if (!s.ok()) return s;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    return Status::InvalidArgument("cannot resolve '" + address + "': " + gai_strerror(gai));
  }
  Status last = Status::Internal("no addresses for '" + address + "'");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    Status cs = ConnectFd(fd, ai->ai_addr, ai->ai_addrlen, address, connect_timeout);
    if (cs.ok()) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(res);
      return Socket(fd);
    }
    last = std::move(cs);
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      bound_address_(std::move(other.bound_address_)),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    bound_address_ = std::move(other.bound_address_);
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

Result<Listener> Listener::Bind(const std::string& address) {
  Listener listener;
  if (IsUnixAddress(address)) {
    const std::string path = address.substr(5);
    sockaddr_un addr;
    Status s = FillUnixAddr(path, &addr);
    if (!s.ok()) return s;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_UNIX)");
    ::unlink(path.c_str());  // Stale socket file from a crashed predecessor.
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status err = Errno("bind " + address);
      ::close(fd);
      return err;
    }
    if (::listen(fd, 64) != 0) {
      Status err = Errno("listen " + address);
      ::close(fd);
      return err;
    }
    listener.fd_ = fd;
    listener.bound_address_ = address;
    listener.unix_path_ = path;
    return listener;
  }

  std::string host, port;
  Status s = SplitHostPort(address, &host, &port);
  if (!s.ok()) return s;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    return Status::InvalidArgument("cannot resolve '" + address + "': " + gai_strerror(gai));
  }
  int fd = -1;
  Status last = Status::Internal("no addresses for '" + address + "'");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 64) == 0) break;
    last = Errno("bind/listen " + address);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return last;

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    Status err = Errno("getsockname");
    ::close(fd);
    return err;
  }
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof(ip));
  listener.fd_ = fd;
  listener.bound_address_ = std::string(ip) + ":" + std::to_string(ntohs(bound.sin_port));
  return listener;
}

Result<Socket> Listener::Accept() const {
  if (fd_ < 0) return Status::Cancelled("listener closed");
  if (DIFFC_FAILPOINT("net/accept-fail")) {
    return Status::Unavailable("failpoint: injected accept failure");
  }
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // EBADF / EINVAL: Close() raced with or preceded this Accept — the
    // orderly shutdown path, not an error worth surfacing loudly.
    if (errno == EBADF || errno == EINVAL) return Status::Cancelled("listener closed");
    return Errno("accept");
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    // Shutdown wakes a concurrent blocking accept() before close
    // invalidates the fd (close alone does not unblock accept on Linux).
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Status WriteFrame(const Socket& sock, const Frame& frame) {
  std::vector<std::uint8_t> bytes = SerializeFrame(frame);
  return sock.SendAll(bytes.data(), bytes.size());
}

Status ReadFrame(const Socket& sock, Frame* frame, bool* clean_eof,
                 std::chrono::milliseconds stall_budget) {
  *clean_eof = false;
  // One stall deadline spans the whole frame: armed by the header's first
  // byte, shared with the payload read below.
  auto give_up = std::chrono::steady_clock::time_point::max();
  std::uint8_t header[6];
  bool eof = false;
  Status s = sock.RecvAllStalled(header, sizeof(header), &eof, stall_budget, &give_up);
  if (!s.ok()) return s;
  if (eof) {
    *clean_eof = true;
    return Status::Ok();
  }
  FrameHeader head;
  s = DecodeFrameHeader(header, sizeof(header), &head);
  if (!s.ok()) return s;
  frame->type = head.type;
  frame->version = head.version;
  frame->payload.resize(head.payload_len);
  if (head.payload_len > 0) {
    s = sock.RecvAllStalled(frame->payload.data(), head.payload_len, &eof, stall_budget,
                            &give_up);
    if (!s.ok()) return s;
    if (eof) return Status::InvalidArgument("truncated frame: stream ended before payload");
  }
  return Status::Ok();
}

}  // namespace diffc::net
