#ifndef DIFFC_NET_RETRY_H_
#define DIFFC_NET_RETRY_H_

#include <chrono>
#include <cstdint>
#include <random>

#include "util/deadline.h"
#include "util/status.h"

namespace diffc::net {

/// The client's retry discipline for transient failures (transport errors
/// and server shed replies). Defaults suit loopback/LAN deployments; see
/// DESIGN.md §11 "Failure handling" for the semantics.
struct RetryPolicy {
  /// Total tries including the first; 1 disables retries.
  int max_attempts = 4;
  /// Backoff before the first retry; doubles (times `backoff_multiplier`)
  /// per failure up to `max_backoff`.
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{2000};
  double backoff_multiplier = 2.0;
  /// Each delay is perturbed by a uniform factor in [1-jitter, 1+jitter]
  /// so synchronized clients do not retry in lockstep.
  double jitter = 0.2;
  /// Wall-clock budget across all retries of one call, measured from the
  /// first failure; zero = unbounded. A delay that would overrun the
  /// budget ends the retry loop instead.
  std::chrono::milliseconds retry_budget{10000};
};

/// The per-call state of a retry loop: counts failures, produces the next
/// backoff delay, and says when to stop. Deadline-aware — a delay that
/// would sleep past the caller's deadline (or the policy's retry budget)
/// is refused, so the loop never retries past the point where the answer
/// could still be useful.
class RetrySchedule {
 public:
  RetrySchedule(const RetryPolicy& policy, std::uint64_t jitter_seed);

  /// Registers one failure and returns how long to sleep before the next
  /// attempt. `server_hint` (zero = none) is a retry-after floor from an
  /// OVERLOADED reply — the delay never undercuts it. Errors when the
  /// policy allows no further attempt: ResourceExhausted (attempts),
  /// DeadlineExceeded (caller deadline or retry budget would be overrun).
  Result<std::chrono::milliseconds> NextDelay(std::chrono::milliseconds server_hint,
                                              const Deadline& deadline);

  /// Failures registered so far.
  int failures() const { return failures_; }

 private:
  const RetryPolicy policy_;
  int failures_ = 0;
  std::chrono::milliseconds current_;
  Deadline budget_deadline_;  // Armed lazily at the first failure.
  bool budget_armed_ = false;
  std::mt19937_64 rng_;
};

/// Options of a per-endpoint circuit breaker.
struct CircuitBreakerOptions {
  /// Consecutive transport failures that open the breaker.
  int failure_threshold = 5;
  /// How long an open breaker short-circuits before admitting a half-open
  /// probe.
  std::chrono::milliseconds open_duration{1000};
  /// Successful probes required to close again from half-open.
  int half_open_successes = 1;
};

/// A closed/open/half-open circuit breaker over one endpoint. Closed
/// passes everything through; `failure_threshold` consecutive transport
/// failures open it, after which attempts fail locally (Unavailable, no
/// I/O) until `open_duration` elapses; the next attempt then runs as a
/// half-open probe — success closes the breaker, failure reopens it.
///
/// Not thread-safe; `DiffcClient` (one outstanding request per client) is
/// the intended owner.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() : CircuitBreaker(CircuitBreakerOptions{}) {}
  explicit CircuitBreaker(CircuitBreakerOptions options) : options_(options) {}

  /// Gate before an attempt. Closed/half-open: OK. Open within the
  /// cooldown: Unavailable (the caller must not touch the network). Open
  /// past the cooldown: transitions to half-open and admits the probe.
  Status Allow();

  void RecordSuccess();
  void RecordFailure();

  State state() const { return state_; }
  static const char* StateName(State s);

  /// Remaining cooldown while open (a retry-after hint); zero otherwise.
  std::chrono::milliseconds RetryAfter() const;

  /// Times the breaker transitioned to open (tests and stats).
  std::uint64_t opens() const { return opens_; }

 private:
  void TransitionTo(State next);

  const CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  std::uint64_t opens_ = 0;
  Deadline cooldown_ = Deadline::Never();
};

}  // namespace diffc::net

#endif  // DIFFC_NET_RETRY_H_
