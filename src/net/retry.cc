#include "net/retry.h"

#include <algorithm>
#include <string>

namespace diffc::net {

RetrySchedule::RetrySchedule(const RetryPolicy& policy, std::uint64_t jitter_seed)
    : policy_(policy), rng_(jitter_seed) {
  current_ = policy_.initial_backoff.count() > 0 ? policy_.initial_backoff
                                                 : std::chrono::milliseconds(0);
}

Result<std::chrono::milliseconds> RetrySchedule::NextDelay(
    std::chrono::milliseconds server_hint, const Deadline& deadline) {
  ++failures_;
  if (failures_ >= policy_.max_attempts) {
    return Status::ResourceExhausted("retry attempts exhausted (" +
                                     std::to_string(policy_.max_attempts) + ")");
  }
  if (!budget_armed_) {
    budget_armed_ = true;
    budget_deadline_ = policy_.retry_budget.count() > 0
                           ? Deadline::After(policy_.retry_budget)
                           : Deadline::Never();
  }

  std::chrono::milliseconds delay = std::min(current_, policy_.max_backoff);
  if (policy_.jitter > 0 && delay.count() > 0) {
    const double u = std::uniform_real_distribution<double>(-1.0, 1.0)(rng_);
    const auto wiggle = static_cast<long long>(static_cast<double>(delay.count()) *
                                               policy_.jitter * u);
    delay += std::chrono::milliseconds(wiggle);
    if (delay.count() < 0) delay = std::chrono::milliseconds(0);
  }
  // The server's retry-after hint is a floor, never a discount: backing
  // off less than an overloaded server asked for just feeds the overload.
  if (server_hint > delay) delay = server_hint;

  // Advance the exponential state for the next failure.
  const double next = static_cast<double>(current_.count()) * policy_.backoff_multiplier;
  current_ = std::chrono::milliseconds(
      std::min(static_cast<long long>(next), static_cast<long long>(policy_.max_backoff.count())));
  if (current_.count() < 1) current_ = std::chrono::milliseconds(1);

  if (!deadline.IsNever() && deadline.Remaining() <= delay) {
    return Status::DeadlineExceeded("caller deadline leaves no room for another retry");
  }
  if (!budget_deadline_.IsNever() && budget_deadline_.Remaining() <= delay) {
    return Status::DeadlineExceeded("retry budget exhausted after " +
                                    std::to_string(failures_) + " failures");
  }
  return delay;
}

const char* CircuitBreaker::StateName(State s) {
  switch (s) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

void CircuitBreaker::TransitionTo(State next) {
  if (state_ == next) return;
  state_ = next;
  if (next == State::kOpen) {
    ++opens_;
    cooldown_ = Deadline::After(options_.open_duration);
  } else {
    cooldown_ = Deadline::Never();
  }
  if (next == State::kHalfOpen) half_open_successes_ = 0;
  if (next == State::kClosed) consecutive_failures_ = 0;
}

Status CircuitBreaker::Allow() {
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return Status::Ok();
    case State::kOpen:
      if (cooldown_.Expired()) {
        TransitionTo(State::kHalfOpen);
        return Status::Ok();
      }
      return Status::Unavailable("circuit breaker open; retry in ~" +
                                 std::to_string(RetryAfter().count()) + "ms");
  }
  return Status::Ok();
}

std::chrono::milliseconds CircuitBreaker::RetryAfter() const {
  if (state_ != State::kOpen || cooldown_.IsNever()) return std::chrono::milliseconds(0);
  const auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(cooldown_.Remaining());
  return remaining.count() > 0 ? remaining : std::chrono::milliseconds(0);
}

void CircuitBreaker::RecordSuccess() {
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      if (++half_open_successes_ >= options_.half_open_successes) {
        TransitionTo(State::kClosed);
      }
      break;
    case State::kOpen:
      // A success cannot originate while open (Allow refuses I/O); ignore.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  switch (state_) {
    case State::kHalfOpen:
      // The probe failed: straight back to open, cooldown restarted.
      TransitionTo(State::kOpen);
      break;
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TransitionTo(State::kOpen);
      }
      break;
    case State::kOpen:
      break;
  }
}

}  // namespace diffc::net
