#ifndef DIFFC_NET_SOCKET_H_
#define DIFFC_NET_SOCKET_H_

#include <chrono>
#include <string>

#include "net/wire.h"
#include "util/status.h"

namespace diffc::net {

/// Thin RAII wrappers over POSIX stream sockets — the only place in the
/// tree that touches raw fds. Addresses are strings in one of two forms:
///
///   - `"host:port"`  — TCP (port 0 binds an ephemeral port; the bound
///     address, with the real port, is available from `Listener`);
///   - `"unix:/path"` — a Unix-domain socket at `/path`.
///
/// All operations are blocking; the server gives each connection its own
/// thread and unblocks reads at drain time via `ShutdownRead`.

/// A connected stream socket (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();
  /// Half-closes the read side: a peer or local thread blocked in
  /// `ReadFrame` wakes with EOF, while pending writes still flush — the
  /// drain primitive.
  void ShutdownRead() const;
  /// Full shutdown (both directions).
  void ShutdownBoth() const;

  /// Bounds every subsequent blocking recv (SO_RCVTIMEO): a recv that
  /// waits longer fails instead of blocking forever. Zero or negative
  /// clears the bound. The metrics endpoint sets this so a silent peer
  /// cannot pin its serving thread across a drain.
  Status SetRecvTimeout(std::chrono::milliseconds timeout) const;
  /// Bounds every subsequent blocking send (SO_SNDTIMEO), as above for
  /// peers that stop reading mid-reply.
  Status SetSendTimeout(std::chrono::milliseconds timeout) const;

  /// Writes all `len` bytes (retrying short writes / EINTR; SIGPIPE is
  /// suppressed). Errors are classified for the retry layers: a peer
  /// reset/abort/broken pipe is Unavailable, a send-timeout expiry is
  /// DeadlineExceeded, anything else (EBADF, ENOMEM, ...) is Internal.
  Status SendAll(const void* data, std::size_t len) const;

  /// Reads exactly `len` bytes. `*clean_eof` is set true (with OK
  /// returned) when the stream ends *before the first byte*; an EOF
  /// mid-buffer is an InvalidArgument ("truncated"), because a peer that
  /// quits mid-frame left the stream unparseable. EINTR and short reads
  /// are retried internally and never surface; a hard peer reset
  /// (ECONNRESET/ECONNABORTED) is Unavailable, distinct from both the
  /// truncation case and the DeadlineExceeded of a recv-timeout expiry.
  Status RecvAll(void* data, std::size_t len, bool* clean_eof) const;

  /// `RecvAll` with a watchdog: `*give_up` is the absolute stall deadline
  /// for the unit of work spanning this read (one wire frame). While
  /// `*give_up` is `time_point::max()` the read blocks indefinitely (an
  /// idle peer between frames is legitimate); the first byte received
  /// arms it to now + `stall` (when `stall` > 0), and every subsequent
  /// wait is bounded by what remains — a peer that goes silent mid-frame
  /// fails with DeadlineExceeded instead of pinning the reader forever.
  /// Pass the same `*give_up` through the header and payload reads of one
  /// frame so the budget covers the frame as a whole.
  Status RecvAllStalled(void* data, std::size_t len, bool* clean_eof,
                        std::chrono::milliseconds stall,
                        std::chrono::steady_clock::time_point* give_up) const;

  /// Reads up to `cap` bytes — whatever one `recv` returns. 0 means EOF.
  /// The incremental read the line-oriented HTTP metrics endpoint needs.
  Result<std::size_t> RecvSome(void* data, std::size_t cap) const;

 private:
  int fd_ = -1;
};

/// Connects to `address` (see the address forms above). A positive
/// `connect_timeout` bounds connection establishment (non-blocking
/// connect + poll: DeadlineExceeded on expiry) so an unreachable or
/// black-holed host cannot hang the caller; zero blocks indefinitely.
Result<Socket> Connect(const std::string& address,
                       std::chrono::milliseconds connect_timeout = std::chrono::milliseconds(0));

/// A listening socket.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on `address`.
  static Result<Listener> Bind(const std::string& address);

  bool valid() const { return fd_ >= 0; }

  /// The bound address, with the kernel-assigned port for TCP port 0.
  const std::string& bound_address() const { return bound_address_; }

  /// Blocks for the next connection. After `Close`, returns Cancelled.
  Result<Socket> Accept() const;

  /// Closes the listening socket: concurrent and future `Accept` calls
  /// fail. For a Unix listener, unlinks the socket path.
  void Close();

 private:
  int fd_ = -1;
  std::string bound_address_;
  std::string unix_path_;  // Non-empty for Unix listeners; unlinked on Close.
};

/// Writes one frame (header + payload) to `sock`.
Status WriteFrame(const Socket& sock, const Frame& frame);

/// Reads one frame. Enforces the header contract before any allocation:
/// declared payload length capped at `kMaxFramePayload`, version byte must
/// match `kWireVersion`. `*clean_eof` true (with OK and an empty frame)
/// means the peer closed between frames; EOF inside a frame is
/// InvalidArgument. A positive `stall_budget` bounds the whole frame from
/// its first byte (see `RecvAllStalled`): DeadlineExceeded identifies a
/// peer stuck mid-frame, while waiting *between* frames stays unbounded.
Status ReadFrame(const Socket& sock, Frame* frame, bool* clean_eof,
                 std::chrono::milliseconds stall_budget = std::chrono::milliseconds(0));

}  // namespace diffc::net

#endif  // DIFFC_NET_SOCKET_H_
