#include "net/admission.h"

#include <string>

namespace diffc::net {

void AdmissionController::Slot::Reset() {
  if (ctrl_ != nullptr) {
    ctrl_->Release();
    ctrl_ = nullptr;
  }
}

Result<AdmissionController::Slot> AdmissionController::Admit() {
  MutexLock lock(&mu_);
  if (inflight_ >= options_.max_inflight_batches) {
    return Status::ResourceExhausted(
        "server at capacity: " + std::to_string(inflight_) + " of " +
        std::to_string(options_.max_inflight_batches) +
        " batch slots in flight; retry after in-flight batches finish");
  }
  ++inflight_;
  return Slot(this);
}

std::size_t AdmissionController::inflight() const {
  MutexLock lock(&mu_);
  return inflight_;
}

void AdmissionController::Release() {
  MutexLock lock(&mu_);
  if (inflight_ > 0) --inflight_;
}

}  // namespace diffc::net
