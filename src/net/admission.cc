#include "net/admission.h"

#include <algorithm>
#include <string>

namespace diffc::net {

namespace {

/// EWMA smoothing factor: ~the last five batches dominate, so the hint
/// tracks load shifts within a few requests without jumping on one
/// outlier.
constexpr double kEwmaAlpha = 0.2;

}  // namespace

void AdmissionController::Slot::Reset() {
  if (ctrl_ != nullptr) {
    const double held_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
            .count();
    ctrl_->Release(held_ms);
    ctrl_ = nullptr;
  }
}

Result<AdmissionController::Slot> AdmissionController::Admit() {
  MutexLock lock(&mu_);
  if (inflight_ >= options_.max_inflight_batches) {
    return Status::ResourceExhausted(
        "server at capacity: " + std::to_string(inflight_) + " of " +
        std::to_string(options_.max_inflight_batches) +
        " batch slots in flight; retry after in-flight batches finish");
  }
  ++inflight_;
  return Slot(this);
}

bool AdmissionController::ShouldShed() const {
  MutexLock lock(&mu_);
  if (options_.shed_watermark > 0 && inflight_ >= options_.shed_watermark) return true;
  if (options_.latency_watermark.count() > 0 &&
      ewma_latency_ms_ > static_cast<double>(options_.latency_watermark.count())) {
    return true;
  }
  return false;
}

std::chrono::milliseconds AdmissionController::RetryAfterHint() const {
  MutexLock lock(&mu_);
  const auto lo = static_cast<double>(options_.min_retry_after.count());
  const auto hi = static_cast<double>(options_.max_retry_after.count());
  const double hint = std::clamp(ewma_latency_ms_, lo, std::max(lo, hi));
  return std::chrono::milliseconds(static_cast<long long>(hint));
}

std::size_t AdmissionController::inflight() const {
  MutexLock lock(&mu_);
  return inflight_;
}

double AdmissionController::ewma_latency_ms() const {
  MutexLock lock(&mu_);
  return ewma_latency_ms_;
}

void AdmissionController::Release(double latency_ms) {
  MutexLock lock(&mu_);
  if (inflight_ > 0) --inflight_;
  ewma_latency_ms_ = ewma_latency_ms_ <= 0.0
                         ? latency_ms
                         : kEwmaAlpha * latency_ms + (1.0 - kEwmaAlpha) * ewma_latency_ms_;
}

}  // namespace diffc::net
