#ifndef DIFFC_NET_NONCE_CACHE_H_
#define DIFFC_NET_NONCE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "net/wire.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffc::net {

/// The server's idempotent-reply cache: CHECK_BATCH requests carrying a
/// nonzero nonce are answered at most once. The first arrival claims the
/// nonce (kMiss) and executes; a retry racing that execution sees
/// kInFlight (the server sheds it with a retry-after instead of running —
/// and admission-charging — the batch twice); a retry after completion
/// sees kDone and gets the original reply frame byte-for-byte.
///
/// Completed replies are kept FIFO up to `capacity`; in-flight claims are
/// bounded separately (a small slack over capacity) so an aborted client
/// cannot grow the table — past the bound, dedup degrades to best-effort
/// (kMiss without a claim) rather than failing requests.
class NonceCache {
 public:
  struct Options {
    std::size_t capacity = 64;
  };

  enum class State { kMiss, kInFlight, kDone };

  struct Lookup {
    State state = State::kMiss;
    /// The cached reply; meaningful only for kDone.
    Frame reply;
  };

  explicit NonceCache(Options options) : options_(options) {}

  NonceCache(const NonceCache&) = delete;
  NonceCache& operator=(const NonceCache&) = delete;

  /// Looks up `nonce` and, on a miss, claims it in-flight. Nonce 0 (a
  /// client without idempotency) is always a miss and never claimed.
  Lookup Begin(std::uint64_t nonce) EXCLUDES(mu_);

  /// Publishes the reply for an in-flight claim (no-op for unclaimed or
  /// already-done nonces), FIFO-evicting the oldest completed entries
  /// beyond capacity.
  void Complete(std::uint64_t nonce, const Frame& reply) EXCLUDES(mu_);

  /// Drops an in-flight claim whose outcome must not be replayed (error
  /// replies: a retry should re-execute, not replay a stale error).
  void Abandon(std::uint64_t nonce) EXCLUDES(mu_);

  /// Entries currently held (in-flight + done); tests.
  std::size_t size() const EXCLUDES(mu_);

 private:
  struct Entry {
    bool done = false;
    Frame reply;
  };

  const Options options_;
  mutable Mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_ GUARDED_BY(mu_);
  /// Completed nonces in completion order — the FIFO eviction queue.
  std::deque<std::uint64_t> done_order_ GUARDED_BY(mu_);
};

}  // namespace diffc::net

#endif  // DIFFC_NET_NONCE_CACHE_H_
