#ifndef DIFFC_NET_SERVER_H_
#define DIFFC_NET_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/handle_table.h"
#include "engine/implication_engine.h"
#include "net/admission.h"
#include "net/nonce_cache.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "obs/trace_store.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffc::net {

struct SessionContext;
struct RequestTrace;

/// Tuning knobs of a `DiffcdServer`.
struct ServerOptions {
  /// Wire-protocol listen address: "host:port" (port 0 = ephemeral) or
  /// "unix:/path".
  std::string listen_address = "127.0.0.1:0";
  /// HTTP /metrics listen address; empty disables the endpoint.
  std::string metrics_address;
  /// Options for the embedded `ImplicationEngine`.
  EngineOptions engine;
  /// Admission: concurrently executing CHECK_BATCH requests beyond this
  /// are rejected with a typed ResourceExhausted error frame.
  std::size_t max_inflight_batches = 8;
  /// Load shedding (DESIGN.md §11): at/above this many in-flight batches a
  /// new CHECK_BATCH gets an OVERLOADED reply (with a retry-after hint)
  /// *before* admission. 0 disables the soft watermark.
  std::size_t shed_watermark = 0;
  /// Shed while the EWMA batch latency exceeds this. Zero disables.
  std::chrono::milliseconds shed_latency_watermark{0};
  /// Retained replies for CHECK_BATCH idempotency nonces (retry dedup).
  std::size_t nonce_cache_capacity = 64;
  /// Per-frame stall budget: once a session has sent the first byte of a
  /// frame, the rest must arrive within this budget or the watchdog kills
  /// the session (a stuck-mid-frame peer otherwise pins its thread until
  /// drain). Idle sessions (no partial frame) are unaffected. Zero
  /// disables.
  std::chrono::milliseconds session_stall_budget{10000};
  /// Handle quota per session and process-wide (ResourceExhausted frames
  /// past either).
  std::size_t max_handles_per_session = 16;
  std::size_t max_total_handles = 4096;
  /// Graceful-drain budget: how long `Shutdown` waits for in-flight
  /// requests before firing the server-wide cancel token.
  std::chrono::milliseconds drain_deadline{5000};
  /// Per-connection budget on the HTTP metrics endpoint: every recv and
  /// the reply write are bounded by this, so a silent or trickling
  /// scraper cannot pin the metrics thread (which `Shutdown` joins
  /// before waiting out the drain). Zero disables the bound.
  std::chrono::milliseconds metrics_timeout{5000};
  /// Requests slower than this are recorded (with their span tree, when
  /// `trace_requests` is on) in the global event log, the slow-query log
  /// (/slowz + one JSON line to stderr), and the trace store; zero
  /// disables. diffcd exposes this as --slow_query_ms.
  std::chrono::milliseconds slow_request_threshold{250};
  /// Record a per-request span tree (read/decode/execute/encode) for the
  /// slow-request event log entries. Forces head-sampling of every request
  /// (equivalent to trace_sample_rate = 1).
  bool trace_requests = false;
  /// Head-sampling probability for request traces in [0, 1]: a sampled
  /// request records its full span tree (admission wait, nonce lookup,
  /// engine execution) into the trace store for /tracez. Unsampled
  /// requests pay one branch; slow/shed/errored ones still land in the
  /// store as single-span skeletons (tail always-sample).
  double trace_sample_rate = 0.01;
  /// Retained traces in the process-wide store behind /tracez.
  std::size_t trace_store_capacity = 256;
  /// Highest wire version this server accepts/speaks. Defaults to
  /// `kWireVersion`; tests pin it to an older version to emulate an
  /// old server against a new client (the client auto-downgrades on the
  /// version-mismatch error frame).
  std::uint8_t max_wire_version = kWireVersion;
};

/// `diffcd` — the networked implication service. One process-embedded
/// instance owns:
///
///   - a wire listener (TCP or Unix) with one session thread per
///     connection, dispatching frames through the `WireHandlerRegistry`;
///   - an `ImplicationEngine` (shared worker pool) answering CHECK_BATCH
///     requests, with per-request deadlines mapped onto `Deadline` and the
///     drain path onto a server-wide `CancelToken`;
///   - a `PreparedHandleTable` of REGISTER_PREMISES artifacts (per-session
///     quota; a session's handles are released when it disconnects);
///   - an `AdmissionController` bounding concurrent batches;
///   - an optional HTTP listener serving the PR 3 Prometheus exposition at
///     `/metrics` (and `/metrics.json`, `/healthz`).
///
/// Lifecycle: `Start()` binds and spawns the accept loop; `Shutdown()`
/// drains gracefully — stop accepting, half-close session reads so blocked
/// sessions see EOF while in-flight responses still flush, wait for
/// in-flight work up to `drain_deadline`, then fire the server-wide cancel
/// token and join everything. `Shutdown` is idempotent and also runs from
/// the destructor. `diffcd_main.cc` maps SIGTERM/SIGINT onto it.
class DiffcdServer {
 public:
  explicit DiffcdServer(ServerOptions options = {});
  ~DiffcdServer();

  DiffcdServer(const DiffcdServer&) = delete;
  DiffcdServer& operator=(const DiffcdServer&) = delete;

  /// Binds the listener(s) and starts accepting. FailedPrecondition when
  /// already started.
  Status Start() EXCLUDES(mu_);

  /// Graceful drain (see class comment). OK when fully drained within the
  /// deadline; DeadlineExceeded when the drain budget expired and
  /// in-flight work had to be cancelled (the server is still fully stopped
  /// on return). Idempotent: later calls return the first outcome.
  Status Shutdown() EXCLUDES(mu_);

  /// The bound wire address (real port for TCP port 0). Empty before
  /// `Start`.
  std::string bound_address() const EXCLUDES(mu_);
  /// The bound metrics address; empty when disabled or before `Start`.
  std::string metrics_bound_address() const EXCLUDES(mu_);

  /// True once `Shutdown` has begun: new connections and new requests on
  /// existing connections are refused.
  bool draining() const EXCLUDES(mu_);

  /// Live session count (tests and gauges).
  std::size_t sessions_active() const EXCLUDES(mu_);

  /// Sessions the server still holds state for: live ones plus finished
  /// ones awaiting their join by the reaper. Tests use this to prove that
  /// completed connections do not accumulate.
  std::size_t sessions_tracked() const EXCLUDES(mu_);

  // --- shared state for the registered wire handlers -------------------

  ImplicationEngine& engine() { return engine_; }
  PreparedHandleTable& handles() { return handles_; }
  AdmissionController& admission() { return admission_; }
  NonceCache& nonces() { return nonces_; }
  const ServerOptions& options() const { return options_; }
  /// The server-wide cancel token threaded into every batch; fired when
  /// the drain deadline expires.
  CancelToken drain_cancel() const { return drain_cancel_; }

  /// Called by a handler once it has decoded the request's trace context:
  /// adopts the wire identity (or mints one when absent), draws the
  /// head-sampling decision, mints the server span id, and enables
  /// `ctx->tracer` when sampled. Idempotent per request.
  void ArmRequestTrace(SessionContext* ctx, const TraceContext& wire_tc, const char* name);

  /// The trace context a handler echoes in a v3 reply: the request's trace
  /// id, this request's server span id, and the sampling flag. Zero-id
  /// (invalid) before `ArmRequestTrace`.
  static TraceContext ReplyTraceContext(const SessionContext& ctx);

 private:
  struct Session {
    std::uint64_t id = 0;
    Socket sock;
    std::thread thread;
  };

  void AcceptLoop();
  void SessionLoop(Session* session);
  /// Joins and destroys sessions that have finished their loop. The
  /// accept loop runs this on every new connection (so a long-lived
  /// server's footprint tracks *live* connections, not historical ones)
  /// and `Shutdown` runs it once more at the end.
  void ReapFinishedSessions() EXCLUDES(mu_);
  void MetricsLoop();
  /// Serves one HTTP connection on the metrics listener.
  void ServeMetricsConnection(Socket sock);
  /// JSON bodies of the introspection endpoints (schemas: DESIGN.md §12).
  std::string RenderTracez(const std::string& query) const;
  std::string RenderStatusz() const;
  std::string RenderSlowz() const;
  /// Dispatches one request frame, returning the response frame.
  Frame Dispatch(SessionContext* ctx, const Frame& frame);
  /// Closes the request's trace after the reply frame is chosen: joins the
  /// collected engine traces, classifies the outcome from the reply type,
  /// and stores into the trace store / slow-query log per the sampling and
  /// tail rules (DESIGN.md §12).
  void FinishRequestTrace(SessionContext* ctx, std::uint8_t reply_type,
                          std::uint64_t elapsed_ns);

  const ServerOptions options_;
  ImplicationEngine engine_;
  PreparedHandleTable handles_;
  AdmissionController admission_;
  NonceCache nonces_;
  CancelToken drain_cancel_;

  // Listeners, listener threads, and bound addresses are written only in
  // `Start` (before any server thread exists) and torn down once in the
  // single `Shutdown` transition; the in-between reads (blocking `Accept`
  // from the listener threads, address getters) are lock-free on purpose —
  // a blocking accept cannot hold a mutex, and `Listener::Close` is the
  // documented cross-thread unblock mechanism.
  Listener listener_;
  Listener metrics_listener_;
  std::string bound_address_;
  std::string metrics_bound_address_;
  /// Set once in `Start` (before any server thread), read by /statusz.
  std::chrono::steady_clock::time_point start_steady_{};
  std::uint64_t start_wall_unix_ns_ = 0;
  std::thread accept_thread_;
  std::thread metrics_thread_;

  mutable Mutex mu_;
  enum class State { kIdle, kRunning, kDraining, kStopped };
  State state_ GUARDED_BY(mu_) = State::kIdle;
  Status shutdown_status_ GUARDED_BY(mu_);
  std::uint64_t next_session_id_ GUARDED_BY(mu_) = 1;
  /// Live sessions only: a session's last act (under `mu_`) is to move
  /// its own entry onto `finished_sessions_`, where the reaper (accept
  /// loop or `Shutdown`) joins the thread and frees the `Session`.
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Session>> finished_sessions_ GUARDED_BY(mu_);
  std::size_t active_sessions_ GUARDED_BY(mu_) = 0;
};

/// The server-side trace state of one in-flight request. Armed by the
/// handler once the wire trace context is decoded (`ArmRequestTrace`),
/// finished by the session loop after the reply frame is chosen
/// (`FinishRequestTrace`), which decides storage: sampled requests always,
/// unsampled ones when slow/shed/errored (as single-span skeletons).
struct RequestTrace {
  /// Trace identity: from the wire when the client sent one, minted
  /// server-side otherwise.
  TraceContext wire;
  /// This request's server span id (minted at arm time; echoed in the
  /// reply's trace context).
  std::uint64_t server_span_id = 0;
  /// Span sink; enabled iff `sampled`.
  obs::Tracer tracer;
  bool armed = false;
  bool sampled = false;
  /// True when sampling was forced by the wire flag or `trace_requests`
  /// rather than drawn from `trace_sample_rate`.
  bool forced = false;
  /// Operation name ("check-batch", ...) once known.
  std::string name;
  /// Engine trace records collected by the handler (capped at 4), joined
  /// under the request's "execute" span at finish time.
  std::vector<std::shared_ptr<const obs::TraceRecord>> engine_traces;
};

/// Per-request context handed to `WireHandlerImpl::Handle`.
struct SessionContext {
  DiffcdServer* server = nullptr;
  /// The owning session — the handle-table owner id.
  std::uint64_t session_id = 0;
  /// Per-request tracer (never null; disabled unless the request is
  /// sampled — see `RequestTrace`).
  obs::Tracer* tracer = nullptr;
  /// Wire version of the request frame being handled; replies are encoded
  /// at this version so a v2 peer never sees v3 fields.
  std::uint8_t wire_version = kWireVersion;
  /// This request's trace state (never null during dispatch).
  RequestTrace* trace = nullptr;
};

}  // namespace diffc::net

#endif  // DIFFC_NET_SERVER_H_
