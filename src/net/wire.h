#ifndef DIFFC_NET_WIRE_H_
#define DIFFC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/constraint.h"
#include "net/cursor.h"
#include "util/status.h"

namespace diffc::net {

/// The diffcd wire protocol: length-prefixed binary frames over a stream
/// socket (TCP or Unix). Every frame is
///
///     [u32 payload_len][u8 version][u8 type][payload: payload_len bytes]
///
/// with all integers little-endian. `payload_len` counts only the payload
/// (not the 6-byte header) and is capped at `kMaxFramePayload`; a peer
/// declaring a larger frame is malformed and the connection is closed
/// after a typed error frame — the length is rejected *before* any
/// allocation, so a hostile 4 GiB declaration costs nothing. A version
/// mismatch or unknown type byte is handled the same way. A stream that
/// ends mid-frame decodes as InvalidArgument ("truncated"), never as a
/// hang or a partial message.
///
/// Payload scalars are fixed-width little-endian; variable-size fields
/// (strings, constraint lists) carry a length prefix with a hard cap each,
/// and every attribute mask is validated against the message's universe
/// size before any `ItemSet` is constructed — out-of-range attribute
/// indices are rejected at the boundary (see DESIGN.md §11).

/// Protocol version carried by every frame. v2 added the CHECK_BATCH
/// idempotency nonce and the OVERLOADED reply. v3 added the trace context
/// (16-byte trace id + 8-byte parent span id + sampling flag) to
/// REGISTER_PREMISES / CHECK_BATCH requests and its echo (trace id + server
/// span id + flag) to their replies.
inline constexpr std::uint8_t kWireVersion = 3;

/// Oldest version this build still speaks. `ReadFrame` accepts any frame in
/// [kMinWireVersion, kWireVersion] and records the version on the `Frame`;
/// codecs for the trace-carrying messages encode/decode the trace fields
/// only at v3+, so a v2 peer round-trips bit-for-bit against a v3 process.
inline constexpr std::uint8_t kMinWireVersion = 2;

/// Hard cap on a frame payload, checked before allocation.
inline constexpr std::uint32_t kMaxFramePayload = 4u << 20;  // 4 MiB

/// Caps on variable-size message fields (defense against absurd-but-
/// under-the-frame-cap declarations).
inline constexpr std::uint32_t kMaxConstraintsPerMessage = 1u << 16;
inline constexpr std::uint32_t kMaxFamilyMembers = 1u << 12;
inline constexpr std::uint32_t kMaxErrorMessageBytes = 1u << 12;

/// Client-to-server message types. Every enumerator must have a
/// `WireRequestName` case and a `DIFFC_REGISTER_WIRE_HANDLER` site
/// (enforced by the `wire-registry` rule of tools/diffc_lint.py).
enum class WireRequest : std::uint8_t {
  kPing = 0x01,              // liveness probe; echoes a nonce
  kRegisterPremises = 0x02,  // compile a premise set into a server handle
  kCheckBatch = 0x03,        // stream an implication batch against a handle
  kRelease = 0x04,           // drop a handle
};

/// Server-to-client message types (disjoint byte range from requests, so a
/// direction mix-up can never parse).
enum class WireResponse : std::uint8_t {
  kPong = 0x11,
  kRegisterOk = 0x12,
  kBatchResult = 0x13,
  kReleaseOk = 0x14,
  kOverloaded = 0x15,
  kError = 0x7F,
};

/// Stable names ("ping", "check-batch", ...) for stats and traces.
const char* WireRequestName(WireRequest t);
const char* WireResponseName(WireResponse t);

/// True iff `t` is a declared `WireRequest` enumerator.
bool IsKnownRequest(std::uint8_t t);

/// One decoded frame: the type byte, the wire version it was (or will be)
/// framed with, and the raw payload.
struct Frame {
  std::uint8_t type = 0;
  std::uint8_t version = kWireVersion;
  std::vector<std::uint8_t> payload;
};

/// The fixed 6 bytes in front of every payload.
inline constexpr std::size_t kFrameHeaderBytes = 6;

/// A decoded (and validated) frame header.
struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
};

/// Decodes the 6-byte frame header out of `data` and enforces the header
/// contract before anything is allocated: the version byte must fall in
/// [kMinWireVersion, kWireVersion] and the declared payload length under
/// `kMaxFramePayload`. InvalidArgument on a short buffer, a version
/// outside the window, or an oversized declaration — the same Status
/// `ReadFrame` surfaces, shared so the fuzz harness exercises the exact
/// production path.
Status DecodeFrameHeader(const std::uint8_t* data, std::size_t size, FrameHeader* out);

/// The trace context carried by v3 REGISTER_PREMISES / CHECK_BATCH frames
/// and echoed (with the responder's span id as `parent_span_id`) in their
/// replies. A zero trace id means "no context"; the server then mints one.
struct TraceContext {
  /// 16-byte trace id as two u64 halves (hi rendered first).
  std::uint64_t trace_id_hi = 0;
  std::uint64_t trace_id_lo = 0;
  /// Requests: the sender's span the server span should parent under.
  /// Replies: the server span id, so the client can point at it.
  std::uint64_t parent_span_id = 0;
  /// Head-sampling decision, propagated so both sides store the trace.
  bool sampled = false;

  bool valid() const { return trace_id_hi != 0 || trace_id_lo != 0; }

  /// 32 lower-case hex digits, hi half first (matches /tracez).
  std::string IdHex() const;
};

/// Appends little-endian scalars and length-prefixed blobs to a payload.
class WireWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  /// u32 length + bytes.
  void String(std::string_view s);

  std::vector<std::uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian reads over a payload. Every read reports
/// truncation as InvalidArgument instead of walking off the buffer, and
/// `Finish()` rejects trailing garbage. All byte access goes through the
/// `ByteCursor` (net/cursor.h) — this class only adds the typed-Status
/// vocabulary the codecs speak.
class WireReader {
 public:
  explicit WireReader(const std::vector<std::uint8_t>& payload) : cur_(payload) {}

  Result<std::uint8_t> U8();
  Result<std::uint32_t> U32();
  Result<std::uint64_t> U64();
  /// Reads a u32 length (capped at `max_bytes`) + bytes.
  Result<std::string> String(std::uint32_t max_bytes);

  /// OK iff the payload was consumed exactly.
  Status Finish() const;

  std::size_t remaining() const { return cur_.remaining(); }

 private:
  ByteCursor cur_;
};

// ---------------------------------------------------------------- messages

/// REGISTER_PREMISES: compile `premises` over an `n`-attribute universe
/// into a server-side `PreparedPremises` handle.
struct RegisterPremisesMsg {
  int n = 0;
  ConstraintSet premises;
  /// v3+: the caller's trace context (ignored by v2 encodes).
  TraceContext trace;
};

/// Reply: the handle and the size of the canonicalized set.
struct RegisterOkMsg {
  std::uint64_t handle = 0;
  std::uint32_t canonical_constraints = 0;
  /// v3+: trace id echo; `parent_span_id` is the server span id.
  TraceContext trace;
};

/// CHECK_BATCH: decide `handle's premises |= goals[i]` for every goal.
/// `n` must match the handle's universe (revalidated server-side);
/// `deadline_ms` (0 = none) bounds the whole batch server-side.
/// `nonce` (0 = none) makes the request idempotent: the server caches the
/// reply keyed by nonce, so a client retry of a batch whose reply was
/// lost gets the original answer back instead of a second execution (and
/// a second admission-quota charge).
struct CheckBatchMsg {
  std::uint64_t handle = 0;
  std::uint64_t deadline_ms = 0;
  std::uint64_t nonce = 0;
  int n = 0;
  std::vector<DifferentialConstraint> goals;
  /// v3+: the caller's trace context (ignored by v2 encodes).
  TraceContext trace;
};

/// One per-goal answer: the engine's per-query status, verdict, and
/// counterexample, index-aligned with the request's goals.
struct WireQueryResult {
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  /// ImplicationOutcome::Verdict as a byte.
  std::uint8_t verdict = 0;
  bool has_counterexample = false;
  std::uint64_t counterexample = 0;
};

/// The aggregate counters mirrored from `BatchStats` (the wire subset).
struct WireBatchStats {
  std::uint64_t queries = 0;
  std::uint64_t implied = 0;
  std::uint64_t not_implied = 0;
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t batch_wall_ns = 0;
};

struct BatchResultMsg {
  std::vector<WireQueryResult> results;
  WireBatchStats stats;
  /// v3+: trace id echo; `parent_span_id` is the server span id.
  TraceContext trace;
};

struct ReleaseMsg {
  std::uint64_t handle = 0;
};

struct PingMsg {
  std::uint64_t nonce = 0;
};

/// OVERLOADED: the server shed this request — admission hard cap, the
/// shed watermark, or a duplicate of a still-executing retry nonce.
/// `retry_after_ms` (0 = client's choice) is the server's backoff hint,
/// derived from its EWMA batch latency; `DiffcClient`'s retry schedule
/// never retries sooner than the hint.
struct OverloadedMsg {
  std::uint32_t retry_after_ms = 0;

  /// The Status a client surfaces when its retries exhaust on shed
  /// replies (ResourceExhausted, matching direct admission rejections).
  Status ToStatus() const {
    return Status::ResourceExhausted(
        "server overloaded; retry after " + std::to_string(retry_after_ms) + "ms");
  }
};

/// ERROR: a typed failure — the `Status` the server rejected the request
/// with, round-tripped so `DiffcClient` surfaces the original code
/// (InvalidArgument for malformed input, ResourceExhausted for admission
/// rejections, NotFound for unknown handles, ...).
struct ErrorMsg {
  StatusCode code = StatusCode::kInternal;
  std::string message;

  Status ToStatus() const { return Status(code, message); }
  static ErrorMsg FromStatus(const Status& s) {
    return ErrorMsg{s.code(), s.message()};
  }
};

// ----------------------------------------------------------- frame codecs

/// The four trace-carrying codecs take the wire version to frame at:
/// v2 omits the trace fields (bit-for-bit the PR 7 encoding), v3 appends
/// them. The remaining codecs are version-independent and default to
/// `kWireVersion` on the frame.
Frame EncodeRegisterPremises(const RegisterPremisesMsg& msg,
                             std::uint8_t version = kWireVersion);
Frame EncodeRegisterOk(const RegisterOkMsg& msg, std::uint8_t version = kWireVersion);
Frame EncodeCheckBatch(const CheckBatchMsg& msg, std::uint8_t version = kWireVersion);
Frame EncodeBatchResult(const BatchResultMsg& msg, std::uint8_t version = kWireVersion);
Frame EncodeRelease(const ReleaseMsg& msg);
Frame EncodeReleaseOk();
Frame EncodePing(const PingMsg& msg);
Frame EncodePong(const PingMsg& msg);
Frame EncodeOverloaded(const OverloadedMsg& msg);
Frame EncodeError(const ErrorMsg& msg);

/// Decoders verify the frame type, every field bound, and (for constraint
/// payloads) that each attribute mask fits the declared universe before
/// constructing an `ItemSet` — the wire is the trust boundary.
Result<RegisterPremisesMsg> DecodeRegisterPremises(const Frame& f);
Result<RegisterOkMsg> DecodeRegisterOk(const Frame& f);
Result<CheckBatchMsg> DecodeCheckBatch(const Frame& f);
Result<BatchResultMsg> DecodeBatchResult(const Frame& f);
Result<ReleaseMsg> DecodeRelease(const Frame& f);
Result<PingMsg> DecodePing(const Frame& f);
Result<PingMsg> DecodePong(const Frame& f);
Result<OverloadedMsg> DecodeOverloaded(const Frame& f);
Result<ErrorMsg> DecodeError(const Frame& f);

/// Serializes `f` as header + payload bytes (the exact octets WriteFrame
/// puts on the wire), for tests and buffering.
std::vector<std::uint8_t> SerializeFrame(const Frame& f);

}  // namespace diffc::net

#endif  // DIFFC_NET_WIRE_H_
