#ifndef DIFFC_NET_ADMISSION_H_
#define DIFFC_NET_ADMISSION_H_

#include <cstddef>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffc::net {

/// Admission control for the expensive request class: a fixed budget of
/// concurrently executing CHECK_BATCH requests. A full server *rejects*
/// (typed ResourceExhausted error frame, counted in
/// `diffc_net_admission_rejected_total`) instead of queueing — the client
/// owns the retry policy, and the server's memory is bounded by
/// construction (queues are where overload hides).
///
/// Handle quotas — the other admission axis — live in
/// `PreparedHandleTable`, enforced at registration.
class AdmissionController {
 public:
  struct Options {
    std::size_t max_inflight_batches = 8;
  };

  /// An RAII in-flight slot: holding one is the permission to run a batch;
  /// the destructor returns it. Move-only; default-constructed slots hold
  /// nothing.
  class Slot {
   public:
    Slot() = default;
    ~Slot() { Reset(); }
    Slot(Slot&& other) noexcept : ctrl_(other.ctrl_) { other.ctrl_ = nullptr; }
    Slot& operator=(Slot&& other) noexcept {
      if (this != &other) {
        Reset();
        ctrl_ = other.ctrl_;
        other.ctrl_ = nullptr;
      }
      return *this;
    }
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;

    bool held() const { return ctrl_ != nullptr; }
    /// Returns the slot early (idempotent).
    void Reset();

   private:
    friend class AdmissionController;
    explicit Slot(AdmissionController* ctrl) : ctrl_(ctrl) {}
    AdmissionController* ctrl_ = nullptr;
  };

  explicit AdmissionController(Options options) : options_(options) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Tries to take an in-flight slot. ResourceExhausted when the budget is
  /// fully occupied.
  Result<Slot> Admit() EXCLUDES(mu_);

  /// Currently occupied slots.
  std::size_t inflight() const EXCLUDES(mu_);

  std::size_t capacity() const { return options_.max_inflight_batches; }

 private:
  void Release() EXCLUDES(mu_);

  const Options options_;
  mutable Mutex mu_;
  std::size_t inflight_ GUARDED_BY(mu_) = 0;
};

}  // namespace diffc::net

#endif  // DIFFC_NET_ADMISSION_H_
