#ifndef DIFFC_NET_ADMISSION_H_
#define DIFFC_NET_ADMISSION_H_

#include <chrono>
#include <cstddef>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffc::net {

/// Admission control for the expensive request class: a fixed budget of
/// concurrently executing CHECK_BATCH requests. A full server *rejects*
/// (a typed OVERLOADED reply carrying a retry-after hint, counted in
/// `diffc_net_admission_rejected_total`) instead of queueing — the client
/// owns the retry policy, and the server's memory is bounded by
/// construction (queues are where overload hides).
///
/// On top of the hard cap sits load-based shedding: an optional soft
/// watermark on the in-flight count and an EWMA watermark on batch
/// latency. Either trips `ShouldShed()`, and `RetryAfterHint()` turns the
/// observed latency into the backoff the shed reply advertises — a loaded
/// server tells clients how long its batches are actually taking.
///
/// Handle quotas — the other admission axis — live in
/// `PreparedHandleTable`, enforced at registration.
class AdmissionController {
 public:
  struct Options {
    std::size_t max_inflight_batches = 8;
    /// Soft shed watermark on in-flight batches: `ShouldShed()` trips at
    /// or above it. 0 disables (only the hard cap sheds).
    std::size_t shed_watermark = 0;
    /// Latency watermark: `ShouldShed()` trips while the EWMA batch
    /// latency exceeds this. Zero disables.
    std::chrono::milliseconds latency_watermark{0};
    /// Clamp on `RetryAfterHint()`.
    std::chrono::milliseconds min_retry_after{10};
    std::chrono::milliseconds max_retry_after{2000};
  };

  /// An RAII in-flight slot: holding one is the permission to run a batch;
  /// the destructor returns it. Move-only; default-constructed slots hold
  /// nothing.
  class Slot {
   public:
    Slot() = default;
    ~Slot() { Reset(); }
    Slot(Slot&& other) noexcept : ctrl_(other.ctrl_), start_(other.start_) {
      other.ctrl_ = nullptr;
    }
    Slot& operator=(Slot&& other) noexcept {
      if (this != &other) {
        Reset();
        ctrl_ = other.ctrl_;
        start_ = other.start_;
        other.ctrl_ = nullptr;
      }
      return *this;
    }
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;

    bool held() const { return ctrl_ != nullptr; }
    /// Returns the slot early (idempotent), feeding the held duration into
    /// the controller's latency EWMA.
    void Reset();

   private:
    friend class AdmissionController;
    explicit Slot(AdmissionController* ctrl)
        : ctrl_(ctrl), start_(std::chrono::steady_clock::now()) {}
    AdmissionController* ctrl_ = nullptr;
    std::chrono::steady_clock::time_point start_{};
  };

  explicit AdmissionController(Options options) : options_(options) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Tries to take an in-flight slot. ResourceExhausted when the budget is
  /// fully occupied.
  Result<Slot> Admit() EXCLUDES(mu_);

  /// True when load shedding should bounce a new batch *before* admission:
  /// the in-flight count is at/above the soft watermark, or the EWMA batch
  /// latency is above the latency watermark.
  bool ShouldShed() const EXCLUDES(mu_);

  /// The retry-after hint for a shed/rejected request: the EWMA batch
  /// latency (how long until a slot plausibly frees), clamped to
  /// [min_retry_after, max_retry_after].
  std::chrono::milliseconds RetryAfterHint() const EXCLUDES(mu_);

  /// Currently occupied slots.
  std::size_t inflight() const EXCLUDES(mu_);

  std::size_t capacity() const { return options_.max_inflight_batches; }

  /// The configured watermarks and bounds, for /statusz.
  const Options& options() const { return options_; }

  /// The EWMA batch latency in milliseconds (0 until a batch finishes);
  /// tests and gauges.
  double ewma_latency_ms() const EXCLUDES(mu_);

 private:
  void Release(double latency_ms) EXCLUDES(mu_);

  const Options options_;
  mutable Mutex mu_;
  std::size_t inflight_ GUARDED_BY(mu_) = 0;
  double ewma_latency_ms_ GUARDED_BY(mu_) = 0.0;
};

}  // namespace diffc::net

#endif  // DIFFC_NET_ADMISSION_H_
