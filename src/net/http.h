#ifndef DIFFC_NET_HTTP_H_
#define DIFFC_NET_HTTP_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace diffc::net {

/// Cap on the bytes of request head the observability endpoints will
/// buffer before giving up on finding the end of the head.
inline constexpr std::size_t kMaxHttpHeadBytes = 8192;

/// The request line of an HTTP/1.x head, split into the parts the
/// observability endpoints route on. Headers and bodies are ignored by
/// design — the surface serves only GET with empty bodies.
struct HttpRequestHead {
  std::string method;
  std::string path;   // Without the query string.
  std::string query;  // Bytes after '?', empty when absent.
};

/// Parses the request line out of `head` (the raw bytes received so far,
/// which need not include the full `\r\n\r\n` terminator).
///
///  - NotFound: no `\r\n` yet — not HTTP (or not enough of it); the
///    server drops such connections silently.
///  - InvalidArgument: a request line without the two spaces of
///    `METHOD SP target SP version`; the server answers 400.
///  - Ok: `out` holds method/path/query. Method policy (GET-only) is the
///    caller's to enforce.
Status ParseHttpRequestHead(const std::string& head, HttpRequestHead* out);

/// Minimal query-string view: "a=1&b=x" -> lookup by key. Values are not
/// percent-decoded (trace ids and the filter values are plain hex/ASCII).
/// Returns "" when the key is absent.
std::string HttpQueryParam(const std::string& query, const std::string& key);

/// Parses 32 hex digits into the two trace-id halves. False on any other
/// shape.
bool ParseTraceId(const std::string& hex, std::uint64_t* hi, std::uint64_t* lo);

}  // namespace diffc::net

#endif  // DIFFC_NET_HTTP_H_
