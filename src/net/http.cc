#include "net/http.h"

namespace diffc::net {

Status ParseHttpRequestHead(const std::string& head, HttpRequestHead* out) {
  const std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) {
    return Status::NotFound("no request line terminator");
  }
  const std::string request_line = head.substr(0, line_end);

  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 <= sp1) {
    return Status::InvalidArgument("malformed request line");
  }
  out->method = request_line.substr(0, sp1);
  out->path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  out->query.clear();
  const std::size_t qmark = out->path.find('?');
  if (qmark != std::string::npos) {
    out->query = out->path.substr(qmark + 1);
    out->path = out->path.substr(0, qmark);
  }
  return Status::Ok();
}

std::string HttpQueryParam(const std::string& query, const std::string& key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp && query.substr(pos, eq - pos) == key) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

bool ParseTraceId(const std::string& hex, std::uint64_t* hi, std::uint64_t* lo) {
  if (hex.size() != 32) return false;
  std::uint64_t halves[2] = {0, 0};
  for (int half = 0; half < 2; ++half) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<std::size_t>(half * 16 + i)];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint64_t>(c - 'A') + 10;
      } else {
        return false;
      }
      halves[half] = (halves[half] << 4) | digit;
    }
  }
  *hi = halves[0];
  *lo = halves[1];
  return true;
}

}  // namespace diffc::net
