#include "net/nonce_cache.h"

namespace diffc::net {

NonceCache::Lookup NonceCache::Begin(std::uint64_t nonce) {
  Lookup out;
  if (nonce == 0) return out;
  MutexLock lock(&mu_);
  auto it = entries_.find(nonce);
  if (it != entries_.end()) {
    if (it->second.done) {
      out.state = State::kDone;
      out.reply = it->second.reply;
    } else {
      out.state = State::kInFlight;
    }
    return out;
  }
  // In-flight claims get a small slack over the done-capacity; beyond it
  // dedup is best-effort (miss without a claim) so the table stays bounded
  // no matter how many claims a crashing client strands.
  if (entries_.size() < options_.capacity + 64) {
    entries_.emplace(nonce, Entry{});
  }
  return out;
}

void NonceCache::Complete(std::uint64_t nonce, const Frame& reply) {
  if (nonce == 0) return;
  MutexLock lock(&mu_);
  auto it = entries_.find(nonce);
  if (it == entries_.end() || it->second.done) return;
  it->second.done = true;
  it->second.reply = reply;
  done_order_.push_back(nonce);
  while (done_order_.size() > options_.capacity) {
    entries_.erase(done_order_.front());
    done_order_.pop_front();
  }
}

void NonceCache::Abandon(std::uint64_t nonce) {
  if (nonce == 0) return;
  MutexLock lock(&mu_);
  auto it = entries_.find(nonce);
  if (it != entries_.end() && !it->second.done) entries_.erase(it);
}

std::size_t NonceCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace diffc::net
