#include "net/server.h"

#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "net/handler_registry.h"
#include "net/http.h"
#include "obs/event_log.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace_store.h"
#include "rewrite/simplifier.h"
#include "util/failpoint.h"

namespace diffc::net {

namespace {

/// Every diffcd service metric, registered once (the single registration
/// site per (name, labels) the metric-dup lint rule audits) and reused via
/// lock-free handles.
struct ServiceMetrics {
  obs::Counter* connections;
  obs::Gauge* sessions_active;
  obs::Counter* requests_ping;
  obs::Counter* requests_register;
  obs::Counter* requests_check_batch;
  obs::Counter* requests_release;
  obs::Counter* frame_errors;
  obs::Counter* error_frames;
  obs::Counter* admission_rejected;
  obs::Counter* batch_queries;
  obs::Gauge* handles_active;
  obs::Gauge* inflight_batches;
  obs::Counter* drains;
  obs::Gauge* draining;
  obs::Histogram* request_seconds;
  obs::Counter* shed;
  obs::Counter* watchdog_kills;
  obs::Counter* nonce_replays;
  obs::Counter* nonce_inflight_dups;
  obs::Counter* accept_failures;

  obs::Counter* ForRequest(WireRequest t) const {
    switch (t) {
      case WireRequest::kPing:
        return requests_ping;
      case WireRequest::kRegisterPremises:
        return requests_register;
      case WireRequest::kCheckBatch:
        return requests_check_batch;
      case WireRequest::kRelease:
        return requests_release;
    }
    return nullptr;
  }
};

ServiceMetrics& Metrics() {
  static ServiceMetrics* metrics = [] {
    obs::Registry& r = obs::Registry::Global();
    auto* m = new ServiceMetrics();
    m->connections =
        r.GetCounter("diffc_net_connections_total", "Wire connections accepted by diffcd");
    m->sessions_active = r.GetGauge("diffc_net_sessions_active", "Live diffcd sessions");
    m->requests_ping = r.GetCounter("diffc_net_requests_total", "Requests dispatched by type",
                                    {{"type", "ping"}});
    m->requests_register = r.GetCounter("diffc_net_requests_total",
                                        "Requests dispatched by type",
                                        {{"type", "register-premises"}});
    m->requests_check_batch = r.GetCounter("diffc_net_requests_total",
                                           "Requests dispatched by type",
                                           {{"type", "check-batch"}});
    m->requests_release = r.GetCounter("diffc_net_requests_total",
                                       "Requests dispatched by type", {{"type", "release"}});
    m->frame_errors = r.GetCounter(
        "diffc_net_frame_errors_total",
        "Malformed wire input: bad version, oversized or truncated frames, unknown types");
    m->error_frames =
        r.GetCounter("diffc_net_error_frames_total", "Typed error frames sent to clients");
    m->admission_rejected = r.GetCounter(
        "diffc_net_admission_rejected_total",
        "Requests rejected by admission control (batch slots or handle quotas)");
    m->batch_queries =
        r.GetCounter("diffc_net_batch_queries_total", "Implication queries served over the wire");
    m->handles_active =
        r.GetGauge("diffc_net_handles_active", "Live prepared-premises handles");
    m->inflight_batches =
        r.GetGauge("diffc_net_inflight_batches", "CHECK_BATCH requests currently executing");
    m->drains = r.GetCounter("diffc_net_drains_total", "Graceful drains begun");
    m->draining = r.GetGauge("diffc_net_draining", "1 while a drain is in progress");
    m->request_seconds =
        r.GetHistogram("diffc_net_request_seconds", "Wire request wall time by type",
                       obs::ExponentialBuckets(0.0001, 4.0, 12));
    m->shed = r.GetCounter(
        "diffc_net_shed_total",
        "CHECK_BATCH requests shed with an OVERLOADED reply (watermarks, admission "
        "cap, or in-flight retry nonces)");
    m->watchdog_kills = r.GetCounter(
        "diffc_net_watchdog_kills_total",
        "Sessions killed by the watchdog for stalling mid-frame beyond the stall budget");
    m->nonce_replays = r.GetCounter(
        "diffc_net_nonce_replays_total",
        "CHECK_BATCH retries answered from the idempotency nonce cache");
    m->nonce_inflight_dups = r.GetCounter(
        "diffc_net_nonce_inflight_dups_total",
        "CHECK_BATCH retries shed because the original attempt is still executing");
    m->accept_failures = r.GetCounter(
        "diffc_net_accept_failures_total",
        "Transient accept() failures the accept loop rode out");
    return m;
  }();
  return *metrics;
}

Frame ErrFrame(const Status& s) {
  Metrics().error_frames->Inc();
  return EncodeError(ErrorMsg::FromStatus(s));
}

// ----------------------------------------------------------- wire handlers
//
// One `WireHandlerImpl` per request type, self-registered like decision
// procedures; the wire-registry lint rule keeps this list in sync with the
// `WireRequest` enum. Handlers answer every failure with a typed error
// frame — connection teardown is the session loop's call, not theirs.

class PingHandler final : public WireHandlerImpl {
 public:
  WireRequest id() const override { return WireRequest::kPing; }
  const char* name() const override { return WireRequestName(WireRequest::kPing); }

  Frame Handle(SessionContext* ctx, const Frame& frame) const override {
    Result<PingMsg> msg = DecodePing(frame);
    if (!msg.ok()) return ErrFrame(msg.status());
    // Ping carries no wire trace context; the server still mints a trace
    // so slow/errored pings land in the store like any request.
    ctx->server->ArmRequestTrace(ctx, TraceContext{}, "ping");
    return EncodePong(*msg);
  }
};

class RegisterPremisesHandler final : public WireHandlerImpl {
 public:
  WireRequest id() const override { return WireRequest::kRegisterPremises; }
  const char* name() const override {
    return WireRequestName(WireRequest::kRegisterPremises);
  }

  Frame Handle(SessionContext* ctx, const Frame& frame) const override {
    Result<RegisterPremisesMsg> msg = DecodeRegisterPremises(frame);
    if (!msg.ok()) return ErrFrame(msg.status());
    ctx->server->ArmRequestTrace(ctx, msg->trace, "register-premises");

    Result<std::shared_ptr<const PreparedPremises>> prepared = [&] {
      obs::SpanGuard prepare_span(ctx->tracer, "prepare");
      return ctx->server->engine().Prepare(msg->n, msg->premises);
    }();
    if (!prepared.ok()) return ErrFrame(prepared.status());

    obs::SpanGuard register_span(ctx->tracer, "handle-register");
    Result<std::uint64_t> handle =
        ctx->server->handles().Register(ctx->session_id, *prepared);
    if (!handle.ok()) {
      if (handle.status().code() == StatusCode::kResourceExhausted) {
        Metrics().admission_rejected->Inc();
      }
      return ErrFrame(handle.status());
    }
    Metrics().handles_active->Set(static_cast<double>(ctx->server->handles().size()));

    RegisterOkMsg ok;
    ok.handle = *handle;
    ok.canonical_constraints =
        static_cast<std::uint32_t>((*prepared)->constraints().size());
    ok.trace = DiffcdServer::ReplyTraceContext(*ctx);
    return EncodeRegisterOk(ok, ctx->wire_version);
  }
};

/// RAII over an in-flight nonce claim: `Abandon`s on destruction unless
/// the reply was published with `Publish` — error replies must not be
/// replayed (a retry should re-execute, not re-fail).
class NonceClaim {
 public:
  NonceClaim(NonceCache* cache, std::uint64_t nonce) : cache_(cache), nonce_(nonce) {}
  ~NonceClaim() {
    if (cache_ != nullptr) cache_->Abandon(nonce_);
  }
  NonceClaim(const NonceClaim&) = delete;
  NonceClaim& operator=(const NonceClaim&) = delete;

  void Publish(const Frame& reply) {
    if (cache_ != nullptr) cache_->Complete(nonce_, reply);
    cache_ = nullptr;
  }

 private:
  NonceCache* cache_;
  std::uint64_t nonce_;
};

/// The OVERLOADED shed reply, hinting the server's EWMA batch latency.
Frame ShedFrame(SessionContext* ctx) {
  Metrics().shed->Inc();
  OverloadedMsg shed;
  shed.retry_after_ms =
      static_cast<std::uint32_t>(ctx->server->admission().RetryAfterHint().count());
  return EncodeOverloaded(shed);
}

class CheckBatchHandler final : public WireHandlerImpl {
 public:
  WireRequest id() const override { return WireRequest::kCheckBatch; }
  const char* name() const override { return WireRequestName(WireRequest::kCheckBatch); }

  Frame Handle(SessionContext* ctx, const Frame& frame) const override {
    Result<CheckBatchMsg> msg = DecodeCheckBatch(frame);
    if (!msg.ok()) return ErrFrame(msg.status());
    ctx->server->ArmRequestTrace(ctx, msg->trace, "check-batch");

    // Idempotency first: a retry of an already-answered batch replays the
    // original reply (no second execution, no second admission charge); a
    // retry racing the original execution is shed rather than run twice.
    NonceCache::Lookup seen = [&] {
      obs::SpanGuard nonce_span(ctx->tracer, "nonce-lookup");
      return ctx->server->nonces().Begin(msg->nonce);
    }();
    if (seen.state == NonceCache::State::kDone) {
      Metrics().nonce_replays->Inc();
      ctx->tracer->Note("nonce-replay");
      // The cached reply was framed at the original request's version; a
      // retry arriving at a different version gets it re-encoded so the
      // payload matches the frame label.
      if (seen.reply.version != ctx->wire_version &&
          seen.reply.type == static_cast<std::uint8_t>(WireResponse::kBatchResult)) {
        Result<BatchResultMsg> cached = DecodeBatchResult(seen.reply);
        if (cached.ok()) return EncodeBatchResult(*cached, ctx->wire_version);
      }
      return seen.reply;
    }
    if (seen.state == NonceCache::State::kInFlight) {
      Metrics().nonce_inflight_dups->Inc();
      ctx->tracer->Note("nonce-inflight-dup");
      return ShedFrame(ctx);
    }
    NonceClaim claim(&ctx->server->nonces(), msg->nonce);

    Result<std::shared_ptr<const PreparedPremises>> prepared =
        ctx->server->handles().Lookup(msg->handle);
    if (!prepared.ok()) return ErrFrame(prepared.status());
    if (msg->n != (*prepared)->n()) {
      return ErrFrame(Status::InvalidArgument(
          "batch universe n=" + std::to_string(msg->n) + " does not match handle " +
          std::to_string(msg->handle) + " (n=" + std::to_string((*prepared)->n()) + ")"));
    }

    // Load shedding before admission: past the soft watermarks (or under
    // the injected-overload failpoint) the server answers OVERLOADED
    // while it still has headroom to say so.
    bool watermark_shed = false;
    Result<AdmissionController::Slot> slot = [&]() -> Result<AdmissionController::Slot> {
      obs::SpanGuard admit_span(ctx->tracer, "admission");
      if (DIFFC_FAILPOINT("server/shed") || ctx->server->admission().ShouldShed()) {
        watermark_shed = true;
        ctx->tracer->Note("shed", "watermark");
        return Status::ResourceExhausted("shed at watermark");
      }
      return ctx->server->admission().Admit();
    }();
    if (!slot.ok()) {
      if (!watermark_shed) {
        Metrics().admission_rejected->Inc();
        ctx->tracer->Note("shed", "admission-cap");
      }
      return ShedFrame(ctx);
    }
    Metrics().inflight_batches->Set(
        static_cast<double>(ctx->server->admission().inflight()));

    // The request's own wall-clock budget; the server-wide drain cancel
    // token rides along so an expired drain stops this batch cooperatively.
    Deadline deadline = msg->deadline_ms > 0
                            ? Deadline::After(std::chrono::milliseconds(msg->deadline_ms))
                            : Deadline::Never();
    Result<BatchOutcome> outcome = [&]() -> Result<BatchOutcome> {
      obs::SpanGuard execute_span(ctx->tracer, "execute");
      return ctx->server->engine().CheckBatch(*prepared, msg->goals, deadline,
                                              ctx->server->drain_cancel());
    }();
    slot->Reset();
    Metrics().inflight_batches->Set(
        static_cast<double>(ctx->server->admission().inflight()));
    if (!outcome.ok()) return ErrFrame(outcome.status());
    Metrics().batch_queries->Inc(msg->goals.size());

    // Keep up to 4 engine span trees (present when EngineOptions::trace is
    // on) to join under this request's "execute" span at finish time.
    if (ctx->trace != nullptr && ctx->trace->sampled) {
      for (const EngineQueryResult& r : outcome->results) {
        if (ctx->trace->engine_traces.size() >= 4) break;
        if (r.trace != nullptr) ctx->trace->engine_traces.push_back(r.trace);
      }
    }

    obs::SpanGuard encode_span(ctx->tracer, "encode");
    BatchResultMsg reply;
    reply.results.reserve(outcome->results.size());
    for (const EngineQueryResult& r : outcome->results) {
      WireQueryResult q;
      q.status_code = r.status.code();
      q.status_message = r.status.message();
      q.verdict = static_cast<std::uint8_t>(r.outcome.verdict);
      if (r.outcome.counterexample.has_value()) {
        q.has_counterexample = true;
        q.counterexample = r.outcome.counterexample->bits();
      }
      reply.results.push_back(std::move(q));
    }
    const BatchStats& s = outcome->stats;
    reply.stats.queries = s.queries;
    reply.stats.implied = s.implied;
    reply.stats.not_implied = s.not_implied;
    reply.stats.failed = s.failed;
    reply.stats.degraded = s.degraded;
    reply.stats.timed_out = s.timed_out;
    reply.stats.cancelled = s.cancelled;
    reply.stats.batch_wall_ns = s.batch_wall_ns;
    reply.trace = DiffcdServer::ReplyTraceContext(*ctx);
    Frame out = EncodeBatchResult(reply, ctx->wire_version);
    // Only successful results are replayable; failures above Abandon the
    // claim via RAII so a retry re-executes.
    claim.Publish(out);
    return out;
  }
};

class ReleaseHandler final : public WireHandlerImpl {
 public:
  WireRequest id() const override { return WireRequest::kRelease; }
  const char* name() const override { return WireRequestName(WireRequest::kRelease); }

  Frame Handle(SessionContext* ctx, const Frame& frame) const override {
    Result<ReleaseMsg> msg = DecodeRelease(frame);
    if (!msg.ok()) return ErrFrame(msg.status());
    ctx->server->ArmRequestTrace(ctx, TraceContext{}, "release");
    Status s = ctx->server->handles().Release(msg->handle, ctx->session_id);
    if (!s.ok()) return ErrFrame(s);
    Metrics().handles_active->Set(static_cast<double>(ctx->server->handles().size()));
    return EncodeReleaseOk();
  }
};

}  // namespace

DIFFC_REGISTER_WIRE_HANDLER(kPing, PingHandler)
DIFFC_REGISTER_WIRE_HANDLER(kRegisterPremises, RegisterPremisesHandler)
DIFFC_REGISTER_WIRE_HANDLER(kCheckBatch, CheckBatchHandler)
DIFFC_REGISTER_WIRE_HANDLER(kRelease, ReleaseHandler)

// ------------------------------------------------------------ server proper

DiffcdServer::DiffcdServer(ServerOptions options)
    : options_(std::move(options)),
      engine_(options_.engine),
      handles_(PreparedHandleTable::Options{options_.max_handles_per_session,
                                            options_.max_total_handles}),
      admission_(AdmissionController::Options{options_.max_inflight_batches,
                                              options_.shed_watermark,
                                              options_.shed_latency_watermark}),
      nonces_(NonceCache::Options{options_.nonce_cache_capacity}) {}

DiffcdServer::~DiffcdServer() {
  // Destructor drain: the outcome is whatever Shutdown reports; a caller
  // that cares about DeadlineExceeded calls Shutdown itself first.
  (void)Shutdown();
}

Status DiffcdServer::Start() {
  {
    MutexLock lock(&mu_);
    if (state_ != State::kIdle) {
      return Status::FailedPrecondition("diffcd server already started");
    }
  }
  Result<Listener> wire = Listener::Bind(options_.listen_address);
  if (!wire.ok()) return wire.status();
  listener_ = std::move(*wire);
  bound_address_ = listener_.bound_address();

  if (!options_.metrics_address.empty()) {
    Result<Listener> http = Listener::Bind(options_.metrics_address);
    if (!http.ok()) {
      listener_.Close();
      return http.status();
    }
    metrics_listener_ = std::move(*http);
    metrics_bound_address_ = metrics_listener_.bound_address();
  }

  start_steady_ = std::chrono::steady_clock::now();
  start_wall_unix_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  // Resize only on change: SetCapacity drops retained traces, and tests
  // start several servers in one process against the one global store.
  if (obs::GlobalTraceStore().capacity() != options_.trace_store_capacity) {
    obs::GlobalTraceStore().SetCapacity(options_.trace_store_capacity);
  }

  {
    MutexLock lock(&mu_);
    state_ = State::kRunning;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (metrics_listener_.valid()) {
    metrics_thread_ = std::thread([this] { MetricsLoop(); });
  }
  obs::GlobalEventLog().Record("diffcd-start", {{"address", bound_address_}});
  return Status::Ok();
}

std::string DiffcdServer::bound_address() const { return bound_address_; }

std::string DiffcdServer::metrics_bound_address() const { return metrics_bound_address_; }

bool DiffcdServer::draining() const {
  MutexLock lock(&mu_);
  return state_ == State::kDraining || state_ == State::kStopped;
}

std::size_t DiffcdServer::sessions_active() const {
  MutexLock lock(&mu_);
  return active_sessions_;
}

std::size_t DiffcdServer::sessions_tracked() const {
  MutexLock lock(&mu_);
  return sessions_.size() + finished_sessions_.size();
}

void DiffcdServer::ReapFinishedSessions() {
  std::vector<std::unique_ptr<Session>> finished;
  {
    MutexLock lock(&mu_);
    finished.swap(finished_sessions_);
  }
  // Joins run unlocked: a finished session's thread is at (or within a few
  // instructions of) exit, so each join is near-instant but may still
  // briefly block.
  for (auto& session : finished) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void DiffcdServer::AcceptLoop() {
  while (true) {
    Result<Socket> conn = listener_.Accept();
    if (!conn.ok()) {
      // Cancelled means Shutdown closed the listener. Anything else
      // (EMFILE, injected net/accept-fail, ...) is transient: one lost
      // connection must not take the whole accept loop down with it.
      if (conn.status().code() == StatusCode::kCancelled) return;
      Metrics().accept_failures->Inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    ReapFinishedSessions();
    MutexLock lock(&mu_);
    if (state_ != State::kRunning) {
      conn->ShutdownBoth();
      continue;
    }
    auto session = std::make_unique<Session>();
    session->id = next_session_id_++;
    session->sock = std::move(*conn);
    Session* raw = session.get();
    ++active_sessions_;
    Metrics().connections->Inc();
    Metrics().sessions_active->Set(static_cast<double>(active_sessions_));
    sessions_.emplace(session->id, std::move(session));
    // Started under the lock so Shutdown's join either sees a joinable
    // thread or no session entry at all — never a half-built Session.
    raw->thread = std::thread([this, raw] { SessionLoop(raw); });
  }
}

void DiffcdServer::SessionLoop(Session* session) {
  ServiceMetrics& m = Metrics();
  SessionContext ctx;
  ctx.server = this;
  ctx.session_id = session->id;
  while (true) {
    Frame frame;
    bool clean_eof = false;
    Status rs = ReadFrame(session->sock, &frame, &clean_eof, options_.session_stall_budget);
    if (!rs.ok()) {
      if (rs.code() == StatusCode::kDeadlineExceeded) {
        // Watchdog: the peer went silent mid-frame past the stall budget;
        // kill the session rather than pin its thread until drain.
        m.watchdog_kills->Inc();
        obs::GlobalEventLog().Record("diffcd-watchdog-kill",
                                     {{"session", std::to_string(session->id)}});
        (void)WriteFrame(session->sock, ErrFrame(rs));  // Best-effort courtesy.
        break;
      }
      m.frame_errors->Inc();
      // Best-effort: the stream is unparseable past this point, so the
      // typed error frame is a courtesy before the connection closes.
      (void)WriteFrame(session->sock, ErrFrame(rs));
      break;
    }
    if (clean_eof) break;
    if (draining()) {
      // Error path deliberately unchecked: the session ends either way.
      (void)WriteFrame(session->sock,
                       ErrFrame(Status::FailedPrecondition(
                           "server draining; connection accepts no new requests")));
      break;
    }
    if (frame.version > options_.max_wire_version) {
      // Old-server emulation (tests pin max_wire_version below the build's
      // kWireVersion): answer with the same error a genuinely old build's
      // ReadFrame produces, framed at the old version so the peer can
      // parse it — DiffcClient keys its auto-downgrade off this message.
      m.frame_errors->Inc();
      Frame err = ErrFrame(Status::InvalidArgument(
          "unsupported wire version " + std::to_string(int{frame.version}) +
          " (expected " + std::to_string(int{options_.max_wire_version}) + ")"));
      err.version = options_.max_wire_version;
      (void)WriteFrame(session->sock, err);  // Courtesy; connection closes.
      break;
    }
    if (!IsKnownRequest(frame.type)) {
      m.frame_errors->Inc();
      // As above: unknown type bytes poison the stream's framing trust.
      (void)WriteFrame(session->sock,
                       ErrFrame(Status::InvalidArgument(
                           "unknown request type byte " + std::to_string(int{frame.type}))));
      break;
    }

    RequestTrace rt;
    ctx.trace = &rt;
    ctx.tracer = &rt.tracer;
    ctx.wire_version = frame.version;
    const auto started = std::chrono::steady_clock::now();
    Frame reply = Dispatch(&ctx, frame);
    // Replies never carry a version above the request's: a v2 peer must be
    // able to parse every frame it is sent. The trace-carrying replies are
    // already encoded at ctx.wire_version; this relabels only the
    // version-independent ones (pong, release-ok, overloaded, error).
    if (reply.version > frame.version) reply.version = frame.version;
    const auto elapsed_steady = std::chrono::steady_clock::now() - started;
    const double elapsed = std::chrono::duration<double>(elapsed_steady).count();
    m.request_seconds->Observe(elapsed);
    if (options_.slow_request_threshold.count() > 0 &&
        elapsed >= std::chrono::duration<double>(options_.slow_request_threshold).count()) {
      const WireHandlerImpl* h = WireHandlerRegistry::Global().Find(frame.type);
      std::vector<std::pair<std::string, std::string>> fields = {
          {"type", h != nullptr ? h->name() : "unknown"},
          {"seconds", std::to_string(elapsed)},
          {"session", std::to_string(session->id)},
      };
      if (rt.armed) fields.emplace_back("trace_id", rt.wire.IdHex());
      obs::GlobalEventLog().Record("diffcd-slow-request", std::move(fields));
    }
    FinishRequestTrace(&ctx, reply.type,
                       static_cast<std::uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               elapsed_steady)
                               .count()));
    ctx.tracer = nullptr;
    ctx.trace = nullptr;

    // Chaos-only fault sites on the reply path (compiled out by default):
    // a handler thread that dies before replying, a delayed reply, and a
    // connection reset halfway through the reply frame.
    if (DIFFC_FAILPOINT("server/abort-session")) break;
    if (DIFFC_FAILPOINT("server/delay-reply")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    if (DIFFC_FAILPOINT("server/reset-mid-reply")) {
      std::vector<std::uint8_t> bytes = SerializeFrame(reply);
      (void)session->sock.SendAll(bytes.data(), bytes.size() / 2);  // Torn on purpose.
      break;
    }

    Status ws = WriteFrame(session->sock, reply);
    if (!ws.ok()) break;
  }

  // Session teardown: the session's handles die with it.
  handles_.ReleaseAllForOwner(session->id);
  m.handles_active->Set(static_cast<double>(handles_.size()));
  std::size_t remaining = 0;
  {
    MutexLock lock(&mu_);
    // Close under mu_: Shutdown's ShutdownRead/ShutdownBoth sweeps touch
    // the same fd under the same lock, and once the entry leaves
    // `sessions_` here they cannot see it at all — no close/shutdown race
    // on a recycled fd.
    session->sock.Close();
    --active_sessions_;
    remaining = active_sessions_;
    auto it = sessions_.find(session->id);
    if (it != sessions_.end()) {
      finished_sessions_.push_back(std::move(it->second));
      sessions_.erase(it);
    }
  }
  // `session` may now be freed by a reaper — but only after this thread
  // exits (the reaper joins first), so the remaining statement is safe.
  m.sessions_active->Set(static_cast<double>(remaining));
}

Frame DiffcdServer::Dispatch(SessionContext* ctx, const Frame& frame) {
  const WireHandlerImpl* handler = WireHandlerRegistry::Global().Find(frame.type);
  if (handler == nullptr) {
    // IsKnownRequest passed but no handler registered — exactly the drift
    // the wire-registry lint rule exists to prevent.
    return ErrFrame(Status::Internal("no handler registered for request type byte " +
                                     std::to_string(int{frame.type})));
  }
  ServiceMetrics& m = Metrics();
  obs::Counter* by_type = m.ForRequest(static_cast<WireRequest>(frame.type));
  if (by_type != nullptr) by_type->Inc();
  obs::SpanGuard span(ctx->tracer, handler->name());
  return handler->Handle(ctx, frame);
}

// ---------------------------------------------------------- request tracing

void DiffcdServer::ArmRequestTrace(SessionContext* ctx, const TraceContext& wire_tc,
                                   const char* name) {
  RequestTrace* rt = ctx->trace;
  if (rt == nullptr || rt->armed) return;
  rt->armed = true;
  rt->name = name;
  rt->wire = wire_tc;
  if (!rt->wire.valid()) {
    // The client sent no context (v2 peer, or ping/release): mint a trace
    // id server-side so the request is still addressable in /tracez.
    rt->wire.trace_id_hi = obs::RandomTraceBits();
    rt->wire.trace_id_lo = obs::RandomTraceBits();
    rt->wire.parent_span_id = 0;
    rt->wire.sampled = false;
  }
  rt->server_span_id = obs::RandomTraceBits();
  // Head sampling: the wire flag and trace_requests force it; otherwise
  // one probability draw per request decides.
  rt->forced = wire_tc.sampled || options_.trace_requests;
  rt->sampled = rt->forced || (options_.trace_sample_rate > 0.0 &&
                               obs::SamplingDraw() < options_.trace_sample_rate);
  rt->wire.sampled = rt->sampled;
  if (rt->sampled) {
    rt->tracer = obs::Tracer(true);
    // Root span: closed by Finish(), so it covers everything from arm
    // (just after decode) to the reply being chosen.
    rt->tracer.Begin(std::string("server:") + name);
  }
}

TraceContext DiffcdServer::ReplyTraceContext(const SessionContext& ctx) {
  TraceContext tc;
  if (ctx.trace == nullptr || !ctx.trace->armed) return tc;
  tc.trace_id_hi = ctx.trace->wire.trace_id_hi;
  tc.trace_id_lo = ctx.trace->wire.trace_id_lo;
  tc.parent_span_id = ctx.trace->server_span_id;
  tc.sampled = ctx.trace->sampled;
  return tc;
}

void DiffcdServer::FinishRequestTrace(SessionContext* ctx, std::uint8_t reply_type,
                                      std::uint64_t elapsed_ns) {
  RequestTrace* rt = ctx->trace;
  if (rt == nullptr || !rt->armed) return;

  std::string status = "ok";
  bool shed = false;
  bool errored = false;
  if (reply_type == static_cast<std::uint8_t>(WireResponse::kError)) {
    status = "error";
    errored = true;
  } else if (reply_type == static_cast<std::uint8_t>(WireResponse::kOverloaded)) {
    status = "shed";
    shed = true;
  }
  const bool slow =
      options_.slow_request_threshold.count() > 0 &&
      elapsed_ns >= static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            options_.slow_request_threshold)
                            .count());
  // Tail rule: unsampled requests still land in the store when something
  // went wrong enough that an operator will come looking.
  if (!(rt->sampled || slow || shed || errored)) return;

  obs::StoredTrace st;
  st.trace_id_hi = rt->wire.trace_id_hi;
  st.trace_id_lo = rt->wire.trace_id_lo;
  st.span_id = rt->server_span_id;
  st.parent_span_id = rt->wire.parent_span_id;
  st.kind = "server";
  st.name = rt->name;
  st.status = status;
  st.sampled = rt->sampled;
  st.forced = rt->forced;
  st.slow = slow;
  st.shed = shed;
  st.errored = errored;
  st.duration_ns = elapsed_ns;
  if (rt->sampled) {
    obs::TraceRecord rec = rt->tracer.Finish();
    // Join the engine span trees under this request's "execute" span
    // (falling back to the root when a shed/error path never opened one).
    int attach = 0;
    for (std::size_t i = 0; i < rec.spans.size(); ++i) {
      if (rec.spans[i].name == "execute") attach = static_cast<int>(i);
    }
    for (const auto& engine_trace : rt->engine_traces) {
      if (engine_trace != nullptr) obs::AppendChildRecord(&rec, attach, *engine_trace);
    }
    st.record = std::move(rec);
  } else {
    // Skeleton record: one root span, wall anchor back-dated by the
    // elapsed time so /tracez still renders an absolute start.
    obs::TraceRecord rec;
    const std::uint64_t now_wall = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    rec.wall_start_unix_ns = now_wall >= elapsed_ns ? now_wall - elapsed_ns : 0;
    obs::TraceSpan root;
    root.name = "server:" + rt->name;
    root.duration_ns = elapsed_ns;
    rec.spans.push_back(std::move(root));
    st.record = std::move(rec);
  }

  if (slow) {
    obs::SlowQuery q;
    q.wall_unix_ns = st.record.wall_start_unix_ns;
    q.kind = rt->name;
    q.seconds = static_cast<double>(elapsed_ns) / 1e9;
    q.session = ctx->session_id;
    q.trace_id = rt->wire.IdHex();
    q.status = status;
    const obs::SlowQuery stored = obs::GlobalSlowQueryLog().Add(q);
    // The structured stderr line operators grep/tail for.
    std::fprintf(stderr, "%s\n", stored.ToJsonLine().c_str());
  }

  obs::GlobalTraceStore().Add(std::move(st));
}

// ------------------------------------------------------------------- drain

Status DiffcdServer::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (state_ == State::kStopped) return shutdown_status_;
    if (state_ == State::kIdle) {
      state_ = State::kStopped;
      shutdown_status_ = Status::Ok();
      return shutdown_status_;
    }
    if (state_ == State::kDraining) {
      // A concurrent Shutdown owns the drain; report its eventual outcome
      // conservatively as OK-in-progress. (Single-caller in practice:
      // diffcd_main and the tests call Shutdown exactly once.)
      return Status::Ok();
    }
    state_ = State::kDraining;
  }

  ServiceMetrics& m = Metrics();
  m.drains->Inc();
  m.draining->Set(1);
  obs::GlobalEventLog().Record(
      "diffcd-drain-begin",
      {{"address", bound_address_}, {"sessions", std::to_string(sessions_active())}});

  // 1. Stop accepting: close the listeners (Close wakes a blocked accept)
  //    and retire the listener threads.
  listener_.Close();
  metrics_listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();

  // 2. Half-close every session's read side: a session blocked in
  //    ReadFrame wakes with clean EOF and exits; a session mid-request
  //    keeps running and can still flush its response.
  {
    MutexLock lock(&mu_);
    for (auto& [id, session] : sessions_) session->sock.ShutdownRead();
  }

  // 3. Wait for in-flight work under the drain budget.
  const Deadline drain_deadline = options_.drain_deadline.count() > 0
                                      ? Deadline::After(options_.drain_deadline)
                                      : Deadline::Never();
  bool drained = false;
  while (true) {
    {
      MutexLock lock(&mu_);
      if (active_sessions_ == 0) {
        drained = true;
        break;
      }
    }
    if (drain_deadline.Expired()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  Status result = Status::Ok();
  if (!drained) {
    // 4. Budget spent: cancel in-flight batches cooperatively and cut the
    //    write sides so stuck peers cannot pin the process.
    drain_cancel_.Cancel();
    {
      MutexLock lock(&mu_);
      for (auto& [id, session] : sessions_) session->sock.ShutdownBoth();
    }
    result = Status::DeadlineExceeded(
        "drain budget expired with sessions in flight; in-flight batches cancelled");
  }

  // 5. Join every session thread (prompt now: reads EOF, batches
  //    cancelled) and drop the table. Sessions pulled out of `sessions_`
  //    here no longer self-move to the finished list (the move guards on
  //    map membership); sessions that already finished are joined by the
  //    final reap.
  std::vector<std::unique_ptr<Session>> sessions;
  {
    MutexLock lock(&mu_);
    sessions.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) sessions.push_back(std::move(session));
    sessions_.clear();
  }
  for (auto& session : sessions) {
    if (session->thread.joinable()) session->thread.join();
  }
  ReapFinishedSessions();

  {
    MutexLock lock(&mu_);
    state_ = State::kStopped;
    shutdown_status_ = result;
  }
  m.draining->Set(0);
  m.sessions_active->Set(0);
  obs::GlobalEventLog().Record("diffcd-drain-end",
                               {{"forced", drained ? "false" : "true"},
                                {"status", result.ToString()}});
  return result;
}

// --------------------------------------------------------- /metrics (HTTP)

namespace {

void SendHttp(const Socket& sock, int code, const std::string& reason,
              const std::string& content_type, const std::string& body) {
  std::string head = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  // Best-effort both: a scraper that disconnected mid-reply is not an
  // error the server can act on.
  (void)sock.SendAll(head.data(), head.size());
  (void)sock.SendAll(body.data(), body.size());  // Best-effort, as above.
}

}  // namespace

void DiffcdServer::MetricsLoop() {
  while (true) {
    Result<Socket> conn = metrics_listener_.Accept();
    if (!conn.ok()) return;  // Listener closed by Shutdown.
    ServeMetricsConnection(std::move(*conn));
  }
}

void DiffcdServer::ServeMetricsConnection(Socket sock) {
  // Shutdown joins the metrics thread before waiting out the drain, so
  // this connection must terminate on its own: every recv and the reply
  // send are bounded by the per-connection budget, and the head loop
  // re-checks an overall deadline so a byte-at-a-time trickle cannot
  // stretch the serve past ~2x the budget.
  const std::chrono::milliseconds budget = options_.metrics_timeout;
  const bool bounded = budget.count() > 0;
  if (bounded) {
    // Best-effort: on setsockopt failure the recv deadline below still
    // caps non-silent peers, and a fully silent peer is a kernel oddity
    // not worth failing the scrape over.
    (void)sock.SetRecvTimeout(budget);
    (void)sock.SetSendTimeout(budget);  // Best-effort, as above.
  }
  const auto give_up = std::chrono::steady_clock::now() + budget;

  // Read until the end of the request head, bounded — the endpoint parses
  // only the request line and ignores headers and bodies.
  std::string head;
  char buf[1024];
  while (head.size() < kMaxHttpHeadBytes && head.find("\r\n\r\n") == std::string::npos) {
    if (bounded && std::chrono::steady_clock::now() >= give_up) {
      return;  // Trickling peer spent the budget; drop silently.
    }
    Result<std::size_t> n = sock.RecvSome(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    head.append(buf, *n);
  }
  HttpRequestHead req;
  Status parsed = ParseHttpRequestHead(head, &req);
  if (parsed.code() == StatusCode::kNotFound) return;  // Not HTTP; drop silently.
  if (!parsed.ok()) {
    SendHttp(sock, 400, "Bad Request", "text/plain", "malformed request line\n");
    return;
  }
  if (req.method != "GET") {
    SendHttp(sock, 405, "Method Not Allowed", "text/plain", "GET only\n");
    return;
  }
  const std::string& path = req.path;
  const std::string& query = req.query;
  if (path == "/metrics") {
    SendHttp(sock, 200, "OK", "text/plain; version=0.0.4; charset=utf-8",
             obs::SnapshotPrometheus());
  } else if (path == "/metrics.json") {
    SendHttp(sock, 200, "OK", "application/json", obs::SnapshotJson());
  } else if (path == "/healthz") {
    if (draining()) {
      SendHttp(sock, 503, "Service Unavailable", "text/plain", "draining\n");
    } else {
      SendHttp(sock, 200, "OK", "text/plain", "ok\n");
    }
  } else if (path == "/tracez") {
    SendHttp(sock, 200, "OK", "application/json", RenderTracez(query));
  } else if (path == "/statusz") {
    SendHttp(sock, 200, "OK", "application/json", RenderStatusz());
  } else if (path == "/slowz") {
    SendHttp(sock, 200, "OK", "application/json", RenderSlowz());
  } else {
    SendHttp(sock, 404, "Not Found", "text/plain", "unknown path\n");
  }
}

std::string DiffcdServer::RenderTracez(const std::string& query) const {
  obs::TraceStore& store = obs::GlobalTraceStore();

  // Filters: trace_id (exact), status (ok|error|shed), min_ms (duration
  // floor), limit (newest N, default 64).
  const std::string want_id = HttpQueryParam(query, "trace_id");
  const std::string want_status = HttpQueryParam(query, "status");
  const std::string min_ms_s = HttpQueryParam(query, "min_ms");
  const std::string limit_s = HttpQueryParam(query, "limit");
  double min_ms = 0;
  if (!min_ms_s.empty()) min_ms = std::strtod(min_ms_s.c_str(), nullptr);
  std::size_t limit = 64;
  if (!limit_s.empty()) {
    const unsigned long parsed = std::strtoul(limit_s.c_str(), nullptr, 10);
    if (parsed > 0) limit = static_cast<std::size_t>(parsed);
  }

  std::vector<obs::StoredTrace> traces;
  std::uint64_t id_hi = 0;
  std::uint64_t id_lo = 0;
  if (!want_id.empty() && ParseTraceId(want_id, &id_hi, &id_lo)) {
    traces = store.FindByTraceId(id_hi, id_lo);
  } else {
    traces = store.Snapshot();
  }

  std::string body = "{\"capacity\": " + std::to_string(store.capacity()) +
                     ", \"total\": " + std::to_string(store.total()) +
                     ", \"dropped\": " + std::to_string(store.dropped());
  std::string items;
  std::size_t count = 0;
  // Newest first, up to `limit`.
  for (std::size_t i = traces.size(); i-- > 0 && count < limit;) {
    const obs::StoredTrace& t = traces[i];
    if (!want_status.empty() && t.status != want_status) continue;
    if (min_ms > 0 && static_cast<double>(t.duration_ns) / 1e6 < min_ms) continue;
    if (!items.empty()) items += ", ";
    items += t.ToJson();
    ++count;
  }
  body += ", \"count\": " + std::to_string(count) + ", \"traces\": [" + items + "]}";
  return body;
}

std::string DiffcdServer::RenderStatusz() const {
  using obs::JsonEscape;
  const std::uint64_t uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_steady_)
          .count());

  std::string b = "{";
  // Build info: compiler, build mode, protocol, compiled-in fail points.
  b += "\"build\": {\"compiler\": \"" + JsonEscape(
#if defined(__VERSION__)
                                            __VERSION__
#else
                                            "unknown"
#endif
                                            ) +
       "\"";
#if defined(NDEBUG)
  b += ", \"debug\": false";
#else
  b += ", \"debug\": true";
#endif
#if defined(DIFFC_FAILPOINTS)
  b += ", \"failpoints\": true";
#else
  b += ", \"failpoints\": false";
#endif
  b += ", \"wire_version\": " + std::to_string(int{kWireVersion});
  b += ", \"min_wire_version\": " + std::to_string(int{kMinWireVersion});
  b += "}";

  b += ", \"uptime_ms\": " + std::to_string(uptime_ms);
  b += ", \"start_wall_unix_ns\": " + std::to_string(start_wall_unix_ns_);
  b += ", \"draining\": " + std::string(draining() ? "true" : "false");

  // The server options in force (the observable subset).
  b += ", \"options\": {";
  b += "\"listen_address\": \"" + JsonEscape(options_.listen_address) + "\"";
  b += ", \"metrics_address\": \"" + JsonEscape(options_.metrics_address) + "\"";
  b += ", \"max_inflight_batches\": " + std::to_string(options_.max_inflight_batches);
  b += ", \"shed_watermark\": " + std::to_string(options_.shed_watermark);
  b += ", \"shed_latency_watermark_ms\": " +
       std::to_string(options_.shed_latency_watermark.count());
  b += ", \"nonce_cache_capacity\": " + std::to_string(options_.nonce_cache_capacity);
  b += ", \"session_stall_budget_ms\": " +
       std::to_string(options_.session_stall_budget.count());
  b += ", \"max_handles_per_session\": " +
       std::to_string(options_.max_handles_per_session);
  b += ", \"max_total_handles\": " + std::to_string(options_.max_total_handles);
  b += ", \"drain_deadline_ms\": " + std::to_string(options_.drain_deadline.count());
  b += ", \"metrics_timeout_ms\": " + std::to_string(options_.metrics_timeout.count());
  b += ", \"slow_query_ms\": " + std::to_string(options_.slow_request_threshold.count());
  b += ", \"trace_requests\": " + std::string(options_.trace_requests ? "true" : "false");
  b += ", \"trace_sample_rate\": " + obs::FormatDouble(options_.trace_sample_rate);
  b += ", \"trace_store_capacity\": " + std::to_string(options_.trace_store_capacity);
  b += ", \"max_wire_version\": " + std::to_string(int{options_.max_wire_version});
  b += ", \"simplify_level\": " + std::to_string(options_.engine.simplify_level);
  b += "}";

  // Admission: configured watermarks plus the live controller state.
  const AdmissionController::Options& adm = admission_.options();
  b += ", \"admission\": {";
  b += "\"inflight\": " + std::to_string(admission_.inflight());
  b += ", \"capacity\": " + std::to_string(admission_.capacity());
  b += ", \"shed_watermark\": " + std::to_string(adm.shed_watermark);
  b += ", \"latency_watermark_ms\": " + std::to_string(adm.latency_watermark.count());
  b += ", \"ewma_latency_ms\": " + obs::FormatDouble(admission_.ewma_latency_ms());
  b += "}";

  // Live counts.
  b += ", \"sessions_active\": " + std::to_string(sessions_active());
  b += ", \"sessions_tracked\": " + std::to_string(sessions_tracked());
  b += ", \"handles_active\": " + std::to_string(handles_.size());
  b += ", \"nonce_cache_entries\": " + std::to_string(nonces_.size());

  // Trace-store and slow-query-log health.
  obs::TraceStore& store = obs::GlobalTraceStore();
  b += ", \"trace_store\": {\"capacity\": " + std::to_string(store.capacity()) +
       ", \"size\": " + std::to_string(store.size()) +
       ", \"total\": " + std::to_string(store.total()) +
       ", \"dropped\": " + std::to_string(store.dropped()) + "}";
  obs::SlowQueryLog& slow = obs::GlobalSlowQueryLog();
  b += ", \"slow_query_log\": {\"capacity\": " + std::to_string(slow.capacity()) +
       ", \"total\": " + std::to_string(slow.total()) +
       ", \"dropped\": " + std::to_string(slow.dropped()) + "}";

  // Rewrite-simplifier totals since start (DESIGN.md §14).
  const rewrite::RewriteTotals rw = rewrite::GlobalRewriteTotals();
  b += ", \"rewrite\": {\"simplify_calls\": " + std::to_string(rw.simplify_calls) +
       ", \"passes\": " + std::to_string(rw.passes) +
       ", \"applied\": " + std::to_string(rw.applied) +
       ", \"constraints_removed\": " + std::to_string(rw.constraints_removed) + "}";
  b += "}";
  return b;
}

std::string DiffcdServer::RenderSlowz() const {
  obs::SlowQueryLog& log = obs::GlobalSlowQueryLog();
  std::string items;
  for (const obs::SlowQuery& q : log.Snapshot()) {
    if (!items.empty()) items += ", ";
    items += q.ToJsonLine();
  }
  return "{\"capacity\": " + std::to_string(log.capacity()) +
         ", \"total\": " + std::to_string(log.total()) +
         ", \"dropped\": " + std::to_string(log.dropped()) + ", \"slow_queries\": [" +
         items + "]}";
}

}  // namespace diffc::net
