#include "net/client.h"

#include <utility>

namespace diffc::net {

Result<DiffcClient> DiffcClient::Connect(const std::string& address) {
  Result<Socket> sock = net::Connect(address);
  if (!sock.ok()) return sock.status();
  return DiffcClient(std::move(*sock));
}

Result<Frame> DiffcClient::RoundTrip(const Frame& request, WireResponse expected) {
  if (!sock_.valid()) return Status::FailedPrecondition("client not connected");
  Status ws = WriteFrame(sock_, request);
  if (!ws.ok()) return ws;
  Frame reply;
  bool clean_eof = false;
  Status rs = ReadFrame(sock_, &reply, &clean_eof);
  if (!rs.ok()) return rs;
  if (clean_eof) {
    return Status::Internal("connection closed by server before a reply");
  }
  if (reply.type == static_cast<std::uint8_t>(WireResponse::kError)) {
    Result<ErrorMsg> err = DecodeError(reply);
    if (!err.ok()) return err.status();
    return err->ToStatus();
  }
  if (reply.type != static_cast<std::uint8_t>(expected)) {
    return Status::InvalidArgument(
        "unexpected reply type byte " + std::to_string(int{reply.type}) + " (expected " +
        WireResponseName(expected) + ")");
  }
  return reply;
}

Result<std::uint64_t> DiffcClient::Ping(std::uint64_t nonce) {
  PingMsg msg;
  msg.nonce = nonce;
  Result<Frame> reply = RoundTrip(EncodePing(msg), WireResponse::kPong);
  if (!reply.ok()) return reply.status();
  Result<PingMsg> pong = DecodePong(*reply);
  if (!pong.ok()) return pong.status();
  return pong->nonce;
}

Result<RegisterOkMsg> DiffcClient::RegisterPremises(int n, const ConstraintSet& premises) {
  RegisterPremisesMsg msg;
  msg.n = n;
  msg.premises = premises;
  Result<Frame> reply = RoundTrip(EncodeRegisterPremises(msg), WireResponse::kRegisterOk);
  if (!reply.ok()) return reply.status();
  return DecodeRegisterOk(*reply);
}

Result<BatchResultMsg> DiffcClient::CheckBatch(std::uint64_t handle, int n,
                                               const std::vector<DifferentialConstraint>& goals,
                                               std::chrono::milliseconds deadline) {
  CheckBatchMsg msg;
  msg.handle = handle;
  msg.deadline_ms = deadline.count() > 0 ? static_cast<std::uint64_t>(deadline.count()) : 0;
  msg.n = n;
  msg.goals = goals;
  Result<Frame> reply = RoundTrip(EncodeCheckBatch(msg), WireResponse::kBatchResult);
  if (!reply.ok()) return reply.status();
  return DecodeBatchResult(*reply);
}

Status DiffcClient::Release(std::uint64_t handle) {
  ReleaseMsg msg;
  msg.handle = handle;
  Result<Frame> reply = RoundTrip(EncodeRelease(msg), WireResponse::kReleaseOk);
  return reply.status();
}

}  // namespace diffc::net
