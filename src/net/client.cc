#include "net/client.h"

#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_store.h"

namespace diffc::net {

namespace {

/// Client-side resilience metrics, registered once (the single site the
/// metric-dup lint rule audits) and shared by every client in the
/// process.
struct ClientMetricsSet {
  obs::Counter* retries;
  obs::Counter* retries_exhausted;
  obs::Counter* reconnects;
  obs::Counter* shed_backoffs;
  obs::Counter* breaker_to_open;
  obs::Counter* breaker_to_half_open;
  obs::Counter* breaker_to_closed;
};

ClientMetricsSet& ClientMetrics() {
  static ClientMetricsSet* metrics = [] {
    obs::Registry& r = obs::Registry::Global();
    auto* m = new ClientMetricsSet();
    m->retries = r.GetCounter("diffc_net_client_retries_total",
                              "Request attempts retried by DiffcClient");
    m->retries_exhausted =
        r.GetCounter("diffc_net_client_retries_exhausted_total",
                     "Requests that failed after exhausting the retry policy");
    m->reconnects = r.GetCounter("diffc_net_client_reconnects_total",
                                 "Reconnects after a lost or poisoned connection");
    m->shed_backoffs = r.GetCounter("diffc_net_client_shed_backoffs_total",
                                    "Backoffs honoring a server OVERLOADED retry-after hint");
    m->breaker_to_open = r.GetCounter("diffc_net_client_breaker_transitions_total",
                                      "Circuit-breaker state transitions by target state",
                                      {{"to", "open"}});
    m->breaker_to_half_open = r.GetCounter("diffc_net_client_breaker_transitions_total",
                                           "Circuit-breaker state transitions by target state",
                                           {{"to", "half-open"}});
    m->breaker_to_closed = r.GetCounter("diffc_net_client_breaker_transitions_total",
                                        "Circuit-breaker state transitions by target state",
                                        {{"to", "closed"}});
    return m;
  }();
  return *metrics;
}

}  // namespace

DiffcClient::DiffcClient(std::string address, ClientOptions options)
    : address_(std::move(address)),
      options_(options),
      breaker_(options.breaker),
      rng_(options.seed != 0 ? options.seed : std::random_device{}()) {
  wire_version_ = options.wire_version;
  if (wire_version_ < kMinWireVersion) wire_version_ = kMinWireVersion;
  if (wire_version_ > kWireVersion) wire_version_ = kWireVersion;
}

DiffcClient DiffcClient::Create(const std::string& address, ClientOptions options) {
  return DiffcClient(address, options);
}

Result<DiffcClient> DiffcClient::Connect(const std::string& address, ClientOptions options) {
  DiffcClient client(address, options);
  FailureClass cls = FailureClass::kTransport;
  Status s = client.EnsureReady(&cls);
  if (!s.ok()) return s;
  return client;
}

void DiffcClient::Close() {
  sock_.Close();
  dead_ = false;
  closed_ = true;
  handles_.clear();
}

std::uint64_t DiffcClient::NextNonce() {
  // Nonce 0 means "no idempotency" on the wire, so never hand it out.
  std::uint64_t nonce = rng_();
  return nonce != 0 ? nonce : 1;
}

std::uint64_t DiffcClient::RandomBits() {
  std::uint64_t v = 0;
  while (v == 0) v = rng_();
  return v;
}

void DiffcClient::NoteBreakerTransition(CircuitBreaker::State before) {
  const CircuitBreaker::State after = breaker_.state();
  if (after == before) return;
  ++stats_.breaker_transitions;
  ClientMetricsSet& m = ClientMetrics();
  switch (after) {
    case CircuitBreaker::State::kOpen:
      m.breaker_to_open->Inc();
      break;
    case CircuitBreaker::State::kHalfOpen:
      m.breaker_to_half_open->Inc();
      break;
    case CircuitBreaker::State::kClosed:
      m.breaker_to_closed->Inc();
      break;
  }
}

void DiffcClient::OnTransportFailure() {
  const CircuitBreaker::State before = breaker_.state();
  breaker_.RecordFailure();
  NoteBreakerTransition(before);
}

void DiffcClient::OnServerReply() {
  // Any framed reply — success, typed error, or shed — proves the
  // endpoint alive, so the breaker's consecutive-failure count resets.
  const CircuitBreaker::State before = breaker_.state();
  breaker_.RecordSuccess();
  NoteBreakerTransition(before);
}

Result<Frame> DiffcClient::RoundTripRaw(const Frame& request, WireResponse expected,
                                        FailureClass* cls,
                                        std::chrono::milliseconds* retry_hint) {
  *cls = FailureClass::kTransport;
  *retry_hint = std::chrono::milliseconds(0);
  if (!sock_.valid()) return Status::FailedPrecondition("client not connected");
  Status ws = WriteFrame(sock_, request);
  if (!ws.ok()) {
    dead_ = true;
    return ws;
  }
  Frame reply;
  bool clean_eof = false;
  Status rs = ReadFrame(sock_, &reply, &clean_eof);
  if (!rs.ok()) {
    dead_ = true;
    return rs;
  }
  if (clean_eof) {
    dead_ = true;
    return Status::Unavailable("connection closed by server before a reply");
  }
  if (reply.type == static_cast<std::uint8_t>(WireResponse::kOverloaded)) {
    Result<OverloadedMsg> shed = DecodeOverloaded(reply);
    if (!shed.ok()) {
      dead_ = true;
      return shed.status();
    }
    *cls = FailureClass::kOverloaded;
    *retry_hint = std::chrono::milliseconds(shed->retry_after_ms);
    return shed->ToStatus();
  }
  if (reply.type == static_cast<std::uint8_t>(WireResponse::kError)) {
    Result<ErrorMsg> err = DecodeError(reply);
    if (!err.ok()) {
      dead_ = true;
      return err.status();
    }
    if (err->code == StatusCode::kUnavailable) {
      // The server sends Unavailable only when the connection itself is
      // doomed (an injected fault, a read it cannot trust): transport-class,
      // so the retry reconnects instead of surfacing the transient.
      dead_ = true;
      return err->ToStatus();
    }
    *cls = FailureClass::kFatal;
    return err->ToStatus();
  }
  if (reply.type != static_cast<std::uint8_t>(expected)) {
    // A parseable-but-wrong type byte means the request/reply pairing is
    // lost (e.g. a stale reply from a previous, interrupted exchange) —
    // the connection cannot be trusted for the next call either.
    dead_ = true;
    return Status::Unavailable(
        "unexpected reply type byte " + std::to_string(int{reply.type}) + " (expected " +
        WireResponseName(expected) + "); connection desynced");
  }
  return reply;
}

Status DiffcClient::EnsureReady(FailureClass* cls) {
  *cls = FailureClass::kTransport;
  if (address_.empty()) return Status::FailedPrecondition("client not connected");
  if (!sock_.valid() || dead_) {
    if (connected_once_ && !options_.reconnect) {
      *cls = FailureClass::kFatal;
      return Status::FailedPrecondition("connection lost and reconnect is disabled");
    }
    sock_.Close();
    Result<Socket> fresh = net::Connect(address_, options_.connect_timeout);
    if (!fresh.ok()) return fresh.status();
    sock_ = std::move(*fresh);
    dead_ = false;
    if (connected_once_) {
      ++stats_.reconnects;
      ClientMetrics().reconnects->Inc();
    }
    connected_once_ = true;
    // A fresh session starts with no server-side handles: re-establish
    // every recorded registration so the client-scoped handles keep
    // working transparently.
    for (auto& [client_handle, rec] : handles_) {
      RegisterPremisesMsg msg;
      msg.n = rec.n;
      msg.premises = rec.premises;
      std::chrono::milliseconds hint{0};
      Result<Frame> reply = RoundTripRaw(EncodeRegisterPremises(msg, wire_version_),
                                         WireResponse::kRegisterOk, cls, &hint);
      if (!reply.ok()) return reply.status();
      Result<RegisterOkMsg> ok = DecodeRegisterOk(*reply);
      if (!ok.ok()) {
        dead_ = true;
        *cls = FailureClass::kTransport;
        return ok.status();
      }
      rec.server_handle = ok->handle;
    }
  }
  if (breaker_.state() == CircuitBreaker::State::kHalfOpen) {
    // The health probe an open breaker recovers through: cheap, touches
    // no handles, and proves the whole request/reply path.
    PingMsg probe;
    probe.nonce = NextNonce();
    std::chrono::milliseconds hint{0};
    Frame probe_frame = EncodePing(probe);
    probe_frame.version = wire_version_;  // Pings have no versioned payload.
    Result<Frame> pong = RoundTripRaw(probe_frame, WireResponse::kPong, cls, &hint);
    if (!pong.ok()) return pong.status();
    OnServerReply();
  }
  return Status::Ok();
}

namespace {

const char* BreakerStateName(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace

template <typename T>
Result<T> DiffcClient::CallDecoded(const char* op, TraceContext* wire_tc,
                                   WireResponse expected, const Deadline& deadline,
                                   const std::function<Frame()>& encode,
                                   const std::function<Result<T>(const Frame&)>& decode) {
  if (closed_) return Status::FailedPrecondition("client closed");
  // Every call mints a trace identity up front (two rng draws) so the
  // server can join its span even when the client records nothing. The
  // head-sampling decision controls whether *this side* records spans; an
  // unsampled call that starts failing tail-arms its tracer so the retry
  // chain is captured from the first failure on.
  TraceContext tc;
  tc.trace_id_hi = RandomBits();
  tc.trace_id_lo = RandomBits();
  const std::uint64_t client_span_id = RandomBits();
  tc.parent_span_id = client_span_id;
  const bool head_sampled =
      options_.trace ||
      (options_.trace_sample_rate > 0 &&
       std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < options_.trace_sample_rate);
  tc.sampled = head_sampled;
  if (wire_tc != nullptr) *wire_tc = tc;
  last_trace_ = tc;
  obs::Tracer tracer(head_sampled);
  if (head_sampled) tracer.Begin(std::string("client:") + op);
  bool any_shed = false;
  const auto arm_tail = [&] {
    if (tracer.enabled()) return;
    tracer = obs::Tracer(true);
    tracer.Begin(std::string("client:") + op);
    tracer.Note("tail-armed");
    // Ask the server to sample the remaining attempts too, so both sides
    // of the struggling request land in the trace store.
    if (wire_tc != nullptr) wire_tc->sampled = true;
  };
  const auto finish_trace = [&](const char* status, bool errored) {
    if (!tracer.enabled()) return;
    obs::StoredTrace st;
    st.trace_id_hi = tc.trace_id_hi;
    st.trace_id_lo = tc.trace_id_lo;
    st.span_id = client_span_id;
    st.parent_span_id = 0;  // The client is the trace root.
    st.kind = "client";
    st.name = op;
    st.status = status;
    st.sampled = head_sampled;
    st.forced = options_.trace;
    st.shed = any_shed;
    st.errored = errored;
    st.record = tracer.Finish();
    st.duration_ns = st.record.TotalNs();
    obs::GlobalTraceStore().Add(std::move(st));
  };
  RetrySchedule schedule(options_.retry, rng_());
  int attempt = 0;
  while (true) {
    ++attempt;
    if (tracer.enabled() && attempt > 1) {
      tracer.Note("attempt", std::to_string(attempt));
    }
    Status last = Status::Ok();
    FailureClass cls = FailureClass::kFatal;
    std::chrono::milliseconds hint{0};
    bool server_shed = false;
    const CircuitBreaker::State iter_breaker_before = breaker_.state();

    // An old server rejects v3 frames with a typed InvalidArgument and
    // closes the connection. Recognizing that reply downgrades this client
    // to the floor version for good and retries transport-class on a fresh
    // connection (re-registration then also runs at v2).
    const auto downgrade_on_version_reject = [&](const Status& s) {
      if (wire_version_ <= kMinWireVersion) return false;
      if (s.code() != StatusCode::kInvalidArgument) return false;
      if (s.message().find("unsupported wire version") == std::string::npos) return false;
      wire_version_ = kMinWireVersion;
      dead_ = true;
      arm_tail();
      tracer.Note("wire-downgrade", "v" + std::to_string(int{kMinWireVersion}));
      return true;
    };

    const CircuitBreaker::State gate_before = breaker_.state();
    Status gate = breaker_.Allow();
    NoteBreakerTransition(gate_before);
    if (!gate.ok()) {
      // Short-circuit: no I/O while the breaker cools down; the remaining
      // cooldown doubles as the backoff hint.
      ++stats_.breaker_short_circuits;
      cls = FailureClass::kOverloaded;
      hint = breaker_.RetryAfter();
      last = gate;
      arm_tail();
      tracer.Note("breaker-short-circuit", BreakerStateName(breaker_.state()));
    } else {
      const std::uint64_t reconnects_before = stats_.reconnects;
      Status ready = EnsureReady(&cls);
      if (stats_.reconnects > reconnects_before) tracer.Note("reconnect", address_);
      if (!ready.ok()) {
        last = ready;
        if (downgrade_on_version_reject(ready)) {
          cls = FailureClass::kTransport;
          OnServerReply();
        } else if (cls == FailureClass::kTransport) {
          arm_tail();
          tracer.Note("connect-failed", ready.message());
          OnTransportFailure();
        }
      } else {
        Result<Frame> reply = RoundTripRaw(encode(), expected, &cls, &hint);
        if (reply.ok()) {
          Result<T> decoded = decode(*reply);
          if (decoded.ok()) {
            OnServerReply();
            finish_trace("ok", /*errored=*/false);
            return decoded;
          }
          // Framed but unparseable: treat like any other desync — poison
          // the connection and retry the idempotent request on a fresh
          // one.
          dead_ = true;
          cls = FailureClass::kTransport;
          last = decoded.status();
          arm_tail();
          tracer.Note("decode-failed", last.message());
          OnTransportFailure();
        } else {
          last = reply.status();
          if (downgrade_on_version_reject(last)) {
            cls = FailureClass::kTransport;
            OnServerReply();  // The rejection is a framed reply: endpoint alive.
          } else if (cls == FailureClass::kTransport) {
            arm_tail();
            tracer.Note("transport-error", last.message());
            OnTransportFailure();
          } else {
            server_shed = cls == FailureClass::kOverloaded;
            OnServerReply();
            if (server_shed) {
              any_shed = true;
              arm_tail();
              tracer.Note("shed", "retry_after=" + std::to_string(hint.count()) + "ms");
            }
          }
        }
      }
    }

    if (tracer.enabled() && breaker_.state() != iter_breaker_before) {
      tracer.Note("breaker", BreakerStateName(breaker_.state()));
    }
    if (cls == FailureClass::kFatal) {
      finish_trace("error", /*errored=*/true);
      return last;
    }
    Result<std::chrono::milliseconds> delay = schedule.NextDelay(hint, deadline);
    if (!delay.ok()) {
      ++stats_.retries_exhausted;
      ClientMetrics().retries_exhausted->Inc();
      tracer.Note("retries-exhausted", delay.status().message());
      finish_trace(server_shed ? "shed" : "error", /*errored=*/true);
      return last;
    }
    if (server_shed) {
      ++stats_.shed_backoffs;
      ClientMetrics().shed_backoffs->Inc();
    }
    if (tracer.enabled()) {
      tracer.Note("backoff", std::to_string(delay->count()) + "ms" +
                                 (server_shed ? " shed" : ""));
    }
    if (delay->count() > 0) std::this_thread::sleep_for(*delay);
    ++stats_.retries;
    ClientMetrics().retries->Inc();
  }
}

Result<std::uint64_t> DiffcClient::Ping(std::uint64_t nonce) {
  PingMsg msg;
  msg.nonce = nonce;
  Result<PingMsg> pong = CallDecoded<PingMsg>(
      "ping", nullptr, WireResponse::kPong, Deadline::Never(),
      [&] {
        Frame f = EncodePing(msg);
        f.version = wire_version_;  // No versioned payload; label only.
        return f;
      },
      [](const Frame& f) { return DecodePong(f); });
  if (!pong.ok()) return pong.status();
  return pong->nonce;
}

Result<RegisterOkMsg> DiffcClient::RegisterPremises(int n, const ConstraintSet& premises) {
  RegisterPremisesMsg msg;
  msg.n = n;
  msg.premises = premises;
  Result<RegisterOkMsg> ok = CallDecoded<RegisterOkMsg>(
      "register-premises", &msg.trace, WireResponse::kRegisterOk, Deadline::Never(),
      [&] { return EncodeRegisterPremises(msg, wire_version_); },
      [](const Frame& f) { return DecodeRegisterOk(f); });
  if (!ok.ok()) return ok;
  if (ok->trace.valid()) last_trace_ = ok->trace;
  // Hand out a client-scoped handle: stable across reconnects (and across
  // server restarts, whose fresh handle spaces could collide with stale
  // server handles).
  const std::uint64_t client_handle = next_handle_++;
  HandleRecord rec;
  rec.server_handle = ok->handle;
  rec.n = n;
  rec.premises = premises;
  handles_.emplace(client_handle, std::move(rec));
  RegisterOkMsg out = *ok;
  out.handle = client_handle;
  return out;
}

Result<BatchResultMsg> DiffcClient::CheckBatch(std::uint64_t handle, int n,
                                               const std::vector<DifferentialConstraint>& goals,
                                               std::chrono::milliseconds deadline) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    // The same NotFound an unknown handle would earn server-side.
    return Status::NotFound("unknown handle " + std::to_string(handle));
  }
  CheckBatchMsg msg;
  msg.deadline_ms = deadline.count() > 0 ? static_cast<std::uint64_t>(deadline.count()) : 0;
  msg.n = n;
  msg.goals = goals;
  // One nonce for every attempt of this logical batch: a retry whose
  // predecessor actually executed replays the cached reply instead of
  // running (and admission-counting) the batch twice.
  msg.nonce = NextNonce();
  const Deadline op_deadline = deadline.count() > 0 ? Deadline::After(deadline)
                                                    : Deadline::Never();
  Result<BatchResultMsg> res = CallDecoded<BatchResultMsg>(
      "check-batch", &msg.trace, WireResponse::kBatchResult, op_deadline,
      [&] {
        // Re-resolved per attempt: a reconnect re-registers and changes
        // the server-side handle.
        msg.handle = it->second.server_handle;
        return EncodeCheckBatch(msg, wire_version_);
      },
      [](const Frame& f) { return DecodeBatchResult(f); });
  if (res.ok() && res->trace.valid()) last_trace_ = res->trace;
  return res;
}

Status DiffcClient::Release(std::uint64_t handle) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return Status::NotFound("unknown handle " + std::to_string(handle));
  }
  ReleaseMsg msg;
  Result<bool> ok = CallDecoded<bool>(
      "release", nullptr, WireResponse::kReleaseOk, Deadline::Never(),
      [&] {
        msg.handle = it->second.server_handle;
        Frame f = EncodeRelease(msg);
        f.version = wire_version_;  // No versioned payload; label only.
        return f;
      },
      [](const Frame&) { return Result<bool>(true); });
  // Forget the record either way: on failure the server-side handle dies
  // with its session (or already did), and keeping the record would just
  // re-register premises nobody will use again.
  handles_.erase(it);
  return ok.status();
}

}  // namespace diffc::net
