#ifndef DIFFC_NET_CURSOR_H_
#define DIFFC_NET_CURSOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace diffc::net {

/// The single audited home of raw byte reads on the decode path.
///
/// Every decoder that consumes untrusted bytes — the wire codecs in
/// net/wire.{h,cc}, the frame-header validator, the HTTP request-head
/// parser — reads through a `ByteCursor`; the `decoder-discipline` rule of
/// tools/diffc_lint.py rejects `memcpy` / `reinterpret_cast` / pointer
/// arithmetic in those files, so an out-of-bounds read can only be written
/// *here*, where the fuzz targets (fuzz/) hammer it under ASan+UBSan.
///
/// Every `Try*` either consumes exactly its advertised bytes and returns
/// true, or consumes nothing and returns false — a failed read never
/// advances the cursor and never touches memory past `size`. Scalars are
/// little-endian, matching the wire format (DESIGN.md §11).
class ByteCursor {
 public:
  ByteCursor(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteCursor(const std::vector<std::uint8_t>& buf)
      : ByteCursor(buf.data(), buf.size()) {}

  /// Bytes not yet consumed.
  std::size_t remaining() const { return size_ - pos_; }
  /// Bytes consumed so far.
  std::size_t consumed() const { return pos_; }
  /// True iff the buffer was consumed exactly.
  bool exhausted() const { return pos_ == size_; }

  bool TryU8(std::uint8_t* out) {
    if (remaining() < 1) return false;
    *out = data_[pos_++];
    return true;
  }

  bool TryU32(std::uint32_t* out) {
    if (remaining() < 4) return false;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
    pos_ += 4;
    *out = v;
    return true;
  }

  bool TryU64(std::uint64_t* out) {
    if (remaining() < 8) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += 8;
    *out = v;
    return true;
  }

  /// Copies the next `len` bytes into `*out` (replacing its contents).
  bool TryBytes(std::size_t len, std::string* out) {
    if (remaining() < len) return false;
    out->assign(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return true;
  }

  /// Discards the next `len` bytes.
  bool TrySkip(std::size_t len) {
    if (remaining() < len) return false;
    pos_ += len;
    return true;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace diffc::net

#endif  // DIFFC_NET_CURSOR_H_
