#include "net/handler_registry.h"

namespace diffc::net {

WireHandlerRegistry& WireHandlerRegistry::Global() {
  static WireHandlerRegistry* registry = new WireHandlerRegistry();
  return *registry;
}

void WireHandlerRegistry::Register(WireRequest id, std::unique_ptr<const WireHandlerImpl> impl) {
  MutexLock lock(&mu_);
  for (const auto& h : handlers_) {
    if (h->id() == id) return;  // First registration wins, like metrics.
  }
  handlers_.push_back(std::move(impl));
}

const WireHandlerImpl* WireHandlerRegistry::Find(std::uint8_t type) const {
  MutexLock lock(&mu_);
  for (const auto& h : handlers_) {
    if (static_cast<std::uint8_t>(h->id()) == type) return h.get();
  }
  return nullptr;
}

std::vector<const WireHandlerImpl*> WireHandlerRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<const WireHandlerImpl*> out;
  out.reserve(handlers_.size());
  for (const auto& h : handlers_) out.push_back(h.get());
  return out;
}

bool RegisterWireHandler(WireRequest id, std::unique_ptr<const WireHandlerImpl> impl) {
  WireHandlerRegistry::Global().Register(id, std::move(impl));
  return true;
}

}  // namespace diffc::net
