#include "relational/boolean_dependency.h"

namespace diffc {

bool SatisfiesBooleanDependency(const Relation& r, const DifferentialConstraint& c) {
  // The quantification "∀ t, t' ∈ r" of formula (6) includes t = t'. That
  // pair always agrees on X and agrees on every member, so it only matters
  // for an empty right-hand family, which no nonempty relation satisfies —
  // matching the Simpson side, whose density at S is always positive.
  if (c.rhs().empty()) return r.size() == 0;
  for (int i = 0; i < r.size(); ++i) {
    for (int j = i + 1; j < r.size(); ++j) {
      if (!r.AgreeOn(i, j, c.lhs())) continue;
      bool some_member_agrees = false;
      for (const ItemSet& member : c.rhs().members()) {
        if (r.AgreeOn(i, j, member)) {
          some_member_agrees = true;
          break;
        }
      }
      if (!some_member_agrees) return false;
    }
  }
  return true;
}

bool SatisfiesFdInRelation(const Relation& r, const ItemSet& lhs, const ItemSet& rhs) {
  return SatisfiesBooleanDependency(
      r, DifferentialConstraint(lhs, SetFamily({rhs})));
}

}  // namespace diffc
