#include "relational/positive_bool.h"

namespace diffc {

bool IsLiteralNnf(const prop::Formula& f) {
  switch (f.kind()) {
    case prop::FormulaKind::kConst:
    case prop::FormulaKind::kVar:
      return true;
    case prop::FormulaKind::kNot:
      return f.children()[0]->kind() == prop::FormulaKind::kVar;
    case prop::FormulaKind::kAnd:
    case prop::FormulaKind::kOr:
      for (const prop::FormulaPtr& c : f.children()) {
        if (!IsLiteralNnf(*c)) return false;
      }
      return true;
  }
  return false;
}

bool SatisfiesPositiveBoolDependency(const Relation& r, const prop::Formula& f) {
  const Mask all_agree = FullMask(r.num_attrs());
  // The diagonal pair (t, t) realizes the all-true assignment whenever the
  // relation is nonempty.
  if (r.size() > 0 && !f.Eval(all_agree)) return false;
  for (int i = 0; i < r.size(); ++i) {
    for (int j = i + 1; j < r.size(); ++j) {
      Mask agreement = 0;
      for (int a = 0; a < r.num_attrs(); ++a) {
        if (r.tuple(i)[a] == r.tuple(j)[a]) agreement |= Mask{1} << a;
      }
      if (!f.Eval(agreement)) return false;
    }
  }
  return true;
}

Result<Relation> TwoTupleRelation(int n, Mask agree_on) {
  if (!IsSubset(agree_on, FullMask(n))) {
    return Status::InvalidArgument("agreement mask outside the schema");
  }
  std::vector<int> t1(n, 0);
  if (agree_on == FullMask(n)) {
    // Two tuples agreeing everywhere would be duplicates; the assignment
    // is realized by the diagonal pair of a single tuple.
    return Relation::Make(n, {t1});
  }
  std::vector<int> t2(n, 0);
  for (int a = 0; a < n; ++a) {
    if (!((agree_on >> a) & 1)) t2[a] = 1;
  }
  return Relation::Make(n, {t1, t2});
}

Result<bool> PositiveBoolImplies(int n, const std::vector<prop::FormulaPtr>& premises,
                                 const prop::Formula& goal, Mask* counterexample_agreement,
                                 int max_bits) {
  if (n > max_bits) {
    return Status::ResourceExhausted("positive-boolean implication over " +
                                     std::to_string(n) + " attributes");
  }
  const Mask all_agree = FullMask(n);
  // If some premise fails at the all-true assignment, no nonempty relation
  // satisfies the premises (the diagonal pair refutes it), so the
  // implication holds vacuously over relations.
  for (const prop::FormulaPtr& p : premises) {
    if (!p->Eval(all_agree)) return true;
  }
  // Otherwise the countermodels are exactly the two-tuple relations (SDPF):
  // an agreement assignment where all premises hold but the goal fails.
  for (Mask u = 0;; ++u) {
    bool premises_hold = true;
    for (const prop::FormulaPtr& p : premises) {
      if (!p->Eval(u)) {
        premises_hold = false;
        break;
      }
    }
    if (premises_hold && !goal.Eval(u)) {
      if (counterexample_agreement != nullptr) *counterexample_agreement = u;
      return false;
    }
    if (u == all_agree) break;
  }
  return true;
}

}  // namespace diffc
