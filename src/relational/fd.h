#ifndef DIFFC_RELATIONAL_FD_H_
#define DIFFC_RELATIONAL_FD_H_

#include <string>
#include <vector>

#include "lattice/itemset.h"

namespace diffc {

/// A functional dependency `X -> Y` over the schema/universe — the
/// subclass of differential constraints with a single right-hand member
/// (paper Section 8), for which implication is polynomial.
struct Fd {
  ItemSet lhs;
  ItemSet rhs;

  /// Renders "X -> Y".
  std::string ToString(const Universe& u) const {
    return lhs.ToString(u) + " -> " + rhs.ToString(u);
  }

  friend bool operator==(const Fd& a, const Fd& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

/// The attribute-set closure `X+` under `fds` (Armstrong). O(|fds|^2) set
/// operations.
ItemSet FdClosure(const ItemSet& x, const std::vector<Fd>& fds);

/// True iff `fds ⊨ goal`, i.e. `goal.rhs ⊆ FdClosure(goal.lhs, fds)`.
bool FdImplies(const std::vector<Fd>& fds, const Fd& goal);

/// A canonical (minimal) cover of `fds`: singleton right-hand sides, no
/// extraneous left-hand attributes, no redundant dependencies.
std::vector<Fd> FdMinimalCover(const std::vector<Fd>& fds);

}  // namespace diffc

#endif  // DIFFC_RELATIONAL_FD_H_
