#ifndef DIFFC_RELATIONAL_NORMALIZATION_H_
#define DIFFC_RELATIONAL_NORMALIZATION_H_

#include <optional>
#include <vector>

#include "relational/fd.h"
#include "util/status.h"

namespace diffc {

/// Classical FD-based schema design on top of the paper's polynomial
/// subclass (Section 8): candidate keys, BCNF checking and decomposition,
/// 3NF synthesis, and the lossless-join test. A schema here is an
/// attribute set within the universe.

/// All candidate keys of the schema `attrs` under `fds` (minimal X ⊆ attrs
/// with attrs ⊆ X+), sorted by mask. Exponential in the worst case;
/// `max_attrs` guards the search.
Result<std::vector<ItemSet>> CandidateKeys(const ItemSet& attrs, const std::vector<Fd>& fds,
                                           int max_attrs = 24);

/// A BCNF violation: an FD X -> Y applicable to the schema with X not a
/// superkey (projected to the schema, with trivial parts removed).
struct BcnfViolation {
  ItemSet lhs;
  ItemSet rhs;
};

/// Finds a BCNF violation of `attrs` under `fds`, or nothing when the
/// schema is in BCNF. Checks every *projected* dependency (closure-based),
/// not just the listed ones, so violations hidden by projection are found.
/// Exponential in |attrs|; guarded.
Result<std::optional<BcnfViolation>> FindBcnfViolation(const ItemSet& attrs,
                                                       const std::vector<Fd>& fds,
                                                       int max_attrs = 20);

/// True iff the schema is in BCNF under `fds`.
Result<bool> IsBcnf(const ItemSet& attrs, const std::vector<Fd>& fds, int max_attrs = 20);

/// Decomposes `attrs` into BCNF subschemas by the classical split
/// R -> (X ∪ X+∩R, R ∖ (X+ ∖ X)) on violations. The result is lossless by
/// construction (each split is on a key of one side); dependency
/// preservation is not guaranteed (it cannot be, in general).
Result<std::vector<ItemSet>> BcnfDecompose(const ItemSet& attrs, const std::vector<Fd>& fds,
                                           int max_attrs = 20);

/// Synthesizes a lossless, dependency-preserving 3NF decomposition from a
/// minimal cover (Bernstein synthesis): one schema per cover group plus a
/// key schema when needed; subsumed schemas dropped.
Result<std::vector<ItemSet>> Synthesize3Nf(const ItemSet& attrs, const std::vector<Fd>& fds);

/// The binary lossless-join test: the decomposition {r1, r2} of a schema
/// is lossless under `fds` iff (r1 ∩ r2) -> r1 or (r1 ∩ r2) -> r2.
bool IsLosslessBinarySplit(const ItemSet& r1, const ItemSet& r2, const std::vector<Fd>& fds);

}  // namespace diffc

#endif  // DIFFC_RELATIONAL_NORMALIZATION_H_
