#ifndef DIFFC_RELATIONAL_RELATION_H_
#define DIFFC_RELATIONAL_RELATION_H_

#include <vector>

#include "lattice/itemset.h"
#include "util/status.h"

namespace diffc {

/// A finite relation over a schema of `num_attrs` attributes (Section 7).
/// Tuples are rows of integer-coded values; attribute `i` of the schema is
/// attribute `i` of the associated `Universe`.
class Relation {
 public:
  /// Builds a relation; every tuple must have exactly `num_attrs` values
  /// and `num_attrs` must be in [0, 64]. Duplicate tuples are rejected
  /// (the paper's relations are sets; weights live in a `Distribution`).
  static Result<Relation> Make(int num_attrs, std::vector<std::vector<int>> tuples);

  /// Number of schema attributes.
  int num_attrs() const { return num_attrs_; }
  /// Number of tuples.
  int size() const { return static_cast<int>(tuples_.size()); }
  /// Tuple `i`.
  const std::vector<int>& tuple(int i) const { return tuples_[i]; }

  /// True iff tuples `i` and `j` agree on every attribute in `x`
  /// (`t[X] = t'[X]`). Agreement on the empty set is vacuously true.
  bool AgreeOn(int i, int j, const ItemSet& x) const;

  /// The projection `t[X]` of tuple `i`: values of the attributes in `x`,
  /// in attribute order.
  std::vector<int> Project(int i, const ItemSet& x) const;

 private:
  Relation(int num_attrs, std::vector<std::vector<int>> tuples)
      : num_attrs_(num_attrs), tuples_(std::move(tuples)) {}

  int num_attrs_;
  std::vector<std::vector<int>> tuples_;
};

}  // namespace diffc

#endif  // DIFFC_RELATIONAL_RELATION_H_
