#include "relational/normalization.h"

#include <algorithm>
#include <map>

namespace diffc {

Result<std::vector<ItemSet>> CandidateKeys(const ItemSet& attrs, const std::vector<Fd>& fds,
                                           int max_attrs) {
  if (attrs.size() > max_attrs) {
    return Status::ResourceExhausted("candidate-key search over " +
                                     std::to_string(attrs.size()) + " attributes");
  }
  std::vector<Mask> subsets;
  ForEachSubset(attrs.bits(), [&](Mask m) { subsets.push_back(m); });
  std::sort(subsets.begin(), subsets.end(), [](Mask a, Mask b) {
    if (Popcount(a) != Popcount(b)) return Popcount(a) < Popcount(b);
    return a < b;
  });
  std::vector<ItemSet> keys;
  for (Mask m : subsets) {
    bool dominated = false;
    for (const ItemSet& k : keys) {
      if (IsSubset(k.bits(), m)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    if (attrs.IsSubsetOf(FdClosure(ItemSet(m), fds))) keys.push_back(ItemSet(m));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Result<std::optional<BcnfViolation>> FindBcnfViolation(const ItemSet& attrs,
                                                       const std::vector<Fd>& fds,
                                                       int max_attrs) {
  if (attrs.size() > max_attrs) {
    return Status::ResourceExhausted("BCNF check over " + std::to_string(attrs.size()) +
                                     " attributes");
  }
  std::optional<BcnfViolation> violation;
  ForEachSubset(attrs.bits(), [&](Mask x) {
    if (violation.has_value()) return;
    ItemSet closure = FdClosure(ItemSet(x), fds);
    if (attrs.IsSubsetOf(closure)) return;  // X is a superkey: fine.
    ItemSet gained = closure.Intersect(attrs).Minus(ItemSet(x));
    if (!gained.empty()) violation = BcnfViolation{ItemSet(x), gained};
  });
  return violation;
}

Result<bool> IsBcnf(const ItemSet& attrs, const std::vector<Fd>& fds, int max_attrs) {
  Result<std::optional<BcnfViolation>> v = FindBcnfViolation(attrs, fds, max_attrs);
  if (!v.ok()) return v.status();
  return !v->has_value();
}

Result<std::vector<ItemSet>> BcnfDecompose(const ItemSet& attrs, const std::vector<Fd>& fds,
                                           int max_attrs) {
  std::vector<ItemSet> done;
  std::vector<ItemSet> work{attrs};
  while (!work.empty()) {
    ItemSet r = work.back();
    work.pop_back();
    Result<std::optional<BcnfViolation>> v = FindBcnfViolation(r, fds, max_attrs);
    if (!v.ok()) return v.status();
    if (!v->has_value()) {
      done.push_back(r);
      continue;
    }
    // Split on X -> Y: R1 = X ∪ (X+ ∩ R), R2 = R ∖ (R1 ∖ X).
    ItemSet x = (*v)->lhs;
    ItemSet r1 = x.Union(FdClosure(x, fds).Intersect(r));
    ItemSet r2 = r.Minus(r1.Minus(x));
    work.push_back(r1);
    work.push_back(r2);
  }
  // Deduplicate, then drop schemas properly contained in another.
  std::sort(done.begin(), done.end());
  done.erase(std::unique(done.begin(), done.end()), done.end());
  std::vector<ItemSet> result;
  for (const ItemSet& r : done) {
    bool subsumed = false;
    for (const ItemSet& other : done) {
      if (other != r && r.IsSubsetOf(other)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) result.push_back(r);
  }
  return result;
}

Result<std::vector<ItemSet>> Synthesize3Nf(const ItemSet& attrs, const std::vector<Fd>& fds) {
  std::vector<Fd> cover = FdMinimalCover(fds);
  // Group the cover by left-hand side; one schema per group.
  std::map<Mask, Mask> groups;
  for (const Fd& fd : cover) {
    if (!fd.lhs.IsSubsetOf(attrs) || !fd.rhs.IsSubsetOf(attrs)) continue;
    groups[fd.lhs.bits()] |= fd.lhs.bits() | fd.rhs.bits();
  }
  std::vector<ItemSet> schemas;
  for (const auto& [lhs, schema] : groups) schemas.push_back(ItemSet(schema));
  // Attributes mentioned in no dependency still need a home, and some
  // schema must contain a candidate key for losslessness.
  Result<std::vector<ItemSet>> keys = CandidateKeys(attrs, cover);
  if (!keys.ok()) return keys.status();
  bool has_key_schema = false;
  for (const ItemSet& schema : schemas) {
    for (const ItemSet& key : *keys) {
      if (key.IsSubsetOf(schema)) {
        has_key_schema = true;
        break;
      }
    }
    if (has_key_schema) break;
  }
  if (!has_key_schema && !keys->empty()) schemas.push_back((*keys)[0]);
  // Drop subsumed schemas.
  std::vector<ItemSet> result;
  for (const ItemSet& schema : schemas) {
    bool subsumed = false;
    for (const ItemSet& other : schemas) {
      if (other != schema && schema.IsSubsetOf(other)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) result.push_back(schema);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

bool IsLosslessBinarySplit(const ItemSet& r1, const ItemSet& r2, const std::vector<Fd>& fds) {
  ItemSet common = r1.Intersect(r2);
  ItemSet closure = FdClosure(common, fds);
  return r1.IsSubsetOf(closure) || r2.IsSubsetOf(closure);
}

}  // namespace diffc
