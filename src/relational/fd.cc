#include "relational/fd.h"

#include <algorithm>

namespace diffc {

ItemSet FdClosure(const ItemSet& x, const std::vector<Fd>& fds) {
  ItemSet closure = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds) {
      if (fd.lhs.IsSubsetOf(closure) && !fd.rhs.IsSubsetOf(closure)) {
        closure = closure.Union(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool FdImplies(const std::vector<Fd>& fds, const Fd& goal) {
  return goal.rhs.IsSubsetOf(FdClosure(goal.lhs, fds));
}

std::vector<Fd> FdMinimalCover(const std::vector<Fd>& fds) {
  // 1. Split right-hand sides into singletons.
  std::vector<Fd> cover;
  for (const Fd& fd : fds) {
    ForEachBit(fd.rhs.bits(), [&](int b) {
      cover.push_back(Fd{fd.lhs, ItemSet::Singleton(b)});
    });
  }
  // 2. Drop extraneous left-hand attributes.
  for (Fd& fd : cover) {
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      ItemSet lhs = fd.lhs;
      bool done = false;
      ForEachBit(lhs.bits(), [&](int a) {
        if (done) return;
        ItemSet reduced = lhs.Minus(ItemSet::Singleton(a));
        if (fd.rhs.IsSubsetOf(FdClosure(reduced, cover))) {
          fd.lhs = reduced;
          shrunk = true;
          done = true;
        }
      });
    }
  }
  // 3. Drop redundant dependencies.
  for (size_t i = 0; i < cover.size();) {
    Fd removed = cover[i];
    cover.erase(cover.begin() + i);
    if (FdImplies(cover, removed)) {
      continue;  // Redundant: keep it removed, re-test the same index.
    }
    cover.insert(cover.begin() + i, removed);
    ++i;
  }
  // Deduplicate.
  std::sort(cover.begin(), cover.end(), [](const Fd& a, const Fd& b) {
    if (a.lhs != b.lhs) return a.lhs < b.lhs;
    return a.rhs < b.rhs;
  });
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  return cover;
}

}  // namespace diffc
