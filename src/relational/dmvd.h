#ifndef DIFFC_RELATIONAL_DMVD_H_
#define DIFFC_RELATIONAL_DMVD_H_

#include <string>

#include "core/constraint.h"
#include "relational/relation.h"
#include "util/status.h"

namespace diffc {

/// Degenerate multivalued dependencies (Baixeries–Balcázar, cited in the
/// paper's Section 2.2): `X -|-> Y | Z` holds in `r` when any two tuples
/// agreeing on `X` agree on `Y` or agree on `Z`.
///
/// A DMVD is exactly the positive boolean dependency
/// `X ⇒boolean {Y, Z}` — i.e. the two-member differential constraint
/// `X -> {Y, Z}` under the Simpson semantics of Section 7. This wrapper
/// makes that identification explicit and routes satisfaction and
/// implication through the differential machinery.
struct Dmvd {
  ItemSet lhs;
  ItemSet left;   ///< Y
  ItemSet right;  ///< Z

  /// The differential constraint `lhs -> {left, right}` this DMVD is.
  DifferentialConstraint AsConstraint() const {
    return DifferentialConstraint(lhs, SetFamily({left, right}));
  }

  /// Renders "X -|-> Y | Z".
  std::string ToString(const Universe& u) const {
    return lhs.ToString(u) + " -|-> " + left.ToString(u) + " | " + right.ToString(u);
  }
};

/// True iff `r` satisfies the DMVD (checked as a boolean dependency).
bool SatisfiesDmvd(const Relation& r, const Dmvd& d);

/// Decides `premises |= goal` for DMVDs through the differential-
/// constraint implication machinery (Corollary 7.4 / Theorem 8.1 make
/// this equivalent to implication over Simpson functions). `n` is the
/// schema size.
Result<bool> DmvdImplies(int n, const std::vector<Dmvd>& premises, const Dmvd& goal);

}  // namespace diffc

#endif  // DIFFC_RELATIONAL_DMVD_H_
