#include "relational/entropy.h"

#include <cmath>
#include <map>

namespace diffc {

namespace {

Status CheckArgs(const Relation& r, const Distribution& p) {
  if (r.size() == 0) {
    return Status::InvalidArgument("Shannon function requires a nonempty relation");
  }
  if (p.size() != r.size()) {
    return Status::InvalidArgument("distribution size does not match relation");
  }
  return Status::Ok();
}

}  // namespace

Result<SetFunction<double>> ShannonFunction(const Relation& r, const Distribution& p) {
  if (Status s = CheckArgs(r, p); !s.ok()) return s;
  Result<SetFunction<double>> h = SetFunction<double>::Make(r.num_attrs());
  if (!h.ok()) return h.status();
  const Mask full = FullMask(r.num_attrs());
  for (Mask x = 0;; ++x) {
    ItemSet attrs(x);
    std::map<std::vector<int>, double> groups;
    for (int i = 0; i < r.size(); ++i) {
      groups[r.Project(i, attrs)] += p.weight(i).ToDouble();
    }
    double entropy = 0;
    for (const auto& [key, weight] : groups) {
      if (weight > 0) entropy -= weight * std::log2(weight);
    }
    h->at(x) = entropy;
    if (x == full) break;
  }
  return h;
}

double ConditionalEntropy(const SetFunction<double>& h, const ItemSet& x, const ItemSet& y) {
  return h.at(x.Union(y)) - h.at(x);
}

bool SatisfiesInformationDependency(const SetFunction<double>& h, const ItemSet& x,
                                    const ItemSet& y, double eps) {
  return std::fabs(ConditionalEntropy(h, x, y)) < eps;
}

Result<SetFunction<double>> ShannonComplementFunction(const Relation& r,
                                                      const Distribution& p) {
  Result<SetFunction<double>> h = ShannonFunction(r, p);
  if (!h.ok()) return h.status();
  Result<SetFunction<double>> g = SetFunction<double>::Make(r.num_attrs());
  if (!g.ok()) return g.status();
  const double h_full = h->at(FullMask(r.num_attrs()));
  for (Mask m = 0; m < g->size(); ++m) {
    g->at(m) = h_full - h->at(m);
  }
  return g;
}

}  // namespace diffc
