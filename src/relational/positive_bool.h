#ifndef DIFFC_RELATIONAL_POSITIVE_BOOL_H_
#define DIFFC_RELATIONAL_POSITIVE_BOOL_H_

#include <vector>

#include "prop/formula.h"
#include "relational/relation.h"
#include "util/status.h"

namespace diffc {

/// The *full* class of positive boolean dependencies of Sagiv, Delobel,
/// Parker, and Fagin (the paper's [22, 23]): an arbitrary negation-free
/// propositional formula `φ` over agreement atoms, where atom `a` reads
/// "the two tuples agree on attribute a". A relation satisfies `φ` when
/// every (ordered, including equal) pair of tuples does. The paper's
/// `X ⇒boolean Y` (formula (6)) is the fragment `∧X ⇒ ∨∧Y`; this module
/// implements the general class and the SDPF equivalence theorem —
/// dependency implication coincides with propositional implication, with
/// two-tuple relations as the universal countermodels.
///
/// Positivity: the formula may only use variables, conjunction and
/// disjunction *in the consequent sense* of SDPF — here encoded as:
/// implication-free NNF where negation is not applied below any
/// connective except directly on variables in the antecedent position.
/// `IsPositiveDependencyFormula` checks the shape this module supports:
/// truth-monotone formulas built from Const/Var/And/Or plus implications
/// `A ⇒ B` desugared by the prop layer into `¬A ∨ B`; concretely it
/// requires every *negation* to sit directly above a variable.

/// True iff every negation in `f` applies directly to a variable (the
/// shape produced by `Formula::Implies` over positive parts).
bool IsLiteralNnf(const prop::Formula& f);

/// Does `r` satisfy the dependency `f` over agreement atoms? Checks all
/// ordered tuple pairs, including `t = t'` (whose agreement assignment is
/// all-true). O(|r|^2 · |f|).
bool SatisfiesPositiveBoolDependency(const Relation& r, const prop::Formula& f);

/// Builds a two-tuple relation over `n` attributes whose single
/// nontrivial agreement assignment is exactly `agree_on` — the canonical
/// countermodel of the SDPF theorem.
Result<Relation> TwoTupleRelation(int n, Mask agree_on);

/// The SDPF equivalence: `premises` imply `goal` over relations iff the
/// corresponding propositional entailment holds. Decided by checking all
/// 2^n agreement assignments (exhaustive; requires n <= max_bits).
/// Returns the truth value; when false, `counterexample_agreement`
/// receives an assignment whose two-tuple relation satisfies every
/// premise and violates the goal.
Result<bool> PositiveBoolImplies(int n, const std::vector<prop::FormulaPtr>& premises,
                                 const prop::Formula& goal,
                                 Mask* counterexample_agreement = nullptr,
                                 int max_bits = 24);

}  // namespace diffc

#endif  // DIFFC_RELATIONAL_POSITIVE_BOOL_H_
