#ifndef DIFFC_RELATIONAL_BOOLEAN_DEPENDENCY_H_
#define DIFFC_RELATIONAL_BOOLEAN_DEPENDENCY_H_

#include "core/constraint.h"
#include "relational/relation.h"

namespace diffc {

/// Positive boolean dependencies (Sagiv–Delobel–Parker–Fagin; paper
/// formula (6)): `r` satisfies `X ⇒boolean Y` iff
///
///   ∀ t, t' ∈ r:  t[X] = t'[X]  ⇒  ∨_{Y ∈ Y} t[Y] = t'[Y].
///
/// By Proposition 7.3 this holds iff any (equivalently every) Simpson
/// function of `r` satisfies the differential constraint `X -> Y` — an
/// equivalence the test suite checks exactly over rationals.
/// O(|r|^2 · (|X| + Σ|Y|)).
bool SatisfiesBooleanDependency(const Relation& r, const DifferentialConstraint& c);

/// Classic functional-dependency satisfaction `X -> Z` as the boolean
/// dependency `X ⇒boolean {Z}`.
bool SatisfiesFdInRelation(const Relation& r, const ItemSet& lhs, const ItemSet& rhs);

}  // namespace diffc

#endif  // DIFFC_RELATIONAL_BOOLEAN_DEPENDENCY_H_
