#include "relational/distribution.h"

namespace diffc {

Result<Distribution> Distribution::Make(std::vector<Rational> weights) {
  Rational total;
  for (const Rational& w : weights) {
    if (w.IsZero() || w.IsNegative()) {
      return Status::InvalidArgument("tuple probabilities must be strictly positive");
    }
    total += w;
  }
  if (total != Rational(1)) {
    return Status::InvalidArgument("tuple probabilities must sum to 1, got " +
                                   total.ToString());
  }
  return Distribution(std::move(weights));
}

Result<Distribution> Distribution::Uniform(int size) {
  if (size < 1) return Status::InvalidArgument("uniform distribution needs >= 1 tuple");
  return Make(std::vector<Rational>(size, Rational(1, size)));
}

}  // namespace diffc
