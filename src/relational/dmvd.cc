#include "relational/dmvd.h"

#include "core/implication.h"
#include "relational/boolean_dependency.h"

namespace diffc {

bool SatisfiesDmvd(const Relation& r, const Dmvd& d) {
  return SatisfiesBooleanDependency(r, d.AsConstraint());
}

Result<bool> DmvdImplies(int n, const std::vector<Dmvd>& premises, const Dmvd& goal) {
  ConstraintSet constraints;
  constraints.reserve(premises.size());
  for (const Dmvd& p : premises) constraints.push_back(p.AsConstraint());
  Result<ImplicationOutcome> r = CheckImplicationSat(n, constraints, goal.AsConstraint());
  if (!r.ok()) return r.status();
  return r->implied;
}

}  // namespace diffc
